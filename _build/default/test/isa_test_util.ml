(* Shared helpers for ISA-level tests: assemble a fragment at 0x1000 with
   a mapped scratch page at 0x4000 and a stack at 0x5000, run it to a
   stop, and return the context. *)

let null_env =
  { Cpu.rdtsc = (fun () -> 0); Cpu.rdrand = (fun () -> 0) }

let fresh_space () =
  let space = Addr_space.create ~id:1 in
  ignore (Addr_space.map space ~addr:0x4000 ~len:8192 ~prot:Mem.prot_rw ());
  space

let run_program_full items =
  let space = fresh_space () in
  let prog = Asm.assemble ~base:0x1000 items in
  Addr_space.text_load space ~base:0x1000 prog.Asm.code;
  let ctx = Cpu.create ~space in
  ctx.Cpu.pc <- 0x1000;
  let stop, steps = Cpu.run null_env ctx ~fuel:1_000_000 in
  (ctx, stop, steps)

(* Run to the terminating Halt (an F_ill fault is the normal ending). *)
let run_program items =
  let ctx, _, _ = run_program_full items in
  ctx

let run_program_stop items =
  let _, stop, _ = run_program_full items in
  stop

let pp_stop_opt ppf = function
  | None -> Fmt.string ppf "None (fuel out)"
  | Some s -> Cpu.pp_stop ppf s
