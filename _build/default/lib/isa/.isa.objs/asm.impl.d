lib/isa/asm.ml: Array Hashtbl Insn List
