(* Flight-recorder mode: bounded ring recording with dump-on-trigger
   persistence (see flight.mli and DESIGN.md §4j). *)

type cause =
  | Signal of Recorder.error
  | Exit_nonzero of int
  | Diverged of string
  | Partial_window of { base_frame : int }
  | Always

type dump_target = To_file of string | To_repo of Repo.t * string

type outcome = {
  result : (Recorder.stats * Kernel.t, Recorder.error) result;
  window : Trace.t;
  report : Trace.ring_report;
  cause : cause option;
  dumped_to : string option;
}

let pp_cause ppf = function
  | Signal e -> Fmt.pf ppf "signal (%a)" Recorder.pp_error e
  | Exit_nonzero code -> Fmt.pf ppf "exit!=0 (%d)" code
  | Diverged msg -> Fmt.pf ppf "divergence (%s)" msg
  | Partial_window { base_frame } ->
    Fmt.pf ppf "partial window (base frame %d, divergence unverifiable)"
      base_frame
  | Always -> Fmt.string ppf "always"

let parse_trigger = function
  | "signal" -> Some Recorder.On_signal
  | "exit!=0" -> Some Recorder.On_exit_nonzero
  | "divergence" -> Some Recorder.On_divergence
  | "always" -> Some Recorder.On_always
  | _ -> None

let trigger_to_string = function
  | Recorder.On_signal -> "signal"
  | Recorder.On_exit_nonzero -> "exit!=0"
  | Recorder.On_divergence -> "divergence"
  | Recorder.On_always -> "always"

(* Evaluate [dump_on] against the run, most severe first.  The
   divergence check replays the window and is only meaningful when the
   window still starts at frame 0 — a truncated window has no initial
   state to replay from.  Asking for divergence verification on a
   truncated window is classified explicitly (Partial_window) rather
   than silently skipped: the window still dumps, and the cause says
   why it was not verified. *)
let first_cause ~dump_on ~result ~window ~(report : Trace.ring_report) =
  let want t = List.mem t dump_on in
  let signal =
    match result with
    | Error e when want Recorder.On_signal -> Some (Signal e)
    | _ -> None
  in
  let exit_nonzero () =
    match result with
    | Ok ((stats : Recorder.stats), _) when want Recorder.On_exit_nonzero -> (
      match stats.Recorder.exit_status with
      | Some 0 -> None
      | Some code -> Some (Exit_nonzero code)
      | None -> Some (Exit_nonzero (-1)))
    | _ -> None
  in
  let divergence () =
    if not (want Recorder.On_divergence) then None
    else if report.Trace.rr_base_frame > 0 then
      Some (Partial_window { base_frame = report.Trace.rr_base_frame })
    else
      match Replayer.replay window with
      | (_ : Replayer.stats * Kernel.t) -> None
      | exception Replayer.Divergence msg -> Some (Diverged msg)
  in
  let always () = if want Recorder.On_always then Some Always else None in
  match signal with
  | Some _ as c -> c
  | None -> (
    match exit_nonzero () with
    | Some _ as c -> c
    | None -> (
      match divergence () with Some _ as c -> c | None -> always ()))

let dump_window ~window = function
  | To_file path -> (
    match Trace.save window path with
    | Ok () -> Ok path
    | Error e -> Error (Recorder.Rec_trace e))
  | To_repo (repo, name) -> (
    match Repo.store_trace repo ~name window with
    | Ok (_ : Repo.store_result) -> Ok ("repo:" ^ name)
    | Error e -> Error (Recorder.Rec_failure (Repo.error_to_string e)))

let record ?(opts = Recorder.default_opts) ?on_stop ?dump ~ring ~setup ~exe () =
  let opts = Recorder.with_sink opts (Recorder.Sink_ring ring) in
  let result =
    match Recorder.run ~opts ?on_stop ~setup ~exe () with
    | Ok ((_ : Trace.t), stats, k) -> Ok (stats, k)
    | Error e -> Error e
  in
  (* Snapshot once, after the run: the handle outlives a recording that
     died, so the window is dumpable either way. *)
  let window, report = Trace.ring_trace ring in
  let cause =
    first_cause ~dump_on:opts.Recorder.dump_on ~result ~window ~report
  in
  match (cause, dump) with
  | Some _, Some target -> (
    match dump_window ~window target with
    | Ok where ->
      Ok { result; window; report; cause; dumped_to = Some where }
    | Error e -> Error e)
  | _ -> Ok { result; window; report; cause; dumped_to = None }
