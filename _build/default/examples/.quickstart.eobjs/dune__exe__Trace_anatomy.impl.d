examples/trace_anatomy.ml: Array Compress Event Fmt Hashtbl List Option Printf Replayer String Sysno Trace Wl_cp Workload
