(** One-shot construction of a {!Trace_index.t}: a single forward replay
    with the {!Addr_space} write observer installed, collecting the
    per-pc, per-page and virtual-clock tables plus durable checkpoint
    blobs ({!Replayer.encode_snapshot}) every [checkpoint_every] frames
    and at both ends of the trace.

    Telemetry: counts [index.build], times [index.build_time]. *)

val build :
  ?opts:Replayer.opts -> ?checkpoint_every:int -> Trace.t -> Trace_index.t
(** Replay [trace] start to end and return its index.  [checkpoint_every]
    (clamped to ≥ 1) defaults to roughly n/16, capping durable
    checkpoints at a handful per trace.  Raises {!Replayer.Divergence}
    if the trace does not replay. *)

val build_and_attach :
  ?opts:Replayer.opts -> ?checkpoint_every:int -> Trace.t -> Trace_index.t
(** {!build}, then {!Trace.set_index} — persist with {!Trace.save}. *)
