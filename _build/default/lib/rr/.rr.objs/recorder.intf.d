lib/rr/recorder.mli: Kernel Trace
