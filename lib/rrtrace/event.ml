(* Trace frames.

   One constructor per kind of nondeterministic input crossing the
   recording boundary (paper §2.1): syscall results and memory effects,
   asynchronous-event execution points (RCB + registers + a word of stack,
   §2.4.1), signal-handler frames (§2.3.9), address-space events that
   replay must re-perform (§2.3.8), syscall-site patches (§3.1) and
   syscallbuf flushes (§3).

   [regs] is the 16 GPRs with the program counter appended (17 slots). *)

type regs = int array

let pc_slot = 16

type exec_point = { rcb : int; point_regs : regs; stack_extra : int }

type mem_write = { addr : int; data : string }

type syscall_kind =
  | K_emulate (* replay applies recorded effects; syscall not executed *)
  | K_perform (* replay re-executes it (munmap, mprotect, sigreturn...) *)

type sig_disposition =
  | Sr_handler of {
      frame_addr : int;
      frame_data : string;
      regs_after : regs;
      mask_after : int;
    }
  | Sr_fatal of int (* exit status *)
  | Sr_ignored of regs
      (* no handler ran; registers after the kernel's restart rewind *)

type mmap_source =
  | Src_zero
  | Src_trace_file of string (* path in the trace's cloned-file store *)
  | Src_inline of string (* small data carried in the frame *)

type clone_ref = {
  cr_path : string; (* per-thread cloned-data file in the trace *)
  cr_off : int;
  cr_addr : int; (* destination address in the tracee *)
  cr_len : int;
}

type buf_record = {
  br_nr : int;
  br_result : int;
  br_writes : mem_write list; (* outputs the library copied out of the buffer *)
  br_clone : clone_ref option; (* §3.9: data snapshotted by block cloning *)
  br_aborted : bool; (* desched fired; completed as a traced syscall *)
}

type t =
  | E_syscall of {
      tid : int;
      nr : int;
      site : int; (* address of the syscall instruction *)
      writable_site : bool; (* replay must not breakpoint here (§2.3.7) *)
      via_abort : bool; (* reached through a syscallbuf desched abort (§3.3) *)
      regs_after : regs;
      writes : mem_write list;
      kind : syscall_kind;
    }
  | E_clone of {
      parent : int;
      child : int;
      flags : int;
      child_sp : int;
      parent_regs_after : regs;
      child_regs : regs;
    }
  | E_exec of { tid : int; image_ref : string; regs_after : regs }
  | E_mmap of {
      tid : int;
      addr : int;
      len : int;
      prot : int;
      shared : bool;
      source : mmap_source;
      regs_after : regs;
    }
  | E_signal of {
      tid : int;
      signo : int;
      point : exec_point;
      disposition : sig_disposition;
    }
  | E_sched of { tid : int; point : exec_point } (* preemptive switch *)
  | E_insn_trap of { tid : int; reg : int; value : int } (* RDTSC etc. *)
  | E_patch of { tid : int; site : int } (* syscall site -> hook call *)
  | E_buf_flush of { tid : int; records : buf_record list }
  | E_syscall_enter of {
      tid : int;
      nr : int;
      site : int;
      writable_site : bool;
      via_abort : bool;
    }
      (* The task entered a syscall that then *blocked* in the kernel;
         frames of other tasks may follow before its completion frame.
         (rr records syscall entry and exit as separate events for the
         same reason.) *)
  | E_checksum of { tid : int; value : int }
      (* digest of the task's application-visible memory (§6.2) *)
  | E_exit of { tid : int; status : int }
  | E_rr_setup of {
      tid : int;
      rr_page : int; (* text address of the untraced syscall insn *)
      locals : int; (* thread-locals data page *)
      scratch : int;
      buf : int; (* trace buffer data page(s) *)
      buf_len : int;
    }

let tid_of = function
  | E_syscall { tid; _ }
  | E_syscall_enter { tid; _ }
  | E_checksum { tid; _ }
  | E_exec { tid; _ }
  | E_mmap { tid; _ }
  | E_signal { tid; _ }
  | E_sched { tid; _ }
  | E_insn_trap { tid; _ }
  | E_patch { tid; _ }
  | E_buf_flush { tid; _ }
  | E_exit { tid; _ }
  | E_rr_setup { tid; _ } ->
    tid
  | E_clone { parent; _ } -> parent

(* The pc a frame's recorded registers land on: the breakpoint-match key
   for the debugger and the per-pc trace index.  Frames that carry no
   register image (buffer flushes, patches, bookkeeping) have no pc. *)
let frame_pc e =
  let pc (regs : regs) = Some regs.(pc_slot) in
  match e with
  | E_syscall { regs_after; _ } -> pc regs_after
  | E_exec { regs_after; _ } -> pc regs_after
  | E_mmap { regs_after; _ } -> pc regs_after
  | E_clone { parent_regs_after; _ } -> pc parent_regs_after
  | E_sched { point; _ } -> pc point.point_regs
  | E_signal { point; disposition; _ } -> (
    match disposition with
    | Sr_handler { regs_after; _ } -> pc regs_after
    | Sr_ignored regs -> pc regs
    | Sr_fatal _ -> pc point.point_regs)
  | E_insn_trap _ | E_patch _ | E_buf_flush _ | E_syscall_enter _
  | E_checksum _ | E_exit _ | E_rr_setup _ ->
    None

(* ----- encoding ----------------------------------------------------

   Two event encodings share the frame schema; the trace container's
   header says which one its chunks use.

   v1 — registers as a length-prefixed int array.
   v2 — registers delta-coded against the same task's previous register
   image within the chunk: a 17-bit change mask, then one zigzag delta
   per changed slot.  Between consecutive frames of a task most slots
   are unchanged and the pc moves by a small amount, so a typical image
   costs a few bytes instead of ~20.  The per-task state lives in an
   {!ectx}; encoder and decoder reset it at every chunk boundary, which
   keeps each chunk independently decodable (seek, salvage, kind-mask
   skipping all still work). *)

let nregs = 17

type ectx = { version : int; prev : (int, int array) Hashtbl.t }

let ectx ?(version = 1) () =
  if version < 1 || version > 2 then
    Fmt.invalid_arg "Event.ectx: unknown event-encoding version %d" version;
  { version; prev = Hashtbl.create 8 }

let ectx_version c = c.version

let reset_ectx c = Hashtbl.reset c.prev

let tm_delta_saved = Telemetry.counter "trace.regs_delta_bytes_saved"

let prev_regs c key =
  match Hashtbl.find_opt c.prev key with
  | Some p -> p
  | None ->
    let p = Array.make nregs 0 in
    Hashtbl.add c.prev key p;
    p

(* [key] is the task the image belongs to — deltas must never cross
   tasks, whose register sets evolve independently. *)
let put_regs c ~key b (r : regs) =
  if c.version = 1 then Codec.put_array b Codec.put_int r
  else begin
    if Array.length r <> nregs then
      Fmt.invalid_arg "Event.put_regs: %d slots, need %d" (Array.length r)
        nregs;
    let prev = prev_regs c key in
    let mask = ref 0 in
    for i = 0 to nregs - 1 do
      if r.(i) <> prev.(i) then mask := !mask lor (1 lsl i)
    done;
    let before = Buffer.length b in
    Codec.put_uvarint b !mask;
    for i = 0 to nregs - 1 do
      if !mask land (1 lsl i) <> 0 then begin
        Codec.put_int b (r.(i) - prev.(i));
        prev.(i) <- r.(i)
      end
    done;
    let v1_cost = ref (Codec.uvarint_size nregs) in
    for i = 0 to nregs - 1 do v1_cost := !v1_cost + Codec.int_size r.(i) done;
    Telemetry.add tm_delta_saved (!v1_cost - (Buffer.length b - before))
  end

let get_regs c ~key s : regs =
  if c.version = 1 then Codec.get_array s Codec.get_int
  else begin
    let prev = prev_regs c key in
    let mask = Codec.get_uvarint s in
    if mask lsr nregs <> 0 then
      raise (Codec.Corrupt (Printf.sprintf "regs change mask %#x" mask));
    let r = Array.copy prev in
    for i = 0 to nregs - 1 do
      if mask land (1 lsl i) <> 0 then begin
        r.(i) <- prev.(i) + Codec.get_int s;
        prev.(i) <- r.(i)
      end
    done;
    r
  end

let put_point c ~key b p =
  Codec.put_int b p.rcb;
  put_regs c ~key b p.point_regs;
  Codec.put_int b p.stack_extra

let get_point c ~key s =
  let rcb = Codec.get_int s in
  let point_regs = get_regs c ~key s in
  let stack_extra = Codec.get_int s in
  { rcb; point_regs; stack_extra }

let put_write b w =
  Codec.put_int b w.addr;
  Codec.put_string b w.data

let get_write s =
  let addr = Codec.get_int s in
  let data = Codec.get_string s in
  { addr; data }

let put_disposition c ~key b = function
  | Sr_handler { frame_addr; frame_data; regs_after; mask_after } ->
    Codec.put_uvarint b 0;
    Codec.put_int b frame_addr;
    Codec.put_string b frame_data;
    put_regs c ~key b regs_after;
    Codec.put_int b mask_after
  | Sr_fatal status ->
    Codec.put_uvarint b 1;
    Codec.put_int b status
  | Sr_ignored regs_after ->
    Codec.put_uvarint b 2;
    put_regs c ~key b regs_after

let get_disposition c ~key s =
  match Codec.get_uvarint s with
  | 0 ->
    let frame_addr = Codec.get_int s in
    let frame_data = Codec.get_string s in
    let regs_after = get_regs c ~key s in
    let mask_after = Codec.get_int s in
    Sr_handler { frame_addr; frame_data; regs_after; mask_after }
  | 1 -> Sr_fatal (Codec.get_int s)
  | 2 -> Sr_ignored (get_regs c ~key s)
  | n -> raise (Codec.Corrupt (Printf.sprintf "disposition tag %d" n))

let put_source b = function
  | Src_zero -> Codec.put_uvarint b 0
  | Src_trace_file p ->
    Codec.put_uvarint b 1;
    Codec.put_string b p
  | Src_inline d ->
    Codec.put_uvarint b 2;
    Codec.put_string b d

let get_source s =
  match Codec.get_uvarint s with
  | 0 -> Src_zero
  | 1 -> Src_trace_file (Codec.get_string s)
  | 2 -> Src_inline (Codec.get_string s)
  | n -> raise (Codec.Corrupt (Printf.sprintf "source tag %d" n))

let put_buf_record b r =
  Codec.put_int b r.br_nr;
  Codec.put_int b r.br_result;
  Codec.put_list b put_write r.br_writes;
  (match r.br_clone with
  | None -> Codec.put_uvarint b 0
  | Some c ->
    Codec.put_uvarint b 1;
    Codec.put_string b c.cr_path;
    Codec.put_int b c.cr_off;
    Codec.put_int b c.cr_addr;
    Codec.put_int b c.cr_len);
  Codec.put_bool b r.br_aborted

let get_buf_record s =
  let br_nr = Codec.get_int s in
  let br_result = Codec.get_int s in
  let br_writes = Codec.get_list s get_write in
  let br_clone =
    match Codec.get_uvarint s with
    | 0 -> None
    | 1 ->
      let cr_path = Codec.get_string s in
      let cr_off = Codec.get_int s in
      let cr_addr = Codec.get_int s in
      let cr_len = Codec.get_int s in
      Some { cr_path; cr_off; cr_addr; cr_len }
    | n -> raise (Codec.Corrupt (Printf.sprintf "clone tag %d" n))
  in
  let br_aborted = Codec.get_bool s in
  { br_nr; br_result; br_writes; br_clone; br_aborted }

let encode c b = function
  | E_syscall { tid; nr; site; writable_site; via_abort; regs_after; writes; kind }
    ->
    Codec.put_uvarint b 0;
    Codec.put_int b tid;
    Codec.put_int b nr;
    Codec.put_int b site;
    Codec.put_bool b writable_site;
    Codec.put_bool b via_abort;
    put_regs c ~key:tid b regs_after;
    Codec.put_list b put_write writes;
    Codec.put_uvarint b (match kind with K_emulate -> 0 | K_perform -> 1)
  | E_clone { parent; child; flags; child_sp; parent_regs_after; child_regs }
    ->
    Codec.put_uvarint b 1;
    Codec.put_int b parent;
    Codec.put_int b child;
    Codec.put_int b flags;
    Codec.put_int b child_sp;
    put_regs c ~key:parent b parent_regs_after;
    put_regs c ~key:child b child_regs
  | E_exec { tid; image_ref; regs_after } ->
    Codec.put_uvarint b 2;
    Codec.put_int b tid;
    Codec.put_string b image_ref;
    put_regs c ~key:tid b regs_after
  | E_mmap { tid; addr; len; prot; shared; source; regs_after } ->
    Codec.put_uvarint b 3;
    Codec.put_int b tid;
    Codec.put_int b addr;
    Codec.put_int b len;
    Codec.put_int b prot;
    Codec.put_bool b shared;
    put_source b source;
    put_regs c ~key:tid b regs_after
  | E_signal { tid; signo; point; disposition } ->
    Codec.put_uvarint b 4;
    Codec.put_int b tid;
    Codec.put_int b signo;
    put_point c ~key:tid b point;
    put_disposition c ~key:tid b disposition
  | E_sched { tid; point } ->
    Codec.put_uvarint b 5;
    Codec.put_int b tid;
    put_point c ~key:tid b point
  | E_insn_trap { tid; reg; value } ->
    Codec.put_uvarint b 6;
    Codec.put_int b tid;
    Codec.put_int b reg;
    Codec.put_int b value
  | E_patch { tid; site } ->
    Codec.put_uvarint b 7;
    Codec.put_int b tid;
    Codec.put_int b site
  | E_buf_flush { tid; records } ->
    Codec.put_uvarint b 8;
    Codec.put_int b tid;
    Codec.put_list b put_buf_record records
  | E_exit { tid; status } ->
    Codec.put_uvarint b 9;
    Codec.put_int b tid;
    Codec.put_int b status
  | E_checksum { tid; value } ->
    Codec.put_uvarint b 12;
    Codec.put_int b tid;
    Codec.put_int b value
  | E_syscall_enter { tid; nr; site; writable_site; via_abort } ->
    Codec.put_uvarint b 11;
    Codec.put_int b tid;
    Codec.put_int b nr;
    Codec.put_int b site;
    Codec.put_bool b writable_site;
    Codec.put_bool b via_abort
  | E_rr_setup { tid; rr_page; locals; scratch; buf; buf_len } ->
    Codec.put_uvarint b 10;
    Codec.put_int b tid;
    Codec.put_int b rr_page;
    Codec.put_int b locals;
    Codec.put_int b scratch;
    Codec.put_int b buf;
    Codec.put_int b buf_len

let decode c s =
  match Codec.get_uvarint s with
  | 0 ->
    let tid = Codec.get_int s in
    let nr = Codec.get_int s in
    let site = Codec.get_int s in
    let writable_site = Codec.get_bool s in
    let via_abort = Codec.get_bool s in
    let regs_after = get_regs c ~key:tid s in
    let writes = Codec.get_list s get_write in
    let kind =
      match Codec.get_uvarint s with
      | 0 -> K_emulate
      | 1 -> K_perform
      | n -> raise (Codec.Corrupt (Printf.sprintf "kind tag %d" n))
    in
    E_syscall { tid; nr; site; writable_site; via_abort; regs_after; writes; kind }
  | 1 ->
    let parent = Codec.get_int s in
    let child = Codec.get_int s in
    let flags = Codec.get_int s in
    let child_sp = Codec.get_int s in
    let parent_regs_after = get_regs c ~key:parent s in
    let child_regs = get_regs c ~key:child s in
    E_clone { parent; child; flags; child_sp; parent_regs_after; child_regs }
  | 2 ->
    let tid = Codec.get_int s in
    let image_ref = Codec.get_string s in
    let regs_after = get_regs c ~key:tid s in
    E_exec { tid; image_ref; regs_after }
  | 3 ->
    let tid = Codec.get_int s in
    let addr = Codec.get_int s in
    let len = Codec.get_int s in
    let prot = Codec.get_int s in
    let shared = Codec.get_bool s in
    let source = get_source s in
    let regs_after = get_regs c ~key:tid s in
    E_mmap { tid; addr; len; prot; shared; source; regs_after }
  | 4 ->
    let tid = Codec.get_int s in
    let signo = Codec.get_int s in
    let point = get_point c ~key:tid s in
    let disposition = get_disposition c ~key:tid s in
    E_signal { tid; signo; point; disposition }
  | 5 ->
    let tid = Codec.get_int s in
    let point = get_point c ~key:tid s in
    E_sched { tid; point }
  | 6 ->
    let tid = Codec.get_int s in
    let reg = Codec.get_int s in
    let value = Codec.get_int s in
    E_insn_trap { tid; reg; value }
  | 7 ->
    let tid = Codec.get_int s in
    let site = Codec.get_int s in
    E_patch { tid; site }
  | 8 ->
    let tid = Codec.get_int s in
    let records = Codec.get_list s get_buf_record in
    E_buf_flush { tid; records }
  | 9 ->
    let tid = Codec.get_int s in
    let status = Codec.get_int s in
    E_exit { tid; status }
  | 10 ->
    let tid = Codec.get_int s in
    let rr_page = Codec.get_int s in
    let locals = Codec.get_int s in
    let scratch = Codec.get_int s in
    let buf = Codec.get_int s in
    let buf_len = Codec.get_int s in
    E_rr_setup { tid; rr_page; locals; scratch; buf; buf_len }
  | 11 ->
    let tid = Codec.get_int s in
    let nr = Codec.get_int s in
    let site = Codec.get_int s in
    let writable_site = Codec.get_bool s in
    let via_abort = Codec.get_bool s in
    E_syscall_enter { tid; nr; site; writable_site; via_abort }
  | 12 ->
    let tid = Codec.get_int s in
    let value = Codec.get_int s in
    E_checksum { tid; value }
  | n -> raise (Codec.Corrupt (Printf.sprintf "event tag %d" n))

(* Stable small integers naming each frame kind — the encode tags.  The
   trace's chunk index summarizes each chunk as a bitmask of these, so a
   frame search can skip whole chunks without inflating them. *)
let num_kinds = 13

let kind_id = function
  | E_syscall _ -> 0
  | E_clone _ -> 1
  | E_exec _ -> 2
  | E_mmap _ -> 3
  | E_signal _ -> 4
  | E_sched _ -> 5
  | E_insn_trap _ -> 6
  | E_patch _ -> 7
  | E_buf_flush _ -> 8
  | E_exit _ -> 9
  | E_rr_setup _ -> 10
  | E_syscall_enter _ -> 11
  | E_checksum _ -> 12

let kind_bit e = 1 lsl kind_id e

let kind_name = function
  | E_syscall { nr; _ } -> "syscall:" ^ Sysno.name nr
  | E_syscall_enter { nr; _ } -> "syscall-enter:" ^ Sysno.name nr
  | E_checksum _ -> "checksum"
  | E_clone _ -> "clone"
  | E_exec _ -> "exec"
  | E_mmap _ -> "mmap"
  | E_signal { signo; _ } -> "signal:" ^ Signals.name signo
  | E_sched _ -> "sched"
  | E_insn_trap _ -> "insn_trap"
  | E_patch _ -> "patch"
  | E_buf_flush _ -> "buf_flush"
  | E_exit _ -> "exit"
  | E_rr_setup _ -> "rr_setup"

let pp ppf e = Fmt.pf ppf "[%d] %s" (tid_of e) (kind_name e)
