(* Tests for flight-recorder mode: the bounded ring sink's window
   semantics (pure prefix when roomy, watermark-aligned tail when it
   overflows), salvage of a recording killed mid-run, trigger
   evaluation in Flight.record, and the fd lifecycle of file-sink
   recordings that die. *)

let small_cp () = Wl_cp.make ~params:{ Wl_cp.files = 4; file_kb = 32 } ()

(* Unbuffered + tiny chunks: many small frames, so a small ring turns
   over even on this workload (the syscallbuf would otherwise batch the
   whole run into a frame or two). *)
let mk ?max_events ?sink () =
  Recorder.make_opts ~intercept:false ~chunk_limit:256 ?max_events ?sink ()

let record_reference () =
  let w = small_cp () in
  let t, _, _ =
    Recorder.record ~opts:(mk ()) ~setup:w.Workload.setup ~exe:w.Workload.exe
      ()
  in
  Trace.Reader.to_array t

let ring_run ?max_events ~chunks () =
  let w = small_cp () in
  let ring = Trace.ring ~chunks in
  let result =
    Recorder.run
      ~opts:(mk ?max_events ~sink:(Recorder.Sink_ring ring) ())
      ~setup:w.Workload.setup ~exe:w.Workload.exe ()
  in
  let window, report = Trace.ring_trace ring in
  (result, window, report)

let check_slice ~what reference ~base frames =
  Array.iteri
    (fun i e ->
      if e <> reference.(base + i) then
        Alcotest.failf "%s: frame %d diverges from live frame %d" what i
          (base + i))
    frames

(* ---- the window ------------------------------------------------------- *)

let test_roomy_ring_is_lossless () =
  let reference = record_reference () in
  let result, window, report = ring_run ~chunks:4096 () in
  (match result with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "recording failed: %a" Recorder.pp_error e);
  Alcotest.(check int) "no drops" 0 report.Trace.rr_dropped_chunks;
  Alcotest.(check int) "window starts at 0" 0 report.Trace.rr_base_frame;
  let frames = Trace.Reader.to_array window in
  Alcotest.(check int)
    "full run retained" (Array.length reference) (Array.length frames);
  check_slice ~what:"roomy ring" reference ~base:0 frames;
  (* A lossless window replays like any trace. *)
  let st, _ = Replayer.replay window in
  Alcotest.(check (option int)) "replays to exit 0" (Some 0)
    st.Replayer.exit_status

let test_bounded_ring_keeps_the_tail () =
  let reference = record_reference () in
  let total = Array.length reference in
  let dropped0 =
    Telemetry.counter_value (Telemetry.counter "ring.dropped_chunks")
  in
  let result, window, report = ring_run ~chunks:2 () in
  (match result with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "recording failed: %a" Recorder.pp_error e);
  Alcotest.(check bool)
    "ring overflowed" true
    (report.Trace.rr_dropped_chunks > 0 && report.Trace.rr_base_frame > 0);
  Alcotest.(check bool)
    "drop counter moved" true
    (Telemetry.counter_value (Telemetry.counter "ring.dropped_chunks")
     - dropped0
    >= report.Trace.rr_dropped_chunks);
  let frames = Trace.Reader.to_array window in
  let base = report.Trace.rr_base_frame in
  Alcotest.(check int)
    "window ends at the live run's end" total (base + Array.length frames);
  Alcotest.(check int)
    "dropped + resident = total" total
    (report.Trace.rr_dropped_frames + report.Trace.rr_frames);
  check_slice ~what:"bounded ring" reference ~base frames

let test_killed_recording_salvages () =
  let reference = record_reference () in
  let total = Array.length reference in
  let result, window, report =
    ring_run ~max_events:(total / 2) ~chunks:4096 ()
  in
  (match result with
  | Error (Recorder.Rec_failure _) -> ()
  | Error e -> Alcotest.failf "wrong error class: %a" Recorder.pp_error e
  | Ok _ -> Alcotest.fail "the event-limit guard never fired");
  Alcotest.(check int) "no drops" 0 report.Trace.rr_base_frame;
  let frames = Trace.Reader.to_array window in
  let n = Array.length frames in
  Alcotest.(check bool) "something salvaged" true (n > 0 && n < total);
  (* The retained window is a pure prefix of the live run — its last
     frame matches the live run's frame at the same index. *)
  check_slice ~what:"killed recording" reference ~base:0 frames;
  match Replayer.replay window with
  | (_ : Replayer.stats * Kernel.t) -> ()
  | exception Replayer.Divergence msg ->
    Alcotest.failf "salvaged window diverges: %s" msg

(* ---- Flight.record triggers ------------------------------------------- *)

let with_temp_path f =
  let path = Filename.temp_file "rr_flight" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_flight_dump_on_always () =
  with_temp_path @@ fun path ->
  let w = small_cp () in
  let ring = Trace.ring ~chunks:2 in
  let opts = Recorder.with_dump_on (mk ()) [ Recorder.On_always ] in
  let outcome =
    match
      Flight.record ~opts ~dump:(Flight.To_file path) ~ring
        ~setup:w.Workload.setup ~exe:w.Workload.exe ()
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "flight record: %a" Recorder.pp_error e
  in
  (match outcome.Flight.cause with
  | Some Flight.Always -> ()
  | c ->
    Alcotest.failf "wrong cause: %a" Fmt.(Dump.option Flight.pp_cause) c);
  Alcotest.(check (option string)) "dumped to the file" (Some path)
    outcome.Flight.dumped_to;
  let saved = Trace.load_exn path in
  Alcotest.(check bool)
    "dumped window loads identically" true
    (Trace.Reader.to_array saved = Trace.Reader.to_array outcome.Flight.window)

let test_flight_exit_zero_no_dump () =
  with_temp_path @@ fun path ->
  let w = small_cp () in
  let ring = Trace.ring ~chunks:2 in
  let opts = Recorder.with_dump_on (mk ()) [ Recorder.On_exit_nonzero ] in
  let outcome =
    match
      Flight.record ~opts ~dump:(Flight.To_file path) ~ring
        ~setup:w.Workload.setup ~exe:w.Workload.exe ()
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "flight record: %a" Recorder.pp_error e
  in
  Alcotest.(check (option string))
    "a clean exit does not dump" None outcome.Flight.dumped_to

let test_flight_signal_trigger () =
  with_temp_path @@ fun path ->
  let w = small_cp () in
  let reference = record_reference () in
  let ring = Trace.ring ~chunks:4096 in
  let opts =
    Recorder.with_dump_on
      (mk ~max_events:(Array.length reference / 2) ())
      [ Recorder.On_signal ]
  in
  let outcome =
    match
      Flight.record ~opts ~dump:(Flight.To_file path) ~ring
        ~setup:w.Workload.setup ~exe:w.Workload.exe ()
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "flight record: %a" Recorder.pp_error e
  in
  (match outcome.Flight.result with
  | Error (Recorder.Rec_failure _) -> ()
  | _ -> Alcotest.fail "expected the recording to die");
  (match outcome.Flight.cause with
  | Some (Flight.Signal _) -> ()
  | c ->
    Alcotest.failf "wrong cause: %a" Fmt.(Dump.option Flight.pp_cause) c);
  Alcotest.(check (option string)) "window dumped" (Some path)
    outcome.Flight.dumped_to

(* ---- fd lifecycle ----------------------------------------------------- *)

let open_fds () = Array.length (Sys.readdir "/proc/self/fd")

let test_fd_churn () =
  let w = small_cp () in
  let path = Filename.temp_file "rr_churn" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (* Warm up any lazily opened descriptors before taking the baseline. *)
  (match
     Recorder.run
       ~opts:(mk ~max_events:8 ~sink:(Recorder.Sink_file path) ())
       ~setup:w.Workload.setup ~exe:w.Workload.exe ()
   with
  | Ok _ | Error _ -> ());
  ignore (Trace.salvage path);
  let baseline = open_fds () in
  for _ = 1 to 200 do
    (* Every iteration opens the journal, dies mid-run (the writer must
       abort and release the fd), then salvages the prefix (which opens
       and closes the file again). *)
    (match
       Recorder.run
         ~opts:(mk ~max_events:8 ~sink:(Recorder.Sink_file path) ())
         ~setup:w.Workload.setup ~exe:w.Workload.exe ()
     with
    | Error (Recorder.Rec_failure _) -> ()
    | Error e -> Alcotest.failf "wrong error class: %a" Recorder.pp_error e
    | Ok _ -> Alcotest.fail "the event-limit guard never fired");
    match Trace.salvage path with
    | Ok ((_ : Trace.t), (_ : Trace.salvage_report)) -> ()
    | Error e -> Alcotest.failf "salvage failed: %a" Trace.pp_error e
  done;
  let now = open_fds () in
  Alcotest.(check bool)
    (Printf.sprintf "no fd growth after 200 cycles (%d -> %d)" baseline now)
    true (now <= baseline)

let suites =
  [ ( "flight",
      [ Alcotest.test_case "roomy ring is lossless" `Quick
          test_roomy_ring_is_lossless;
        Alcotest.test_case "bounded ring keeps the tail" `Quick
          test_bounded_ring_keeps_the_tail;
        Alcotest.test_case "killed recording salvages a prefix" `Quick
          test_killed_recording_salvages;
        Alcotest.test_case "dump-on always writes the window" `Quick
          test_flight_dump_on_always;
        Alcotest.test_case "clean exit does not dump" `Quick
          test_flight_exit_zero_no_dump;
        Alcotest.test_case "signal trigger dumps a killed run" `Quick
          test_flight_signal_trigger;
        Alcotest.test_case "fd churn: 200 open/salvage/close cycles" `Quick
          test_fd_churn ] ) ]
