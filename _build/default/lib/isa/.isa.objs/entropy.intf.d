lib/isa/entropy.mli:
