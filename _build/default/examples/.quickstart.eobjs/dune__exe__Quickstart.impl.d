examples/quickstart.ml: Array Asm Event Fmt Guest Insn Kernel List Recorder Replayer Sysno Trace Vfs
