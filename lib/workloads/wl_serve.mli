(** The `serve` workload (DESIGN.md §4k): a multi-process network
    server under load.  An accept loop recvfroms client hellos on a
    well-known port and forks one worker per connection; a load
    generator forks one client per connection, each issuing a stream of
    requests with mixed payload sizes, periodic sends to a dead port
    (the error path) and optionally slowed pacing.  Every datagram
    round-trip crosses the recording boundary, so this is the
    connection-sharding (Conn_track / Shard) test bed. *)

type params = {
  conns : int; (** concurrent connections (one worker + one client each) *)
  requests : int; (** data requests per connection *)
  server_work : int; (** per-request worker compute *)
  client_work : int; (** per-reply client compute *)
  slow_clients : int; (** the first N clients nanosleep before each send *)
  err_every : int; (** every Nth request first hits a dead port *)
}

val default : params

val accept_port : int
(** The well-known port the accept loop binds. *)

val client_port : int -> int
(** Port bound by client [i] (0-based). *)

val worker_port : int -> int
(** Port bound by the worker serving client [i]. *)

val make : ?params:params -> unit -> Workload.t
