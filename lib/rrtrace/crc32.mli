(** CRC-32 (IEEE 802.3, the zlib polynomial) over strings.

    The trace store stamps every on-disk record and every stored chunk
    with a CRC so that torn writes and bit rot are detected at open (or
    at the latest when the damaged chunk is decoded) instead of
    surfacing as a divergence mid-replay.

    The [crc] argument chains: [string ~crc:(string a) b] equals
    [string (a ^ b)], so large payloads can be folded piecewise without
    concatenation. *)

val string : ?crc:int -> string -> int
(** CRC of a whole string, continuing from [crc] (default: empty). *)

val sub : ?crc:int -> string -> pos:int -> len:int -> int
(** CRC of [len] bytes of [s] starting at [pos].  Raises
    [Invalid_argument] if the range is out of bounds. *)
