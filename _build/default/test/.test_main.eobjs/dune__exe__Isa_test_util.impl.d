test/isa_test_util.ml: Addr_space Asm Cpu Fmt Mem
