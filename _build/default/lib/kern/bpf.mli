(** Classic BPF, as used by seccomp filters: a real interpreted bytecode
    machine with forward-relative jumps, which is what makes prepending
    rr's allow-prologue to tracee filters sound (paper §2.3.5). *)

type insn =
  | Ld_abs of int
  | Ld_imm of int
  | Ldx_imm of int
  | Tax
  | Txa
  | St of int
  | Ldm of int
  | Alu_and of int
  | Alu_or of int
  | Alu_add of int
  | Jmp of int
  | Jeq of int * int * int
  | Jgt of int * int * int
  | Jge of int * int * int
  | Jset of int * int * int
  | Ret of int
  | Ret_a

type program = insn array

val data_nr : int
val data_arch : int
val data_ip : int
val data_arg : int -> int

val ret_kill : int
val ret_trap : int
val ret_errno : int -> int
val ret_trace : int
val ret_allow : int
val action_mask : int
val action_of : int -> int
val errno_of : int -> int

type data = { nr : int; arch : int; ip : int; args : int array }

exception Bad_program of string

val run : program -> data -> int
(** Evaluate a filter; returns the SECCOMP_RET_* word.  Raises
    {!Bad_program} for ill-formed programs (the kernel treats that as
    kill). *)

val whitelist : ?deny:int -> int list -> program
(** A sandbox-style filter: allow the listed syscall numbers, return
    [deny] (default errno EPERM) otherwise. *)

val rr_filter : untraced_ip:int -> program
(** rr's recorder filter: allow at the untraced instruction, trace
    everything else. *)

val patch_with_prologue : privileged_ip:int -> program -> program
(** Prepend the allow-at-privileged-PC prologue to a tracee filter. *)

val length : program -> int
