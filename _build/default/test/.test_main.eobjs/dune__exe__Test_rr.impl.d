test/test_rr.ml: Alcotest Array Asm Bytes Char Debugger Event Filename Fun Guest Insn Kernel List Mem Printf Recorder Replayer Signals String Sys Sysno Task Trace Vfs
