(** A dynamic-binary-instrumentation "null tool" cost model (the paper's
    DynamoRio-null comparison, §4.2/Figure 6): per-process engine
    startup and code translation, a per-instruction dispatch overhead,
    and a steep penalty for run-time code writes — with an outright
    crash past a code-churn threshold, as DynamoRio exhibited on
    octane. *)

type result = {
  time : int; (* virtual ns; max_int when crashed *)
  crashed : bool;
  base_time : int;
  translated_insns : int;
  jit_writes : int;
}

val crash_jit_writes : int
val insns_per_block : int

val run : ?cores:int -> Workload.t -> result
