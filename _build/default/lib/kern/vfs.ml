(* An in-memory filesystem with the two sharing features rr's trace
   optimizations need (paper §2.7, §3.9):
   - hard links, used to snapshot memory-mapped executables into traces;
   - copy-on-write block cloning (FICLONE-style), used to snapshot mapped
     files and large read buffers at near-zero cost.

   Regular file data is an array of refcounted 4 KiB blocks.  Cloning
   shares blocks; writing to a shared block copies it.  [disk_usage]
   counts unique live blocks, so clones really are free until modified —
   the property Table 2 measures. *)

let block_size = 4096

type block = { mutable refs : int; bytes : Bytes.t }

type reg = {
  mutable blocks : block option array;
  mutable size : int;
  mutable image : Image.t option; (* "ELF contents" for executables *)
}

type node_kind = Reg of reg | Dir of (string, int) Hashtbl.t

type inode = { ino : int; mutable kind : node_kind; mutable nlink : int }

type t = {
  inodes : (int, inode) Hashtbl.t;
  root : int;
  mutable next_ino : int;
  mutable live_blocks : int; (* unique blocks currently allocated *)
  mutable logical_blocks : int; (* block references including clones *)
}

exception Error of int (* errno *)

let err e = raise (Error e)

let create () =
  let root_tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let root = { ino = 1; kind = Dir root_tbl; nlink = 1 } in
  let inodes = Hashtbl.create 64 in
  Hashtbl.replace inodes 1 root;
  { inodes; root = 1; next_ino = 2; live_blocks = 0; logical_blocks = 0 }

let inode t ino =
  match Hashtbl.find_opt t.inodes ino with
  | Some n -> n
  | None -> err Errno.enoent

let split_path path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "")

(* Resolve [path] to an inode.  All paths are absolute. *)
let resolve t path =
  let rec walk node = function
    | [] -> node
    | seg :: rest -> (
      match node.kind with
      | Reg _ -> err Errno.enotdir
      | Dir entries -> (
        match Hashtbl.find_opt entries seg with
        | None -> err Errno.enoent
        | Some ino -> walk (inode t ino) rest))
  in
  walk (inode t t.root) (split_path path)

let resolve_opt t path = try Some (resolve t path) with Error _ -> None

(* Resolve the parent directory of [path]; returns (dir entries, leaf). *)
let rec resolve_parent t path =
  match List.rev (split_path path) with
  | [] -> err Errno.einval
  | leaf :: rev_dir ->
    let dir = walk_dir t (List.rev rev_dir) in
    (dir, leaf)

and walk_dir t segs =
  let rec walk node = function
    | [] -> (
      match node.kind with Dir d -> d | Reg _ -> err Errno.enotdir)
    | seg :: rest -> (
      match node.kind with
      | Reg _ -> err Errno.enotdir
      | Dir entries -> (
        match Hashtbl.find_opt entries seg with
        | None -> err Errno.enoent
        | Some ino -> walk (inode t ino) rest))
  in
  walk (inode t t.root) segs

let alloc_ino t =
  let ino = t.next_ino in
  t.next_ino <- ino + 1;
  ino

let mkdir t path =
  let dir, leaf = resolve_parent t path in
  if Hashtbl.mem dir leaf then err Errno.eexist;
  let ino = alloc_ino t in
  Hashtbl.replace t.inodes ino
    { ino; kind = Dir (Hashtbl.create 8); nlink = 1 };
  Hashtbl.replace dir leaf ino

let mkdir_p t path =
  let segs = split_path path in
  ignore
    (List.fold_left
       (fun prefix seg ->
         let p = prefix ^ "/" ^ seg in
         (match resolve_opt t p with
         | Some _ -> ()
         | None -> mkdir t p);
         p)
       "" segs)

let fresh_reg () = { blocks = [||]; size = 0; image = None }

let create_file t path =
  let dir, leaf = resolve_parent t path in
  if Hashtbl.mem dir leaf then err Errno.eexist;
  let ino = alloc_ino t in
  let reg = fresh_reg () in
  Hashtbl.replace t.inodes ino { ino; kind = Reg reg; nlink = 1 };
  Hashtbl.replace dir leaf ino;
  reg

let lookup_reg t path =
  match (resolve t path).kind with Reg r -> r | Dir _ -> err Errno.eisdir

(* Open-for-write helper used by the kernel's openat. *)
let rec open_file t path ~creat ~trunc =
  let node = resolve_opt t path in
  match node with
  | Some n -> (
    match n.kind with
    | Dir _ -> err Errno.eisdir
    | Reg r ->
      if trunc then truncate t r 0;
      r)
  | None ->
    if creat then create_file t path else err Errno.enoent

and drop_block t = function
  | None -> ()
  | Some b ->
    b.refs <- b.refs - 1;
    t.logical_blocks <- t.logical_blocks - 1;
    if b.refs = 0 then t.live_blocks <- t.live_blocks - 1

and truncate t reg new_size =
  let old_nblocks = Array.length reg.blocks in
  let new_nblocks = (new_size + block_size - 1) / block_size in
  if new_nblocks < old_nblocks then begin
    for i = new_nblocks to old_nblocks - 1 do
      drop_block t reg.blocks.(i)
    done;
    reg.blocks <- Array.sub reg.blocks 0 new_nblocks
  end
  else if new_nblocks > old_nblocks then begin
    let b = Array.make new_nblocks None in
    Array.blit reg.blocks 0 b 0 old_nblocks;
    reg.blocks <- b
  end;
  reg.size <- new_size

let ensure_blocks t reg n =
  let old = Array.length reg.blocks in
  if n > old then begin
    let b = Array.make n None in
    Array.blit reg.blocks 0 b 0 old;
    reg.blocks <- b
  end;
  ignore t

let fresh_block t =
  t.live_blocks <- t.live_blocks + 1;
  t.logical_blocks <- t.logical_blocks + 1;
  { refs = 1; bytes = Bytes.make block_size '\000' }

(* A block the caller may write: allocates or unshares as needed. *)
let writable_block t reg i =
  ensure_blocks t reg (i + 1);
  match reg.blocks.(i) with
  | None ->
    let b = fresh_block t in
    reg.blocks.(i) <- Some b;
    b
  | Some b when b.refs > 1 ->
    b.refs <- b.refs - 1;
    t.live_blocks <- t.live_blocks + 1;
    let copy = { refs = 1; bytes = Bytes.copy b.bytes } in
    reg.blocks.(i) <- Some copy;
    copy
  | Some b -> b

let read t reg ~off ~len =
  ignore t;
  if off >= reg.size then Bytes.create 0
  else begin
    let len = min len (reg.size - off) in
    let out = Bytes.make len '\000' in
    let i = ref 0 in
    while !i < len do
      let pos = off + !i in
      let bi = pos / block_size and bo = pos mod block_size in
      let chunk = min (len - !i) (block_size - bo) in
      (if bi < Array.length reg.blocks then
         match reg.blocks.(bi) with
         | Some b -> Bytes.blit b.bytes bo out !i chunk
         | None -> ());
      i := !i + chunk
    done;
    out
  end

let write t reg ~off data =
  let len = Bytes.length data in
  let i = ref 0 in
  while !i < len do
    let pos = off + !i in
    let bi = pos / block_size and bo = pos mod block_size in
    let chunk = min (len - !i) (block_size - bo) in
    let b = writable_block t reg bi in
    Bytes.blit data !i b.bytes bo chunk;
    i := !i + chunk
  done;
  if off + len > reg.size then reg.size <- off + len;
  len

(* FICLONERANGE: share whole blocks when everything is aligned, copy
   otherwise.  Returns the number of blocks shared (for the recorder's
   cloned-blocks accounting). *)
let clone_range t ~src ~src_off ~dst ~dst_off ~len =
  if
    src_off mod block_size = 0
    && dst_off mod block_size = 0
    && (len mod block_size = 0 || src_off + len = src.size)
  then begin
    let nblocks = (len + block_size - 1) / block_size in
    ensure_blocks t dst ((dst_off / block_size) + nblocks);
    let shared = ref 0 in
    for i = 0 to nblocks - 1 do
      let sbi = (src_off / block_size) + i in
      let dbi = (dst_off / block_size) + i in
      drop_block t dst.blocks.(dbi);
      match
        if sbi < Array.length src.blocks then src.blocks.(sbi) else None
      with
      | Some b ->
        b.refs <- b.refs + 1;
        t.logical_blocks <- t.logical_blocks + 1;
        dst.blocks.(dbi) <- Some b;
        incr shared
      | None -> dst.blocks.(dbi) <- None
    done;
    if dst_off + len > dst.size then dst.size <- dst_off + len;
    !shared
  end
  else begin
    let data = read t src ~off:src_off ~len in
    ignore (write t dst ~off:dst_off data);
    0
  end

let clone_file t ~src ~dst_path =
  let dst = create_file t dst_path in
  let shared = clone_range t ~src ~src_off:0 ~dst ~dst_off:0 ~len:src.size in
  dst.image <- src.image;
  (dst, shared)

let link t ~src_path ~dst_path =
  let node = resolve t src_path in
  (match node.kind with Dir _ -> err Errno.eisdir | Reg _ -> ());
  let dir, leaf = resolve_parent t dst_path in
  if Hashtbl.mem dir leaf then err Errno.eexist;
  node.nlink <- node.nlink + 1;
  Hashtbl.replace dir leaf node.ino

let unlink t path =
  let dir, leaf = resolve_parent t path in
  match Hashtbl.find_opt dir leaf with
  | None -> err Errno.enoent
  | Some ino ->
    let node = inode t ino in
    (match node.kind with
    | Dir d -> if Hashtbl.length d > 0 then err Errno.enotempty
    | Reg _ -> ());
    Hashtbl.remove dir leaf;
    node.nlink <- node.nlink - 1;
    if node.nlink = 0 then begin
      (match node.kind with
      | Reg r -> truncate t r 0
      | Dir _ -> ());
      Hashtbl.remove t.inodes ino
    end

let rename t ~src_path ~dst_path =
  let sdir, sleaf = resolve_parent t src_path in
  match Hashtbl.find_opt sdir sleaf with
  | None -> err Errno.enoent
  | Some ino ->
    let ddir, dleaf = resolve_parent t dst_path in
    Hashtbl.remove sdir sleaf;
    Hashtbl.replace ddir dleaf ino

let readdir t path =
  match (resolve t path).kind with
  | Reg _ -> err Errno.enotdir
  | Dir d -> Hashtbl.fold (fun name _ acc -> name :: acc) d [] |> List.sort compare

let file_size reg = reg.size

let set_image reg img = reg.image <- Some img
let get_image reg = reg.image

let disk_usage t = t.live_blocks * block_size
let logical_usage t = t.logical_blocks * block_size
