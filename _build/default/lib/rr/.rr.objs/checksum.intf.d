lib/rr/checksum.mli: Addr_space
