(** In-process system-call interception (paper §3).

    The recorder rewrites hot syscall sites into [Hook] calls; this
    module implements what the injected interception library does when a
    hook runs — in guest context, against guest state (the thread-locals
    page and the per-task trace-buffer pages), with fixed deterministic
    RCB/instruction charges so recording and replay expose identical
    counter trajectories (§3.8).

    Record mode performs the {e untraced} syscall (permitted by the
    seccomp filter because the supervisor supplies the untraced
    instruction's address), appends a record to the guest trace buffer
    and copies outputs to their destination; possibly-blocking calls arm
    the desched perf event first (§3.3).  Replay mode turns the untraced
    syscall into a no-op and takes results out of the buffer, which the
    replayer refilled from flush frames. *)

type mode =
  | Record of {
      clone_read :
        Kernel.t -> Task.t -> fd:int -> len:int -> Event.clone_ref option;
          (** §3.9: snapshot a large file read by block cloning. *)
      extra_writes :
        Kernel.t -> Task.t -> nr:int -> args:int array -> result:int ->
        Event.mem_write list;
          (** Supervisor-maintained guest state (the fd bitmap), already
              written to guest memory; appended to the record so replay
              reapplies it. *)
    }
  | Replay of {
      fetch_clone : Event.clone_ref -> string;
      refill : Task.t -> Event.buf_record list option;
          (** Next recorded flush batch when the buffer runs dry. *)
    }

val hook_number : int
(** The hook id patched over syscall instructions. *)

val hook : ?wide:bool -> mode -> Kernel.t -> Task.t -> unit
(** The interception library body, to be registered with
    {!Kernel.set_hook}.  [wide] (default) enables the widened wrapper
    set; a trace must be replayed with the same setting it was
    recorded with, since it changes which calls take the buffered
    path. *)

(** {2 Injection and patching} *)

val inject_rr_page : Kernel.t -> Task.t -> unit
(** Map the RR page (untraced + traced-fallback syscall instructions),
    the thread-locals page and the preload-globals page at their fixed
    addresses (paper §2.3.5). *)

val setup_task_at :
  Kernel.t -> Task.t -> scratch:int -> buf:int -> is_replay:bool -> int * int
(** Map a task's scratch and trace-buffer pages at explicit addresses
    and initialize its thread-locals; returns [(scratch, buf)]. *)

val setup_task : Kernel.t -> Task.t -> slot:int -> is_replay:bool -> int * int
(** Like {!setup_task_at} with addresses derived from a slot index. *)

val can_patch : Task.t -> site:int -> bool
(** §3.1: is the following instruction one of the known stub shapes, is
    the code static, is the site outside the RR page? *)

val patch_site : Task.t -> site:int -> unit
(** Rewrite the instruction at [site] into its hook: [Syscall] becomes
    the interception entry, [Rdrand r] becomes an emulation hook.  Both
    recorder and replayer apply the same transformation. *)

val find_rdrand_sites : Task.t -> int list
(** RDRAND instructions in the task's text (paper §2.6). *)

val find_syscall_sites : Task.t -> int list
(** Patchable syscall sites in the task's text, for eager patching at
    exec time (§3.2): patched up front, a site's first execution never
    takes the patch-time ptrace stop. *)

val rdrand_hook_of_reg : int -> int
val is_rdrand_hook : int -> bool
val reg_of_rdrand_hook : int -> int

(** {2 Guest trace-buffer access (the recorder's flush, the replayer's
    refill)} *)

val buffer_fill : Task.t -> int
val parse_all : Task.t -> cloned_path:string -> Event.buf_record list
val reset : Task.t -> unit
val load_records : Task.t -> Event.buf_record list -> unit
val append_record : Task.t -> Event.buf_record -> unit

(** {2 Thread-locals swapping (paper §3.6)} *)

val save_locals : Task.t -> bytes
val restore_locals : Task.t -> bytes -> unit
