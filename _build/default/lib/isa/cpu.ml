(* The guest CPU interpreter.

   [run] executes instructions for one hardware thread until a stop
   condition or fuel exhaustion.  The supervisor (kernel / recorder /
   replayer) decides what each stop means.  The interpreter itself is
   strictly deterministic given the register/memory state and the [env]
   callbacks; all nondeterminism enters through [env] (TSC, RDRAND) and
   through [core] (CPUID core index under migration). *)

type ctx = {
  regs : int array;
  mutable pc : int;
  mutable core : int;
  mutable space : Addr_space.t;
  pmu : Pmu.t;
  mutable tsc_trap : bool; (* prctl(PR_SET_TSC, PR_TSC_SIGSEGV) analogue *)
  mutable single_step : bool;
}

type fault =
  | F_segv of { addr : int; access : Addr_space.access }
  | F_ill of int (* pc with no decodable instruction *)
  | F_div of int (* pc of the faulting division *)

type stop =
  | Stop_syscall (* pc is past the syscall insn; site = pc - 1 *)
  | Stop_hook of int (* pc is past the hook insn *)
  | Stop_bkpt (* pc sits on a breakpointed instruction, not yet executed *)
  | Stop_pmu (* programmed counter interrupt fired *)
  | Stop_singlestep
  | Stop_tsc of Insn.reg (* trapped RDTSC; pc is past it *)
  | Stop_fault of fault

type env = { rdtsc : unit -> int; rdrand : unit -> int }

(* Global run-time code-write counter, consumed by the DBI ("null tool")
   cost model: dynamic instrumentation pays dearly for self-modifying
   code.  Snapshot/reset around a run. *)
let jit_writes = ref 0

let create ~space =
  { regs = Array.make Insn.num_regs 0;
    pc = 0;
    core = 0;
    space;
    pmu = Pmu.create ();
    tsc_trap = false;
    single_step = false }

let copy_regs ctx = Array.copy ctx.regs

let set_regs ctx regs = Array.blit regs 0 ctx.regs 0 Insn.num_regs

let operand ctx = function Insn.Imm v -> v | Insn.Reg r -> ctx.regs.(r)

let mask_shift v = v land 63

(* Execute exactly one instruction; assumes no breakpoint at pc.
   Returns [None] for ordinary retirement. *)
let exec_one env ctx insn =
  let module I = Insn in
  let regs = ctx.regs in
  let sp = I.reg_sp in
  ctx.pmu.Pmu.insns <- ctx.pmu.Pmu.insns + 1;
  match insn with
  | I.Nop | I.Pause ->
    ctx.pc <- ctx.pc + 1;
    None
  | I.Mov (r, o) ->
    regs.(r) <- operand ctx o;
    ctx.pc <- ctx.pc + 1;
    None
  | I.Alu (op, r, o) ->
    let a = regs.(r) and b = operand ctx o in
    let result =
      match op with
      | I.Add -> Some (a + b)
      | I.Sub -> Some (a - b)
      | I.Mul -> Some (a * b)
      | I.Div -> if b = 0 then None else Some (a / b)
      | I.Rem -> if b = 0 then None else Some (a mod b)
      | I.And -> Some (a land b)
      | I.Or -> Some (a lor b)
      | I.Xor -> Some (a lxor b)
      | I.Shl -> Some (a lsl mask_shift b)
      | I.Shr -> Some (a lsr mask_shift b)
    in
    (match result with
    | None -> Some (Stop_fault (F_div ctx.pc))
    | Some v ->
      regs.(r) <- v;
      ctx.pc <- ctx.pc + 1;
      None)
  | I.Load (d, b, off) ->
    regs.(d) <- Addr_space.read_u64 ctx.space (regs.(b) + off);
    ctx.pc <- ctx.pc + 1;
    None
  | I.Store (s, b, off) ->
    Addr_space.write_u64 ctx.space (regs.(b) + off) regs.(s);
    ctx.pc <- ctx.pc + 1;
    None
  | I.Load8 (d, b, off) ->
    regs.(d) <- Addr_space.read_u8 ctx.space (regs.(b) + off);
    ctx.pc <- ctx.pc + 1;
    None
  | I.Store8 (s, b, off) ->
    Addr_space.write_u8 ctx.space (regs.(b) + off) regs.(s);
    ctx.pc <- ctx.pc + 1;
    None
  | I.Jmp t ->
    ctx.pmu.Pmu.branches <- ctx.pmu.Pmu.branches + 1;
    ctx.pc <- t;
    None
  | I.Jcc (c, r, o, t) ->
    (* Retired conditional branch: one deterministic RCB event whether or
       not the branch is taken. *)
    ctx.pmu.Pmu.rcb <- ctx.pmu.Pmu.rcb + 1;
    ctx.pmu.Pmu.branches <- ctx.pmu.Pmu.branches + 1;
    if I.eval_cond c regs.(r) (operand ctx o) then ctx.pc <- t
    else ctx.pc <- ctx.pc + 1;
    None
  | I.Call t ->
    ctx.pmu.Pmu.branches <- ctx.pmu.Pmu.branches + 1;
    Addr_space.write_u64 ctx.space (regs.(sp) - 8) (ctx.pc + 1);
    regs.(sp) <- regs.(sp) - 8;
    ctx.pc <- t;
    None
  | I.Callr r ->
    ctx.pmu.Pmu.branches <- ctx.pmu.Pmu.branches + 1;
    Addr_space.write_u64 ctx.space (regs.(sp) - 8) (ctx.pc + 1);
    regs.(sp) <- regs.(sp) - 8;
    ctx.pc <- regs.(r);
    None
  | I.Ret ->
    ctx.pmu.Pmu.branches <- ctx.pmu.Pmu.branches + 1;
    let target = Addr_space.read_u64 ctx.space regs.(sp) in
    regs.(sp) <- regs.(sp) + 8;
    ctx.pc <- target;
    None
  | I.Push o ->
    Addr_space.write_u64 ctx.space (regs.(sp) - 8) (operand ctx o);
    regs.(sp) <- regs.(sp) - 8;
    ctx.pc <- ctx.pc + 1;
    None
  | I.Pop r ->
    let v = Addr_space.read_u64 ctx.space regs.(sp) in
    regs.(sp) <- regs.(sp) + 8;
    regs.(r) <- v;
    ctx.pc <- ctx.pc + 1;
    None
  | I.Syscall ->
    ctx.pc <- ctx.pc + 1;
    Some Stop_syscall
  | I.Hook n ->
    ctx.pc <- ctx.pc + 1;
    Some (Stop_hook n)
  | I.Rdtsc r ->
    ctx.pc <- ctx.pc + 1;
    if ctx.tsc_trap then Some (Stop_tsc r)
    else begin
      regs.(r) <- env.rdtsc ();
      None
    end
  | I.Rdrand r ->
    regs.(r) <- env.rdrand ();
    ctx.pc <- ctx.pc + 1;
    None
  | I.Cpuid_core r ->
    regs.(r) <- ctx.core;
    ctx.pc <- ctx.pc + 1;
    None
  | I.Cas (a, e, n, d) ->
    (* Deterministic atomic, like x86 CMPXCHG (paper §5.1: unlike ARM
       LL/SC, this never fails for reasons invisible to user space). *)
    let addr = regs.(a) in
    let cur = Addr_space.read_u64 ctx.space addr in
    if cur = regs.(e) then begin
      Addr_space.write_u64 ctx.space addr regs.(n);
      regs.(d) <- 1
    end
    else begin
      regs.(e) <- cur;
      regs.(d) <- 0
    end;
    ctx.pc <- ctx.pc + 1;
    None
  | I.Emit (a, v) ->
    (match I.decode regs.(v) with
    | None -> Some (Stop_fault (F_ill ctx.pc))
    | Some insn ->
      incr jit_writes;
      Addr_space.text_write ctx.space regs.(a) insn;
      ctx.pc <- ctx.pc + 1;
      None)
  | I.Halt -> Some (Stop_fault (F_ill ctx.pc))

(* Run until a stop or for at most [fuel] instructions.  Returns the stop
   (None if fuel ran out) and the number of instructions retired. *)
let run env ctx ~fuel =
  let steps = ref 0 in
  let stop = ref None in
  (try
     while !stop = None && !steps < fuel do
       if Addr_space.bp_is_set ctx.space ctx.pc then stop := Some Stop_bkpt
       else begin
         match Addr_space.text_get ctx.space ctx.pc with
         | None -> stop := Some (Stop_fault (F_ill ctx.pc))
         | Some insn ->
           let s = exec_one env ctx insn in
           incr steps;
           (* The PMU interrupt takes priority over synchronous stops only
              if the instruction retired normally; a syscall/hook stop is
              delivered first and the interrupt stays pending. *)
           let fired = Pmu.tick_interrupt ctx.pmu in
           (match s with
           | Some _ -> stop := s
           | None ->
             if fired then stop := Some Stop_pmu
             else if ctx.single_step then stop := Some Stop_singlestep)
       end
     done
   with Addr_space.Segv { addr; access } ->
     incr steps;
     stop := Some (Stop_fault (F_segv { addr; access })));
  (!stop, !steps)

let pp_fault ppf = function
  | F_segv { addr; access } ->
    let a =
      match access with
      | Addr_space.Read -> "read"
      | Addr_space.Write -> "write"
      | Addr_space.Exec -> "exec"
    in
    Fmt.pf ppf "SEGV(%s @ %#x)" a addr
  | F_ill pc -> Fmt.pf ppf "ILL(pc=%#x)" pc
  | F_div pc -> Fmt.pf ppf "DIV(pc=%#x)" pc

let pp_stop ppf = function
  | Stop_syscall -> Fmt.string ppf "syscall"
  | Stop_hook n -> Fmt.pf ppf "hook(%d)" n
  | Stop_bkpt -> Fmt.string ppf "bkpt"
  | Stop_pmu -> Fmt.string ppf "pmu"
  | Stop_singlestep -> Fmt.string ppf "singlestep"
  | Stop_tsc r -> Fmt.pf ppf "tsc(r%d)" r
  | Stop_fault f -> pp_fault ppf f
