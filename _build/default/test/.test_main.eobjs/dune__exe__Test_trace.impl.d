test/test_trace.ml: Alcotest Array Bitio Buffer Bytes Char Codec Compress Entropy Event Fmt Gen Huffman List Printf QCheck QCheck_alcotest Signals String Sysno Trace
