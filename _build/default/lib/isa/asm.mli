(** A tiny two-pass assembler: guest programs are written as item lists
    with symbolic labels, then resolved to absolute code addresses. *)

type item =
  | I of Insn.t
  | Label of string
  | Jmp_l of string
  | Jcc_l of Insn.cond * Insn.reg * Insn.operand * string
  | Call_l of string
  | Lea_l of Insn.reg * string

type program = { base : int; code : Insn.t array; symbols : (string * int) list }

exception Undefined_label of string
exception Duplicate_label of string

val assemble : base:int -> item list -> program
(** Two-pass assembly.  Raises {!Undefined_label} or {!Duplicate_label}. *)

val symbol : program -> string -> int
(** Absolute address of a label. Raises {!Undefined_label}. *)

val length : program -> int

(** {2 Mnemonic constructors} *)

val mov : Insn.reg -> Insn.operand -> item
val movi : Insn.reg -> int -> item
val movr : Insn.reg -> Insn.reg -> item
val addi : Insn.reg -> int -> item
val addr_ : Insn.reg -> Insn.reg -> item
val subi : Insn.reg -> int -> item
val muli : Insn.reg -> int -> item
val load : Insn.reg -> Insn.reg -> int -> item
val store : Insn.reg -> Insn.reg -> int -> item
val load8 : Insn.reg -> Insn.reg -> int -> item
val store8 : Insn.reg -> Insn.reg -> int -> item
val push : Insn.operand -> item
val pop : Insn.reg -> item
val syscall : item
val ret : item
val nop : item
val label : string -> item
val jmp : string -> item
val jcc : Insn.cond -> Insn.reg -> Insn.operand -> string -> item
val jnz : Insn.reg -> string -> item
val jz : Insn.reg -> string -> item
val call : string -> item
val lea : Insn.reg -> string -> item
