(** Persistent sidecar indexes for time travel (paper §2.7: derived
    artifacts stored alongside the trace so later sessions need not
    recompute them).

    An index answers three questions in O(log n) that otherwise need an
    O(n) scan or a full replay:

    - {b per-pc}: the latest frame before a point whose recorded
      registers land on a given pc ([prev_exec] — the [bc] breakpoint
      scan);
    - {b per-address}: which frames may have written a byte range
      ([write_candidates] — reverse-watchpoint resolution).  Candidates
      are page-granular and a deliberate {e superset}: frames with
      unbounded effects (exec, clone, performed syscalls) are always
      candidates, and the debugger verifies each candidate by sampling
      so indexed answers stay byte-identical to scan-based ones;
    - {b per-time}: the frame position whose virtual-clock reading is
      the latest not exceeding T ([frame_of_time] — seek_to_time).

    It also carries durable checkpoint images (opaque blobs encoded by
    the replayer) so a freshly reopened trace seeks in O(delta) without
    replaying from frame 0.

    The index is derived data: traces remain fully usable without one,
    and a corrupt index record is dropped on salvage while the frame
    stream stays readable. *)

type t

val n_events : t -> int
(** Number of frames the index covers; must equal the trace's. *)

(* ----- queries ----------------------------------------------------- *)

val prev_exec : t -> pc:int -> before:int -> int option
(** Latest frame [f < before] whose {!Event.frame_pc} is [pc]. *)

val write_candidates : t -> addr:int -> len:int -> before:int -> int list
(** Frames [f < before] that may have changed bytes in
    [addr, addr+len), newest first.  A superset by design — verify each
    by sampling. *)

val frame_of_time : t -> int -> int option
(** Largest position [p] whose virtual-clock reading is [<= t]; [None]
    if even position 0 is later than [t]. *)

val clock_at : t -> int -> int
(** Virtual-clock reading at position [p] (0 <= p <= n_events). *)

val nearest_checkpoint : t -> int -> (int * string) option
(** Greatest durable checkpoint [(frame, blob)] with [frame <= target]. *)

val checkpoints : t -> (int * string) array
(** All durable checkpoints, ascending by frame. *)

(* ----- building ---------------------------------------------------- *)

type builder

val builder : clock0:int -> builder
(** [clock0] is the virtual-clock reading at position 0 (after replay
    setup, before any frame). *)

val note_frame : builder -> Event.t -> pages:int list -> clock:int -> unit
(** Record the next frame in order: the event, the page indexes its
    application wrote (from the {!Addr_space} write observer), and the
    virtual clock after applying it. *)

val note_checkpoint : builder -> frame:int -> blob:string -> unit
(** Attach a durable checkpoint image restoring to position [frame]. *)

val finish : builder -> t

val add_checkpoint : t -> frame:int -> blob:string -> unit
(** Loader hook: attach a checkpoint decoded from its own record.
    Inserts in frame order; duplicate frames are replaced. *)

(* ----- codec -------------------------------------------------------- *)

val put_meta : Codec.sink -> t -> unit
(** The index tables {e without} checkpoints (those travel as their own
    records so one corrupt blob never takes down the whole index). *)

val get_meta : Codec.source -> t
(** Raises {!Codec.Corrupt} on malformed input. *)

val put_checkpoint : Codec.sink -> frame:int -> blob:string -> unit
val get_checkpoint : Codec.source -> int * string
