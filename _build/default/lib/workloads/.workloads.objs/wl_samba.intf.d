lib/workloads/wl_samba.mli: Workload
