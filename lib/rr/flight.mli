(** Flight-recorder mode (DESIGN.md §4j, ROADMAP item 2).

    "Always on" recording: the trace streams into a bounded in-memory
    ring ({!Trace.ring}) instead of a file, costing a fixed chunk
    budget no matter how long the workload runs.  When something goes
    wrong — the recording dies, the root process exits non-zero, a
    verification replay diverges — the retained window is dumped to a
    file or a {!Repo.t}; a healthy run discards it for free.

    Triggers come from [opts.dump_on] ({!Recorder.trigger}); the most
    severe firing trigger names the {!cause}.  [On_divergence] runs a
    verification replay of the window, but only when nothing was
    dropped ([rr_base_frame = 0]) — a truncated window has no frame-0
    initial state to replay from (the documented flight-recorder
    limitation).  When divergence verification is requested on a
    truncated window the cause is {!Partial_window}: the window still
    dumps, explicitly classified as unverifiable rather than silently
    passing. *)

type cause =
  | Signal of Recorder.error  (** the recording itself died *)
  | Exit_nonzero of int
  | Diverged of string  (** verification replay raised [Divergence] *)
  | Partial_window of { base_frame : int }
      (** divergence verification was requested but the ring dropped
          frames ([rr_base_frame > 0]): the window is dumped but cannot
          be replay-verified *)
  | Always

type dump_target = To_file of string | To_repo of Repo.t * string

type outcome = {
  result : (Recorder.stats * Kernel.t, Recorder.error) result;
      (** the underlying recording's outcome (trace omitted: the window
          snapshot is [window] below) *)
  window : Trace.t;  (** the ring window, rebased to frame 0 *)
  report : Trace.ring_report;
  cause : cause option;  (** [None]: no trigger fired *)
  dumped_to : string option;
      (** the file path or ["repo:<name>"] the window was persisted to *)
}

val pp_cause : cause Fmt.t

val parse_trigger : string -> Recorder.trigger option
(** ["signal"], ["exit!=0"], ["divergence"], ["always"] — the
    [--dump-on] spellings. *)

val trigger_to_string : Recorder.trigger -> string

val record :
  ?opts:Recorder.opts ->
  ?on_stop:(Kernel.t -> unit) ->
  ?dump:dump_target ->
  ring:Trace.ring ->
  setup:(Kernel.t -> unit) ->
  exe:string ->
  unit ->
  (outcome, Recorder.error) result
(** Record [exe] with the trace streaming into [ring] (the sink in
    [opts] is overridden; all other options apply as given).  After the
    run — whether it completed or died — evaluate [opts.dump_on]
    against the outcome and, if a trigger fired and [dump] is given,
    persist the window.  [Error] is returned only when the {e dump}
    could not be written or the window could not be snapshotted; a
    recording failure is data in [outcome.result] (it is precisely what
    [On_signal] exists to catch). *)
