lib/kern/bpf.mli:
