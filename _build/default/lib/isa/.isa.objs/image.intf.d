lib/isa/image.mli: Addr_space Asm
