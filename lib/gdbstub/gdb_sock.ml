(* Socket transports: the tree's only Unix.socket/Unix.bind site (the
   check_format.sh lint pins it here).  One client per listener — a
   replay session is single-user. *)

module T = Gdb_transport

let transport_of_fd ?(on_close = fun () -> ()) fd desc =
  let buf = Bytes.create 4096 in
  let closed = ref false in
  { T.send =
      (fun s ->
        let rec go off =
          if off < String.length s then
            let n = Unix.write_substring fd s off (String.length s - off) in
            go (off + n)
        in
        if not !closed then try go 0 with Unix.Unix_error _ -> ());
    recv =
      (fun () ->
        if !closed then T.Eof
        else
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> T.Eof
          | n -> T.Data (Bytes.sub_string buf 0 n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> T.Empty
          | exception Unix.Unix_error _ -> T.Eof);
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          (try Unix.close fd with Unix.Unix_error _ -> ());
          on_close ()
        end);
    desc }

let accept_one sock desc ~on_close =
  Unix.listen sock 1;
  let client, _addr = Unix.accept sock in
  Unix.close sock;
  transport_of_fd ~on_close client desc

let listen_tcp ?(host = "127.0.0.1") ~port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  accept_one sock
    (Printf.sprintf "tcp:%s:%d" host port)
    ~on_close:(fun () -> ())

let listen_unix ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  accept_one sock ("unix:" ^ path)
    ~on_close:(fun () -> try Unix.unlink path with Unix.Unix_error _ -> ())
