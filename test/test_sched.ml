(* Tests for the recorder's scheduler: strict priorities, round-robin
   fairness, chaos-mode behavior (paper §2.2, §8). *)

let always _ = true

let test_round_robin_rotation () =
  let s = Rec_sched.create ~seed:1 () in
  List.iter (Rec_sched.add_task s) [ 1; 2; 3 ];
  let picks =
    List.init 6 (fun _ ->
        match Rec_sched.pick s ~runnable:always ~priority:(fun _ -> 0) with
        | Some t -> t
        | None -> -1)
  in
  Alcotest.(check (list int)) "fair rotation" [ 1; 2; 3; 1; 2; 3 ] picks

let test_priorities_strict () =
  let s = Rec_sched.create ~seed:1 () in
  List.iter (Rec_sched.add_task s) [ 1; 2; 3 ];
  (* task 2 has the best (lowest) priority: it always wins. *)
  let prio = function 2 -> -1 | _ -> 0 in
  for _ = 1 to 5 do
    Alcotest.(check (option int)) "highest priority wins" (Some 2)
      (Rec_sched.pick s ~runnable:always ~priority:prio)
  done

let test_priority_class_round_robin () =
  let s = Rec_sched.create ~seed:1 () in
  List.iter (Rec_sched.add_task s) [ 1; 2; 3 ];
  (* 1 and 3 share the best priority; 2 is worse and never runs. *)
  let prio = function 2 -> 5 | _ -> 0 in
  let picks =
    List.init 4 (fun _ ->
        Option.get (Rec_sched.pick s ~runnable:always ~priority:prio))
  in
  Alcotest.(check bool) "2 starved by betters" true
    (not (List.mem 2 picks));
  Alcotest.(check bool) "both 1 and 3 run" true
    (List.mem 1 picks && List.mem 3 picks)

let test_runnable_filter () =
  let s = Rec_sched.create ~seed:1 () in
  List.iter (Rec_sched.add_task s) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "only runnable considered" (Some 2)
    (Rec_sched.pick s ~runnable:(fun t -> t = 2) ~priority:(fun _ -> 0));
  Alcotest.(check (option int)) "none runnable" None
    (Rec_sched.pick s ~runnable:(fun _ -> false) ~priority:(fun _ -> 0))

let test_remove_task () =
  let s = Rec_sched.create ~seed:1 () in
  List.iter (Rec_sched.add_task s) [ 1; 2 ];
  Rec_sched.remove_task s 1;
  for _ = 1 to 3 do
    Alcotest.(check (option int)) "removed task never picked" (Some 2)
      (Rec_sched.pick s ~runnable:always ~priority:(fun _ -> 0))
  done

let test_default_timeslice_constant () =
  let s = Rec_sched.create ~timeslice_rcbs:1234 ~seed:1 () in
  for _ = 1 to 10 do
    Alcotest.(check int) "non-chaos slices are fixed" 1234
      (Rec_sched.timeslice s)
  done

let qcheck_chaos_timeslice_bounds =
  QCheck.Test.make ~name:"chaos timeslices stay within bounds" ~count:200
    QCheck.(pair (int_range 1 1000) (int_range 1000 100_000))
    (fun (seed, base) ->
      let s = Rec_sched.create ~timeslice_rcbs:base ~chaos:true ~seed () in
      List.for_all
        (fun _ ->
          let ts = Rec_sched.timeslice s in
          ts >= 500 && ts <= base)
        (List.init 20 Fun.id))

let qcheck_chaos_deterministic =
  QCheck.Test.make ~name:"chaos decisions deterministic per seed" ~count:50
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let run () =
        let s = Rec_sched.create ~chaos:true ~seed () in
        List.iter (Rec_sched.add_task s) [ 1; 2; 3; 4 ];
        List.init 30 (fun _ ->
            ( Option.value ~default:(-1)
                (Rec_sched.pick s ~runnable:always ~priority:(fun _ -> 0)),
              Rec_sched.timeslice s ))
      in
      run () = run ())

let qcheck_pick_total =
  QCheck.Test.make ~name:"pick always returns a runnable task" ~count:200
    QCheck.(pair small_int (list_of_size Gen.(1 -- 8) (int_bound 20)))
    (fun (seed, tids) ->
      let s = Rec_sched.create ~chaos:(seed mod 2 = 0) ~seed () in
      List.iter (Rec_sched.add_task s) tids;
      match Rec_sched.pick s ~runnable:always ~priority:(fun t -> t mod 3) with
      | Some t -> List.mem t tids
      | None -> tids = [])

(* ---- fork storms (the serve workload's accept loop) ------------------
   A fork-per-connection server is a storm of clones: every fork adds
   the child and prefers it (rr's child-runs-first policy), parents park
   in wait4, and the run queue fills with blocked tasks.  The scheduler
   must keep choosing the fresh child first and never deadlock while
   the queue drains. *)

let qcheck_fork_storm_child_first =
  QCheck.Test.make ~name:"fork storm: preferred child always picked first"
    ~count:200
    QCheck.(pair small_int (list_of_size Gen.(1 -- 30) (int_bound 1000)))
    (fun (seed, forks) ->
      let s = Rec_sched.create ~seed () in
      Rec_sched.add_task s 0;
      let next = ref 1 in
      List.for_all
        (fun _ ->
          (* a fork from some existing task: add + prefer the child *)
          let child = !next in
          incr next;
          Rec_sched.add_task s child;
          Rec_sched.prefer s child;
          (* everyone runnable, equal priority: the child runs first *)
          match
            Rec_sched.pick s ~runnable:always ~priority:(fun _ -> 0)
          with
          | Some t -> t = child
          | None -> false)
        forks)

let qcheck_fork_burst_lifo =
  QCheck.Test.make
    ~name:"nested fork burst runs children newest-first" ~count:200
    QCheck.(pair small_int (int_range 1 10))
    (fun (seed, burst) ->
      (* nested forks: each fresh child immediately forks its own child
         before anyone is scheduled, so prefers stack up — the picks
         must then come newest-first (each prefer moved its child to
         the front). *)
      let s = Rec_sched.create ~seed () in
      Rec_sched.add_task s 0;
      let children = List.init burst (fun i -> i + 1) in
      List.iter
        (fun c ->
          Rec_sched.add_task s c;
          Rec_sched.prefer s c)
        children;
      let picks =
        List.init burst (fun _ ->
            Option.get
              (Rec_sched.pick s ~runnable:always ~priority:(fun _ -> 0)))
      in
      picks = List.rev children)

let qcheck_fork_storm_parked_parents =
  QCheck.Test.make
    ~name:"parked parents never deadlock a full run queue" ~count:200
    QCheck.(pair small_int (int_range 1 20))
    (fun (seed, n) ->
      (* a chain of nested forks: each parent parks in wait4 right
         after preferring its child, so the queue fills with blocked
         tasks and exactly one task is runnable at a time.  Scheduling
         must reach it both while the storm builds and while it
         drains (each exit unparks the waiting parent). *)
      let s = Rec_sched.create ~chaos:(seed mod 2 = 0) ~seed () in
      Rec_sched.add_task s 0;
      let parked = Hashtbl.create 8 in
      let runnable t = not (Hashtbl.mem parked t) in
      let ok = ref true in
      for child = 1 to n do
        Rec_sched.add_task s child;
        Rec_sched.prefer s child;
        Hashtbl.replace parked (child - 1) ();
        match Rec_sched.pick s ~runnable ~priority:(fun _ -> 0) with
        | Some t -> if t <> child then ok := false
        | None -> ok := false
      done;
      for child = n downto 1 do
        Rec_sched.remove_task s child;
        Hashtbl.remove parked (child - 1);
        match Rec_sched.pick s ~runnable ~priority:(fun _ -> 0) with
        | Some t -> if Hashtbl.mem parked t then ok := false
        | None -> ok := false
      done;
      !ok)

let suites =
  [ ( "rr.sched",
      [ Alcotest.test_case "round-robin rotation" `Quick
          test_round_robin_rotation;
        Alcotest.test_case "strict priorities" `Quick test_priorities_strict;
        Alcotest.test_case "round-robin within class" `Quick
          test_priority_class_round_robin;
        Alcotest.test_case "runnable filter" `Quick test_runnable_filter;
        Alcotest.test_case "remove task" `Quick test_remove_task;
        Alcotest.test_case "fixed timeslice" `Quick
          test_default_timeslice_constant;
        QCheck_alcotest.to_alcotest qcheck_chaos_timeslice_bounds;
        QCheck_alcotest.to_alcotest qcheck_chaos_deterministic;
        QCheck_alcotest.to_alcotest qcheck_pick_total;
        QCheck_alcotest.to_alcotest qcheck_fork_storm_child_first;
        QCheck_alcotest.to_alcotest qcheck_fork_burst_lifo;
        QCheck_alcotest.to_alcotest qcheck_fork_storm_parked_parents ] ) ]
