(** The guest CPU interpreter: deterministic given register/memory state
    and the [env] callbacks; all nondeterminism enters via [env] and the
    core index. *)

type ctx = {
  regs : int array;
  mutable pc : int;
  mutable core : int;
  mutable space : Addr_space.t;
  pmu : Pmu.t;
  mutable tsc_trap : bool;
  mutable single_step : bool;
}

type fault =
  | F_segv of { addr : int; access : Addr_space.access }
  | F_ill of int
  | F_div of int

type stop =
  | Stop_syscall
  | Stop_hook of int
  | Stop_bkpt
  | Stop_pmu
  | Stop_singlestep
  | Stop_tsc of Insn.reg
  | Stop_fault of fault

type env = { rdtsc : unit -> int; rdrand : unit -> int }

val jit_writes : int ref
(** Global count of run-time code writes ([Emit]), for instrumentation
    cost models.  Snapshot/reset around a run. *)

val create : space:Addr_space.t -> ctx
val copy_regs : ctx -> int array
val set_regs : ctx -> int array -> unit

val run : env -> ctx -> fuel:int -> stop option * int
(** Run until a stop or fuel exhaustion ([None]); also returns the number
    of instructions retired. *)

val pp_stop : stop Fmt.t
val pp_fault : fault Fmt.t
