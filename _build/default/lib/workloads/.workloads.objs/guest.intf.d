lib/workloads/guest.mli: Asm Image Insn
