(** Executable images: the simulator's stand-in for ELF binaries. *)

type t = {
  name : string;
  prog : Asm.program;
  entry : int;
  data_maps : (int * int) list;
  data_init : (int * string) list;
  stack_size : int;
}

val default_stack_size : int

val make :
  name:string ->
  ?data_maps:(int * int) list ->
  ?data_init:(int * string) list ->
  ?stack_size:int ->
  ?entry:int ->
  Asm.program ->
  t

val byte_size : t -> int
(** Approximate on-disk size for trace-storage accounting. *)

val load : t -> Addr_space.t -> unit
(** Populate a fresh address space: text, data regions, stack.  Does not
    touch registers; the kernel sets pc/sp. *)

val symbol : t -> string -> int
