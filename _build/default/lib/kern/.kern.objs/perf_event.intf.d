lib/kern/perf_event.mli:
