(** Per-connection trace shards (DESIGN.md §4k).

    A recorded server trace demuxes into one sub-trace per connection:
    shard [c] keeps the control frames (tag 0 — the root, accept loop
    and load generator, shared by every shard) plus the frames tagged
    [c] (the connection's worker and client).  Each shard is a
    standalone replayable {!Trace.t}: filtering whole tasks keeps every
    included task's frame subsequence complete, and replay tolerates
    tasks that are still alive when the (filtered) trace ends.

    Tags come from outside — this module never parses frames for
    connection keys (that derivation is confined to the recorder-side
    tracker; see check_format.sh).  [tags.(i)] is frame [i]'s owning
    connection, 0 for control.

    Shards of one base trace live in a content-addressed {!Repo} as
    manifests named [<base>.conn-NNNN]; their chunks, images and file
    blocks dedup against the full trace and each other (the executable
    image and control-heavy chunks are stored once).  A catalog file
    under [<repo>/shards/<base>] lists them for {!list}.

    Telemetry: [shard.shards_written], [shard.bytes_shared] (bytes a
    shard deduplicated against objects already in the repo). *)

type info = {
  si_conn : int;
  si_name : string; (** manifest name in the repo *)
  si_frames : int; (** frames in the shard (control + own) *)
  si_own_frames : int; (** frames tagged with this connection *)
  si_new_bytes : int; (** object bytes this shard newly stored *)
  si_shared_bytes : int; (** object bytes deduped against the repo *)
}

type result_ = {
  base : string;
  shards : info list; (** in connection order *)
  total_new_bytes : int;
  total_shared_bytes : int;
}

val shard_name : base:string -> conn:int -> string
(** [<base>.conn-NNNN]. *)

val extract : tags:int array -> conn:int -> Trace.t -> Trace.t * int array
(** Build one shard in memory: the filtered trace plus, for each shard
    frame, the index of the original frame it came from (the
    corresponding-frame map targeted replay uses).  Raises
    [Invalid_argument] if [tags] does not cover the trace or [conn <=
    0]. *)

val split :
  ?only:int ->
  repo:Repo.t ->
  base:string ->
  tags:int array ->
  Trace.t ->
  (result_, Repo.error) result
(** Demux the trace into per-connection shards (every connection id
    appearing in [tags], or just [only]) and store each in the repo,
    writing the catalog.  One pass over the trace feeds all shard
    writers. *)

val list : Repo.t -> base:string -> (info list, Repo.error) result
(** Read the catalog written by {!split}. *)

val load :
  ?opts:Trace.opts -> Repo.t -> base:string -> conn:int ->
  (Trace.t, Repo.error) result
(** Open one shard as a standalone trace. *)
