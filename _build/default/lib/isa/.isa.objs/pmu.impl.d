lib/isa/pmu.ml: Entropy
