(* The `sambatest` workload (paper §4.1): a UDP echo test — a server
   process and a test client exchanging datagrams, everything recorded.
   Blocking recvfrom calls make this the desched machinery's (§3.3)
   natural habitat. *)

module K = Kernel
module G = Guest
open Wl_common

type params = {
  echoes : int;
  payload : int;
  server_work : int; (* per-request processing *)
  client_work : int;
}

let default =
  { echoes = 120; payload = 64; server_work = 12_000; client_work = 6_000 }

let server_port = 5000
let client_port = 5001
let quit_marker = 0xbeef

let program b p =
  let buf = G.bss b 2048 in
  let src = G.bss b 8 in
  let payload = G.blob b (String.make p.payload 'S') in
  let status_addr = G.bss b 8 in
  G.emit b
    ((* root: fork server, fork client, wait for both *)
    G.sys_fork
    @. [ Asm.jz 0 "server" ]
    @. G.sys_fork
    @. [ Asm.jz 0 "client" ]
    @. G.sys_wait4 ~pid:(G.imm (-1)) ~status_addr:(G.imm status_addr)
    @. G.sys_wait4 ~pid:(G.imm (-1)) ~status_addr:(G.imm status_addr)
    @. G.sys_exit_group 0
    (* ---- server ---- *)
    @. [ Asm.label "server" ]
    @. G.sys_socket
    @. [ Asm.movr 7 0 ]
    @. G.sys_bind ~fd:(G.reg 7) ~port:(G.imm server_port)
    @. [ Asm.label "srv_loop" ]
    @. G.sys_recvfrom ~fd:(G.reg 7) ~buf:(G.imm buf) ~len:(G.imm 2048)
         ~src_addr:(G.imm src)
    @. [ Asm.movr 8 0 ] (* length *)
    @. [ Asm.movi 9 buf; Asm.load 10 9 0 ]
    @. [ Asm.jcc Insn.Eq 10 (G.imm quit_marker) "srv_done" ]
    @. G.compute_loop b ~n:p.server_work
    @. [ Asm.movi 9 src; Asm.load 10 9 0 ]
    @. G.sys_sendto ~fd:(G.reg 7) ~buf:(G.imm buf) ~len:(G.reg 8)
         ~port:(G.reg 10)
    (* result check keeps the syscall site patchable (§3.1) *)
    @. [ Asm.jcc Insn.Lt 0 (G.imm 0) "srv_done" ]
    @. [ Asm.jmp "srv_loop" ]
    @. [ Asm.label "srv_done" ]
    @. G.sys_exit_group 0
    (* ---- client ---- *)
    @. [ Asm.label "client" ]
    @. G.sys_socket
    @. [ Asm.movr 7 0 ]
    @. G.sys_bind ~fd:(G.reg 7) ~port:(G.imm client_port)
    @. [ Asm.movi 12 0 ]
    @. [ Asm.label "cli_loop" ]
    @. [ Asm.label "cli_send" ]
    @. G.sys_sendto ~fd:(G.reg 7) ~buf:(G.imm payload) ~len:(G.imm p.payload)
         ~port:(G.imm server_port)
    @. [ Asm.jcc Insn.Ge 0 (G.imm 0) "cli_sent" ]
    @. G.sys_nanosleep ~ns:(G.imm 20_000)
    @. [ Asm.jmp "cli_send" ]
    @. [ Asm.label "cli_sent" ]
    @. G.sys_recvfrom ~fd:(G.reg 7) ~buf:(G.imm buf) ~len:(G.imm 2048)
         ~src_addr:(G.imm src)
    @. G.compute_loop b ~n:p.client_work
    @. [ Asm.addi 12 1; Asm.jcc Insn.Lt 12 (G.imm p.echoes) "cli_loop" ]
    (* tell the server to stop *)
    @. [ Asm.movi 9 buf; Asm.movi 10 quit_marker; Asm.store 10 9 0 ]
    @. [ Asm.label "cli_quit" ]
    @. G.sys_sendto ~fd:(G.reg 7) ~buf:(G.imm buf) ~len:(G.imm 16)
         ~port:(G.imm server_port)
    @. [ Asm.jcc Insn.Ge 0 (G.imm 0) "cli_done" ]
    @. G.sys_nanosleep ~ns:(G.imm 20_000)
    @. [ Asm.jmp "cli_quit" ]
    @. [ Asm.label "cli_done" ]
    @. G.sys_exit_group 0)

let make ?(params = default) () =
  let setup k =
    Vfs.mkdir_p (K.vfs k) "/bin";
    let b = G.create () in
    program b params;
    K.install_image k ~path:"/bin/sambatest" (G.build b ~name:"sambatest" ())
  in
  { Workload.name = "sambatest";
    exe = "/bin/sambatest";
    setup;
    cores = 2;
    score_based = false }
