(* Executable images: the simulator's stand-in for ELF binaries.

   An image bundles assembled code, initial data, and a stack size.  The
   kernel's execve loads one into a fresh address space; the recorder
   clones the backing file into the trace so replay can reconstruct the
   mappings (paper §2.3.8, §2.7). *)

type t = {
  name : string;
  prog : Asm.program;
  entry : int;
  data_maps : (int * int) list; (* anonymous rw regions: (addr, len) *)
  data_init : (int * string) list; (* initialized bytes inside those regions *)
  stack_size : int;
}

let default_stack_size = 64 * 1024

let make ~name ?(data_maps = []) ?(data_init = []) ?(stack_size = default_stack_size)
    ?entry prog =
  let entry = match entry with Some e -> e | None -> prog.Asm.base in
  { name; prog; entry; data_maps; data_init; stack_size }

(* Approximate on-disk size, for trace-storage accounting: one "encoded"
   instruction word is 8 bytes, plus initialized data. *)
let byte_size t =
  (Array.length t.prog.Asm.code * 8)
  + List.fold_left (fun acc (_, s) -> acc + String.length s) 0 t.data_init

let load t space =
  Addr_space.text_load space ~base:t.prog.Asm.base t.prog.Asm.code;
  List.iter
    (fun (addr, len) ->
      ignore (Addr_space.map space ~addr ~len ~prot:Mem.prot_rw ()))
    t.data_maps;
  List.iter
    (fun (addr, s) ->
      Addr_space.write_bytes ~force:true space addr (Bytes.of_string s))
    t.data_init;
  let stack_base = Addr_space.stack_top - t.stack_size in
  ignore
    (Addr_space.map space ~addr:stack_base ~len:t.stack_size ~prot:Mem.prot_rw
       ~kind:Addr_space.Stack ());
  ()

let symbol t name = Asm.symbol t.prog name
