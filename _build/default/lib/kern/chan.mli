(** Kernel channel objects: pipes and UDP sockets — the blocking-I/O
    substrate that the desched machinery (paper §3.3) exists for.
    Wait queues hold thread ids; the kernel resolves them. *)

type waitq = { mutable waiters : int list }

val waitq : unit -> waitq
val enqueue : waitq -> int -> unit
val dequeue : waitq -> int -> unit
val take_all : waitq -> int list

type pipe = {
  pipe_id : int;
  buf : Buffer.t;
  capacity : int;
  mutable readers : int; (* open read-end descriptors *)
  mutable writers : int;
  read_wait : waitq;
  write_wait : waitq;
}

val make_pipe : id:int -> ?capacity:int -> unit -> pipe

val pipe_readable : pipe -> bool
(** Data available, or EOF (no writers left). *)

val pipe_writable : pipe -> bool

val pipe_read : pipe -> int -> bytes
(** Take up to [len] bytes; the caller has checked readability. *)

val pipe_write : pipe -> bytes -> int
(** Append up to the free capacity; returns the bytes accepted. *)

type datagram = { payload : bytes; src_port : int }

type sock = {
  sock_id : int;
  mutable port : int option;
  rx : datagram Queue.t;
  sock_wait : waitq;
}

val make_sock : id:int -> sock
val sock_readable : sock -> bool
val sock_deliver : sock -> datagram -> unit
val sock_take : sock -> datagram
