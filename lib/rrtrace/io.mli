(** The pluggable byte-IO layer under the trace store.

    Every trace read and write flows through an {!writer} or {!reader},
    so hostile conditions — a disk that fills up, a recording process
    killed mid-write, a file that rots on a failing drive — can be
    reproduced {e deterministically} by wrapping the real IO in
    {!inject} / {!inject_reader} with a seeded fault plan.  This is what
    lets the fault-injection property tests state "for every injected
    fault, the system either succeeds byte-identically, salvages the
    intact prefix, or fails with a typed error" and actually enumerate
    the faults.

    Contract: {!write} either accepts the whole string or raises
    {!Io_error}; {!read_all} either returns the whole contents or raises
    {!Io_error}.  Partial progress before a failure is visible to the
    caller only through {!written} (and, for buffer-backed writers, the
    buffer itself — which is how tests recover the prefix a crashed
    writer left behind). *)

type error = {
  op : string; (** "open", "write", "read", "close" *)
  path : string;
  reason : string; (** e.g. "ENOSPC", "simulated crash", a [Sys_error] *)
}

exception Io_error of error

val pp_error : error Fmt.t
val error_to_string : error -> string

(** A deterministic fault, positioned by absolute byte offset in the
    ideal (unfaulted) stream.  Write faults apply to writers, read
    faults to readers; each fires at most once. *)
type fault =
  | Write_enospc_after of int
      (** accept the first [n] bytes, then fail with ENOSPC (the prefix
          reaches the device — a classic torn write) *)
  | Write_crash_at of int
      (** the writer is killed at byte [k]: bytes past [k] are lost and
          the writer raises (reason ["simulated crash"]) *)
  | Write_short_at of int
      (** a single short write at byte [k]: the prefix lands, the rest
          of that write is dropped, and the writer fails *)
  | Write_bit_flip of int
      (** flip one bit of byte [n] in passing; the write {e succeeds} —
          silent corruption that only CRCs can catch *)
  | Read_truncate_at of int  (** the reader sees only the first [n] bytes *)
  | Read_bit_flip of int  (** byte [n] comes back with one bit flipped *)
  | Read_fail_at of int
      (** reading fails once [n] bytes have been delivered *)

(** {1 Writers} *)

type writer

val file_writer : string -> writer
(** Write to a fresh file.  Raises {!Io_error} if it cannot be opened. *)

val buffer_writer : ?path:string -> Buffer.t -> writer
(** Write into [b].  [path] labels errors (default ["<buffer>"]). *)

val inject : fault list -> writer -> writer
(** Wrap a writer with a deterministic fault plan.  Read faults in the
    list are ignored. *)

val write : writer -> string -> unit
(** Append the whole string or raise {!Io_error}. *)

val written : writer -> int
(** Bytes accepted so far by this layer. *)

val writer_path : writer -> string

val close_writer : writer -> unit
(** Flush and close (idempotent).  Raises {!Io_error} on failure. *)

(** {1 Readers} *)

type reader

val file_reader : string -> reader
val string_reader : ?path:string -> string -> reader

val inject_reader : fault list -> reader -> reader
(** Wrap a reader with a fault plan; write faults are ignored. *)

val read_all : reader -> string
(** The whole contents, or {!Io_error}. *)

val reader_path : reader -> string
