lib/rr/layout.ml:
