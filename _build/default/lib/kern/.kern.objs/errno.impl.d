lib/kern/errno.ml: Printf
