(* perf_event file objects.

   The only event type rr needs from the kernel side is
   PERF_COUNT_SW_CONTEXT_SWITCHES on a specific thread, configured to
   send a signal to that thread whenever it is descheduled (paper §3.3).
   The event is normally disabled and armed only around possibly-blocking
   untraced syscalls, exactly as in the paper. *)

type kind = Context_switches

type t = {
  id : int;
  kind : kind;
  target_tid : int;
  mutable enabled : bool;
  mutable count : int;
  mutable signal_on_overflow : int option; (* signal number *)
}

let create ~id ~target_tid kind =
  { id; kind; target_tid; enabled = false; count = 0; signal_on_overflow = None }

let enable t = t.enabled <- true
let disable t = t.enabled <- false

let set_signal t signo = t.signal_on_overflow <- Some signo

(* Record a deschedule of the target; returns the signal to send, if the
   event is armed. *)
let on_deschedule t =
  if t.enabled then begin
    t.count <- t.count + 1;
    t.signal_on_overflow
  end
  else None
