(** The rr recorder (paper §2, §3).

    Supervises a group of traced tasks through the simulated kernel's
    ptrace interface, runs exactly one task's user code at a time
    (§2.2), and records every input that crosses the user/kernel
    boundary into a {!Trace.t}:

    - system call results and memory effects, from a per-syscall model
      (§2.3.6), with blocking outputs detoured through scratch buffers
      (§2.3.1);
    - asynchronous event timing as an execution point — RCB count, full
      registers, and a word of stack (§2.4.1);
    - signal-handler frames (§2.3.9), emulated RDTSC/RDRAND values
      (§2.6), seccomp-filter installs patched with the allow-prologue
      (§2.3.5), and tracee-level ptrace, which is emulated (§2.3.2);
    - syscall-site patches and syscallbuf flushes for the in-process
      interception fast path (§3), including the desched dance for
      blocked untraced syscalls (§3.3) and block-cloned large reads
      (§3.9). *)

exception Record_error of string

type opts = {
  intercept : bool; (* in-process syscall interception (§3) *)
  scratch : bool; (* detour blocking outputs through scratch (§2.3.1) *)
  clone_blocks : bool; (* block cloning for big reads (§3.9) *)
  compress : bool; (* deflate the general trace data (§2.7) *)
  chaos : bool; (* randomized scheduling (§8) *)
  timeslice_rcbs : int; (* preemption budget (§2.4) *)
  seed : int; (* recording-side entropy *)
  max_events : int; (* runaway-recording guard *)
  checksum_every : int; (* memory digests every N frames (§6.2); 0 = off *)
  jobs : int; (* worker domains deflating trace chunks in the background *)
}

val default_opts : opts

val make_opts :
  ?intercept:bool ->
  ?scratch:bool ->
  ?clone_blocks:bool ->
  ?compress:bool ->
  ?chaos:bool ->
  ?timeslice_rcbs:int ->
  ?seed:int ->
  ?max_events:int ->
  ?checksum_every:int ->
  ?jobs:int ->
  unit ->
  opts
(** [default_opts] with the given fields overridden. *)

type stats = {
  wall_time : int; (* virtual ns *)
  trace_stats : Trace.stats;
  n_ptrace_stops : int;
  n_syscalls : int;
  n_sched_events : int;
  n_patched_sites : int;
  exit_status : int option; (* of the root process *)
  telemetry : Telemetry.snapshot;
      (* metrics accumulated during this recording (diff against the
         process-global registry at [record] entry) *)
}

val record :
  ?opts:opts ->
  ?on_stop:(Kernel.t -> unit) ->
  setup:(Kernel.t -> unit) ->
  exe:string ->
  unit ->
  Trace.t * stats * Kernel.t
(** Create a fresh kernel, run [setup] (install images, files, seccomp
    filters, and optionally spawn {e untraced} helper processes), spawn
    [exe] under supervision, and record it to completion.  [on_stop] is
    invoked after every handled ptrace stop (used for PSS sampling).
    Returns the trace, recording statistics, and the final kernel.

    Raises {!Record_error} on unsupported syscalls (§2.3.6 — the model
    must be extended), recording deadlock, or the event-count guard. *)
