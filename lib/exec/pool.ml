(* Domain worker pool (see pool.mli for the contract).

   One mutex per pool guards the task queue; one mutex per future
   guards its result cell.  Workers never take both at once (the pool
   lock is released before a task runs), so there is no lock-order
   hazard.  [jobs <= 1] is the fully inline serial path: no domains,
   no queue, no locks on the hot path. *)

let tm_tasks = Telemetry.counter "pool.tasks"
let tm_queue_depth = Telemetry.gauge "pool.queue_depth"

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : 'a state;
}

type t = {
  n_jobs : int;
  queue_limit : int;
  queue : (unit -> unit) Queue.t;
  m : Mutex.t;
  not_empty : Condition.t; (* workers wait here for tasks *)
  not_full : Condition.t; (* submitters wait here for queue room *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let resolved state = { fm = Mutex.create (); fc = Condition.create (); state }

let resolve fut state =
  Mutex.lock fut.fm;
  fut.state <- state;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let is_ready fut =
  Mutex.lock fut.fm;
  let r = fut.state <> Pending in
  Mutex.unlock fut.fm;
  r

let await fut =
  Mutex.lock fut.fm;
  let rec wait () =
    match fut.state with
    | Pending ->
      Condition.wait fut.fc fut.fm;
      wait ()
    | Done v ->
      Mutex.unlock fut.fm;
      v
    | Failed e ->
      Mutex.unlock fut.fm;
      raise e
  in
  wait ()

let run_task f =
  try Done (Timeline.scope "pool.run" f) with e -> Failed e

(* A worker loops: pop a task (or sleep), run it outside the pool lock.
   Shutdown is observed only with an empty queue, so pending tasks
   always run — futures never dangle. *)
let worker p () =
  let rec loop () =
    Mutex.lock p.m;
    while Queue.is_empty p.queue && not p.closed do
      Condition.wait p.not_empty p.m
    done;
    if Queue.is_empty p.queue then Mutex.unlock p.m (* closed: exit *)
    else begin
      let task = Queue.pop p.queue in
      Telemetry.set_gauge tm_queue_depth (Queue.length p.queue);
      Timeline.sample "pool.queue_depth" (Queue.length p.queue);
      Condition.signal p.not_full;
      Mutex.unlock p.m;
      task ();
      loop ()
    end
  in
  loop ()

let create ?queue_limit ~jobs () =
  (* Degrade to the inline serial path when the host has a single core:
     spawned domains would only time-slice against the submitter, and
     the parallel pipeline measurably loses there (BENCH_wallclock on a
     1-core container).  Output is byte-identical either way, so this
     is purely a scheduling decision. *)
  let n_jobs =
    if Domain.recommended_domain_count () <= 1 then 1 else max 1 jobs
  in
  let queue_limit =
    match queue_limit with Some q -> max 1 q | None -> 2 * n_jobs
  in
  let p =
    { n_jobs;
      queue_limit;
      queue = Queue.create ();
      m = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      closed = false;
      workers = [] }
  in
  if n_jobs > 1 then
    p.workers <-
      List.init n_jobs (fun i ->
          Domain.spawn (fun () ->
              (* Name the worker's timeline lane before any task runs;
                 the default domain lane id keeps it disjoint from
                 guest tids. *)
              Timeline.set_lane
                ~name:(Printf.sprintf "pool.worker-%d" i)
                (Timeline.current_lane ());
              worker p ()));
  p

let jobs p = p.n_jobs

let submit p f =
  Telemetry.incr tm_tasks;
  if p.n_jobs <= 1 then begin
    if p.closed then invalid_arg "Pool.submit: pool is shut down";
    resolved (run_task f)
  end
  else begin
    let fut = resolved Pending in
    let task () = resolve fut (run_task f) in
    Mutex.lock p.m;
    if p.closed then begin
      Mutex.unlock p.m;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    while Queue.length p.queue >= p.queue_limit do
      Condition.wait p.not_full p.m
    done;
    Queue.push task p.queue;
    Telemetry.set_gauge tm_queue_depth (Queue.length p.queue);
    Timeline.sample "pool.queue_depth" (Queue.length p.queue);
    Condition.signal p.not_empty;
    Mutex.unlock p.m;
    fut
  end

let shutdown p =
  Mutex.lock p.m;
  let already = p.closed in
  p.closed <- true;
  Condition.broadcast p.not_empty;
  Condition.broadcast p.not_full;
  let workers = p.workers in
  p.workers <- [];
  Mutex.unlock p.m;
  if not already then List.iter Domain.join workers
