lib/rrtrace/event.ml: Codec Fmt Printf Signals Sysno
