(* The virtual-time cost model.

   All durations are in abstract nanosecond-ish units; one retired guest
   instruction costs [insn].  Absolute values are not meant to match the
   paper's hardware — only the *relative* magnitudes that drive its
   results matter, chiefly that a ptrace stop costs two context switches
   plus supervisor work, which dwarfs a cheap syscall (paper §3: "the
   cost of even a single context switch dwarfs the cost of the system
   call itself"). *)

type t = {
  insn : int;
  context_switch : int; (* one direction, tracee <-> supervisor *)
  supervisor_work : int; (* recorder bookkeeping at a stop *)
  syscall_base : int; (* kernel entry/exit for a real syscall *)
  syscall_bytes_shift : int; (* extra cost = bytes lsr shift *)
  vdso_call : int; (* gettimeofday & friends in user space *)
  open_cost : int;
  stat_cost : int;
  mmap_page : int;
  fork_cost : int;
  exec_cost : int;
  futex_cost : int;
  sched_switch : int; (* kernel-level task switch (not ptrace) *)
  record_event : int; (* recorder: serialize one trace frame *)
  record_syscall_work : int; (* recorder bookkeeping per traced syscall *)
  record_elided_work : int; (* recorder bookkeeping per elided-stop syscall *)
  record_abort_commit : int; (* commit a desched-aborted buffered syscall *)
  replay_syscall_work : int; (* replayer bookkeeping per emulated syscall *)
  record_bytes_shift : int; (* recorder: per-byte data capture cost *)
  compress_bytes_shift : int; (* deflate cost per byte of input *)
  clone_block : int; (* FICLONE one 4KB block *)
  buffered_syscall_overhead : int; (* syscallbuf wrapper bookkeeping *)
  instrument_block : int; (* DBI: translate one basic block *)
  instrument_insn_num : int; (* DBI: per-insn slowdown numerator *)
  instrument_insn_den : int;
  instrument_proc_init : int; (* DBI: engine startup per process *)
  instrument_jit_write : int; (* DBI: cache flush + retranslate per code write *)
  timeslice_insns : int; (* baseline scheduler quantum *)
}

let default =
  { insn = 1;
    context_switch = 1_200;
    supervisor_work = 500;
    syscall_base = 300;
    syscall_bytes_shift = 4; (* 1 unit per 16 bytes copied *)
    vdso_call = 40;
    open_cost = 700;
    stat_cost = 350;
    mmap_page = 30;
    fork_cost = 20_000;
    exec_cost = 40_000;
    futex_cost = 250;
    sched_switch = 1_200;
    record_event = 250;
    record_syscall_work = 22_000;
    (* A syscall recorded at its entry stop (§3.4): no second ptrace
       round trip, no exit-state inspection — just result capture and
       frame assembly, a small fraction of the two-stop bookkeeping. *)
    record_elided_work = 4_000;
    (* A desched-aborted buffered syscall (§3.3) completing at its traced
       exit stop: the buffered attempt already reserved and laid out the
       record, so the stop only snapshots registers, copies the (usually
       small) output back and commits — well under the two-stop
       bookkeeping, but more than a pure entry-stop elision. *)
    record_abort_commit = 9_000;
    replay_syscall_work = 12_000;
    record_bytes_shift = 4;
    compress_bytes_shift = 3;
    clone_block = 60;
    buffered_syscall_overhead = 180;
    instrument_block = 900;
    instrument_insn_num = 3;
    instrument_insn_den = 10;
    instrument_proc_init = 350_000;
    instrument_jit_write = 250_000;
    timeslice_insns = 60_000 }

(* Cost of one ptrace stop handled by the supervisor: tracee -> tracer
   switch, tracer work, tracer -> tracee switch. *)
let ptrace_stop c = (2 * c.context_switch) + c.supervisor_work

let bytes_cost c len = len lsr c.syscall_bytes_shift

let record_bytes c len = len lsr c.record_bytes_shift

let compress_bytes c len = len lsr c.compress_bytes_shift
