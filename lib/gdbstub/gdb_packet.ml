(* RSP packet layer: framing, checksums, escaping, run-length encoding
   and per-connection ack bookkeeping (see the mli for the wire
   grammar).  Everything here is byte-exact: the property tests
   round-trip arbitrary payloads through encode_body/decode_body and
   the session tests assert whole wire frames. *)

module T = Gdb_transport

(* ---- body codec ------------------------------------------------------ *)

let is_special = function '$' | '#' | '}' | '*' -> true | _ -> false

let checksum s =
  let sum = ref 0 in
  String.iter (fun c -> sum := (!sum + Char.code c) land 0xff) s;
  !sum

(* Run counts that would encode as a character the stream cannot carry
   raw: '#'(6) '$'(7) '*'(13) '+'(14) '-'(16) '}'(96). *)
let bad_count = function 6 | 7 | 13 | 14 | 16 | 96 -> true | _ -> false

let encode_body ?(rle = false) s =
  let n = String.length s in
  let b = Buffer.create (n + 8) in
  let emit_lit c =
    if is_special c then begin
      Buffer.add_char b '}';
      Buffer.add_char b (Char.chr (Char.code c lxor 0x20))
    end
    else Buffer.add_char b c
  in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    let j = ref (!i + 1) in
    while !j < n && s.[!j] = c do incr j done;
    let run = !j - !i in
    if rle && run >= 4 && not (is_special c) then begin
      Buffer.add_char b c;
      (* Chunked: "c*N*M" decodes as c repeated 1+N+M times, because
         each '*' repeats the previously *decoded* byte. *)
      let rem = ref (run - 1) in
      while !rem > 0 do
        if !rem < 3 then begin
          Buffer.add_char b c;
          decr rem
        end
        else begin
          let r = ref (min !rem 97) in
          while bad_count !r do decr r done;
          Buffer.add_char b '*';
          Buffer.add_char b (Char.chr (!r + 29));
          rem := !rem - !r
        end
      done;
      i := !j
    end
    else begin
      emit_lit c;
      incr i
    end
  done;
  Buffer.contents b

exception Decode of string

let decode_body s =
  let n = String.length s in
  let b = Buffer.create n in
  let i = ref 0 in
  try
    while !i < n do
      (match s.[!i] with
      | '}' ->
        if !i + 1 >= n then raise (Decode "dangling escape");
        Buffer.add_char b (Char.chr (Char.code s.[!i + 1] lxor 0x20));
        i := !i + 2
      | '*' ->
        if Buffer.length b = 0 then raise (Decode "run with no preceding byte");
        if !i + 1 >= n then raise (Decode "dangling run count");
        let cnt = Char.code s.[!i + 1] - 29 in
        if cnt < 3 || cnt > 97 then
          raise (Decode (Printf.sprintf "run count %d out of range" cnt));
        let prev = Buffer.nth b (Buffer.length b - 1) in
        for _ = 1 to cnt do
          Buffer.add_char b prev
        done;
        i := !i + 2
      | ('$' | '#') as c ->
        raise (Decode (Printf.sprintf "unescaped '%c' in body" c))
      | c ->
        Buffer.add_char b c;
        incr i)
    done;
    Ok (Buffer.contents b)
  with Decode msg -> Error msg

let frame ?rle payload =
  let body = encode_body ?rle payload in
  Printf.sprintf "$%s#%02x" body (checksum body)

(* ---- hex helpers ----------------------------------------------------- *)

let to_hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let hex_digit = function
  | '0' .. '9' as c -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' as c -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' as c -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex string"
  else begin
    let b = Bytes.create (n / 2) in
    let rec go i =
      if 2 * i >= n then Ok (Bytes.to_string b)
      else
        match (hex_digit s.[2 * i], hex_digit s.[(2 * i) + 1]) with
        | Some hi, Some lo ->
          Bytes.set b i (Char.chr ((hi lsl 4) lor lo));
          go (i + 1)
        | _ -> Error (Printf.sprintf "bad hex digit at offset %d" (2 * i))
    in
    go 0
  end

let hex64_le v =
  let b = Buffer.create 16 in
  for byte = 0 to 7 do
    Buffer.add_string b (Printf.sprintf "%02x" ((v lsr (8 * byte)) land 0xff))
  done;
  Buffer.contents b

let int_of_hex64_le s =
  if String.length s <> 16 then Error "want exactly 16 hex chars"
  else
    match of_hex s with
    | Error _ as e -> e
    | Ok bytes ->
      let v = ref 0 in
      for i = 7 downto 0 do
        v := (!v lsl 8) lor Char.code bytes.[i]
      done;
      Ok !v

let parse_hex_int s =
  let s = String.trim s in
  if s = "" then None
  else begin
    let neg, s =
      if s.[0] = '-' then (true, String.sub s 1 (String.length s - 1))
      else (false, s)
    in
    let s =
      if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X')
      then String.sub s 2 (String.length s - 2)
      else s
    in
    if s = "" then None
    else begin
      let v = ref 0 and ok = ref true in
      String.iter
        (fun c ->
          match hex_digit c with
          | Some d -> v := (!v lsl 4) lor d
          | None -> ok := false)
        s;
      if !ok then Some (if neg then - !v else !v) else None
    end
  end

(* ---- connections ----------------------------------------------------- *)

type conn = {
  tr : T.t;
  rle : bool;
  mutable ack : bool;
  mutable pending : string; (* received bytes not yet parsed into frames *)
  mutable last_sent : string option; (* wire frame, for '-' retransmit *)
  mutable at_eof : bool;
}

let conn ?(rle = false) tr =
  { tr; rle; ack = true; pending = ""; last_sent = None; at_eof = false }

let set_ack_mode c on = c.ack <- on
let ack_mode c = c.ack
let eof c = c.at_eof
let transport c = c.tr

let send c payload =
  let f = frame ~rle:c.rle payload in
  c.last_sent <- Some f;
  c.tr.T.send f

(* Parse one frame out of [pending], handling acks and junk in front of
   it.  Returns the decoded payload, or None if no complete frame is
   buffered yet.  Bad frames (checksum, encoding) are NAK'd and skipped
   — the peer retransmits, and the retransmission is served like any
   other frame ("re-served"). *)
let rec extract c =
  let s = c.pending in
  let n = String.length s in
  if n = 0 then None
  else
    match s.[0] with
    | '+' ->
      c.last_sent <- None;
      c.pending <- String.sub s 1 (n - 1);
      extract c
    | '-' ->
      (match c.last_sent with Some f -> c.tr.T.send f | None -> ());
      c.pending <- String.sub s 1 (n - 1);
      extract c
    | '$' -> (
      match String.index_from_opt s 0 '#' with
      | None -> None (* body still in flight *)
      | Some hash when hash + 2 >= n -> None (* checksum still in flight *)
      | Some hash ->
        let body = String.sub s 1 (hash - 1) in
        let ck = String.sub s (hash + 1) 2 in
        c.pending <- String.sub s (hash + 3) (n - hash - 3);
        let good =
          match parse_hex_int ck with
          | Some v when v = checksum body -> (
            match decode_body body with Ok p -> Some p | Error _ -> None)
          | _ -> None
        in
        (match good with
        | Some payload ->
          if c.ack then c.tr.T.send "+";
          Some payload
        | None ->
          if c.ack then c.tr.T.send "-";
          extract c))
    | _ ->
      (* Interrupt bytes (0x03) and line noise outside a frame: skip.
         Replay is never "running" from the stub's point of view, so
         there is nothing for an interrupt to stop. *)
      c.pending <- String.sub s 1 (n - 1);
      extract c

let rec poll c =
  match extract c with
  | Some p -> `Packet p
  | None ->
    if c.at_eof then `Eof
    else (
      match c.tr.T.recv () with
      | T.Data bytes ->
        c.pending <- c.pending ^ bytes;
        poll c
      | T.Empty -> `Empty
      | T.Eof ->
        c.at_eof <- true;
        `Eof)
