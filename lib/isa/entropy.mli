(** Host-entropy source: the single fountain of nondeterminism in the
    simulated machine.  Record and replay runs are seeded differently, so
    any entropy that leaks into user-space state un-recorded shows up as a
    replay divergence. *)

type t

val create : int -> t
(** [create seed] makes an independent generator. *)

val bits : t -> int
(** A nonnegative pseudo-random int (61 bits). *)

val int : t -> int -> int
(** [int t bound] is in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val range : t -> int -> int -> int
(** [range t lo hi] is in [\[lo, hi\]] inclusive. *)

val bool : t -> bool

val byte : t -> int
(** In [\[0, 255\]]. *)

val split : t -> t
(** An independent child generator. *)

val state : t -> int64
(** The raw generator state, for checkpoint snapshots. *)

val set_state : t -> int64 -> unit
(** Restore a state captured with {!state}: the generator resumes the
    exact draw sequence from that point. *)
