lib/workloads/instrument.ml: Addr_space Cost Cpu Kernel Workload
