(* The simulated kernel.

   Owns tasks, processes, the VFS, channels, futexes, virtual time and the
   ptrace state machine.  Supervisors (the rr recorder and replayer, or
   the baseline multicore runner) drive it through [resume]/[wait] or
   [run_slice].

   The user/kernel interface implemented here is the recording boundary
   of the paper (§2.1): syscall results, signal timing and scheduling are
   the only nondeterministic inputs a correct recorder needs to capture.
   Consequently this module is where all of those are generated. *)

module A = Addr_space
module T = Task

let src = Logs.Src.create "kern" ~doc:"simulated kernel"

module Log = (val Logs.src_log src : Logs.LOG)


type t = {
  tasks : (int, T.t) Hashtbl.t;
  procs : (int, T.process) Hashtbl.t;
  vfs : Vfs.t;
  entropy : Entropy.t;
  cost : Cost.t;
  mutable clock : int;
  mutable next_id : int;
  mutable next_space_id : int;
  mutable next_obj_id : int;
  mutable tsc : int;
  ports : (int, Chan.sock) Hashtbl.t;
  futexes : (int * int, Chan.waitq) Hashtbl.t;
  filter_registry : (int, Bpf.program) Hashtbl.t;
  perf_events : (int, Perf_event.t) Hashtbl.t;
  mutable stop_queue : int list; (* tids newly entered ptrace-stop *)
  hooks : (int, t -> T.t -> unit) Hashtbl.t;
  mutable spurious_desched_period : int; (* 0 = never *)
  mutable insns_retired : int; (* global, for stats *)
  mutable syscall_count : int;
  mutable trace_stop_count : int; (* ptrace stops delivered *)
  mutable exec_count : int; (* images loaded (spawn + execve) *)
}

type wait_outcome =
  | Stopped_task of T.t * T.ptrace_stop
  | All_dead
  | Deadlocked of int list

let create ?(cost = Cost.default) ~seed () =
  { tasks = Hashtbl.create 64;
    procs = Hashtbl.create 32;
    vfs = Vfs.create ();
    entropy = Entropy.create seed;
    cost;
    clock = 0;
    next_id = 100;
    next_space_id = 1;
    next_obj_id = 1;
    tsc = 1_000_000;
    ports = Hashtbl.create 8;
    futexes = Hashtbl.create 32;
    filter_registry = Hashtbl.create 8;
    perf_events = Hashtbl.create 8;
    stop_queue = [];
    hooks = Hashtbl.create 8;
    spurious_desched_period = 64;
    insns_retired = 0;
    syscall_count = 0;
    trace_stop_count = 0;
    exec_count = 0 }

let charge k units = k.clock <- k.clock + units

let now k = k.clock

let tm_ptrace_stop = Telemetry.counter "kern.ptrace_stop"
let tm_syscall = Telemetry.counter "kern.syscall"
let tm_sched_switch = Telemetry.counter "kern.sched_switch"

let alloc_id k =
  let id = k.next_id in
  k.next_id <- id + 1;
  id

(* Allocate a specific id (replay mirrors recorded tids). *)
let reserve_id k id = if id >= k.next_id then k.next_id <- id + 1

let alloc_obj_id k =
  let id = k.next_obj_id in
  k.next_obj_id <- id + 1;
  id

let alloc_space k =
  let id = k.next_space_id in
  k.next_space_id <- id + 1;
  A.create ~id

let find_task k tid = Hashtbl.find_opt k.tasks tid

let task_exn k tid =
  match find_task k tid with
  | Some t -> t
  | None -> Fmt.invalid_arg "no such task %d" tid

let all_tasks k = Hashtbl.fold (fun _ t acc -> t :: acc) k.tasks []

let live_tasks k = List.filter T.is_alive (all_tasks k)

let all_procs k = Hashtbl.fold (fun _ p acc -> p :: acc) k.procs []

let vfs k = k.vfs

let set_hook k n fn = Hashtbl.replace k.hooks n fn

let register_filter k id prog = Hashtbl.replace k.filter_registry id prog

(* The TSC advances with virtual time plus drift that user space cannot
   predict: reading it un-recorded is a real divergence. *)
let read_tsc k =
  k.tsc <- k.tsc + k.clock + Entropy.range k.entropy 1 40;
  k.tsc

let cpu_env k =
  { Cpu.rdtsc = (fun () -> read_tsc k);
    rdrand = (fun () -> Entropy.bits k.entropy) }

(* ------------------------------------------------------------------ *)
(* User-memory access with EFAULT semantics.                           *)

exception Efault

let uread k task addr len =
  ignore k;
  try A.read_bytes task.T.cpu.Cpu.space addr len
  with A.Segv _ -> raise Efault

let uwrite k task addr data =
  ignore k;
  try A.write_bytes task.T.cpu.Cpu.space addr data
  with A.Segv _ -> raise Efault

let uread_u64 k task addr =
  ignore k;
  try A.read_u64 task.T.cpu.Cpu.space addr with A.Segv _ -> raise Efault

let uwrite_u64 k task addr v =
  ignore k;
  try A.write_u64 task.T.cpu.Cpu.space addr v with A.Segv _ -> raise Efault

(* ------------------------------------------------------------------ *)
(* Ptrace-stop plumbing.                                               *)

let enter_stop k task stop =
  assert task.T.traced;
  task.T.state <- T.Stopped;
  task.T.last_stop <- Some stop;
  k.trace_stop_count <- k.trace_stop_count + 1;
  Telemetry.incr tm_ptrace_stop;
  Timeline.instant ~lane:task.T.tid "kern.ptrace_stop";
  charge k (Cost.ptrace_stop k.cost);
  k.stop_queue <- k.stop_queue @ [ task.T.tid ]

(* ------------------------------------------------------------------ *)
(* Wait queues and blocking.                                           *)

let waitq_of_cond k = function
  | T.W_pipe_read p -> Some p.Chan.read_wait
  | T.W_pipe_write p -> Some p.Chan.write_wait
  | T.W_sock_read s -> Some s.Chan.sock_wait
  | T.W_futex (sid, addr) -> (
    match Hashtbl.find_opt k.futexes (sid, addr) with
    | Some q -> Some q
    | None ->
      let q = Chan.waitq () in
      Hashtbl.replace k.futexes (sid, addr) q;
      Some q)
  | T.W_child pid -> (
    match Hashtbl.find_opt k.procs pid with
    | Some parent -> Some parent.T.child_wait
    | None -> None)
  | T.W_sleep _ -> None
  | T.W_poll _ -> None (* handled by the multi-queue paths below *)

let wake_task k task =
  match task.T.state with
  | T.Blocked cond ->
    (match cond with
    | T.W_poll queues -> List.iter (fun q -> Chan.dequeue q task.T.tid) queues
    | T.W_pipe_read _ | T.W_pipe_write _ | T.W_sock_read _ | T.W_futex _
    | T.W_child _ | T.W_sleep _ -> (
      match waitq_of_cond k cond with
      | Some q -> Chan.dequeue q task.T.tid
      | None -> ()));
    (* The waking event happened "now": the task cannot run on any core
       at an earlier virtual time. *)
    task.T.last_wake <- k.clock;
    task.T.state <- T.Runnable
  | T.Runnable | T.Stopped | T.Dead -> ()

let wake_queue k q =
  List.iter
    (fun tid -> match find_task k tid with Some t -> wake_task k t | None -> ())
    (Chan.take_all q)

let wake_queue_n k q n =
  let woken = ref 0 in
  let rec loop () =
    if !woken < n then
      match q.Chan.waiters with
      | [] -> ()
      | tid :: rest ->
        q.Chan.waiters <- rest;
        (match find_task k tid with
        | Some t ->
          wake_task k t;
          incr woken
        | None -> ());
        loop ()
  in
  loop ();
  !woken

(* ------------------------------------------------------------------ *)
(* Signal machinery.                                                   *)

let sigframe_words = 18 (* 16 regs + pc + mask *)

(* Interrupt a task blocked in a syscall: the syscall result becomes the
   restart sentinel and the syscall is remembered for the kernel restart
   machinery (paper §2.3.10). *)
let interrupt_blocked_syscall k task =
  match task.T.state with
  | T.Blocked _ -> (
    wake_task k task;
    match task.T.in_syscall with
    | Some ss ->
      task.T.in_syscall <- None;
      task.T.cpu.Cpu.regs.(0) <- -Errno.erestartsys;
      task.T.restart <- Some ss;
      task.T.restart_wanted <- true;
      (* Linux delivers the syscall-exit-stop (with the restart sentinel)
         before the signal-delivery-stop. *)
      if task.T.traced && task.T.want_exit_stop then begin
        task.T.want_exit_stop <- false;
        enter_stop k task (T.Stop_syscall_exit (ss, -Errno.erestartsys))
      end
    | None -> ())
  | T.Runnable | T.Stopped | T.Dead -> ()

let deliverable task info =
  info.Signals.signo = Signals.sigkill
  || not (Signals.mem task.T.sigmask info.Signals.signo)

let has_deliverable_signal task =
  List.exists (deliverable task) task.T.pending
  || List.exists (deliverable task) task.T.proc.T.shared_pending

(* Remove and return the next deliverable signal, task-directed first. *)
let take_signal task =
  let rec split acc = function
    | [] -> None
    | i :: rest ->
      if deliverable task i then Some (i, List.rev_append acc rest)
      else split (i :: acc) rest
  in
  match split [] task.T.pending with
  | Some (i, rest) ->
    task.T.pending <- rest;
    Some i
  | None -> (
    match split [] task.T.proc.T.shared_pending with
    | Some (i, rest) ->
      task.T.proc.T.shared_pending <- rest;
      Some i
    | None -> None)

let rec post_signal k task info =
  if T.is_alive task then begin
    task.T.pending <- task.T.pending @ [ info ];
    if deliverable task info then begin
      (match task.T.state with
      | T.Blocked _ -> interrupt_blocked_syscall k task
      | T.Runnable | T.Stopped | T.Dead -> ());
      Pmu.add_noise task.T.cpu.Cpu.pmu k.entropy
    end
  end

and post_process_signal k proc info =
  (* Process-directed: any thread with the signal unmasked may take it. *)
  let threads = List.filter_map (find_task k) proc.T.threads in
  let live = List.filter T.is_alive threads in
  match List.find_opt (fun t -> deliverable t info) live with
  | Some t -> post_signal k t info
  | None -> proc.T.shared_pending <- proc.T.shared_pending @ [ info ]

(* Process death: mark every thread dead, release resources, notify the
   parent. *)
and kill_process k proc status =
  if proc.T.exit_code = None then begin
    proc.T.exit_code <- Some status;
    List.iter
      (fun tid ->
        match find_task k tid with
        | Some t when T.is_alive t -> kill_task k t status
        | Some _ | None -> ())
      proc.T.threads
  end

and kill_task k task status =
  (match task.T.state with
  | T.Blocked _ -> wake_task k task
  | T.Runnable | T.Stopped | T.Dead -> ());
  task.T.state <- T.Dead;
  task.T.exit_status <- status;
  k.stop_queue <- List.filter (fun tid -> tid <> task.T.tid) k.stop_queue;
  let proc = task.T.proc in
  let alive_siblings =
    List.exists
      (fun tid ->
        match find_task k tid with Some t -> T.is_alive t | None -> false)
      proc.T.threads
  in
  if not alive_siblings then begin
    if proc.T.exit_code = None then proc.T.exit_code <- Some status;
    (* Close the process's fds: drop pipe-end refcounts and wake peers. *)
    Hashtbl.iter (fun _ e -> close_fd_entry k e) proc.T.fdtab.T.fds;
    Hashtbl.reset proc.T.fdtab.T.fds;
    A.release proc.T.space;
    (match Hashtbl.find_opt k.procs proc.T.parent with
    | Some parent ->
      wake_queue k parent.T.child_wait;
      post_process_signal k parent
        (Signals.make_info Signals.sigchld (Signals.User task.T.tid))
    | None -> ())
  end

and close_fd_entry k e =
  match e.T.obj with
  | T.F_pipe_r p ->
    p.Chan.readers <- p.Chan.readers - 1;
    if p.Chan.readers = 0 then wake_queue k p.Chan.write_wait
  | T.F_pipe_w p ->
    p.Chan.writers <- p.Chan.writers - 1;
    if p.Chan.writers = 0 then wake_queue k p.Chan.read_wait
  | T.F_sock s -> (
    match s.Chan.port with
    | Some port -> Hashtbl.remove k.ports port
    | None -> ())
  | T.F_perf ev -> Perf_event.disable ev
  | T.F_reg _ -> ()

(* Linux's syscall-restart mechanism (paper §2.3.10): back the program
   counter up to the instruction that issued the syscall and restore the
   syscall-number register, so it re-executes — visibly to a ptrace
   supervisor, which sees a brand-new syscall entry.  The rewind targets
   [pc - 1], not [ss.site]: a syscall issued by the interception library
   (through the RR page's untraced or traced-fallback instruction) has a
   synthetic [ss.site] with no stub continuation after it — the
   instruction to re-execute is the patched hook the program ran. *)
let restart_by_rewind task =
  if task.T.restart_wanted then
    match task.T.restart with
    | Some ss ->
      task.T.cpu.Cpu.pc <- task.T.cpu.Cpu.pc - 1;
      task.T.cpu.Cpu.regs.(0) <- ss.T.nr;
      task.T.restart <- None;
      task.T.restart_wanted <- false
    | None -> task.T.restart_wanted <- false

(* Really deliver a signal to user space: run the handler, or apply the
   default disposition.  [forced] marks synchronous faults, which are
   fatal when masked or ignored (paper §2.3.9's quirky edge case). *)
let really_deliver k task info =
  let signo = info.Signals.signo in
  let action = task.T.proc.T.sighand.(signo) in
  let forced = info.Signals.origin = Signals.Fault in
  let blocked = Signals.mem task.T.sigmask signo in
  match action.Signals.disposition with
  | Signals.Handler h when not blocked ->
    (* Decide restart-vs-EINTR before building the frame, so sigreturn
       restores the right syscall result. *)
    if task.T.restart_wanted then
      if action.Signals.flags land Signals.sa_restart = 0 then begin
        task.T.cpu.Cpu.regs.(0) <- -Errno.eintr;
        task.T.restart_wanted <- false;
        task.T.restart <- None
      end;
    let cpu = task.T.cpu in
    let frame_base = cpu.Cpu.regs.(Insn.reg_sp) - (sigframe_words * 8) in
    (try
       for i = 0 to 15 do
         A.write_u64 cpu.Cpu.space (frame_base + (8 * i)) cpu.Cpu.regs.(i)
       done;
       A.write_u64 cpu.Cpu.space (frame_base + 128) cpu.Cpu.pc;
       A.write_u64 cpu.Cpu.space (frame_base + 136) task.T.sigmask;
       cpu.Cpu.regs.(Insn.reg_sp) <- frame_base;
       cpu.Cpu.regs.(1) <- signo;
       cpu.Cpu.regs.(2) <- frame_base;
       cpu.Cpu.pc <- h;
       let extra =
         if action.Signals.flags land Signals.sa_nodefer <> 0 then
           action.Signals.mask
         else Signals.add action.Signals.mask signo
       in
       task.T.sigmask <- Signals.union task.T.sigmask extra;
       if action.Signals.flags land Signals.sa_resethand <> 0 then
         task.T.proc.T.sighand.(signo) <- Signals.default_action;
       task.T.sig_frames <- frame_base :: task.T.sig_frames;
       (* Entering the handler abandons the restart until sigreturn. *)
       task.T.restart_wanted <- false
     with A.Segv _ ->
       (* Can't build the frame: fatal, like a stack overflow. *)
       kill_process k task.T.proc (256 + Signals.sigsegv))
  | Signals.Handler _ (* blocked: only reachable for forced faults *) ->
    kill_process k task.T.proc (256 + signo)
  | Signals.Ignore ->
    if forced then kill_process k task.T.proc (256 + signo)
    else restart_by_rewind task
  | Signals.Default -> (
    match Signals.default_effect signo with
    | Signals.Term -> kill_process k task.T.proc (256 + signo)
    | Signals.Ign -> restart_by_rewind task
    | Signals.Stop | Signals.Cont -> () (* group-stop: not modeled *))

(* Check for pending signals before returning to user code.  For traced
   tasks this produces the signal-delivery-stop; the supervisor decides
   the signal's fate at resume.  Returns true when the task stopped or
   died. *)
let check_signals k task =
  if not (T.is_alive task) then true
  else if not (has_deliverable_signal task) then false
  else
    match take_signal task with
    | None -> false
    | Some info ->
      if task.T.traced then begin
        enter_stop k task (T.Stop_signal info);
        true
      end
      else begin
        really_deliver k task info;
        not (T.is_alive task) || task.T.state <> T.Runnable
      end

(* ------------------------------------------------------------------ *)
(* Syscall implementation.                                             *)

type outcome =
  | Done of int (* result value; negative = -errno *)
  | Block of T.wait_cond
  | Divert (* control flow already handled (exit, exec, sigreturn) *)

let vfs_result f = try Done (f ()) with Vfs.Error e -> Done (-e)

(* Read a NUL-terminated guest string (capped). *)
let uread_str k task addr =
  let buf = Buffer.create 32 in
  let rec loop a =
    let byte = Bytes.get (uread k task a 1) 0 in
    if byte = '\000' then Buffer.contents buf
    else begin
      Buffer.add_char buf byte;
      if Buffer.length buf > 4096 then raise Efault else loop (a + 1)
    end
  in
  loop addr

let abs_path task path =
  if String.length path > 0 && path.[0] = '/' then path
  else task.T.proc.T.cwd ^ "/" ^ path

let fd_or_ebadf task fd f =
  match T.find_fd task fd with None -> Done (-Errno.ebadf) | Some e -> f e

(* read(2) *)
let sys_read k task args =
  let fd = args.(0) and buf = args.(1) and len = args.(2) in
  if len < 0 then Done (-Errno.einval)
  else
    fd_or_ebadf task fd (fun e ->
        match e.T.obj with
        | T.F_reg { reg; _ } ->
          let data = Vfs.read k.vfs reg ~off:e.T.pos ~len in
          let n = Bytes.length data in
          uwrite k task buf data;
          e.T.pos <- e.T.pos + n;
          charge k (Cost.bytes_cost k.cost n);
          Done n
        | T.F_pipe_r p ->
          if Chan.pipe_readable p then begin
            if Buffer.length p.Chan.buf = 0 then Done 0 (* EOF: no writers *)
            else begin
              let data = Chan.pipe_read p len in
              uwrite k task buf data;
              wake_queue k p.Chan.write_wait;
              charge k (Cost.bytes_cost k.cost (Bytes.length data));
              Done (Bytes.length data)
            end
          end
          else if e.T.fl land Sysno.o_nonblock <> 0 then Done (-Errno.eagain)
          else Block (T.W_pipe_read p)
        | T.F_sock s ->
          if Chan.sock_readable s then begin
            let dg = Chan.sock_take s in
            let n = min len (Bytes.length dg.Chan.payload) in
            uwrite k task buf (Bytes.sub dg.Chan.payload 0 n);
            charge k (Cost.bytes_cost k.cost n);
            Done n
          end
          else if e.T.fl land Sysno.o_nonblock <> 0 then Done (-Errno.eagain)
          else Block (T.W_sock_read s)
        | T.F_pipe_w _ | T.F_perf _ -> Done (-Errno.einval))

(* write(2) *)
let sys_write k task args =
  let fd = args.(0) and buf = args.(1) and len = args.(2) in
  if len < 0 then Done (-Errno.einval)
  else
    fd_or_ebadf task fd (fun e ->
        match e.T.obj with
        | T.F_reg { reg; _ } ->
          let data = uread k task buf len in
          let off =
            if e.T.fl land Sysno.o_append <> 0 then Vfs.file_size reg
            else e.T.pos
          in
          let n = Vfs.write k.vfs reg ~off data in
          e.T.pos <- off + n;
          charge k (Cost.bytes_cost k.cost n);
          Done n
        | T.F_pipe_w p ->
          if p.Chan.readers = 0 then begin
            post_signal k task
              (Signals.make_info Signals.sigpipe (Signals.User task.T.tid));
            Done (-Errno.epipe)
          end
          else if Chan.pipe_writable p then begin
            let data = uread k task buf len in
            let n = Chan.pipe_write p data in
            wake_queue k p.Chan.read_wait;
            charge k (Cost.bytes_cost k.cost n);
            Done n
          end
          else if e.T.fl land Sysno.o_nonblock <> 0 then Done (-Errno.eagain)
          else Block (T.W_pipe_write p)
        | T.F_sock _ | T.F_pipe_r _ | T.F_perf _ -> Done (-Errno.einval))

let sys_openat k task args =
  let path = abs_path task (uread_str k task args.(1)) in
  let flags = args.(2) in
  charge k k.cost.Cost.open_cost;
  vfs_result (fun () ->
      let reg =
        Vfs.open_file k.vfs path
          ~creat:(flags land Sysno.o_creat <> 0)
          ~trunc:(flags land Sysno.o_trunc <> 0)
      in
      T.add_fd task (T.F_reg { reg; path }) ~fl:flags)

let sys_stat k task args =
  let path = abs_path task (uread_str k task args.(0)) in
  let buf = args.(1) in
  charge k k.cost.Cost.stat_cost;
  vfs_result (fun () ->
      let node = Vfs.resolve k.vfs path in
      let size, blocks =
        match node.Vfs.kind with
        | Vfs.Reg r ->
          (Vfs.file_size r, (Vfs.file_size r + Vfs.block_size - 1) / Vfs.block_size)
        | Vfs.Dir _ -> (0, 0)
      in
      uwrite_u64 k task buf size;
      uwrite_u64 k task (buf + 8) node.Vfs.ino;
      uwrite_u64 k task (buf + 16) node.Vfs.nlink;
      uwrite_u64 k task (buf + 24) blocks;
      0)

let sys_lseek _k task args =
  fd_or_ebadf task args.(0) (fun e ->
      match e.T.obj with
      | T.F_reg { reg; _ } ->
        let base =
          if args.(2) = Sysno.seek_set then 0
          else if args.(2) = Sysno.seek_cur then e.T.pos
          else Vfs.file_size reg
        in
        let pos = base + args.(1) in
        if pos < 0 then Done (-Errno.einval)
        else begin
          e.T.pos <- pos;
          Done pos
        end
      | T.F_pipe_r _ | T.F_pipe_w _ | T.F_sock _ | T.F_perf _ ->
        Done (-Errno.espipe))

(* mmap flags (simulator-local encoding) *)
let map_anon = 1
let map_shared = 2
let map_fixed = 4

let sys_mmap k task args =
  let addr = args.(0)
  and len = args.(1)
  and prot = args.(2)
  and flags = args.(3)
  and fd = args.(4)
  and off = args.(5) in
  if len <= 0 then Done (-Errno.einval)
  else begin
    let space = task.T.cpu.Cpu.space in
    let shared = flags land map_shared <> 0 in
    let base =
      if flags land map_fixed <> 0 then addr else A.find_map_addr space len
    in
    let npages = (len + Mem.page_size - 1) / Mem.page_size in
    charge k (npages * k.cost.Cost.mmap_page);
    try
      if flags land map_anon <> 0 then
        Done (A.map space ~addr:base ~len ~prot ~shared ())
      else
        fd_or_ebadf task fd (fun e ->
            match e.T.obj with
            | T.F_reg { reg; path } ->
              let a =
                A.map space ~addr:base ~len ~prot ~shared
                  ~kind:(A.File_backed { path; file_off = off })
                  ()
              in
              let data = Vfs.read k.vfs reg ~off ~len in
              A.write_bytes ~force:true space a data;
              charge k (Cost.bytes_cost k.cost (Bytes.length data));
              Done a
            | T.F_pipe_r _ | T.F_pipe_w _ | T.F_sock _ | T.F_perf _ ->
              Done (-Errno.ebadf))
    with Invalid_argument _ -> Done (-Errno.einval)
  end

let sys_munmap _k task args =
  let space = task.T.cpu.Cpu.space in
  A.unmap space ~addr:args.(0) ~len:args.(1);
  Done 0

let sys_mprotect _k task args =
  A.protect task.T.cpu.Cpu.space ~addr:args.(0) ~len:args.(1) ~prot:args.(2);
  Done 0

let sys_futex k task args =
  let addr = args.(0) and op = args.(1) and v = args.(2) in
  charge k k.cost.Cost.futex_cost;
  if op = Sysno.futex_wait then begin
    let cur = uread_u64 k task addr in
    if cur <> v then Done (-Errno.eagain)
    else Block (T.W_futex (task.T.cpu.Cpu.space.A.id, addr))
  end
  else if op = Sysno.futex_wake then begin
    let key = (task.T.cpu.Cpu.space.A.id, addr) in
    match Hashtbl.find_opt k.futexes key with
    | None -> Done 0
    | Some q -> Done (wake_queue_n k q v)
  end
  else Done (-Errno.einval)

let sys_pipe k task args =
  let p = Chan.make_pipe ~id:(alloc_obj_id k) () in
  let rfd = T.add_fd task (T.F_pipe_r p) ~fl:0 in
  let wfd = T.add_fd task (T.F_pipe_w p) ~fl:0 in
  uwrite_u64 k task args.(0) rfd;
  uwrite_u64 k task (args.(0) + 8) wfd;
  Done 0

let sys_nanosleep k _task args =
  (* args.(5) caches the absolute deadline across re-attempts after
     wakeups, mirroring how Linux keeps restart state in the kernel. *)
  if args.(5) = 0 then args.(5) <- now k + max 0 args.(0);
  if now k >= args.(5) then Done 0 else Block (T.W_sleep args.(5))

let sys_kill k task args =
  let pid = args.(0) and signo = args.(1) in
  match Hashtbl.find_opt k.procs pid with
  | None -> Done (-Errno.esrch)
  | Some proc ->
    if signo <> 0 then
      post_process_signal k proc
        (Signals.make_info signo (Signals.User task.T.tid));
    Done 0

let sys_tgkill k task args =
  let tid = args.(1) and signo = args.(2) in
  match find_task k tid with
  | None -> Done (-Errno.esrch)
  | Some target ->
    if signo <> 0 then
      post_signal k target (Signals.make_info signo (Signals.User task.T.tid));
    Done 0

let sys_rt_sigaction _k task args =
  let signo = args.(0) in
  if signo < 1 || signo > Signals.max_signal || signo = Signals.sigkill then
    Done (-Errno.einval)
  else begin
    let disposition =
      if args.(1) = 0 then Signals.Default
      else if args.(1) = 1 then Signals.Ignore
      else Signals.Handler args.(1)
    in
    task.T.proc.T.sighand.(signo) <-
      { Signals.disposition; mask = args.(2); flags = args.(3) };
    Done 0
  end

let sys_rt_sigprocmask k task args =
  let how = args.(0) and set = args.(1) and old_addr = args.(2) in
  if old_addr <> 0 then uwrite_u64 k task old_addr task.T.sigmask;
  let protected = Signals.add Signals.empty_set Signals.sigkill in
  let set = set land lnot protected in
  (if how = Signals.sig_block then
     task.T.sigmask <- Signals.union task.T.sigmask set
   else if how = Signals.sig_unblock then
     task.T.sigmask <- task.T.sigmask land lnot set
   else task.T.sigmask <- set);
  Done 0

let sys_rt_sigreturn k task _args =
  match task.T.sig_frames with
  | [] ->
    kill_process k task.T.proc (256 + Signals.sigsegv);
    Divert
  | frame :: rest -> (
    task.T.sig_frames <- rest;
    let cpu = task.T.cpu in
    try
      for i = 0 to 15 do
        cpu.Cpu.regs.(i) <- A.read_u64 cpu.Cpu.space (frame + (8 * i))
      done;
      cpu.Cpu.pc <- A.read_u64 cpu.Cpu.space (frame + 128);
      task.T.sigmask <- A.read_u64 cpu.Cpu.space (frame + 136);
      cpu.Cpu.regs.(Insn.reg_sp) <- frame + (sigframe_words * 8);
      (* Kernel restart machinery (paper §2.3.10): rewind to the
         instruction that issued the syscall so it re-executes.  As in
         [restart_by_rewind], the target is the pc the frame saved minus
         one — for a hook-issued syscall that is the patched site, not
         the RR page's synthetic [ss.site]. *)
      (if cpu.Cpu.regs.(0) = -Errno.erestartsys then
         match task.T.restart with
         | Some ss ->
           cpu.Cpu.pc <- cpu.Cpu.pc - 1;
           cpu.Cpu.regs.(0) <- ss.T.nr;
           task.T.restart <- None
         | None -> ());
      Divert
    with A.Segv _ ->
      kill_process k task.T.proc (256 + Signals.sigsegv);
      Divert)

let sys_getrandom k task args =
  let buf = args.(0) and len = args.(1) in
  let data = Bytes.init (max 0 len) (fun _ -> Char.chr (Entropy.byte k.entropy)) in
  uwrite k task buf data;
  charge k (Cost.bytes_cost k.cost len);
  Done len

let sys_sched_setaffinity k task args =
  let tid = args.(0) and core = args.(1) in
  let target = if tid = 0 then Some task else find_task k tid in
  match target with
  | None -> Done (-Errno.esrch)
  | Some t ->
    t.T.affinity <- core;
    Done 0

let sys_prctl _k task args =
  if args.(0) = Sysno.pr_set_tsc then begin
    task.T.cpu.Cpu.tsc_trap <- args.(1) = Sysno.pr_tsc_sigsegv;
    Done 0
  end
  else Done (-Errno.einval)

let sys_seccomp k task args =
  if args.(0) <> Sysno.seccomp_set_mode_filter then Done (-Errno.einval)
  else
    match Hashtbl.find_opt k.filter_registry args.(2) with
    | None -> Done (-Errno.einval)
    | Some prog ->
      task.T.seccomp <- prog :: task.T.seccomp;
      Done 0

let sys_perf_event_open k task args =
  let kind = args.(0) and tid = args.(1) and signo = args.(2) in
  if kind <> 0 then Done (-Errno.einval)
  else
    let target = if tid = 0 then task.T.tid else tid in
    let ev = Perf_event.create ~id:(alloc_obj_id k) ~target_tid:target
        Perf_event.Context_switches
    in
    if signo <> 0 then Perf_event.set_signal ev signo;
    Hashtbl.replace k.perf_events ev.Perf_event.id ev;
    Done (T.add_fd task (T.F_perf ev) ~fl:0)

let sys_ioctl k task args =
  fd_or_ebadf task args.(0) (fun e ->
      match (e.T.obj, args.(1)) with
      | T.F_perf ev, req when req = Sysno.perf_ioc_enable ->
        Perf_event.enable ev;
        (match find_task k ev.Perf_event.target_tid with
        | Some t -> t.T.desched <- Some ev
        | None -> ());
        Done 0
      | T.F_perf ev, req when req = Sysno.perf_ioc_disable ->
        Perf_event.disable ev;
        Done 0
      | T.F_reg { reg = dst; _ }, req when req = Sysno.ficlone ->
        fd_or_ebadf task args.(2) (fun src_e ->
            match src_e.T.obj with
            | T.F_reg { reg = src; _ } ->
              charge k
                (k.cost.Cost.clone_block
                * ((Vfs.file_size src / Vfs.block_size) + 1));
              ignore
                (Vfs.clone_range k.vfs ~src ~src_off:0 ~dst ~dst_off:0
                   ~len:(Vfs.file_size src));
              Done 0
            | T.F_pipe_r _ | T.F_pipe_w _ | T.F_sock _ | T.F_perf _ ->
              Done (-Errno.ebadf))
      | (T.F_reg _ | T.F_pipe_r _ | T.F_pipe_w _ | T.F_sock _ | T.F_perf _), _
        ->
        (* Unknown ioctl: the recorder's syscall model rejects these
           loudly (paper §2.3.6); the kernel itself just says EINVAL. *)
        Done (-Errno.einval))

let sys_socket k task _args =
  let s = Chan.make_sock ~id:(alloc_obj_id k) in
  Done (T.add_fd task (T.F_sock s) ~fl:0)

let sys_bind k task args =
  fd_or_ebadf task args.(0) (fun e ->
      match e.T.obj with
      | T.F_sock s ->
        let port = args.(1) in
        if Hashtbl.mem k.ports port then Done (-Errno.eaddrinuse)
        else begin
          s.Chan.port <- Some port;
          Hashtbl.replace k.ports port s;
          Done 0
        end
      | T.F_reg _ | T.F_pipe_r _ | T.F_pipe_w _ | T.F_perf _ ->
        Done (-Errno.ebadf))

let sys_sendto k task args =
  fd_or_ebadf task args.(0) (fun e ->
      match e.T.obj with
      | T.F_sock s -> (
        let buf = args.(1) and len = args.(2) and port = args.(3) in
        match Hashtbl.find_opt k.ports port with
        | None -> Done (-Errno.econnrefused)
        | Some dst ->
          let payload = uread k task buf len in
          let src_port = match s.Chan.port with Some p -> p | None -> 0 in
          Chan.sock_deliver dst { Chan.payload; src_port };
          wake_queue k dst.Chan.sock_wait;
          charge k (Cost.bytes_cost k.cost len);
          Done len)
      | T.F_reg _ | T.F_pipe_r _ | T.F_pipe_w _ | T.F_perf _ ->
        Done (-Errno.ebadf))

let sys_recvfrom k task args =
  fd_or_ebadf task args.(0) (fun e ->
      match e.T.obj with
      | T.F_sock s ->
        if Chan.sock_readable s then begin
          let dg = Chan.sock_take s in
          let n = min args.(2) (Bytes.length dg.Chan.payload) in
          uwrite k task args.(1) (Bytes.sub dg.Chan.payload 0 n);
          if args.(3) <> 0 then uwrite_u64 k task args.(3) dg.Chan.src_port;
          charge k (Cost.bytes_cost k.cost n);
          Done n
        end
        else if e.T.fl land Sysno.o_nonblock <> 0 then Done (-Errno.eagain)
        else Block (T.W_sock_read s)
      | T.F_reg _ | T.F_pipe_r _ | T.F_pipe_w _ | T.F_perf _ ->
        Done (-Errno.ebadf))

let sys_dup _k task args =
  fd_or_ebadf task args.(0) (fun e ->
      (match e.T.obj with
      | T.F_pipe_r p -> p.Chan.readers <- p.Chan.readers + 1
      | T.F_pipe_w p -> p.Chan.writers <- p.Chan.writers + 1
      | T.F_reg _ | T.F_sock _ | T.F_perf _ -> ());
      let tab = task.T.proc.T.fdtab in
      let rec lowest fd =
        if Hashtbl.mem tab.T.fds fd then lowest (fd + 1) else fd
      in
      let fd = lowest 3 in
      if fd >= tab.T.next_fd then tab.T.next_fd <- fd + 1;
      Hashtbl.replace tab.T.fds fd e;
      Done fd)

let sys_close k task args =
  fd_or_ebadf task args.(0) (fun e ->
      close_fd_entry k e;
      T.remove_fd task args.(0);
      Done 0)

let sys_getcwd k task args =
  let cwd = task.T.proc.T.cwd in
  if String.length cwd + 1 > args.(1) then Done (-Errno.erange)
  else begin
    uwrite k task args.(0) (Bytes.of_string (cwd ^ "\000"));
    Done (String.length cwd + 1)
  end

let sys_chdir k task args =
  let path = abs_path task (uread_str k task args.(0)) in
  vfs_result (fun () ->
      match (Vfs.resolve k.vfs path).Vfs.kind with
      | Vfs.Dir _ ->
        task.T.proc.T.cwd <- path;
        0
      | Vfs.Reg _ -> -Errno.enotdir)

(* ------------------------------------------------------------------ *)
(* Process lifecycle: clone / execve / exit / wait4.                   *)

(* Create a child task.  Used by the clone syscall and, with [?tid], by
   the replayer to mirror recorded tids. *)
let do_clone k parent ~flags ~child_sp ?tid () =
  charge k k.cost.Cost.fork_cost;
  let tid =
    match tid with
    | Some t ->
      reserve_id k t;
      t
    | None -> alloc_id k
  in
  let thread = flags land Sysno.clone_thread <> 0 in
  let proc =
    if thread then parent.T.proc
    else begin
      let space = A.fork parent.T.proc.T.space ~id:k.next_space_id in
      k.next_space_id <- k.next_space_id + 1;
      let p = T.make_process ~pid:tid ~parent:parent.T.proc.T.pid ~space in
      p.T.fdtab <- T.fdtab_copy parent.T.proc.T.fdtab;
      (* fork duplicates every fd: bump pipe end refcounts *)
      Hashtbl.iter
        (fun _ e ->
          match e.T.obj with
          | T.F_pipe_r pi -> pi.Chan.readers <- pi.Chan.readers + 1
          | T.F_pipe_w pi -> pi.Chan.writers <- pi.Chan.writers + 1
          | T.F_reg _ | T.F_sock _ | T.F_perf _ -> ())
        p.T.fdtab.T.fds;
      Array.blit parent.T.proc.T.sighand 0 p.T.sighand 0
        (Array.length p.T.sighand);
      p.T.cwd <- parent.T.proc.T.cwd;
      p.T.cmd <- parent.T.proc.T.cmd;
      parent.T.proc.T.children <- tid :: parent.T.proc.T.children;
      Hashtbl.replace k.procs tid p;
      p
    end
  in
  let cpu = Cpu.create ~space:proc.T.space in
  Array.blit parent.T.cpu.Cpu.regs 0 cpu.Cpu.regs 0 Insn.num_regs;
  cpu.Cpu.pc <- parent.T.cpu.Cpu.pc;
  cpu.Cpu.tsc_trap <- parent.T.cpu.Cpu.tsc_trap;
  cpu.Cpu.regs.(0) <- 0;
  if child_sp <> 0 then cpu.Cpu.regs.(Insn.reg_sp) <- child_sp;
  let child = T.make_task ~tid ~proc ~cpu in
  child.T.sigmask <- parent.T.sigmask;
  child.T.affinity <- parent.T.affinity;
  child.T.priority <- parent.T.priority;
  child.T.seccomp <- parent.T.seccomp;
  child.T.vdso_enabled <- parent.T.vdso_enabled;
  child.T.tick_born <- now k;
  proc.T.threads <- proc.T.threads @ [ tid ];
  Hashtbl.replace k.tasks tid child;
  if parent.T.traced then begin
    (* Auto-attach, like rr's PTRACE_O_TRACECLONE: the child is born in a
       ptrace-stop so the recorder can set it up before it runs. *)
    child.T.traced <- true;
    enter_stop k child (T.Stop_clone parent.T.tid)
  end;
  child

let sys_clone k task args =
  let child = do_clone k task ~flags:args.(0) ~child_sp:args.(1) () in
  Done child.T.tid

(* Replace the process image.  Returns an errno on failure; on success
   control does not return to the old program. *)
let do_execve k task path =
  match Vfs.resolve_opt k.vfs path with
  | None -> Some Errno.enoent
  | Some node -> (
    match node.Vfs.kind with
    | Vfs.Dir _ -> Some Errno.eisdir
    | Vfs.Reg reg -> (
      match Vfs.get_image reg with
      | None -> Some Errno.eacces
      | Some img ->
        charge k k.cost.Cost.exec_cost;
        k.exec_count <- k.exec_count + 1;
        (* Other threads are destroyed by exec. *)
        List.iter
          (fun tid ->
            if tid <> task.T.tid then
              match find_task k tid with
              | Some t when T.is_alive t -> kill_task k t 0
              | Some _ | None -> ())
          task.T.proc.T.threads;
        task.T.proc.T.threads <- [ task.T.tid ];
        A.release task.T.proc.T.space;
        let space = alloc_space k in
        Image.load img space;
        task.T.proc.T.space <- space;
        task.T.cpu.Cpu.space <- space;
        Array.fill task.T.cpu.Cpu.regs 0 Insn.num_regs 0;
        task.T.cpu.Cpu.regs.(Insn.reg_sp) <- A.stack_top;
        task.T.cpu.Cpu.pc <- img.Image.entry;
        Array.fill task.T.proc.T.sighand 0
          (Array.length task.T.proc.T.sighand)
          Signals.default_action;
        task.T.sig_frames <- [];
        task.T.pending <- [];
        task.T.restart <- None;
        task.T.restart_wanted <- false;
        task.T.vdso_enabled <- true;
        task.T.proc.T.cmd <- img.Image.name;
        None))

let sys_execve k task args =
  let path = abs_path task (uread_str k task args.(0)) in
  match do_execve k task path with
  | Some e -> Done (-e)
  | None ->
    if task.T.traced then enter_stop k task T.Stop_exec;
    Divert

let sys_exit k task args ~group =
  let status = args.(0) land 0xff in
  if task.T.traced then begin
    task.T.exit_status <- status;
    task.T.exit_is_group <- group;
    enter_stop k task (T.Stop_exit status);
    Divert
  end
  else begin
    if group then kill_process k task.T.proc status
    else kill_task k task status;
    Divert
  end

let wnohang = 1

let sys_wait4 k task args =
  let want_pid = args.(0) and status_addr = args.(1) and options = args.(2) in
  let proc = task.T.proc in
  let candidates =
    List.filter_map (Hashtbl.find_opt k.procs) proc.T.children
  in
  let matching =
    List.filter
      (fun c -> want_pid = -1 || c.T.pid = want_pid)
      candidates
  in
  if matching = [] then Done (-Errno.echild)
  else
    match
      List.find_opt
        (fun c -> c.T.exit_code <> None && not c.T.reaped)
        matching
    with
    | Some zombie ->
      zombie.T.reaped <- true;
      proc.T.children <-
        List.filter (fun pid -> pid <> zombie.T.pid) proc.T.children;
      Hashtbl.remove k.procs zombie.T.pid;
      List.iter (Hashtbl.remove k.tasks) zombie.T.threads;
      (match zombie.T.exit_code with
      | Some st -> if status_addr <> 0 then uwrite_u64 k task status_addr st
      | None -> ());
      Done zombie.T.pid
    | None ->
      if options land wnohang <> 0 then Done 0
      else Block (T.W_child proc.T.pid)

let sys_unlink k task args =
  let path = abs_path task (uread_str k task args.(0)) in
  vfs_result (fun () -> Vfs.unlink k.vfs path; 0)

let sys_mkdir k task args =
  let path = abs_path task (uread_str k task args.(0)) in
  vfs_result (fun () -> Vfs.mkdir k.vfs path; 0)

let sys_rename k task args =
  let src_path = abs_path task (uread_str k task args.(0)) in
  let dst_path = abs_path task (uread_str k task args.(1)) in
  vfs_result (fun () -> Vfs.rename k.vfs ~src_path ~dst_path; 0)

let sys_link k task args =
  let src_path = abs_path task (uread_str k task args.(0)) in
  let dst_path = abs_path task (uread_str k task args.(1)) in
  vfs_result (fun () -> Vfs.link k.vfs ~src_path ~dst_path; 0)

let sys_ftruncate k task args =
  fd_or_ebadf task args.(0) (fun e ->
      match e.T.obj with
      | T.F_reg { reg; _ } ->
        Vfs.truncate k.vfs reg args.(1);
        Done 0
      | T.F_pipe_r _ | T.F_pipe_w _ | T.F_sock _ | T.F_perf _ ->
        Done (-Errno.einval))

let sys_time k task args =
  let t = now k in
  if args.(0) <> 0 then uwrite_u64 k task args.(0) t;
  Done (t land max_int)

(* poll(2): the guest passes an array of { fd(8) events(8) revents(8) }
   triples.  Returns the number of ready entries, writing revents; blocks
   on every referenced object at once when nothing is ready.

   revents land in guest memory only on a completion with ready > 0: a
   scan that ends in Block or a zero result leaves the array untouched.
   The recorder's output model promises exactly this ("writes bounded by
   result semantics"), so the kernel must not write more than the model
   records — a poll that returns 0 with dirty revents would replay
   differently than it recorded. *)
let sys_poll k task args =
  let pfds = args.(0) and nfds = args.(1) in
  if nfds < 0 || nfds > 64 then Done (-Errno.einval)
  else begin
    let entry i =
      let base = pfds + (24 * i) in
      (uread_u64 k task base, uread_u64 k task (base + 8), base + 16)
    in
    let staged = Array.make (max nfds 1) 0 in
    let ready = ref 0 in
    let queues = ref [] in
    for i = 0 to nfds - 1 do
      let fd, events, _ = entry i in
      let revents =
        match T.find_fd task fd with
        | None -> Sysno.pollerr
        | Some e -> (
          match e.T.obj with
          | T.F_pipe_r p ->
            (if Chan.pipe_readable p && events land Sysno.pollin <> 0 then
               Sysno.pollin
             else 0)
            lor (if p.Chan.writers = 0 then Sysno.pollhup else 0)
          | T.F_pipe_w p ->
            (if Chan.pipe_writable p && events land Sysno.pollout <> 0 then
               Sysno.pollout
             else 0)
            lor (if p.Chan.readers = 0 then Sysno.pollerr else 0)
          | T.F_sock s ->
            (if Chan.sock_readable s && events land Sysno.pollin <> 0 then
               Sysno.pollin
             else 0)
            lor (if events land Sysno.pollout <> 0 then Sysno.pollout else 0)
          | T.F_reg _ ->
            (events land Sysno.pollin) lor (events land Sysno.pollout)
          | T.F_perf _ -> 0)
      in
      staged.(i) <- revents;
      if revents <> 0 then incr ready;
      (* collect the wait queues we would park on *)
      (match T.find_fd task fd with
      | Some { T.obj = T.F_pipe_r p; _ } when events land Sysno.pollin <> 0 ->
        queues := p.Chan.read_wait :: !queues
      | Some { T.obj = T.F_pipe_w p; _ } when events land Sysno.pollout <> 0 ->
        queues := p.Chan.write_wait :: !queues
      | Some { T.obj = T.F_sock s; _ } when events land Sysno.pollin <> 0 ->
        queues := s.Chan.sock_wait :: !queues
      | Some _ | None -> ())
    done;
    if !ready > 0 then begin
      for i = 0 to nfds - 1 do
        let _, _, revents_addr = entry i in
        uwrite_u64 k task revents_addr staged.(i)
      done;
      Done !ready
    end
    else if !queues = [] then Done 0 (* nothing pollable: like timeout 0 *)
    else Block (T.W_poll !queues)
  end

(* The system call table proper. *)
let do_syscall k task (ss : T.saved_syscall) =
  let args = ss.T.args in
  k.syscall_count <- k.syscall_count + 1;
  Telemetry.incr tm_syscall;
  try
    let n = ss.T.nr in
    if n = Sysno.read then sys_read k task args
    else if n = Sysno.write then sys_write k task args
    else if n = Sysno.openat then sys_openat k task args
    else if n = Sysno.close then sys_close k task args
    else if n = Sysno.stat then sys_stat k task args
    else if n = Sysno.lseek then sys_lseek k task args
    else if n = Sysno.mmap then sys_mmap k task args
    else if n = Sysno.munmap then sys_munmap k task args
    else if n = Sysno.mprotect then sys_mprotect k task args
    else if n = Sysno.exit then sys_exit k task args ~group:false
    else if n = Sysno.exit_group then sys_exit k task args ~group:true
    else if n = Sysno.clone then sys_clone k task args
    else if n = Sysno.execve then sys_execve k task args
    else if n = Sysno.wait4 then sys_wait4 k task args
    else if n = Sysno.getpid then Done task.T.proc.T.pid
    else if n = Sysno.gettid then Done task.T.tid
    else if n = Sysno.getppid then Done task.T.proc.T.parent
    else if n = Sysno.gettimeofday || n = Sysno.clock_gettime then
      sys_time k task args
    else if n = Sysno.nanosleep then sys_nanosleep k task args
    else if n = Sysno.sched_yield then Done 0
    else if n = Sysno.futex then sys_futex k task args
    else if n = Sysno.pipe then sys_pipe k task args
    else if n = Sysno.kill then sys_kill k task args
    else if n = Sysno.tgkill then sys_tgkill k task args
    else if n = Sysno.rt_sigaction then sys_rt_sigaction k task args
    else if n = Sysno.rt_sigprocmask then sys_rt_sigprocmask k task args
    else if n = Sysno.rt_sigreturn then sys_rt_sigreturn k task args
    else if n = Sysno.getrandom then sys_getrandom k task args
    else if n = Sysno.sched_setaffinity then sys_sched_setaffinity k task args
    else if n = Sysno.prctl then sys_prctl k task args
    else if n = Sysno.seccomp then sys_seccomp k task args
    else if n = Sysno.perf_event_open then sys_perf_event_open k task args
    else if n = Sysno.ioctl then sys_ioctl k task args
    else if n = Sysno.socket then sys_socket k task args
    else if n = Sysno.bind then sys_bind k task args
    else if n = Sysno.sendto then sys_sendto k task args
    else if n = Sysno.recvfrom then sys_recvfrom k task args
    else if n = Sysno.unlink then sys_unlink k task args
    else if n = Sysno.mkdir then sys_mkdir k task args
    else if n = Sysno.rename then sys_rename k task args
    else if n = Sysno.link then sys_link k task args
    else if n = Sysno.dup then sys_dup k task args
    else if n = Sysno.ftruncate then sys_ftruncate k task args
    else if n = Sysno.getcwd then sys_getcwd k task args
    else if n = Sysno.chdir then sys_chdir k task args
    else if n = Sysno.fsync then Done 0
    else if n = Sysno.readlink then Done (-Errno.einval)
    else if n = Sysno.sigaltstack then Done 0
    else if n = Sysno.set_tid_address then Done task.T.tid
    else if n = Sysno.poll then sys_poll k task args
    else if n = Sysno.ptrace then Done (-Errno.enosys)
    else Done (-Errno.enosys)
  with Efault -> Done (-Errno.efault)

(* ------------------------------------------------------------------ *)
(* Syscall entry, blocking, completion.                                *)

(* Evaluate the task's seccomp filters.  Precedence follows Linux:
   numerically smaller actions win (KILL < TRAP < ERRNO < TRACE < ALLOW). *)
let eval_seccomp task ~nr ~args ~ip =
  List.fold_left
    (fun acc prog ->
      let r =
        try Bpf.run prog { Bpf.nr; arch = 0xc0de; ip; args }
        with Bpf.Bad_program _ -> Bpf.ret_kill
      in
      min acc r)
    Bpf.ret_allow task.T.seccomp

let block_task k task ss cond =
  task.T.state <- T.Blocked cond;
  task.T.in_syscall <- Some ss;
  (match cond with
  | T.W_poll queues -> List.iter (fun q -> Chan.enqueue q task.T.tid) queues
  | T.W_pipe_read _ | T.W_pipe_write _ | T.W_sock_read _ | T.W_futex _
  | T.W_child _ | T.W_sleep _ -> (
    match waitq_of_cond k cond with
    | Some q -> Chan.enqueue q task.T.tid
    | None -> ()));
  (* Deschedule: an armed perf context-switch event signals the task,
     which immediately interrupts the just-blocked syscall (paper §3.3). *)
  match task.T.desched with
  | Some ev -> (
    match Perf_event.on_deschedule ev with
    | Some signo -> post_signal k task (Signals.make_info signo Signals.Desched)
    | None -> ())
  | None -> ()

let finish_syscall k task ss result =
  task.T.in_syscall <- None;
  task.T.cpu.Cpu.regs.(0) <- result;
  if task.T.traced && task.T.want_exit_stop then begin
    task.T.want_exit_stop <- false;
    enter_stop k task (T.Stop_syscall_exit (ss, result))
  end

(* Execute (or re-execute after wakeup) a syscall body. *)
let perform_syscall k task ss =
  charge k k.cost.Cost.syscall_base;
  match do_syscall k task ss with
  | Done r ->
    finish_syscall k task ss r;
    (* A spurious desched can fire even though the syscall completed
       without blocking (paper §3.3 "spurious SWITCHES can occur at any
       point"). *)
    (match task.T.desched with
    | Some ev
      when ev.Perf_event.enabled
           && k.spurious_desched_period > 0
           && Entropy.int k.entropy k.spurious_desched_period = 0 -> (
      match ev.Perf_event.signal_on_overflow with
      | Some signo ->
        post_signal k task (Signals.make_info signo Signals.Desched)
      | None -> ())
    | Some _ | None -> ())
  | Block cond -> block_task k task ss cond
  | Divert -> ()

let attempt_completion k task ss =
  match do_syscall k task ss with
  | Done r -> finish_syscall k task ss r
  | Block cond -> block_task k task ss cond
  | Divert -> ()

(* A syscall instruction was executed (or the restart machinery re-enters
   one).  [ip] is the address of the syscall instruction for seccomp. *)
let enter_syscall k task ss ~ip =
  let action = eval_seccomp task ~nr:ss.T.nr ~args:ss.T.args ~ip in
  let act = Bpf.action_of action in
  if act = Bpf.ret_allow then begin
    if
      task.T.traced
      && (task.T.resume = T.R_sysemu || task.T.resume = T.R_sysemu_single)
    then
      (* SYSEMU stop: the syscall is suppressed at entry; however the
         supervisor later resumes, the kernel will not run it. *)
      enter_stop k task (T.Stop_syscall_entry ss)
    else if task.T.traced && task.T.resume = T.R_syscall then begin
      task.T.in_entry_stop <- Some ss;
      enter_stop k task (T.Stop_syscall_entry ss)
    end
    else begin
      (* Direct execution (untraced, or traced under R_cont): no exit
         stop is owed for this syscall. *)
      task.T.want_exit_stop <- false;
      perform_syscall k task ss
    end
  end
  else if act = Bpf.action_of Bpf.ret_trace then begin
    if task.T.traced then begin
      task.T.in_entry_stop <- Some ss;
      enter_stop k task (T.Stop_seccomp ss)
    end
    else begin
      Log.err (fun m ->
          m "task %d: SECCOMP_RET_TRACE with no tracer; killing" task.T.tid);
      kill_process k task.T.proc (256 + Signals.sigsys)
    end
  end
  else if act = Bpf.action_of (Bpf.ret_errno 0) then
    finish_syscall k task ss (-Bpf.errno_of action)
  else if act = Bpf.action_of Bpf.ret_trap then
    post_signal k task (Signals.make_info Signals.sigsys Signals.Fault)
  else kill_process k task.T.proc (256 + Signals.sigsys)

(* vdso fast path: some read-only time syscalls never enter the kernel
   (paper §2.5); the recorder disables this per task. *)
let vdso_call k task nr args =
  ignore nr;
  charge k k.cost.Cost.vdso_call;
  let t = now k in
  (try if args.(0) <> 0 then uwrite_u64 k task args.(0) t with Efault -> ());
  task.T.cpu.Cpu.regs.(0) <- t land max_int

(* ------------------------------------------------------------------ *)
(* Running one task.                                                   *)

let build_saved_syscall task ~site =
  let regs = task.T.cpu.Cpu.regs in
  { T.nr = regs.(0);
    args = Array.init 6 (fun i -> regs.(i + 1));
    site;
    entry_regs = Cpu.copy_regs task.T.cpu }

let fault_signal = function
  | Cpu.F_segv { addr; access } ->
    ignore access;
    Signals.make_info ~fault_addr:addr Signals.sigsegv Signals.Fault
  | Cpu.F_ill _ -> Signals.make_info Signals.sigill Signals.Fault
  | Cpu.F_div _ -> Signals.make_info Signals.sigfpe Signals.Fault

let default_slice = 4096

(* Run one scheduling slice of a Runnable task. *)
let run_slice k task ~fuel =
  if task.T.state = T.Runnable then
    match task.T.in_syscall with
    | Some ss when has_deliverable_signal task ->
      (* A signal arrived while the task slept in this syscall: the
         syscall is interrupted with the restart sentinel (and the
         supervisor sees its exit stop) before the signal is delivered. *)
      task.T.in_syscall <- None;
      task.T.cpu.Cpu.regs.(0) <- -Errno.erestartsys;
      task.T.restart <- Some ss;
      task.T.restart_wanted <- true;
      if task.T.traced && task.T.want_exit_stop then begin
        task.T.want_exit_stop <- false;
        enter_stop k task (T.Stop_syscall_exit (ss, -Errno.erestartsys))
      end
      else ignore (check_signals k task)
    | Some _ | None ->
    if check_signals k task then ()
    else
      match task.T.in_syscall with
      | Some ss -> attempt_completion k task ss
      | None ->
        if task.T.restart_wanted && task.T.restart <> None then begin
          match task.T.restart with
          | Some ss ->
            task.T.restart_wanted <- false;
            task.T.restart <- None;
            (* Linux re-executes the syscall instruction; the supervisor
               observes a brand-new syscall entry (paper §2.3.10). *)
            enter_syscall k task ss ~ip:ss.T.site
          | None -> ()
        end
        else begin
          task.T.restart_wanted <- false;
          let stop, steps = Cpu.run (cpu_env k) task.T.cpu ~fuel in
          charge k (steps * k.cost.Cost.insn);
          k.insns_retired <- k.insns_retired + steps;
          match stop with
          | None -> () (* timeslice exhausted *)
          | Some Cpu.Stop_syscall ->
            let site = task.T.cpu.Cpu.pc - 1 in
            let nr = task.T.cpu.Cpu.regs.(0) in
            if
              task.T.vdso_enabled
              && (nr = Sysno.gettimeofday || nr = Sysno.clock_gettime)
            then
              vdso_call k task nr
                (Array.init 6 (fun i -> task.T.cpu.Cpu.regs.(i + 1)))
            else enter_syscall k task (build_saved_syscall task ~site) ~ip:site
          | Some (Cpu.Stop_hook n) -> (
            match Hashtbl.find_opt k.hooks n with
            | Some fn -> fn k task
            | None ->
              post_signal k task (Signals.make_info Signals.sigill Signals.Fault))
          | Some Cpu.Stop_pmu ->
            post_signal k task (Signals.make_info Signals.sigpreempt Signals.Preempt)
          | Some Cpu.Stop_singlestep ->
            task.T.cpu.Cpu.single_step <- false;
            if task.T.traced then enter_stop k task T.Stop_singlestep
          | Some Cpu.Stop_bkpt ->
            if task.T.traced then
              enter_stop k task
                (T.Stop_signal (Signals.make_info Signals.sigtrap Signals.Bkpt))
            else kill_process k task.T.proc (256 + Signals.sigtrap)
          | Some (Cpu.Stop_tsc r) ->
            if task.T.traced then
              enter_stop k task
                (T.Stop_signal
                   (Signals.make_info Signals.sigsegv (Signals.Tsc_trap r)))
            else kill_process k task.T.proc (256 + Signals.sigsegv)
          | Some (Cpu.Stop_fault f) -> post_signal k task (fault_signal f)
        end

(* ------------------------------------------------------------------ *)
(* Supervisor interface (ptrace).                                      *)

(* Resume a task from a ptrace-stop.  [sig_] is the signal to deliver
   when resuming from a signal-delivery-stop (None = suppress).

   [elide], valid when resuming from a syscall entry/seccomp stop with
   [R_syscall], asks the kernel to skip the matching exit stop if the
   syscall completes synchronously (paper §3.4: the supervisor already
   recorded the frame at the entry stop).  If the syscall blocks
   instead, the exit stop is re-armed — the supervisor's pre-computed
   frame was provisional and it falls back to the classic two-stop
   protocol when the completion finally surfaces. *)
let resume k task how ?sig_ ?(elide = false) () =
  if task.T.state <> T.Stopped then
    Fmt.invalid_arg "resume: task %d not stopped" task.T.tid;
  let stop = task.T.last_stop in
  task.T.last_stop <- None;
  task.T.resume <- how;
  task.T.cpu.Cpu.single_step <-
    (how = T.R_singlestep || how = T.R_sysemu_single);
  match stop with
  | Some (T.Stop_exit status) ->
    if task.T.exit_is_group then kill_process k task.T.proc status
    else kill_task k task status
  | Some (T.Stop_signal _) -> (
    task.T.state <- T.Runnable;
    match sig_ with
    | Some info -> really_deliver k task info
    | None -> () (* signal suppressed by the supervisor *))
  | Some (T.Stop_seccomp _) | Some (T.Stop_syscall_entry _) -> (
    task.T.state <- T.Runnable;
    match task.T.in_entry_stop with
    | None ->
      (* SYSEMU stop: the syscall was suppressed at entry; nothing to
         perform, execution continues after the instruction. *)
      ()
    | Some ss -> (
      task.T.in_entry_stop <- None;
      match how with
      | T.R_sysemu | T.R_sysemu_single ->
        (* Supervisor chose to suppress at a regular entry stop. *)
        ()
      | T.R_cont | T.R_syscall | T.R_singlestep ->
        if elide && how = T.R_syscall then begin
          task.T.want_exit_stop <- false;
          perform_syscall k task ss;
          match task.T.state with
          | T.Blocked _ ->
            (* Did not complete at the entry stop: fall back to the
               two-stop protocol so the supervisor sees the eventual
               completion. *)
            task.T.want_exit_stop <- true
          | T.Runnable | T.Stopped | T.Dead ->
            (* Completed (or died) with no exit stop owed.  Drop the
               R_syscall resume request so the task does not take a
               spurious entry stop at its next ALLOW-listed syscall. *)
            task.T.resume <- T.R_cont
        end
        else begin
          task.T.want_exit_stop <- (how = T.R_syscall);
          perform_syscall k task ss
        end))
  | Some T.Stop_exec | Some (T.Stop_clone _) | Some (T.Stop_syscall_exit _)
  | Some T.Stop_singlestep | None ->
    task.T.state <- T.Runnable

(* Supervisor-requested stop of a runnable task (used by the recorder to
   park a task that completed kernel work while another task holds the
   single-core schedule). *)
let park k task =
  ignore k;
  if task.T.state = T.Runnable then begin
    task.T.state <- T.Stopped;
    task.T.last_stop <- None
  end

(* Wake any sleepers whose deadline has passed. *)
let wake_sleepers k =
  List.iter
    (fun t ->
      match t.T.state with
      | T.Blocked (T.W_sleep d) when d <= k.clock -> wake_task k t
      | T.Blocked _ | T.Runnable | T.Stopped | T.Dead -> ())
    (all_tasks k)

let next_stopped k =
  let rec pop () =
    match k.stop_queue with
    | [] -> None
    | tid :: rest -> (
      k.stop_queue <- rest;
      match find_task k tid with
      | Some t when t.T.state = T.Stopped -> (
        match t.T.last_stop with
        | Some stop -> Some (t, stop)
        | None -> pop ())
      | Some _ | None -> pop ())
  in
  pop ()

(* Run the world until some traced task enters a ptrace-stop. *)
let wait k =
  let result = ref None in
  while !result = None do
    match next_stopped k with
    | Some (t, stop) -> result := Some (Stopped_task (t, stop))
    | None -> (
      wake_sleepers k;
      let live = live_tasks k in
      if live = [] then result := Some All_dead
      else
        match List.find_opt (fun t -> t.T.state = T.Runnable) live with
        | Some t ->
          (* Guest execution shows up on the running task's lane. *)
          Timeline.set_lane t.T.tid;
          Timeline.scope "kern.run" (fun () ->
              run_slice k t ~fuel:default_slice);
          Timeline.set_lane 0
        | None ->
          let blocked_sleepers =
            List.filter_map
              (fun t ->
                match t.T.state with
                | T.Blocked (T.W_sleep d) -> Some d
                | T.Blocked _ | T.Runnable | T.Stopped | T.Dead -> None)
              live
          in
          (match blocked_sleepers with
          | [] ->
            if List.for_all (fun t -> t.T.state = T.Stopped) live then
              (* Everyone is sitting in a ptrace-stop the supervisor has
                 already consumed: nothing will ever happen. *)
              result := Some (Deadlocked (List.map (fun t -> t.T.tid) live))
            else
              result := Some (Deadlocked (List.map (fun t -> t.T.tid) live))
          | d :: rest ->
            k.clock <- max k.clock (List.fold_left min d rest);
            wake_sleepers k))
  done;
  match !result with Some r -> r | None -> assert false

(* ------------------------------------------------------------------ *)
(* Spawning and supervisor conveniences.                               *)

let install_image k ~path img =
  (match Vfs.resolve_opt k.vfs path with
  | Some _ -> ()
  | None ->
    let reg = Vfs.create_file k.vfs path in
    (* Give the "binary" real bytes so trace hard-linking/cloning has
       something to share. *)
    let size = Image.byte_size img in
    let filler = Bytes.init (max 64 size) (fun i -> Char.chr (i land 0xff)) in
    ignore (Vfs.write k.vfs reg ~off:0 filler));
  let reg = Vfs.lookup_reg k.vfs path in
  Vfs.set_image reg img

let spawn k ~path ?(traced = false) ?tid () =
  let node = Vfs.resolve k.vfs path in
  let img =
    match node.Vfs.kind with
    | Vfs.Reg reg -> (
      match Vfs.get_image reg with
      | Some img -> img
      | None -> Fmt.invalid_arg "spawn: %s is not executable" path)
    | Vfs.Dir _ -> Fmt.invalid_arg "spawn: %s is a directory" path
  in
  let pid =
    match tid with
    | Some t ->
      reserve_id k t;
      t
    | None -> alloc_id k
  in
  let space = alloc_space k in
  Image.load img space;
  let proc = T.make_process ~pid ~parent:0 ~space in
  proc.T.cmd <- img.Image.name;
  Hashtbl.replace k.procs pid proc;
  let cpu = Cpu.create ~space in
  cpu.Cpu.pc <- img.Image.entry;
  cpu.Cpu.regs.(Insn.reg_sp) <- A.stack_top;
  let task = T.make_task ~tid:pid ~proc ~cpu in
  task.T.tick_born <- now k;
  proc.T.threads <- [ pid ];
  Hashtbl.replace k.tasks pid task;
  charge k k.cost.Cost.exec_cost;
  k.exec_count <- k.exec_count + 1;
  if traced then begin
    task.T.traced <- true;
    enter_stop k task T.Stop_exec
  end;
  task

(* Map memory in a tracee on the supervisor's behalf — rr does this by
   running a syscall in tracee context (paper §2.3.3), so we charge the
   equivalent of a remote traced syscall. *)
let supervisor_map k task ~len ~prot ~kind ?(shared = false) ?addr () =
  charge k (Cost.ptrace_stop k.cost + k.cost.Cost.syscall_base);
  let space = task.T.cpu.Cpu.space in
  let addr = match addr with Some a -> a | None -> A.find_map_addr space len in
  A.map space ~addr ~len ~prot ~kind ~shared ()

let getregs task = Cpu.copy_regs task.T.cpu

let setregs task regs = Cpu.set_regs task.T.cpu regs

(* Perform an untraced syscall on behalf of the interception library
   (the syscallbuf hook).  [ip] must be the untraced-instruction address
   so the recorder's seccomp filter allows it. *)
let untraced_syscall k task ~nr ~args ~ip =
  let ss =
    { T.nr; args = Array.copy args; site = ip; entry_regs = getregs task }
  in
  let action = eval_seccomp task ~nr ~args ~ip in
  if Bpf.action_of action <> Bpf.ret_allow then `Denied
  else begin
    charge k k.cost.Cost.syscall_base;
    match do_syscall k task ss with
    | Done r -> `Done r
    | Block cond ->
      block_task k task ss cond;
      `Blocked
    | Divert -> `Done 0
  end

(* ------------------------------------------------------------------ *)
(* Baseline multicore execution (no tracing).                          *)

type run_stats = {
  mutable wall_time : int;
  mutable deadlocked : bool;
}

(* Discrete-event multicore scheduler: per-core clocks, round-robin
   within priority, affinity honored.  Used for the paper's "baseline"
   and "single core" configurations. *)
let run_baseline k ~cores ?(sample_every = 0) ?(on_sample = fun _ -> ()) () =
  if cores < 1 then invalid_arg "run_baseline";
  let core_clock = Array.make cores k.clock in
  let last_on_core = Array.make cores (-1) in
  let rr_cursor = ref 0 in
  (* Causality: a task cannot start on a core earlier than its own last
     execution finished (idle cores fast-forward to the task's time). *)
  let task_time : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let stats = { wall_time = 0; deadlocked = false } in
  let next_sample = ref sample_every in
  let eligible t core =
    t.T.state = T.Runnable && (t.T.affinity = -1 || t.T.affinity = core)
  in
  let has_eligible core = List.exists (fun t -> eligible t core) (live_tasks k) in
  (* Strict priorities; round-robin within the best priority group. *)
  let pick_task core =
    let cands =
      List.filter (fun t -> eligible t core) (live_tasks k)
      |> List.sort (fun a b ->
             match compare a.T.priority b.T.priority with
             | 0 -> compare a.T.tid b.T.tid
             | c -> c)
    in
    match cands with
    | [] -> None
    | first :: _ ->
      let group = List.filter (fun t -> t.T.priority = first.T.priority) cands in
      incr rr_cursor;
      Some (List.nth group (!rr_cursor mod List.length group))
  in
  let finished = ref false in
  while not !finished do
    wake_sleepers k;
    let live = live_tasks k in
    if live = [] then finished := true
    else begin
      (* Choose the earliest core that has work, then pick once. *)
      let best_core = ref None in
      for c = 0 to cores - 1 do
        if has_eligible c then
          match !best_core with
          | Some b when core_clock.(b) <= core_clock.(c) -> ()
          | Some _ | None -> best_core := Some c
      done;
      match !best_core with
      | Some c -> (
        match pick_task c with
        | None -> ()
        | Some t ->
        let watermark =
          match Hashtbl.find_opt task_time t.T.tid with
          | Some tm -> max tm t.T.last_wake
          | None -> max t.T.tick_born t.T.last_wake
        in
        k.clock <- max core_clock.(c) watermark;
        t.T.cpu.Cpu.core <- c;
        (* A kernel-level context switch is only paid when the core picks
           up a different task. *)
        if last_on_core.(c) <> t.T.tid then begin
          charge k k.cost.Cost.sched_switch;
          Telemetry.incr tm_sched_switch;
          Timeline.instant ~lane:t.T.tid "kern.sched_switch";
          last_on_core.(c) <- t.T.tid
        end;
        run_slice k t ~fuel:k.cost.Cost.timeslice_insns;
        Hashtbl.replace task_time t.T.tid k.clock;
        core_clock.(c) <- k.clock;
        let maxclock = Array.fold_left max 0 core_clock in
        if sample_every > 0 && maxclock >= !next_sample then begin
          next_sample := maxclock + sample_every;
          on_sample maxclock
        end)
      | None ->
        (* No runnable task anywhere: advance to the next sleeper. *)
        let deadlines =
          List.filter_map
            (fun t ->
              match t.T.state with
              | T.Blocked (T.W_sleep d) -> Some d
              | T.Blocked _ | T.Runnable | T.Stopped | T.Dead -> None)
            live
        in
        (match deadlines with
        | [] ->
          (* Deadlock: every live task is blocked with no timeout.  Sync
             the kernel clock (and hence wall_time) to the furthest core
             *at detection time* — the cost model's answer for how long
             the run took — rather than leaving whatever clock the last
             slice happened to set. *)
          let maxclock = Array.fold_left max k.clock core_clock in
          k.clock <- maxclock;
          stats.wall_time <- maxclock;
          stats.deadlocked <- true;
          Telemetry.note ~kind:"kern.deadlock"
            (Fmt.str "%d tasks blocked at t=%d" (List.length live) maxclock);
          finished := true
        | d :: rest ->
          let target = List.fold_left min d rest in
          k.clock <- max k.clock target;
          Array.iteri
            (fun i c -> core_clock.(i) <- max c target)
            core_clock)
    end
  done;
  let maxclock = Array.fold_left max k.clock core_clock in
  k.clock <- maxclock;
  stats.wall_time <- maxclock;
  stats

(* Total PSS over all live processes, in bytes (paper §4.5). *)
let total_pss k =
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc p ->
      if p.T.exit_code = None && not (Hashtbl.mem seen p.T.space.A.id) then begin
        Hashtbl.replace seen p.T.space.A.id ();
        acc +. A.pss p.T.space
      end
      else acc)
    0. (all_procs k)
