(* The `octane` workload (paper §4.1): CPU-intensive multi-threaded
   compute inside a JIT-style runtime — code is emitted at run time and
   re-emitted as it "warms up" (polymorphic inline caches etc., §1).
   Recording overhead comes almost entirely from losing parallelism;
   dynamic instrumentation engines choke on the code churn (Figure 6:
   DynamoRio crashed here). *)

module K = Kernel
module G = Guest
open Wl_common

type params = {
  threads : int; (* including the main thread *)
  iters : int; (* emit/run cycles per thread *)
  calls_per_emit : int;
  crunch : int;
}

let default = { threads = 3; iters = 150; calls_per_emit = 150; crunch = 2_000 }

(* The workers' share of the main thread's iteration count (percent):
   octane has limited parallelism (paper Table 1: single-core only costs
   1.36x). *)
let worker_share = 18

let jit_area = 0x9000

let encode insn =
  match Insn.encode insn with Some v -> v | None -> assert false

let program b p =
  let idx_ctr = G.bss b 8 in
  let done_ctr = G.bss b 8 in
  let stacks = G.bss b (8192 * (p.threads + 1)) in
  G.emit b
    ((* spawn workers; every thread (main included) runs [worker] *)
    [ Asm.movi 12 1 ]
    @. [ Asm.label "spawn" ]
    @. [ Asm.jcc Insn.Ge 12 (G.imm p.threads) "main_work" ]
    @. [ Asm.movr 9 12; Asm.muli 9 8192; Asm.addi 9 (stacks + 8192) ]
    @. G.sys_clone_thread ~child_sp:(G.reg 9)
    @. [ Asm.jz 0 "worker" ]
    @. [ Asm.addi 12 1; Asm.jmp "spawn" ]
    @. [ Asm.label "main_work"; Asm.call "worker_body" ]
    (* main: wait until all workers are done *)
    @. [ Asm.label "join" ]
    @. [ Asm.movi 9 done_ctr; Asm.load 10 9 0 ]
    @. [ Asm.jcc Insn.Ge 10 (G.imm (p.threads - 1)) "alldone" ]
    @. G.sys_futex ~addr:(G.imm done_ctr) ~op:Sysno.futex_wait ~v:(G.reg 10)
    @. [ Asm.jmp "join" ]
    @. [ Asm.label "alldone" ]
    @. G.sys_exit_group 0
    (* worker threads land here: run the body, bump done_ctr, exit *)
    @. [ Asm.label "worker"; Asm.call "worker_body" ]
    @. [ Asm.label "bump";
         Asm.movi 9 done_ctr;
         Asm.load 2 9 0;
         Asm.movr 3 2;
         Asm.addi 3 1;
         Asm.I (Insn.Cas (9, 2, 3, 4));
         Asm.jz 4 "bump" ]
    @. G.sys_futex ~addr:(G.imm done_ctr) ~op:Sysno.futex_wake ~v:(G.imm 8)
    @. G.sys_exit 0
    (* the compute kernel: claim a thread index, JIT, call, crunch *)
    @. [ Asm.label "worker_body" ]
    @. [ Asm.label "claim";
         Asm.movi 9 idx_ctr;
         Asm.load 2 9 0;
         Asm.movr 3 2;
         Asm.addi 3 1;
         Asm.I (Insn.Cas (9, 2, 3, 4));
         Asm.jz 4 "claim";
         Asm.movr 11 2 ] (* r11 = my index *)
    @. [ Asm.movr 10 11; Asm.muli 10 64; Asm.addi 10 jit_area ] (* jit base *)
    (* r8 = my iteration budget: the main thread does the bulk *)
    @. [ Asm.movi 8 p.iters;
         Asm.jcc Insn.Eq 11 (G.imm 0) "budget_done";
         Asm.movi 8 (p.iters * worker_share / 100);
         Asm.label "budget_done" ]
    @. [ Asm.movi 12 0 ] (* iteration *)
    @. [ Asm.label "iter" ]
    (* re-emit the jitted function: mov r5, #(iter & 0xfff); add r5, #7; ret *)
    @. [ Asm.movr 2 12;
         Asm.I (Insn.Alu (Insn.And, 2, Insn.Imm 0xfff));
         Asm.muli 2 256; (* value into the imm16 field (v lsl 16 total) *)
         Asm.muli 2 256;
         Asm.addi 2 (encode (Insn.Mov (5, Insn.Imm 0)));
         Asm.movr 1 10;
         Asm.I (Insn.Emit (1, 2)) ]
    @. [ Asm.movi 2 (encode (Insn.Alu (Insn.Add, 5, Insn.Imm 7)));
         Asm.movr 1 10;
         Asm.addi 1 1;
         Asm.I (Insn.Emit (1, 2)) ]
    @. [ Asm.movi 2 (encode Insn.Ret);
         Asm.movr 1 10;
         Asm.addi 1 2;
         Asm.I (Insn.Emit (1, 2)) ]
    (* hot loop over the jitted function *)
    @. [ Asm.movi 9 p.calls_per_emit ]
    @. [ Asm.label "hot";
         Asm.I (Insn.Callr 10);
         Asm.addr_ 6 5;
         Asm.subi 9 1;
         Asm.jnz 9 "hot" ]
    @. G.compute_loop b ~n:p.crunch
    (* GC-style heap churn: grow and release an arena every few cycles *)
    @. [ Asm.movr 2 12;
         Asm.I (Insn.Alu (Insn.And, 2, Insn.Imm 15));
         Asm.jnz 2 "no_gc" ]
    @. G.sys_mmap ~len:(G.imm 65536) ~prot:Mem.prot_rw ~flags:1
    @. [ Asm.movr 7 0; Asm.movi 3 1; Asm.store 3 7 0 ]
    @. G.sc Sysno.munmap [ G.reg 7; G.imm 65536 ]
    @. [ Asm.label "no_gc" ]
    @. [ Asm.addi 12 1; Asm.jcc Insn.Lt 12 (Insn.Reg 8) "iter" ]
    @. [ Asm.ret ])

let make ?(params = default) () =
  let setup k =
    Vfs.mkdir_p (K.vfs k) "/bin";
    let b = G.create () in
    program b params;
    K.install_image k ~path:"/bin/octane" (G.build b ~name:"octane" ())
  in
  { Workload.name = "octane";
    exe = "/bin/octane";
    setup;
    cores = 4;
    score_based = true }
