(* Tests for the interception library's guts: the guest-buffer record
   codec, patchability rules, layout invariants, and the RDRAND hook
   encoding. *)

module K = Kernel
module T = Task

(* A minimal task whose address space has the syscallbuf pages mapped. *)
let make_buf_task () =
  let k = K.create ~seed:5 () in
  Vfs.mkdir_p (K.vfs k) "/bin";
  let b = Guest.create () in
  Guest.emit b (Guest.sys_exit_group 0);
  K.install_image k ~path:"/bin/x" (Guest.build b ~name:"x" ());
  let t = K.spawn k ~path:"/bin/x" ~traced:true () in
  Syscallbuf.inject_rr_page k t;
  ignore (Syscallbuf.setup_task k t ~slot:0 ~is_replay:false);
  (k, t)

let sample_records =
  [ { Event.br_nr = Sysno.read;
      br_result = 13;
      br_writes = [ { Event.addr = 0x120000; data = "hello, world!" } ];
      br_clone = None;
      br_aborted = false };
    { Event.br_nr = Sysno.gettimeofday;
      br_result = 424242;
      br_writes = [];
      br_clone = None;
      br_aborted = false };
    { Event.br_nr = Sysno.read;
      br_result = 65536;
      br_writes = [];
      br_clone =
        Some { Event.cr_path = "cloned/100"; cr_off = 8192; cr_addr = 0x4000; cr_len = 65536 };
      br_aborted = false };
    { Event.br_nr = Sysno.recvfrom;
      br_result = 0;
      br_writes = [];
      br_clone = None;
      br_aborted = true } ]

let test_guest_record_roundtrip () =
  let _, t = make_buf_task () in
  List.iter Syscallbuf.(append_record t) sample_records;
  let parsed = Syscallbuf.parse_all t ~cloned_path:"cloned/100" in
  Alcotest.(check int) "count" (List.length sample_records)
    (List.length parsed);
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "record %s roundtrips" (Sysno.name a.Event.br_nr))
        true (a = b))
    sample_records parsed

let test_load_records_replay_layout () =
  let _, t = make_buf_task () in
  Syscallbuf.load_records t sample_records;
  (* load resets the read cursor and sets fill to the serialized size *)
  Alcotest.(check bool) "fill > 0" true (Syscallbuf.buffer_fill t > 0);
  let parsed = Syscallbuf.parse_all t ~cloned_path:"cloned/100" in
  Alcotest.(check bool) "same records" true (parsed = sample_records)

let qcheck_guest_record_roundtrip =
  let gen =
    QCheck.Gen.(
      map
        (fun (nr, result, writes, aborted) ->
          { Event.br_nr = nr land 0x3f;
            br_result = result;
            br_writes =
              List.map
                (fun (a, d) -> { Event.addr = a land 0xffffff; data = d })
                writes;
            br_clone = None;
            br_aborted = aborted })
        (quad (int_bound 50) int
           (list_size (0 -- 4) (pair int (string_size (0 -- 80))))
           bool))
  in
  QCheck.Test.make ~name:"guest buffer record roundtrip (random)" ~count:100
    (QCheck.make gen) (fun record ->
      let _, t = make_buf_task () in
      Syscallbuf.append_record t record;
      Syscallbuf.parse_all t ~cloned_path:"" = [ record ])

let test_reset_clears () =
  let _, t = make_buf_task () in
  List.iter (Syscallbuf.append_record t) sample_records;
  Syscallbuf.reset t;
  Alcotest.(check int) "empty after reset" 0 (Syscallbuf.buffer_fill t);
  Alcotest.(check (list reject)) "no records"
    []
    (List.map (fun _ -> ()) (Syscallbuf.parse_all t ~cloned_path:""))

(* Patchability (paper §3.1). *)
let test_patchable_rules () =
  let _, t = make_buf_task () in
  let sp = t.T.cpu.Cpu.space in
  let site = 0x2000 in
  let set_pair a b =
    Addr_space.text_set sp site a;
    Addr_space.text_set sp (site + 1) b
  in
  set_pair Insn.Syscall (Insn.Mov (7, Insn.Reg 0));
  Alcotest.(check bool) "mov follower ok" true (Syscallbuf.can_patch t ~site);
  set_pair Insn.Syscall (Insn.Jmp 0x2000);
  Alcotest.(check bool) "jmp follower not patchable" false
    (Syscallbuf.can_patch t ~site);
  set_pair Insn.Syscall Insn.Syscall;
  Alcotest.(check bool) "syscall follower not patchable" false
    (Syscallbuf.can_patch t ~site);
  (* run-time-written code is never patched *)
  set_pair Insn.Syscall Insn.Nop;
  Addr_space.text_write sp site Insn.Syscall;
  Alcotest.(check bool) "written text not patchable" false
    (Syscallbuf.can_patch t ~site);
  (* the RR page itself is never patched *)
  Alcotest.(check bool) "rr page not patchable" false
    (Syscallbuf.can_patch t ~site:Layout.untraced_syscall_insn)

let test_patch_site_kinds () =
  let _, t = make_buf_task () in
  let sp = t.T.cpu.Cpu.space in
  Addr_space.text_set sp 0x2000 Insn.Syscall;
  Syscallbuf.patch_site t ~site:0x2000;
  (match Addr_space.text_get sp 0x2000 with
  | Some (Insn.Hook n) ->
    Alcotest.(check int) "syscall hook" Syscallbuf.hook_number n
  | _ -> Alcotest.fail "expected hook");
  Addr_space.text_set sp 0x2001 (Insn.Rdrand 9);
  Syscallbuf.patch_site t ~site:0x2001;
  match Addr_space.text_get sp 0x2001 with
  | Some (Insn.Hook n) ->
    Alcotest.(check bool) "rdrand hook" true (Syscallbuf.is_rdrand_hook n);
    Alcotest.(check int) "register preserved" 9
      (Syscallbuf.reg_of_rdrand_hook n)
  | _ -> Alcotest.fail "expected rdrand hook"

let test_find_rdrand_sites () =
  let _, t = make_buf_task () in
  let sp = t.T.cpu.Cpu.space in
  Addr_space.text_set sp 0x3000 (Insn.Rdrand 1);
  Addr_space.text_set sp 0x3005 (Insn.Rdrand 2);
  let sites = Syscallbuf.find_rdrand_sites t in
  Alcotest.(check bool) "both found" true
    (List.mem 0x3000 sites && List.mem 0x3005 sites)

let test_locals_swap_roundtrip () =
  let _, t = make_buf_task () in
  let saved = Syscallbuf.save_locals t in
  (* scribble, then restore *)
  Addr_space.write_u64 ~force:true t.T.cpu.Cpu.space
    (Layout.thread_locals_page + Layout.tl_tid)
    999;
  Syscallbuf.restore_locals t saved;
  Alcotest.(check int) "tid restored" t.T.tid
    (Addr_space.read_u64 ~force:true t.T.cpu.Cpu.space
       (Layout.thread_locals_page + Layout.tl_tid))

(* Layout invariants: per-slot areas must not collide. *)
let test_layout_slots_disjoint () =
  for slot = 0 to 30 do
    let s1 = Layout.scratch_for ~slot and s2 = Layout.scratch_for ~slot:(slot + 1) in
    Alcotest.(check bool) "scratch slots disjoint" true
      (s1 + Layout.scratch_size <= s2);
    let b1 = Layout.syscallbuf_for ~slot
    and b2 = Layout.syscallbuf_for ~slot:(slot + 1) in
    Alcotest.(check bool) "buffer slots disjoint" true
      (b1 + Layout.syscallbuf_size <= b2)
  done;
  (* scratch and buffer never collide within or across slots *)
  for slot = 0 to 200 do
    let s = Layout.scratch_for ~slot and b = Layout.syscallbuf_for ~slot in
    Alcotest.(check bool) "scratch below its buffer" true
      (s + Layout.scratch_size <= b);
    Alcotest.(check bool) "buffer inside the slot" true
      (b + Layout.syscallbuf_size <= Layout.slot_base + ((slot + 1) * Layout.slot_stride));
    Alcotest.(check bool) "below the stacks" true
      (b + Layout.syscallbuf_size <= Addr_space.stack_top - Image.default_stack_size || slot > 900)
  done

let test_rdrand_hook_encoding () =
  for r = 0 to Insn.num_regs - 1 do
    let h = Syscallbuf.rdrand_hook_of_reg r in
    Alcotest.(check bool) "is rdrand hook" true (Syscallbuf.is_rdrand_hook h);
    Alcotest.(check int) "register roundtrip" r
      (Syscallbuf.reg_of_rdrand_hook h);
    Alcotest.(check bool) "distinct from syscall hook" true
      (h <> Syscallbuf.hook_number)
  done

(* Regression (§2.3.6): a poll that timed out (result = 0) or failed
   writes no user memory — the model must not claim revents bytes the
   kernel never touched, or record would capture (and replay clobber)
   stale data. *)
let test_poll_outputs_result_bounded () =
  let args = [| 0x200000; 3; 100; 0; 0; 0 |] in
  Alcotest.(check int) "timed-out poll writes nothing" 0
    (List.length (Syscall_model.outputs ~nr:Sysno.poll ~args ~result:0));
  Alcotest.(check int) "failed poll writes nothing" 0
    (List.length (Syscall_model.outputs ~nr:Sysno.poll ~args ~result:(-4)));
  let outs = Syscall_model.outputs ~nr:Sysno.poll ~args ~result:2 in
  Alcotest.(check int) "ready poll records every revents slot" 3
    (List.length outs);
  List.iteri
    (fun i { Syscall_model.out_addr; out_len } ->
      Alcotest.(check int) "revents slot address"
        (0x200000 + (24 * i) + 16)
        out_addr;
      Alcotest.(check int) "revents slot length" 8 out_len)
    outs

(* §3.4 stop elision is driven by [Syscall_model.elidable]: it must
   only claim syscalls whose success provably writes no user memory. *)
let test_elidable_rules () =
  let z = [| 0; 0; 0; 0; 0; 0 |] in
  let el nr args = Syscall_model.elidable ~nr ~args in
  Alcotest.(check bool) "write elidable" true (el Sysno.write z);
  Alcotest.(check bool) "close elidable" true (el Sysno.close z);
  Alcotest.(check bool) "read not elidable" false (el Sysno.read z);
  Alcotest.(check bool) "wait4(NULL status) elidable" true (el Sysno.wait4 z);
  Alcotest.(check bool) "wait4(&status) not elidable" false
    (el Sysno.wait4 [| -1; 0x130000; 0; 0; 0; 0 |]);
  Alcotest.(check bool) "clone not elidable (special frame)" false
    (el Sysno.clone z);
  Alcotest.(check bool) "execve not elidable (special frame)" false
    (el Sysno.execve z);
  Alcotest.(check bool) "sigreturn not elidable" false
    (el Sysno.rt_sigreturn z);
  Alcotest.(check bool) "ptrace not elidable (emulated)" false
    (el Sysno.ptrace z)

let suites =
  [ ( "rr.syscallbuf.unit",
      [ Alcotest.test_case "guest record roundtrip" `Quick
          test_guest_record_roundtrip;
        Alcotest.test_case "load_records layout" `Quick
          test_load_records_replay_layout;
        QCheck_alcotest.to_alcotest qcheck_guest_record_roundtrip;
        Alcotest.test_case "reset clears" `Quick test_reset_clears;
        Alcotest.test_case "patchability rules" `Quick test_patchable_rules;
        Alcotest.test_case "patch kinds" `Quick test_patch_site_kinds;
        Alcotest.test_case "find rdrand sites" `Quick test_find_rdrand_sites;
        Alcotest.test_case "locals swap" `Quick test_locals_swap_roundtrip;
        Alcotest.test_case "layout slots disjoint" `Quick
          test_layout_slots_disjoint;
        Alcotest.test_case "rdrand hook encoding" `Quick
          test_rdrand_hook_encoding;
        Alcotest.test_case "poll outputs bounded by result" `Quick
          test_poll_outputs_result_bounded;
        Alcotest.test_case "elidable rules" `Quick test_elidable_rules ] ) ]
