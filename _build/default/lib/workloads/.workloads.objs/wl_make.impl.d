lib/workloads/wl_make.ml: Asm Guest Insn Kernel List Printf Sysno Vfs Wl_common Workload
