(* The telemetry layer (lib/obs): registry semantics, the virtual
   clock, the event ring, sinks, snapshot diffs, JSON rendering — and
   end-to-end: a record+replay session populates the expected
   counters/spans. *)

module Tm = Telemetry

let find_counter snap name =
  match List.assoc_opt name snap.Tm.snap_counters with
  | Some v -> v
  | None -> Alcotest.failf "counter %s not in snapshot" name

let find_span snap name =
  match List.assoc_opt name snap.Tm.snap_spans with
  | Some s -> s
  | None -> Alcotest.failf "span %s not in snapshot" name

let test_counter_registry () =
  Tm.reset ();
  let a = Tm.counter "t.a" in
  let a' = Tm.counter "t.a" in
  Tm.incr a;
  Tm.add a' 41;
  Alcotest.(check int) "same handle" 42 (Tm.counter_value a);
  (* reset zeroes values but keeps handles usable *)
  Tm.reset ();
  Alcotest.(check int) "reset to zero" 0 (Tm.counter_value a);
  Tm.incr a;
  Alcotest.(check int) "handle survives reset" 1 (Tm.counter_value a')

let test_gauge_and_histogram () =
  Tm.reset ();
  let g = Tm.gauge "t.g" in
  Tm.set_gauge g 7;
  Tm.set_gauge g 3;
  Alcotest.(check int) "gauge keeps last" 3 (Tm.gauge_value g);
  let h = Tm.histogram "t.h" in
  List.iter (Tm.observe h) [ 1; 2; 3; 100; 100 ];
  let snap = Tm.snapshot () in
  let hs = List.assoc "t.h" snap.Tm.snap_histograms in
  Alcotest.(check int) "count" 5 hs.Tm.h_count;
  Alcotest.(check int) "sum" 206 hs.Tm.h_sum;
  Alcotest.(check bool) "only non-empty buckets" true
    (List.for_all (fun (_, c) -> c > 0) hs.Tm.h_buckets)

let test_span_clock () =
  Tm.reset ();
  let sp = Tm.span "t.phase" in
  (* no clock installed: zero-duration, still counted *)
  Tm.timed sp (fun () -> ());
  Alcotest.(check int) "counted without clock" 1 (Tm.span_count sp);
  let now = ref 0 in
  Tm.set_clock (fun () -> !now);
  Tm.timed sp (fun () -> now := !now + 500);
  Tm.clear_clock ();
  let s = find_span (Tm.snapshot ()) "t.phase" in
  Alcotest.(check int) "total" 500 s.Tm.s_total_ns;
  Alcotest.(check int) "max" 500 s.Tm.s_max_ns;
  (* exception safety: the span records even when the thunk raises *)
  (try Tm.timed sp (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "raised thunk still counted" 3 (Tm.span_count sp);
  (* each span duration also feeds the <name>.ns histogram *)
  let snap = Tm.snapshot () in
  let hs = List.assoc "t.phase.ns" snap.Tm.snap_histograms in
  Alcotest.(check int) "span feeds histogram" 3 hs.Tm.h_count

let test_ring_wraps () =
  Tm.reset ();
  for i = 0 to Tm.ring_capacity + 9 do
    Tm.note ~tid:i ~kind:"t.e" (string_of_int i)
  done;
  let evs = Tm.recent () in
  Alcotest.(check int) "capped at capacity" Tm.ring_capacity (List.length evs);
  let seqs = List.map (fun e -> e.Tm.seq) evs in
  Alcotest.(check int) "oldest first" 10 (List.hd seqs);
  Alcotest.(check int) "newest last" (Tm.ring_capacity + 9)
    (List.nth seqs (Tm.ring_capacity - 1));
  Alcotest.(check bool) "monotone" true
    (List.for_all2 ( < ) seqs (List.tl seqs @ [ max_int ]))

let test_memory_sink () =
  Tm.reset ();
  Tm.set_sink Tm.Memory;
  Tm.note ~kind:"a" "1";
  Tm.note ~kind:"b" "2";
  let evs = Tm.memory_events () in
  Alcotest.(check (list string)) "all events, oldest first" [ "a"; "b" ]
    (List.map (fun e -> e.Tm.kind) evs);
  Tm.set_sink Tm.Null;
  Alcotest.(check int) "switching sinks clears the buffer" 0
    (List.length (Tm.memory_events ()))

let test_jsonl_sink () =
  Tm.reset ();
  let path = Filename.temp_file "telemetry" ".jsonl" in
  Tm.set_sink (Tm.Jsonl path);
  Tm.note ~tid:3 ~frame:7 ~kind:"t.j" "detail \"quoted\"";
  Tm.note ~kind:"t.k" "";
  Tm.set_sink Tm.Null (* closes the channel *);
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check int) "one line per event" 2 (List.length lines);
  let l = List.hd lines in
  Alcotest.(check bool) "escaped JSON" true
    (String.length l > 0 && l.[0] = '{')

(* Regression: the Jsonl sink flushes after every note, so a tail -f /
   crashed-recorder post-mortem sees each event as soon as it is
   emitted — without closing or switching the sink. *)
let test_jsonl_flushes_per_note () =
  Tm.reset ();
  let path = Filename.temp_file "telemetry" ".jsonl" in
  Tm.set_sink (Tm.Jsonl path);
  Tm.note ~kind:"t.f1" "first";
  Tm.note ~kind:"t.f2" "second";
  let read_lines () =
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    List.rev !lines
  in
  (* the channel is still open: both lines must already be on disk *)
  let lines = read_lines () in
  Alcotest.(check int) "visible before close" 2 (List.length lines);
  Tm.note ~kind:"t.f3" "third";
  Alcotest.(check int) "and after each further note" 3
    (List.length (read_lines ()));
  Tm.set_sink Tm.Null;
  Sys.remove path

let test_hist_quantiles () =
  Tm.reset ();
  let h = Tm.histogram "t.q" in
  (* 100 samples 1..100: log2 buckets, interpolated quantiles *)
  for i = 1 to 100 do
    Tm.observe h i
  done;
  let snap = Tm.snapshot () in
  let hs = List.assoc "t.q" snap.Tm.snap_histograms in
  let p50 = Tm.hist_quantile hs 0.50 in
  let p90 = Tm.hist_quantile hs 0.90 in
  let p99 = Tm.hist_quantile hs 0.99 in
  Alcotest.(check bool) "ordered" true (0. <= p50 && p50 <= p90 && p90 <= p99);
  (* bucket resolution is a power of two: accept the enclosing bucket *)
  Alcotest.(check bool) "p50 in its bucket" true (p50 >= 32. && p50 <= 63.);
  Alcotest.(check bool) "p99 in its bucket" true (p99 >= 64. && p99 <= 127.);
  Alcotest.(check bool) "p99 below the max bound" true (p99 <= 127.);
  (* monotone in q and clamped at the edges *)
  Alcotest.(check bool) "q=0 at or below p50" true (Tm.hist_quantile hs 0. <= p50);
  Alcotest.(check bool) "q=1 at the top" true (Tm.hist_quantile hs 1. >= p99);
  (* empty histogram: all quantiles are zero *)
  let e = Tm.histogram "t.q.empty" in
  ignore e;
  let hs0 = List.assoc "t.q.empty" (Tm.snapshot ()).Tm.snap_histograms in
  Alcotest.(check (float 0.0)) "empty -> 0" 0. (Tm.hist_quantile hs0 0.99);
  (* a single sample answers that sample's bucket for every q *)
  let h1 = Tm.histogram "t.q.one" in
  Tm.observe h1 5;
  let hs1 = List.assoc "t.q.one" (Tm.snapshot ()).Tm.snap_histograms in
  Alcotest.(check (float 0.0)) "single sample, q-independent"
    (Tm.hist_quantile hs1 0.1)
    (Tm.hist_quantile hs1 0.9)

let test_since_diff () =
  Tm.reset ();
  let c = Tm.counter "t.d" in
  let sp = Tm.span "t.dspan" in
  Tm.add c 10;
  Tm.span_add sp 100;
  let base = Tm.snapshot () in
  Tm.add c 5;
  Tm.span_add sp 30;
  let diff = Tm.since base in
  Alcotest.(check int) "counter diff" 5 (find_counter diff "t.d");
  let s = find_span diff "t.dspan" in
  Alcotest.(check int) "span count diff" 1 s.Tm.s_count;
  Alcotest.(check int) "span total diff" 30 s.Tm.s_total_ns

let test_json_shape () =
  Tm.reset ();
  Tm.incr (Tm.counter "t.json");
  Tm.note ~kind:"t.ev" "x";
  let j = Tm.snapshot_to_json (Tm.snapshot ()) in
  List.iter
    (fun key ->
      let re = Printf.sprintf "\"%s\"" key in
      let found =
        let rec search i =
          if i + String.length re > String.length j then false
          else if String.sub j i (String.length re) = re then true
          else search (i + 1)
        in
        search 0
      in
      Alcotest.(check bool) (key ^ " present") true found)
    [ "counters"; "gauges"; "histograms"; "spans"; "events"; "t.json"; "t.ev" ]

(* End-to-end: record+replay a workload and check the layers reported. *)
let test_record_replay_populates () =
  Tm.reset ();
  let w = Wl_samba.make () in
  let recd, _ = Workload.record w in
  let rep, _ = Workload.replay recd in
  let rt = recd.Workload.rec_stats.Recorder.telemetry in
  Alcotest.(check bool) "syscallbuf.hit > 0" true
    (find_counter rt "syscallbuf.hit" > 0);
  Alcotest.(check bool) "syscallbuf.miss > 0" true
    (find_counter rt "syscallbuf.miss" > 0);
  Alcotest.(check bool) "record.frames > 0" true
    (find_counter rt "record.frames" > 0);
  Alcotest.(check bool) "record.syscall span ran" true
    ((find_span rt "record.syscall").Tm.s_count > 0);
  let pt = rep.Workload.rep_stats.Replayer.telemetry in
  Alcotest.(check bool) "replay.frame span ran" true
    ((find_span pt "replay.frame").Tm.s_count > 0);
  Alcotest.(check bool) "chunk LRU active" true
    (find_counter pt "trace.chunk.hit" + find_counter pt "trace.chunk.miss" > 0);
  (* the recorder's snapshot must not leak replay work into [rt] *)
  Alcotest.(check int) "recording saw no replay frames" 0
    (find_span rt "replay.frame").Tm.s_count;
  (* trace stats expose the reader-side LRU *)
  let ts = Trace.stats recd.Workload.trace in
  Alcotest.(check bool) "lru counts populated" true
    (ts.Trace.lru_hits + ts.Trace.lru_misses > 0)

(* Two domains hammering one registry: counters, histograms and the
   event ring must neither lose updates nor crash.  Uses a Pool — the
   only sanctioned way to get extra domains (check_format.sh). *)
let test_domain_hammer () =
  Tm.reset ();
  let c = Tm.counter "hammer.c" in
  let h = Tm.histogram "hammer.h" in
  let iters = 10_000 in
  let p = Pool.create ~jobs:2 () in
  let work () =
    for i = 1 to iters do
      Tm.incr c;
      Tm.observe h i;
      if i mod 1000 = 0 then Tm.note ~kind:"hammer" "tick"
    done
  in
  let a = Pool.submit p work and b = Pool.submit p work in
  Pool.await a;
  Pool.await b;
  Pool.shutdown p;
  Alcotest.(check int) "no lost counter increments" (2 * iters)
    (Tm.counter_value c);
  let snap = Tm.snapshot () in
  let hs = List.assoc "hammer.h" snap.Tm.snap_histograms in
  Alcotest.(check int) "no lost observations" (2 * iters) hs.Tm.h_count;
  Alcotest.(check int) "histogram sum exact" (2 * (iters * (iters + 1) / 2))
    hs.Tm.h_sum;
  Alcotest.(check bool) "ring survived concurrent notes" true
    (List.length (Tm.recent ()) > 0)

let suites =
  [ ( "telemetry",
      [ Alcotest.test_case "counter registry + reset" `Quick
          test_counter_registry;
        Alcotest.test_case "gauge + histogram" `Quick test_gauge_and_histogram;
        Alcotest.test_case "span + virtual clock" `Quick test_span_clock;
        Alcotest.test_case "ring wraps at capacity" `Quick test_ring_wraps;
        Alcotest.test_case "memory sink" `Quick test_memory_sink;
        Alcotest.test_case "jsonl sink" `Quick test_jsonl_sink;
        Alcotest.test_case "jsonl flushes per note" `Quick
          test_jsonl_flushes_per_note;
        Alcotest.test_case "histogram quantiles" `Quick test_hist_quantiles;
        Alcotest.test_case "since diff" `Quick test_since_diff;
        Alcotest.test_case "json shape" `Quick test_json_shape;
        Alcotest.test_case "record+replay populates" `Quick
          test_record_replay_populates;
        Alcotest.test_case "two-domain hammer" `Quick test_domain_hammer ] ) ]
