lib/rrtrace/compress.ml: Array Bitio Buffer Char Huffman List String
