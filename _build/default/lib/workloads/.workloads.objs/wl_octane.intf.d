lib/workloads/wl_octane.mli: Workload
