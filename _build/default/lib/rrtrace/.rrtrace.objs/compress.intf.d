lib/rrtrace/compress.mli:
