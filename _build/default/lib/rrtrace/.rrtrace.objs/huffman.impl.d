lib/rrtrace/huffman.ml: Array Bitio Hashtbl List
