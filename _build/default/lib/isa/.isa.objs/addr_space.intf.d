lib/isa/addr_space.mli: Hashtbl Insn Mem
