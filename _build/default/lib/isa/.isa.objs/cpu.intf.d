lib/isa/cpu.mli: Addr_space Fmt Insn Pmu
