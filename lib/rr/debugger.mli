(** A reverse-execution debugger over replay (paper §1, §6.1).

    Time is measured in trace-frame indices.  Forward execution replays
    frames; {e reverse} execution restores the nearest earlier checkpoint
    and replays forward — rr's scheme, cheap because checkpoints are
    copy-on-write address-space snapshots. *)

exception Debug_error of string

type t = {
  trace : Trace.t;
  opts : Replayer.opts;
  checkpoint_every : int;
  mutable session : Replayer.t;
  mutable checkpoints : (int * Replayer.snapshot) array;
      (** sorted by frame index; first [n_checkpoints] slots are live.
          Lookups ([seek]'s nearest-checkpoint query, dedup on take)
          are O(log n) binary searches. *)
  mutable n_checkpoints : int;
  mutable checkpoints_taken : int;
  mutable checkpoints_restored : int;
}

val create : ?opts:Replayer.opts -> ?checkpoint_every:int -> Trace.t -> t
(** Start a session at frame 0, checkpointing every [checkpoint_every]
    frames as execution moves forward (default 32). *)

val pos : t -> int
(** Current position: the index of the next frame to apply. *)

val n_events : t -> int

val step : t -> Event.t
(** Apply the next frame; may take a checkpoint. *)

val seek : t -> int -> unit
(** Jump to any frame index.  Backward seeks restore the nearest earlier
    checkpoint and re-execute (reverse execution). *)

val reverse_step : t -> unit

val find_event : ?kind_mask:int -> t -> from:int -> (Event.t -> bool) -> int option
val rfind_event : ?kind_mask:int -> t -> before:int -> (Event.t -> bool) -> int option
(** Static frame searches (frames are data; nothing executes).  These
    scan through the chunk-indexed reader; [kind_mask] (an OR of
    {!Event.kind_bit}) skips chunks with no matching frame kinds without
    inflating them. *)

val continue_to : t -> (Event.t -> bool) -> int option
(** Run forward to the next matching frame; lands just after it. *)

val reverse_continue_to : t -> (Event.t -> bool) -> int option
(** Reverse-continue: land just after the previous matching frame,
    skipping a hit at the current position (gdb semantics). *)

val task : t -> int -> Task.t
val live_tids : t -> int list

val regs : t -> int -> int array * int
(** [(general-purpose registers, pc)] of a task at the current position. *)

val read_mem : t -> int -> int -> int -> bytes
(** [read_mem d tid addr len]. Raises {!Debug_error} on unmapped
    addresses. *)

val read_word : t -> int -> int -> int

val last_change : t -> tid:int -> addr:int -> len:int -> int option
(** Reverse watchpoint: the index of the frame during which
    [addr..addr+len) last changed before the current position
    (checkpoint-accelerated forward scan).  Position is restored. *)
