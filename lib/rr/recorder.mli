(** The rr recorder (paper §2, §3).

    Supervises a group of traced tasks through the simulated kernel's
    ptrace interface, runs exactly one task's user code at a time
    (§2.2), and records every input that crosses the user/kernel
    boundary into a {!Trace.t}:

    - system call results and memory effects, from a per-syscall model
      (§2.3.6), with blocking outputs detoured through scratch buffers
      (§2.3.1);
    - asynchronous event timing as an execution point — RCB count, full
      registers, and a word of stack (§2.4.1);
    - signal-handler frames (§2.3.9), emulated RDTSC/RDRAND values
      (§2.6), seccomp-filter installs patched with the allow-prologue
      (§2.3.5), and tracee-level ptrace, which is emulated (§2.3.2);
    - syscall-site patches and syscallbuf flushes for the in-process
      interception fast path (§3), including the desched dance for
      blocked untraced syscalls (§3.3) and block-cloned large reads
      (§3.9). *)

(** Why a recording failed: either the recording model itself gave up
    (unsupported syscall, deadlock, event-count guard), or the trace
    store / IO layer underneath it failed in a typed way — a journaling
    recorder hitting ENOSPC surfaces here as
    [Rec_trace (Trace.Io _)]. *)
type error =
  | Rec_failure of string
  | Rec_trace of Trace.error

exception Record_error of error

val pp_error : error Fmt.t
val error_to_string : error -> string

(** Where the trace streams while recording (resolved to a
    {!Trace.Sink.t} at [record] entry). *)
type sink_spec =
  | Sink_memory  (** build the trace in memory only (the default) *)
  | Sink_file of string
      (** stream the incremental v3 journal to this path; a recorder
          killed mid-run leaves a salvageable file *)
  | Sink_ring of Trace.ring
      (** flight-recorder mode: the bounded in-memory window.  The ring
          handle is caller-owned and survives a recording that dies —
          dump it afterwards with {!Trace.ring_trace}. *)
  | Sink_repo of Repo.t * string
      (** store chunks and images content-addressed as they stream out;
          the manifest lands under this name at commit *)

(** When a flight recording's ring window should be persisted
    (interpreted by {!Flight.record}). *)
type trigger =
  | On_signal  (** the recording died on an error / was killed *)
  | On_exit_nonzero  (** the root process exited with a non-zero status *)
  | On_divergence  (** a verification replay of the window diverged *)
  | On_always

type opts = {
  intercept : bool; (* in-process syscall interception (§3) *)
  wide : bool; (* widened wrapper set (§3.1); replay must use the same *)
  scratch : bool; (* detour blocking outputs through scratch (§2.3.1) *)
  clone_blocks : bool; (* block cloning for big reads (§3.9) *)
  compress : bool; (* deflate the general trace data (§2.7) *)
  chaos : bool; (* randomized scheduling (§8) *)
  timeslice_rcbs : int; (* preemption budget (§2.4) *)
  seed : int; (* recording-side entropy *)
  max_events : int; (* runaway-recording guard *)
  checksum_every : int; (* memory digests every N frames (§6.2); 0 = off *)
  jobs : int; (* worker domains deflating trace chunks in the background *)
  chunk_limit : int; (* pending bytes that seal a chunk; flight recordings
                        shrink it so the ring turns over in small steps *)
  sink : sink_spec; (* where the trace streams while recording *)
  dump_on : trigger list; (* flight-recorder dump triggers (Flight) *)
}

val default_opts : opts

val make_opts :
  ?intercept:bool ->
  ?wide:bool ->
  ?scratch:bool ->
  ?clone_blocks:bool ->
  ?compress:bool ->
  ?chaos:bool ->
  ?timeslice_rcbs:int ->
  ?seed:int ->
  ?max_events:int ->
  ?checksum_every:int ->
  ?jobs:int ->
  ?chunk_limit:int ->
  ?sink:sink_spec ->
  ?dump_on:trigger list ->
  unit ->
  opts
(** [default_opts] with the given fields overridden, clamped to sane
    ranges ([timeslice_rcbs ≥ 1], [max_events ≥ 1], [checksum_every ≥
    0], [jobs ≥ 1], [chunk_limit ≥ 256]; [dump_on] deduplicated).  The only supported way to
    build an {!opts}. *)

val with_sink : opts -> sink_spec -> opts
(** [opts] with the sink replaced — how {!Flight.record} routes an
    arbitrary configuration through its ring. *)

val with_dump_on : opts -> trigger list -> opts
(** [opts] with the dump triggers replaced (deduplicated) — how the CLI
    applies repeated [--dump-on] flags to an already-built [opts]. *)

type stats = {
  wall_time : int; (* virtual ns *)
  trace_stats : Trace.stats;
  n_ptrace_stops : int;
  n_syscalls : int;
  n_sched_events : int;
  n_patched_sites : int;
  exit_status : int option; (* of the root process *)
  telemetry : Telemetry.snapshot;
      (* metrics accumulated during this recording (diff against the
         process-global registry at [record] entry) *)
}

val record :
  ?opts:opts ->
  ?on_stop:(Kernel.t -> unit) ->
  ?on_event:(Event.t -> unit) ->
  ?journal:Io.writer ->
  setup:(Kernel.t -> unit) ->
  exe:string ->
  unit ->
  Trace.t * stats * Kernel.t
(** Create a fresh kernel, run [setup] (install images, files, seccomp
    filters, and optionally spawn {e untraced} helper processes), spawn
    [exe] under supervision, and record it to completion.  [on_stop] is
    invoked after every handled ptrace stop (used for PSS sampling).
    [on_event] observes every frame as it is emitted, before it reaches
    the trace writer — the live half of {!Conn_track}; it must not
    raise.
    With [journal], the trace is streamed to that {!Io.writer} while
    recording (see {!Trace.Writer.create}), so a recorder killed
    mid-run leaves a salvageable file.  Returns the trace, recording
    statistics, and the final kernel.

    Raises {!Record_error} on unsupported syscalls (§2.3.6 — the model
    must be extended), recording deadlock, the event-count guard
    ([Rec_failure]), or a trace-store/journal failure ([Rec_trace]).
    On any failure the writer is aborted first: the deflate pool is
    shut down and the sink closed, so a journaling recorder that dies
    never leaks its journal fd (the salvageable prefix stays on disk).

    [journal] is the deprecated spelling of [Sink_file]; it overrides
    [opts.sink] when given.  New code selects the output through
    [opts.sink]. *)

val run :
  ?opts:opts ->
  ?on_stop:(Kernel.t -> unit) ->
  ?on_event:(Event.t -> unit) ->
  ?journal:Io.writer ->
  setup:(Kernel.t -> unit) ->
  exe:string ->
  unit ->
  (Trace.t * stats * Kernel.t, error) result
(** {!record} with the failure as a value instead of an exception. *)

val record_result :
  ?opts:opts ->
  ?on_stop:(Kernel.t -> unit) ->
  ?on_event:(Event.t -> unit) ->
  ?journal:Io.writer ->
  setup:(Kernel.t -> unit) ->
  exe:string ->
  unit ->
  (Trace.t * stats * Kernel.t, error) result
[@@deprecated "use Recorder.run (same signature); confined to lib/rr"]
