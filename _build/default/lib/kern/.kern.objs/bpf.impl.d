lib/kern/bpf.ml: Array Errno List
