(* In-process system-call interception (paper §3).

   The interception "library" lives at the patched syscall sites: the
   recorder rewrites a site's [Syscall] instruction into a [Hook] call,
   and this module implements what the injected library does when the
   hook runs — in guest context, against guest state (thread-locals page,
   trace buffer pages), with fixed deterministic RCB/instruction charges
   so recording and replay expose identical counter trajectories (§3.8).

   Record mode: perform the *untraced* syscall (allowed by the seccomp
   filter because the supervisor passes the untraced-instruction address),
   write a record into the guest trace buffer, copy outputs to their real
   destination.  Blocking syscalls arm the desched perf event first; if
   the syscall blocks, the desched signal interrupts it and the recorder
   converts it to a traced syscall (§3.3), marked here with an abort
   record.

   Replay mode: the untraced syscall becomes a no-op; results come out of
   the trace buffer, which the replayer refilled from the flush frame. *)

module A = Addr_space
module T = Task
module K = Kernel

let src = Logs.Src.create "rr.syscallbuf"

module Log = (val Logs.src_log src : Logs.LOG)

type mode =
  | Record of {
      clone_read : K.t -> T.t -> fd:int -> len:int -> Event.clone_ref option;
          (* §3.9: try to snapshot a large file read by block cloning;
             returns where in the trace the blocks went. *)
      extra_writes :
        K.t -> T.t -> nr:int -> args:int array -> result:int ->
        Event.mem_write list;
          (* Supervisor-maintained guest state (the fd-cloneability
             bitmap): already written to guest memory by the callback;
             the hook appends them to the record so replay reapplies
             them. *)
    }
  | Replay of {
      fetch_clone : Event.clone_ref -> string;
      refill : T.t -> Event.buf_record list option;
          (* Pull the next recorded flush batch when the guest buffer is
             exhausted; batches arrive in trace order. *)
    }

(* Caps, mirroring rr's pragmatics. *)
let max_buffered_data = 8192
let clone_threshold = 4096

let space task = task.T.cpu.Cpu.space

let read_tl task off = A.read_u64 ~force:true (space task) (Layout.thread_locals_page + off)

let write_tl task off v =
  A.write_u64 ~force:true (space task) (Layout.thread_locals_page + off) v

let read_hdr task buf off = A.read_u64 ~force:true (space task) (buf + off)
let write_hdr task buf off v = A.write_u64 ~force:true (space task) (buf + off) v

(* ---- guest record serialization ----------------------------------- *)
(* Record: nr(8) result(8) flags(8) nwrites(8)
           { addr(8) len(8) data(padded to 8) }*
           [ cr_off(8) cr_addr(8) cr_len(8) when flags&2 ] *)

let flag_aborted = 1
let flag_cloned = 2

let round8 n = (n + 7) land lnot 7

let write_record task buf ~off br =
  let sp = space task in
  let flags =
    (if br.Event.br_aborted then flag_aborted else 0)
    lor match br.Event.br_clone with Some _ -> flag_cloned | None -> 0
  in
  A.write_u64 ~force:true sp (buf + off) br.Event.br_nr;
  A.write_u64 ~force:true sp (buf + off + 8) br.Event.br_result;
  A.write_u64 ~force:true sp (buf + off + 16) flags;
  A.write_u64 ~force:true sp (buf + off + 24) (List.length br.Event.br_writes);
  let cur = ref (off + 32) in
  List.iter
    (fun w ->
      A.write_u64 ~force:true sp (buf + !cur) w.Event.addr;
      A.write_u64 ~force:true sp (buf + !cur + 8) (String.length w.Event.data);
      A.write_bytes ~force:true sp (buf + !cur + 16)
        (Bytes.of_string w.Event.data);
      cur := !cur + 16 + round8 (String.length w.Event.data))
    br.Event.br_writes;
  (match br.Event.br_clone with
  | Some c ->
    A.write_u64 ~force:true sp (buf + !cur) c.Event.cr_off;
    A.write_u64 ~force:true sp (buf + !cur + 8) c.Event.cr_addr;
    A.write_u64 ~force:true sp (buf + !cur + 16) c.Event.cr_len;
    cur := !cur + 24
  | None -> ());
  !cur - off

(* [cloned_path] supplies the per-task trace path for clone records (the
   guest buffer doesn't store paths). *)
let read_record task buf ~off ~cloned_path =
  let sp = space task in
  let br_nr = A.read_u64 ~force:true sp (buf + off) in
  let br_result = A.read_u64 ~force:true sp (buf + off + 8) in
  let flags = A.read_u64 ~force:true sp (buf + off + 16) in
  let nwrites = A.read_u64 ~force:true sp (buf + off + 24) in
  let cur = ref (off + 32) in
  let br_writes = ref [] in
  for _ = 1 to nwrites do
    let addr = A.read_u64 ~force:true sp (buf + !cur) in
    let len = A.read_u64 ~force:true sp (buf + !cur + 8) in
    let data = Bytes.to_string (A.read_bytes ~force:true sp (buf + !cur + 16) len) in
    br_writes := { Event.addr; data } :: !br_writes;
    cur := !cur + 16 + round8 len
  done;
  let br_clone =
    if flags land flag_cloned <> 0 then begin
      let cr_off = A.read_u64 ~force:true sp (buf + !cur) in
      let cr_addr = A.read_u64 ~force:true sp (buf + !cur + 8) in
      let cr_len = A.read_u64 ~force:true sp (buf + !cur + 16) in
      cur := !cur + 24;
      Some { Event.cr_path = cloned_path; cr_off; cr_addr; cr_len }
    end
    else None
  in
  ( { Event.br_nr;
      br_result;
      br_writes = List.rev !br_writes;
      br_clone;
      br_aborted = flags land flag_aborted <> 0 },
    !cur - off )

(* Parse all records currently in the buffer (the recorder's flush). *)
let parse_all task ~cloned_path =
  let buf = read_tl task Layout.tl_buf_ptr in
  if buf = 0 then []
  else begin
    let fill = read_hdr task buf Layout.sb_fill in
    let rec go off acc =
      if off >= fill then List.rev acc
      else
        let r, sz =
          read_record task buf ~off:(Layout.sb_hdr_size + off) ~cloned_path
        in
        go (off + sz) (r :: acc)
    in
    go 0 []
  end

let reset task =
  let buf = read_tl task Layout.tl_buf_ptr in
  if buf <> 0 then begin
    write_hdr task buf Layout.sb_fill 0;
    write_hdr task buf Layout.sb_read_cursor 0
  end

(* The replayer refills the buffer from a flush frame. *)
let load_records task records =
  let buf = read_tl task Layout.tl_buf_ptr in
  assert (buf <> 0);
  let off = ref 0 in
  List.iter
    (fun br ->
      let sz = write_record task buf ~off:(Layout.sb_hdr_size + !off) br in
      off := !off + sz)
    records;
  write_hdr task buf Layout.sb_fill !off;
  write_hdr task buf Layout.sb_read_cursor 0

let buffer_fill task =
  let buf = read_tl task Layout.tl_buf_ptr in
  if buf = 0 then 0 else read_hdr task buf Layout.sb_fill

(* Append a record in record mode. *)
let append_record task br =
  let buf = read_tl task Layout.tl_buf_ptr in
  let fill = read_hdr task buf Layout.sb_fill in
  let sz = write_record task buf ~off:(Layout.sb_hdr_size + fill) br in
  write_hdr task buf Layout.sb_fill (fill + sz)

(* ---- deterministic PMU charges ------------------------------------ *)

let charge_hook task =
  let pmu = task.T.cpu.Cpu.pmu in
  pmu.Pmu.rcb <- pmu.Pmu.rcb + Layout.hook_rcb_cost;
  pmu.Pmu.insns <- pmu.Pmu.insns + Layout.hook_insn_cost

let charge_desched_arm task =
  let pmu = task.T.cpu.Cpu.pmu in
  pmu.Pmu.rcb <- pmu.Pmu.rcb + Layout.hook_desched_arm_rcb;
  pmu.Pmu.insns <- pmu.Pmu.insns + Layout.hook_desched_arm_insns

(* Static may-block rule: must be identical in record and replay, so it
   cannot consult the fd table (which replay does not maintain). *)
let statically_may_block ~nr =
  nr = Sysno.read || nr = Sysno.write || nr = Sysno.recvfrom
  || nr = Sysno.futex || nr = Sysno.wait4 || nr = Sysno.poll

(* Fall back to a traced syscall through the RR page's traced-fallback
   instruction: the seccomp filter will TRACE it and the recorder handles
   it like any other syscall. *)
let tm_hit = Telemetry.counter "syscallbuf.hit"
let tm_fallback = Telemetry.counter "syscallbuf.fallback"
let tm_replay_hit = Telemetry.counter "syscallbuf.replay_hit"
let tm_widened_hit = Telemetry.counter "syscallbuf.widened_hit"

let traced_fallback k task =
  Telemetry.incr tm_fallback;
  Timeline.instant ~lane:task.T.tid "syscallbuf.fallback";
  let regs = task.T.cpu.Cpu.regs in
  let ss =
    { T.nr = regs.(0);
      args = Array.init 6 (fun i -> regs.(i + 1));
      site = Layout.traced_fallback_insn;
      entry_regs = Cpu.copy_regs task.T.cpu }
  in
  K.enter_syscall k task ss ~ip:Layout.traced_fallback_insn

(* The hook body.  Runs when a patched site executes.  [wide] selects
   the widened wrapper set (§3.1's grown library); it must match
   between recording and replay of the same trace, since it changes
   which calls take the buffered path. *)
let hook ?(wide = true) mode k task =
  charge_hook task;
  let regs = task.T.cpu.Cpu.regs in
  let nr = regs.(0) in
  let args = Array.init 6 (fun i -> regs.(i + 1)) in
  let locked = read_tl task Layout.tl_locked in
  let buf = read_tl task Layout.tl_buf_ptr in
  let buf_size = read_tl task Layout.tl_buf_size in
  let fill = if buf = 0 then 0 else read_hdr task buf Layout.sb_fill in
  let room = buf_size - Layout.sb_hdr_size - fill in
  let outs = Syscall_model.buffered_outputs ~wide ~nr ~args () in
  let data_len_bound =
    List.fold_left (fun a o -> a + o.Syscall_model.bo_len) 0 outs
  in
  (* Block-cloning intent (§3.9) must be decided from guest-visible state
     only, so record and replay agree: the fd bitmap says whether the fd
     is a cloneable regular file. *)
  let fd_cloneable =
    args.(0) >= 0 && args.(0) < 64 && buf <> 0
    && A.read_u64 ~force:true (space task)
         (Layout.globals_page + Layout.gl_fd_bitmap)
       land (1 lsl args.(0))
       <> 0
  in
  let clone_intent =
    nr = Sysno.read && args.(2) >= clone_threshold && fd_cloneable
  in
  let buffered_data = if clone_intent then 0 else data_len_bound in
  (* Room slack: record header + clone ref + per-output write headers
     and padding.  Guest-static, so record and replay fall back at the
     same call. *)
  let slack = 64 + (24 * List.length outs) in
  if
    locked <> 0 || buf = 0
    || not (Syscall_model.bufferable ~wide ~nr ())
    || buffered_data > max_buffered_data
    || room < slack + buffered_data
  then traced_fallback k task
  else begin
    write_tl task Layout.tl_locked 1;
    let may_block = statically_may_block ~nr in
    if may_block then charge_desched_arm task;
    match mode with
    | Record { clone_read; extra_writes } -> (
      (* Arm the desched event around the possibly-blocking syscall. *)
      if may_block then begin
        match task.T.desched with
        | Some ev -> Perf_event.enable ev
        | None -> ()
      end;
      (* §3.9 fast path: snapshot a big file read by cloning. *)
      let clone =
        if clone_intent then clone_read k task ~fd:args.(0) ~len:args.(2)
        else None
      in
      match clone with
      | Some cref -> (
        (* Perform the untraced read into its real destination; data is
           snapshotted by the clone, not the buffer. *)
        match K.untraced_syscall k task ~nr ~args ~ip:Layout.untraced_syscall_insn with
        | `Done r ->
          let cref = { cref with Event.cr_addr = args.(1); cr_len = max r 0 } in
          append_record task
            { Event.br_nr = nr;
              br_result = r;
              br_writes = extra_writes k task ~nr ~args ~result:r;
              br_clone = Some cref;
              br_aborted = false };
          (match task.T.desched with
          | Some ev -> Perf_event.disable ev
          | None -> ());
          Telemetry.incr tm_hit;
          Timeline.instant ~lane:task.T.tid "syscallbuf.hit";
          regs.(0) <- r;
          write_tl task Layout.tl_locked 0
        | `Blocked -> () (* file reads don't block; unreachable *)
        | `Denied -> failwith "syscallbuf: untraced syscall denied")
      | None -> (
        (* Redirect every output pointer into the trace buffer (§3.8),
           laying the areas out sequentially past the record slack.
           Copy-in arguments (poll's pollfd array) are staged into the
           buffer first so the kernel reads them from there. *)
        let data_area = buf + Layout.sb_hdr_size + fill + slack in
        let perform_args = Array.copy args in
        let redirects =
          let off = ref 0 in
          List.map
            (fun o ->
              let dst = data_area + !off in
              off := !off + round8 o.Syscall_model.bo_len;
              if o.Syscall_model.bo_copy_in then
                A.write_bytes ~force:true (space task) dst
                  (A.read_bytes ~force:true (space task)
                     args.(o.Syscall_model.bo_arg)
                     o.Syscall_model.bo_len);
              perform_args.(o.Syscall_model.bo_arg) <- dst;
              (args.(o.Syscall_model.bo_arg), dst, o.Syscall_model.bo_len))
            outs
        in
        match
          K.untraced_syscall k task ~nr ~args:perform_args
            ~ip:Layout.untraced_syscall_insn
        with
        | `Done r ->
          (* The model, not per-nr special cases, decides what the
             kernel wrote.  Outputs that landed in a redirected area
             are copied out to their real destination; outputs the
             kernel wrote directly (unredirected pointers) are read
             back in place.  Either way the bytes go into the record
             so replay reapplies them. *)
          let writes =
            if r < 0 then []
            else
              Syscall_model.outputs ~nr ~args ~result:r
              |> List.filter_map (fun { Syscall_model.out_addr; out_len } ->
                     if out_len <= 0 || out_addr = 0 then None
                     else begin
                       let data =
                         match
                           List.find_opt
                             (fun (orig, _, len) ->
                               orig <> 0 && out_addr >= orig
                               && out_addr + out_len <= orig + len)
                             redirects
                         with
                         | Some (orig, dst, _) ->
                           let d =
                             Bytes.unsafe_to_string
                               (A.read_bytes ~force:true (space task)
                                  (dst + (out_addr - orig))
                                  out_len)
                           in
                           A.write_bytes ~force:true (space task) out_addr
                             (Bytes.unsafe_of_string d);
                           d
                         | None ->
                           Bytes.unsafe_to_string
                             (A.read_bytes ~force:true (space task) out_addr
                                out_len)
                       in
                       Some { Event.addr = out_addr; data }
                     end)
          in
          append_record task
            { Event.br_nr = nr;
              br_result = r;
              br_writes = writes @ extra_writes k task ~nr ~args ~result:r;
              br_clone = None;
              br_aborted = false };
          (match task.T.desched with
          | Some ev -> Perf_event.disable ev
          | None -> ());
          Telemetry.incr tm_hit;
          if not (Syscall_model.bufferable ~wide:false ~nr ()) then
            Telemetry.incr tm_widened_hit;
          Timeline.instant ~lane:task.T.tid "syscallbuf.hit";
          regs.(0) <- r;
          write_tl task Layout.tl_locked 0
        | `Blocked ->
          (* The desched event fires; the recorder finishes the dance
             (abort record, traced restart, unlock). *)
          ()
        | `Denied -> failwith "syscallbuf: untraced syscall denied"))
    | Replay { fetch_clone; refill } ->
      let cursor = read_hdr task buf Layout.sb_read_cursor in
      let fill = read_hdr task buf Layout.sb_fill in
      let cursor =
        if cursor < fill then cursor
        else begin
          (* Exhausted: load the next recorded flush batch. *)
          match refill task with
          | Some records ->
            load_records task records;
            0
          | None ->
            failwith
              (Printf.sprintf
                 "syscallbuf replay: task %d buffer underrun at %s"
                 task.T.tid (Sysno.name nr))
        end
      in
      let br, sz =
        read_record task buf
          ~off:(Layout.sb_hdr_size + cursor)
          ~cloned_path:(Printf.sprintf "cloned/%d" task.T.tid)
      in
      write_hdr task buf Layout.sb_read_cursor (cursor + sz);
      if br.Event.br_nr <> nr then
        failwith
          (Printf.sprintf "syscallbuf replay divergence: recorded %s, got %s"
             (Sysno.name br.Event.br_nr) (Sysno.name nr));
      if br.Event.br_aborted then begin
        (* Recording aborted to a traced syscall here; hand control to
           the replayer to apply the via-abort syscall frame. *)
        write_tl task Layout.tl_locked 0;
        K.enter_stop k task
          (T.Stop_signal (Signals.make_info Signals.sigdesched Signals.Desched))
      end
      else begin
        (* The untraced syscall is a no-op during replay; results come
           from the buffer. *)
        List.iter
          (fun w ->
            A.write_bytes ~force:true (space task) w.Event.addr
              (Bytes.of_string w.Event.data))
          br.Event.br_writes;
        (match br.Event.br_clone with
        | Some cref ->
          let data = fetch_clone cref in
          A.write_bytes ~force:true (space task) cref.Event.cr_addr
            (Bytes.of_string
               (String.sub data 0 (min (String.length data) cref.Event.cr_len)))
        | None -> ());
        Telemetry.incr tm_replay_hit;
        regs.(0) <- br.Event.br_result;
        write_tl task Layout.tl_locked 0
      end
  end

(* ---- injection ----------------------------------------------------- *)

let hook_number = 1

(* Build the RR page and the thread-locals page in a fresh address space
   (paper: "immediately after each execve we map a page of memory at a
   fixed address").  The data pages for scratch and the trace buffer are
   mapped per task by the recorder. *)
let inject_rr_page k task =
  let sp = space task in
  A.text_set sp Layout.untraced_syscall_insn Insn.Syscall;
  A.text_set sp Layout.traced_fallback_insn Insn.Syscall;
  if A.find_region sp Layout.thread_locals_page = None then
    ignore
      (K.supervisor_map k task ~len:Layout.thread_locals_size ~prot:Mem.prot_rw
         ~kind:A.Thread_locals ~addr:Layout.thread_locals_page ());
  if A.find_region sp Layout.globals_page = None then
    ignore
      (K.supervisor_map k task ~len:Layout.globals_size ~prot:Mem.prot_rw
         ~kind:A.Rr_page ~addr:Layout.globals_page ())

(* Map a task's scratch and trace-buffer pages at explicit addresses and
   initialize its thread-locals.  The recorder picks addresses by slot;
   the replayer passes the recorded addresses so layouts agree. *)
let setup_task_at k task ~scratch ~buf ~is_replay =
  let sp = space task in
  if A.find_region sp scratch = None then
    ignore
      (K.supervisor_map k task ~len:Layout.scratch_size ~prot:Mem.prot_rw
         ~kind:A.Scratch ~addr:scratch ());
  if A.find_region sp buf = None then
    ignore
      (K.supervisor_map k task ~len:Layout.syscallbuf_size ~prot:Mem.prot_rw
         ~kind:A.Scratch ~addr:buf ());
  write_tl task Layout.tl_locked 0;
  write_tl task Layout.tl_scratch_ptr scratch;
  write_tl task Layout.tl_buf_ptr buf;
  write_tl task Layout.tl_buf_size Layout.syscallbuf_size;
  write_tl task Layout.tl_tid task.T.tid;
  write_hdr task buf Layout.sb_fill 0;
  write_hdr task buf Layout.sb_read_cursor 0;
  write_hdr task buf Layout.sb_is_replay (if is_replay then 1 else 0);
  write_hdr task buf Layout.sb_abort_commit 0;
  (scratch, buf)

let setup_task k task ~slot ~is_replay =
  setup_task_at k task ~scratch:(Layout.scratch_for ~slot)
    ~buf:(Layout.syscallbuf_for ~slot) ~is_replay

(* Thread-locals contents are swapped on context switches because threads
   of one process share the page (paper §3.6). *)
let save_locals task =
  A.read_bytes ~force:true (space task) Layout.thread_locals_page
    Layout.thread_locals_size

let restore_locals task saved =
  A.write_bytes ~force:true (space task) Layout.thread_locals_page saved

(* Is the following instruction a shape the interception library's stubs
   know (paper §3.1: "frequently executed system call instructions are
   followed by a few known, fixed instruction sequences")?  Straight-line
   data instructions qualify; control transfers and the exotic
   instructions do not, leaving a realistic residue of unpatchable
   sites. *)
let patchable_follower = function
  | None -> false
  | Some insn -> (
    match insn with
    | Insn.Jcc _ (* result check, e.g. jge r0, 0 *)
    | Insn.Mov _ (* save result / set up next call *)
    | Insn.Alu _
    | Insn.Load _ | Insn.Store _ | Insn.Load8 _ | Insn.Store8 _
    | Insn.Push _ | Insn.Pop _
    | Insn.Nop | Insn.Pause
    | Insn.Ret ->
      true
    | Insn.Jmp _ | Insn.Call _ | Insn.Callr _ | Insn.Syscall | Insn.Rdtsc _
    | Insn.Rdrand _ | Insn.Cpuid_core _ | Insn.Cas _ | Insn.Emit _
    | Insn.Hook _ | Insn.Halt ->
      false)

(* Decide whether a syscall site can be patched to call the interception
   library (§3.1): known follower shape, static code, not the RR page. *)
let can_patch task ~site =
  let sp = space task in
  site < Layout.rr_page_text
  && (not (A.text_was_written sp site))
  && patchable_follower (A.text_get sp (site + 1))

(* RDRAND sites are patched to reg-encoding hooks (paper §2.6: "RR
   patches that explicitly"): hook 0x200+r emulates RDRAND into r. *)
let rdrand_hook_base = 0x200

let rdrand_hook_of_reg r = rdrand_hook_base lor r

let is_rdrand_hook n = n land lnot 0xf = rdrand_hook_base

let reg_of_rdrand_hook n = n land 0xf

(* Patch a site according to what lives there; both the recorder and the
   replayer apply the same transformation, so E_patch frames only carry
   the address. *)
let patch_site task ~site =
  match A.text_get (space task) site with
  | Some Insn.Syscall -> A.text_set (space task) site (Insn.Hook hook_number)
  | Some (Insn.Rdrand r) ->
    A.text_set (space task) site (Insn.Hook (rdrand_hook_of_reg r))
  | Some insn ->
    Fmt.invalid_arg "patch_site: unpatchable %a at %#x" Insn.pp insn site
  | None -> Fmt.invalid_arg "patch_site: no instruction at %#x" site

(* Scan a freshly exec'd image for RDRAND instructions; returns the sites
   (the recorder patches them and records patch frames). *)
let find_rdrand_sites task =
  Hashtbl.fold
    (fun addr insn acc ->
      match insn with Insn.Rdrand _ -> addr :: acc | _ -> acc)
    (space task).A.text []
  |> List.sort compare

(* Scan a freshly exec'd image for patchable syscall sites, for eager
   patching at exec time (§3.2): patching up front means the first
   execution of each site never takes the patch-time ptrace stop.  The
   syscall number at a site is only known at run time, but that is
   fine: the hook falls back to a traced syscall for anything it
   cannot buffer, so patching is always safe when the follower shape
   is. *)
let find_syscall_sites task =
  Hashtbl.fold
    (fun addr insn acc ->
      match insn with
      | Insn.Syscall when can_patch task ~site:addr -> addr :: acc
      | _ -> acc)
    (space task).A.text []
  |> List.sort compare
