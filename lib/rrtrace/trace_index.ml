(* Persistent sidecar indexes: per-pc frames, per-page writer frames,
   the virtual-clock curve, and durable checkpoint blobs.  See the mli
   for the query contract (write candidates are a verified superset).

   All frame arrays are ascending, so every query is a binary search;
   on disk they are delta-coded uvarints. *)

type t = {
  n_events : int;
  pcs : (int, int array) Hashtbl.t; (* pc -> frames, ascending *)
  pages : (int, int array) Hashtbl.t; (* page index -> frames, ascending *)
  globals : int array; (* frames with unbounded effects, ascending *)
  clock : int array; (* clock.(p) = virtual clock at position p *)
  mutable cps : (int * string) array; (* (frame, blob), ascending *)
}

let n_events t = t.n_events

(* ----- binary searches --------------------------------------------- *)

(* Index of the greatest element < limit in ascending [a], or -1. *)
let rank_below a limit =
  let lo = ref 0 and hi = ref (Array.length a - 1) and best = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < limit then begin
      best := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !best

let prev_exec t ~pc ~before =
  match Hashtbl.find_opt t.pcs pc with
  | None -> None
  | Some frames ->
    let i = rank_below frames before in
    if i < 0 then None else Some frames.(i)

let write_candidates t ~addr ~len ~before =
  if len <= 0 then []
  else begin
    let seen = Hashtbl.create 32 in
    let out = ref [] in
    let collect frames =
      let i = ref (rank_below frames before) in
      while !i >= 0 do
        let f = frames.(!i) in
        if not (Hashtbl.mem seen f) then begin
          Hashtbl.replace seen f ();
          out := f :: !out
        end;
        decr i
      done
    in
    let first = Mem.page_index addr and last = Mem.page_index (addr + len - 1) in
    for p = first to last do
      match Hashtbl.find_opt t.pages p with
      | Some frames -> collect frames
      | None -> ()
    done;
    collect t.globals;
    List.sort (fun a b -> compare b a) !out
  end

let clock_at t p =
  if p < 0 || p >= Array.length t.clock then
    invalid_arg "Trace_index.clock_at: position out of range";
  t.clock.(p)

let frame_of_time t time =
  if Array.length t.clock = 0 || t.clock.(0) > time then None
  else begin
    (* largest p with clock.(p) <= time; clock is nondecreasing *)
    let lo = ref 0 and hi = ref (Array.length t.clock - 1) and best = ref 0 in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if t.clock.(mid) <= time then begin
        best := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    Some !best
  end

let nearest_checkpoint t target =
  let lo = ref 0 and hi = ref (Array.length t.cps - 1) and best = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.cps.(mid) <= target then begin
      best := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  if !best < 0 then None else Some t.cps.(!best)

let checkpoints t = t.cps

(* ----- building ---------------------------------------------------- *)

type builder = {
  b_pcs : (int, int list ref) Hashtbl.t; (* frames, newest first *)
  b_pages : (int, int list ref) Hashtbl.t;
  mutable b_globals : int list;
  mutable b_clock : int list; (* newest first *)
  mutable b_next : int; (* frame about to be noted *)
  mutable b_cps : (int * string) list;
}

let builder ~clock0 =
  { b_pcs = Hashtbl.create 64;
    b_pages = Hashtbl.create 256;
    b_globals = [];
    b_clock = [ clock0 ];
    b_next = 0;
    b_cps = [] }

let bucket tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace tbl key r;
    r

(* Frames whose effects are not expressible as observed byte stores:
   exec replaces a whole space, clone makes one, rr_setup maps the
   preload pages, and performed syscalls (munmap, mprotect, sigreturn)
   rearrange mappings.  Always write-candidates. *)
let unbounded_effects (e : Event.t) =
  match e with
  | Event.E_exec _ | Event.E_clone _ | Event.E_rr_setup _ -> true
  | Event.E_syscall { kind = Event.K_perform; _ } -> true
  | _ -> false

let note_frame b e ~pages ~clock =
  let frame = b.b_next in
  b.b_next <- frame + 1;
  b.b_clock <- clock :: b.b_clock;
  (match Event.frame_pc e with
  | Some pc ->
    let r = bucket b.b_pcs pc in
    r := frame :: !r
  | None -> ());
  if unbounded_effects e then b.b_globals <- frame :: b.b_globals;
  let note_page p =
    let r = bucket b.b_pages p in
    match !r with f :: _ when f = frame -> () | _ -> r := frame :: !r
  in
  List.iter note_page pages;
  (* mmap replay may install content without going through the write
     paths (fresh zero pages, MAP_FIXED overwrites): index the target
     range explicitly. *)
  match e with
  | Event.E_mmap { addr; len; _ } when len > 0 ->
    for p = Mem.page_index addr to Mem.page_index (addr + len - 1) do
      note_page p
    done
  | _ -> ()

let note_checkpoint b ~frame ~blob = b.b_cps <- (frame, blob) :: b.b_cps

let rev_table tbl =
  let out = Hashtbl.create (Hashtbl.length tbl) in
  Hashtbl.iter
    (fun k r -> Hashtbl.replace out k (Array.of_list (List.rev !r)))
    tbl;
  out

let finish b =
  { n_events = b.b_next;
    pcs = rev_table b.b_pcs;
    pages = rev_table b.b_pages;
    globals = Array.of_list (List.rev b.b_globals);
    clock = Array.of_list (List.rev b.b_clock);
    cps =
      Array.of_list
        (List.sort (fun a b -> compare (fst a) (fst b)) (List.rev b.b_cps)) }

let add_checkpoint t ~frame ~blob =
  let kept =
    Array.to_list t.cps |> List.filter (fun (f, _) -> f <> frame)
  in
  t.cps <-
    Array.of_list
      (List.sort (fun a b -> compare (fst a) (fst b)) ((frame, blob) :: kept))

(* ----- codec -------------------------------------------------------- *)

(* Ascending frame arrays delta-code to tiny uvarints. *)
let put_ascending b a =
  Codec.put_uvarint b (Array.length a);
  let prev = ref 0 in
  Array.iter
    (fun v ->
      Codec.put_uvarint b (v - !prev);
      prev := v)
    a

let get_ascending s =
  let n = Codec.get_uvarint s in
  if n < 0 || n > Sys.max_array_length then
    raise (Codec.Corrupt "index: bad array length");
  let a = Array.make n 0 in
  let prev = ref 0 in
  for i = 0 to n - 1 do
    prev := !prev + Codec.get_uvarint s;
    a.(i) <- !prev
  done;
  a

let put_table b tbl =
  let entries =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun a b -> compare (fst a) (fst b))
  in
  Codec.put_uvarint b (List.length entries);
  List.iter
    (fun (k, frames) ->
      Codec.put_int b k;
      put_ascending b frames)
    entries

let get_table s =
  let n = Codec.get_uvarint s in
  let tbl = Hashtbl.create (max 16 n) in
  for _ = 1 to n do
    let k = Codec.get_int s in
    Hashtbl.replace tbl k (get_ascending s)
  done;
  tbl

let index_version = 1

let put_meta b t =
  Codec.put_uvarint b index_version;
  Codec.put_uvarint b t.n_events;
  put_ascending b t.clock;
  put_ascending b t.globals;
  put_table b t.pcs;
  put_table b t.pages

let get_meta s =
  let v = Codec.get_uvarint s in
  if v <> index_version then
    raise (Codec.Corrupt (Printf.sprintf "index version %d" v));
  let n_events = Codec.get_uvarint s in
  let clock = get_ascending s in
  let globals = get_ascending s in
  let pcs = get_table s in
  let pages = get_table s in
  if Array.length clock <> n_events + 1 then
    raise (Codec.Corrupt "index: clock curve length mismatch");
  { n_events; pcs; pages; globals; clock; cps = [||] }

let put_checkpoint b ~frame ~blob =
  Codec.put_uvarint b frame;
  Codec.put_string b blob

let get_checkpoint s =
  let frame = Codec.get_uvarint s in
  let blob = Codec.get_string s in
  (frame, blob)
