(** In-memory filesystem with hard links and copy-on-write block cloning
    (FICLONE-style) — the sharing features rr's trace-size optimizations
    rely on (paper §2.7, §3.9). *)

val block_size : int

type block = { mutable refs : int; bytes : Bytes.t }

type reg = {
  mutable blocks : block option array;
  mutable size : int;
  mutable image : Image.t option;
}

type node_kind = Reg of reg | Dir of (string, int) Hashtbl.t

type inode = { ino : int; mutable kind : node_kind; mutable nlink : int }

type t

exception Error of int
(** Carries an {!Errno} value. *)

val create : unit -> t

val resolve : t -> string -> inode
val resolve_opt : t -> string -> inode option
val mkdir : t -> string -> unit
val mkdir_p : t -> string -> unit
val create_file : t -> string -> reg
val lookup_reg : t -> string -> reg
val open_file : t -> string -> creat:bool -> trunc:bool -> reg
val truncate : t -> reg -> int -> unit
val read : t -> reg -> off:int -> len:int -> bytes
val write : t -> reg -> off:int -> bytes -> int

val clone_range :
  t -> src:reg -> src_off:int -> dst:reg -> dst_off:int -> len:int -> int
(** Copy-on-write clone; returns the number of blocks actually shared
    (0 when alignment forced a byte copy). *)

val clone_file : t -> src:reg -> dst_path:string -> reg * int
val link : t -> src_path:string -> dst_path:string -> unit
val unlink : t -> string -> unit
val rename : t -> src_path:string -> dst_path:string -> unit
val readdir : t -> string -> string list
val file_size : reg -> int
val set_image : reg -> Image.t -> unit
val get_image : reg -> Image.t option

val disk_usage : t -> int
(** Unique live blocks × block size: what the "disk" actually holds. *)

val logical_usage : t -> int
(** Block references × block size: what the files claim to hold. *)
