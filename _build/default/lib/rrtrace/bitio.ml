(* LSB-first bit streams, as DEFLATE uses. *)

type writer = {
  buf : Buffer.t;
  mutable acc : int; (* pending bits, LSB first *)
  mutable nbits : int;
}

let writer () = { buf = Buffer.create 4096; acc = 0; nbits = 0 }

let put_bits w v n =
  assert (n >= 0 && n <= 24);
  w.acc <- w.acc lor ((v land ((1 lsl n) - 1)) lsl w.nbits);
  w.nbits <- w.nbits + n;
  while w.nbits >= 8 do
    Buffer.add_char w.buf (Char.chr (w.acc land 0xff));
    w.acc <- w.acc lsr 8;
    w.nbits <- w.nbits - 8
  done

(* Flush the final partial byte and return the stream. *)
let finish w =
  if w.nbits > 0 then begin
    Buffer.add_char w.buf (Char.chr (w.acc land 0xff));
    w.acc <- 0;
    w.nbits <- 0
  end;
  Buffer.contents w.buf

type reader = {
  src : string;
  mutable pos : int;
  mutable racc : int;
  mutable rnbits : int;
}

exception Truncated

let reader src = { src; pos = 0; racc = 0; rnbits = 0 }

let get_bits r n =
  assert (n >= 0 && n <= 24);
  while r.rnbits < n do
    if r.pos >= String.length r.src then raise Truncated;
    r.racc <- r.racc lor (Char.code r.src.[r.pos] lsl r.rnbits);
    r.pos <- r.pos + 1;
    r.rnbits <- r.rnbits + 8
  done;
  let v = r.racc land ((1 lsl n) - 1) in
  r.racc <- r.racc lsr n;
  r.rnbits <- r.rnbits - n;
  v

let get_bit r = get_bits r 1
