lib/workloads/wl_cp.ml: Asm Guest Insn Kernel List Printf Sysno Vfs Wl_common Workload
