(* Classic BPF, as used by seccomp filters.

   A real (interpreted) bytecode machine: accumulator, index register,
   scratch memory, forward-relative conditional jumps.  The recorder
   builds its PC-keyed filter out of these instructions, and patches
   tracee-installed filters by *prepending* an allow-prologue — sound
   because classic-BPF jumps are forward-relative (paper §2.3.5).

   Loads address the seccomp_data structure; we allow full-width loads
   instead of x86's 32-bit halves, which changes nothing semantically. *)

type insn =
  | Ld_abs of int (* A := data[off] *)
  | Ld_imm of int (* A := k *)
  | Ldx_imm of int (* X := k *)
  | Tax (* X := A *)
  | Txa (* A := X *)
  | St of int (* M[k] := A *)
  | Ldm of int (* A := M[k] *)
  | Alu_and of int
  | Alu_or of int
  | Alu_add of int
  | Jmp of int (* unconditional, relative *)
  | Jeq of int * int * int (* k, jump-if-true, jump-if-false *)
  | Jgt of int * int * int
  | Jge of int * int * int
  | Jset of int * int * int (* (A land k) <> 0 *)
  | Ret of int
  | Ret_a

type program = insn array

(* seccomp_data field offsets. *)
let data_nr = 0
let data_arch = 4
let data_ip = 8
let data_arg n = 16 + (8 * n)

(* seccomp return actions, SECCOMP_RET values. *)
let ret_kill = 0x0000_0000
let ret_trap = 0x0003_0000
let ret_errno e = 0x0005_0000 lor (e land 0xffff)
let ret_trace = 0x7ff0_0000
let ret_allow = 0x7fff_0000

let action_mask = 0x7fff_0000
let action_of v = v land action_mask
let errno_of v = v land 0xffff

type data = { nr : int; arch : int; ip : int; args : int array }

let scratch_size = 16

exception Bad_program of string

let load data off =
  if off = data_nr then data.nr
  else if off = data_arch then data.arch
  else if off = data_ip then data.ip
  else
    let rec find n = if n >= 6 then raise (Bad_program "bad load offset")
      else if off = data_arg n then data.args.(n)
      else find (n + 1)
    in
    find 0

(* Execute a filter.  Diverging or ill-formed programs raise
   [Bad_program]; the kernel treats that as RET_KILL, like Linux's
   verifier would have rejected them at install time. *)
let run (prog : program) (data : data) =
  let m = Array.make scratch_size 0 in
  let a = ref 0 and x = ref 0 in
  let len = Array.length prog in
  let fuel = ref (len * 4) in
  let rec step pc =
    if pc < 0 || pc >= len then raise (Bad_program "pc out of range");
    decr fuel;
    if !fuel < 0 then raise (Bad_program "loop");
    match prog.(pc) with
    | Ld_abs off -> a := load data off; step (pc + 1)
    | Ld_imm k -> a := k; step (pc + 1)
    | Ldx_imm k -> x := k; step (pc + 1)
    | Tax -> x := !a; step (pc + 1)
    | Txa -> a := !x; step (pc + 1)
    | St k ->
      if k < 0 || k >= scratch_size then raise (Bad_program "scratch");
      m.(k) <- !a;
      step (pc + 1)
    | Ldm k ->
      if k < 0 || k >= scratch_size then raise (Bad_program "scratch");
      a := m.(k);
      step (pc + 1)
    | Alu_and k -> a := !a land k; step (pc + 1)
    | Alu_or k -> a := !a lor k; step (pc + 1)
    | Alu_add k -> a := !a + k; step (pc + 1)
    | Jmp off ->
      if off < 0 then raise (Bad_program "backward jump");
      step (pc + 1 + off)
    | Jeq (k, t, f) -> jump pc (!a = k) t f
    | Jgt (k, t, f) -> jump pc (!a > k) t f
    | Jge (k, t, f) -> jump pc (!a >= k) t f
    | Jset (k, t, f) -> jump pc (!a land k <> 0) t f
    | Ret k -> k
    | Ret_a -> !a
  and jump pc cond t f =
    if t < 0 || f < 0 then raise (Bad_program "backward jump");
    step (pc + 1 + if cond then t else f)
  in
  step 0

(* The filter a sandbox typically installs: allow a whitelist of syscall
   numbers, direct the rest to [deny] (default: errno EPERM). *)
let whitelist ?(deny = ret_errno Errno.eperm) allowed : program =
  let n = List.length allowed in
  (* Layout: [Ld_abs; Jeq_0; ...; Jeq_{n-1}; Ret deny; Ret allow].  The
     i-th Jeq sits at index i+1 and must reach index n+2 when true. *)
  Array.of_list
    ((Ld_abs data_nr :: List.mapi (fun i nr -> Jeq (nr, n - i, 0)) allowed)
    @ [ Ret deny; Ret ret_allow ])

(* rr's recorder filter: allow when the program counter sits at the
   untraced-syscall instruction, trace everything else. *)
let rr_filter ~untraced_ip : program =
  [| Ld_abs data_ip; Jeq (untraced_ip, 0, 1); Ret ret_allow; Ret ret_trace |]

(* Patch a tracee-installed filter with rr's allow-prologue: if the PC is
   the privileged instruction, allow immediately; otherwise run the
   original filter.  Prepending preserves the original's forward-relative
   jumps. *)
let patch_with_prologue ~privileged_ip (prog : program) : program =
  Array.append
    [| Ld_abs data_ip; Jeq (privileged_ip, 0, 1); Ret ret_allow |]
    prog

let length = Array.length
