(* The domain pool (lib/exec): inline execution at jobs=1, real worker
   domains at jobs>1, submission-order results, exception propagation
   through futures, backpressure under a tiny queue bound, and the
   shutdown contract. *)

let test_inline_pool () =
  let p = Pool.create ~jobs:1 () in
  Alcotest.(check int) "clamped to one worker" 1 (Pool.jobs p);
  (* Inline: the task has already run when submit returns. *)
  let ran = ref false in
  let f = Pool.submit p (fun () -> ran := true; 7) in
  Alcotest.(check bool) "ran inline" true !ran;
  Alcotest.(check int) "result" 7 (Pool.await f);
  Alcotest.(check int) "await is repeatable" 7 (Pool.await f);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *)

let test_parallel_results_in_order () =
  let p = Pool.create ~jobs:2 () in
  let hits = Atomic.make 0 in
  let futures =
    List.init 50 (fun i ->
        Pool.submit p (fun () ->
            Atomic.incr hits;
            i * i))
  in
  (* Futures are awaited positionally: results line up with submission
     order no matter which worker ran which task. *)
  List.iteri
    (fun i f -> Alcotest.(check int) "positional result" (i * i) (Pool.await f))
    futures;
  Alcotest.(check int) "every task ran once" 50 (Atomic.get hits);
  Pool.shutdown p

let test_exception_propagation () =
  let p = Pool.create ~jobs:2 () in
  let ok = Pool.submit p (fun () -> "fine") in
  let bad = Pool.submit p (fun () -> failwith "task blew up") in
  Alcotest.(check string) "healthy task unaffected" "fine" (Pool.await ok);
  Alcotest.check_raises "await re-raises" (Failure "task blew up") (fun () ->
      ignore (Pool.await bad));
  (* A failed task does not poison the pool. *)
  Alcotest.(check int) "pool still works" 3
    (Pool.await (Pool.submit p (fun () -> 3)));
  Pool.shutdown p

let test_backpressure () =
  (* queue_limit 1: submission must block rather than buffer unboundedly,
     yet all tasks complete.  Completion of this test is the assertion —
     a lost wakeup would hang it. *)
  let p = Pool.create ~queue_limit:1 ~jobs:2 () in
  let sum = Atomic.make 0 in
  let futures =
    List.init 40 (fun i ->
        Pool.submit p (fun () ->
            Atomic.incr sum;
            i))
  in
  let total = List.fold_left (fun acc f -> acc + Pool.await f) 0 futures in
  Alcotest.(check int) "all results collected" (39 * 40 / 2) total;
  Alcotest.(check int) "all tasks ran" 40 (Atomic.get sum);
  Pool.shutdown p

let test_shutdown_contract () =
  let p = Pool.create ~jobs:2 () in
  let f = Pool.submit p (fun () -> 11) in
  Pool.shutdown p;
  (* Pending work was drained, futures stay valid... *)
  Alcotest.(check int) "future valid after shutdown" 11 (Pool.await f);
  (* ...but new submissions are refused. *)
  Alcotest.(check bool) "submit after shutdown raises" true
    (try
       ignore (Pool.submit p (fun () -> 0));
       false
     with Invalid_argument _ -> true)

let test_pool_telemetry () =
  Telemetry.reset ();
  let p = Pool.create ~jobs:1 () in
  for i = 1 to 5 do
    ignore (Pool.submit p (fun () -> i))
  done;
  Pool.shutdown p;
  let snap = Telemetry.snapshot () in
  Alcotest.(check int) "pool.tasks counts inline submissions" 5
    (List.assoc "pool.tasks" snap.Telemetry.snap_counters)

let suites =
  [ ( "exec",
      [ Alcotest.test_case "inline pool (jobs=1)" `Quick test_inline_pool;
        Alcotest.test_case "parallel results in submission order" `Quick
          test_parallel_results_in_order;
        Alcotest.test_case "exception propagation" `Quick
          test_exception_propagation;
        Alcotest.test_case "backpressure with queue_limit=1" `Quick
          test_backpressure;
        Alcotest.test_case "shutdown contract" `Quick test_shutdown_contract;
        Alcotest.test_case "pool.tasks telemetry" `Quick test_pool_telemetry
      ] ) ]
