examples/quickstart.mli:
