(** The GDB remote-serial-protocol packet layer.

    Wire format: [$<body>#<ck>] where [ck] is two lowercase hex digits
    of the byte sum of [body] mod 256.  Inside the body the bytes
    [$ # } *] are escaped as ['}'] followed by the byte XOR 0x20, and
    (in replies) runs of a repeated byte may be run-length encoded as
    the byte, ['*'], and a printable count character [c] meaning
    "repeat the previous byte [Char.code c - 29] more times".  Counts
    that would encode as ['# $ * + - }'] are skipped (the framing and
    ack characters must never appear raw; ['}'] is avoided so a decoder
    that unescapes first still works).

    In ack mode every good packet is answered with ['+'] and every bad
    one (checksum or encoding) with ['-'], which makes the sender
    retransmit; [QStartNoAckMode] switches both ends to no-ack, where
    acks are neither sent nor expected.  {!conn} tracks all of that per
    connection, on top of a {!Gdb_transport.t}. *)

(** {1 Body codec (pure functions, property-tested)} *)

val checksum : string -> int
(** Byte sum mod 256 of the (already encoded) body. *)

val encode_body : ?rle:bool -> string -> string
(** Escape special bytes; with [rle] also run-length encode runs of
    four or more.  [encode_body] then [decode_body] is the identity for
    every payload. *)

val decode_body : string -> (string, string) result
(** Undo escaping and run-length encoding.  [Error] describes the first
    malformed construct (dangling escape, leading or out-of-range run). *)

val frame : ?rle:bool -> string -> string
(** The full wire form [$<encoded body>#<ck>] of a payload. *)

(** {1 Hex helpers (shared by the stub, the client and the tests)} *)

val to_hex : string -> string
val of_hex : string -> (string, string) result

val hex64_le : int -> string
(** 16 hex chars: the value as 8 little-endian bytes (register wire
    encoding). *)

val int_of_hex64_le : string -> (int, string) result

val parse_hex_int : string -> int option
(** A plain big-endian hex number as found in [m addr,len] fields;
    accepts an optional sign and [0x] prefix. *)

(** {1 Connections} *)

type conn

val conn : ?rle:bool -> Gdb_transport.t -> conn
(** A packet conversation over a transport, starting in ack mode.
    [rle] chooses whether {e outgoing} packets use run-length encoding
    (servers say yes; commands are too short to benefit). *)

val send : conn -> string -> unit
(** Frame and transmit a payload.  The wire frame is remembered so a
    later ['-'] from the peer (seen during {!poll}) retransmits it. *)

val poll : conn -> [ `Packet of string | `Empty | `Eof ]
(** Pump the transport: consume acks (['+'] clears the retransmit slot,
    ['-'] retransmits), NAK and drop malformed frames, answer good
    frames with ['+'] when in ack mode, and return the next decoded
    payload.  [`Empty] means no complete frame is available yet on a
    non-blocking transport; blocking transports only return [`Packet]
    or [`Eof]. *)

val set_ack_mode : conn -> bool -> unit
val ack_mode : conn -> bool
val eof : conn -> bool
val transport : conn -> Gdb_transport.t
