lib/workloads/wl_common.ml: Asm Buffer Bytes Char Entropy Guest Insn Int64 Kernel List Printf String Sysno Vfs
