(** The GDB remote-protocol stub: maps RSP commands onto a replay
    {!Debugger} session (paper §1, §6.1 — reverse-execution debugging
    is rr's headline application).

    Supported commands and their Debugger mapping (the full table lives
    in DESIGN.md §4f):

    - [qSupported], [QStartNoAckMode], [?], [qC], [qAttached]
    - [g] / [p n] — {!Debugger.regs} of the current thread
    - [m addr,len] — {!Debugger.read_mem}; [E03] on unmapped addresses
    - [c] / [s] — forward continue / one-frame step
    - [bc] / [bs] — reverse continue / step via checkpoint restore
    - [Z0/z0 addr] — software breakpoints, a pc-match table kept here
      (frames are the time axis, so a hit is "a frame whose recorded
      registers land on addr")
    - [Z2..Z4/z2..z4 addr,len] — watchpoints; reverse hits resolve
      through {!Debugger.last_change}, forward hits through sampling
    - [H], [T tid], [qfThreadInfo]/[qsThreadInfo] — threads from
      {!Debugger.live_tids}; stop replies carry [thread:<tid>;]
    - [qRcmd,<hex>] — monitor commands [checkpoint], [restart N],
      [when], [stats]
    - [D] / [k] — detach / kill (both end the session; replay state
      stays valid)

    Stop replies: [T05thread:t;] (plain stop), [T05swbreak:;thread:t;],
    [T05watch:a;thread:t;], [T05replaylog:begin;thread:t;] when reverse
    execution exhausts the trace (frame 0 — never a hang),
    [T05replaylog:end;thread:t;] at the trace end without an exit
    frame, and [Wxx] when the recorded process exited.

    Telemetry: counts [gdb.packets] and [gdb.reverse_seeks], times
    every dispatch under the [gdb.cmd] span. *)

type t

val create : ?rle:bool -> Debugger.t -> Gdb_transport.t -> t
(** Serve [d] over the transport.  [rle] (default true) run-length
    encodes replies. *)

val pump : t -> unit
(** Process every packet currently available on the transport and
    return.  This is the drive mode for the in-memory transport: the
    scripted client pumps the server between its own polls. *)

val run : t -> unit
(** Serve until detach/kill or transport EOF — the drive mode for
    blocking (socket) transports.  On a drained non-blocking transport
    this returns instead of spinning. *)

val finished : t -> bool
(** The client detached ([D]) or killed ([k]) the session. *)

val debugger : t -> Debugger.t

val frame_pc : Event.t -> int option
(** The program counter a frame's recorded registers land on — the
    breakpoint-match key used by [c]/[bc] scans.  Exposed so tests can
    compute expected stop positions from trace data. *)
