lib/isa/mem.mli: Bytes
