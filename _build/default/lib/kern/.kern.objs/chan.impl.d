lib/kern/chan.ml: Buffer Bytes List Queue
