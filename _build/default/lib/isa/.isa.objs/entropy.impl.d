lib/isa/entropy.ml: Int64
