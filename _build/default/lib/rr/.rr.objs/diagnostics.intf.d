lib/rr/diagnostics.mli: Fmt Kernel
