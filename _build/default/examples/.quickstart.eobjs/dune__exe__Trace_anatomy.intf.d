examples/trace_anatomy.mli:
