lib/workloads/wl_samba.ml: Asm Guest Insn Kernel String Vfs Wl_common Workload
