(* A reverse-execution debugger over replay (paper §1, §6.1).

   Time is measured in trace-event indices.  Forward execution replays
   frames; *reverse* execution restores the nearest earlier checkpoint
   and replays forward — exactly rr's scheme, made cheap by COW address-
   space checkpoints ("most checkpoints are never resumed", so creating
   one must cost almost nothing).

   Seeks are *index-aware*: when the trace carries a persistent
   {!Trace_index.t} (built by [Trace_indexer], stored as 'P'/'K'
   records), a seek may restore a durable checkpoint decoded straight
   from the trace — so a freshly reopened trace jumps to frame N in
   O(N mod interval) instead of replaying from frame 0.  Every indexed
   answer is counted under [index.hit]; every scan fallback (no index,
   or a blob that fails to decode/restore) under [index.fallback].

   The typed query surface lives in {!Query}: [seek_to_frame],
   [seek_to_time], [prev_exec], [last_write] — all result-typed, all
   answering from the index when present with transparent fallback to
   the scans they replace. *)

module E = Event
module T = Task

exception Debug_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Debug_error s)) fmt

(* ---- options --------------------------------------------------------- *)

type opts = {
  replay : Replayer.opts;
  checkpoint_every : int;
  use_index : bool;
}

let default_opts =
  { replay = Replayer.default_opts; checkpoint_every = 32; use_index = true }

(* Smart constructor: a cadence ≤ 0 would divide by zero in [step];
   clamp rather than trust it (the make_opts convention). *)
let make_opts ?(replay = Replayer.default_opts) ?(checkpoint_every = 32)
    ?(use_index = true) () =
  { replay; checkpoint_every = max 1 checkpoint_every; use_index }

type t = {
  trace : Trace.t;
  opts : opts;
  mutable session : Replayer.t;
  (* Checkpoints as a sorted dynamic array (ascending frame index,
     first [n_checkpoints] slots live).  A long session takes thousands
     of them, and every backward seek looks one up: membership and
     nearest-≤ queries are O(log n) binary searches, insertion is an
     ordered shift (almost always an append — execution moves forward). *)
  mutable checkpoints : (int * Replayer.snapshot) array;
  mutable n_checkpoints : int;
  mutable checkpoints_taken : int;
  mutable checkpoints_restored : int;
}

let pos d = Replayer.cursor_index d.session

let n_events d = Trace.n_events d.trace

let at_end d = pos d >= n_events d

let trace d = d.trace

let opts d = d.opts

let checkpoint_every d = d.opts.checkpoint_every

let n_checkpoints d = d.n_checkpoints

let checkpoints_taken d = d.checkpoints_taken

let checkpoints_restored d = d.checkpoints_restored

let checkpoint_frames d =
  List.init d.n_checkpoints (fun i -> fst d.checkpoints.(i))

(* The persistent index, when this session is allowed to use it.  Looked
   up per query (not cached at [create]) so an index attached after the
   session started — e.g. by [Trace_indexer.build_and_attach] — is
   picked up transparently. *)
let index d = if d.opts.use_index then Trace.index d.trace else None

let indexed d = index d <> None

let clock d = Kernel.now (Replayer.kernel d.session)

(* Greatest live slot with frame index ≤ [target], or -1. *)
let cp_search d target =
  let lo = ref 0 and hi = ref (d.n_checkpoints - 1) and best = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if fst d.checkpoints.(mid) <= target then begin
      best := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !best

let cp_insert d idx snap =
  let at = cp_search d idx + 1 in
  let cap = Array.length d.checkpoints in
  if d.n_checkpoints = cap then begin
    let grown = Array.make (max 8 (2 * cap)) (idx, snap) in
    Array.blit d.checkpoints 0 grown 0 d.n_checkpoints;
    d.checkpoints <- grown
  end;
  Array.blit d.checkpoints at d.checkpoints (at + 1) (d.n_checkpoints - at);
  d.checkpoints.(at) <- (idx, snap);
  d.n_checkpoints <- d.n_checkpoints + 1

let take_checkpoint d =
  let idx = pos d in
  let i = cp_search d idx in
  if i < 0 || fst d.checkpoints.(i) <> idx then begin
    let snap = Replayer.snapshot d.session in
    cp_insert d idx snap;
    d.checkpoints_taken <- d.checkpoints_taken + 1
  end

let create ?(opts = default_opts) trace =
  (* Re-clamp: [opts] may be a literal, not a [make_opts] product. *)
  let opts = { opts with checkpoint_every = max 1 opts.checkpoint_every } in
  let d =
    { trace;
      opts;
      session = Replayer.start ~opts:opts.replay trace;
      checkpoints = [||];
      n_checkpoints = 0;
      checkpoints_taken = 0;
      checkpoints_restored = 0 }
  in
  take_checkpoint d;
  d

let step d =
  if Replayer.at_end d.session then fail "at end of trace";
  let e = Replayer.step d.session in
  if pos d mod d.opts.checkpoint_every = 0 then take_checkpoint d;
  e

(* ---- seeking --------------------------------------------------------- *)

let tm_span_seek = Telemetry.span "replay.seek"
let tm_index_hit = Telemetry.counter "index.hit"
let tm_index_fallback = Telemetry.counter "index.fallback"

let restore_mem d i =
  let _, snap = d.checkpoints.(i) in
  d.session <- Replayer.restore_exn ~opts:d.opts.replay d.trace snap;
  d.checkpoints_restored <- d.checkpoints_restored + 1

(* Restore a durable checkpoint straight out of the trace.  The blob is
   derived data: a decode or identity failure is a fallback, never an
   error — the live checkpoint array still covers the seek. *)
let try_restore_durable d frame blob =
  match Replayer.decode_snapshot blob with
  | exception Codec.Corrupt _ ->
    Telemetry.incr tm_index_fallback;
    false
  | snap -> (
    match Replayer.restore ~opts:d.opts.replay d.trace snap with
    | Error _ ->
      Telemetry.incr tm_index_fallback;
      false
    | Ok session ->
      d.session <- session;
      d.checkpoints_restored <- d.checkpoints_restored + 1;
      Telemetry.incr tm_index_hit;
      (* Memoize as a live checkpoint so the next seek into this region
         skips the decode.  [frame] beat every live slot ≤ target, so no
         live checkpoint exists there yet. *)
      cp_insert d frame snap;
      true)

let seek d target =
  if target < 0 || target > n_events d then fail "seek out of range";
  Telemetry.timed tm_span_seek @@ fun () ->
  (* Pick the best base to replay forward from: the current position
     (forward seeks), the nearest live checkpoint (reverse execution,
     §6.1), or — strictly better than both — a durable checkpoint from
     the persistent index (O(delta) seeks on a freshly reopened trace). *)
  let here = if pos d <= target then pos d else -1 in
  let mem_i = cp_search d target in
  let mem = if mem_i >= 0 then fst d.checkpoints.(mem_i) else -1 in
  let base = max here mem in
  let durable =
    match index d with
    | None -> None
    | Some ix -> (
      match Trace_index.nearest_checkpoint ix target with
      | Some (frame, blob) when frame > base -> Some (frame, blob)
      | _ -> None)
  in
  let restored =
    match durable with
    | Some (frame, blob) -> try_restore_durable d frame blob
    | None -> false
  in
  if (not restored) && here < 0 then begin
    if mem_i < 0 then fail "no checkpoint at or before %d" target;
    restore_mem d mem_i
  end;
  while pos d < target do
    ignore (step d)
  done

(* At frame 0 there is no earlier state: a no-op, not an error — the
   stub layer turns it into a "history exhausted" stop reply. *)
let reverse_step d = if pos d > 0 then seek d (pos d - 1)

(* Static frame searches (frames are data; no execution needed).  Both
   delegate to the chunk-indexed reader, which decodes lazily and can
   skip whole chunks when given a kind mask. *)
let find_event ?kind_mask d ~from p = Trace.Reader.find_from ?kind_mask d.trace from p

let rfind_event ?kind_mask d ~before p =
  Trace.Reader.rfind_before ?kind_mask d.trace before p

(* Run forward to the next frame satisfying [p]; position lands just
   after it.  Returns the frame index. *)
let continue_to d p =
  match find_event d ~from:(pos d) p with
  | None -> None
  | Some i ->
    seek d (i + 1);
    Some i

(* Reverse-continue: land just after the previous matching frame,
   skipping a hit at the current position (gdb semantics).  From frame 0
   the search window is empty: [None], position untouched. *)
let reverse_continue_to d p =
  if pos d = 0 then None
  else
    match rfind_event d ~before:(pos d - 1) p with
    | None -> None
    | Some i ->
      seek d (i + 1);
      Some i

let frame d i =
  if i < 0 || i >= n_events d then fail "frame %d out of range" i
  else Trace.Reader.frame d.trace i

let exit_status d = (Replayer.stats_of d.session).Replayer.exit_status

(* Public checkpoint control for the stub's `qRcmd checkpoint`: reuses
   the internal dedup'ing take. *)
let take_checkpoint d =
  take_checkpoint d;
  pos d

(* ---- state inspection ------------------------------------------------ *)

let task d tid =
  match Kernel.find_task (Replayer.kernel d.session) tid with
  | Some t -> t
  | None -> fail "no task %d at event %d" tid (pos d)

let live_tids d =
  List.filter_map
    (fun t -> if T.is_alive t then Some t.T.tid else None)
    (Kernel.all_tasks (Replayer.kernel d.session))

let regs d tid =
  let t = task d tid in
  (Cpu.copy_regs t.T.cpu, t.T.cpu.Cpu.pc)

let read_mem d tid addr len =
  let t = task d tid in
  try Addr_space.read_bytes ~force:true t.T.cpu.Cpu.space addr len
  with Addr_space.Segv _ -> fail "address %#x not mapped in task %d" addr tid

let read_word d tid addr =
  let t = task d tid in
  try Addr_space.read_u64 ~force:true t.T.cpu.Cpu.space addr
  with Addr_space.Segv _ -> fail "address %#x not mapped in task %d" addr tid

let sample d tid addr len =
  match Kernel.find_task (Replayer.kernel d.session) tid with
  | None -> None
  | Some t when not (T.is_alive t) -> None
  | Some t -> (
    try Some (Addr_space.read_bytes ~force:true t.T.cpu.Cpu.space addr len)
    with Addr_space.Segv _ -> None)

(* ---- scan fallbacks --------------------------------------------------

   The pre-index algorithms, kept verbatim: indexed answers are defined
   to be byte-identical to these, so they double as the reference
   implementation (the property tests compare against them). *)

(* "When did [addr..addr+len) in task [tid] last change before frame
   [upto]?"  Replays forward from the start (checkpoint-accelerated by
   seek) sampling the region after every frame. *)
let scan_last_write d ~tid ~addr ~len ~upto =
  let saved = pos d in
  seek d 0;
  let prev = ref (sample d tid addr len) in
  let last = ref None in
  while pos d < upto do
    ignore (step d);
    let now = sample d tid addr len in
    (match (!prev, now) with
    | Some a, Some b when not (Bytes.equal a b) -> last := Some (pos d - 1)
    | (Some _ | None), (Some _ | None) -> () (* death/birth is not a write *));
    prev := now
  done;
  seek d saved;
  !last

(* Largest position whose virtual-clock reading is ≤ [time], by forward
   replay; [None] when even position 0 is later.  Position is left at
   the answer (or restored on [None]). *)
let scan_time d time =
  let saved = pos d in
  seek d 0;
  if clock d > time then begin
    seek d saved;
    None
  end
  else begin
    let best = ref (pos d) in
    while (not (at_end d)) && clock d <= time do
      ignore (step d);
      if clock d <= time then best := pos d
    done;
    seek d !best;
    Some !best
  end

(* A write-candidate is verified exactly as the scan observes a change:
   sample at position [f], apply frame [f], sample again; a change is
   two live samples that differ (death/birth is not a write). *)
let verify_write d ~tid ~addr ~len f =
  seek d f;
  let a = sample d tid addr len in
  ignore (step d);
  let b = sample d tid addr len in
  match (a, b) with
  | Some a, Some b -> not (Bytes.equal a b)
  | (Some _ | None), (Some _ | None) -> false

(* ---- the typed query surface ----------------------------------------- *)

module Query = struct
  type error = Out_of_range of { what : string; value : int; min : int; max : int }

  let pp_error ppf (Out_of_range { what; value; min; max }) =
    Fmt.pf ppf "%s %d out of range [%d, %d]" what value min max

  let error_to_string = Fmt.to_to_string pp_error

  let frame_range d ~what value k =
    if value < 0 || value > n_events d then
      Error (Out_of_range { what; value; min = 0; max = n_events d })
    else k ()

  let seek_to_frame d target =
    frame_range d ~what:"frame" target @@ fun () ->
    seek d target;
    Ok ()

  let seek_to_time d time =
    match index d with
    | Some ix -> (
      Telemetry.incr tm_index_hit;
      match Trace_index.frame_of_time ix time with
      | Some p ->
        seek d p;
        Ok p
      | None ->
        Error
          (Out_of_range
             { what = "time";
               value = time;
               min = Trace_index.clock_at ix 0;
               max = max_int }))
    | None -> (
      Telemetry.incr tm_index_fallback;
      match scan_time d time with
      | Some p -> Ok p
      | None ->
        (* [scan_time] restored the position; the clock at frame 0 is
           what the failed comparison was made against. *)
        let saved = pos d in
        seek d 0;
        let min = clock d in
        seek d saved;
        Error (Out_of_range { what = "time"; value = time; min; max = max_int }))

  let prev_exec ?before d ~pc =
    let before = match before with Some b -> b | None -> pos d in
    frame_range d ~what:"before" before @@ fun () ->
    if before = 0 then Ok None
    else
      match index d with
      | Some ix ->
        Telemetry.incr tm_index_hit;
        Ok (Trace_index.prev_exec ix ~pc ~before)
      | None ->
        Telemetry.incr tm_index_fallback;
        (* [rfind_before] is already exclusive: last frame < [before]. *)
        Ok (rfind_event d ~before (fun e -> E.frame_pc e = Some pc))

  let last_write ?before d ~tid ~addr ~len =
    let before = match before with Some b -> b | None -> pos d in
    frame_range d ~what:"before" before @@ fun () ->
    match index d with
    | Some ix ->
      Telemetry.incr tm_index_hit;
      (* Candidates are a page-granular superset (plus every unbounded-
         effects frame); sampling verification keeps the answer
         byte-identical to the scan.  Newest first, so the first
         verified candidate is the answer. *)
      let candidates = Trace_index.write_candidates ix ~addr ~len ~before in
      let saved = pos d in
      let rec first = function
        | [] -> None
        | f :: rest ->
          if verify_write d ~tid ~addr ~len f then Some f else first rest
      in
      let r = first candidates in
      seek d saved;
      Ok r
    | None ->
      Telemetry.incr tm_index_fallback;
      Ok (scan_last_write d ~tid ~addr ~len ~upto:before)
end

(* ---- deprecated scan API (reimplemented over Query) ------------------ *)

let last_change d ~tid ~addr ~len =
  match Query.last_write d ~tid ~addr ~len with
  | Ok r -> r
  | Error _ -> assert false (* [before] defaults to [pos], always in range *)
