(* Record/replay integration tests: record a guest workload, replay the
   trace against a fresh kernel with different entropy, and require exact
   user-space equivalence. *)

module K = Kernel
module T = Task
module G = Guest

let ( @. ) = List.append

(* A result cell every test program writes its observations into. *)
let result_cell = 0x120000
let result_len = 64

(* Record [build], then replay, then compare the result cell and exit
   status between the recording and the replay. *)
let roundtrip ?(rec_opts = Recorder.default_opts) ?(rep_opts = Replayer.default_opts)
    ?(setup = fun _ -> ()) build =
  let full_setup k =
    Vfs.mkdir_p (K.vfs k) "/bin";
    setup k;
    let b = G.create () in
    build k b;
    let img = G.build b ~name:"t" () in
    K.install_image k ~path:"/bin/t" img
  in
  let trace, rstats, rk = Recorder.record ~opts:rec_opts ~setup:full_setup ~exe:"/bin/t" () in
  let pstats, pk = Replayer.replay ~opts:rep_opts trace in
  (trace, rstats, rk, pstats, pk)

let final_space k tid =
  (* The address space of the (possibly dead) process: processes release
     their spaces at death, so capture state via a probe task is not
     possible; instead tests read the cell before exit by writing it to a
     file, or compare exit codes.  For live comparisons we use the VFS. *)
  ignore (k, tid)

let count_frames p trace =
  Trace.Reader.fold (fun _ e acc -> if p e then acc + 1 else acc) trace 0

let check_same_exit rstats pstats =
  Alcotest.(check (option int))
    "exit status equal" rstats.Recorder.exit_status pstats.Replayer.exit_status

(* --- basic scenarios -------------------------------------------------- *)

(* getpid + getrandom + rdtsc results written to a file: all three are
   nondeterministic inputs that must be recorded and replayed bit-exactly
   even though the replay kernel has different entropy. *)
let nondet_inputs_prog _k b =
  let buf = G.bss b 64 in
  G.emit b
    (G.sc Sysno.getpid []
    @. [ Asm.movi 9 result_cell; Asm.store 0 9 0 ]
    @. G.sc Sysno.getrandom [ G.imm buf; G.imm 16 ]
    @. [ Asm.movi 9 buf; Asm.load 10 9 0 ]
    @. [ Asm.movi 9 (result_cell + 8); Asm.store 10 9 0 ]
    @. [ Asm.I (Insn.Rdtsc 11) ]
    @. [ Asm.movi 9 (result_cell + 16); Asm.store 11 9 0 ]
    @. G.sc Sysno.gettimeofday [ G.imm (result_cell + 24) ]
    (* persist the cell to a file so both runs can be compared *)
    @. G.sys_open b ~path:"/out" ~flags:(Sysno.o_creat lor Sysno.o_wronly)
    @. [ Asm.movr 7 0 ]
    @. G.sys_write ~fd:(G.reg 7) ~buf:(G.imm result_cell) ~len:(G.imm result_len)
    @. G.sys_exit_group 0)

let read_out k =
  match Vfs.resolve_opt (K.vfs k) "/out" with
  | Some { Vfs.kind = Vfs.Reg reg; _ } ->
    Bytes.to_string (Vfs.read (K.vfs k) reg ~off:0 ~len:result_len)
  | Some _ | None -> "<missing>"

let test_nondet_inputs_no_intercept () =
  let opts = { Recorder.default_opts with intercept = false } in
  let _trace, rstats, rk, pstats, _pk = roundtrip ~rec_opts:opts nondet_inputs_prog in
  check_same_exit rstats pstats;
  Alcotest.(check bool) "recorded run wrote /out" true (read_out rk <> "<missing>")

let test_nondet_inputs_intercepted () =
  let _trace, rstats, _rk, pstats, _pk = roundtrip nondet_inputs_prog in
  check_same_exit rstats pstats

(* The replay kernel must never have performed the file write: during
   replay "filesystem operations are not performed" (§2.1). *)
let test_replay_performs_no_io () =
  let _trace, _rstats, rk, _pstats, pk = roundtrip nondet_inputs_prog in
  Alcotest.(check bool) "record wrote the file" true
    (Vfs.resolve_opt (K.vfs rk) "/out" <> None);
  Alcotest.(check bool) "replay did not" true
    (Vfs.resolve_opt (K.vfs pk) "/out" = None)

(* A compute loop interrupted by preemptions: exercises sched events and
   exact execution-point delivery. *)
let test_preemption_points () =
  let build _k b =
    G.emit b
      (G.compute_loop b ~n:300_000
      @. [ Asm.movr 1 6; Asm.I (Insn.Alu (Insn.And, 1, Insn.Imm 0x7f)) ]
      @. G.sc Sysno.exit_group [ G.reg 1 ])
  in
  let opts = { Recorder.default_opts with timeslice_rcbs = 10_000 } in
  let trace, rstats, _rk, pstats, _pk = roundtrip ~rec_opts:opts build in
  check_same_exit rstats pstats;
  let scheds =
    count_frames (function Event.E_sched _ -> true | _ -> false) trace
  in
  Alcotest.(check bool)
    (Printf.sprintf "preemptions recorded (%d)" scheds)
    true (scheds >= 3)

(* Threads communicating through a pipe: blocking reads, desched events,
   scheduling. *)
let pipe_prog _k b =
  let fds = G.bss b 16 in
  let child_stack = G.bss b 4096 + 4096 in
  let buf = G.bss b 16 in
  G.emit b
    (G.sys_pipe ~fds_addr:fds
    @. G.sys_clone_thread ~child_sp:(G.imm child_stack)
    @. [ Asm.jz 0 "child" ]
    @. [ Asm.movi 9 fds; Asm.load 7 9 0 ]
    @. G.sys_read ~fd:(G.reg 7) ~buf:(G.imm buf) ~len:(G.imm 16)
    @. [ Asm.movr 11 0 ] (* bytes read *)
    @. [ Asm.movi 9 buf; Asm.load8 10 9 0 ]
    @. [ Asm.muli 11 100; Asm.addr_ 11 10; Asm.subi 11 160; Asm.movr 1 11 ]
    @. G.sc Sysno.exit_group [ G.reg 1 ]
    @. [ Asm.label "child" ]
    @. G.compute_loop b ~n:2000
    @. [ Asm.movi 9 fds; Asm.load 7 9 8 ]
    @. (let msg = G.str b "x" in
        G.sys_write ~fd:(G.reg 7) ~buf:(G.imm msg) ~len:(G.imm 1))
    @. G.sys_exit 0)

let test_pipe_threads_no_intercept () =
  let opts = { Recorder.default_opts with intercept = false } in
  let _, rstats, _, pstats, _ = roundtrip ~rec_opts:opts pipe_prog in
  check_same_exit rstats pstats;
  (* 1 byte read, 'x' = 120: 100 + 120 - 160 = 60 *)
  Alcotest.(check (option int)) "result" (Some 60) rstats.Recorder.exit_status

let test_pipe_threads_intercepted () =
  let _, rstats, _, pstats, _ = roundtrip pipe_prog in
  check_same_exit rstats pstats;
  Alcotest.(check (option int)) "result" (Some 60) rstats.Recorder.exit_status

(* Signal handler: asynchronous delivery point + frame replay. *)
let signal_prog _k b =
  let marker = G.bss b 8 in
  G.emit b
    ([ Asm.jmp "main" ]
    @. [ Asm.label "handler" ]
    @. [ Asm.movi 9 marker; Asm.store 1 9 0 ]
    @. G.sys_sigreturn
    @. [ Asm.label "main" ]
    @. [ Asm.lea 2 "handler" ]
    @. G.sys_sigaction ~signo:Signals.sigusr1 ~handler:(G.reg 2) ~mask:0
         ~flags:0
    @. G.sc Sysno.getpid []
    @. [ Asm.movr 7 0 ]
    @. G.sys_kill ~pid:(G.reg 7) ~signo:Signals.sigusr1
    @. G.compute_loop b ~n:100
    @. [ Asm.movi 9 marker; Asm.load 10 9 0; Asm.movr 1 10 ]
    @. G.sc Sysno.exit_group [ G.reg 1 ])

let test_signal_handler_replay () =
  let _, rstats, _, pstats, _ = roundtrip signal_prog in
  check_same_exit rstats pstats;
  Alcotest.(check (option int)) "handler observed signo"
    (Some Signals.sigusr1) rstats.Recorder.exit_status

(* fork + wait4 + exec. *)
let test_fork_exec_replay () =
  let setup k =
    let b2 = G.create () in
    G.emit b2 (G.sys_exit_group 9);
    K.install_image k ~path:"/bin/other" (G.build b2 ~name:"other" ())
  in
  let build _k b =
    let status_addr = G.bss b 8 in
    G.emit b
      (G.sys_fork
      @. [ Asm.jz 0 "child"; Asm.movr 7 0 ]
      @. G.sys_wait4 ~pid:(G.reg 7) ~status_addr:(G.imm status_addr)
      @. [ Asm.movi 9 status_addr; Asm.load 10 9 0; Asm.movr 1 10 ]
      @. G.sc Sysno.exit_group [ G.reg 1 ]
      @. [ Asm.label "child" ]
      @. G.sys_execve b ~path:"/bin/other"
      @. G.sys_exit_group 1)
  in
  let _, rstats, _, pstats, _ = roundtrip ~setup build in
  check_same_exit rstats pstats;
  Alcotest.(check (option int)) "exec'd child status seen" (Some 9)
    rstats.Recorder.exit_status

(* RDTSC trapping: the value must replay exactly even though replay TSC
   would differ wildly. *)
let test_rdtsc_exact () =
  let build _k b =
    G.emit b
      ([ Asm.I (Insn.Rdtsc 5);
         Asm.I (Insn.Rdtsc 6);
         Asm.I (Insn.Alu (Insn.Sub, 6, Insn.Reg 5));
         (* exit code = (t2 - t1) mod 256: replay must reproduce it *)
         Asm.I (Insn.Alu (Insn.And, 6, Insn.Imm 0xff));
         Asm.movr 1 6 ]
      @. G.sc Sysno.exit_group [ G.reg 1 ])
  in
  let _, rstats, _, pstats, _ = roundtrip build in
  check_same_exit rstats pstats

(* mmap (anon + file-backed) replays with identical layout and data. *)
let test_mmap_replay () =
  let setup k =
    let reg = Vfs.create_file (K.vfs k) "/data.bin" in
    let data = Bytes.init 8192 (fun i -> Char.chr ((i * 7) land 0xff)) in
    ignore (Vfs.write (K.vfs k) reg ~off:0 data)
  in
  let build _k b =
    G.emit b
      (G.sys_mmap ~len:(G.imm 8192) ~prot:Mem.prot_rw ~flags:1
      @. [ Asm.movr 7 0 ] (* anon addr *)
      @. [ Asm.movi 10 77; Asm.store 10 7 0 ]
      @. G.sys_open b ~path:"/data.bin" ~flags:Sysno.o_rdonly
      @. [ Asm.movr 8 0 ]
      @. G.sc Sysno.mmap
           [ G.imm 0; G.imm 8192; G.imm Mem.prot_r; G.imm 0; G.reg 8; G.imm 0 ]
      @. [ Asm.movr 9 0 ] (* file-backed addr *)
      @. [ Asm.load8 11 9 3 ] (* data.bin[3] = 21 *)
      @. [ Asm.load 12 7 0 ] (* anon cell = 77 *)
      @. [ Asm.addr_ 11 12; Asm.movr 1 11 ] (* 21 + 77 = 98 *)
      @. G.sc Sysno.exit_group [ G.reg 1 ])
  in
  let _, rstats, _, pstats, _ = roundtrip ~setup build in
  check_same_exit rstats pstats;
  Alcotest.(check (option int)) "mapped data read" (Some 98)
    rstats.Recorder.exit_status

(* munmap/mprotect must be re-performed during replay (K_perform). *)
let test_munmap_replay () =
  let build _k b =
    G.emit b
      (G.sys_mmap ~len:(G.imm 8192) ~prot:Mem.prot_rw ~flags:1
      @. [ Asm.movr 7 0 ]
      @. G.sc Sysno.munmap [ G.reg 7; G.imm 8192 ]
      @. G.sys_mmap ~len:(G.imm 4096) ~prot:Mem.prot_rw ~flags:1
      @. [ Asm.movr 8 0 ]
      @. [ Asm.movi 10 5; Asm.store 10 8 0; Asm.load 11 8 0; Asm.movr 1 11 ]
      @. G.sc Sysno.exit_group [ G.reg 1 ])
  in
  let _, rstats, _, pstats, _ = roundtrip build in
  check_same_exit rstats pstats;
  Alcotest.(check (option int)) "remap worked" (Some 5) rstats.Recorder.exit_status

(* The syscallbuf fast path really was used: buffered syscalls appear in
   flush frames and the site got patched. *)
let test_syscallbuf_used () =
  let build _k b =
    let buf = G.bss b 128 in
    G.emit b
      (G.sys_open b ~path:"/f" ~flags:(Sysno.o_creat lor Sysno.o_rdwr)
      @. [ Asm.movr 7 0; Asm.movi 8 40 ]
      @. [ Asm.label "loop" ]
      @. G.sys_write ~fd:(G.reg 7) ~buf:(G.imm buf) ~len:(G.imm 64)
      @. [ Asm.subi 8 1 ]
      @. [ Asm.jnz 8 "loop" ]
      @. G.sys_exit_group 0)
  in
  let trace, rstats, _, pstats, _ = roundtrip build in
  check_same_exit rstats pstats;
  Alcotest.(check bool) "sites were patched" true (rstats.Recorder.n_patched_sites >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "buffered syscalls dominate (%d buffered)"
       (Trace.stats trace).Trace.n_buffered_syscalls)
    true
    ((Trace.stats trace).Trace.n_buffered_syscalls >= 30)

(* Interception drastically reduces ptrace stops (the point of §3). *)
let test_interception_reduces_stops () =
  let build _k b =
    let buf = G.bss b 64 in
    G.emit b
      (G.sys_open b ~path:"/f" ~flags:(Sysno.o_creat lor Sysno.o_rdwr)
      @. [ Asm.movr 7 0; Asm.movi 8 100 ]
      @. [ Asm.label "loop" ]
      @. G.sys_write ~fd:(G.reg 7) ~buf:(G.imm buf) ~len:(G.imm 8)
      @. [ Asm.subi 8 1 ]
      @. [ Asm.jnz 8 "loop" ]
      @. G.sys_exit_group 0)
  in
  let run opts =
    let full_setup k = Vfs.mkdir_p (K.vfs k) "/bin" in
    ignore full_setup;
    let _, rstats, _, _, _ = roundtrip ~rec_opts:opts build in
    rstats
  in
  let with_buf = run Recorder.default_opts in
  let without = run { Recorder.default_opts with intercept = false } in
  Alcotest.(check bool)
    (Printf.sprintf "stops: %d with vs %d without" with_buf.Recorder.n_ptrace_stops
       without.Recorder.n_ptrace_stops)
    true
    (with_buf.Recorder.n_ptrace_stops * 2 < without.Recorder.n_ptrace_stops);
  Alcotest.(check bool)
    (Printf.sprintf "time: %d with vs %d without" with_buf.Recorder.wall_time
       without.Recorder.wall_time)
    true
    (with_buf.Recorder.wall_time < without.Recorder.wall_time)

(* Chaos mode still replays faithfully. *)
let test_chaos_mode_roundtrip () =
  let opts = { Recorder.default_opts with chaos = true; timeslice_rcbs = 2000 } in
  let _, rstats, _, pstats, _ = roundtrip ~rec_opts:opts pipe_prog in
  check_same_exit rstats pstats

(* Replaying through the SYSEMU-only path (ablation) also works. *)
let test_sysemu_replay () =
  let rep_opts = { Replayer.default_opts with sysemu_all = true } in
  let _, rstats, _, pstats, _ =
    roundtrip ~rep_opts
      ~rec_opts:{ Recorder.default_opts with intercept = false }
      nondet_inputs_prog
  in
  check_same_exit rstats pstats

(* A corrupted recording (tampered register frame) must be detected. *)
let test_divergence_detected () =
  let trace, _, _, _, _ =
    roundtrip ~rec_opts:{ Recorder.default_opts with intercept = false }
      nondet_inputs_prog
  in
  (* Tamper: flip a recorded register in some syscall frame, rewriting
     the trace through map_frames (frames are no longer shared mutable
     state; the store re-encodes the surgically altered chunk). *)
  let tampered = ref false in
  let trace =
    Trace.map_frames
      (fun _ e ->
        match e with
        | Event.E_syscall ({ regs_after; _ } as sc) when not !tampered ->
          tampered := true;
          let regs_after = Array.copy regs_after in
          regs_after.(3) <- regs_after.(3) + 123456;
          Event.E_syscall { sc with regs_after }
        | e -> e)
      trace
  in
  Alcotest.(check bool) "found a frame to tamper" true !tampered;
  match Replayer.replay trace with
  | exception Replayer.Divergence _ -> ()
  | _ -> Alcotest.fail "tampered trace replayed without divergence"

(* RDRAND (paper §2.6): the recorder patches RDRAND sites to emulation
   hooks; the value must replay exactly despite fresh replay entropy. *)
let test_rdrand_patched () =
  let build _k b =
    G.emit b
      ([ Asm.I (Insn.Rdrand 5);
         Asm.I (Insn.Rdrand 6);
         Asm.I (Insn.Alu (Insn.Xor, 5, Insn.Reg 6));
         Asm.I (Insn.Alu (Insn.And, 5, Insn.Imm 0xff));
         Asm.movr 1 5 ]
      @. G.sc Sysno.exit_group [ G.reg 1 ])
  in
  let trace, rstats, _, pstats, _ = roundtrip build in
  check_same_exit rstats pstats;
  (* the patches must be in the trace *)
  let patches =
    count_frames (function Event.E_patch _ -> true | _ -> false) trace
  in
  Alcotest.(check bool)
    (Printf.sprintf "rdrand sites patched (%d)" patches)
    true (patches >= 2)

(* Memory checksums (paper §6.2): periodic digests catch silent memory
   corruption that register checks cannot see. *)
let test_checksums_pass () =
  let rec_opts = { Recorder.default_opts with checksum_every = 2 } in
  let trace, rstats, _, pstats, _ = roundtrip ~rec_opts nondet_inputs_prog in
  check_same_exit rstats pstats;
  let checksums =
    count_frames (function Event.E_checksum _ -> true | _ -> false) trace
  in
  Alcotest.(check bool)
    (Printf.sprintf "checksum frames present (%d)" checksums)
    true (checksums >= 2)

(* Corrupt the first syscall frame carrying output data; returns the
   rewritten trace, or None if nothing was eligible. *)
let tamper_first_write_data trace =
  let tampered = ref false in
  let trace =
    Trace.map_frames
      (fun _ e ->
        match e with
        | Event.E_syscall ({ writes = { Event.data; addr } :: rest; _ } as sc)
          when (not !tampered) && String.length data > 0 ->
          tampered := true;
          let data = "\xFF" ^ String.sub data 1 (String.length data - 1) in
          Event.E_syscall { sc with writes = { Event.data; addr } :: rest }
        | e -> e)
      trace
  in
  if !tampered then Some trace else None

let test_checksum_catches_silent_corruption () =
  (* Without checksums, corrupted syscall output data replays "fine" as
     long as the guest never branches on it; with checksums the replay
     diverges. *)
  let build _k b =
    let buf = G.bss b 64 in
    G.emit b
      (G.sc Sysno.getrandom [ G.imm buf; G.imm 32 ]
      @. G.compute_loop b ~n:50
      @. G.sys_exit_group 0)
  in
  let rec_opts =
    { Recorder.default_opts with checksum_every = 1; intercept = false }
  in
  let trace, _, _, _, _ = roundtrip ~rec_opts build in
  let trace =
    match tamper_first_write_data trace with
    | Some t -> t
    | None -> Alcotest.fail "found no data to tamper"
  in
  match Replayer.replay trace with
  | exception Replayer.Divergence msg ->
    Alcotest.(check bool)
      ("diverged via checksum: " ^ msg)
      true
      (String.length msg > 0)
  | _ -> Alcotest.fail "silent corruption was not caught"

(* §2.3.2: tracee-level ptrace is emulated by the recorder (a process
   inspecting a sibling, the crash-reporter pattern). *)
let test_tracee_ptrace_emulated () =
  let build _k b =
    let cell = 0x130000 in
    let status_addr = G.bss b 8 in
    G.emit b
      (G.sys_fork
      @. [ Asm.jz 0 "child"; Asm.movr 7 0 ] (* r7 = child pid *)
      @. G.compute_loop b ~n:400 (* let the child publish its value *)
      @. G.sc Sysno.ptrace [ G.imm Sysno.ptrace_attach; G.reg 7 ]
      @. G.check_ok b
      @. G.sc Sysno.ptrace [ G.imm Sysno.ptrace_peekdata; G.reg 7; G.imm cell ]
      @. [ Asm.movr 11 0 ] (* peeked value *)
      @. G.sc Sysno.ptrace [ G.imm Sysno.ptrace_detach; G.reg 7 ]
      @. G.sys_kill ~pid:(G.reg 7) ~signo:Signals.sigkill
      @. G.sys_wait4 ~pid:(G.reg 7) ~status_addr:(G.imm status_addr)
      @. [ Asm.movr 1 11 ]
      @. G.sc Sysno.exit_group [ G.reg 1 ]
      @. [ Asm.label "child" ]
      @. [ Asm.movi 9 cell; Asm.movi 10 42; Asm.store 10 9 0 ]
      (* spin until killed *)
      @. [ Asm.label "spin" ]
      @. G.compute_loop b ~n:5000
      @. [ Asm.jmp "spin" ])
  in
  (* Runs only under the recorder: the kernel itself has no in-guest
     ptrace; the recorder provides it, as rr does on Linux. *)
  let full_setup k =
    Vfs.mkdir_p (K.vfs k) "/bin";
    let b = G.create () in
    build k b;
    K.install_image k ~path:"/bin/t" (G.build b ~name:"t" ())
  in
  let trace, rstats, _ = Recorder.record ~setup:full_setup ~exe:"/bin/t" () in
  Alcotest.(check (option int)) "peeked the sibling's cell" (Some 42)
    rstats.Recorder.exit_status;
  let pstats, _ = Replayer.replay trace in
  Alcotest.(check (option int)) "replay matches" (Some 42)
    pstats.Replayer.exit_status

(* Trace persistence: a saved trace file replays identically. *)
let test_trace_save_load () =
  let trace, rstats, _, _, _ = roundtrip nondet_inputs_prog in
  let path = Filename.temp_file "rrtrace" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Trace.save_exn trace path;
      let loaded = Trace.load_exn path in
      Alcotest.(check int) "frame count survives" (Trace.n_events trace)
        (Trace.n_events loaded);
      let pstats, _ = Replayer.replay loaded in
      Alcotest.(check (option int)) "loaded trace replays"
        rstats.Recorder.exit_status pstats.Replayer.exit_status)

let test_trace_load_rejects_garbage () =
  let path = Filename.temp_file "rrtrace" ".junk" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "definitely not a trace";
      close_out oc;
      match Trace.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "garbage accepted")

(* §2.4: asynchronous delivery points inside run-time-generated code
   force the replayer onto its single-stepping path (breakpoints cannot
   be planted in written text, §2.3.7). *)
let test_async_point_in_jitted_code () =
  let build _k b =
    let jit = 0x9000 in
    let enc i = match Insn.encode i with Some v -> v | None -> assert false in
    G.emit b
      ([ (* emit: mov r5, 1; add r5, 2; ret *)
         Asm.movi 1 jit;
         Asm.movi 2 (enc (Insn.Mov (5, Insn.Imm 1)));
         Asm.I (Insn.Emit (1, 2));
         Asm.movi 1 (jit + 1);
         Asm.movi 2 (enc (Insn.Alu (Insn.Add, 5, Insn.Imm 2)));
         Asm.I (Insn.Emit (1, 2));
         Asm.movi 1 (jit + 2);
         Asm.movi 2 (enc Insn.Ret);
         Asm.I (Insn.Emit (1, 2)) ]
      (* hammer the jitted function so preemptions land inside it *)
      @. [ Asm.movi 8 60_000; Asm.movi 7 jit ]
      @. [ Asm.label "hot";
           Asm.I (Insn.Callr 7);
           Asm.subi 8 1;
           Asm.jnz 8 "hot" ]
      @. [ Asm.movr 1 5 ]
      @. G.sc Sysno.exit_group [ G.reg 1 ])
  in
  let rec_opts = { Recorder.default_opts with timeslice_rcbs = 3_000 } in
  let trace, rstats, _, pstats, _ = roundtrip ~rec_opts build in
  check_same_exit rstats pstats;
  let scheds =
    count_frames (function Event.E_sched _ -> true | _ -> false) trace
  in
  Alcotest.(check bool)
    (Printf.sprintf "preemptions landed (%d)" scheds)
    true (scheds >= 5)

(* A threaded process forks: Linux semantics say only the calling thread
   is duplicated.  Exercises clone frames for both kinds in one trace. *)
let test_thread_then_fork () =
  let build _k b =
    let cell = 0x130000 in
    let child_stack = G.bss b 4096 + 4096 in
    let status_addr = G.bss b 8 in
    G.emit b
      (G.sys_clone_thread ~child_sp:(G.imm child_stack)
      @. [ Asm.jz 0 "thread" ]
      (* main: fork a worker process, reap it, add the thread's mark *)
      @. G.sys_fork
      @. [ Asm.jz 0 "forked"; Asm.movr 7 0 ]
      @. G.sys_wait4 ~pid:(G.reg 7) ~status_addr:(G.imm status_addr)
      @. G.compute_loop b ~n:2000 (* let the thread publish *)
      @. [ Asm.movi 9 status_addr;
           Asm.load 10 9 0;
           Asm.movi 9 cell;
           Asm.load 11 9 0;
           Asm.addr_ 10 11;
           Asm.movr 1 10 ]
      @. G.sc Sysno.exit_group [ G.reg 1 ]
      @. [ Asm.label "thread" ]
      @. [ Asm.movi 9 cell; Asm.movi 10 5; Asm.store 10 9 0 ]
      @. G.sys_exit 0
      @. [ Asm.label "forked" ]
      (* the forked process must NOT contain the sibling thread: its view
         of the cell is COW-private from fork time *)
      @. G.sys_exit_group 11)
  in
  let _, rstats, _, pstats, _ = roundtrip build in
  check_same_exit rstats pstats;
  (* 11 (forked child status) + 5 (thread's mark) *)
  Alcotest.(check (option int)) "combined result" (Some 16)
    rstats.Recorder.exit_status

(* Reverse execution over a checksummed trace: every restored checkpoint
   must reproduce bit-identical memory, or the E_checksum frames trip. *)
let test_debugger_checksummed_seeks () =
  let rec_opts =
    { Recorder.default_opts with checksum_every = 2; intercept = false }
  in
  let trace, _, _, _, _ = roundtrip ~rec_opts nondet_inputs_prog in
  let d =
    Debugger.create ~opts:(Debugger.make_opts ~checkpoint_every:2 ()) trace
  in
  let n = Debugger.n_events d in
  (* bounce around; every forward segment re-verifies the checksums *)
  List.iter
    (fun target -> Debugger.seek d (target mod (n + 1)))
    [ n; 1; n - 1; 2; n; 0; n ];
  Alcotest.(check int) "ended at the end" n (Debugger.pos d)

(* poll under record/replay: a traced multi-object blocking syscall. *)
let test_poll_roundtrip () =
  let build _k b =
    let fds1 = G.bss b 16 and fds2 = G.bss b 16 in
    let pfds = G.bss b 48 in
    let child_stack = G.bss b 4096 + 4096 in
    let msg = G.str b "q" in
    G.emit b
      (G.sys_pipe ~fds_addr:fds1
      @. G.sys_pipe ~fds_addr:fds2
      @. G.sys_clone_thread ~child_sp:(G.imm child_stack)
      @. [ Asm.jz 0 "child" ]
      @. [ Asm.movi 9 fds1; Asm.load 7 9 0 ]
      @. [ Asm.movi 9 fds2; Asm.load 8 9 0 ]
      @. [ Asm.movi 9 pfds;
           Asm.store 7 9 0;
           Asm.movi 10 Sysno.pollin;
           Asm.store 10 9 8;
           Asm.store 8 9 24;
           Asm.store 10 9 32 ]
      @. G.sc Sysno.poll [ G.imm pfds; G.imm 2 ]
      @. [ Asm.movr 11 0 ]
      @. [ Asm.movi 9 pfds; Asm.load 12 9 40 ]
      @. [ Asm.muli 11 10; Asm.addr_ 11 12; Asm.movr 1 11 ]
      @. G.sc Sysno.exit_group [ G.reg 1 ]
      @. [ Asm.label "child" ]
      @. G.compute_loop b ~n:2000
      @. [ Asm.movi 9 fds2; Asm.load 7 9 8 ]
      @. G.sys_write ~fd:(G.reg 7) ~buf:(G.imm msg) ~len:(G.imm 1)
      @. G.sys_exit 0)
  in
  let _, rstats, _, pstats, _ = roundtrip build in
  check_same_exit rstats pstats;
  (* 1 ready * 10 + POLLIN on entry 1 *)
  Alcotest.(check (option int)) "poll result" (Some 11)
    rstats.Recorder.exit_status

let suites =
  [ ( "rr.roundtrip",
      [ Alcotest.test_case "nondet inputs (traced)" `Quick
          test_nondet_inputs_no_intercept;
        Alcotest.test_case "nondet inputs (intercepted)" `Quick
          test_nondet_inputs_intercepted;
        Alcotest.test_case "replay performs no IO" `Quick
          test_replay_performs_no_io;
        Alcotest.test_case "preemption points" `Quick test_preemption_points;
        Alcotest.test_case "pipe threads (traced)" `Quick
          test_pipe_threads_no_intercept;
        Alcotest.test_case "pipe threads (intercepted)" `Quick
          test_pipe_threads_intercepted;
        Alcotest.test_case "signal handler" `Quick test_signal_handler_replay;
        Alcotest.test_case "fork + exec" `Quick test_fork_exec_replay;
        Alcotest.test_case "rdtsc exact" `Quick test_rdtsc_exact;
        Alcotest.test_case "mmap" `Quick test_mmap_replay;
        Alcotest.test_case "munmap/mprotect" `Quick test_munmap_replay;
        Alcotest.test_case "chaos mode" `Quick test_chaos_mode_roundtrip;
        Alcotest.test_case "sysemu-only replay" `Quick test_sysemu_replay;
        Alcotest.test_case "rdrand patched" `Quick test_rdrand_patched;
        Alcotest.test_case "tracee ptrace emulated" `Quick
          test_tracee_ptrace_emulated;
        Alcotest.test_case "memory checksums" `Quick test_checksums_pass;
        Alcotest.test_case "trace save/load" `Quick test_trace_save_load;
        Alcotest.test_case "trace load rejects garbage" `Quick
          test_trace_load_rejects_garbage;
        Alcotest.test_case "async point in jitted code" `Quick
          test_async_point_in_jitted_code;
        Alcotest.test_case "thread + fork combined" `Quick
          test_thread_then_fork;
        Alcotest.test_case "checksummed reverse execution" `Quick
          test_debugger_checksummed_seeks;
        Alcotest.test_case "poll roundtrip" `Quick test_poll_roundtrip;
        Alcotest.test_case "no scratch buffers" `Quick
          (fun () ->
            (* §2.3.1's ablation: with one task at a time, eliminating
               scratch changes nothing observable. *)
            let _, rstats, _, pstats, _ =
              roundtrip
                ~rec_opts:{ Recorder.default_opts with scratch = false }
                pipe_prog
            in
            check_same_exit rstats pstats;
            Alcotest.(check (option int)) "result" (Some 60)
              rstats.Recorder.exit_status) ] );
    ( "rr.syscallbuf",
      [ Alcotest.test_case "fast path used" `Quick test_syscallbuf_used;
        Alcotest.test_case "interception reduces stops" `Quick
          test_interception_reduces_stops ] );
    ( "rr.divergence",
      [ Alcotest.test_case "tampering detected" `Quick test_divergence_detected;
        Alcotest.test_case "checksums catch silent corruption" `Quick
          test_checksum_catches_silent_corruption ] ) ]
