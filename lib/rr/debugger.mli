(** A reverse-execution debugger over replay (paper §1, §6.1).

    Time is measured in trace-frame indices.  Forward execution replays
    frames; {e reverse} execution restores the nearest earlier checkpoint
    and replays forward — rr's scheme, cheap because checkpoints are
    copy-on-write address-space snapshots.

    When the trace carries a persistent {!Trace_index.t} (see
    [Trace_indexer] and [Trace.index]), seeks restore durable
    checkpoints decoded straight from the trace and the {!Query}
    functions answer from the index tables — a freshly reopened trace
    jumps anywhere in O(delta) instead of replaying from frame 0.
    Without an index every query transparently falls back to the scans
    it replaces; answers are identical either way.

    A session is abstract: checkpoints are internal state, inspected
    only through the accessors below.  This is the substrate the GDB
    remote-protocol stub ([lib/gdbstub]) drives. *)

exception Debug_error of string

type t

(** {2 Options} *)

type opts = {
  replay : Replayer.opts;  (** forwarded to the underlying replayer *)
  checkpoint_every : int;  (** live-checkpoint cadence (frames) *)
  use_index : bool;  (** answer from a persistent index when present *)
}

val default_opts : opts
(** [{replay = Replayer.default_opts; checkpoint_every = 32;
    use_index = true}]. *)

val make_opts :
  ?replay:Replayer.opts ->
  ?checkpoint_every:int ->
  ?use_index:bool ->
  unit ->
  opts
(** [default_opts] with the given fields overridden.  [checkpoint_every]
    is clamped to ≥ 1 — the make_opts convention: out-of-range values
    are corrected, not trusted. *)

val create : ?opts:opts -> Trace.t -> t
(** Start a session at frame 0, checkpointing every
    [opts.checkpoint_every] frames as execution moves forward.  The
    options are re-clamped, so a hand-built literal cannot smuggle in a
    cadence ≤ 0. *)

val pos : t -> int
(** Current position: the index of the next frame to apply. *)

val n_events : t -> int

val at_end : t -> bool
(** [pos d = n_events d]: every frame has been applied. *)

val trace : t -> Trace.t

val opts : t -> opts
(** The (re-clamped) options this session was created with. *)

val checkpoint_every : t -> int
(** [(opts d).checkpoint_every]. *)

val indexed : t -> bool
(** Whether queries can currently answer from a persistent index:
    [use_index] is set and the trace has one attached. *)

val clock : t -> int
(** The virtual-clock reading at the current position (deterministic
    across replays; what {!Query.seek_to_time} measures against). *)

val step : t -> Event.t
(** Apply the next frame; may take a checkpoint. *)

val seek : t -> int -> unit
(** Jump to any frame index.  Replays forward from the best available
    base: the current position, the nearest live checkpoint, or a
    durable checkpoint restored from the trace's persistent index
    (counted under [index.hit]; a blob that fails to decode or restore
    counts under [index.fallback] and the live checkpoints cover the
    seek). *)

val reverse_step : t -> unit
(** Step one frame backwards.  At frame 0 this is a no-op: the position
    is unchanged and no error is raised (the caller — e.g. the GDB stub
    — reports "history exhausted" to its user). *)

(** {2 Typed queries}

    The seek-first query surface.  Each query validates its arguments
    into a [result] rather than raising, answers from the persistent
    index when one is attached ([index.hit]) and falls back to the
    equivalent scan when not ([index.fallback]); the answer is defined
    to be identical either way. *)

module Query : sig
  type error =
    | Out_of_range of { what : string; value : int; min : int; max : int }

  val pp_error : error Fmt.t
  val error_to_string : error -> string

  val seek_to_frame : t -> int -> (unit, error) result
  (** {!seek} with a typed range check instead of {!Debug_error}. *)

  val seek_to_time : t -> int -> (int, error) result
  (** Seek to the largest position whose virtual-clock reading is
      [<= time]; returns that position.  Times past the end land on the
      final position; a time earlier than the clock at frame 0 is
      [Out_of_range] (with [min] the frame-0 reading) and the position
      is unchanged. *)

  val prev_exec : ?before:int -> t -> pc:int -> (int option, error) result
  (** Latest frame [f < before] (default: the current position) whose
      {!Event.frame_pc} is [pc] — the reverse-breakpoint primitive.
      [Ok None] when no earlier frame executed [pc].  Position is
      unchanged. *)

  val last_write :
    ?before:int -> t -> tid:int -> addr:int -> len:int -> (int option, error) result
  (** Reverse watchpoint: the latest frame [f < before] (default: the
      current position) during which [addr..addr+len) in task [tid]
      changed.  Indexed candidates are verified by sampling, so the
      answer is byte-identical to the scan's.  Position is restored. *)
end

val find_event : ?kind_mask:int -> t -> from:int -> (Event.t -> bool) -> int option
(** Static frame search (frames are data; nothing executes), scanning
    through the chunk-indexed reader; [kind_mask] (an OR of
    {!Event.kind_bit}) skips chunks with no matching frame kinds without
    inflating them. *)

val rfind_event : ?kind_mask:int -> t -> before:int -> (Event.t -> bool) -> int option
  [@@deprecated "use Query.prev_exec (indexed) for pc searches"]
(** Backwards static frame search with an arbitrary predicate.  An
    arbitrary closure cannot be answered from the index; pc searches —
    the only in-tree use — go through {!Query.prev_exec}. *)

val continue_to : t -> (Event.t -> bool) -> int option
(** Run forward to the next matching frame; lands just after it. *)

val reverse_continue_to : t -> (Event.t -> bool) -> int option
(** Reverse-continue: land just after the previous matching frame,
    skipping a hit at the current position (gdb semantics).  From frame
    0 (or frame 1, where only the current hit exists) this returns
    [None] and the position is unchanged. *)

val frame : t -> int -> Event.t
(** The frame at index [i] (static data; position is unaffected). *)

val task : t -> int -> Task.t
val live_tids : t -> int list

val exit_status : t -> int option
(** The replayed root process's exit status, once its exit frame has
    been applied. *)

val regs : t -> int -> int array * int
(** [(general-purpose registers, pc)] of a task at the current position. *)

val read_mem : t -> int -> int -> int -> bytes
(** [read_mem d tid addr len]. Raises {!Debug_error} on unmapped
    addresses. *)

val read_word : t -> int -> int -> int

val last_change : t -> tid:int -> addr:int -> len:int -> int option
  [@@deprecated "use Query.last_write"]
(** {!Query.last_write} at the current position, untyped. *)

(** {2 Checkpoint inspection and control}

    The checkpoint store itself is private (a sorted array with O(log n)
    lookups); these accessors expose what the GDB stub's [qRcmd]
    monitor commands and the tests need. *)

val take_checkpoint : t -> int
(** Ensure a checkpoint exists at the current position (dedup: taking
    twice at one frame stores one snapshot); returns the frame index. *)

val n_checkpoints : t -> int
val checkpoints_taken : t -> int
val checkpoints_restored : t -> int

val checkpoint_frames : t -> int list
(** Frame indices holding a live checkpoint, strictly ascending. *)
