lib/isa/insn.mli: Fmt
