lib/rr/diagnostics.ml: Addr_space Array Cpu Fmt Hashtbl Insn Kernel List Pmu Printf Signals Sysno Task
