(** Byte transports under the RSP packet layer.

    The packet layer ({!Gdb_packet}) is transport-agnostic: anything
    that can send a byte string and yield received bytes works.  Two
    implementations exist — the in-memory duplex {!pair} used by the
    scripted sessions and every test (deterministic, no file
    descriptors), and the socket transport in {!Gdb_sock} used when a
    real gdb connects to [rr_cli debug --port/--socket]. *)

type recv_result =
  | Data of string  (** one or more received bytes *)
  | Empty  (** nothing available right now (non-blocking transports) *)
  | Eof  (** the peer closed; no more bytes will ever arrive *)

type t = {
  send : string -> unit;
      (** transmit all the bytes (a closed peer swallows them) *)
  recv : unit -> recv_result;
      (** blocking transports never return [Empty]; the in-memory pair
          never blocks and returns [Empty] when drained *)
  close : unit -> unit;  (** idempotent; the peer sees [Eof] after a drain *)
  desc : string;  (** for logs: ["memory"], ["tcp:127.0.0.1:9999"], … *)
}

val pair : unit -> t * t
(** An in-memory duplex: bytes sent on one endpoint are received on the
    other, in order, with no delivery latency.  Single-threaded by
    design — the caller interleaves client sends with server pumps. *)
