test/test_kernel_edge.ml: Alcotest Asm Bytes Errno Guest Insn Kernel List Mem Printf QCheck QCheck_alcotest Signals Sysno Task Vfs
