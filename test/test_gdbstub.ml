(* Tests for the GDB remote-protocol stub: packet-layer properties
   (encode/decode round trips, checksums, ack and NAK behaviour) and
   byte-level scripted sessions against recorded traces — registers,
   memory, breakpoints, reverse execution and the qRcmd monitor, all
   over the in-memory transport. *)

module K = Kernel
module G = Guest
module E = Event
module P = Gdb_packet
module T = Gdb_transport

let ( @. ) = List.append

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ---- body codec ------------------------------------------------------ *)

let test_frame_exact () =
  (* 'O' + 'K' = 154 = 0x9a: the canonical example frame. *)
  Alcotest.(check string) "frame OK" "$OK#9a" (P.frame "OK");
  Alcotest.(check string) "empty frame" "$#00" (P.frame "");
  Alcotest.(check int) "checksum" 0x9a (P.checksum "OK")

let test_escaping () =
  let payload = "a$b#c}d*e" in
  let enc = P.encode_body payload in
  Alcotest.(check bool) "no raw specials survive encoding" false
    (String.exists (function '$' | '#' -> true | _ -> false) enc);
  Alcotest.(check (result string string)) "round trip" (Ok payload)
    (P.decode_body enc)

let test_rle_runs () =
  (* Every run length from 1 to 120 must round-trip, covering the
     skipped counts (6 7 13 14 16 96) and the chunking past 97. *)
  for len = 1 to 120 do
    let payload = "x" ^ String.make len 'r' ^ "y" in
    let enc = P.encode_body ~rle:true payload in
    match P.decode_body enc with
    | Ok p when p = payload -> ()
    | Ok p ->
      Alcotest.failf "run of %d decoded to %d bytes" len (String.length p)
    | Error e -> Alcotest.failf "run of %d: decode error %s" len e
  done;
  (* Long runs must actually compress. *)
  let long = String.make 300 'z' in
  Alcotest.(check bool) "rle shrinks a 300-byte run" true
    (String.length (P.encode_body ~rle:true long) < 30)

let test_decode_rejects_malformed () =
  let bad s =
    match P.decode_body s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "dangling escape" true (bad "ab}");
  Alcotest.(check bool) "leading run" true (bad "*!x");
  Alcotest.(check bool) "raw $" true (bad "a$b");
  Alcotest.(check bool) "raw #" true (bad "a#b");
  Alcotest.(check bool) "run count out of range" true (bad "a*\x1f")

let qcheck_roundtrip ~rle =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "encode/decode round trip (rle=%b)" rle)
    ~count:500 QCheck.string (fun s ->
      P.decode_body (P.encode_body ~rle s) = Ok s)

let qcheck_hex64 =
  QCheck.Test.make ~name:"hex64_le round trip" ~count:200
    QCheck.(map abs int)
    (fun v -> P.int_of_hex64_le (P.hex64_le v) = Ok v)

let test_hex_helpers () =
  Alcotest.(check string) "to_hex" "6f6b0a" (P.to_hex "ok\n");
  Alcotest.(check (result string string)) "of_hex" (Ok "ok\n")
    (P.of_hex "6f6b0a");
  Alcotest.(check string) "hex64_le" "efbeadde00000000" (P.hex64_le 0xdeadbeef);
  Alcotest.(check (option int)) "parse_hex_int" (Some 0x1000)
    (P.parse_hex_int "1000");
  Alcotest.(check (option int)) "parse_hex_int 0x" (Some 255)
    (P.parse_hex_int "0xff");
  Alcotest.(check (option int)) "parse_hex_int junk" None
    (P.parse_hex_int "10q0")

(* ---- connection ack behaviour ---------------------------------------- *)

(* A raw wire on one side, a conn on the other: inject bytes and watch
   the acks come back. *)
let wire_and_conn () =
  let wire, stub_side = T.pair () in
  (wire, P.conn stub_side)

let drain tr =
  match tr.T.recv () with T.Data s -> s | T.Empty -> "" | T.Eof -> "<eof>"

let test_bad_checksum_naks () =
  let wire, c = wire_and_conn () in
  wire.T.send "$OK#00";
  (match P.poll c with
  | `Empty -> ()
  | `Packet p -> Alcotest.failf "bad frame served: %S" p
  | `Eof -> Alcotest.fail "eof");
  Alcotest.(check string) "NAK sent" "-" (drain wire);
  (* the retransmission is served like any other frame *)
  wire.T.send (P.frame "OK");
  (match P.poll c with
  | `Packet p -> Alcotest.(check string) "re-served" "OK" p
  | `Empty | `Eof -> Alcotest.fail "retransmission not served");
  Alcotest.(check string) "ACK sent" "+" (drain wire)

let test_noack_skips_acks () =
  let wire, c = wire_and_conn () in
  P.set_ack_mode c false;
  wire.T.send (P.frame "hello");
  (match P.poll c with
  | `Packet p -> Alcotest.(check string) "served" "hello" p
  | `Empty | `Eof -> Alcotest.fail "not served");
  Alcotest.(check string) "no ack on the wire" "" (drain wire);
  (* bad frames are silently dropped in no-ack mode *)
  wire.T.send "$boom#00";
  (match P.poll c with
  | `Empty -> ()
  | _ -> Alcotest.fail "bad frame should be dropped");
  Alcotest.(check string) "no NAK either" "" (drain wire)

let test_nak_retransmits () =
  let wire, c = wire_and_conn () in
  P.send c "payload";
  let sent = drain wire in
  Alcotest.(check string) "first transmission" (P.frame "payload") sent;
  (* a NAK retransmits the identical wire frame *)
  wire.T.send "-";
  ignore (P.poll c);
  Alcotest.(check string) "retransmission" sent (drain wire);
  (* an ACK clears the slot: a later NAK retransmits nothing *)
  wire.T.send "+";
  ignore (P.poll c);
  wire.T.send "-";
  ignore (P.poll c);
  Alcotest.(check string) "nothing after ack" "" (drain wire)

let test_junk_between_frames () =
  let wire, c = wire_and_conn () in
  wire.T.send "\x03garbage";
  wire.T.send (P.frame "real");
  (match P.poll c with
  | `Packet p -> Alcotest.(check string) "frame found past junk" "real" p
  | `Empty | `Eof -> Alcotest.fail "frame lost")

(* ---- script parsing --------------------------------------------------- *)

let test_script_steps () =
  let src = "g => 00*\nmonitor when => 0\n? \n" in
  match Gdb_script.parse src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok steps ->
    Alcotest.(check int) "three steps" 3 (List.length steps);
    let g = List.nth steps 0 in
    Alcotest.(check bool) "prefix expect" true
      (g.Gdb_script.expect = Some (Gdb_script.Prefix "00"));
    let m = List.nth steps 1 in
    Alcotest.(check bool) "monitor step" true m.Gdb_script.monitor

(* ---- end-to-end sessions --------------------------------------------- *)

let record_tiny () =
  let setup k =
    Vfs.mkdir_p (K.vfs k) "/bin";
    let b = G.create () in
    G.emit b
      (G.sc Sysno.getpid [] @. G.sc Sysno.getpid [] @. G.sys_exit_group 0);
    K.install_image k ~path:"/bin/tiny" (G.build b ~name:"tiny" ())
  in
  let opts = { Recorder.default_opts with intercept = false } in
  let trace, _, _ = Recorder.record ~opts ~setup ~exe:"/bin/tiny" () in
  trace

let session ?(checkpoint_every = 8) trace =
  let d =
    Debugger.create ~opts:(Debugger.make_opts ~checkpoint_every ()) trace
  in
  let srv_tr, cli_tr = T.pair () in
  let server = Gdb_server.create d srv_tr in
  let client = Gdb_client.create ~pump:(fun () -> Gdb_server.pump server) cli_tr in
  (server, client, Gdb_client.request client)

(* the stub's initial current-thread choice, mirrored for expectations *)
let initial_thread d =
  match Debugger.live_tids d with
  | tid :: _ -> tid
  | [] -> if Debugger.n_events d > 0 then E.tid_of (Debugger.frame d 0) else 0

let test_frame_zero_stops () =
  let trace = record_tiny () in
  let refd = Debugger.create trace in
  let cur = initial_thread refd in
  let _server, client, req = session trace in
  let begin_stop = Printf.sprintf "T05replaylog:begin;thread:%x;" cur in
  Alcotest.(check string) "bs at frame 0" begin_stop (req "bs");
  Alcotest.(check string) "bc at frame 0" begin_stop (req "bc");
  Alcotest.(check string) "position pinned" "0" (Gdb_client.monitor client "when");
  (* one frame in, nothing to stop on: bc lands back on frame 0 with a
     replaylog:begin stop — a reply, never a hang *)
  ignore (req "s");
  Alcotest.(check bool) "bc with empty history prefix" true
    (starts_with ~prefix:"T05replaylog:begin;" (req "bc"));
  Alcotest.(check string) "back at 0" "0" (Gdb_client.monitor client "when");
  Alcotest.(check string) "detach" "OK" (req "D");
  Gdb_client.close client

let test_bad_thread_and_memory_errors () =
  let trace = record_tiny () in
  let _server, _client, req = session trace in
  ignore (req "s");
  ignore (req "s");
  Alcotest.(check string) "T on a dead tid" "E01" (req "Tdead");
  Alcotest.(check string) "m on unmapped memory" "E03" (req "m7ff000000,8");
  Alcotest.(check string) "malformed m" "E02" (req "mnot-hex");
  Alcotest.(check string) "p out of range" "E01" (req "pffff")

let record_samba () =
  let w =
    Wl_samba.make
      ~params:
        { Wl_samba.echoes = 6; payload = 32; server_work = 500;
          client_work = 300 }
      ()
  in
  let recd, _ = Workload.record w in
  recd.Workload.trace

(* The acceptance session: against a recorded sambatest trace, read
   registers and memory, continue to a software breakpoint, reverse
   back across it, resolve a watchpoint through last_change, and drive
   the qRcmd monitor — every reply asserted byte for byte, with the
   expected bytes computed from an independent Debugger session over
   the same trace. *)
let test_samba_session () =
  let trace = record_samba () in
  let refd =
    Debugger.create ~opts:(Debugger.make_opts ~checkpoint_every:8 ()) trace
  in
  let n = Debugger.n_events refd in
  let check = Alcotest.(check string) in
  let _server, client, req = session trace in

  (* handshake *)
  Alcotest.(check bool) "qSupported" true
    (starts_with ~prefix:"PacketSize=" (req "qSupported:swbreak+"));
  check "no-ack switch" "OK" (req "QStartNoAckMode");
  let cur0 = initial_thread refd in
  check "initial stop" (Printf.sprintf "T05thread:%x;" cur0) (req "?");
  check "qC" (Printf.sprintf "QC%x" cur0) (req "qC");
  check "qAttached" "1" (req "qAttached");

  (* two forward steps: the exec frame has applied, memory is mapped *)
  let tid0 = E.tid_of (Debugger.frame refd 0) in
  let tid1 = E.tid_of (Debugger.frame refd 1) in
  check "s #1" (Printf.sprintf "T05thread:%x;" tid0) (req "s");
  check "s #2" (Printf.sprintf "T05thread:%x;" tid1) (req "s");
  Debugger.seek refd 2;
  check "when" "2" (Gdb_client.monitor client "when");

  (* thread list: byte-exact against live_tids at this position *)
  let expect_threads =
    match Debugger.live_tids refd with
    | [] -> Printf.sprintf "m%x" tid1
    | tids ->
      "m" ^ String.concat "," (List.map (Printf.sprintf "%x") tids)
  in
  check "qfThreadInfo" expect_threads (req "qfThreadInfo");
  check "qsThreadInfo" "l" (req "qsThreadInfo");

  (* registers and memory, computed from the reference session *)
  let expect_g =
    let regs, _ = Debugger.regs refd tid1 in
    String.concat "" (Array.to_list (Array.map P.hex64_le regs))
  in
  check "g" expect_g (req "g");
  let expect_p0 = P.hex64_le (fst (Debugger.regs refd tid1)).(0) in
  check "p0" expect_p0 (req "p0");
  let expect_m =
    try P.to_hex (Bytes.to_string (Debugger.read_mem refd tid1 0x100000 8))
    with Debugger.Debug_error _ -> "E03"
  in
  check "m data base" expect_m (req "m100000,8");
  check "m text base"
    (try P.to_hex (Bytes.to_string (Debugger.read_mem refd tid1 0x1000 4))
     with Debugger.Debug_error _ -> "E03")
    (req "m1000,4");

  (* pick a pc recorded at two frames >= 2: a syscall site inside the
     echo loop.  The first two hits give us the breakpoint dance. *)
  let occs = Hashtbl.create 64 in
  for i = 2 to n - 1 do
    match Gdb_server.frame_pc (Debugger.frame refd i) with
    | Some pc ->
      Hashtbl.replace occs pc
        (i :: (try Hashtbl.find occs pc with Not_found -> []))
    | None -> ()
  done;
  let bp_pc, i1, i2 =
    let cands =
      Hashtbl.fold (fun pc idxs acc -> (pc, List.rev idxs) :: acc) occs []
      |> List.filter (fun (_, l) -> List.length l >= 2)
      |> List.sort (fun (_, a) (_, b) -> compare (List.hd a) (List.hd b))
    in
    match cands with
    | (pc, i1 :: i2 :: _) :: _ -> (pc, i1, i2)
    | _ -> Alcotest.fail "no repeated pc in the samba trace"
  in
  check "Z0 insert" "OK" (req (Printf.sprintf "Z0,%x,1" bp_pc));
  let t_i1 = E.tid_of (Debugger.frame refd i1) in
  let t_i2 = E.tid_of (Debugger.frame refd i2) in
  check "c to the breakpoint"
    (Printf.sprintf "T05swbreak:;thread:%x;" t_i1)
    (req "c");
  check "when at bp" (string_of_int (i1 + 1)) (Gdb_client.monitor client "when");
  check "c to the second hit"
    (Printf.sprintf "T05swbreak:;thread:%x;" t_i2)
    (req "c");
  (* reverse-continue back across the breakpoint: checkpoint restore
     under the hood, landing just after the earlier hit *)
  check "bc across the breakpoint"
    (Printf.sprintf "T05swbreak:;thread:%x;" t_i1)
    (req "bc");
  check "when after bc" (string_of_int (i1 + 1))
    (Gdb_client.monitor client "when");
  check "z0 remove" "OK" (req (Printf.sprintf "z0,%x,1" bp_pc));
  Debugger.seek refd (i1 + 1);

  (* reverse watchpoint on the datagram buffer, resolved through
     last_change.  Pick (via the reference session) a live thread whose
     address space saw a write — then aim the stub at it with Hg. *)
  let waddr = 0x100000 and wlen = 8 in
  let wtid =
    match
      List.find_opt
        (fun tid ->
          Debugger.Query.last_write refd ~tid ~addr:waddr ~len:wlen
          <> Ok None)
        (Debugger.live_tids refd)
    with
    | Some tid -> tid
    | None -> Alcotest.fail "no thread ever wrote the datagram buffer"
  in
  check "Hg" "OK" (req (Printf.sprintf "Hg%x" wtid));
  check "Z2 insert" "OK" (req (Printf.sprintf "Z2,%x,%x" waddr wlen));
  let j =
    match Debugger.Query.last_write refd ~tid:wtid ~addr:waddr ~len:wlen with
    | Ok (Some j) -> j
    | Ok None | Error _ -> assert false
  in
  check "bc to the watch"
    (Printf.sprintf "T05watch:%x;thread:%x;" waddr
       (E.tid_of (Debugger.frame refd j)))
    (req "bc");
  check "when at the write" (string_of_int j)
    (Gdb_client.monitor client "when");
  check "z2 remove" "OK" (req (Printf.sprintf "z2,%x,%x" waddr wlen));
  Debugger.seek refd j;

  (* monitor: checkpoint here, wander off, restart back *)
  check "monitor checkpoint"
    (Printf.sprintf "checkpoint 1 at frame %d" j)
    (Gdb_client.monitor client "checkpoint");
  ignore (req "s");
  ignore (req "s");
  check "monitor restart" (Printf.sprintf "at frame %d" j)
    (Gdb_client.monitor client "restart 1");
  check "when after restart" (string_of_int j)
    (Gdb_client.monitor client "when");
  Alcotest.(check bool) "monitor stats" true
    (starts_with ~prefix:"packets=" (Gdb_client.monitor client "stats"));

  check "detach" "OK" (req "D");
  Gdb_client.close client

(* The same session shape driven through the script runner (the CI
   smoke's engine), to pin the script semantics down in-process. *)
let test_scripted_session () =
  let trace = record_tiny () in
  let _server, client, _req = session trace in
  let src =
    "QStartNoAckMode => OK\n\
     ? => T05*\n\
     s => T05*\n\
     monitor when => 1\n\
     monitor checkpoint => checkpoint 1 at frame 1\n\
     monitor restart 1 => at frame 1\n\
     D => OK\n"
  in
  match Gdb_script.parse src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok steps -> (
    match Gdb_script.run client steps with
    | Ok count -> Alcotest.(check int) "all steps ran" 7 count
    | Error e -> Alcotest.failf "script failed: %s" e)

let suites =
  [ ( "gdbstub.packet",
      [ Alcotest.test_case "exact frames" `Quick test_frame_exact;
        Alcotest.test_case "escaping" `Quick test_escaping;
        Alcotest.test_case "rle runs" `Quick test_rle_runs;
        Alcotest.test_case "malformed bodies rejected" `Quick
          test_decode_rejects_malformed;
        Alcotest.test_case "hex helpers" `Quick test_hex_helpers;
        Alcotest.test_case "bad checksum NAKs + re-serve" `Quick
          test_bad_checksum_naks;
        Alcotest.test_case "no-ack mode skips acks" `Quick
          test_noack_skips_acks;
        Alcotest.test_case "NAK retransmits" `Quick test_nak_retransmits;
        Alcotest.test_case "junk between frames" `Quick
          test_junk_between_frames;
        QCheck_alcotest.to_alcotest (qcheck_roundtrip ~rle:false);
        QCheck_alcotest.to_alcotest (qcheck_roundtrip ~rle:true);
        QCheck_alcotest.to_alcotest qcheck_hex64 ] );
    ( "gdbstub.session",
      [ Alcotest.test_case "script parsing" `Quick test_script_steps;
        Alcotest.test_case "frame-0 stop replies" `Quick
          test_frame_zero_stops;
        Alcotest.test_case "error replies" `Quick
          test_bad_thread_and_memory_errors;
        Alcotest.test_case "samba byte-level session" `Quick
          test_samba_session;
        Alcotest.test_case "scripted session" `Quick test_scripted_session ]
    ) ]
