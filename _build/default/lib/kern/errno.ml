(* Errno values, Linux x86-64 numbering where it matters.  Syscalls
   return [-e] for error [e], like the raw Linux ABI. *)

let eperm = 1
let enoent = 2
let esrch = 3
let eintr = 4
let eio = 5
let ebadf = 9
let echild = 10
let eagain = 11
let enomem = 12
let eacces = 13
let efault = 14
let eexist = 17
let enotdir = 20
let eisdir = 21
let einval = 22
let enfile = 23
let enospc = 28
let espipe = 29
let epipe = 32
let erange = 34
let enosys = 38
let enotempty = 39
let eaddrinuse = 98
let econnrefused = 111

(* Kernel-internal restart sentinel (never visible to user space): a
   blocking syscall interrupted by a signal parks this in the result
   register; the restart machinery either converts it to -EINTR or
   re-executes the syscall (paper §2.3.10). *)
let erestartsys = 512

let to_string = function
  | 1 -> "EPERM" | 2 -> "ENOENT" | 3 -> "ESRCH" | 4 -> "EINTR" | 5 -> "EIO"
  | 9 -> "EBADF" | 10 -> "ECHILD" | 11 -> "EAGAIN" | 12 -> "ENOMEM"
  | 13 -> "EACCES" | 14 -> "EFAULT" | 17 -> "EEXIST" | 20 -> "ENOTDIR"
  | 21 -> "EISDIR" | 22 -> "EINVAL" | 23 -> "ENFILE" | 28 -> "ENOSPC"
  | 29 -> "ESPIPE" | 32 -> "EPIPE" | 34 -> "ERANGE" | 38 -> "ENOSYS"
  | 39 -> "ENOTEMPTY" | 98 -> "EADDRINUSE" | 111 -> "ECONNREFUSED"
  | 512 -> "ERESTARTSYS"
  | e -> Printf.sprintf "E%d" e
