(* The RSP command dispatcher over a Debugger session (see the mli for
   the command table).  One invariant matters throughout: every command
   gets exactly one reply, and reverse execution that runs out of trace
   answers with a replaylog:begin stop — never silence — so a client can
   not hang on a frame-0 edge. *)

module E = Event
module P = Gdb_packet
module T = Gdb_transport

let tm_packets = Telemetry.counter "gdb.packets"
let tm_reverse = Telemetry.counter "gdb.reverse_seeks"
let tm_cmd = Telemetry.span "gdb.cmd"

type watch = {
  w_kind : int; (* 2 = write, 3 = read, 4 = access (the Z number) *)
  w_addr : int;
  w_len : int;
  w_tid : int; (* address spaces are per-task: sample in this one *)
  mutable w_last : bytes option; (* sample at the last stop *)
}

type t = {
  conn : P.conn;
  dbg : Debugger.t;
  bps : (int, unit) Hashtbl.t; (* pc -> () *)
  mutable watches : watch list;
  mutable cur_thread : int;
  mutable checkpoints : (int * int) list; (* monitor id -> frame *)
  mutable next_cp : int;
  mutable finished : bool;
}

(* The pc a frame's recorded registers land on: the breakpoint-match
   key.  Frames that carry no register image (buffer flushes, patches,
   bookkeeping) can never match a breakpoint.  This is the event layer's
   notion now (the trace index is keyed by it); re-exported for the
   tests. *)
let frame_pc = E.frame_pc

let create ?(rle = true) dbg tr =
  let cur_thread =
    match Debugger.live_tids dbg with
    | tid :: _ -> tid
    | [] ->
      if Debugger.n_events dbg > 0 then E.tid_of (Debugger.frame dbg 0) else 0
  in
  { conn = P.conn ~rle tr;
    dbg;
    bps = Hashtbl.create 8;
    watches = [];
    cur_thread;
    checkpoints = [];
    next_cp = 1;
    finished = false }

let finished t = t.finished
let debugger t = t.dbg

(* ---- stop replies ---------------------------------------------------- *)

type stop =
  | Plain
  | Swbreak
  | Watch of int
  | Log_begin
  | Log_end
  | Exited of int

let stop_reply t = function
  | Plain -> Printf.sprintf "T05thread:%x;" t.cur_thread
  | Swbreak -> Printf.sprintf "T05swbreak:;thread:%x;" t.cur_thread
  | Watch addr -> Printf.sprintf "T05watch:%x;thread:%x;" addr t.cur_thread
  | Log_begin -> Printf.sprintf "T05replaylog:begin;thread:%x;" t.cur_thread
  | Log_end -> Printf.sprintf "T05replaylog:end;thread:%x;" t.cur_thread
  | Exited st -> Printf.sprintf "W%02x" (st land 0xff)

let end_of_trace_stop t =
  match Debugger.exit_status t.dbg with
  | Some st -> Exited st
  | None -> Log_end

(* ---- watchpoint sampling --------------------------------------------- *)

let sample_watch t w =
  try Some (Debugger.read_mem t.dbg w.w_tid w.w_addr w.w_len)
  with Debugger.Debug_error _ -> None

let refresh_watches t =
  List.iter (fun w -> w.w_last <- sample_watch t w) t.watches

(* The watch that changed relative to its last stop sample, if any. *)
let changed_watch t =
  List.find_opt
    (fun w ->
      let now = sample_watch t w in
      match (w.w_last, now) with
      | Some a, Some b -> not (Bytes.equal a b)
      | None, Some _ | Some _, None -> false (* map/unmap is not a write *)
      | None, None -> false)
    t.watches

(* ---- resume ---------------------------------------------------------- *)

let bp_hit t e =
  Hashtbl.length t.bps > 0
  &&
  match frame_pc e with Some pc -> Hashtbl.mem t.bps pc | None -> false

(* Forward continue: step frames until a breakpoint pc, a watched-region
   change, or the end of the trace. *)
let resume_forward t ~single =
  let d = t.dbg in
  if Debugger.at_end d then end_of_trace_stop t
  else begin
    refresh_watches t;
    let stop = ref None in
    let continue_ = ref true in
    while !continue_ do
      let e = Debugger.step d in
      t.cur_thread <- E.tid_of e;
      (match changed_watch t with
      | Some w ->
        refresh_watches t;
        stop := Some (Watch w.w_addr)
      | None -> if bp_hit t e then stop := Some Swbreak);
      continue_ :=
        !stop = None && (not single) && not (Debugger.at_end d)
    done;
    match !stop with
    | Some s -> s
    | None -> if Debugger.at_end d then end_of_trace_stop t else Plain
  end

(* Reverse continue/step: checkpoint restore under the hood (the
   Debugger's seek does that), stop placement decided here.

   Breakpoint candidate: the latest frame before the current hit whose
   recorded pc matches — Query.prev_exec per breakpoint pc (index-backed
   when the trace carries one), maximized — and we land just after it.
   Watch candidate: Query.last_write gives the latest frame that wrote
   the region; we land *at* it, so the reverse stop shows the value
   before the write (the write has been "undone", rr semantics).  The
   candidate closest to the current position wins.  No candidate: land
   on frame 0 with a replaylog:begin stop, position pinned — never a
   hang. *)
let resume_reverse t ~single =
  let d = t.dbg in
  Telemetry.incr tm_reverse;
  Timeline.instant "gdb.reverse";
  let pos = Debugger.pos d in
  if pos = 0 then Log_begin
  else if single then begin
    Debugger.reverse_step d;
    let p = Debugger.pos d in
    if p > 0 then t.cur_thread <- E.tid_of (Debugger.frame d (p - 1));
    Plain
  end
  else begin
    (* [~before:(pos - 1)] skips a breakpoint hit at the current stop
       (frame [pos - 1]) — gdb reverse-continue semantics. *)
    let prev_exec pc =
      match Debugger.Query.prev_exec d ~before:(pos - 1) ~pc with
      | Ok r -> r
      | Error _ -> None
    in
    let last_write w =
      match Debugger.Query.last_write d ~tid:w.w_tid ~addr:w.w_addr ~len:w.w_len with
      | Ok r -> r
      | Error _ -> None
    in
    let bp_cand =
      Hashtbl.fold
        (fun pc () acc ->
          match prev_exec pc with
          | Some i when (match acc with Some (j, _) -> i + 1 > j | None -> true) ->
            Some (i + 1, Swbreak)
          | _ -> acc)
        t.bps None
    in
    let watch_cand =
      List.filter_map
        (fun w -> last_write w |> Option.map (fun i -> (i, Watch w.w_addr)))
        t.watches
      |> List.fold_left
           (fun acc c ->
             match acc with
             | Some (i, _) when i >= fst c -> acc
             | _ -> Some c)
           None
    in
    let best =
      match (bp_cand, watch_cand) with
      | Some (a, _), Some (b, _) -> if a >= b then bp_cand else watch_cand
      | (Some _ as c), None | None, (Some _ as c) -> c
      | None, None -> None
    in
    match best with
    | Some (target, reason) ->
      Debugger.seek d target;
      let anchor = if target > 0 then target - 1 else 0 in
      (match reason with
      | Watch _ ->
        (* landing *at* the writing frame: it is the next to apply *)
        t.cur_thread <- E.tid_of (Debugger.frame d target)
      | _ -> t.cur_thread <- E.tid_of (Debugger.frame d anchor));
      refresh_watches t;
      reason
    | None ->
      Debugger.seek d 0;
      refresh_watches t;
      Log_begin
  end

(* ---- monitor commands (qRcmd) ---------------------------------------- *)

let monitor t cmd =
  let reply fmt = Printf.ksprintf (fun s -> P.to_hex (s ^ "\n")) fmt in
  match String.split_on_char ' ' (String.trim cmd) with
  | [ "when" ] -> reply "%d" (Debugger.pos t.dbg)
  | [ "checkpoint" ] ->
    let frame = Debugger.take_checkpoint t.dbg in
    let id = t.next_cp in
    t.next_cp <- id + 1;
    t.checkpoints <- (id, frame) :: t.checkpoints;
    reply "checkpoint %d at frame %d" id frame
  | [ "restart"; n ] -> (
    match int_of_string_opt n with
    | None -> reply "restart: bad checkpoint id %S" n
    | Some id -> (
      match List.assoc_opt id t.checkpoints with
      | None -> reply "restart: no checkpoint %d" id
      | Some frame ->
        if frame < Debugger.pos t.dbg then Telemetry.incr tm_reverse;
        Debugger.seek t.dbg frame;
        refresh_watches t;
        reply "at frame %d" frame))
  | [ "seek"; n ] -> (
    match int_of_string_opt n with
    | None -> reply "seek: bad frame %S" n
    | Some frame -> (
      if frame < Debugger.pos t.dbg then Telemetry.incr tm_reverse;
      match Debugger.Query.seek_to_frame t.dbg frame with
      | Ok () ->
        refresh_watches t;
        reply "at frame %d" frame
      | Error e -> reply "seek: %s" (Debugger.Query.error_to_string e)))
  | [ "seek"; "time"; n ] -> (
    match int_of_string_opt n with
    | None -> reply "seek: bad time %S" n
    | Some time -> (
      match Debugger.Query.seek_to_time t.dbg time with
      | Ok frame ->
        refresh_watches t;
        reply "at frame %d (clock %d)" frame (Debugger.clock t.dbg)
      | Error e -> reply "seek: %s" (Debugger.Query.error_to_string e)))
  | [ "index" ] ->
    if Debugger.indexed t.dbg then
      let n_cps =
        match Trace.index (Debugger.trace t.dbg) with
        | Some ix -> Array.length (Trace_index.checkpoints ix)
        | None -> 0
      in
      reply "index: attached (%d frames, %d durable checkpoints)"
        (Debugger.n_events t.dbg) n_cps
    else reply "index: none (queries fall back to scans)"
  | [ "stats" ] ->
    reply
      "packets=%d reverse_seeks=%d checkpoints=%d restored=%d frames=%d \
       indexed=%b"
      (Telemetry.counter_value tm_packets)
      (Telemetry.counter_value tm_reverse)
      (Debugger.checkpoints_taken t.dbg)
      (Debugger.checkpoints_restored t.dbg)
      (Debugger.n_events t.dbg)
      (Debugger.indexed t.dbg)
  | _ ->
    reply "unknown monitor command %S (try: when checkpoint restart seek index stats)"
      cmd

(* ---- command dispatch ------------------------------------------------ *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let after ~prefix s = String.sub s (String.length prefix) (String.length s - String.length prefix)

let regs_reply t tid =
  match Debugger.regs t.dbg tid with
  | regs, _pc ->
    let b = Buffer.create (16 * Array.length regs) in
    Array.iter (fun v -> Buffer.add_string b (P.hex64_le v)) regs;
    Buffer.contents b
  | exception Debugger.Debug_error _ -> "E01"

let handle_z t payload ~insert =
  (* Z0,addr,kind / Z2,addr,len / … — addr and the trailing field are
     hex; the trailing field is a kind for Z0/Z1 and a length for
     watchpoints. *)
  match String.split_on_char ',' payload with
  | [ ztype; addr_s; len_s ] -> (
    match (P.parse_hex_int addr_s, P.parse_hex_int len_s) with
    | Some addr, Some len -> (
      match ztype with
      | "0" ->
        if insert then Hashtbl.replace t.bps addr ()
        else Hashtbl.remove t.bps addr;
        "OK"
      | "2" | "3" | "4" ->
        let kind = int_of_string ztype in
        if insert then begin
          let w =
            { w_kind = kind;
              w_addr = addr;
              w_len = max 1 len;
              w_tid = t.cur_thread;
              w_last = None }
          in
          w.w_last <- sample_watch t w;
          t.watches <- w :: t.watches
        end
        else
          t.watches <-
            List.filter
              (fun w -> not (w.w_kind = kind && w.w_addr = addr))
              t.watches;
        "OK"
      | _ -> "" (* unsupported breakpoint type *))
    | _ -> "E02")
  | _ -> "E02"

let dispatch t payload =
  let d = t.dbg in
  if payload = "" then ""
  else if starts_with ~prefix:"qSupported" payload then
    "PacketSize=4000;QStartNoAckMode+;swbreak+;ReverseContinue+;ReverseStep+;\
     qXfer:features:read-"
  else if payload = "QStartNoAckMode" then begin
    (* reply still goes out in ack mode; the mode flips after *)
    P.send t.conn "OK";
    P.set_ack_mode t.conn false;
    "" (* already sent *)
  end
  else if payload = "?" then stop_reply t Plain
  else if payload = "qC" then Printf.sprintf "QC%x" t.cur_thread
  else if payload = "qAttached" then "1"
  else if payload = "qfThreadInfo" then begin
    match Debugger.live_tids d with
    | [] -> Printf.sprintf "m%x" t.cur_thread
    | tids ->
      "m"
      ^ String.concat ","
          (List.map (fun tid -> Printf.sprintf "%x" tid) tids)
  end
  else if payload = "qsThreadInfo" then "l"
  else if starts_with ~prefix:"qRcmd," payload then begin
    match P.of_hex (after ~prefix:"qRcmd," payload) with
    | Ok cmd -> monitor t cmd
    | Error _ -> "E02"
  end
  else if payload = "g" then regs_reply t t.cur_thread
  else if starts_with ~prefix:"p" payload then begin
    match P.parse_hex_int (after ~prefix:"p" payload) with
    | Some n -> (
      match Debugger.regs d t.cur_thread with
      | regs, _ when n >= 0 && n < Array.length regs -> P.hex64_le regs.(n)
      | _ -> "E01"
      | exception Debugger.Debug_error _ -> "E01")
    | None -> "E02"
  end
  else if starts_with ~prefix:"m" payload then begin
    match String.split_on_char ',' (after ~prefix:"m" payload) with
    | [ addr_s; len_s ] -> (
      match (P.parse_hex_int addr_s, P.parse_hex_int len_s) with
      | Some addr, Some len when len >= 0 && len <= 0x10000 -> (
        try P.to_hex (Bytes.to_string (Debugger.read_mem d t.cur_thread addr len))
        with Debugger.Debug_error _ -> "E03")
      | _ -> "E02")
    | _ -> "E02"
  end
  else if starts_with ~prefix:"H" payload && String.length payload >= 2 then begin
    match P.parse_hex_int (String.sub payload 2 (String.length payload - 2)) with
    | Some tid when tid > 0 -> (
      match Debugger.task d tid with
      | _ ->
        if payload.[1] = 'g' then t.cur_thread <- tid;
        "OK"
      | exception Debugger.Debug_error _ -> "E01")
    | Some _ -> "OK" (* 0 = any, -1 = all: keep the current thread *)
    | None -> "E02"
  end
  else if starts_with ~prefix:"T" payload then begin
    match P.parse_hex_int (after ~prefix:"T" payload) with
    | Some tid ->
      if List.mem tid (Debugger.live_tids d) then "OK" else "E01"
    | None -> "E02"
  end
  else if payload = "c" then stop_reply t (resume_forward t ~single:false)
  else if payload = "s" then stop_reply t (resume_forward t ~single:true)
  else if payload = "bc" then stop_reply t (resume_reverse t ~single:false)
  else if payload = "bs" then stop_reply t (resume_reverse t ~single:true)
  else if starts_with ~prefix:"Z" payload then
    handle_z t (after ~prefix:"Z" payload) ~insert:true
  else if starts_with ~prefix:"z" payload then
    handle_z t (after ~prefix:"z" payload) ~insert:false
  else if payload = "D" || payload = "k" then begin
    t.finished <- true;
    "OK"
  end
  else "" (* unsupported — gdb falls back *)

let handle t payload =
  Telemetry.incr tm_packets;
  let reply = Telemetry.timed tm_cmd (fun () -> dispatch t payload) in
  (* QStartNoAckMode replies inline (mode must flip after the OK) *)
  if not (payload = "QStartNoAckMode") then P.send t.conn reply

let rec pump t =
  if not t.finished then
    match P.poll t.conn with
    | `Packet p ->
      handle t p;
      pump t
    | `Empty | `Eof -> ()

let run t =
  let continue_ = ref true in
  while !continue_ && not t.finished do
    match P.poll t.conn with
    | `Packet p -> handle t p
    | `Empty | `Eof -> continue_ := false
  done
