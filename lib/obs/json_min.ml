(* Minimal dependency-free JSON: a recursive-descent parser (originally
   bin/json_check's, hoisted here so tests and tools share one
   implementation) and the string escaper used by every hand-rolled
   emitter in the tree.  No printing, no streaming — just enough to
   validate and inspect the JSON this repo produces. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if
      !pos + String.length word <= n
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char b '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
        | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
        | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
        | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "bad \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          (* Non-ASCII code points are replaced; fine for validation. *)
          Buffer.add_char b (if code < 128 then Char.chr code else '?');
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when numchar c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing bytes";
  v

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b
