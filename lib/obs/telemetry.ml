(* Unified telemetry (see telemetry.mli for the contract).

   Everything lives in process-global tables so instrumented modules can
   register their handles once at module initialization and pay only a
   field update per hit.  [reset] zeroes values in place — handles stay
   valid across runs, which is what lets the bench harness snapshot one
   workload at a time.

   Domain safety: worker domains (the {!Pool} in lib/exec — trace
   compression, replay readahead) report through the same registry as
   the main thread.  Counters and gauges are single atomics, so the hot
   increment path never takes a lock; histograms, spans, the event ring,
   registration, [reset] and [snapshot] serialize on one registry mutex
   ([reg_m]).  Internal [*_unlocked] helpers exist so compound
   operations (a span feeding its histogram, [span] registering its
   [.ns] histogram) take the mutex exactly once — the mutex is not
   reentrant. *)

(* ---- registry ------------------------------------------------------- *)

let reg_m = Mutex.create ()

let with_reg f =
  Mutex.lock reg_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_m) f

type counter = { c_name : string; c_v : int Atomic.t }
type gauge = { g_name : string; g_v : int Atomic.t }

let n_buckets = 63

type histogram = {
  h_name : string;
  mutable h_n : int;
  mutable h_sum : int;
  h_counts : int array; (* log2 buckets: h_counts.(i) counts [2^(i-1), 2^i) *)
}

type span = {
  sp_name : string;
  mutable sp_n : int;
  mutable sp_total : int;
  mutable sp_max : int;
  sp_hist : histogram; (* <name>.ns latency distribution *)
}

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 16
let hists_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16
let spans_tbl : (string, span) Hashtbl.t = Hashtbl.create 16

(* Registration only under [reg_m]. *)
let find_or_add tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some x -> x
  | None ->
    let x = make name in
    Hashtbl.replace tbl name x;
    x

let counter name =
  with_reg (fun () ->
      find_or_add counters_tbl name (fun c_name ->
          { c_name; c_v = Atomic.make 0 }))

let incr c = ignore (Atomic.fetch_and_add c.c_v 1)
let add c n = ignore (Atomic.fetch_and_add c.c_v n)
let counter_value c = Atomic.get c.c_v

let gauge name =
  with_reg (fun () ->
      find_or_add gauges_tbl name (fun g_name ->
          { g_name; g_v = Atomic.make 0 }))

let set_gauge g v = Atomic.set g.g_v v
let gauge_value g = Atomic.get g.g_v

let make_histogram h_name =
  { h_name; h_n = 0; h_sum = 0; h_counts = Array.make n_buckets 0 }

let histogram name =
  with_reg (fun () -> find_or_add hists_tbl name make_histogram)

let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 0 do
      v := !v lsr 1;
      Stdlib.incr i
    done;
    min !i (n_buckets - 1)
  end

let observe_unlocked h v =
  h.h_n <- h.h_n + 1;
  h.h_sum <- h.h_sum + max v 0;
  let b = h.h_counts in
  let i = bucket_of v in
  b.(i) <- b.(i) + 1

let observe h v = with_reg (fun () -> observe_unlocked h v)

let span name =
  with_reg (fun () ->
      find_or_add spans_tbl name (fun sp_name ->
          { sp_name;
            sp_n = 0;
            sp_total = 0;
            sp_max = 0;
            sp_hist = find_or_add hists_tbl (sp_name ^ ".ns") make_histogram }))

let span_add sp ns =
  let ns = max ns 0 in
  with_reg (fun () ->
      sp.sp_n <- sp.sp_n + 1;
      sp.sp_total <- sp.sp_total + ns;
      if ns > sp.sp_max then sp.sp_max <- ns;
      observe_unlocked sp.sp_hist ns)

let span_count sp = with_reg (fun () -> sp.sp_n)

(* ---- the virtual clock ---------------------------------------------- *)

(* The cost-model clock doubles as the Timeline's virtual clock: every
   installer (recorder, replayer, bench) goes through here, so the two
   subsystems always agree on what "now" means. *)
let no_clock () = 0
let clock = ref no_clock

let set_clock f =
  clock := f;
  Timeline.set_virtual_clock f

let clear_clock () =
  clock := no_clock;
  Timeline.clear_virtual_clock ()

(* Timed spans double as timeline scopes, so the existing [timed]
   instrumentation shows up nested on the timeline for free. *)
let timed sp f =
  let t0 = !clock () in
  Timeline.begin_scope sp.sp_name;
  Fun.protect
    ~finally:(fun () ->
      Timeline.end_scope sp.sp_name;
      span_add sp (!clock () - t0))
    f

(* ---- the event ring and sinks --------------------------------------- *)

type event = {
  seq : int;
  tid : int;
  frame : int;
  kind : string;
  detail : string;
}

let ring_capacity = 64

let dummy_event = { seq = -1; tid = -1; frame = -1; kind = ""; detail = "" }
let ring = Array.make ring_capacity dummy_event
let next_seq = ref 0

type sink = Null | Memory | Jsonl of string

let current_sink = ref Null
let mem_events : event list ref = ref [] (* newest first *)
let jsonl_oc : out_channel option ref = ref None

let close_jsonl () =
  match !jsonl_oc with
  | Some oc ->
    close_out oc;
    jsonl_oc := None
  | None -> ()

let json_escape = Json_min.escape

let event_to_json e =
  Printf.sprintf "{\"seq\":%d,\"tid\":%d,\"frame\":%d,\"kind\":\"%s\",\"detail\":\"%s\"}"
    e.seq e.tid e.frame (json_escape e.kind) (json_escape e.detail)

let set_sink s =
  with_reg (fun () ->
      close_jsonl ();
      mem_events := [];
      (match s with
      | Jsonl path -> jsonl_oc := Some (open_out path)
      | Null | Memory -> ());
      current_sink := s)

let note ?(tid = -1) ?(frame = -1) ~kind detail =
  (* Mirror the event onto the timeline (on the task's lane when known)
     so instants line up with the scopes that produced them. *)
  if Timeline.enabled () then
    Timeline.instant ?lane:(if tid >= 0 then Some tid else None) kind;
  with_reg (fun () ->
      let e = { seq = !next_seq; tid; frame; kind; detail } in
      ring.(!next_seq mod ring_capacity) <- e;
      Stdlib.incr next_seq;
      match !current_sink with
      | Null -> ()
      | Memory -> mem_events := e :: !mem_events
      | Jsonl _ -> (
        match !jsonl_oc with
        | Some oc ->
          output_string oc (event_to_json e);
          output_char oc '\n';
          (* Flight-recorder semantics: a killed recording must leave
             every event it noted on disk, so flush per line. *)
          flush oc
        | None -> ()))

let recent_unlocked () =
  let n = min !next_seq ring_capacity in
  List.init n (fun i -> ring.((!next_seq - n + i) mod ring_capacity))

let recent () = with_reg recent_unlocked

let memory_events () = with_reg (fun () -> List.rev !mem_events)

(* ---- reset ----------------------------------------------------------- *)

let reset () =
  with_reg (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_v 0) counters_tbl;
      Hashtbl.iter (fun _ g -> Atomic.set g.g_v 0) gauges_tbl;
      Hashtbl.iter
        (fun _ h ->
          h.h_n <- 0;
          h.h_sum <- 0;
          Array.fill h.h_counts 0 n_buckets 0)
        hists_tbl;
      Hashtbl.iter
        (fun _ sp ->
          sp.sp_n <- 0;
          sp.sp_total <- 0;
          sp.sp_max <- 0)
        spans_tbl;
      Array.fill ring 0 ring_capacity dummy_event;
      next_seq := 0;
      mem_events := [])

(* ---- snapshots -------------------------------------------------------- *)

type span_stat = { s_count : int; s_total_ns : int; s_max_ns : int }

type hist_stat = {
  h_count : int;
  h_sum : int;
  h_buckets : (int * int) list;
}

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * int) list;
  snap_histograms : (string * hist_stat) list;
  snap_spans : (string * span_stat) list;
  snap_events : event list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun name x acc -> (name, f x) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)

let hist_stat h =
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.h_counts.(i) > 0 then
      (* bucket i holds values < 2^i (and >= 2^(i-1)): inclusive bound *)
      buckets := ((1 lsl i) - 1, h.h_counts.(i)) :: !buckets
  done;
  { h_count = h.h_n; h_sum = h.h_sum; h_buckets = !buckets }

(* Estimate a quantile from the log2 buckets: walk cumulative counts to
   the target rank, then interpolate linearly across the bucket's value
   range [2^(i-1), 2^i - 1].  Works on diffed snapshots too, since it
   only needs the (bound, count) list. *)
let hist_quantile h q =
  if h.h_count <= 0 then 0.
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    let target = q *. float_of_int (h.h_count - 1) in
    let rec walk cum = function
      | [] -> 0.
      | (ub, c) :: rest ->
        if float_of_int (cum + c) > target || rest = [] then begin
          let lo = if ub <= 0 then 0. else float_of_int ((ub + 1) / 2) in
          let hi = float_of_int (max ub 0) in
          let frac =
            if c <= 0 then 0.
            else
              Float.min 1.
                (Float.max 0. ((target -. float_of_int cum) /. float_of_int c))
          in
          lo +. (frac *. (hi -. lo))
        end
        else walk (cum + c) rest
    in
    walk 0 h.h_buckets
  end

let snapshot () =
  with_reg (fun () ->
      { snap_counters =
          sorted_bindings counters_tbl (fun c -> Atomic.get c.c_v);
        snap_gauges = sorted_bindings gauges_tbl (fun g -> Atomic.get g.g_v);
        snap_histograms = sorted_bindings hists_tbl hist_stat;
        snap_spans =
          sorted_bindings spans_tbl (fun sp ->
              { s_count = sp.sp_n;
                s_total_ns = sp.sp_total;
                s_max_ns = sp.sp_max });
        snap_events = recent_unlocked () })

let since base =
  let now = snapshot () in
  let base_of assoc name zero =
    match List.assoc_opt name assoc with Some v -> v | None -> zero
  in
  { snap_counters =
      List.map
        (fun (n, v) -> (n, v - base_of base.snap_counters n 0))
        now.snap_counters;
    snap_gauges = now.snap_gauges;
    snap_histograms =
      List.map
        (fun (n, h) ->
          match List.assoc_opt n base.snap_histograms with
          | None -> (n, h)
          | Some b ->
            let buckets =
              List.filter_map
                (fun (ub, c) ->
                  let c' = c - base_of b.h_buckets ub 0 in
                  if c' > 0 then Some (ub, c') else None)
                h.h_buckets
            in
            ( n,
              { h_count = h.h_count - b.h_count;
                h_sum = h.h_sum - b.h_sum;
                h_buckets = buckets } ))
        now.snap_histograms;
    snap_spans =
      List.map
        (fun (n, s) ->
          match List.assoc_opt n base.snap_spans with
          | None -> (n, s)
          | Some b ->
            ( n,
              { s_count = s.s_count - b.s_count;
                s_total_ns = s.s_total_ns - b.s_total_ns;
                s_max_ns = s.s_max_ns } ))
        now.snap_spans;
    snap_events = now.snap_events }

(* ---- rendering -------------------------------------------------------- *)

let pp_event ppf e =
  Fmt.pf ppf "#%d tid=%d frame=%d %s%s" e.seq e.tid e.frame e.kind
    (if e.detail = "" then "" else ": " ^ e.detail)

let pp ppf s =
  Fmt.pf ppf "@[<v>";
  if s.snap_counters <> [] then begin
    Fmt.pf ppf "counters:@,";
    List.iter (fun (n, v) -> Fmt.pf ppf "  %-34s %12d@," n v) s.snap_counters
  end;
  if s.snap_gauges <> [] then begin
    Fmt.pf ppf "gauges:@,";
    List.iter (fun (n, v) -> Fmt.pf ppf "  %-34s %12d@," n v) s.snap_gauges
  end;
  if s.snap_spans <> [] then begin
    Fmt.pf ppf "spans (virtual ns):@,";
    Fmt.pf ppf "  %-34s %10s %14s %12s %12s@," "phase" "count" "total" "max"
      "mean";
    List.iter
      (fun (n, sp) ->
        Fmt.pf ppf "  %-34s %10d %14d %12d %12d@," n sp.s_count sp.s_total_ns
          sp.s_max_ns
          (if sp.s_count = 0 then 0 else sp.s_total_ns / sp.s_count))
      s.snap_spans
  end;
  let hists =
    List.filter (fun (_, h) -> h.h_count > 0) s.snap_histograms
  in
  if hists <> [] then begin
    Fmt.pf ppf "histograms (log2 buckets, <=bound:count):@,";
    List.iter
      (fun (n, h) ->
        Fmt.pf ppf "  %-34s n=%d sum=%d p50=%.0f p90=%.0f p99=%.0f %a@," n
          h.h_count h.h_sum (hist_quantile h 0.5) (hist_quantile h 0.9)
          (hist_quantile h 0.99)
          Fmt.(list ~sep:(any " ") (fun ppf (ub, c) -> pf ppf "<=%d:%d" ub c))
          h.h_buckets)
      hists
  end;
  (match s.snap_events with
  | [] -> ()
  | evs ->
    Fmt.pf ppf "last %d events:@," (List.length evs);
    List.iter (fun e -> Fmt.pf ppf "  %a@," pp_event e) evs);
  Fmt.pf ppf "@]"

let snapshot_to_json s =
  let b = Buffer.create 4096 in
  let obj_of add items =
    Buffer.add_char b '{';
    List.iteri
      (fun i (n, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":" (json_escape n));
        add v)
      items;
    Buffer.add_char b '}'
  in
  let add_int v = Buffer.add_string b (string_of_int v) in
  Buffer.add_string b "{\"counters\":";
  obj_of add_int s.snap_counters;
  Buffer.add_string b ",\"gauges\":";
  obj_of add_int s.snap_gauges;
  Buffer.add_string b ",\"histograms\":";
  obj_of
    (fun h ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"count\":%d,\"sum\":%d,\"p50\":%.1f,\"p90\":%.1f,\"p99\":%.1f,\"buckets\":["
           h.h_count h.h_sum (hist_quantile h 0.5) (hist_quantile h 0.9)
           (hist_quantile h 0.99));
      List.iteri
        (fun i (ub, c) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "[%d,%d]" ub c))
        h.h_buckets;
      Buffer.add_string b "]}")
    s.snap_histograms;
  Buffer.add_string b ",\"spans\":";
  obj_of
    (fun sp ->
      Buffer.add_string b
        (Printf.sprintf "{\"count\":%d,\"total_ns\":%d,\"max_ns\":%d}"
           sp.s_count sp.s_total_ns sp.s_max_ns))
    s.snap_spans;
  Buffer.add_string b ",\"events\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (event_to_json e))
    s.snap_events;
  Buffer.add_string b "]}";
  Buffer.contents b
