(* Guest address spaces.

   Data memory is byte-addressed and backed by COW page frames ({!Mem}).
   Code is word-addressed and lives in a separate text table (a Harvard
   simplification, see DESIGN.md §6): the program counter indexes [text],
   and patching a syscall site is a single-slot update, which is the moral
   equivalent of rr rewriting the two-byte x86 syscall instruction.

   [written_text] remembers addresses written at run time ([Emit]): the
   replayer must not set software breakpoints there and falls back to the
   SYSEMU-style path (paper §2.3.7). *)

type access = Read | Write | Exec

exception Segv of { addr : int; access : access }

type kind =
  | Anon
  | Stack
  | File_backed of { path : string; file_off : int }
  | Scratch
  | Rr_page
  | Thread_locals

type region = {
  start : int;
  len : int;
  mutable prot : Mem.prot;
  kind : kind;
  shared : bool;
}

type t = {
  id : int;
  pages : (int, Mem.page) Hashtbl.t;
  text : (int, Insn.t) Hashtbl.t;
  written_text : (int, unit) Hashtbl.t;
  breakpoints : (int, unit) Hashtbl.t;
  mutable regions : region list; (* sorted by start *)
  mutable mmap_cursor : int;
}

let mmap_base = 0x1000_0000
let stack_top = 0x7ff0_0000

let create ~id =
  { id;
    pages = Hashtbl.create 256;
    text = Hashtbl.create 1024;
    written_text = Hashtbl.create 16;
    breakpoints = Hashtbl.create 16;
    regions = [];
    mmap_cursor = mmap_base }

let page_count addr len =
  if len <= 0 then 0
  else Mem.page_index (addr + len - 1) - Mem.page_index addr + 1

let regions t = t.regions

let find_region t addr =
  List.find_opt (fun r -> addr >= r.start && addr < r.start + r.len) t.regions

let insert_region t r =
  let rec insert = function
    | [] -> [ r ]
    | hd :: tl when hd.start < r.start -> hd :: insert tl
    | rest -> r :: rest
  in
  t.regions <- insert t.regions

let overlaps t ~addr ~len =
  List.exists
    (fun r -> addr < r.start + r.len && r.start < addr + len)
    t.regions

(* Map [len] bytes at [addr] (both page-aligned in practice; we align for
   callers).  Pages are created eagerly so that fork-inherited shared
   mappings alias the same frames. *)
let map t ~addr ~len ~prot ?(kind = Anon) ?(shared = false) () =
  let addr = addr land lnot (Mem.page_size - 1) in
  let len = (len + Mem.page_size - 1) land lnot (Mem.page_size - 1) in
  if len = 0 then invalid_arg "Addr_space.map: empty";
  if overlaps t ~addr ~len then invalid_arg "Addr_space.map: overlap";
  insert_region t { start = addr; len; prot; kind; shared };
  let first = Mem.page_index addr in
  for i = first to first + page_count addr len - 1 do
    Hashtbl.replace t.pages i (Mem.fresh_page ~prot ~shared ())
  done;
  addr

let find_map_addr t len =
  let len = (len + Mem.page_size - 1) land lnot (Mem.page_size - 1) in
  let rec search addr =
    if overlaps t ~addr ~len then search (addr + Mem.page_size) else addr
  in
  let addr = search t.mmap_cursor in
  t.mmap_cursor <- addr + len;
  addr

let unmap t ~addr ~len =
  let addr = addr land lnot (Mem.page_size - 1) in
  let len = (len + Mem.page_size - 1) land lnot (Mem.page_size - 1) in
  let hi = addr + len in
  let keep, drop =
    List.partition (fun r -> r.start + r.len <= addr || r.start >= hi) t.regions
  in
  (* Split partially covered regions. *)
  let fragments =
    List.concat_map
      (fun r ->
        let pieces = ref [] in
        if r.start < addr then
          pieces := { r with len = addr - r.start } :: !pieces;
        if r.start + r.len > hi then
          pieces :=
            { r with start = hi; len = r.start + r.len - hi } :: !pieces;
        !pieces)
      drop
  in
  t.regions <- List.sort (fun a b -> compare a.start b.start) (keep @ fragments);
  let first = Mem.page_index addr in
  for i = first to first + page_count addr len - 1 do
    match Hashtbl.find_opt t.pages i with
    | Some p ->
      Mem.decref p;
      Hashtbl.remove t.pages i
    | None -> ()
  done

let unmap_all t =
  Hashtbl.iter (fun _ p -> Mem.decref p) t.pages;
  Hashtbl.reset t.pages;
  t.regions <- [];
  Hashtbl.reset t.text;
  Hashtbl.reset t.written_text;
  Hashtbl.reset t.breakpoints;
  t.mmap_cursor <- mmap_base

(* mprotect: per-frame protection.  A COW frame shared with another space
   must be unshared first so the other space's protections are unaffected. *)
let protect t ~addr ~len ~prot =
  let addr = addr land lnot (Mem.page_size - 1) in
  let len = (len + Mem.page_size - 1) land lnot (Mem.page_size - 1) in
  List.iter
    (fun r ->
      if addr < r.start + r.len && r.start < addr + len then r.prot <- prot)
    t.regions;
  let first = Mem.page_index addr in
  for i = first to first + page_count addr len - 1 do
    match Hashtbl.find_opt t.pages i with
    | Some p ->
      let p =
        if p.Mem.refs > 1 && not p.Mem.shared then begin
          let q = Mem.unshare p in
          Hashtbl.replace t.pages i q;
          q
        end
        else p
      in
      p.Mem.prot <- prot
    | None -> ()
  done

let get_page t addr access =
  match Hashtbl.find_opt t.pages (Mem.page_index addr) with
  | None -> raise (Segv { addr; access })
  | Some p -> p

let readable_page t addr ~force =
  let p = get_page t addr Read in
  if (not force) && p.Mem.prot land Mem.prot_r = 0 then
    raise (Segv { addr; access = Read });
  p

(* A page about to be written: enforce protection (unless [force], the
   kernel/supervisor path) and break COW sharing. *)
let writable_page t addr ~force =
  let idx = Mem.page_index addr in
  let p = get_page t addr Write in
  if (not force) && p.Mem.prot land Mem.prot_w = 0 then
    raise (Segv { addr; access = Write });
  if p.Mem.refs > 1 && not p.Mem.shared then begin
    let q = Mem.unshare p in
    Hashtbl.replace t.pages idx q;
    q
  end
  else p

(* Optional write observer: the trace indexer installs one to learn which
   pages each replayed frame touches.  Unset (the normal case) it costs a
   single ref read per store. *)
let write_observer : (t -> addr:int -> len:int -> unit) option ref = ref None

let set_write_observer f = write_observer := Some f
let clear_write_observer () = write_observer := None

let observe_write t ~addr ~len =
  match !write_observer with
  | None -> ()
  | Some f -> f t ~addr ~len

let read_u8 ?(force = false) t addr =
  Mem.get_u8 (readable_page t addr ~force) (Mem.page_offset addr)

let write_u8 ?(force = false) t addr v =
  observe_write t ~addr ~len:1;
  Mem.set_u8 (writable_page t addr ~force) (Mem.page_offset addr) v

let read_u64 ?(force = false) t addr =
  let off = Mem.page_offset addr in
  if off <= Mem.page_size - 8 then
    let p = readable_page t addr ~force in
    Int64.to_int (Bytes.get_int64_le p.Mem.bytes off)
  else begin
    let v = ref 0L in
    for i = 7 downto 0 do
      v :=
        Int64.logor (Int64.shift_left !v 8)
          (Int64.of_int (read_u8 ~force t (addr + i)))
    done;
    Int64.to_int !v
  end

let write_u64 ?(force = false) t addr v =
  observe_write t ~addr ~len:8;
  let off = Mem.page_offset addr in
  if off <= Mem.page_size - 8 then
    let p = writable_page t addr ~force in
    Bytes.set_int64_le p.Mem.bytes off (Int64.of_int v)
  else
    for i = 0 to 7 do
      write_u8 ~force t (addr + i) ((v lsr (8 * i)) land 0xff)
    done

let read_bytes ?(force = false) t addr len =
  let out = Bytes.create len in
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let off = Mem.page_offset a in
    let chunk = min (len - !i) (Mem.page_size - off) in
    let p = readable_page t a ~force in
    Bytes.blit p.Mem.bytes off out !i chunk;
    i := !i + chunk
  done;
  out

let write_bytes ?(force = false) t addr b =
  let len = Bytes.length b in
  if len > 0 then observe_write t ~addr ~len;
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let off = Mem.page_offset a in
    let chunk = min (len - !i) (Mem.page_size - off) in
    let p = writable_page t a ~force in
    Bytes.blit b !i p.Mem.bytes off chunk;
    i := !i + chunk
  done

(* Text (code) accessors. *)

let text_get t addr = Hashtbl.find_opt t.text addr

let text_set t addr insn = Hashtbl.replace t.text addr insn

(* Global count of statically loaded instructions (execs), for the DBI
   cost model: each process retranslates its code. *)
let loaded_insns = ref 0

let text_load t ~base code =
  loaded_insns := !loaded_insns + Array.length code;
  Array.iteri (fun i insn -> Hashtbl.replace t.text (base + i) insn) code

let text_write t addr insn =
  Hashtbl.replace t.text addr insn;
  Hashtbl.replace t.written_text addr ()

let text_was_written t addr = Hashtbl.mem t.written_text addr

(* Software breakpoints (the replayer's run-to-event mechanism). *)

let bp_set t addr = Hashtbl.replace t.breakpoints addr ()
let bp_clear t addr = Hashtbl.remove t.breakpoints addr
let bp_is_set t addr = Hashtbl.mem t.breakpoints addr
let bp_any t = Hashtbl.length t.breakpoints > 0

(* Fork: COW-share every frame.  Cheap by construction — this is what
   makes rr-style checkpoints take "less than ten milliseconds". *)
let fork t ~id =
  let child =
    { id;
      pages = Hashtbl.create (Hashtbl.length t.pages);
      text = Hashtbl.copy t.text;
      written_text = Hashtbl.copy t.written_text;
      breakpoints = Hashtbl.copy t.breakpoints;
      regions = t.regions;
      mmap_cursor = t.mmap_cursor }
  in
  Hashtbl.iter
    (fun idx p ->
      Mem.incref p;
      Hashtbl.replace child.pages idx p)
    t.pages;
  child

let release t = unmap_all t

(* Proportional set size in bytes: each frame contributes size/refs
   (paper §4.5). *)
let pss t =
  Hashtbl.fold
    (fun _ p acc -> acc +. (float_of_int Mem.page_size /. float_of_int p.Mem.refs))
    t.pages 0.

let mapped_bytes t =
  List.fold_left (fun acc r -> acc + r.len) 0 t.regions
