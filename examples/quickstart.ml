(* Quickstart: write a tiny guest program, record it, replay it.

     dune exec examples/quickstart.exe

   The program reads nondeterministic inputs (pid, random bytes, the
   time-stamp counter), and the replay — running on a fresh kernel with
   different entropy — reproduces its execution exactly. *)

module K = Kernel
module G = Guest

let ( @. ) = List.append

(* 1. A guest program, written with the Guest assembler library.  It asks
   the kernel for its pid and some random bytes, reads the TSC, and folds
   everything into its exit code. *)
let build_program k =
  Vfs.mkdir_p (K.vfs k) "/bin";
  let b = G.create () in
  let buf = G.bss b 16 in
  G.emit b
    (G.sc Sysno.getpid []
    @. [ Asm.movr 7 0 ] (* r7 = pid *)
    @. G.sc Sysno.getrandom [ G.imm buf; G.imm 8 ]
    @. [ Asm.movi 9 buf; Asm.load 8 9 0 ] (* r8 = random *)
    @. [ Asm.I (Insn.Rdtsc 10) ] (* r10 = tsc *)
    (* exit code = (pid + random + tsc) mod 200 *)
    @. [ Asm.addr_ 7 8;
         Asm.addr_ 7 10;
         Asm.I (Insn.Alu (Insn.Rem, 7, Insn.Imm 200));
         Asm.movr 1 7 ]
    @. G.sc Sysno.exit_group [ G.reg 1 ]);
  K.install_image k ~path:"/bin/quickstart" (G.build b ~name:"quickstart" ())

let () =
  (* 2. Record it.  The recorder supervises the program through the
     simulated kernel's ptrace interface and captures every
     nondeterministic input into a trace. *)
  let trace, rec_stats, _k =
    Recorder.record ~setup:build_program ~exe:"/bin/quickstart" ()
  in
  Fmt.pr "recorded: exit status %a, %d trace frames@."
    Fmt.(option int)
    rec_stats.Recorder.exit_status (Trace.n_events trace);
  Trace.Reader.iter (fun i e -> Fmt.pr "  frame %2d: %a@." i Event.pp e) trace;

  (* 3. Replay it on a fresh kernel seeded differently: if any input had
     escaped the recording, the replay would diverge (and raise). *)
  let rep_stats, _ = Replayer.replay trace in
  Fmt.pr "replayed: exit status %a after %d frames@."
    Fmt.(option int)
    rep_stats.Replayer.exit_status rep_stats.Replayer.events_applied;

  assert (rep_stats.Replayer.exit_status = rec_stats.Recorder.exit_status);
  Fmt.pr "recording and replay agree — nondeterminism fully captured.@."
