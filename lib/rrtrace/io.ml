(* Pluggable trace IO with deterministic fault injection (see io.mli).

   Writers and readers are closure records, so the trace store never
   knows whether it is talking to a real file, an in-memory buffer, or
   a fault-injecting wrapper around either. *)

let tm_fault = Telemetry.counter "io.fault_injected"

type error = { op : string; path : string; reason : string }

exception Io_error of error

let fail ~op ~path reason = raise (Io_error { op; path; reason })

let pp_error ppf e = Fmt.pf ppf "%s: %s failed: %s" e.path e.op e.reason
let error_to_string e = Fmt.str "%a" pp_error e

type fault =
  | Write_enospc_after of int
  | Write_crash_at of int
  | Write_short_at of int
  | Write_bit_flip of int
  | Read_truncate_at of int
  | Read_bit_flip of int
  | Read_fail_at of int

(* ---- writers --------------------------------------------------------- *)

type writer = {
  w_path : string;
  w_emit : string -> unit; (* forward bytes; may raise Io_error *)
  w_finish : unit -> unit;
  mutable w_count : int; (* bytes accepted by this layer *)
  mutable w_closed : bool;
}

let writer_path w = w.w_path
let written w = w.w_count

let write w s =
  if w.w_closed then fail ~op:"write" ~path:w.w_path "writer is closed";
  w.w_emit s;
  w.w_count <- w.w_count + String.length s

let close_writer w =
  if not w.w_closed then begin
    w.w_closed <- true;
    w.w_finish ()
  end

let buffer_writer ?(path = "<buffer>") b =
  { w_path = path;
    w_emit = Buffer.add_string b;
    w_finish = ignore;
    w_count = 0;
    w_closed = false }

let file_writer path =
  match open_out_bin path with
  | oc ->
    { w_path = path;
      w_emit = (fun s -> try output_string oc s with Sys_error m -> fail ~op:"write" ~path m);
      w_finish = (fun () -> try close_out oc with Sys_error m -> fail ~op:"close" ~path m);
      w_count = 0;
      w_closed = false }
  | exception Sys_error m -> fail ~op:"open" ~path m

(* Flip one bit of byte [at] (bit position derived from the offset so
   different offsets hit different bits, deterministically). *)
let flip_byte b ~at =
  let bit = at mod 8 in
  Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor (1 lsl bit)))

(* The earliest write cut among the plan's faults inside [off, off+len),
   with its reason; [Some (cut, reason)] means bytes below [cut] still
   land. *)
let write_cut faults ~off ~len =
  List.fold_left
    (fun acc f ->
      let candidate =
        match f with
        | Write_enospc_after n when n < off + len -> Some (max n off, "ENOSPC")
        | Write_crash_at k when k < off + len ->
          Some (max k off, "simulated crash (writer killed)")
        | Write_short_at k when k < off + len -> Some (max k off, "short write")
        | _ -> None
      in
      match (acc, candidate) with
      | None, c -> c
      | Some _, None -> acc
      | Some (a, _), Some (b, _) -> if b < a then candidate else acc)
    None faults

let inject faults inner =
  let dead = ref None in
  let emit s =
    (match !dead with
    | Some reason -> fail ~op:"write" ~path:inner.w_path reason
    | None -> ());
    let off = inner.w_count in
    let len = String.length s in
    let forward_len, failure =
      match write_cut faults ~off ~len with
      | Some (cut, reason) -> (cut - off, Some reason)
      | None -> (len, None)
    in
    if forward_len > 0 then begin
      let b = Bytes.of_string (String.sub s 0 forward_len) in
      List.iter
        (function
          | Write_bit_flip at when at >= off && at < off + forward_len ->
            Telemetry.incr tm_fault;
            flip_byte b ~at:(at - off)
          | _ -> ())
        faults;
      write inner (Bytes.to_string b)
    end;
    match failure with
    | None -> ()
    | Some reason ->
      Telemetry.incr tm_fault;
      dead := Some reason;
      fail ~op:"write" ~path:inner.w_path reason
  in
  { w_path = inner.w_path;
    w_emit = emit;
    w_finish = (fun () -> close_writer inner);
    w_count = 0;
    w_closed = false }

(* ---- readers --------------------------------------------------------- *)

type reader = { r_path : string; r_all : unit -> string }

let reader_path r = r.r_path
let read_all r = r.r_all ()

let string_reader ?(path = "<memory>") s = { r_path = path; r_all = (fun () -> s) }

let file_reader path =
  { r_path = path;
    r_all =
      (fun () ->
        try In_channel.with_open_bin path In_channel.input_all
        with Sys_error m -> fail ~op:"read" ~path m) }

let inject_reader faults inner =
  let all () =
    let s = inner.r_all () in
    (* A failing read aborts before delivering anything usable. *)
    List.iter
      (function
        | Read_fail_at n when String.length s > n ->
          Telemetry.incr tm_fault;
          fail ~op:"read" ~path:inner.r_path
            (Fmt.str "read error after %d bytes" n)
        | _ -> ())
      faults;
    let s =
      List.fold_left
        (fun s -> function
          | Read_truncate_at n when String.length s > n ->
            Telemetry.incr tm_fault;
            String.sub s 0 n
          | _ -> s)
        s faults
    in
    let b = Bytes.of_string s in
    List.iter
      (function
        | Read_bit_flip at when at < Bytes.length b ->
          Telemetry.incr tm_fault;
          flip_byte b ~at
        | _ -> ())
      faults;
    Bytes.to_string b
  in
  { r_path = inner.r_path; r_all = all }
