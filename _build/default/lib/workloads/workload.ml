(* Benchmark workloads (paper §4.1).

   A workload bundles a root executable, the filesystem/process
   environment it needs, and metadata for the harness.  The same workload
   runs four ways:
   - baseline: untraced, on [cores] cores (the paper's "Baseline");
   - single-core: untraced, pinned to one core;
   - recorded: under the recorder, with options (the Record columns);
   - replayed: the recorded trace under the replayer.

   The [setup] function may spawn untraced helper processes — that is how
   htmltest's mochitest harness stays outside the recording (§4.1). *)

module K = Kernel

type t = {
  name : string;
  exe : string;
  setup : K.t -> unit;
  cores : int; (* baseline parallelism *)
  score_based : bool; (* octane: overhead computed from scores (§4.2) *)
}

type run_result = {
  wall_time : int;
  peak_pss : float;
  exit_status : int option;
  kernel : K.t;
}

(* PSS sampling interval in virtual time, following §4.5's 10ms. *)
let pss_sample_interval = 100_000

let baseline ?(cores = 0) ?(seed = 11) w =
  let cores = if cores = 0 then w.cores else cores in
  let k = K.create ~seed () in
  w.setup k;
  let root = K.spawn k ~path:w.exe () in
  let peak = ref 0. in
  let on_sample _t = peak := max !peak (K.total_pss k) in
  let stats =
    K.run_baseline k ~cores ~sample_every:pss_sample_interval ~on_sample ()
  in
  on_sample 0;
  if stats.K.deadlocked then
    Fmt.failwith "workload %s deadlocked in baseline" w.name;
  { wall_time = stats.K.wall_time;
    peak_pss = !peak;
    exit_status =
      (match Hashtbl.find_opt k.K.procs root.Task.tid with
      | Some p -> p.Task.exit_code
      | None -> None);
    kernel = k }

type recorded = {
  trace : Trace.t;
  rec_stats : Recorder.stats;
  rec_peak_pss : float;
}

let record ?(opts = Recorder.default_opts) w =
  let peak = ref 0. in
  let last_sample = ref 0 in
  let on_stop k =
    if K.now k - !last_sample >= pss_sample_interval then begin
      last_sample := K.now k;
      peak := max !peak (K.total_pss k)
    end
  in
  let trace, rec_stats, k =
    Recorder.record ~opts ~on_stop ~setup:w.setup ~exe:w.exe ()
  in
  peak := max !peak (K.total_pss k);
  ({ trace; rec_stats; rec_peak_pss = !peak }, k)

type replayed = {
  rep_stats : Replayer.stats;
  rep_peak_pss : float;
}

let replay ?(opts = Replayer.default_opts) (r : recorded) =
  let peak = ref 0. in
  let last_sample = ref 0 in
  let on_frame k =
    if K.now k - !last_sample >= pss_sample_interval then begin
      last_sample := K.now k;
      peak := max !peak (K.total_pss k)
    end
  in
  let rep_stats, k = Replayer.replay ~opts ~on_frame r.trace in
  peak := max !peak (K.total_pss k);
  ({ rep_stats; rep_peak_pss = !peak }, k)
