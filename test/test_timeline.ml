(* The timeline tracer (lib/obs): scope nesting, lanes, exception
   safety, concurrent emission from worker domains, Chrome trace-event
   export invariants (every B balanced by a matching E, parseable
   JSON), and the per-stage attribution ledger. *)

module Tl = Timeline

(* Every test drives the virtual clock by hand so results are exact. *)
let with_clock f =
  let now = ref 0 in
  Tl.set_virtual_clock (fun () -> !now);
  Fun.protect ~finally:Tl.clear_virtual_clock (fun () -> f now)

let stop_and_events () =
  Tl.stop ();
  Tl.events ()

(* ---- nesting and attribution ---------------------------------------- *)

let test_nesting_and_attribution () =
  with_clock @@ fun now ->
  Tl.start ();
  Tl.begin_scope "record.session";
  now := 100;
  Tl.scope "record.setup" (fun () -> now := 300);
  Tl.scope "kern.run" (fun () ->
      now := 500;
      Tl.scope "record.flush" (fun () -> now := 600);
      now := 800);
  now := 1000;
  Tl.end_scope "record.session";
  ignore (stop_and_events ());
  let s = Tl.attribution () in
  (* total = the session root's inclusive time, not the raw span *)
  Alcotest.(check int) "window is the session" 1000 s.Tl.at_total_ns;
  let self name =
    match List.find_opt (fun st -> st.Tl.st_name = name) s.Tl.at_stages with
    | Some st -> st.Tl.st_self_ns
    | None -> Alcotest.failf "stage %s missing" name
  in
  Alcotest.(check int) "setup self" 200 (self "record.setup");
  (* kern.run inclusive 300..800 minus the nested flush (500..600) *)
  Alcotest.(check int) "kern.run self" 400 (self "kern.run");
  Alcotest.(check int) "flush self" 100 (self "record.flush");
  Alcotest.(check bool) "session is not a stage" true
    (not (List.exists (fun st -> st.Tl.st_name = "record.session") s.Tl.at_stages));
  (* 0..100 and 800..1000 ran directly under the session root *)
  Alcotest.(check int) "untracked" 300 s.Tl.at_untracked_ns;
  Alcotest.(check int) "covered + untracked = total" s.Tl.at_total_ns
    (s.Tl.at_covered_ns + s.Tl.at_untracked_ns)

let test_exception_safety () =
  with_clock @@ fun now ->
  Tl.start ();
  (try
     Tl.scope "record.stop" (fun () ->
         now := 50;
         failwith "boom")
   with Failure _ -> ());
  (* the frame closed on the way out: a further end_scope has nothing
     to close and must be counted as a mismatch, not crash *)
  Tl.end_scope "record.stop";
  let evs = stop_and_events () in
  let kinds = List.map (fun e -> e.Tl.ev_kind) evs in
  Alcotest.(check bool) "B then E emitted" true (kinds = [ Tl.B; Tl.E ]);
  Alcotest.(check int) "stray end counted" 1 (Tl.mismatches ())

let test_mismatched_name_closes_frame () =
  with_clock @@ fun now ->
  Tl.start ();
  Tl.begin_scope "kern.run";
  now := 10;
  Tl.end_scope "trace.deflate";
  let evs = stop_and_events () in
  (match evs with
  | [ b; e ] ->
    Alcotest.(check string) "E carries the frame's own name" "kern.run"
      e.Tl.ev_name;
    Alcotest.(check int) "same lane" b.Tl.ev_lane e.Tl.ev_lane
  | _ -> Alcotest.fail "expected exactly B and E");
  Alcotest.(check int) "mismatch counted" 1 (Tl.mismatches ())

let test_overflow_drops_counted () =
  with_clock @@ fun _now ->
  (* 16 is the smallest buffer [start] will allocate *)
  Tl.start ~capacity:16 ();
  for _ = 1 to 40 do
    Tl.instant "kern.sched_switch"
  done;
  ignore (stop_and_events ());
  Alcotest.(check int) "buffer capped" 16 (List.length (Tl.events ()));
  Alcotest.(check int) "drops counted" 24 (Tl.dropped ())

(* ---- export invariants ----------------------------------------------- *)

(* Walk a parsed Chrome document: per-tid stack discipline — every B is
   closed by an E with the same name, nothing left open. *)
let check_balanced json =
  let root = Json_min.parse json in
  let top = match root with Json_min.Obj m -> m | _ -> Alcotest.fail "not an object" in
  let evs =
    match List.assoc_opt "traceEvents" top with
    | Some (Json_min.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let str m k =
    match List.assoc_opt k m with Some (Json_min.Str s) -> s | _ -> "" in
  let num m k =
    match List.assoc_opt k m with
    | Some (Json_min.Num f) -> int_of_float f
    | _ -> Alcotest.failf "event missing numeric %s" k
  in
  List.iter
    (fun ev ->
      let m = match ev with Json_min.Obj m -> m | _ -> Alcotest.fail "event not an object" in
      match str m "ph" with
      | "B" ->
        let tid = num m "tid" in
        let st = Option.value ~default:[] (Hashtbl.find_opt stacks tid) in
        Hashtbl.replace stacks tid (str m "name" :: st)
      | "E" -> (
        let tid = num m "tid" in
        match Hashtbl.find_opt stacks tid with
        | Some (top :: rest) ->
          Alcotest.(check string) "E matches innermost B" top (str m "name");
          Hashtbl.replace stacks tid rest
        | _ -> Alcotest.failf "E %S on tid %d with empty stack" (str m "name") tid)
      | _ -> ())
    evs;
  Hashtbl.iter
    (fun tid st ->
      if st <> [] then
        Alcotest.failf "tid %d left %d scopes open" tid (List.length st))
    stacks;
  List.length evs

let test_export_synthesizes_close () =
  with_clock @@ fun now ->
  Tl.start ();
  Tl.begin_scope "record.session";
  now := 10;
  Tl.begin_scope "kern.run";
  now := 25;
  Tl.stop ();
  (* two scopes still open: the export must synthesise their E events *)
  ignore (check_balanced (Tl.to_chrome_json ()));
  (* rebalance the real per-domain stack for the tests that follow *)
  Tl.end_scope "kern.run";
  Tl.end_scope "record.session"

(* Random scope programs: whatever we emit, the export parses and every
   B has a matching E in stack order. *)
let names = [| "kern.run"; "record.stop"; "trace.deflate"; "replay.frame" |]

let gen_program =
  (* ops: 0..3 begin names.(i), 4 end, 5 instant, 6 sample *)
  QCheck2.Gen.(list_size (int_bound 60) (int_bound 6))

let prop_export_balanced ops =
  with_clock @@ fun now ->
  Tl.start ();
  let depth = ref 0 in
  List.iter
    (fun op ->
      now := !now + 7;
      if op < 4 then begin
        Tl.begin_scope names.(op);
        incr depth
      end
      else if op = 4 then begin
        (* close something (possibly nothing: exercises the mismatch
           path, which must still never unbalance the export) *)
        Tl.end_scope names.(op mod 4);
        if !depth > 0 then decr depth
      end
      else if op = 5 then Tl.instant "kern.sched_switch"
      else Tl.sample "pool.queue_depth" !now)
    ops;
  Tl.stop ();
  let n = check_balanced (Tl.to_chrome_json ()) in
  (* drain the domain stack so the next iteration starts clean *)
  while !depth > 0 do
    Tl.end_scope "cleanup";
    decr depth
  done;
  n >= 0

let test_export_property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"chrome export always balanced" ~count:100
       gen_program prop_export_balanced)

(* ---- concurrency ------------------------------------------------------ *)

(* Two pool domains hammering scopes concurrently with the supervisor:
   per-domain stacks must keep each domain's B/E properly nested in the
   export, on distinct lanes, with zero mismatches.  Uses a Pool — the
   only sanctioned way to get extra domains (check_format.sh). *)
let test_two_domain_hammer () =
  with_clock @@ fun now ->
  Tl.start ~capacity:(1 lsl 16) ();
  let p = Pool.create ~jobs:2 () in
  let work () =
    for i = 1 to 500 do
      Tl.scope "trace.deflate" (fun () ->
          Tl.scope "trace.store" (fun () -> ());
          if i mod 50 = 0 then Tl.instant "kern.sched_switch")
    done
  in
  let a = Pool.submit p work and b = Pool.submit p work in
  for _ = 1 to 200 do
    now := !now + 3;
    Tl.scope "record.stop" (fun () -> ())
  done;
  Pool.await a;
  Pool.await b;
  Pool.shutdown p;
  Tl.stop ();
  Alcotest.(check int) "no mismatches" 0 (Tl.mismatches ());
  Alcotest.(check int) "no drops" 0 (Tl.dropped ());
  ignore (check_balanced (Tl.to_chrome_json ()));
  let lanes =
    List.sort_uniq compare (List.map (fun e -> e.Tl.ev_lane) (Tl.events ()))
  in
  (* On a multicore host the pool spawns real domains: their pool.run
     scopes land on worker lanes (>= 10_000) next to the supervisor's
     lane 0.  On a 1-core host the pool degrades to the inline serial
     path (everything on lane 0) — the nesting/balance checks above
     still exercise the interleaving, so only the lane split is
     conditional. *)
  if Pool.jobs p > 1 then begin
    Alcotest.(check bool) "three distinct lanes" true (List.length lanes >= 3);
    Alcotest.(check bool) "worker lanes disjoint from tids" true
      (List.exists (fun l -> l >= 10_000) lanes)
  end
  else
    Alcotest.(check (list int)) "inline path stays on lane 0" [ 0 ] lanes;
  let deflates =
    List.length
      (List.filter
         (fun e -> e.Tl.ev_kind = Tl.B && e.Tl.ev_name = "trace.deflate")
         (Tl.events ()))
  in
  Alcotest.(check int) "every deflate scope recorded" 1000 deflates

let suites =
  [ ( "timeline",
      [ Alcotest.test_case "nesting + attribution ledger" `Quick
          test_nesting_and_attribution;
        Alcotest.test_case "scope closes on exception" `Quick
          test_exception_safety;
        Alcotest.test_case "mismatched end closes frame" `Quick
          test_mismatched_name_closes_frame;
        Alcotest.test_case "overflow drops are counted" `Quick
          test_overflow_drops_counted;
        Alcotest.test_case "export synthesizes E for open scopes" `Quick
          test_export_synthesizes_close;
        test_export_property;
        Alcotest.test_case "two-domain hammer stays nested" `Quick
          test_two_domain_hammer ] ) ]
