(* Shared pieces for workload program generators. *)

module K = Kernel
module G = Guest

let ( @. ) = List.append

(* Deterministic pseudo-file contents: repetitive enough to compress but
   not trivially (a mix of text-like runs and varying bytes). *)
let file_contents ~seed ~len =
  let e = Entropy.create seed in
  let b = Buffer.create len in
  while Buffer.length b < len do
    let run = 16 + Entropy.int e 48 in
    let c = Char.chr (32 + Entropy.int e 90) in
    Buffer.add_string b (String.make run c);
    Buffer.add_string b (Printf.sprintf "%08x" (Entropy.bits e land 0xffffffff))
  done;
  Buffer.sub b 0 len

let install_file k ~path ~seed ~len =
  let reg = Vfs.create_file (K.vfs k) path in
  ignore (Vfs.write (K.vfs k) reg ~off:0 (Bytes.of_string (file_contents ~seed ~len)))

(* Install a table of 8-byte string pointers at a fresh data address;
   returns the table's address. *)
let path_table b paths =
  let addrs = List.map (fun p -> G.str b p) paths in
  let tbl = G.bss b (8 * List.length paths) in
  (* Initialized via data blob: build the little-endian encoding. *)
  let bytes = Bytes.create (8 * List.length addrs) in
  List.iteri
    (fun i a -> Bytes.set_int64_le bytes (8 * i) (Int64.of_int a))
    addrs;
  let data_addr = G.blob b (Bytes.to_string bytes) in
  (* Copy loop at program start would be needed if blob and bss differ;
     return the initialized blob directly instead. *)
  ignore tbl;
  data_addr

(* Exit with r0's (possibly negative) value clamped for visibility. *)
let exit_with_r0 = [ Asm.movr 1 0 ] @. G.sc Sysno.exit_group [ G.reg 1 ]

(* Guard: exit_group(70 + marker) when r0 < 0. *)
let die_if_error b marker =
  let ok = G.fresh_label b "ok" in
  [ Asm.jcc Insn.Ge 0 (G.imm 0) ok ]
  @. G.sys_exit_group (70 + marker)
  @. [ Asm.label ok ]
