(* Fixed addresses of the structures rr injects into every tracee.

   The "RR page" (paper §2.3.5) sits at the same address in every address
   space, immediately after each exec, so the recorder's seccomp filter
   can key on the untraced-instruction address and so patched code can
   reach the interception entry points from anywhere. *)

(* Text addresses (instruction slots). *)
let rr_page_text = 0x7000_0000

let untraced_syscall_insn = rr_page_text
(* The "privileged"/untraced syscall instruction: the recorder's seccomp
   filter allows syscalls whose PC is exactly here. *)

let traced_fallback_insn = rr_page_text + 1
(* A syscall instruction the interception library jumps to when it must
   fall back to a traced syscall. *)

(* Data addresses. *)
let thread_locals_page = 0x7000_1000
let thread_locals_size = 4096

(* Thread-locals layout (offsets into the page; paper §3.6). *)
let tl_locked = 0 (* reentry guard (§3.5) *)
let tl_scratch_ptr = 8
let tl_buf_ptr = 16
let tl_buf_size = 24
let tl_desched_fd = 32
let tl_tid = 40

(* The "preload globals" page: per-address-space state of the
   interception library that is shared by all threads (unlike the
   thread-locals page, whose contents are swapped per thread). *)
let globals_page = 0x7000_2000
let globals_size = 4096

let gl_fd_bitmap = 0
(* One bit per fd (0..63): set when the fd refers to a cloneable regular
   file.  Maintained by the recorder at open/close exits through
   *recorded* memory writes, so the interception library makes identical
   block-cloning decisions during record and replay (rr tracks fds in its
   preload library the same way, §3.9). *)

(* Per-task slot areas are interleaved: each 256 KiB slot holds the
   scratch area in its lower half and the trace buffer in its upper half,
   so any number of tasks stays collision-free below the stacks. *)
let slot_base = 0x7100_0000
let slot_stride = 0x4_0000

let scratch_base = slot_base
let scratch_size = 64 * 1024
let scratch_stride = slot_stride

let syscallbuf_base = slot_base + 0x2_0000
let syscallbuf_size = 64 * 1024
let syscallbuf_stride = slot_stride

(* Syscallbuf header layout (offsets into the buffer; §3.8).
   Records follow the header:
     nr(8) result(8) aborted(8) nwrites(8) { addr(8) len(8) data(pad 8) }* *)
let sb_fill = 0 (* bytes of records present *)
let sb_read_cursor = 8 (* replay: consumption offset *)
let sb_is_replay = 16 (* the conditional-move discriminator (§3.8) *)
let sb_abort_commit = 24 (* recorder tells the lib to drop the record *)
let sb_hdr_size = 32

(* Per-task slot assignment: the recorder hands out slot indices. *)
let scratch_for ~slot = scratch_base + (slot * scratch_stride)
let syscallbuf_for ~slot = syscallbuf_base + (slot * syscallbuf_stride)

(* Deterministic RCB/instruction charges for the interception library, so
   recording and replay expose identical counter trajectories (§3.8's
   conditional-move discipline).  Values are arbitrary but fixed. *)
let hook_rcb_cost = 6
let hook_insn_cost = 32
let hook_desched_arm_rcb = 2
let hook_desched_arm_insns = 10
