lib/kern/kernel.mli: Addr_space Bpf Chan Cost Entropy Hashtbl Image Mem Perf_event Signals Task Vfs
