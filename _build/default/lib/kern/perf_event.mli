(** perf_event objects.  The one event rr needs from the kernel is
    PERF_COUNT_SW_CONTEXT_SWITCHES on a specific thread, configured to
    signal that thread whenever it is descheduled (paper §3.3); the
    interception library arms it only around possibly-blocking untraced
    syscalls. *)

type kind = Context_switches

type t = {
  id : int;
  kind : kind;
  target_tid : int;
  mutable enabled : bool;
  mutable count : int;
  mutable signal_on_overflow : int option;
}

val create : id:int -> target_tid:int -> kind -> t
val enable : t -> unit
val disable : t -> unit
val set_signal : t -> int -> unit

val on_deschedule : t -> int option
(** Record a deschedule of the target; the signal to send, if armed. *)
