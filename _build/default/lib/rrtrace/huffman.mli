(** Canonical, length-limited Huffman codes: code-length computation from
    frequencies, canonical code assignment, bit-level encode/decode. *)

val max_code_len : int

val lengths : int array -> int array
(** Code lengths from symbol frequencies; zero-frequency symbols get 0.
    Lengths never exceed {!max_code_len} (frequency flattening retries). *)

val canonical : int array -> int array
(** Canonical code assignment from lengths. *)

type encoder = { lens : int array; codes : int array }

val encoder : int array -> encoder
val write_symbol : Bitio.writer -> encoder -> int -> unit

type decoder

exception Bad_code

val decoder : int array -> decoder
val read_symbol : Bitio.reader -> decoder -> int
