lib/kern/signals.mli: Fmt Insn
