lib/isa/cpu.ml: Addr_space Array Fmt Insn Pmu
