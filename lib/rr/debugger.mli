(** A reverse-execution debugger over replay (paper §1, §6.1).

    Time is measured in trace-frame indices.  Forward execution replays
    frames; {e reverse} execution restores the nearest earlier checkpoint
    and replays forward — rr's scheme, cheap because checkpoints are
    copy-on-write address-space snapshots.

    A session is abstract: checkpoints are internal state, inspected
    only through the accessors below.  This is the substrate the GDB
    remote-protocol stub ([lib/gdbstub]) drives. *)

exception Debug_error of string

type t

val create : ?opts:Replayer.opts -> ?checkpoint_every:int -> Trace.t -> t
(** Start a session at frame 0, checkpointing every [checkpoint_every]
    frames as execution moves forward (default 32, clamped to ≥ 1 —
    the [make_opts] convention: out-of-range values are corrected, not
    trusted). *)

val pos : t -> int
(** Current position: the index of the next frame to apply. *)

val n_events : t -> int

val at_end : t -> bool
(** [pos d = n_events d]: every frame has been applied. *)

val trace : t -> Trace.t

val checkpoint_every : t -> int
(** The (clamped) checkpoint cadence this session was created with. *)

val step : t -> Event.t
(** Apply the next frame; may take a checkpoint. *)

val seek : t -> int -> unit
(** Jump to any frame index.  Backward seeks restore the nearest earlier
    checkpoint and re-execute (reverse execution). *)

val reverse_step : t -> unit
(** Step one frame backwards.  At frame 0 this is a no-op: the position
    is unchanged and no error is raised (the caller — e.g. the GDB stub
    — reports "history exhausted" to its user). *)

val find_event : ?kind_mask:int -> t -> from:int -> (Event.t -> bool) -> int option
val rfind_event : ?kind_mask:int -> t -> before:int -> (Event.t -> bool) -> int option
(** Static frame searches (frames are data; nothing executes).  These
    scan through the chunk-indexed reader; [kind_mask] (an OR of
    {!Event.kind_bit}) skips chunks with no matching frame kinds without
    inflating them. *)

val continue_to : t -> (Event.t -> bool) -> int option
(** Run forward to the next matching frame; lands just after it. *)

val reverse_continue_to : t -> (Event.t -> bool) -> int option
(** Reverse-continue: land just after the previous matching frame,
    skipping a hit at the current position (gdb semantics).  From frame
    0 (or frame 1, where only the current hit exists) this returns
    [None] and the position is unchanged. *)

val frame : t -> int -> Event.t
(** The frame at index [i] (static data; position is unaffected). *)

val task : t -> int -> Task.t
val live_tids : t -> int list

val exit_status : t -> int option
(** The replayed root process's exit status, once its exit frame has
    been applied. *)

val regs : t -> int -> int array * int
(** [(general-purpose registers, pc)] of a task at the current position. *)

val read_mem : t -> int -> int -> int -> bytes
(** [read_mem d tid addr len]. Raises {!Debug_error} on unmapped
    addresses. *)

val read_word : t -> int -> int -> int

val last_change : t -> tid:int -> addr:int -> len:int -> int option
(** Reverse watchpoint: the index of the frame during which
    [addr..addr+len) last changed before the current position
    (checkpoint-accelerated forward scan).  Position is restored. *)

(** {2 Checkpoint inspection and control}

    The checkpoint store itself is private (a sorted array with O(log n)
    lookups); these accessors expose what the GDB stub's [qRcmd]
    monitor commands and the tests need. *)

val take_checkpoint : t -> int
(** Ensure a checkpoint exists at the current position (dedup: taking
    twice at one frame stores one snapshot); returns the frame index. *)

val n_checkpoints : t -> int
val checkpoints_taken : t -> int
val checkpoints_restored : t -> int

val checkpoint_frames : t -> int list
(** Frame indices holding a live checkpoint, strictly ascending. *)
