(** Physical page frames with copy-on-write reference counting. *)

val page_size : int
val page_shift : int

type prot = int

val prot_r : prot
val prot_w : prot
val prot_x : prot
val prot_rw : prot
val prot_rwx : prot
val prot_none : prot

type page = {
  mutable bytes : Bytes.t;
  mutable refs : int;
  mutable prot : prot;
  mutable shared : bool;
}

val fresh_page : ?prot:prot -> ?shared:bool -> unit -> page
val page_index : int -> int
val page_offset : int -> int
val incref : page -> unit
val decref : page -> unit

val unshare : page -> page
(** Copy a COW page for the caller; other mappers keep the original. *)

val get_u8 : page -> int -> int
val set_u8 : page -> int -> int -> unit
