(** The simulated kernel.

    Owns tasks, processes, the VFS, channels, futexes, virtual time and
    the ptrace state machine.  Supervisors — the rr recorder and
    replayer, or the baseline multicore runner — drive it through
    {!resume}/{!wait} or {!run_baseline}.

    The user/kernel interface implemented here is the paper's recording
    boundary (§2.1): system-call results, signal timing and scheduling
    are the only nondeterministic inputs a correct recorder must capture,
    and this module is where all of them originate (fed by
    {!Entropy}). *)

module T = Task

type t = {
  tasks : (int, T.t) Hashtbl.t;
  procs : (int, T.process) Hashtbl.t;
  vfs : Vfs.t;
  entropy : Entropy.t;
  cost : Cost.t;
  mutable clock : int; (* virtual ns *)
  mutable next_id : int;
  mutable next_space_id : int;
  mutable next_obj_id : int;
  mutable tsc : int;
  ports : (int, Chan.sock) Hashtbl.t;
  futexes : (int * int, Chan.waitq) Hashtbl.t;
  filter_registry : (int, Bpf.program) Hashtbl.t;
  perf_events : (int, Perf_event.t) Hashtbl.t;
  mutable stop_queue : int list; (* tids newly entered ptrace-stop *)
  hooks : (int, t -> T.t -> unit) Hashtbl.t;
  mutable spurious_desched_period : int; (* 0 = never *)
  mutable insns_retired : int;
  mutable syscall_count : int;
  mutable trace_stop_count : int;
  mutable exec_count : int;
}

val create : ?cost:Cost.t -> seed:int -> unit -> t

(** {2 Time and identifiers} *)

val charge : t -> int -> unit
(** Advance the virtual clock (cost-model accounting). *)

val now : t -> int
val alloc_id : t -> int
val reserve_id : t -> int -> unit
(** Claim a specific id (replay mirrors recorded tids). *)

val alloc_obj_id : t -> int
val alloc_space : t -> Addr_space.t

(** {2 Tasks and processes} *)

val find_task : t -> int -> T.t option
val task_exn : t -> int -> T.t
val all_tasks : t -> T.t list
val live_tasks : t -> T.t list
val all_procs : t -> T.process list
val vfs : t -> Vfs.t

val install_image : t -> path:string -> Image.t -> unit
(** Create an executable file backed by [Image.t] (and filler bytes so
    trace hard-linking has something to share). *)

val spawn : t -> path:string -> ?traced:bool -> ?tid:int -> unit -> T.t
(** Load an image into a fresh process.  Traced spawns are born in an
    exec ptrace-stop so the supervisor can set them up. *)

val do_clone :
  t -> T.t -> flags:int -> child_sp:int -> ?tid:int -> unit -> T.t
(** The clone machinery, also used directly by the replayer with a forced
    child tid.  Traced parents beget traced children born in a clone
    stop (rr's PTRACE_O_TRACECLONE). *)

val do_execve : t -> T.t -> string -> int option
(** Replace the process image; [Some errno] on failure. *)

val kill_task : t -> T.t -> int -> unit
val kill_process : t -> T.process -> int -> unit

(** {2 Signals} *)

val post_signal : t -> T.t -> Signals.info -> unit
(** Task-directed signal; interrupts a blocked syscall with the restart
    sentinel (§2.3.10). *)

val post_process_signal : t -> T.process -> Signals.info -> unit

(** {2 Hooks and nondeterminism} *)

val set_hook : t -> int -> (t -> T.t -> unit) -> unit
(** Install the handler for a [Hook n] instruction (the interception
    library's entry points). *)

val register_filter : t -> int -> Bpf.program -> unit
(** Register a seccomp filter under an id that guest code can install
    via the seccomp syscall. *)

val read_tsc : t -> int
(** The drifting time-stamp counter: reading it un-recorded is a real
    replay divergence. *)

val eval_seccomp : T.t -> nr:int -> args:int array -> ip:int -> int
(** Run the task's seccomp filters on (nr, args, program counter);
    Linux precedence (numerically smallest action wins). *)

val untraced_syscall :
  t -> T.t -> nr:int -> args:int array -> ip:int ->
  [ `Blocked | `Denied | `Done of int ]
(** Perform a syscall on behalf of the interception library, with [ip]
    set to the untraced instruction so the seccomp filter allows it. *)

val enter_syscall : t -> T.t -> T.saved_syscall -> ip:int -> unit
(** Syscall entry as if the instruction at [ip] had executed (used by the
    interception library's traced fallback). *)

val enter_stop : t -> T.t -> T.ptrace_stop -> unit
(** Put a traced task into a ptrace-stop (supervisor-synthesized stops,
    e.g. the replay hook's abort notification). *)

(** {2 The supervisor (ptrace) interface} *)

type wait_outcome =
  | Stopped_task of T.t * T.ptrace_stop
  | All_dead
  | Deadlocked of int list

val resume :
  t -> T.t -> T.resume_how -> ?sig_:Signals.info -> ?elide:bool -> unit ->
  unit
(** Resume from a ptrace-stop.  At a signal-delivery-stop, [sig_] is the
    signal to deliver (absent = suppressed).

    [elide] (with [R_syscall] at a seccomp/entry stop) skips the
    matching syscall-exit stop when the syscall completes without
    blocking — the paper's §3.4 single-stop protocol, used by a
    recorder that already wrote the frame at the entry stop.  A
    syscall that blocks re-arms the exit stop, so the supervisor still
    observes the completion of anything it could not pre-compute. *)

val wait : t -> wait_outcome
(** Run the world until some traced task enters a ptrace-stop. *)

val next_stopped : t -> (T.t * T.ptrace_stop) option
(** Pop an already-queued stop without running anything. *)

val park : t -> T.t -> unit
(** Stop a runnable task without running it (the recorder's one-task-at-
    a-time discipline). *)

val run_slice : t -> T.t -> fuel:int -> unit
(** Run one scheduling slice of a runnable task (also used by
    {!run_baseline}). *)

val wake_sleepers : t -> unit

val supervisor_map :
  t -> T.t -> len:int -> prot:Mem.prot -> kind:Addr_space.kind ->
  ?shared:bool -> ?addr:int -> unit -> int
(** Map memory in a tracee on the supervisor's behalf — rr does this by
    running syscalls in tracee context (§2.3.3), so the equivalent cost
    is charged. *)

val getregs : T.t -> int array
val setregs : T.t -> int array -> unit

(** {2 Baseline (untraced) execution} *)

type run_stats = { mutable wall_time : int; mutable deadlocked : bool }

val run_baseline :
  t -> cores:int -> ?sample_every:int -> ?on_sample:(int -> unit) -> unit ->
  run_stats
(** Discrete-event multicore scheduler: per-core clocks with per-task
    causality watermarks, strict priorities, round-robin, affinity.
    [on_sample] fires every [sample_every] virtual ns (PSS sampling). *)

val total_pss : t -> float
(** Sum of proportional set sizes over live processes, in bytes (§4.5). *)

(** {2 Exposed for white-box tests} *)

exception Efault

val check_signals : t -> T.t -> bool
val really_deliver : t -> T.t -> Signals.info -> unit
val sigframe_words : int
