lib/isa/mem.ml: Bytes Char
