test/test_syscallbuf.ml: Addr_space Alcotest Cpu Event Guest Image Insn Kernel Layout List Printf QCheck QCheck_alcotest Syscallbuf Sysno Task Vfs
