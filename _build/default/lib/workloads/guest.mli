(** Guest program builder: a thin "libc" for writing workload programs.
    Accumulates code and initialized data, provides syscall wrappers
    following the register convention (r0 = nr/result, r1..r6 = args),
    and assembles everything into an {!Image.t}.

    Register etiquette for generated code: r0..r6 are syscall/scratch
    (also clobbered by {!compute_loop}), r7..r12 are workload locals,
    r13 is the thread pointer, r15 the stack pointer. *)

type t

val default_data_base : int
val default_text_base : int

val create : ?data_base:int -> ?text_base:int -> unit -> t

val emit : t -> Asm.item list -> unit
(** Append code. *)

val fresh_label : t -> string -> string

val bss : t -> int -> int
(** Reserve zeroed data; returns its address. *)

val str : t -> string -> int
(** Install a NUL-terminated string constant; returns its address. *)

val blob : t -> string -> int

val sc : int -> Insn.operand list -> Asm.item list
(** A syscall with operand arguments; result lands in r0. *)

val imm : int -> Insn.operand
val reg : Insn.reg -> Insn.operand

(** {2 Common wrappers} *)

val sys_exit_group : int -> Asm.item list
val sys_exit : int -> Asm.item list
val sys_open : t -> path:string -> flags:int -> Asm.item list
val sys_close : Insn.operand -> Asm.item list

val sys_read :
  fd:Insn.operand -> buf:Insn.operand -> len:Insn.operand -> Asm.item list

val sys_write :
  fd:Insn.operand -> buf:Insn.operand -> len:Insn.operand -> Asm.item list

val sys_pipe : fds_addr:int -> Asm.item list
val sys_gettimeofday : buf:int -> Asm.item list
val sys_nanosleep : ns:Insn.operand -> Asm.item list
val sys_sched_yield : Asm.item list
val sys_clone_thread : child_sp:Insn.operand -> Asm.item list
val sys_fork : Asm.item list
val sys_execve : t -> path:string -> Asm.item list
val sys_wait4 : pid:Insn.operand -> status_addr:Insn.operand -> Asm.item list
val sys_futex : addr:Insn.operand -> op:int -> v:Insn.operand -> Asm.item list
val sys_kill : pid:Insn.operand -> signo:int -> Asm.item list

val sys_tgkill :
  pid:Insn.operand -> tid:Insn.operand -> signo:int -> Asm.item list

val sys_sigaction :
  signo:int -> handler:Insn.operand -> mask:int -> flags:int -> Asm.item list

val sys_sigprocmask : how:int -> set:Insn.operand -> Asm.item list
val sys_sigreturn : Asm.item list
val sys_socket : Asm.item list
val sys_bind : fd:Insn.operand -> port:Insn.operand -> Asm.item list

val sys_sendto :
  fd:Insn.operand -> buf:Insn.operand -> len:Insn.operand ->
  port:Insn.operand -> Asm.item list

val sys_recvfrom :
  fd:Insn.operand -> buf:Insn.operand -> len:Insn.operand -> src_addr:Insn.operand ->
  Asm.item list

val sys_mmap : len:Insn.operand -> prot:int -> flags:int -> Asm.item list

val compute_loop : t -> n:int -> Asm.item list
(** [n] iterations of busy work; one RCB per iteration; clobbers r5/r6
    only. *)

val check_ok : t -> Asm.item list
(** exit_group(77) when r0 < 0 — the classic result-check follower that
    keeps syscall sites patchable (paper §3.1). *)

val build :
  t -> name:string -> ?extra_data:int -> ?stack_size:int -> unit -> Image.t
