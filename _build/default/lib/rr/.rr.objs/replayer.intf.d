lib/rr/replayer.mli: Event Hashtbl Image Kernel Queue Task Trace
