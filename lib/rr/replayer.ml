(* The rr replayer (paper §2.3.7–§2.3.9, §3.8).

   Replays a {!Trace} against a *fresh* simulated kernel with different
   entropy: no files are opened, no signals are delivered, no real
   syscalls run except the address-space operations that must be
   re-performed.  User-space memory, registers and control flow are
   reproduced exactly; every applied frame cross-checks the tracee state
   and raises {!Divergence} on mismatch.

   Mechanics per frame kind:
   - syscalls: software breakpoint at the recorded syscall site, run to
     it, apply recorded registers and memory effects, skip the
     instruction (one stop per syscall, §2.3.7); sites in run-time-written
     code fall back to the SYSEMU-style path;
   - async events (signals, preemptions): program the PMU interrupt
     *early* (the interrupt skids, §2.4.3), then breakpoint/single-step
     until RCB count, registers and the extra stack word all match;
   - buffered syscalls: refill the guest trace buffer from flush frames;
     the interception hook replays results with identical control flow. *)

module A = Addr_space
module T = Task
module K = Kernel
module E = Event

let src = Logs.Src.create "rr.replay"

module Log = (val Logs.src_log src : Logs.LOG)

exception Divergence of string

let diverged fmt = Fmt.kstr (fun s -> raise (Divergence s)) fmt

type opts = {
  seed : int; (* deliberately different from recording *)
  check_regs : bool; (* cross-check registers at every frame *)
  sysemu_all : bool; (* ablation: replay every syscall via SYSEMU *)
  wide : bool; (* widened wrapper set; must match the recording's *)
}

let default_opts =
  { seed = 424242; check_regs = true; sysemu_all = false; wide = true }

let make_opts ?(seed = default_opts.seed) ?(check_regs = default_opts.check_regs)
    ?(sysemu_all = default_opts.sysemu_all) ?(wide = default_opts.wide) () =
  { seed; check_regs; sysemu_all; wide }

type per_task = {
  batches : E.buf_record list Queue.t;
  mutable saved_locals : bytes;
  mutable next_resume : T.resume_how;
  mutable in_blocked_syscall : bool;
      (* parked at a syscall site whose recording blocked in the kernel *)
}

type t = {
  mutable k : K.t;
  trace : Trace.t;
  cursor : Trace.Reader.cursor; (* position in the chunk-indexed trace *)
  opts : opts;
  mutable rts : (int, per_task) Hashtbl.t;
  mutable locals_owner : (int, int) Hashtbl.t;
  mutable events_applied : int;
  mutable root_tid : int;
  mutable installed : (string * Image.t) list; (* exe path -> image *)
  tm_base : Telemetry.snapshot; (* registry state at session start *)
}

let tm_bp_syscall = Telemetry.counter "replay.bp_syscall"
let tm_sysemu_syscall = Telemetry.counter "replay.sysemu_syscall"
let tm_singlestep = Telemetry.counter "replay.singlestep"
let tm_pmu_interrupt = Telemetry.counter "replay.pmu_interrupt"
let tm_ckpt_save = Telemetry.counter "replay.checkpoint_save"
let tm_ckpt_restore = Telemetry.counter "replay.checkpoint_restore"
let tm_span_frame = Telemetry.span "replay.frame"
let tm_span_point = Telemetry.span "replay.point"

let cursor_index r = Trace.Reader.pos r.cursor
let kernel r = r.k
let trace r = r.trace

type stats = {
  wall_time : int;
  events_applied : int;
  n_ptrace_stops : int;
  exit_status : int option;
  telemetry : Telemetry.snapshot;
}

let get_rt r tid =
  match Hashtbl.find_opt r.rts tid with
  | Some st -> st
  | None ->
    let st =
      { batches = Queue.create ();
        saved_locals = Bytes.create 0;
        next_resume = T.R_cont;
        in_blocked_syscall = false }
    in
    Hashtbl.replace r.rts tid st;
    st

let task r tid =
  match K.find_task r.k tid with
  | Some t -> t
  | None -> diverged "no replay task %d" tid

let capture_regs task : E.regs =
  let a = Array.make 17 0 in
  Array.blit task.T.cpu.Cpu.regs 0 a 0 16;
  a.(E.pc_slot) <- task.T.cpu.Cpu.pc;
  a

let apply_regs task (regs : E.regs) =
  Array.blit regs 0 task.T.cpu.Cpu.regs 0 16;
  task.T.cpu.Cpu.pc <- regs.(E.pc_slot)

let regs_equal (a : E.regs) (b : E.regs) = a = b

let apply_writes task writes =
  List.iter
    (fun w ->
      A.write_bytes ~force:true task.T.cpu.Cpu.space w.E.addr
        (Bytes.of_string w.E.data))
    writes

let check_pc r task expected what =
  if r.opts.check_regs && task.T.cpu.Cpu.pc <> expected then
    diverged "%s: pc %#x, recorded %#x (task %d, event %d)" what
      task.T.cpu.Cpu.pc expected task.T.tid (cursor_index r)

(* ---- locals swapping (mirrors the recorder, §3.6) ------------------- *)

let has_locals task =
  A.find_region task.T.cpu.Cpu.space Layout.thread_locals_page <> None

let switch_locals r t =
  if has_locals t then begin
    let sid = t.T.cpu.Cpu.space.A.id in
    match Hashtbl.find_opt r.locals_owner sid with
    | Some owner when owner = t.T.tid -> ()
    | Some owner ->
      (match (Hashtbl.find_opt r.rts owner, K.find_task r.k owner) with
      | Some ost, Some otask when T.is_alive otask ->
        ost.saved_locals <- Syscallbuf.save_locals otask
      | _, _ -> ());
      let st = get_rt r t.T.tid in
      if Bytes.length st.saved_locals > 0 then
        Syscallbuf.restore_locals t st.saved_locals;
      Hashtbl.replace r.locals_owner sid t.T.tid
    | None -> Hashtbl.replace r.locals_owner sid t.T.tid
  end

(* ---- driving a single task ------------------------------------------ *)

(* Resume [t] (if parked) and run the world until the next ptrace stop,
   which must belong to [t]. *)
let rec run_until_stop r t =
  if t.T.state = T.Stopped then begin
    switch_locals r t;
    let st = get_rt r t.T.tid in
    let how = st.next_resume in
    st.next_resume <- T.R_cont;
    K.resume r.k t how ()
  end;
  match K.wait r.k with
  | K.Stopped_task (t', stop) -> (
    match stop with
    | T.Stop_signal { Signals.origin = Signals.User _; _ } ->
      (* A kernel-generated signal (e.g. SIGCHLD from a replayed exit):
         replay never delivers real signals (§2.3.9) — the recorded
         delivery, if any, is its own frame.  Suppress and continue. *)
      K.resume r.k t' T.R_cont ();
      if t'.T.tid <> t.T.tid then K.park r.k t';
      run_until_stop r t
    | _ ->
      if t'.T.tid <> t.T.tid then
        diverged "unexpected stop %a from task %d while replaying task %d"
          T.pp_stop stop t'.T.tid t.T.tid;
      stop)
  | K.All_dead -> diverged "task %d died before its next frame" t.T.tid
  | K.Deadlocked _ -> diverged "replay deadlocked while running task %d" t.T.tid

(* Run [t] to the recorded syscall site and return with the site
   un-executed.  Fast path: software breakpoint, one stop (§2.3.7).
   Writable-code path: let the syscall trap through seccomp and suppress
   it (SYSEMU, §2.3.7's fallback). *)
(* Slow-path syscall replay: the site can't take a breakpoint — either
   it lives in run-time-written code (§2.3.7), or it is the interception
   library's traced fallback in the RR page, reached through the kernel
   rather than by executing the site. *)
let syscall_slow_path r ~site ~writable_site =
  writable_site || r.opts.sysemu_all || site >= Layout.rr_page_text

(* Special frames (clone, mmap) derive the syscall site from the
   recorded post-syscall pc.  When that site was (eagerly) patched, the
   instruction there is the interception hook, not a syscall: at replay
   the hook must actually execute — it charges the same deterministic
   PMU costs it charged at record — and then falls back to a traced
   syscall through the RR page.  Redirecting the expected site to the
   fallback instruction routes {!run_to_syscall} onto its seccomp slow
   path, which lets the tracee run through the hook. *)
let effective_syscall_site t ~site =
  match A.text_get t.T.cpu.Cpu.space site with
  | Some (Insn.Hook _) -> Layout.traced_fallback_insn
  | Some _ | None -> site

let run_to_syscall r t ~nr ~site ~writable_site =
  K.charge r.k r.k.K.cost.Cost.replay_syscall_work;
  if syscall_slow_path r ~site ~writable_site then begin
    match run_until_stop r t with
    | T.Stop_seccomp ss | T.Stop_syscall_entry ss ->
      if ss.T.nr <> nr then
        diverged "expected syscall %s, tracee did %s (event %d)"
          (Sysno.name nr) (Sysno.name ss.T.nr) (cursor_index r);
      if ss.T.site <> site then
        diverged "syscall site %#x, recorded %#x" ss.T.site site;
      (* Suppress the syscall on the way out. *)
      (get_rt r t.T.tid).next_resume <- T.R_sysemu;
      Telemetry.incr tm_sysemu_syscall;
      (* Extra supervisor work for the slow path. *)
      K.charge r.k r.k.K.cost.Cost.supervisor_work
    | stop -> diverged "expected syscall entry, got %a" T.pp_stop stop
  end
  else begin
    A.bp_set t.T.cpu.Cpu.space site;
    (match run_until_stop r t with
    | T.Stop_signal { Signals.origin = Signals.Bkpt; _ } ->
      A.bp_clear t.T.cpu.Cpu.space site;
      Telemetry.incr tm_bp_syscall;
      check_pc r t site "syscall breakpoint"
    | stop ->
      A.bp_clear t.T.cpu.Cpu.space site;
      diverged "expected breakpoint at syscall site %#x, got %a" site
        T.pp_stop stop);
    ()
  end

(* Run [t] to an asynchronous execution point: program the interrupt
   early, then breakpoint (or single-step through run-time-generated
   code) until RCB + registers + stack word match (§2.4). *)
let interrupt_slack = Pmu.max_skid + 6

let point_matches t (point : E.exec_point) =
  t.T.cpu.Cpu.pmu.Pmu.rcb = point.E.rcb
  && regs_equal (capture_regs t) point.E.point_regs
  &&
  let extra =
    try
      A.read_u64 ~force:true t.T.cpu.Cpu.space t.T.cpu.Cpu.regs.(Insn.reg_sp)
    with A.Segv _ -> 0
  in
  extra = point.E.stack_extra

let run_to_point_inner r t (point : E.exec_point) =
  let target = point.E.rcb in
  let pc_target = point.E.point_regs.(E.pc_slot) in
  let cur = t.T.cpu.Cpu.pmu.Pmu.rcb in
  if cur > target then
    diverged "rcb overshoot: at %d, target %d (task %d, event %d)" cur target
      t.T.tid (cursor_index r);
  (* Phase 1: coarse approach on the PMU interrupt, programmed early
     because it fires late (§2.4.3). *)
  if cur < target - interrupt_slack then begin
    Pmu.program_interrupt t.T.cpu.Cpu.pmu
      ~target:(target - interrupt_slack)
      ~skid:(Entropy.range r.k.K.entropy 0 Pmu.max_skid);
    match run_until_stop r t with
    | T.Stop_signal { Signals.origin = Signals.Preempt | Signals.Fault; _ } ->
      Pmu.clear_interrupt t.T.cpu.Cpu.pmu;
      Telemetry.incr tm_pmu_interrupt;
      if t.T.cpu.Cpu.pmu.Pmu.rcb > target then
        diverged "interrupt skidded past the target point (rcb %d > %d)"
          t.T.cpu.Cpu.pmu.Pmu.rcb target
    | stop -> diverged "expected PMU interrupt, got %a" T.pp_stop stop
  end;
  (* Phase 2: precise approach — "repeatedly run to the breakpoint until
     the RCB count and the general-purpose register values match"
     (§2.4.3).  When the tracee sits exactly on the breakpointed address
     without matching yet, step over it (remove, single-step, reinsert),
     as any breakpoint-based debugger must. *)
  if not (point_matches t point) then begin
    let stepping = A.text_was_written t.T.cpu.Cpu.space pc_target in
    if not stepping then A.bp_set t.T.cpu.Cpu.space pc_target;
    let arrived = ref false in
    while not !arrived do
      Telemetry.incr tm_singlestep;
      let at_bp = (not stepping) && t.T.cpu.Cpu.pc = pc_target in
      if at_bp then A.bp_clear t.T.cpu.Cpu.space pc_target;
      (get_rt r t.T.tid).next_resume <-
        (if stepping || at_bp then T.R_singlestep else T.R_cont);
      (match run_until_stop r t with
      | T.Stop_signal { Signals.origin = Signals.Bkpt | Signals.Fault; _ }
      | T.Stop_singlestep ->
        (* Faults re-occur deterministically during replay; the recorded
           signal frame is the one being applied at this very point. *)
        ()
      | stop -> diverged "while stepping to point: %a" T.pp_stop stop);
      if at_bp then A.bp_set t.T.cpu.Cpu.space pc_target;
      if t.T.cpu.Cpu.pmu.Pmu.rcb > target then
        diverged
          "ran past execution point (rcb %d > %d, pc %#x, task %d, event %d)"
          t.T.cpu.Cpu.pmu.Pmu.rcb target t.T.cpu.Cpu.pc t.T.tid (cursor_index r);
      if point_matches t point then arrived := true
    done;
    if not stepping then A.bp_clear t.T.cpu.Cpu.space pc_target
  end

let run_to_point r t point =
  Telemetry.timed tm_span_point (fun () -> run_to_point_inner r t point)

(* ---- frame handlers --------------------------------------------------- *)

let setup_replay_task r t (setup : int * int * int * int) =
  let rr_page, _locals, scratch, buf = setup in
  ignore rr_page;
  Syscallbuf.inject_rr_page r.k t;
  if t.T.seccomp = [] then
    t.T.seccomp <- [ Bpf.rr_filter ~untraced_ip:Layout.untraced_syscall_insn ];
  let sid = t.T.cpu.Cpu.space.A.id in
  (match Hashtbl.find_opt r.locals_owner sid with
  | Some owner when owner <> t.T.tid -> (
    match (Hashtbl.find_opt r.rts owner, K.find_task r.k owner) with
    | Some ost, Some otask when T.is_alive otask ->
      ost.saved_locals <- Syscallbuf.save_locals otask
    | _, _ -> ())
  | Some _ | None -> ());
  ignore
    (Syscallbuf.setup_task_at r.k t ~scratch ~buf ~is_replay:true);
  let st = get_rt r t.T.tid in
  st.saved_locals <- Syscallbuf.save_locals t;
  Hashtbl.replace r.locals_owner sid t.T.tid;
  t.T.vdso_enabled <- false;
  t.T.cpu.Cpu.tsc_trap <- true;
  t.T.affinity <- 0

(* Replaying an exec is expensive: exec a stub, tear down every mapping,
   recreate the recorded ones (paper §2.3.8) — a long run of remote
   syscalls in tracee context. *)
let exec_replay_cost k =
  K.charge k (120 * (Cost.ptrace_stop k.K.cost + k.K.cost.Cost.syscall_base))

let on_exec r ~tid ~image_ref ~regs_after =
  let img = Trace.image r.trace image_ref in
  exec_replay_cost r.k;
  match K.find_task r.k tid with
  | None ->
    (* The root task's initial exec: install and spawn. *)
    let path = "/replay_exe/" ^ image_ref in
    Vfs.mkdir_p (K.vfs r.k) "/replay_exe";
    Vfs.mkdir_p (K.vfs r.k) ("/replay_exe/" ^ Filename.dirname image_ref);
    K.install_image r.k ~path img;
    r.installed <- (path, img) :: r.installed;
    let t = K.spawn r.k ~path ~traced:true ~tid () in
    r.root_tid <- tid;
    (match K.wait r.k with
    | K.Stopped_task (t', T.Stop_exec) when t'.T.tid = tid -> ()
    | _ -> diverged "expected initial exec stop");
    if r.opts.check_regs && not (regs_equal (capture_regs t) regs_after) then
      diverged "initial exec registers differ";
    ()
  | Some t ->
    (* An execve by an existing task: run it to the syscall, install the
       trace image at the path the tracee names, and perform it. *)
    let stop = run_until_stop r t in
    (match stop with
    | T.Stop_seccomp ss when ss.T.nr = Sysno.execve ->
      let addr = ss.T.args.(0) in
      let rec read_str a acc =
        let c = A.read_u8 ~force:true t.T.cpu.Cpu.space a in
        if c = 0 then String.concat "" (List.rev acc)
        else read_str (a + 1) (String.make 1 (Char.chr c) :: acc)
      in
      let p = read_str addr [] in
      let path =
        if String.length p > 0 && p.[0] = '/' then p
        else t.T.proc.T.cwd ^ "/" ^ p
      in
      (match Vfs.resolve_opt (K.vfs r.k) path with
      | Some _ -> ()
      | None ->
        Vfs.mkdir_p (K.vfs r.k) (Filename.dirname path);
        K.install_image r.k ~path img;
        r.installed <- (path, img) :: r.installed);
      K.resume r.k t T.R_syscall ();
      (match K.wait r.k with
      | K.Stopped_task (t', T.Stop_exec) when t'.T.tid = tid -> ()
      | _ -> diverged "expected exec stop after execve")
    | s -> diverged "expected execve entry, got %a" T.pp_stop s);
    if r.opts.check_regs && not (regs_equal (capture_regs t) regs_after) then
      diverged "exec registers differ (task %d)" tid

(* Cross-check the tracee registers against the recorded post-syscall
   registers: everything except the result register must already agree
   when the tracee arrives at the syscall site (the kernel only writes
   r0).  This is what catches corrupted traces and replay divergence. *)
let verify_arrival r t (regs_after : E.regs) ~pc_delta =
  if r.opts.check_regs then begin
    for i = 1 to 15 do
      if t.T.cpu.Cpu.regs.(i) <> regs_after.(i) then
        diverged "register r%d = %d, recorded %d (task %d, event %d)" i
          t.T.cpu.Cpu.regs.(i) regs_after.(i) t.T.tid (cursor_index r)
    done;
    if t.T.cpu.Cpu.pc + pc_delta <> regs_after.(E.pc_slot) then
      diverged "pc %#x(+%d), recorded %#x (task %d, event %d)"
        t.T.cpu.Cpu.pc pc_delta
        regs_after.(E.pc_slot)
        t.T.tid (cursor_index r)
  end

(* The entry half of a blocking syscall (see E_syscall_enter): run the
   task to the syscall and park it "inside the kernel". *)
let on_syscall_enter r ~tid ~nr ~site ~writable_site ~via_abort =
  let t = task r tid in
  let st = get_rt r tid in
  if via_abort then begin
    match run_until_stop r t with
    | T.Stop_signal { Signals.origin = Signals.Desched; _ } ->
      st.in_blocked_syscall <- true
    | stop -> diverged "expected syscallbuf abort stop, got %a" T.pp_stop stop
  end
  else begin
    run_to_syscall r t ~nr ~site ~writable_site;
    st.in_blocked_syscall <- true
  end

let on_syscall r ~tid ~nr ~site ~writable_site ~via_abort ~regs_after ~writes
    ~kind =
  let t = task r tid in
  let st = get_rt r tid in
  if st.in_blocked_syscall then begin
    (* Entry already replayed by the E_syscall_enter frame; the kernel
       work happened "off screen" — just apply the recorded effects. *)
    st.in_blocked_syscall <- false;
    ignore (nr, site, writable_site, kind);
    apply_writes t writes;
    apply_regs t regs_after
  end
  else if via_abort then begin
    (* The interception hook stops the task when it reaches the recorded
       abort marker (§3.3); no breakpoint is involved. *)
    match run_until_stop r t with
    | T.Stop_signal { Signals.origin = Signals.Desched; _ } ->
      verify_arrival r t regs_after ~pc_delta:0;
      apply_writes t writes;
      apply_regs t regs_after
    | stop -> diverged "expected syscallbuf abort stop, got %a" T.pp_stop stop
  end
  else begin
    run_to_syscall r t ~nr ~site ~writable_site;
    (* sigreturn rewrites every register; there is nothing to cross-check
       at arrival. *)
    if nr <> Sysno.rt_sigreturn then
      verify_arrival r t regs_after
        ~pc_delta:(if syscall_slow_path r ~site ~writable_site then 0 else 1);
    (* Re-perform address-space operations (§2.3.8); everything else is
       pure emulation. *)
    (match kind with
    | E.K_perform ->
      let args = Array.init 6 (fun i -> t.T.cpu.Cpu.regs.(i + 1)) in
      if nr = Sysno.munmap then
        A.unmap t.T.cpu.Cpu.space ~addr:args.(0) ~len:args.(1)
      else if nr = Sysno.mprotect then
        A.protect t.T.cpu.Cpu.space ~addr:args.(0) ~len:args.(1)
          ~prot:args.(2)
    | E.K_emulate -> ());
    apply_writes t writes;
    apply_regs t regs_after
  end

let on_clone r ~parent ~child ~flags ~child_sp ~parent_regs_after ~child_regs =
  let p = task r parent in
  (* The clone syscall site is derivable from the recorded registers. *)
  let site = effective_syscall_site p ~site:(parent_regs_after.(E.pc_slot) - 1) in
  run_to_syscall r p ~nr:Sysno.clone ~site
    ~writable_site:(A.text_was_written p.T.cpu.Cpu.space site);
  let c = K.do_clone r.k p ~flags ~child_sp ~tid:child () in
  (* Consume the child's birth stop; it stays parked until its frames. *)
  (match K.next_stopped r.k with
  | Some (c', T.Stop_clone _) when c'.T.tid = child -> ()
  | Some (_, stop) -> diverged "expected clone stop, got %a" T.pp_stop stop
  | None -> diverged "missing clone stop for task %d" child);
  apply_regs p parent_regs_after;
  apply_regs c child_regs;
  if r.opts.check_regs && c.T.cpu.Cpu.regs.(0) <> 0 then
    diverged "clone child r0 not zero"

let on_mmap r ~tid ~addr ~len ~prot ~shared ~source ~regs_after =
  let t = task r tid in
  let site = effective_syscall_site t ~site:(regs_after.(E.pc_slot) - 1) in
  run_to_syscall r t ~nr:Sysno.mmap ~site
    ~writable_site:(A.text_was_written t.T.cpu.Cpu.space site);
  (* MAP_FIXED recreation of the recorded mapping (§2.3.8). *)
  let sp = t.T.cpu.Cpu.space in
  if not (A.overlaps sp ~addr ~len) then
    ignore (A.map sp ~addr ~len ~prot ~shared ());
  (match source with
  | E.Src_zero -> ()
  | E.Src_trace_file path ->
    let data = Trace.file r.trace path in
    A.write_bytes ~force:true sp addr
      (Bytes.of_string (String.sub data 0 (min (String.length data) len)))
  | E.Src_inline data ->
    A.write_bytes ~force:true sp addr
      (Bytes.of_string (String.sub data 0 (min (String.length data) len))));
  apply_regs t regs_after

let on_signal r ~tid ~signo ~point ~disposition =
  let t = task r tid in
  run_to_point r t point;
  ignore signo;
  match disposition with
  | E.Sr_handler { frame_addr; frame_data; regs_after; mask_after } ->
    (* §2.3.9: no real signal is delivered; write the recorded frame and
       registers. *)
    A.write_bytes ~force:true t.T.cpu.Cpu.space frame_addr
      (Bytes.of_string frame_data);
    apply_regs t regs_after;
    t.T.sigmask <- mask_after;
    t.T.sig_frames <- frame_addr :: t.T.sig_frames
  | E.Sr_fatal status -> K.kill_process r.k t.T.proc status
  | E.Sr_ignored regs_after ->
    (* No handler ran, but the kernel may have rewound for a restart. *)
    apply_regs t regs_after

let on_insn_trap r ~tid ~reg ~value =
  let t = task r tid in
  match run_until_stop r t with
  | T.Stop_signal { Signals.origin = Signals.Tsc_trap reg'; _ } ->
    if reg' <> reg then diverged "TSC trap register mismatch";
    t.T.cpu.Cpu.regs.(reg) <- value
  | stop -> diverged "expected TSC trap, got %a" T.pp_stop stop

let on_exit r ~tid ~status =
  match K.find_task r.k tid with
  | None -> ()
  | Some t when not (T.is_alive t) ->
    if t.T.exit_status <> status && status <> 0 then
      Log.warn (fun m ->
          m "task %d exit status %d, recorded %d" tid t.T.exit_status status)
  | Some t when (get_rt r tid).in_blocked_syscall ->
    (* Died while blocked in a syscall (killed by exit_group or a fatal
       signal elsewhere): it never runs again. *)
    K.kill_task r.k t status
  | Some t -> (
    (* Run it into its exit syscall and let it really die. *)
    match run_until_stop r t with
    | T.Stop_seccomp ss
      when ss.T.nr = Sysno.exit || ss.T.nr = Sysno.exit_group -> (
      K.resume r.k t T.R_syscall ();
      match K.wait r.k with
      | K.Stopped_task (t', T.Stop_exit st') when t'.T.tid = tid ->
        if st' <> status then
          diverged "exit status %d, recorded %d (task %d)" st' status tid;
        K.resume r.k t T.R_cont ()
      | _ -> diverged "expected exit event for task %d" tid)
    | stop -> diverged "expected exit syscall, got %a" T.pp_stop stop)

(* ---- the main loop ---------------------------------------------------- *)

let apply_frame r e =
  (* Every frame lands in the event ring: an emergency dump after a
     divergence shows the last ring_capacity frames that led up to it. *)
  Telemetry.note ~tid:(E.tid_of e) ~frame:(cursor_index r)
    ~kind:(E.kind_name e) "";
  (* Frame application reports on the frame's task lane. *)
  Timeline.set_lane (E.tid_of e);
  Fun.protect ~finally:(fun () -> Timeline.set_lane 0) @@ fun () ->
  Telemetry.timed tm_span_frame @@ fun () ->
  (match e with
  | E.E_exec { tid; image_ref; regs_after } -> on_exec r ~tid ~image_ref ~regs_after
  | E.E_rr_setup { tid; rr_page; locals; scratch; buf; buf_len = _ } ->
    setup_replay_task r (task r tid) (rr_page, locals, scratch, buf)
  | E.E_patch { tid; site } -> Syscallbuf.patch_site (task r tid) ~site
  | E.E_buf_flush { tid; records } ->
    Queue.push records (get_rt r tid).batches
  | E.E_syscall { tid; nr; site; writable_site; via_abort; regs_after; writes; kind }
    ->
    on_syscall r ~tid ~nr ~site ~writable_site ~via_abort ~regs_after ~writes
      ~kind
  | E.E_clone { parent; child; flags; child_sp; parent_regs_after; child_regs }
    ->
    on_clone r ~parent ~child ~flags ~child_sp ~parent_regs_after ~child_regs
  | E.E_mmap { tid; addr; len; prot; shared; source; regs_after } ->
    on_mmap r ~tid ~addr ~len ~prot ~shared ~source ~regs_after
  | E.E_signal { tid; signo; point; disposition } ->
    on_signal r ~tid ~signo ~point ~disposition
  | E.E_syscall_enter { tid; nr; site; writable_site; via_abort } ->
    on_syscall_enter r ~tid ~nr ~site ~writable_site ~via_abort
  | E.E_sched { tid; point } -> run_to_point r (task r tid) point
  | E.E_insn_trap { tid; reg; value } -> on_insn_trap r ~tid ~reg ~value
  | E.E_exit { tid; status } -> on_exit r ~tid ~status
  | E.E_checksum { tid; value } -> (
    match K.find_task r.k tid with
    | Some t when T.is_alive t ->
      let now = Checksum.space t.T.cpu.Cpu.space in
      if now <> value then
        diverged
          "memory checksum mismatch for task %d at event %d (%#x vs \
           recorded %#x)"
          tid (cursor_index r) now value
    | Some _ | None -> ()));
  r.events_applied <- r.events_applied + 1

(* Patched RDRAND sites stop so the E_insn_trap frame supplies the
   recorded value (same protocol as trapped RDTSC). *)
let install_rdrand_hooks k =
  for reg = 0 to Insn.num_regs - 1 do
    K.set_hook k
      (Syscallbuf.rdrand_hook_of_reg reg)
      (fun k task ->
        K.enter_stop k task
          (T.Stop_signal (Signals.make_info Signals.sigsegv (Signals.Tsc_trap reg))))
  done

let install_hook r k =
  K.set_hook k Syscallbuf.hook_number
    (Syscallbuf.hook ~wide:r.opts.wide
       (Syscallbuf.Replay
          { fetch_clone =
              (fun cref ->
                let data = Trace.file r.trace cref.E.cr_path in
                String.sub data cref.E.cr_off
                  (min cref.E.cr_len (String.length data - cref.E.cr_off)));
            refill =
              (fun t ->
                let st = get_rt r t.T.tid in
                if Queue.is_empty st.batches then None
                else Some (Queue.pop st.batches)) }))

let start ?(opts = default_opts) trace =
  let k = K.create ~seed:opts.seed () in
  let r =
    { k;
      trace;
      opts;
      rts = Hashtbl.create 16;
      locals_owner = Hashtbl.create 8;
      cursor = Trace.Reader.open_ trace;
      events_applied = 0;
      root_tid = 0;
      installed = [];
      tm_base = Telemetry.snapshot () }
  in
  Telemetry.set_clock (fun () -> K.now r.k);
  install_hook r k;
  install_rdrand_hooks k;
  r

let at_end r = Trace.Reader.at_end r.cursor

(* Apply the next frame; returns it.  The cursor advances only after the
   frame applies cleanly, so divergence reports carry its index. *)
let step r =
  match Trace.Reader.peek r.cursor with
  | None -> invalid_arg "Replayer.step: at end of trace"
  | Some e ->
    apply_frame r e;
    Trace.Reader.seek r.cursor (cursor_index r + 1);
    e

let stats_of r =
  let exit_status =
    match Hashtbl.find_opt r.k.K.procs r.root_tid with
    | Some p -> p.T.exit_code
    | None -> None
  in
  { wall_time = K.now r.k;
    events_applied = r.events_applied;
    n_ptrace_stops = r.k.K.trace_stop_count;
    exit_status;
    telemetry = Telemetry.since r.tm_base }

let replay ?(opts = default_opts) ?(on_frame = fun (_ : K.t) -> ()) trace =
  let r = start ~opts trace in
  Timeline.begin_scope "replay.session";
  (try
     while not (at_end r) do
       ignore (step r);
       on_frame r.k
     done
   with Divergence _ as exn ->
     (* The emergency debugger (§6.2): dump the replay state next to the
        divergence report. *)
     Log.err (fun m ->
         m "replay diverged at frame %d:@,%a" (cursor_index r) Diagnostics.pp r.k);
     Timeline.end_scope "replay.session";
     Telemetry.clear_clock ();
     raise exn);
  let stats = stats_of r in
  Timeline.end_scope "replay.session";
  Telemetry.clear_clock ();
  (stats, r.k)

(* ---- checkpoints (paper §6.1) ----------------------------------------

   A checkpoint is a COW snapshot of the whole replay: address spaces are
   forked (copy-on-write page sharing, so this is cheap no matter the
   tracee size), task registers/counters and the replayer's own cursor
   are copied.  Restoring builds a fresh kernel around the shared
   pages — the mechanism behind rr's reverse execution. *)

type snap_task = {
  sn_tid : int;
  sn_pid : int;
  sn_regs : int array;
  sn_pc : int;
  sn_rcb : int;
  sn_insns : int;
  sn_branches : int;
  sn_sigmask : int;
  sn_frames : int list;
  sn_dead : bool;
  sn_status : int;
  sn_seccomp : Bpf.program list;
  sn_tsc : bool;
  sn_batches : E.buf_record list list;
  sn_locals : bytes;
  sn_next_resume : T.resume_how;
  sn_in_blocked : bool;
  (* Scheduler time bounds: without them a restored task may be deemed
     runnable earlier than in the linear replay, skewing the clock. *)
  sn_tick_born : int;
  sn_last_wake : int;
  (* Task-directed signals queued but not yet delivered (e.g. SIGCHLDs
     awaiting the parent's next wait4): dropping them changes how the
     following frames replay. *)
  sn_pending : Signals.info list;
}

type snap_proc = {
  sp_pid : int;
  sp_parent : int;
  sp_space : A.t; (* a COW fork taken at snapshot time *)
  sp_threads : int list;
  sp_exit : int option;
  sp_reaped : bool;
  sp_cwd : string;
  sp_cmd : string;
  sp_children : int list;
  sp_owner : int option; (* locals_owner for this space *)
  sp_shared_pending : Signals.info list;
  sp_sighand : Signals.action array; (* indexed by signo *)
}

type snapshot = {
  snap_idx : int;
  snap_events_applied : int;
  snap_root : int;
  snap_procs : snap_proc list;
  snap_tasks : snap_task list;
  snap_installed : (string * Image.t) list;
  snap_clock : int;
  (* PRNG position and TSC base: restored so post-checkpoint entropy
     draws (PMU interrupt skid, TSC drift) continue the exact sequence a
     linear replay would see — otherwise the virtual clock of a restored
     session drifts from a from-zero replay's. *)
  snap_entropy : int64;
  snap_ktsc : int;
  (* Identity of the trace this snapshot was taken against, so restore
     can reject a mismatched (or salvaged-shorter) trace instead of
     replaying garbage. *)
  snap_trace_events : int;
  snap_trace_chunks : int;
  snap_trace_exe : string;
}

(* Every live task must be parked at an event boundary. *)
let snapshot r =
  Telemetry.incr tm_ckpt_save;
  Timeline.scope "replay.ckpt_save" @@ fun () ->
  let procs =
    List.filter_map
      (fun (p : T.process) ->
        if p.T.exit_code <> None && p.T.reaped then None
        else
          Some
            { sp_pid = p.T.pid;
              sp_parent = p.T.parent;
              sp_space =
                (if p.T.exit_code = None then
                   A.fork p.T.space ~id:p.T.space.A.id
                 else A.create ~id:p.T.space.A.id);
              sp_threads = p.T.threads;
              sp_exit = p.T.exit_code;
              sp_reaped = p.T.reaped;
              sp_cwd = p.T.cwd;
              sp_cmd = p.T.cmd;
              sp_children = p.T.children;
              sp_owner = Hashtbl.find_opt r.locals_owner p.T.space.A.id;
              sp_shared_pending = p.T.shared_pending;
              sp_sighand = Array.copy p.T.sighand })
      (K.all_procs r.k)
  in
  let tasks =
    List.filter_map
      (fun (t : T.t) ->
        let st = get_rt r t.T.tid in
        Some
          { sn_tid = t.T.tid;
            sn_pid = t.T.proc.T.pid;
            sn_regs = Array.copy t.T.cpu.Cpu.regs;
            sn_pc = t.T.cpu.Cpu.pc;
            sn_rcb = t.T.cpu.Cpu.pmu.Pmu.rcb;
            sn_insns = t.T.cpu.Cpu.pmu.Pmu.insns;
            sn_branches = t.T.cpu.Cpu.pmu.Pmu.branches;
            sn_sigmask = t.T.sigmask;
            sn_frames = t.T.sig_frames;
            sn_dead = not (T.is_alive t);
            sn_status = t.T.exit_status;
            sn_seccomp = t.T.seccomp;
            sn_tsc = t.T.cpu.Cpu.tsc_trap;
            sn_batches = List.of_seq (Queue.to_seq st.batches);
            sn_locals = st.saved_locals;
            sn_next_resume = st.next_resume;
            sn_in_blocked = st.in_blocked_syscall;
            sn_tick_born = t.T.tick_born;
            sn_last_wake = t.T.last_wake;
            sn_pending = t.T.pending })
      (K.all_tasks r.k)
  in
  { snap_idx = (cursor_index r);
    snap_events_applied = r.events_applied;
    snap_root = r.root_tid;
    snap_procs = procs;
    snap_tasks = tasks;
    snap_installed = r.installed;
    snap_clock = K.now r.k;
    snap_entropy = Entropy.state r.k.K.entropy;
    snap_ktsc = r.k.K.tsc;
    snap_trace_events = Trace.n_events r.trace;
    snap_trace_chunks = Array.length (Trace.chunk_index r.trace);
    snap_trace_exe = Trace.initial_exe r.trace }

type restore_error = {
  re_field : string;
  re_snapshot : string;
  re_trace : string;
}

exception Restore_error of restore_error

let pp_restore_error ppf e =
  Fmt.pf ppf
    "snapshot does not match trace: %s is %s in the snapshot, %s in the \
     trace"
    e.re_field e.re_snapshot e.re_trace

let restore_error_to_string e = Fmt.str "%a" pp_restore_error e

(* The snapshot must have been taken against this very trace: a
   different recording, or a salvaged prefix shorter than the
   checkpoint, is detected before any state is rebuilt. *)
let check_restore trace snap =
  let mismatch field snapshot trace =
    Some { re_field = field; re_snapshot = snapshot; re_trace = trace }
  in
  if snap.snap_trace_exe <> Trace.initial_exe trace then
    mismatch "initial exe" snap.snap_trace_exe (Trace.initial_exe trace)
  else if snap.snap_trace_chunks <> Array.length (Trace.chunk_index trace)
  then
    mismatch "chunk count"
      (string_of_int snap.snap_trace_chunks)
      (string_of_int (Array.length (Trace.chunk_index trace)))
  else if snap.snap_trace_events <> Trace.n_events trace then
    mismatch "event count"
      (string_of_int snap.snap_trace_events)
      (string_of_int (Trace.n_events trace))
  else None

(* Rebuild a live replayer from a snapshot. *)
let restore_unchecked ?(opts = default_opts) trace snap =
  Telemetry.incr tm_ckpt_restore;
  Telemetry.note ~frame:snap.snap_idx ~kind:"replay.checkpoint_restore" "";
  Timeline.scope "replay.ckpt_restore" @@ fun () ->
  let k = K.create ~seed:opts.seed () in
  (* Reposition by stored frame index: a fresh cursor seeks through the
     chunk index, no frames re-applied. *)
  let cursor = Trace.Reader.open_ trace in
  Trace.Reader.seek cursor snap.snap_idx;
  let r =
    { k;
      trace;
      cursor;
      opts;
      rts = Hashtbl.create 16;
      locals_owner = Hashtbl.create 8;
      events_applied = snap.snap_events_applied;
      root_tid = snap.snap_root;
      installed = snap.snap_installed;
      tm_base = Telemetry.snapshot () }
  in
  Telemetry.set_clock (fun () -> K.now r.k);
  install_hook r k;
  install_rdrand_hooks k;
  List.iter
    (fun (path, img) ->
      Vfs.mkdir_p (K.vfs k) (Filename.dirname path);
      K.install_image k ~path img)
    snap.snap_installed;
  k.K.clock <- snap.snap_clock;
  Entropy.set_state k.K.entropy snap.snap_entropy;
  k.K.tsc <- snap.snap_ktsc;
  (* Processes first (spaces COW-forked again so the snapshot stays
     immutable and reusable). *)
  List.iter
    (fun sp ->
      K.reserve_id k sp.sp_pid;
      let space = A.fork sp.sp_space ~id:sp.sp_space.A.id in
      let p = T.make_process ~pid:sp.sp_pid ~parent:sp.sp_parent ~space in
      p.T.threads <- sp.sp_threads;
      p.T.exit_code <- sp.sp_exit;
      p.T.reaped <- sp.sp_reaped;
      p.T.cwd <- sp.sp_cwd;
      p.T.cmd <- sp.sp_cmd;
      p.T.children <- sp.sp_children;
      p.T.shared_pending <- sp.sp_shared_pending;
      Array.blit sp.sp_sighand 0 p.T.sighand 0
        (min (Array.length sp.sp_sighand) (Array.length p.T.sighand));
      Hashtbl.replace k.K.procs sp.sp_pid p;
      (match sp.sp_owner with
      | Some tid -> Hashtbl.replace r.locals_owner space.A.id tid
      | None -> ()))
    snap.snap_procs;
  List.iter
    (fun sn ->
      match Hashtbl.find_opt k.K.procs sn.sn_pid with
      | None -> () (* reaped process: its tasks are gone *)
      | Some proc ->
        K.reserve_id k sn.sn_tid;
        let cpu = Cpu.create ~space:proc.T.space in
        Array.blit sn.sn_regs 0 cpu.Cpu.regs 0 Insn.num_regs;
        cpu.Cpu.pc <- sn.sn_pc;
        cpu.Cpu.pmu.Pmu.rcb <- sn.sn_rcb;
        cpu.Cpu.pmu.Pmu.insns <- sn.sn_insns;
        cpu.Cpu.pmu.Pmu.branches <- sn.sn_branches;
        cpu.Cpu.tsc_trap <- sn.sn_tsc;
        let t = T.make_task ~tid:sn.sn_tid ~proc ~cpu in
        t.T.sigmask <- sn.sn_sigmask;
        t.T.sig_frames <- sn.sn_frames;
        t.T.seccomp <- sn.sn_seccomp;
        t.T.traced <- true;
        t.T.vdso_enabled <- false;
        t.T.affinity <- 0;
        if sn.sn_dead then begin
          t.T.state <- T.Dead;
          t.T.exit_status <- sn.sn_status
        end
        else t.T.state <- T.Stopped;
        Hashtbl.replace k.K.tasks sn.sn_tid t;
        let st = get_rt r sn.sn_tid in
        List.iter (fun b -> Queue.push b st.batches) sn.sn_batches;
        st.saved_locals <- sn.sn_locals;
        st.next_resume <- sn.sn_next_resume;
        st.in_blocked_syscall <- sn.sn_in_blocked;
        t.T.tick_born <- sn.sn_tick_born;
        t.T.last_wake <- sn.sn_last_wake;
        t.T.pending <- sn.sn_pending)
    snap.snap_tasks;
  r

let restore ?opts trace snap =
  match check_restore trace snap with
  | Some e -> Error e
  | None -> Ok (restore_unchecked ?opts trace snap)

let restore_exn ?opts trace snap =
  match restore ?opts trace snap with
  | Ok r -> r
  | Error e -> raise (Restore_error e)

(* ---- snapshot serialization ------------------------------------------

   Durable checkpoints: a snapshot flattened to bytes so the trace can
   carry it ('K' records) and a *future process* can restore without
   replaying from frame 0.  COW page sharing is preserved through an
   identity table — each distinct page frame is emitted once and spaces
   reference it by id, so decoding re-creates the same sharing (and the
   same PSS) the live snapshot had. *)

let snapshot_codec_version = 1

let put_bpf_insn b (i : Bpf.insn) =
  let open Bpf in
  match i with
  | Ld_abs n -> Codec.put_uvarint b 0; Codec.put_int b n
  | Ld_imm n -> Codec.put_uvarint b 1; Codec.put_int b n
  | Ldx_imm n -> Codec.put_uvarint b 2; Codec.put_int b n
  | Tax -> Codec.put_uvarint b 3
  | Txa -> Codec.put_uvarint b 4
  | St n -> Codec.put_uvarint b 5; Codec.put_int b n
  | Ldm n -> Codec.put_uvarint b 6; Codec.put_int b n
  | Alu_and n -> Codec.put_uvarint b 7; Codec.put_int b n
  | Alu_or n -> Codec.put_uvarint b 8; Codec.put_int b n
  | Alu_add n -> Codec.put_uvarint b 9; Codec.put_int b n
  | Jmp n -> Codec.put_uvarint b 10; Codec.put_int b n
  | Jeq (k, t, f) ->
    Codec.put_uvarint b 11; Codec.put_int b k; Codec.put_int b t;
    Codec.put_int b f
  | Jgt (k, t, f) ->
    Codec.put_uvarint b 12; Codec.put_int b k; Codec.put_int b t;
    Codec.put_int b f
  | Jge (k, t, f) ->
    Codec.put_uvarint b 13; Codec.put_int b k; Codec.put_int b t;
    Codec.put_int b f
  | Jset (k, t, f) ->
    Codec.put_uvarint b 14; Codec.put_int b k; Codec.put_int b t;
    Codec.put_int b f
  | Ret n -> Codec.put_uvarint b 15; Codec.put_int b n
  | Ret_a -> Codec.put_uvarint b 16

let get_bpf_insn s : Bpf.insn =
  let open Bpf in
  match Codec.get_uvarint s with
  | 0 -> Ld_abs (Codec.get_int s)
  | 1 -> Ld_imm (Codec.get_int s)
  | 2 -> Ldx_imm (Codec.get_int s)
  | 3 -> Tax
  | 4 -> Txa
  | 5 -> St (Codec.get_int s)
  | 6 -> Ldm (Codec.get_int s)
  | 7 -> Alu_and (Codec.get_int s)
  | 8 -> Alu_or (Codec.get_int s)
  | 9 -> Alu_add (Codec.get_int s)
  | 10 -> Jmp (Codec.get_int s)
  | 11 ->
    let k = Codec.get_int s in
    let t = Codec.get_int s in
    let f = Codec.get_int s in
    Jeq (k, t, f)
  | 12 ->
    let k = Codec.get_int s in
    let t = Codec.get_int s in
    let f = Codec.get_int s in
    Jgt (k, t, f)
  | 13 ->
    let k = Codec.get_int s in
    let t = Codec.get_int s in
    let f = Codec.get_int s in
    Jge (k, t, f)
  | 14 ->
    let k = Codec.get_int s in
    let t = Codec.get_int s in
    let f = Codec.get_int s in
    Jset (k, t, f)
  | 15 -> Ret (Codec.get_int s)
  | 16 -> Ret_a
  | n -> raise (Codec.Corrupt (Printf.sprintf "bpf insn tag %d" n))

let put_resume b (r : T.resume_how) =
  Codec.put_uvarint b
    (match r with
    | T.R_cont -> 0
    | T.R_syscall -> 1
    | T.R_singlestep -> 2
    | T.R_sysemu -> 3
    | T.R_sysemu_single -> 4)

let get_resume s : T.resume_how =
  match Codec.get_uvarint s with
  | 0 -> T.R_cont
  | 1 -> T.R_syscall
  | 2 -> T.R_singlestep
  | 3 -> T.R_sysemu
  | 4 -> T.R_sysemu_single
  | n -> raise (Codec.Corrupt (Printf.sprintf "resume tag %d" n))

let put_region b (r : A.region) =
  Codec.put_int b r.A.start;
  Codec.put_int b r.A.len;
  Codec.put_int b r.A.prot;
  (match r.A.kind with
  | A.Anon -> Codec.put_uvarint b 0
  | A.Stack -> Codec.put_uvarint b 1
  | A.File_backed { path; file_off } ->
    Codec.put_uvarint b 2;
    Codec.put_string b path;
    Codec.put_int b file_off
  | A.Scratch -> Codec.put_uvarint b 3
  | A.Rr_page -> Codec.put_uvarint b 4
  | A.Thread_locals -> Codec.put_uvarint b 5);
  Codec.put_bool b r.A.shared

let get_region s : A.region =
  let start = Codec.get_int s in
  let len = Codec.get_int s in
  let prot = Codec.get_int s in
  let kind =
    match Codec.get_uvarint s with
    | 0 -> A.Anon
    | 1 -> A.Stack
    | 2 ->
      let path = Codec.get_string s in
      let file_off = Codec.get_int s in
      A.File_backed { path; file_off }
    | 3 -> A.Scratch
    | 4 -> A.Rr_page
    | 5 -> A.Thread_locals
    | n -> raise (Codec.Corrupt (Printf.sprintf "region kind tag %d" n))
  in
  let shared = Codec.get_bool s in
  { A.start; len; prot; kind; shared }

(* Distinct page frames by physical identity: content-hash buckets
   disambiguated with [==].  COW sharing across spaces becomes shared
   ids in the encoding. *)
module Page_ids = struct
  type t = {
    buckets : (int, (Mem.page * int) list ref) Hashtbl.t;
    mutable rev_pages : Mem.page list;
    mutable next : int;
  }

  let create () =
    { buckets = Hashtbl.create 256; rev_pages = []; next = 0 }

  let id_of t p =
    let h = Hashtbl.hash p in
    let bucket =
      match Hashtbl.find_opt t.buckets h with
      | Some b -> b
      | None ->
        let b = ref [] in
        Hashtbl.replace t.buckets h b;
        b
    in
    match List.find_opt (fun (q, _) -> q == p) !bucket with
    | Some (_, id) -> id
    | None ->
      let id = t.next in
      t.next <- id + 1;
      bucket := (p, id) :: !bucket;
      t.rev_pages <- p :: t.rev_pages;
      id

  let pages t = Array.of_list (List.rev t.rev_pages)
end

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let put_space ids b (a : A.t) =
  Codec.put_int b a.A.id;
  Codec.put_int b a.A.mmap_cursor;
  Codec.put_list b put_region a.A.regions;
  let page_idxs = sorted_keys a.A.pages in
  Codec.put_uvarint b (List.length page_idxs);
  List.iter
    (fun idx ->
      Codec.put_int b idx;
      Codec.put_uvarint b (Page_ids.id_of ids (Hashtbl.find a.A.pages idx)))
    page_idxs;
  let text_addrs = sorted_keys a.A.text in
  Codec.put_uvarint b (List.length text_addrs);
  List.iter
    (fun addr ->
      Codec.put_int b addr;
      Image_codec.put_insn b (Hashtbl.find a.A.text addr))
    text_addrs;
  Codec.put_list b Codec.put_int (sorted_keys a.A.written_text);
  Codec.put_list b Codec.put_int (sorted_keys a.A.breakpoints)

let get_space pages s : A.t =
  let id = Codec.get_int s in
  let a = A.create ~id in
  a.A.mmap_cursor <- Codec.get_int s;
  a.A.regions <- Codec.get_list s get_region;
  let n_pages = Codec.get_uvarint s in
  for _ = 1 to n_pages do
    let idx = Codec.get_int s in
    let pid = Codec.get_uvarint s in
    if pid < 0 || pid >= Array.length pages then
      raise (Codec.Corrupt "snapshot: page id out of range");
    let p = pages.(pid) in
    Mem.incref p;
    Hashtbl.replace a.A.pages idx p
  done;
  let n_text = Codec.get_uvarint s in
  for _ = 1 to n_text do
    let addr = Codec.get_int s in
    Hashtbl.replace a.A.text addr (Image_codec.get_insn s)
  done;
  List.iter
    (fun addr -> Hashtbl.replace a.A.written_text addr ())
    (Codec.get_list s Codec.get_int);
  List.iter
    (fun addr -> Hashtbl.replace a.A.breakpoints addr ())
    (Codec.get_list s Codec.get_int);
  a

let put_sig_info b (i : Signals.info) =
  Codec.put_int b i.Signals.signo;
  (match i.Signals.origin with
  | Signals.User tid -> Codec.put_uvarint b 0; Codec.put_int b tid
  | Signals.Fault -> Codec.put_uvarint b 1
  | Signals.Tsc_trap r -> Codec.put_uvarint b 2; Codec.put_int b r
  | Signals.Desched -> Codec.put_uvarint b 3
  | Signals.Preempt -> Codec.put_uvarint b 4
  | Signals.Bkpt -> Codec.put_uvarint b 5
  | Signals.Step -> Codec.put_uvarint b 6);
  Codec.put_int b i.Signals.fault_addr

let get_sig_info s =
  let signo = Codec.get_int s in
  let origin =
    match Codec.get_uvarint s with
    | 0 -> Signals.User (Codec.get_int s)
    | 1 -> Signals.Fault
    | 2 -> Signals.Tsc_trap (Codec.get_int s)
    | 3 -> Signals.Desched
    | 4 -> Signals.Preempt
    | 5 -> Signals.Bkpt
    | 6 -> Signals.Step
    | n -> raise (Codec.Corrupt (Printf.sprintf "signal origin tag %d" n))
  in
  let fault_addr = Codec.get_int s in
  Signals.make_info ~fault_addr signo origin

let put_sig_action b (a : Signals.action) =
  (match a.Signals.disposition with
  | Signals.Default -> Codec.put_uvarint b 0
  | Signals.Ignore -> Codec.put_uvarint b 1
  | Signals.Handler addr -> Codec.put_uvarint b 2; Codec.put_int b addr);
  Codec.put_int b a.Signals.mask;
  Codec.put_int b a.Signals.flags

let get_sig_action s =
  let disposition =
    match Codec.get_uvarint s with
    | 0 -> Signals.Default
    | 1 -> Signals.Ignore
    | 2 -> Signals.Handler (Codec.get_int s)
    | n -> raise (Codec.Corrupt (Printf.sprintf "disposition tag %d" n))
  in
  let mask = Codec.get_int s in
  let flags = Codec.get_int s in
  { Signals.disposition; mask; flags }

let put_snap_proc ids b sp =
  Codec.put_int b sp.sp_pid;
  Codec.put_int b sp.sp_parent;
  put_space ids b sp.sp_space;
  Codec.put_list b Codec.put_int sp.sp_threads;
  (match sp.sp_exit with
  | None -> Codec.put_uvarint b 0
  | Some st ->
    Codec.put_uvarint b 1;
    Codec.put_int b st);
  Codec.put_bool b sp.sp_reaped;
  Codec.put_string b sp.sp_cwd;
  Codec.put_string b sp.sp_cmd;
  Codec.put_list b Codec.put_int sp.sp_children;
  (match sp.sp_owner with
  | None -> Codec.put_uvarint b 0
  | Some tid ->
    Codec.put_uvarint b 1;
    Codec.put_int b tid);
  Codec.put_list b put_sig_info sp.sp_shared_pending;
  Codec.put_array b put_sig_action sp.sp_sighand

let get_snap_proc pages s =
  let sp_pid = Codec.get_int s in
  let sp_parent = Codec.get_int s in
  let sp_space = get_space pages s in
  let sp_threads = Codec.get_list s Codec.get_int in
  let sp_exit =
    match Codec.get_uvarint s with
    | 0 -> None
    | 1 -> Some (Codec.get_int s)
    | n -> raise (Codec.Corrupt (Printf.sprintf "exit tag %d" n))
  in
  let sp_reaped = Codec.get_bool s in
  let sp_cwd = Codec.get_string s in
  let sp_cmd = Codec.get_string s in
  let sp_children = Codec.get_list s Codec.get_int in
  let sp_owner =
    match Codec.get_uvarint s with
    | 0 -> None
    | 1 -> Some (Codec.get_int s)
    | n -> raise (Codec.Corrupt (Printf.sprintf "owner tag %d" n))
  in
  let sp_shared_pending = Codec.get_list s get_sig_info in
  let sp_sighand = Codec.get_array s get_sig_action in
  { sp_pid; sp_parent; sp_space; sp_threads; sp_exit; sp_reaped; sp_cwd;
    sp_cmd; sp_children; sp_owner; sp_shared_pending; sp_sighand }

let put_snap_task b sn =
  Codec.put_int b sn.sn_tid;
  Codec.put_int b sn.sn_pid;
  Codec.put_array b Codec.put_int sn.sn_regs;
  Codec.put_int b sn.sn_pc;
  Codec.put_int b sn.sn_rcb;
  Codec.put_int b sn.sn_insns;
  Codec.put_int b sn.sn_branches;
  Codec.put_int b sn.sn_sigmask;
  Codec.put_list b Codec.put_int sn.sn_frames;
  Codec.put_bool b sn.sn_dead;
  Codec.put_int b sn.sn_status;
  Codec.put_list b
    (fun b prog -> Codec.put_array b put_bpf_insn prog)
    sn.sn_seccomp;
  Codec.put_bool b sn.sn_tsc;
  Codec.put_list b
    (fun b batch -> Codec.put_list b E.put_buf_record batch)
    sn.sn_batches;
  Codec.put_bytes b sn.sn_locals;
  put_resume b sn.sn_next_resume;
  Codec.put_bool b sn.sn_in_blocked;
  Codec.put_int b sn.sn_tick_born;
  Codec.put_int b sn.sn_last_wake;
  Codec.put_list b put_sig_info sn.sn_pending

let get_snap_task s =
  let sn_tid = Codec.get_int s in
  let sn_pid = Codec.get_int s in
  let sn_regs = Codec.get_array s Codec.get_int in
  let sn_pc = Codec.get_int s in
  let sn_rcb = Codec.get_int s in
  let sn_insns = Codec.get_int s in
  let sn_branches = Codec.get_int s in
  let sn_sigmask = Codec.get_int s in
  let sn_frames = Codec.get_list s Codec.get_int in
  let sn_dead = Codec.get_bool s in
  let sn_status = Codec.get_int s in
  let sn_seccomp =
    Codec.get_list s (fun s -> Codec.get_array s get_bpf_insn)
  in
  let sn_tsc = Codec.get_bool s in
  let sn_batches =
    Codec.get_list s (fun s -> Codec.get_list s E.get_buf_record)
  in
  let sn_locals = Codec.get_bytes s in
  let sn_next_resume = get_resume s in
  let sn_in_blocked = Codec.get_bool s in
  let sn_tick_born = Codec.get_int s in
  let sn_last_wake = Codec.get_int s in
  let sn_pending = Codec.get_list s get_sig_info in
  { sn_tid; sn_pid; sn_regs; sn_pc; sn_rcb; sn_insns; sn_branches;
    sn_sigmask; sn_frames; sn_dead; sn_status; sn_seccomp; sn_tsc;
    sn_batches; sn_locals; sn_next_resume; sn_in_blocked; sn_tick_born;
    sn_last_wake; sn_pending }

let encode_snapshot snap =
  let b = Codec.sink () in
  Codec.put_uvarint b snapshot_codec_version;
  Codec.put_uvarint b snap.snap_idx;
  Codec.put_uvarint b snap.snap_events_applied;
  Codec.put_int b snap.snap_root;
  Codec.put_int b snap.snap_clock;
  let eb = Bytes.create 8 in
  Bytes.set_int64_le eb 0 snap.snap_entropy;
  Codec.put_bytes b eb;
  Codec.put_int b snap.snap_ktsc;
  Codec.put_uvarint b snap.snap_trace_events;
  Codec.put_uvarint b snap.snap_trace_chunks;
  Codec.put_string b snap.snap_trace_exe;
  Codec.put_list b
    (fun b (path, img) ->
      Codec.put_string b path;
      Image_codec.put_image b img)
    snap.snap_installed;
  (* Two phases: assign page ids while encoding the procs into a side
     buffer, then emit the page table first so decoding is one pass. *)
  let ids = Page_ids.create () in
  let procs_b = Codec.sink () in
  Codec.put_list procs_b (put_snap_proc ids) snap.snap_procs;
  let pages = Page_ids.pages ids in
  Codec.put_uvarint b (Array.length pages);
  Array.iter
    (fun (p : Mem.page) ->
      Codec.put_string b (Bytes.to_string p.Mem.bytes);
      Codec.put_int b p.Mem.prot;
      Codec.put_bool b p.Mem.shared)
    pages;
  Buffer.add_buffer b procs_b;
  Codec.put_list b put_snap_task snap.snap_tasks;
  Buffer.contents b

let decode_snapshot blob =
  let s = Codec.source blob in
  let v = Codec.get_uvarint s in
  if v <> snapshot_codec_version then
    raise (Codec.Corrupt (Printf.sprintf "snapshot codec version %d" v));
  let snap_idx = Codec.get_uvarint s in
  let snap_events_applied = Codec.get_uvarint s in
  let snap_root = Codec.get_int s in
  let snap_clock = Codec.get_int s in
  let eb = Codec.get_bytes s in
  if Bytes.length eb <> 8 then
    raise (Codec.Corrupt "snapshot: bad entropy state");
  let snap_entropy = Bytes.get_int64_le eb 0 in
  let snap_ktsc = Codec.get_int s in
  let snap_trace_events = Codec.get_uvarint s in
  let snap_trace_chunks = Codec.get_uvarint s in
  let snap_trace_exe = Codec.get_string s in
  let snap_installed =
    Codec.get_list s (fun s ->
        let path = Codec.get_string s in
        let img = Image_codec.get_image s in
        (path, img))
  in
  let n_pages = Codec.get_uvarint s in
  if n_pages < 0 || n_pages > Sys.max_array_length then
    raise (Codec.Corrupt "snapshot: bad page count");
  let pages =
    Array.init n_pages (fun _ ->
        let bytes = Bytes.of_string (Codec.get_string s) in
        let prot = Codec.get_int s in
        let shared = Codec.get_bool s in
        if Bytes.length bytes <> Mem.page_size then
          raise (Codec.Corrupt "snapshot: page frame of the wrong size");
        (* refs starts at 0: every space attachment increfs, so the
           decoded sharing graph carries the same counts a live fork
           chain would. *)
        { Mem.bytes; refs = 0; prot; shared })
  in
  let snap_procs = Codec.get_list s (get_snap_proc pages) in
  let snap_tasks = Codec.get_list s get_snap_task in
  if not (Codec.eof s) then
    raise (Codec.Corrupt "snapshot: trailing bytes");
  { snap_idx; snap_events_applied; snap_root; snap_procs; snap_tasks;
    snap_installed; snap_clock; snap_entropy; snap_ktsc;
    snap_trace_events; snap_trace_chunks;
    snap_trace_exe }

let snapshot_index snap = snap.snap_idx
