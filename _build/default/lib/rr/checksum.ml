(* Memory checksums (paper §6.2): "To track down subtle errors in memory
   state during replay, RR supports taking checksums of memory at
   selected points during recording and comparing them with the replay."

   The hash covers the application's own mappings; the recorder's scratch
   and trace-buffer pages are excluded because their contents legitimately
   differ between recording and replay (outputs detour through them only
   while recording). *)

module A = Addr_space

let fnv_offset = 0x3bf29ce484222325 (* FNV-64 offset basis, truncated to 62 bits *)
let fnv_prime = 0x100000001b3

let hash_bytes h b =
  let h = ref h in
  for i = 0 to Bytes.length b - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * fnv_prime
  done;
  !h

let included_region (r : A.region) =
  match r.A.kind with
  | A.Scratch -> false
  | A.Thread_locals ->
    (* Swapped by the supervisor on context switches, asynchronously
       with respect to trace frames: never replay-stable. *)
    false
  | A.Anon | A.Stack | A.File_backed _ | A.Rr_page -> true

(* A deterministic digest of an address space's application-visible
   memory: regions in address order, bytes in address order. *)
let space space =
  List.fold_left
    (fun h (r : A.region) ->
      if included_region r then begin
        let h = ref (hash_bytes h (Bytes.of_string (string_of_int r.A.start))) in
        let pos = ref r.A.start in
        while !pos < r.A.start + r.A.len do
          let chunk = min Mem.page_size (r.A.start + r.A.len - !pos) in
          h := hash_bytes !h (A.read_bytes ~force:true space !pos chunk);
          pos := !pos + chunk
        done;
        !h
      end
      else h)
    fnv_offset (A.regions space)
  land max_int
