(** LSB-first bit streams, as DEFLATE uses. *)

type writer

val writer : unit -> writer

val put_bits : writer -> int -> int -> unit
(** [put_bits w v n] appends the low [n] bits of [v] (n ≤ 24). *)

val finish : writer -> string
(** Flush the final partial byte and return the stream. *)

type reader

exception Truncated

val reader : string -> reader
val get_bits : reader -> int -> int
val get_bit : reader -> int
