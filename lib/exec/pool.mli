(** A domain-based worker pool with a bounded task queue and futures.

    This is the only place in the tree allowed to call [Domain.spawn]
    (enforced by [tools/check_format.sh]): every parallel stage — the
    trace store's background chunk compression, the replay reader's
    chunk readahead — goes through a [Pool.t], so concurrency policy
    (worker count, queue depth, backpressure) lives in one module.

    Semantics:
    - [jobs <= 1] spawns no domains at all: [submit] runs the task
      inline on the caller's thread and returns an already-resolved
      future.  The serial path is therefore exactly the pre-pool code
      path, which is what makes "parallel output must be byte-identical
      to serial output" testable.
    - [jobs > 1] spawns [jobs] worker domains that drain a FIFO queue.
      [submit] blocks once [queue_limit] tasks are pending
      (backpressure: a producer cannot race arbitrarily far ahead of
      the workers), and task start order equals submission order.
    - Futures are single-assignment cells; [await] blocks until the
      task completes and re-raises the task's exception, if any, in the
      awaiting thread.

    Instrumentation: [pool.tasks] counts every submitted task (inline
    ones included); the [pool.queue_depth] gauge tracks the pending
    queue.  Tasks may freely use {!Telemetry} — the registry is
    domain-safe. *)

type t

type 'a future

val create : ?queue_limit:int -> jobs:int -> unit -> t
(** [create ~jobs ()] makes a pool of [max 1 jobs] workers.  On a
    single-core host ([Domain.recommended_domain_count () <= 1]) the
    pool degrades to [jobs = 1] — the inline serial path — regardless
    of the request: extra domains there only time-slice against the
    submitter.  [queue_limit] (default [2 * jobs]) bounds the number
    of tasks waiting to start; at the bound, {!submit} blocks. *)

val jobs : t -> int
(** The effective worker count (≥ 1; see {!create} for the single-core
    clamp). *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task.  Raises [Invalid_argument] if the pool has been
    shut down.  With one job, the task runs inline before [submit]
    returns. *)

val is_ready : 'a future -> bool
(** Whether the task has completed (successfully or not) — a
    non-blocking probe, so an opportunistic consumer (the trace
    writer's journal drain) can collect finished work without stalling
    behind a slow task. *)

val await : 'a future -> 'a
(** The task's result, blocking until it completes.  Re-raises the
    task's exception.  [await] may be called from any domain, any
    number of times. *)

val shutdown : t -> unit
(** Drain the queue, run every pending task, and join the worker
    domains.  Idempotent.  Futures already obtained stay valid. *)
