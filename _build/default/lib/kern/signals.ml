(* Signal numbers, sets, actions and dispositions.

   Signal sets are int bitsets (bit [n-1] for signal [n]).  The semantics
   rr depends on are reproduced: per-process handler tables shared by
   threads, per-thread masks, SA_RESTART interacting with the kernel's
   syscall-restart machinery, and the "delivered but handler blocked"
   fatal edge case of paper §2.3.9. *)

let sighup = 1
let sigint = 2
let sigquit = 3
let sigill = 4
let sigtrap = 5
let sigabrt = 6
let sigbus = 7
let sigfpe = 8
let sigkill = 9
let sigusr1 = 10
let sigsegv = 11
let sigusr2 = 12
let sigpipe = 13
let sigalrm = 14
let sigterm = 15
let sigstkflt = 16
let sigchld = 17
let sigcont = 18
let sigstop = 19
let sigsys = 31

(* The recorder's private real-time signals: preemption (PMU overflow)
   and desched (perf context-switch event), like rr's use of SIGSTKFLT
   and SIGPWR. *)
let sigpreempt = 33
let sigdesched = 34

let max_signal = 64

let name = function
  | 1 -> "SIGHUP" | 2 -> "SIGINT" | 3 -> "SIGQUIT" | 4 -> "SIGILL"
  | 5 -> "SIGTRAP" | 6 -> "SIGABRT" | 7 -> "SIGBUS" | 8 -> "SIGFPE"
  | 9 -> "SIGKILL" | 10 -> "SIGUSR1" | 11 -> "SIGSEGV" | 12 -> "SIGUSR2"
  | 13 -> "SIGPIPE" | 14 -> "SIGALRM" | 15 -> "SIGTERM" | 16 -> "SIGSTKFLT"
  | 17 -> "SIGCHLD" | 18 -> "SIGCONT" | 19 -> "SIGSTOP" | 31 -> "SIGSYS"
  | 33 -> "SIGPREEMPT" | 34 -> "SIGDESCHED"
  | n -> Printf.sprintf "SIG%d" n

(* Bitset operations. *)
let empty_set = 0
let add set signo = set lor (1 lsl (signo - 1))
let remove set signo = set land lnot (1 lsl (signo - 1))
let mem set signo = set land (1 lsl (signo - 1)) <> 0
let union = ( lor )

let of_list = List.fold_left add empty_set

(* sigprocmask how *)
let sig_block = 0
let sig_unblock = 1
let sig_setmask = 2

(* sigaction flags *)
let sa_restart = 0x1000_0000
let sa_nodefer = 0x4000_0000
let sa_resethand = 0x8000_0000

type disposition = Default | Ignore | Handler of int (* text address *)

type action = { disposition : disposition; mask : int; flags : int }

let default_action = { disposition = Default; mask = empty_set; flags = 0 }

(* What the default disposition does. *)
type default_effect = Term | Ign | Stop | Cont

let default_effect signo =
  if signo = sigchld || signo = sigcont (* before stop handling *) then Ign
  else if signo = sigstop then Stop
  else Term

let is_fatal_default signo = default_effect signo = Term

(* Why a signal was generated: rr's recorder needs to distinguish
   kernel-synthesized signals (desched, preempt, trapped-TSC SEGV) from
   application signals. *)
type origin =
  | User of int (* sender tid *)
  | Fault (* synchronous CPU fault *)
  | Tsc_trap of Insn.reg (* trapped RDTSC; reg awaiting the value *)
  | Desched (* perf context-switch event *)
  | Preempt (* PMU overflow programmed by the recorder *)
  | Bkpt (* software breakpoint (SIGTRAP) *)
  | Step (* single-step completion (SIGTRAP) *)

type info = { signo : int; origin : origin; fault_addr : int }

let make_info ?(fault_addr = 0) signo origin = { signo; origin; fault_addr }

let pp_info ppf i =
  let origin =
    match i.origin with
    | User tid -> Printf.sprintf "user(%d)" tid
    | Fault -> "fault"
    | Tsc_trap r -> Printf.sprintf "tsc(r%d)" r
    | Desched -> "desched"
    | Preempt -> "preempt"
    | Bkpt -> "bkpt"
    | Step -> "step"
  in
  Fmt.pf ppf "%s[%s]" (name i.signo) origin
