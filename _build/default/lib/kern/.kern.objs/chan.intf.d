lib/kern/chan.mli: Buffer Queue
