(** The `octane` workload (paper §4.1): CPU-intensive, multi-threaded
    compute inside a JIT-style runtime that re-emits code as it "warms
    up" — plus GC-like heap churn.  Score-based reporting (§4.2); the
    code churn is what crashes the DBI null tool (Figure 6). *)

type params = {
  threads : int; (* including the main thread *)
  iters : int; (* emit/run cycles for the main thread *)
  calls_per_emit : int;
  crunch : int;
}

val default : params

val worker_share : int
(** Workers' iteration budget as a percentage of the main thread's:
    octane's parallelism is limited (single-core costs only 1.36x). *)

val make : ?params:params -> unit -> Workload.t
