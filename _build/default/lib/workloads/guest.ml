(* Guest program builder: a thin "libc" for writing workload programs.

   Accumulates code and initialized data, provides syscall wrappers
   following the register convention (r0 = nr/result, r1..r6 = args), and
   assembles everything into an {!Image.t}.

   Register etiquette for generated code: r0..r6 are syscall/scratch,
   r7..r12 are workload locals, r13 is the thread pointer, r15 the stack
   pointer. *)

type t = {
  mutable code : Asm.item list; (* reversed chunks *)
  mutable data : (int * string) list;
  mutable cursor : int;
  data_base : int;
  text_base : int;
  mutable label_counter : int;
}

let default_data_base = 0x10_0000
let default_text_base = 0x1000

let create ?(data_base = default_data_base) ?(text_base = default_text_base) ()
    =
  { code = [];
    data = [];
    cursor = data_base;
    data_base;
    text_base;
    label_counter = 0 }

let emit b items = b.code <- List.rev_append items b.code

let fresh_label b prefix =
  b.label_counter <- b.label_counter + 1;
  Printf.sprintf "%s_%d" prefix b.label_counter

(* Reserve [len] bytes of zeroed data; returns the address. *)
let bss b len =
  let addr = b.cursor in
  b.cursor <- addr + ((len + 7) land lnot 7);
  addr

(* Install a NUL-terminated string constant; returns its address. *)
let str b s =
  let addr = b.cursor in
  b.data <- (addr, s ^ "\000") :: b.data;
  b.cursor <- addr + ((String.length s + 8) land lnot 7);
  addr

let blob b s =
  let addr = b.cursor in
  b.data <- (addr, s) :: b.data;
  b.cursor <- addr + ((String.length s + 7) land lnot 7);
  addr

(* Syscall with operand arguments; result lands in r0. *)
let sc nr args =
  Asm.movi 0 nr
  :: List.mapi (fun i op -> Asm.mov (i + 1) op) args
  @ [ Asm.syscall ]

let imm v = Insn.Imm v
let reg r = Insn.Reg r

(* Common wrappers. *)
let sys_exit_group code = sc Sysno.exit_group [ imm code ]
let sys_exit code = sc Sysno.exit [ imm code ]

let sys_open b ~path ~flags =
  let a = str b path in
  sc Sysno.openat [ imm 0; imm a; imm flags ]

let sys_close fd = sc Sysno.close [ fd ]
let sys_read ~fd ~buf ~len = sc Sysno.read [ fd; buf; len ]
let sys_write ~fd ~buf ~len = sc Sysno.write [ fd; buf; len ]
let sys_pipe ~fds_addr = sc Sysno.pipe [ imm fds_addr ]
let sys_gettimeofday ~buf = sc Sysno.gettimeofday [ imm buf ]
let sys_nanosleep ~ns = sc Sysno.nanosleep [ ns; imm 0; imm 0; imm 0; imm 0 ]
let sys_sched_yield = sc Sysno.sched_yield []

let sys_clone_thread ~child_sp =
  sc Sysno.clone [ imm (Sysno.clone_vm lor Sysno.clone_thread); child_sp ]

let sys_fork = sc Sysno.clone [ imm 0; imm 0 ]

let sys_execve b ~path =
  let a = str b path in
  sc Sysno.execve [ imm a ]

let sys_wait4 ~pid ~status_addr = sc Sysno.wait4 [ pid; status_addr; imm 0 ]

let sys_futex ~addr ~op ~v = sc Sysno.futex [ addr; imm op; v ]

let sys_kill ~pid ~signo = sc Sysno.kill [ pid; imm signo ]
let sys_tgkill ~pid ~tid ~signo = sc Sysno.tgkill [ pid; tid; imm signo ]

let sys_sigaction ~signo ~handler ~mask ~flags =
  sc Sysno.rt_sigaction [ imm signo; handler; imm mask; imm flags ]

let sys_sigprocmask ~how ~set = sc Sysno.rt_sigprocmask [ imm how; set; imm 0 ]
let sys_sigreturn = sc Sysno.rt_sigreturn []

let sys_socket = sc Sysno.socket []
let sys_bind ~fd ~port = sc Sysno.bind [ fd; port ]
let sys_sendto ~fd ~buf ~len ~port = sc Sysno.sendto [ fd; buf; len; port ]

let sys_recvfrom ~fd ~buf ~len ~src_addr =
  sc Sysno.recvfrom [ fd; buf; len; src_addr ]

let sys_mmap ~len ~prot ~flags =
  sc Sysno.mmap [ imm 0; len; imm prot; imm flags; imm 0; imm 0 ]

(* A busy-compute loop of [n] iterations.  Clobbers only the syscall
   scratch registers r5/r6, so workload locals in r7..r12 survive. *)
let compute_loop b ~n =
  let l = fresh_label b "compute" in
  [ Asm.movi 5 n;
    Asm.label l;
    Asm.I (Insn.Alu (Insn.Add, 6, Insn.Imm 3));
    Asm.I (Insn.Alu (Insn.Xor, 6, Insn.Imm 0x5a5a));
    Asm.subi 5 1;
    Asm.jnz 5 l ]

(* Check that r0 >= 0, else exit_group(77).  Mirrors the classic
   "cmpl $0xfffff001,%eax" sequence following x86 syscalls — the shapes
   the recorder knows how to patch (paper §3.1). *)
let check_ok b =
  let ok = fresh_label b "ok" in
  [ Asm.jcc Insn.Ge 0 (imm 0) ok ]
  @ sys_exit_group 77
  @ [ Asm.label ok ]

let build b ~name ?(extra_data = 0x40000) ?(stack_size = Image.default_stack_size)
    () =
  let prog = Asm.assemble ~base:b.text_base (List.rev b.code) in
  let data_len = b.cursor - b.data_base + extra_data in
  Image.make ~name
    ~data_maps:[ (b.data_base, data_len) ]
    ~data_init:(List.rev b.data) ~stack_size prog
