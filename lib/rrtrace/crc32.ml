(* CRC-32 (IEEE), table-driven.  Values are plain OCaml ints in
   [0, 2^32); the table is built once on first use. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let sub ?(crc = 0) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.sub: range out of bounds";
  let t = Lazy.force table in
  let c = ref (crc lxor 0xffffffff) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let string ?crc s = sub ?crc s ~pos:0 ~len:(String.length s)
