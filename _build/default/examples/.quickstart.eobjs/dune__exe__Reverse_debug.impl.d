examples/reverse_debug.ml: Array Asm Debugger Event Fmt Guest Kernel List Recorder Sysno Trace Vfs
