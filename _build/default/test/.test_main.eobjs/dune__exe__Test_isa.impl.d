test/test_isa.ml: Addr_space Alcotest Array Asm Bytes Cpu Entropy Gen Insn Isa_test_util List Mem Pmu QCheck QCheck_alcotest String
