(* The `htmltest` workload (paper §4.1): a browser process driven over
   IPC by a test harness that is *excluded from recording* (the paper
   runs the mochitest harness outside rr; about 30% of user CPU time is
   the harness).  The "browser" mixes layout-ish computation, a little
   JIT churn, file reads and datagram IPC. *)

module K = Kernel
module G = Guest
open Wl_common

type params = {
  tests : int;
  layout_work : int; (* compute per test *)
  harness_work : int; (* harness compute per test *)
  jit_every : int; (* re-emit code every N tests *)
}

let default =
  { tests = 60; layout_work = 20_000; harness_work = 9_000; jit_every = 1 }

let browser_port = 9001
let harness_port = 9000
let quit_marker = 0xdead

let jit_area = 0x9000

let encode insn =
  match Insn.encode insn with Some v -> v | None -> assert false

(* The harness: drive [tests] requests, then send the quit marker. *)
let harness_program b p =
  let buf = G.bss b 128 in
  let src = G.bss b 8 in
  G.emit b
    (G.sys_socket
    @. [ Asm.movr 7 0 ]
    @. G.sys_bind ~fd:(G.reg 7) ~port:(G.imm harness_port)
    @. [ Asm.movi 12 0 ]
    @. [ Asm.label "tests" ]
    (* request: payload[0] = test number *)
    @. [ Asm.movi 9 buf; Asm.store 12 9 0 ]
    @. [ Asm.label "send" ]
    @. G.sys_sendto ~fd:(G.reg 7) ~buf:(G.imm buf) ~len:(G.imm 16)
         ~port:(G.imm browser_port)
    (* the browser may not have bound yet: retry on ECONNREFUSED *)
    @. [ Asm.jcc Insn.Ge 0 (G.imm 0) "sent" ]
    @. G.sys_nanosleep ~ns:(G.imm 20_000)
    @. [ Asm.jmp "send" ]
    @. [ Asm.label "sent" ]
    @. G.sys_recvfrom ~fd:(G.reg 7) ~buf:(G.imm buf) ~len:(G.imm 128)
         ~src_addr:(G.imm src)
    (* verify and crunch (log checking, screenshot diffing...) *)
    @. G.compute_loop b ~n:p.harness_work
    @. [ Asm.addi 12 1; Asm.jcc Insn.Lt 12 (G.imm p.tests) "tests" ]
    (* quit *)
    @. [ Asm.movi 9 buf; Asm.movi 10 quit_marker; Asm.store 10 9 0 ]
    @. G.sys_sendto ~fd:(G.reg 7) ~buf:(G.imm buf) ~len:(G.imm 16)
         ~port:(G.imm browser_port)
    @. G.sys_exit_group 0)

(* The browser: serve test requests until the quit marker. *)
let browser_program b p =
  let buf = G.bss b 128 in
  let src = G.bss b 8 in
  let layout_file = G.str b "/gre/layout.dat" in
  let fbuf = G.bss b 16384 in
  G.emit b
    (G.sys_socket
    @. [ Asm.movr 7 0 ]
    @. G.sys_bind ~fd:(G.reg 7) ~port:(G.imm browser_port)
    @. [ Asm.movi 12 0 ] (* tests served *)
    @. [ Asm.label "serve" ]
    @. G.sys_recvfrom ~fd:(G.reg 7) ~buf:(G.imm buf) ~len:(G.imm 128)
         ~src_addr:(G.imm src)
    @. [ Asm.movi 9 buf; Asm.load 10 9 0 ]
    @. [ Asm.jcc Insn.Eq 10 (G.imm quit_marker) "quit" ]
    (* style data read *)
    @. G.sc Sysno.openat [ G.imm 0; G.imm layout_file; G.imm Sysno.o_rdonly ]
    @. die_if_error b 1
    @. [ Asm.movr 11 0 ]
    @. G.sys_read ~fd:(G.reg 11) ~buf:(G.imm fbuf) ~len:(G.imm 16384)
    @. G.sys_close (G.reg 11)
    (* occasional JIT warm-up (self-modifying code) *)
    @. [ Asm.movr 2 12;
         Asm.I (Insn.Alu (Insn.Rem, 2, Insn.Imm p.jit_every));
         Asm.jnz 2 "layout" ]
    @. [ Asm.movr 2 12;
         Asm.I (Insn.Alu (Insn.And, 2, Insn.Imm 0xff));
         Asm.muli 2 65536;
         Asm.addi 2 (encode (Insn.Mov (5, Insn.Imm 0)));
         Asm.movi 1 jit_area;
         Asm.I (Insn.Emit (1, 2));
         Asm.movi 2 (encode (Insn.Alu (Insn.Add, 5, Insn.Imm 3)));
         Asm.movi 1 (jit_area + 1);
         Asm.I (Insn.Emit (1, 2));
         Asm.movi 2 (encode (Insn.Alu (Insn.Add, 5, Insn.Imm 9)));
         Asm.movi 1 (jit_area + 2);
         Asm.I (Insn.Emit (1, 2));
         Asm.movi 2 (encode Insn.Ret);
         Asm.movi 1 (jit_area + 3);
         Asm.I (Insn.Emit (1, 2)) ]
    @. [ Asm.movi 9 20 ]
    @. [ Asm.label "jitcalls";
         Asm.movi 1 jit_area;
         Asm.I (Insn.Callr 1);
         Asm.subi 9 1;
         Asm.jnz 9 "jitcalls" ]
    @. [ Asm.label "layout" ]
    (* layout/script computation *)
    @. G.compute_loop b ~n:p.layout_work
    (* reply *)
    @. [ Asm.movi 9 src; Asm.load 10 9 0 ]
    @. G.sys_sendto ~fd:(G.reg 7) ~buf:(G.imm buf) ~len:(G.imm 16)
         ~port:(G.reg 10)
    @. [ Asm.addi 12 1; Asm.jmp "serve" ]
    @. [ Asm.label "quit" ]
    @. G.sys_exit_group 0)

let make ?(params = default) () =
  let setup k =
    Vfs.mkdir_p (K.vfs k) "/bin";
    Vfs.mkdir_p (K.vfs k) "/gre";
    install_file k ~path:"/gre/layout.dat" ~seed:3100 ~len:16384;
    let bh = G.create () in
    harness_program bh params;
    K.install_image k ~path:"/bin/harness" (G.build bh ~name:"harness" ());
    let bb = G.create () in
    browser_program bb params;
    K.install_image k ~path:"/bin/firefox" (G.build bb ~name:"firefox" ());
    (* The harness runs OUTSIDE the recording: spawned untraced here. *)
    ignore (K.spawn k ~path:"/bin/harness" ())
  in
  { Workload.name = "htmltest";
    exe = "/bin/firefox";
    setup;
    cores = 4;
    score_based = false }
