let () =
  Alcotest.run "rr_repro"
    (Test_isa.suites @ Test_kernel.suites @ Test_trace.suites @ Test_trace_store.suites @ Test_rr.suites @ Test_debugger.suites @ Test_workloads.suites @ Test_sched.suites
     @ Test_syscallbuf.suites @ Test_kernel_edge.suites @ Test_telemetry.suites
     @ Test_timeline.suites
     @ Test_exec.suites @ Test_diagnostics.suites @ Test_fault.suites
     @ Test_repo.suites @ Test_flight.suites
     @ Test_gdbstub.suites @ Test_query.suites)
