(* Byte transports under the RSP packet layer (see the mli). *)

type recv_result = Data of string | Empty | Eof

type t = {
  send : string -> unit;
  recv : unit -> recv_result;
  close : unit -> unit;
  desc : string;
}

(* One direction of the in-memory duplex: a byte queue plus a closed
   flag.  Close marks the *sending* side; the receiver drains whatever
   was in flight, then sees Eof. *)
type duct = { buf : Buffer.t; mutable closed : bool }

let endpoint ~out ~inn =
  { send =
      (fun s -> if not out.closed then Buffer.add_string out.buf s);
    recv =
      (fun () ->
        if Buffer.length inn.buf > 0 then begin
          let s = Buffer.contents inn.buf in
          Buffer.clear inn.buf;
          Data s
        end
        else if inn.closed then Eof
        else Empty);
    close = (fun () -> out.closed <- true);
    desc = "memory" }

let pair () =
  let a2b = { buf = Buffer.create 256; closed = false } in
  let b2a = { buf = Buffer.create 256; closed = false } in
  (endpoint ~out:a2b ~inn:b2a, endpoint ~out:b2a ~inn:a2b)
