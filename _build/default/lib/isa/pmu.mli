(** Per-task performance counters.  Only [rcb] is deterministic; the
    others pick up noise from interrupts, and the overflow interrupt
    skids past the programmed count — the constraints that shape rr's
    async-event design (paper §2.4). *)

type interrupt = { target : int; mutable skid : int; mutable primed : bool }

type t = {
  mutable rcb : int;
  mutable insns : int;
  mutable branches : int;
  mutable interrupt : interrupt option;
}

val create : unit -> t

val max_skid : int
(** Upper bound on interrupt skid, in instructions. *)

val program_interrupt : t -> target:int -> skid:int -> unit
(** Fire an interrupt [skid] instructions after [rcb] reaches [target]. *)

val clear_interrupt : t -> unit
val interrupt_armed : t -> bool

val tick_interrupt : t -> bool
(** Advance the interrupt state machine by one retired instruction;
    true when the interrupt fires. *)

val add_noise : t -> Entropy.t -> unit
(** Pollute the nondeterministic counters (interrupt/fault noise). *)

val snapshot : t -> int * int * int
(** [(rcb, insns, branches)]. *)

val copy : t -> t
(** Counter values only; any armed interrupt is dropped. *)
