(* A reverse-execution debugger over replay (paper §1, §6.1).

   Time is measured in trace-event indices.  Forward execution replays
   frames; *reverse* execution restores the nearest earlier checkpoint
   and replays forward — exactly rr's scheme, made cheap by COW address-
   space checkpoints ("most checkpoints are never resumed", so creating
   one must cost almost nothing).

   Primitives:
   - [seek]: jump to any event index, backwards or forwards;
   - [find_event] / [rfind_event]: next/previous frame matching a
     predicate (static scan — frames are data);
   - [last_change]: when was this memory last written?  (the reverse-
     watchpoint workhorse);
   - [read_mem]/[regs]: inspect tracee state at the current position. *)

module E = Event
module T = Task

exception Debug_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Debug_error s)) fmt

type t = {
  trace : Trace.t;
  opts : Replayer.opts;
  checkpoint_every : int;
  mutable session : Replayer.t;
  (* Checkpoints as a sorted dynamic array (ascending frame index,
     first [n_checkpoints] slots live).  A long session takes thousands
     of them, and every backward seek looks one up: membership and
     nearest-≤ queries are O(log n) binary searches, insertion is an
     ordered shift (almost always an append — execution moves forward). *)
  mutable checkpoints : (int * Replayer.snapshot) array;
  mutable n_checkpoints : int;
  mutable checkpoints_taken : int;
  mutable checkpoints_restored : int;
}

let pos d = Replayer.cursor_index d.session

let n_events d = Trace.n_events d.trace

let at_end d = pos d >= n_events d

let trace d = d.trace

let checkpoint_every d = d.checkpoint_every

let n_checkpoints d = d.n_checkpoints

let checkpoints_taken d = d.checkpoints_taken

let checkpoints_restored d = d.checkpoints_restored

let checkpoint_frames d =
  List.init d.n_checkpoints (fun i -> fst d.checkpoints.(i))

(* Greatest live slot with frame index ≤ [target], or -1. *)
let cp_search d target =
  let lo = ref 0 and hi = ref (d.n_checkpoints - 1) and best = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if fst d.checkpoints.(mid) <= target then begin
      best := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !best

let cp_insert d idx snap =
  let at = cp_search d idx + 1 in
  let cap = Array.length d.checkpoints in
  if d.n_checkpoints = cap then begin
    let grown = Array.make (max 8 (2 * cap)) (idx, snap) in
    Array.blit d.checkpoints 0 grown 0 d.n_checkpoints;
    d.checkpoints <- grown
  end;
  Array.blit d.checkpoints at d.checkpoints (at + 1) (d.n_checkpoints - at);
  d.checkpoints.(at) <- (idx, snap);
  d.n_checkpoints <- d.n_checkpoints + 1

let take_checkpoint d =
  let idx = pos d in
  let i = cp_search d idx in
  if i < 0 || fst d.checkpoints.(i) <> idx then begin
    let snap = Replayer.snapshot d.session in
    cp_insert d idx snap;
    d.checkpoints_taken <- d.checkpoints_taken + 1
  end

let create ?(opts = Replayer.default_opts) ?(checkpoint_every = 32) trace =
  (* Smart constructor: a cadence ≤ 0 would divide by zero in [step];
     clamp rather than trust it (the make_opts convention). *)
  let checkpoint_every = max 1 checkpoint_every in
  let d =
    { trace;
      opts;
      checkpoint_every;
      session = Replayer.start ~opts trace;
      checkpoints = [||];
      n_checkpoints = 0;
      checkpoints_taken = 0;
      checkpoints_restored = 0 }
  in
  take_checkpoint d;
  d

let step d =
  if Replayer.at_end d.session then fail "at end of trace";
  let e = Replayer.step d.session in
  if pos d mod d.checkpoint_every = 0 then take_checkpoint d;
  e

(* The nearest checkpoint at or before [idx]: one binary search. *)
let nearest_checkpoint d idx =
  let i = cp_search d idx in
  if i < 0 then fail "no checkpoint at or before %d" idx
  else d.checkpoints.(i)

let tm_span_seek = Telemetry.span "replay.seek"

let seek d target =
  if target < 0 || target > n_events d then fail "seek out of range";
  Telemetry.timed tm_span_seek @@ fun () ->
  if target < pos d then begin
    (* Reverse execution: restore and re-execute (§6.1). *)
    let _, snap = nearest_checkpoint d target in
    d.session <- Replayer.restore_exn ~opts:d.opts d.trace snap;
    d.checkpoints_restored <- d.checkpoints_restored + 1
  end;
  while pos d < target do
    ignore (step d)
  done

(* At frame 0 there is no earlier state: a no-op, not an error — the
   stub layer turns it into a "history exhausted" stop reply. *)
let reverse_step d = if pos d > 0 then seek d (pos d - 1)

(* Static frame searches (frames are data; no execution needed).  Both
   delegate to the chunk-indexed reader, which decodes lazily and can
   skip whole chunks when given a kind mask. *)
let find_event ?kind_mask d ~from p = Trace.Reader.find_from ?kind_mask d.trace from p

let rfind_event ?kind_mask d ~before p =
  Trace.Reader.rfind_before ?kind_mask d.trace before p

(* Run forward to the next frame satisfying [p]; position lands just
   after it.  Returns the frame index. *)
let continue_to d p =
  match find_event d ~from:(pos d) p with
  | None -> None
  | Some i ->
    seek d (i + 1);
    Some i

(* Reverse-continue: land just after the previous matching frame,
   skipping a hit at the current position (gdb semantics).  From frame 0
   the search window is empty: [None], position untouched. *)
let reverse_continue_to d p =
  if pos d = 0 then None
  else
    match rfind_event d ~before:(pos d - 1) p with
    | None -> None
    | Some i ->
      seek d (i + 1);
      Some i

let frame d i =
  if i < 0 || i >= n_events d then fail "frame %d out of range" i
  else Trace.Reader.frame d.trace i

let exit_status d = (Replayer.stats_of d.session).Replayer.exit_status

(* Public checkpoint control for the stub's `qRcmd checkpoint`: reuses
   the internal dedup'ing take. *)
let take_checkpoint d =
  take_checkpoint d;
  pos d

(* ---- state inspection ------------------------------------------------ *)

let task d tid =
  match Kernel.find_task (Replayer.kernel d.session) tid with
  | Some t -> t
  | None -> fail "no task %d at event %d" tid (pos d)

let live_tids d =
  List.filter_map
    (fun t -> if T.is_alive t then Some t.T.tid else None)
    (Kernel.all_tasks (Replayer.kernel d.session))

let regs d tid =
  let t = task d tid in
  (Cpu.copy_regs t.T.cpu, t.T.cpu.Cpu.pc)

let read_mem d tid addr len =
  let t = task d tid in
  try Addr_space.read_bytes ~force:true t.T.cpu.Cpu.space addr len
  with Addr_space.Segv _ -> fail "address %#x not mapped in task %d" addr tid

let read_word d tid addr =
  let t = task d tid in
  try Addr_space.read_u64 ~force:true t.T.cpu.Cpu.space addr
  with Addr_space.Segv _ -> fail "address %#x not mapped in task %d" addr tid

(* ---- reverse watchpoint ----------------------------------------------

   "When did [addr..addr+len) in task [tid] last change before the
   current position?"  Replays forward from the start (checkpoint-
   accelerated by seek) sampling the region after every frame. *)

let sample d tid addr len =
  match Kernel.find_task (Replayer.kernel d.session) tid with
  | None -> None
  | Some t when not (T.is_alive t) -> None
  | Some t -> (
    try Some (Addr_space.read_bytes ~force:true t.T.cpu.Cpu.space addr len)
    with Addr_space.Segv _ -> None)

let last_change d ~tid ~addr ~len =
  let upto = pos d in
  let here = sample d tid addr len in
  seek d 0;
  let prev = ref (sample d tid addr len) in
  let last = ref None in
  while pos d < upto do
    ignore (step d);
    let now = sample d tid addr len in
    (match (!prev, now) with
    | Some a, Some b when not (Bytes.equal a b) -> last := Some (pos d - 1)
    | (Some _ | None), (Some _ | None) -> () (* death/birth is not a write *));
    prev := now
  done;
  ignore here;
  !last
