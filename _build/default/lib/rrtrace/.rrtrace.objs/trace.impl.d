lib/rrtrace/trace.ml: Array Buffer Codec Compress Event Fmt Fun Hashtbl Image List Marshal String
