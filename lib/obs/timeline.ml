(* Timeline tracing (see timeline.mli for the contract).

   Hot-path design: one preallocated event array and one atomic write
   cursor.  Emitting an event is a clock read, a fetch-and-add and a
   slot write — no locks, so worker domains (lib/exec pool) record into
   the same buffer as the supervisor without serializing on anything.
   When the buffer fills, events are counted as dropped instead of
   blocking; the exporter closes any scope whose end fell off the
   buffer, so exports are always well formed.

   Scope nesting is tracked per domain in domain-local state
   ([Domain.DLS]): each domain has its own stack of open frames and its
   own current lane.  A frame remembers the lane it *began* on, so a
   scope that outlives a lane switch still closes on its opening lane —
   per-lane begin/end streams therefore always nest properly (a subset
   of a properly nested interval family is itself properly nested).

   Readers ([events], exporters) must run after {!stop} with worker
   domains quiesced: slot writes are plain stores and are only
   published by the happens-before edges of pool shutdown/await. *)

type kind = B | E | I | C

type event = {
  ev_kind : kind;
  ev_name : string;
  ev_lane : int;
  ev_vts : int; (* virtual ns (cost model) *)
  ev_hts : int; (* host ns, 0 when no host clock installed *)
  ev_value : int; (* counter sample value; 0 otherwise *)
}

(* ---- clocks ---------------------------------------------------------- *)

let no_clock () = 0
let vclock = ref no_clock
let hclock = ref no_clock
let set_virtual_clock f = vclock := f
let clear_virtual_clock () = vclock := no_clock
let set_host_clock f = hclock := f
let clear_host_clock () = hclock := no_clock

(* ---- the bounded lock-free buffer ------------------------------------ *)

let dummy =
  { ev_kind = I; ev_name = ""; ev_lane = -1; ev_vts = 0; ev_hts = 0;
    ev_value = 0 }

let default_capacity = 1 lsl 18

let buf = ref [||]
let cursor = Atomic.make 0
let on = Atomic.make false
let dropped_n = Atomic.make 0
let mismatch_n = Atomic.make 0

let enabled () = Atomic.get on

let start ?(capacity = default_capacity) () =
  buf := Array.make (max 16 capacity) dummy;
  Atomic.set dropped_n 0;
  Atomic.set mismatch_n 0;
  Atomic.set cursor 0;
  Atomic.set on true

let stop () = Atomic.set on false

let dropped () = Atomic.get dropped_n
let mismatches () = Atomic.get mismatch_n

(* Returns whether the event landed in the buffer. *)
let push ev =
  let b = !buf in
  let i = Atomic.fetch_and_add cursor 1 in
  if i < Array.length b then begin
    b.(i) <- ev;
    true
  end
  else begin
    ignore (Atomic.fetch_and_add dropped_n 1);
    false
  end

let events () =
  let b = !buf in
  let n = min (Atomic.get cursor) (Array.length b) in
  Array.to_list (Array.sub b 0 n)

(* ---- lanes ----------------------------------------------------------- *)

(* Lane 0 is the supervisor ("main"); kernel tasks report on their tid;
   unnamed worker domains land at [10_000 + domain id] so they can never
   collide with guest tids. *)

let lanes_m = Mutex.create ()
let lane_names : (int, string) Hashtbl.t = Hashtbl.create 16

let name_lane lane name =
  Mutex.lock lanes_m;
  if not (Hashtbl.mem lane_names lane) then Hashtbl.replace lane_names lane name;
  Mutex.unlock lanes_m

let lane_name lane =
  Mutex.lock lanes_m;
  let n = Hashtbl.find_opt lane_names lane in
  Mutex.unlock lanes_m;
  match n with
  | Some n -> n
  | None ->
    if lane = 0 then "main"
    else if lane >= 10_000 then Printf.sprintf "worker-%d" (lane - 10_000)
    else Printf.sprintf "task-%d" lane

type frame = { f_name : string; f_lane : int; f_emitted : bool }
type dstate = { mutable lane : int; mutable stack : frame list }

let dstate_key =
  Domain.DLS.new_key (fun () ->
      let did = (Domain.self () :> int) in
      { lane = (if did = 0 then 0 else 10_000 + did); stack = [] })

let dls () = Domain.DLS.get dstate_key

let set_lane ?name lane =
  (dls ()).lane <- lane;
  match name with Some n -> name_lane lane n | None -> ()

let current_lane () = (dls ()).lane

(* ---- recording ------------------------------------------------------- *)

let begin_scope ?lane name =
  let d = dls () in
  let lane = match lane with Some l -> l | None -> d.lane in
  let emitted =
    Atomic.get on
    && push
         { ev_kind = B; ev_name = name; ev_lane = lane; ev_vts = !vclock ();
           ev_hts = !hclock (); ev_value = 0 }
  in
  d.stack <- { f_name = name; f_lane = lane; f_emitted = emitted } :: d.stack

let end_scope name =
  let d = dls () in
  match d.stack with
  | [] -> if Atomic.get on then ignore (Atomic.fetch_and_add mismatch_n 1)
  | f :: rest ->
    d.stack <- rest;
    if f.f_name <> name then ignore (Atomic.fetch_and_add mismatch_n 1);
    (* The end event carries the frame's own name and opening lane, so a
       mismatched or lane-switched close still pairs with its begin. *)
    if f.f_emitted then
      ignore
        (push
           { ev_kind = E; ev_name = f.f_name; ev_lane = f.f_lane;
             ev_vts = !vclock (); ev_hts = !hclock (); ev_value = 0 })

let scope ?lane name f =
  begin_scope ?lane name;
  Fun.protect ~finally:(fun () -> end_scope name) f

let instant ?lane name =
  if Atomic.get on then begin
    let lane = match lane with Some l -> l | None -> current_lane () in
    ignore
      (push
         { ev_kind = I; ev_name = name; ev_lane = lane; ev_vts = !vclock ();
           ev_hts = !hclock (); ev_value = 0 })
  end

let sample ?lane name value =
  if Atomic.get on then begin
    let lane = match lane with Some l -> l | None -> current_lane () in
    ignore
      (push
         { ev_kind = C; ev_name = name; ev_lane = lane; ev_vts = !vclock ();
           ev_hts = !hclock (); ev_value = value })
  end

(* ---- layer mapping --------------------------------------------------- *)

(* Scope names follow the <layer>.<verb> convention (telemetry.mli); the
   first dotted segment maps onto the library that owns it, which
   becomes the Chrome "cat" field. *)
let layer_of name =
  let seg =
    match String.index_opt name '.' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  match seg with
  | "kern" -> "kern"
  | "trace" | "salvage" | "reader" | "io" | "compress" -> "rrtrace"
  | "record" | "replay" | "index" | "sched" | "syscallbuf" | "task" -> "rr"
  | "pool" -> "exec"
  | "gdb" -> "gdbstub"
  | s -> s

(* ---- Chrome trace-event export --------------------------------------- *)

(* One JSON object per event, ph in {B, E, i, C}, ts in microseconds of
   virtual time, host ns in args.  Per-lane timestamps are clamped
   monotone (worker-domain clock reads may be slightly stale), and any
   scope still open at the end of the buffer — a killed session, or an
   end event that fell off the bounded buffer — is closed at the final
   timestamp so every B has a matching E. *)
let to_chrome_json () =
  let evs = events () in
  let b = Buffer.create 65536 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"dropped\":%d,\"mismatches\":%d},\"traceEvents\":["
       (dropped ()) (mismatches ()));
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b s
  in
  (* Thread-name metadata for every lane that appears. *)
  let seen_lanes = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if not (Hashtbl.mem seen_lanes e.ev_lane) then begin
        Hashtbl.replace seen_lanes e.ev_lane ();
        emit
          (Printf.sprintf
             "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}"
             e.ev_lane
             (Json_min.escape (lane_name e.ev_lane)))
      end)
    evs;
  let last_ts : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let max_ts = ref 0 in
  let clamp lane ts =
    let ts =
      match Hashtbl.find_opt last_ts lane with
      | Some prev -> max prev ts
      | None -> ts
    in
    Hashtbl.replace last_ts lane ts;
    if ts > !max_ts then max_ts := ts;
    ts
  in
  let usec ts = Printf.sprintf "%.3f" (float_of_int ts /. 1e3) in
  let common ~ph ~lane ~ts name =
    Printf.sprintf
      "{\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"cat\":\"%s\",\"name\":\"%s\""
      ph lane (usec ts)
      (Json_min.escape (layer_of name))
      (Json_min.escape name)
  in
  (* Per-lane open-scope stacks, to synthesize missing ends. *)
  let open_stacks : (int, string list) Hashtbl.t = Hashtbl.create 16 in
  let stack lane = Option.value ~default:[] (Hashtbl.find_opt open_stacks lane) in
  List.iter
    (fun e ->
      let ts = clamp e.ev_lane e.ev_vts in
      match e.ev_kind with
      | B ->
        Hashtbl.replace open_stacks e.ev_lane (e.ev_name :: stack e.ev_lane);
        emit
          (common ~ph:"B" ~lane:e.ev_lane ~ts e.ev_name
          ^ Printf.sprintf ",\"args\":{\"host_ns\":%d}}" e.ev_hts)
      | E ->
        (match stack e.ev_lane with
        | _ :: rest -> Hashtbl.replace open_stacks e.ev_lane rest
        | [] -> ());
        emit
          (common ~ph:"E" ~lane:e.ev_lane ~ts e.ev_name
          ^ Printf.sprintf ",\"args\":{\"host_ns\":%d}}" e.ev_hts)
      | I -> emit (common ~ph:"i" ~lane:e.ev_lane ~ts e.ev_name ^ ",\"s\":\"t\"}")
      | C ->
        emit
          (common ~ph:"C" ~lane:e.ev_lane ~ts e.ev_name
          ^ Printf.sprintf ",\"args\":{\"value\":%d}}" e.ev_value))
    evs;
  (* Close whatever is still open, innermost first. *)
  Hashtbl.iter
    (fun lane names ->
      List.iter
        (fun name -> emit (common ~ph:"E" ~lane ~ts:!max_ts name ^ "}"))
        names)
    open_stacks;
  Buffer.add_string b "]}";
  Buffer.contents b

let export path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_chrome_json ());
      output_char oc '\n')

(* ---- aggregation: the merged scope tree ------------------------------ *)

type node = {
  n_name : string;
  mutable n_count : int;
  mutable n_total_ns : int; (* inclusive *)
  n_kids : (string, node) Hashtbl.t;
}

let new_node n_name =
  { n_name; n_count = 0; n_total_ns = 0; n_kids = Hashtbl.create 4 }

let node_child parent name =
  match Hashtbl.find_opt parent.n_kids name with
  | Some n -> n
  | None ->
    let n = new_node name in
    Hashtbl.replace parent.n_kids name n;
    n

let node_children n =
  Hashtbl.fold (fun _ c acc -> c :: acc) n.n_kids []
  |> List.sort (fun a b ->
         match compare b.n_total_ns a.n_total_ns with
         | 0 -> compare a.n_name b.n_name
         | c -> c)

let node_self n =
  let kids = Hashtbl.fold (fun _ c acc -> acc + c.n_total_ns) n.n_kids 0 in
  max 0 (n.n_total_ns - kids)

(* Replay the event stream through per-lane stacks, merging identical
   paths (across lanes and across repetitions) into one tree under a
   synthetic root.  Scopes left open by buffer truncation are closed at
   the last timestamp seen. *)
let tree () =
  let evs = events () in
  let root = new_node "" in
  let stacks : (int, (node * int) list) Hashtbl.t = Hashtbl.create 16 in
  let stack lane = Option.value ~default:[] (Hashtbl.find_opt stacks lane) in
  let max_ts = ref 0 in
  List.iter
    (fun e ->
      if e.ev_vts > !max_ts then max_ts := e.ev_vts;
      match e.ev_kind with
      | B ->
        let parent =
          match stack e.ev_lane with (n, _) :: _ -> n | [] -> root
        in
        let n = node_child parent e.ev_name in
        Hashtbl.replace stacks e.ev_lane ((n, e.ev_vts) :: stack e.ev_lane)
      | E -> (
        match stack e.ev_lane with
        | (n, t0) :: rest ->
          n.n_count <- n.n_count + 1;
          n.n_total_ns <- n.n_total_ns + max 0 (e.ev_vts - t0);
          Hashtbl.replace stacks e.ev_lane rest
        | [] -> ())
      | I | C -> ())
    evs;
  Hashtbl.iter
    (fun _ open_frames ->
      List.iter
        (fun (n, t0) ->
          n.n_count <- n.n_count + 1;
          n.n_total_ns <- n.n_total_ns + max 0 (!max_ts - t0))
        open_frames)
    stacks;
  root

(* ---- the per-stage attribution ledger -------------------------------- *)

type stage = { st_name : string; st_self_ns : int; st_count : int }

type summary = {
  at_total_ns : int;
  at_covered_ns : int;
  at_stages : stage list;
  at_untracked_ns : int;
}

let is_session name = String.length name > 8 && Filename.check_suffix name ".session"

(* Stages are *self* times grouped by scope name over the whole merged
   tree — time attributed to exactly one stage, so stages sum to the
   instrumented fraction of the window.  [*.session] roots are the
   window itself, not a stage: the total is the sum of session
   durations when any were recorded (each session runs its own virtual
   clock from ~0, so summing — not spanning — is what keeps a combined
   record+replay buffer honest), falling back to the raw virtual-time
   span of the buffer when no session scope exists. *)
let attribution () =
  let root = tree () in
  let session_total =
    Hashtbl.fold
      (fun name n acc -> if is_session name then acc + n.n_total_ns else acc)
      root.n_kids 0
  in
  let total =
    if session_total > 0 then session_total
    else begin
      let evs = events () in
      let min_ts, max_ts =
        List.fold_left
          (fun (lo, hi) e -> (min lo e.ev_vts, max hi e.ev_vts))
          (max_int, 0) evs
      in
      if min_ts = max_int then 0 else max 0 (max_ts - min_ts)
    end
  in
  let selfs : (string, int * int) Hashtbl.t = Hashtbl.create 32 in
  let rec walk n =
    if n.n_name <> "" && not (is_session n.n_name) then begin
      let s, c =
        Option.value ~default:(0, 0) (Hashtbl.find_opt selfs n.n_name)
      in
      Hashtbl.replace selfs n.n_name (s + node_self n, c + n.n_count)
    end;
    Hashtbl.iter (fun _ c -> walk c) n.n_kids
  in
  walk root;
  let stages =
    Hashtbl.fold
      (fun st_name (st_self_ns, st_count) acc ->
        if st_self_ns > 0 || st_count > 0 then
          { st_name; st_self_ns; st_count } :: acc
        else acc)
      selfs []
    |> List.sort (fun a b ->
           match compare b.st_self_ns a.st_self_ns with
           | 0 -> compare a.st_name b.st_name
           | c -> c)
  in
  let covered = List.fold_left (fun acc s -> acc + s.st_self_ns) 0 stages in
  { at_total_ns = total;
    at_covered_ns = covered;
    at_stages = stages;
    at_untracked_ns = max 0 (total - covered) }

let pct ~total v =
  if total <= 0 then 0. else 100. *. float_of_int v /. float_of_int total

(* ---- rendering ------------------------------------------------------- *)

let pp_flamegraph ppf () =
  let root = tree () in
  let total =
    List.fold_left (fun acc c -> acc + c.n_total_ns) 0 (node_children root)
  in
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf "%-44s %7s %14s %8s@," "scope" "share" "total ns" "count";
  let rec render depth n =
    Fmt.pf ppf "%s%-*s %6.1f%% %14d %8d@,"
      (String.make (2 * depth) ' ')
      (max 1 (44 - (2 * depth)))
      n.n_name
      (pct ~total n.n_total_ns)
      n.n_total_ns n.n_count;
    List.iter (render (depth + 1)) (node_children n)
  in
  List.iter (render 0) (node_children root);
  Fmt.pf ppf "@]"

let pp_attribution ppf () =
  let a = attribution () in
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf "%-44s %7s %14s %8s@," "stage" "share" "self ns" "count";
  List.iter
    (fun s ->
      Fmt.pf ppf "%-44s %6.1f%% %14d %8d@," s.st_name
        (pct ~total:a.at_total_ns s.st_self_ns)
        s.st_self_ns s.st_count)
    a.at_stages;
  Fmt.pf ppf "%-44s %6.1f%% %14d@," "(untracked)"
    (pct ~total:a.at_total_ns a.at_untracked_ns)
    a.at_untracked_ns;
  Fmt.pf ppf "total window: %d virtual ns, %.1f%% attributed@," a.at_total_ns
    (pct ~total:a.at_total_ns a.at_covered_ns);
  Fmt.pf ppf "@]"

let attribution_to_json a =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"total_ns\":%d,\"covered_ns\":%d,\"covered_pct\":%.2f,\"stages\":{"
       a.at_total_ns a.at_covered_ns
       (pct ~total:a.at_total_ns a.at_covered_ns));
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\"%s\":{\"self_ns\":%d,\"pct\":%.2f,\"count\":%d}"
           (Json_min.escape s.st_name)
           s.st_self_ns
           (pct ~total:a.at_total_ns s.st_self_ns)
           s.st_count))
    a.at_stages;
  Buffer.add_string b
    (Printf.sprintf "},\"untracked_ns\":%d}" a.at_untracked_ns);
  Buffer.contents b
