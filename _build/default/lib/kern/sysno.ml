(* The simulated kernel's system call numbers.

   Not the x86-64 numbering (the guest ISA is not x86), but the same
   *surface*: every call rr's design has to handle specially — blocking
   I/O, address-space manipulation, signal management, task creation,
   seccomp, perf — exists here. *)

let read = 0
let write = 1
let openat = 2
let close = 3
let stat = 4
let lseek = 5
let mmap = 6
let munmap = 7
let mprotect = 8
let exit = 9
let exit_group = 10
let clone = 11 (* fork or thread, by flags *)
let execve = 12
let wait4 = 13
let getpid = 14
let gettid = 15
let gettimeofday = 16
let clock_gettime = 17
let nanosleep = 18
let sched_yield = 19
let futex = 20
let pipe = 21
let kill = 22
let tgkill = 23
let rt_sigaction = 24
let rt_sigprocmask = 25
let rt_sigreturn = 26
let getrandom = 27
let sched_setaffinity = 28
let prctl = 29
let seccomp = 30
let perf_event_open = 31
let ioctl = 32
let socket = 33
let bind = 34
let sendto = 35
let recvfrom = 36
let unlink = 37
let mkdir = 38
let rename = 39
let link = 40
let dup = 41
let ftruncate = 42
let getcwd = 43
let chdir = 44
let ptrace = 45
let fsync = 46
let readlink = 47
let sigaltstack = 48
let getppid = 49
let set_tid_address = 50
let poll = 51

let max_syscall = 51

let name = function
  | 0 -> "read" | 1 -> "write" | 2 -> "openat" | 3 -> "close" | 4 -> "stat"
  | 5 -> "lseek" | 6 -> "mmap" | 7 -> "munmap" | 8 -> "mprotect"
  | 9 -> "exit" | 10 -> "exit_group" | 11 -> "clone" | 12 -> "execve"
  | 13 -> "wait4" | 14 -> "getpid" | 15 -> "gettid" | 16 -> "gettimeofday"
  | 17 -> "clock_gettime" | 18 -> "nanosleep" | 19 -> "sched_yield"
  | 20 -> "futex" | 21 -> "pipe" | 22 -> "kill" | 23 -> "tgkill"
  | 24 -> "rt_sigaction" | 25 -> "rt_sigprocmask" | 26 -> "rt_sigreturn"
  | 27 -> "getrandom" | 28 -> "sched_setaffinity" | 29 -> "prctl"
  | 30 -> "seccomp" | 31 -> "perf_event_open" | 32 -> "ioctl"
  | 33 -> "socket" | 34 -> "bind" | 35 -> "sendto" | 36 -> "recvfrom"
  | 37 -> "unlink" | 38 -> "mkdir" | 39 -> "rename" | 40 -> "link"
  | 41 -> "dup" | 42 -> "ftruncate" | 43 -> "getcwd" | 44 -> "chdir"
  | 45 -> "ptrace" | 46 -> "fsync" | 47 -> "readlink" | 48 -> "sigaltstack"
  | 49 -> "getppid" | 50 -> "set_tid_address" | 51 -> "poll"
  | n -> Printf.sprintf "sys_%d" n

(* ioctl request numbers. *)
let ficlone = 0x9409 (* BTRFS_IOC_CLONE *)
let ficlonerange = 0x940d
let perf_ioc_enable = 0x2400
let perf_ioc_disable = 0x2401
let perf_ioc_refresh = 0x2402

(* futex ops *)
let futex_wait = 0
let futex_wake = 1

(* clone flags *)
let clone_vm = 0x100
let clone_thread = 0x10000
let clone_files = 0x400
let clone_sighand = 0x800

(* prctl ops *)
let pr_set_tsc = 26
let pr_tsc_enable = 1
let pr_tsc_sigsegv = 2

(* seccomp *)
let seccomp_set_mode_filter = 1

(* ptrace requests (Linux numbering) *)
let ptrace_traceme = 0
let ptrace_peekdata = 2
let ptrace_getreg = 3 (* PEEKUSER analogue: addr = register index *)
let ptrace_cont = 7
let ptrace_attach = 16
let ptrace_detach = 17

(* poll events *)
let pollin = 1
let pollout = 4
let pollerr = 8
let pollhup = 16

(* lseek whence *)
let seek_set = 0
let seek_cur = 1
let seek_end = 2

(* open flags *)
let o_rdonly = 0
let o_wronly = 1
let o_rdwr = 2
let o_creat = 0x40
let o_trunc = 0x200
let o_nonblock = 0x800
let o_append = 0x400
