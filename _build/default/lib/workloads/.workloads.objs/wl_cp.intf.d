lib/workloads/wl_cp.mli: Workload
