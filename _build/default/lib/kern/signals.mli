(** Signal numbers, sets, actions and dispositions, with the semantics
    rr's design leans on: per-process handler tables shared by threads,
    per-thread masks, SA_RESTART interacting with the kernel's restart
    machinery (paper §2.3.10), and the fatal delivered-but-blocked fault
    edge case (paper §2.3.9). *)

val sighup : int
val sigint : int
val sigquit : int
val sigill : int
val sigtrap : int
val sigabrt : int
val sigbus : int
val sigfpe : int
val sigkill : int
val sigusr1 : int
val sigsegv : int
val sigusr2 : int
val sigpipe : int
val sigalrm : int
val sigterm : int
val sigstkflt : int
val sigchld : int
val sigcont : int
val sigstop : int
val sigsys : int

val sigpreempt : int
(** The recorder's preemption signal (PMU overflow), like rr's use of a
    spare real-time signal. *)

val sigdesched : int
(** The desched perf event's signal (paper §3.3). *)

val max_signal : int
val name : int -> string

(** {2 Signal sets (int bitsets, bit [n-1] for signal [n])} *)

val empty_set : int
val add : int -> int -> int
val remove : int -> int -> int
val mem : int -> int -> bool
val union : int -> int -> int
val of_list : int list -> int

(** {2 sigprocmask / sigaction constants} *)

val sig_block : int
val sig_unblock : int
val sig_setmask : int
val sa_restart : int
val sa_nodefer : int
val sa_resethand : int

type disposition = Default | Ignore | Handler of int (* handler address *)

type action = { disposition : disposition; mask : int; flags : int }

val default_action : action

type default_effect = Term | Ign | Stop | Cont

val default_effect : int -> default_effect
val is_fatal_default : int -> bool

(** {2 Signal provenance}

    The recorder distinguishes kernel-synthesized signals (desched,
    preemption, trapped TSC, breakpoints) from application signals. *)

type origin =
  | User of int (* sender tid *)
  | Fault (* synchronous CPU fault *)
  | Tsc_trap of Insn.reg (* trapped RDTSC awaiting an emulated value *)
  | Desched
  | Preempt
  | Bkpt
  | Step

type info = { signo : int; origin : origin; fault_addr : int }

val make_info : ?fault_addr:int -> int -> origin -> info
val pp_info : info Fmt.t
