(* Workload-level integration tests: every paper workload must run in
   every configuration, replay faithfully, and show the qualitative
   effects the evaluation section reports. *)

module W = Workload

(* Smaller parameter sets keep the suite fast. *)
let small_cp () = Wl_cp.make ~params:{ Wl_cp.files = 4; file_kb = 64 } ()

let small_make () =
  Wl_make.make
    ~params:{ Wl_make.jobs = 4; compiles = 8; src_kb = 8; compile_work = 2_000 }
    ()

let small_octane () =
  Wl_octane.make
    ~params:{ Wl_octane.threads = 2; iters = 40; calls_per_emit = 40; crunch = 500 }
    ()

let small_htmltest () =
  Wl_htmltest.make
    ~params:
      { Wl_htmltest.tests = 10; layout_work = 2_000; harness_work = 1_000;
        jit_every = 2 }
    ()

let small_samba () =
  Wl_samba.make
    ~params:
      { Wl_samba.echoes = 15; payload = 64; server_work = 1_500;
        client_work = 800 }
    ()

let check_roundtrip ?(rec_opts = Recorder.default_opts) w =
  let base = W.baseline w in
  Alcotest.(check (option int))
    (w.W.name ^ " baseline exits 0")
    (Some 0) base.W.exit_status;
  let recd, _ = W.record ~opts:rec_opts w in
  Alcotest.(check (option int))
    (w.W.name ^ " recorded exit matches")
    base.W.exit_status recd.W.rec_stats.Recorder.exit_status;
  let rep, _ = W.replay recd in
  Alcotest.(check (option int))
    (w.W.name ^ " replay exit matches")
    base.W.exit_status rep.W.rep_stats.Replayer.exit_status;
  (base, recd, rep)

let test_cp_roundtrip () = ignore (check_roundtrip (small_cp ()))
let test_make_roundtrip () = ignore (check_roundtrip (small_make ()))
let test_octane_roundtrip () = ignore (check_roundtrip (small_octane ()))
let test_htmltest_roundtrip () = ignore (check_roundtrip (small_htmltest ()))
let test_samba_roundtrip () = ignore (check_roundtrip (small_samba ()))

let test_cp_no_intercept_roundtrip () =
  ignore
    (check_roundtrip
       ~rec_opts:{ Recorder.default_opts with intercept = false }
       (small_cp ()))

let test_samba_no_intercept_roundtrip () =
  ignore
    (check_roundtrip
       ~rec_opts:{ Recorder.default_opts with intercept = false }
       (small_samba ()))

(* §6.2 checksums across a full workload with desched aborts, threads
   and blocking syscalls: the strictest divergence check we have. *)
let test_samba_with_checksums () =
  ignore
    (check_roundtrip
       ~rec_opts:{ Recorder.default_opts with checksum_every = 3 }
       (small_samba ()))

let test_octane_with_checksums () =
  ignore
    (check_roundtrip
       ~rec_opts:{ Recorder.default_opts with checksum_every = 2 }
       (small_octane ()))

let test_octane_chaos_roundtrip () =
  ignore
    (check_roundtrip
       ~rec_opts:
         { Recorder.default_opts with chaos = true; timeslice_rcbs = 5_000 }
       (small_octane ()))

(* §3.9: cp's trace must carry its data as cloned blocks, nearly free,
   while disabling cloning copies the bytes instead. *)
let test_cp_cloning_effect () =
  let w = small_cp () in
  let with_cloning, _ = W.record w in
  let without, _ =
    W.record ~opts:{ Recorder.default_opts with clone_blocks = false } w
  in
  let st_on = Trace.stats with_cloning.W.trace in
  let st_off = Trace.stats without.W.trace in
  Alcotest.(check bool)
    (Printf.sprintf "cloned blocks present (%d)" st_on.Trace.cloned_blocks)
    true
    (st_on.Trace.cloned_blocks > 4 * 16);
  (* 4 files x 64KB *)
  Alcotest.(check bool)
    (Printf.sprintf "no-cloning stores bytes in frames (%d vs %d raw)"
       st_off.Trace.raw_bytes st_on.Trace.raw_bytes)
    true
    (st_off.Trace.raw_bytes > 4 * st_on.Trace.raw_bytes)

(* §4.3: interception reduces recording time and ptrace stops. *)
let test_intercept_effect_on_samba () =
  let w = small_samba () in
  let fast, _ = W.record w in
  let slow, _ =
    W.record ~opts:{ Recorder.default_opts with intercept = false } w
  in
  Alcotest.(check bool)
    (Printf.sprintf "recording faster with interception (%d < %d)"
       fast.W.rec_stats.Recorder.wall_time slow.W.rec_stats.Recorder.wall_time)
    true
    (fast.W.rec_stats.Recorder.wall_time < slow.W.rec_stats.Recorder.wall_time);
  Alcotest.(check bool) "fewer stops with interception" true
    (fast.W.rec_stats.Recorder.n_ptrace_stops
    < slow.W.rec_stats.Recorder.n_ptrace_stops)

(* Figure 6 shape: the DBI null tool crashes on the JIT-churning octane
   but survives cp. *)
let test_dbi_crashes_on_octane () =
  let oct = Instrument.run (Wl_octane.make ()) in
  Alcotest.(check bool) "octane crashes the DBI" true oct.Instrument.crashed;
  let cp = Instrument.run (small_cp ()) in
  Alcotest.(check bool) "cp survives the DBI" false cp.Instrument.crashed

(* §4.5: htmltest's replay memory is much lower than recording because
   the harness is not replayed. *)
let test_htmltest_replay_memory () =
  let w = small_htmltest () in
  let recd, _ = W.record w in
  let rep, _ = W.replay recd in
  Alcotest.(check bool)
    (Printf.sprintf "replay PSS (%.0f) < record PSS (%.0f)"
       rep.W.rep_peak_pss recd.W.rec_peak_pss)
    true
    (rep.W.rep_peak_pss < recd.W.rec_peak_pss)

(* The recorded trace decodes from its compressed chunks bit-exactly:
   a sequential cursor walk and per-frame random access must agree. *)
let test_workload_trace_decodes () =
  let recd, _ = W.record (small_samba ()) in
  let trace = recd.W.trace in
  let decoded = Trace.Reader.to_array trace in
  Alcotest.(check int) "chunk stream decodes to all events"
    (Trace.n_events trace) (Array.length decoded);
  let c = Trace.Reader.open_ trace in
  Array.iteri
    (fun i e ->
      if Trace.Reader.next c <> e then
        Alcotest.failf "event %d differs between cursor and random access" i)
    decoded

(* Determinism of recording itself: same seed, same trace. *)
let test_recording_deterministic () =
  let run () =
    let recd, _ = W.record (small_cp ()) in
    Array.map (Fmt.str "%a" Event.pp) (Trace.Reader.to_array recd.W.trace)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "event streams identical" true (a = b)

(* Record-twice equivalence: the widened wrapper set must be purely an
   encoding/performance choice.  Recording the same workload with the
   wide and the narrow syscallbuf must replay to the same exit status
   and the same visible filesystem state, and each replay must apply
   exactly the frames its own recording produced. *)
let vfs_state_digest vfs =
  let buf = Buffer.create 256 in
  let rec go path =
    match Vfs.resolve_opt vfs path with
    | None -> ()
    | Some { Vfs.kind = Vfs.Dir _; _ } ->
      List.iter
        (fun name ->
          let p = if path = "/" then "/" ^ name else path ^ "/" ^ name in
          (* The recorder's own output tree is not program state. *)
          if p <> "/trace" then go p)
        (List.sort compare (Vfs.readdir vfs path))
    | Some { Vfs.kind = Vfs.Reg r; _ } ->
      Buffer.add_string buf path;
      Buffer.add_char buf '=';
      Buffer.add_string buf
        (Digest.to_hex
           (Digest.bytes (Vfs.read vfs r ~off:0 ~len:(Vfs.file_size r))));
      Buffer.add_char buf '\n'
  in
  go "/";
  Buffer.contents buf

let check_wide_narrow_equivalence w =
  let run ~wide =
    let recd, _ = W.record ~opts:(Recorder.make_opts ~wide ()) w in
    let rep, rk = W.replay ~opts:(Replayer.make_opts ~wide ()) recd in
    Alcotest.(check int)
      (Printf.sprintf "%s wide=%b replay applies every recorded frame"
         w.W.name wide)
      (Trace.n_events recd.W.trace)
      rep.W.rep_stats.Replayer.events_applied;
    (rep.W.rep_stats.Replayer.exit_status, vfs_state_digest (Kernel.vfs rk))
  in
  let wide_exit, wide_fs = run ~wide:true in
  let narrow_exit, narrow_fs = run ~wide:false in
  Alcotest.(check (option int))
    (w.W.name ^ " wide/narrow exit statuses agree")
    narrow_exit wide_exit;
  Alcotest.(check string)
    (w.W.name ^ " wide/narrow final filesystem state agrees")
    narrow_fs wide_fs

let test_cp_wide_narrow () = check_wide_narrow_equivalence (small_cp ())
let test_make_wide_narrow () = check_wide_narrow_equivalence (small_make ())
let test_samba_wide_narrow () = check_wide_narrow_equivalence (small_samba ())

(* Different recording seeds can change scheduling, but every recording
   must still replay. *)
let qcheck_any_seed_replays =
  QCheck.Test.make ~name:"replay succeeds for arbitrary recording seeds"
    ~count:8
    QCheck.(int_bound 1000)
    (fun seed ->
      let w = small_samba () in
      let opts =
        { Recorder.default_opts with seed = seed + 1; timeslice_rcbs = 7_000 }
      in
      let recd, _ = W.record ~opts w in
      let rep, _ = W.replay recd in
      rep.W.rep_stats.Replayer.exit_status = Some 0)

let suites =
  [ ( "workloads.roundtrip",
      [ Alcotest.test_case "cp" `Quick test_cp_roundtrip;
        Alcotest.test_case "make" `Quick test_make_roundtrip;
        Alcotest.test_case "octane" `Quick test_octane_roundtrip;
        Alcotest.test_case "htmltest" `Quick test_htmltest_roundtrip;
        Alcotest.test_case "sambatest" `Quick test_samba_roundtrip;
        Alcotest.test_case "cp (no intercept)" `Quick
          test_cp_no_intercept_roundtrip;
        Alcotest.test_case "samba (no intercept)" `Quick
          test_samba_no_intercept_roundtrip;
        Alcotest.test_case "octane (chaos)" `Quick test_octane_chaos_roundtrip;
        Alcotest.test_case "samba (checksums)" `Quick test_samba_with_checksums;
        Alcotest.test_case "octane (checksums)" `Quick
          test_octane_with_checksums ] );
    ( "workloads.effects",
      [ Alcotest.test_case "cp block cloning" `Quick test_cp_cloning_effect;
        Alcotest.test_case "interception speeds samba" `Quick
          test_intercept_effect_on_samba;
        Alcotest.test_case "DBI crashes on octane" `Quick
          test_dbi_crashes_on_octane;
        Alcotest.test_case "htmltest replay memory" `Quick
          test_htmltest_replay_memory;
        Alcotest.test_case "trace decodes" `Quick test_workload_trace_decodes;
        Alcotest.test_case "recording deterministic" `Quick
          test_recording_deterministic;
        Alcotest.test_case "cp wide/narrow equivalence" `Quick
          test_cp_wide_narrow;
        Alcotest.test_case "make wide/narrow equivalence" `Quick
          test_make_wide_narrow;
        Alcotest.test_case "samba wide/narrow equivalence" `Quick
          test_samba_wide_narrow;
        QCheck_alcotest.to_alcotest qcheck_any_seed_replays ] ) ]
