(* A dynamic-binary-instrumentation "null tool" (paper §4.2's
   DynamoRio-null comparison).

   We model the cost structure of a DBI engine rather than interpreting
   through a second translator: every process translates its code once
   (block translation cost, paid again by each fork/exec since code
   caches are per-process), every retired instruction pays a relative
   dispatch overhead, and run-time code writes invalidate the code cache
   and force retranslation — the reason DBI engines suffer on JIT-heavy
   workloads and crashed outright on octane (Figure 6). *)

module K = Kernel

type result = {
  time : int; (* virtual ns, Int.max_int when crashed *)
  crashed : bool;
  base_time : int;
  translated_insns : int;
  jit_writes : int;
}

(* A DBI engine gives up (or falls over) past this rate of code
   modification; DynamoRio's crash on octane is modeled as a threshold on
   run-time code writes. *)
let crash_jit_writes = 500

let insns_per_block = 6

let run ?(cores = 0) w =
  let loaded0 = !Addr_space.loaded_insns in
  let jit0 = !Cpu.jit_writes in
  let cores = if cores = 0 then cores else cores in
  let cores = if cores = 0 then w.Workload.cores else cores in
  let k = K.create ~seed:17 () in
  w.Workload.setup k;
  ignore (K.spawn k ~path:w.Workload.exe ());
  let stats = K.run_baseline k ~cores () in
  let translated = !Addr_space.loaded_insns - loaded0 in
  let jit = !Cpu.jit_writes - jit0 in
  let cost = k.K.cost in
  let blocks = translated / insns_per_block in
  let insn_overhead =
    k.K.insns_retired * cost.Cost.instrument_insn_num
    / cost.Cost.instrument_insn_den * cost.Cost.insn
  in
  let translate_overhead = blocks * cost.Cost.instrument_block in
  (* Each code write flushes and retranslates the surrounding region and
     flushes the dispatch caches: expensive. *)
  let jit_overhead = jit * cost.Cost.instrument_jit_write in
  let init_overhead = k.K.exec_count * cost.Cost.instrument_proc_init in
  let crashed = jit > crash_jit_writes in
  { time =
      (if crashed then max_int
       else
         stats.K.wall_time + insn_overhead + translate_overhead + jit_overhead
         + init_overhead);
    crashed;
    base_time = stats.K.wall_time;
    translated_insns = translated;
    jit_writes = jit }
