(* Host-entropy source for the simulated machine.

   Everything nondeterministic in the simulation (TSC drift, RDRAND,
   interrupt skid, scheduling jitter, datagram timing) draws from one of
   these generators.  A recording run and a replay run are given different
   seeds on purpose: if replay still reproduces user-space state exactly,
   the recorder really captured every input. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64: a small, high-quality, stdlib-free PRNG. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Entropy.int";
  bits t mod bound

(* [range t lo hi] is uniform-ish in [lo, hi] inclusive. *)
let range t lo hi =
  if hi < lo then invalid_arg "Entropy.range";
  lo + int t (hi - lo + 1)

let bool t = bits t land 1 = 1

let byte t = bits t land 0xff

let split t = create (bits t)

let state t = t.state
let set_state t s = t.state <- s
