(** A DEFLATE-style compressor: LZ77 with hash-chain matching over a
    32 KiB window, then canonical-Huffman coding of the literal/length
    and distance alphabets with extra bits — the structure of zlib's
    "deflate", which rr uses for all general trace data (paper §2.7).
    Small inputs fall back to a stored block. *)

exception Corrupt of string

val deflate : string -> string

val inflate : string -> string
(** Raises {!Corrupt} on malformed input. *)

val ratio : original:int -> compressed:int -> float
