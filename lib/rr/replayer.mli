(** The rr replayer (paper §2.3.7–§2.3.9, §3.8).

    Replays a {!Trace.t} against a fresh simulated kernel seeded with
    {e different} entropy: no files are opened, no signals delivered, no
    real syscalls run except the address-space operations that must be
    re-performed.  User-space registers, memory and control flow are
    reproduced exactly; every applied frame cross-checks tracee state and
    raises {!Divergence} on any mismatch.

    Frames are pulled through a {!Trace.Reader} cursor, never a decoded
    array — replay memory stays bounded by one trace chunk.

    Per frame kind:
    - syscalls: software breakpoint at the recorded site, one ptrace stop,
      apply recorded registers and memory effects, skip the instruction
      (§2.3.7); sites in run-time-written code use the SYSEMU fallback;
    - asynchronous events: program the PMU interrupt {e early} (it skids,
      §2.4.3), then breakpoint/single-step until the RCB count, the full
      register state and an extra stack word all match (§2.4.1);
    - buffered syscalls: refill the guest trace buffer from flush frames;
      the interception hook replays results with identical control flow
      and identical RCB charges (§3.8). *)

exception Divergence of string

type opts = {
  seed : int; (* deliberately different from the recording seed *)
  check_regs : bool; (* cross-check registers at every frame *)
  sysemu_all : bool; (* ablation: replay every syscall via SYSEMU *)
  wide : bool; (* widened wrapper set; must match the recording's *)
}

val default_opts : opts

val make_opts :
  ?seed:int -> ?check_regs:bool -> ?sysemu_all:bool -> ?wide:bool -> unit ->
  opts
(** [default_opts] with the given fields overridden. *)

type t
(** A live incremental replay session. *)

type stats = {
  wall_time : int;
  events_applied : int;
  n_ptrace_stops : int;
  exit_status : int option;
  telemetry : Telemetry.snapshot;
      (** metrics accumulated during this session (diff against the
          process-global registry at {!start}/{!restore}) *)
}

val replay : ?opts:opts -> ?on_frame:(Kernel.t -> unit) -> Trace.t -> stats * Kernel.t
(** Replay the whole trace.  Raises {!Divergence} on mismatch. *)

(** {2 Incremental replay (the debugger's substrate)} *)

val start : ?opts:opts -> Trace.t -> t
val at_end : t -> bool

val step : t -> Event.t
(** Apply the next frame; returns it. *)

val stats_of : t -> stats

val cursor_index : t -> int
(** Index of the next frame to apply (the session's trace cursor). *)

val kernel : t -> Kernel.t
(** The simulated kernel the session replays into. *)

val trace : t -> Trace.t

(** {2 Checkpoints (paper §6.1)}

    A checkpoint is a COW snapshot of the whole replay: address spaces
    are forked (copy-on-write page sharing — creating one is cheap no
    matter the tracee size), task registers/counters and the replayer's
    frame index are copied; restore re-seeks the trace cursor through the
    chunk index.  "Most checkpoints are never resumed", so creation cost
    is what matters. *)

type snapshot

val snapshot : t -> snapshot
(** Valid at frame boundaries (every live task parked).  The snapshot
    also captures the trace's identity (event/chunk counts, initial
    exe) so {!restore} can validate against the trace it is given. *)

type restore_error = {
  re_field : string; (** what disagreed: "initial exe", "chunk count", … *)
  re_snapshot : string;
  re_trace : string;
}

exception Restore_error of restore_error

val pp_restore_error : restore_error Fmt.t
val restore_error_to_string : restore_error -> string

val restore : ?opts:opts -> Trace.t -> snapshot -> (t, restore_error) result
(** Rebuild a live replayer from a snapshot; the snapshot remains valid
    and reusable.  The trace must be the one the snapshot was taken
    against — a different recording, or a salvaged prefix shorter than
    the checkpoint, is rejected with a typed error before any state is
    touched. *)

val restore_exn : ?opts:opts -> Trace.t -> snapshot -> t
(** {!restore}, raising {!Restore_error} on a mismatch. *)

val encode_snapshot : snapshot -> string
(** Flatten a snapshot to bytes (the trace's durable-checkpoint blob
    format).  COW page sharing is preserved: each distinct page frame is
    emitted once and referenced by id. *)

val decode_snapshot : string -> snapshot
(** Inverse of {!encode_snapshot}; the decoded snapshot restores like a
    live one.  Raises {!Codec.Corrupt} on malformed input. *)

val snapshot_index : snapshot -> int
(** The frame position the snapshot restores to. *)

(** {2 Internals exposed for tests} *)

val task : t -> int -> Task.t
val run_to_point : t -> Task.t -> Event.exec_point -> unit
val install_rdrand_hooks : Kernel.t -> unit
