(* Edge-case tests for the simulated kernel: fd semantics, errno paths,
   pipe lifecycle, signal corner cases, mmap/munmap, vdso, and the
   multicore scheduler's causality. *)

module K = Kernel
module T = Task
module G = Guest

let ( @. ) = List.append

let run_guest ?(cores = 1) ?(setup = fun _ -> ()) build_fn =
  let k = K.create ~seed:77 () in
  Vfs.mkdir_p (K.vfs k) "/bin";
  setup k;
  let b = G.create () in
  build_fn k b;
  K.install_image k ~path:"/bin/t" (G.build b ~name:"t" ());
  let task = K.spawn k ~path:"/bin/t" () in
  let stats = K.run_baseline k ~cores () in
  (k, task.T.proc, stats)

let status proc = match proc.T.exit_code with Some s -> s | None -> -1

(* exit code = -r0 (an errno) after the last syscall *)
let exit_with_neg_r0 =
  [ Asm.movi 7 0; Asm.I (Insn.Alu (Insn.Sub, 7, Insn.Reg 0)); Asm.movr 1 7 ]
  @. G.sc Sysno.exit_group [ G.reg 1 ]

let test_open_enoent () =
  let _, proc, _ =
    run_guest (fun _k b ->
        G.emit b (G.sys_open b ~path:"/nope" ~flags:Sysno.o_rdonly @. exit_with_neg_r0))
  in
  Alcotest.(check int) "ENOENT" Errno.enoent (status proc)

let test_open_creat_on_missing_dir () =
  let _, proc, _ =
    run_guest (fun _k b ->
        G.emit b
          (G.sys_open b ~path:"/no/dir/file" ~flags:(Sysno.o_creat lor Sysno.o_wronly)
          @. exit_with_neg_r0))
  in
  Alcotest.(check int) "ENOENT for missing parent" Errno.enoent (status proc)

let test_close_twice_ebadf () =
  let _, proc, _ =
    run_guest (fun _k b ->
        G.emit b
          (G.sys_open b ~path:"/f" ~flags:(Sysno.o_creat lor Sysno.o_rdwr)
          @. [ Asm.movr 7 0 ]
          @. G.sys_close (G.reg 7)
          @. G.sys_close (G.reg 7)
          @. exit_with_neg_r0))
  in
  Alcotest.(check int) "EBADF" Errno.ebadf (status proc)

let test_lowest_fd_reused () =
  let _, proc, _ =
    run_guest (fun _k b ->
        G.emit b
          (G.sys_open b ~path:"/a" ~flags:(Sysno.o_creat lor Sysno.o_rdwr)
          @. [ Asm.movr 7 0 ] (* fd 3 *)
          @. G.sys_open b ~path:"/b" ~flags:(Sysno.o_creat lor Sysno.o_rdwr)
          @. [ Asm.movr 8 0 ] (* fd 4 *)
          @. G.sys_close (G.reg 7)
          @. G.sys_open b ~path:"/c" ~flags:(Sysno.o_creat lor Sysno.o_rdwr)
          (* the freed fd 3 must be reused: exit with the new fd *)
          @. [ Asm.movr 1 0 ]
          @. G.sc Sysno.exit_group [ G.reg 1 ]))
  in
  Alcotest.(check int) "lowest free fd" 3 (status proc)

let test_dup_shares_offset () =
  let k, proc, _ =
    run_guest (fun _k b ->
        let msg = G.str b "abcdef" in
        G.emit b
          (G.sys_open b ~path:"/f" ~flags:(Sysno.o_creat lor Sysno.o_rdwr)
          @. [ Asm.movr 7 0 ]
          @. G.sc Sysno.dup [ G.reg 7 ]
          @. [ Asm.movr 8 0 ]
          (* write 3 bytes through each fd: offsets must chain *)
          @. G.sys_write ~fd:(G.reg 7) ~buf:(G.imm msg) ~len:(G.imm 3)
          @. G.sys_write ~fd:(G.reg 8) ~buf:(G.imm (msg + 3)) ~len:(G.imm 3)
          @. G.sys_exit_group 0))
  in
  Alcotest.(check int) "exit" 0 (status proc);
  let reg = Vfs.lookup_reg (K.vfs k) "/f" in
  Alcotest.(check string) "offsets shared through dup" "abcdef"
    (Bytes.to_string (Vfs.read (K.vfs k) reg ~off:0 ~len:6))

let test_lseek_seek_end () =
  let _, proc, _ =
    run_guest
      ~setup:(fun k ->
        let reg = Vfs.create_file (K.vfs k) "/d" in
        ignore (Vfs.write (K.vfs k) reg ~off:0 (Bytes.make 100 'x')))
      (fun _k b ->
        G.emit b
          (G.sys_open b ~path:"/d" ~flags:Sysno.o_rdonly
          @. [ Asm.movr 7 0 ]
          @. G.sc Sysno.lseek [ G.reg 7; G.imm (-10); G.imm Sysno.seek_end ]
          @. [ Asm.movr 1 0 ]
          @. G.sc Sysno.exit_group [ G.reg 1 ]))
  in
  Alcotest.(check int) "SEEK_END - 10" 90 (status proc)

let test_write_closed_pipe_sigpipe () =
  let _, proc, _ =
    run_guest (fun _k b ->
        let fds = G.bss b 16 in
        let msg = G.str b "x" in
        G.emit b
          (G.sys_pipe ~fds_addr:fds
          @. [ Asm.movi 9 fds; Asm.load 7 9 0; Asm.load 8 9 8 ]
          @. G.sys_close (G.reg 7) (* close the read end *)
          @. G.sys_write ~fd:(G.reg 8) ~buf:(G.imm msg) ~len:(G.imm 1)
          @. G.sys_exit_group 0))
  in
  Alcotest.(check int) "killed by SIGPIPE" (256 + Signals.sigpipe) (status proc)

let test_pipe_eof_on_writer_close () =
  let _, proc, _ =
    run_guest (fun _k b ->
        let fds = G.bss b 16 in
        let buf = G.bss b 8 in
        G.emit b
          (G.sys_pipe ~fds_addr:fds
          @. [ Asm.movi 9 fds; Asm.load 7 9 0; Asm.load 8 9 8 ]
          @. G.sys_close (G.reg 8)
          @. G.sys_read ~fd:(G.reg 7) ~buf:(G.imm buf) ~len:(G.imm 8)
          (* read returns 0 at EOF *)
          @. [ Asm.addi 0 55; Asm.movr 1 0 ]
          @. G.sc Sysno.exit_group [ G.reg 1 ]))
  in
  Alcotest.(check int) "EOF read = 0" 55 (status proc)

let test_bind_eaddrinuse () =
  let _, proc, _ =
    run_guest (fun _k b ->
        G.emit b
          (G.sys_socket
          @. [ Asm.movr 7 0 ]
          @. G.sys_bind ~fd:(G.reg 7) ~port:(G.imm 99)
          @. G.sys_socket
          @. [ Asm.movr 8 0 ]
          @. G.sys_bind ~fd:(G.reg 8) ~port:(G.imm 99)
          @. exit_with_neg_r0))
  in
  Alcotest.(check int) "EADDRINUSE" Errno.eaddrinuse (status proc)

let test_sendto_econnrefused () =
  let _, proc, _ =
    run_guest (fun _k b ->
        let msg = G.str b "x" in
        G.emit b
          (G.sys_socket
          @. [ Asm.movr 7 0 ]
          @. G.sys_sendto ~fd:(G.reg 7) ~buf:(G.imm msg) ~len:(G.imm 1)
               ~port:(G.imm 4242)
          @. exit_with_neg_r0))
  in
  Alcotest.(check int) "ECONNREFUSED" Errno.econnrefused (status proc)

let test_wait4_echild () =
  let _, proc, _ =
    run_guest (fun _k b ->
        G.emit b
          (G.sys_wait4 ~pid:(G.imm (-1)) ~status_addr:(G.imm 0)
          @. exit_with_neg_r0))
  in
  Alcotest.(check int) "ECHILD with no children" Errno.echild (status proc)

let test_futex_eagain_on_stale_value () =
  let _, proc, _ =
    run_guest (fun _k b ->
        let fvar = G.bss b 8 in
        G.emit b
          ([ Asm.movi 9 fvar; Asm.movi 10 7; Asm.store 10 9 0 ]
          @. G.sys_futex ~addr:(G.imm fvar) ~op:Sysno.futex_wait ~v:(G.imm 1)
          @. exit_with_neg_r0))
  in
  Alcotest.(check int) "EAGAIN when value differs" Errno.eagain (status proc)

let test_nanosleep_advances_clock () =
  let k, proc, _ =
    run_guest (fun _k b ->
        G.emit b (G.sys_nanosleep ~ns:(G.imm 5_000_000) @. G.sys_exit_group 0))
  in
  Alcotest.(check int) "exit" 0 (status proc);
  Alcotest.(check bool) "clock advanced past the sleep" true
    (K.now k >= 5_000_000)

let test_mmap_grows_pss () =
  let _, proc, _ =
    run_guest (fun _k b ->
        G.emit b
          (G.sys_mmap ~len:(G.imm (1 lsl 20)) ~prot:Mem.prot_rw ~flags:1
          @. G.check_ok b
          @. [ Asm.movr 7 0; Asm.movi 10 1; Asm.store 10 7 0 ]
          @. G.sys_exit_group 0))
  in
  Alcotest.(check int) "exit" 0 (status proc)

let test_mprotect_then_fault () =
  let _, proc, _ =
    run_guest (fun _k b ->
        G.emit b
          (G.sys_mmap ~len:(G.imm 4096) ~prot:Mem.prot_rw ~flags:1
          @. [ Asm.movr 7 0 ]
          @. G.sc Sysno.mprotect [ G.reg 7; G.imm 4096; G.imm Mem.prot_r ]
          (* the write must now fault: default SIGSEGV kills *)
          @. [ Asm.movi 10 1; Asm.store 10 7 0 ]
          @. G.sys_exit_group 0))
  in
  Alcotest.(check int) "SIGSEGV after mprotect" (256 + Signals.sigsegv)
    (status proc)

let test_sigprocmask_writes_old_set () =
  let _, proc, _ =
    run_guest (fun _k b ->
        let old_addr = G.bss b 8 in
        (* sighup's mask bit (1) fits in the 8-bit exit status *)
        let m1 = Signals.of_list [ Signals.sighup ] in
        G.emit b
          (G.sc Sysno.rt_sigprocmask
             [ G.imm Signals.sig_block; G.imm m1; G.imm 0 ]
          @. G.sc Sysno.rt_sigprocmask
               [ G.imm Signals.sig_block; G.imm 0; G.imm old_addr ]
          @. [ Asm.movi 9 old_addr; Asm.load 10 9 0; Asm.movr 1 10 ]
          @. G.sc Sysno.exit_group [ G.reg 1 ]))
  in
  Alcotest.(check int) "old mask returned"
    (Signals.of_list [ Signals.sighup ])
    (status proc)

let test_sigkill_unmaskable () =
  let _, proc, _ =
    run_guest (fun _k b ->
        let everything = (1 lsl 62) - 1 in
        G.emit b
          (G.sys_sigprocmask ~how:Signals.sig_setmask ~set:(G.imm everything)
          @. G.sc Sysno.getpid []
          @. [ Asm.movr 7 0 ]
          @. G.sys_kill ~pid:(G.reg 7) ~signo:Signals.sigkill
          @. G.sys_exit_group 0))
  in
  Alcotest.(check int) "SIGKILL cannot be masked" (256 + Signals.sigkill)
    (status proc)

let test_handler_mask_defers_nested () =
  (* A handler registered with SIGUSR2 in its sa_mask must not be
     interrupted by SIGUSR2; it runs after sigreturn. *)
  let _, proc, _ =
    run_guest (fun _k b ->
        let log_ = G.bss b 32 in
        G.emit b
          ([ Asm.jmp "main" ]
          (* handler for USR1: raise USR2 at self, then mark "1 done";
             USR2's handler marks its order. *)
          @. [ Asm.label "h1" ]
          @. G.sc Sysno.getpid []
          @. [ Asm.movr 7 0 ]
          @. G.sys_kill ~pid:(G.reg 7) ~signo:Signals.sigusr2
          @. G.compute_loop b ~n:20
          @. [ Asm.movi 9 log_; Asm.movi 10 1; Asm.store 10 9 0 ]
          @. G.sys_sigreturn
          @. [ Asm.label "h2" ]
          (* if h1 already finished, log[0]=1 and we record order 2 *)
          @. [ Asm.movi 9 log_; Asm.load 10 9 0; Asm.movi 11 2;
               Asm.store 11 9 8; Asm.store 10 9 16 ]
          @. G.sys_sigreturn
          @. [ Asm.label "main" ]
          @. [ Asm.lea 2 "h1" ]
          @. G.sys_sigaction ~signo:Signals.sigusr1 ~handler:(G.reg 2)
               ~mask:(Signals.of_list [ Signals.sigusr2 ])
               ~flags:0
          @. [ Asm.lea 2 "h2" ]
          @. G.sys_sigaction ~signo:Signals.sigusr2 ~handler:(G.reg 2) ~mask:0
               ~flags:0
          @. G.sc Sysno.getpid []
          @. [ Asm.movr 7 0 ]
          @. G.sys_kill ~pid:(G.reg 7) ~signo:Signals.sigusr1
          @. G.compute_loop b ~n:50
          (* exit code: log[16] = value of log[0] when h2 ran: must be 1 *)
          @. [ Asm.movi 9 log_; Asm.load 10 9 16; Asm.movr 1 10 ]
          @. G.sc Sysno.exit_group [ G.reg 1 ]))
  in
  Alcotest.(check int) "USR2 deferred until after h1" 1 (status proc)

let test_vdso_cheaper_than_syscall () =
  let run vdso =
    let k = K.create ~seed:7 () in
    Vfs.mkdir_p (K.vfs k) "/bin";
    let b = G.create () in
    G.emit b
      ([ Asm.movi 8 200; Asm.label "l" ]
      @. G.sys_gettimeofday ~buf:0
      @. [ Asm.subi 8 1; Asm.jnz 8 "l" ]
      @. G.sys_exit_group 0);
    K.install_image k ~path:"/bin/t" (G.build b ~name:"t" ());
    let t = K.spawn k ~path:"/bin/t" () in
    t.T.vdso_enabled <- vdso;
    ignore (K.run_baseline k ~cores:1 ());
    K.now k
  in
  let fast = run true and slow = run false in
  Alcotest.(check bool)
    (Printf.sprintf "vdso %d < real syscalls %d" fast slow)
    true (fast < slow)

let test_multicore_speedup () =
  (* N independent compute processes: the 4-core wall clock must be
     much smaller than single-core, but not less than work/4. *)
  let build _k b =
    G.emit b
      (G.sys_fork @. [ Asm.jz 0 "w" ]
      @. G.sys_fork @. [ Asm.jz 0 "w" ]
      @. G.sys_fork @. [ Asm.jz 0 "w" ]
      @. [ Asm.label "w" ]
      @. G.compute_loop b ~n:50_000
      @. G.sys_exit_group 0)
  in
  let time cores =
    let k = K.create ~seed:7 () in
    Vfs.mkdir_p (K.vfs k) "/bin";
    let b = G.create () in
    build k b;
    K.install_image k ~path:"/bin/t" (G.build b ~name:"t" ());
    ignore (K.spawn k ~path:"/bin/t" ());
    (K.run_baseline k ~cores ()).K.wall_time
  in
  let t1 = time 1 and t4 = time 4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 cores beat 1 (%d vs %d)" t4 t1)
    true
    (t4 * 2 < t1);
  Alcotest.(check bool) "causality: no superlinear speedup" true (t4 * 5 > t1)

let test_exec_resets_handlers () =
  let _, proc, _ =
    run_guest
      ~setup:(fun k ->
        let b2 = G.create () in
        (* the exec'd image raises SIGUSR1 at itself: default action must
           apply (handlers do not survive exec) *)
        G.emit b2
          (G.sc Sysno.getpid []
          @. [ Asm.movr 7 0 ]
          @. G.sys_kill ~pid:(G.reg 7) ~signo:Signals.sigusr1
          @. G.sys_exit_group 0);
        K.install_image k ~path:"/bin/two" (G.build b2 ~name:"two" ()))
      (fun _k b ->
        G.emit b
          ([ Asm.jmp "main" ]
          @. [ Asm.label "h" ]
          @. G.sys_sigreturn
          @. [ Asm.label "main"; Asm.lea 2 "h" ]
          @. G.sys_sigaction ~signo:Signals.sigusr1 ~handler:(G.reg 2) ~mask:0
               ~flags:0
          @. G.sys_execve b ~path:"/bin/two"
          @. G.sys_exit_group 1))
  in
  Alcotest.(check int) "default disposition after exec"
    (256 + Signals.sigusr1) (status proc)

(* poll(2): readiness without blocking, and blocking on several objects
   at once. *)
let test_poll_immediate_ready () =
  let _, proc, _ =
    run_guest (fun _k b ->
        let fds = G.bss b 16 in
        let pfds = G.bss b 48 in
        let msg = G.str b "z" in
        G.emit b
          (G.sys_pipe ~fds_addr:fds
          @. [ Asm.movi 9 fds; Asm.load 7 9 0; Asm.load 8 9 8 ]
          @. G.sys_write ~fd:(G.reg 8) ~buf:(G.imm msg) ~len:(G.imm 1)
          (* pfds[0] = { read end, POLLIN, _ } *)
          @. [ Asm.movi 9 pfds;
               Asm.store 7 9 0;
               Asm.movi 10 Sysno.pollin;
               Asm.store 10 9 8 ]
          @. G.sc Sysno.poll [ G.imm pfds; G.imm 1 ]
          @. [ Asm.movr 11 0 ] (* ready count *)
          @. [ Asm.movi 9 pfds; Asm.load 12 9 16 ] (* revents *)
          @. [ Asm.muli 11 10; Asm.addr_ 11 12; Asm.movr 1 11 ]
          @. G.sc Sysno.exit_group [ G.reg 1 ]))
  in
  (* 1 ready * 10 + POLLIN(1) = 11 *)
  Alcotest.(check int) "ready with POLLIN" 11 (status proc)

let test_poll_blocks_on_two_pipes () =
  let _, proc, _ =
    run_guest (fun _k b ->
        let fds1 = G.bss b 16 and fds2 = G.bss b 16 in
        let pfds = G.bss b 48 in
        let child_stack = G.bss b 4096 + 4096 in
        let msg = G.str b "q" in
        G.emit b
          (G.sys_pipe ~fds_addr:fds1
          @. G.sys_pipe ~fds_addr:fds2
          @. G.sys_clone_thread ~child_sp:(G.imm child_stack)
          @. [ Asm.jz 0 "child" ]
          (* parent: poll both read ends; the child feeds the SECOND *)
          @. [ Asm.movi 9 fds1; Asm.load 7 9 0 ]
          @. [ Asm.movi 9 fds2; Asm.load 8 9 0 ]
          @. [ Asm.movi 9 pfds;
               Asm.store 7 9 0;
               Asm.movi 10 Sysno.pollin;
               Asm.store 10 9 8;
               Asm.store 8 9 24;
               Asm.store 10 9 32 ]
          @. G.sc Sysno.poll [ G.imm pfds; G.imm 2 ]
          @. [ Asm.movr 11 0 ]
          @. [ Asm.movi 9 pfds; Asm.load 12 9 16; Asm.load 13 9 40 ]
          (* exit = ready*100 + revents0*10 + revents1 = 100 + 0 + 1 = 101 *)
          @. [ Asm.muli 11 100; Asm.muli 12 10; Asm.addr_ 11 12;
               Asm.addr_ 11 13; Asm.movr 1 11 ]
          @. G.sc Sysno.exit_group [ G.reg 1 ]
          @. [ Asm.label "child" ]
          @. G.compute_loop b ~n:2000
          @. [ Asm.movi 9 fds2; Asm.load 7 9 8 ]
          @. G.sys_write ~fd:(G.reg 7) ~buf:(G.imm msg) ~len:(G.imm 1)
          @. G.sys_exit 0))
  in
  Alcotest.(check int) "woken by the second pipe" 101 (status proc)

(* Regression: a deadlocked run must report wall_time from the cost
   model's clock at detection time, not a stale value.  The guest burns
   virtual time in a compute loop, then blocks forever reading a pipe
   whose write end is still open. *)
let test_deadlock_wall_time_from_cost_model () =
  let k, _proc, stats =
    run_guest (fun _k b ->
        let fds = G.bss b 16 in
        let buf = G.bss b 8 in
        G.emit b
          (G.sys_pipe ~fds_addr:fds
          @. [ Asm.movi 9 fds; Asm.load 7 9 0 ]
          @. G.compute_loop b ~n:2000
          @. G.sys_read ~fd:(G.reg 7) ~buf:(G.imm buf) ~len:(G.imm 8)
          @. G.sys_exit_group 0))
  in
  Alcotest.(check bool) "deadlocked" true stats.K.deadlocked;
  Alcotest.(check int) "wall_time synced to the kernel clock" (K.now k)
    stats.K.wall_time;
  Alcotest.(check bool) "wall_time covers the compute loop" true
    (stats.K.wall_time > 0)

let qcheck_getrandom_lengths =
  QCheck.Test.make ~name:"getrandom fills exactly n bytes" ~count:20
    QCheck.(int_range 0 512)
    (fun n ->
      let k = K.create ~seed:9 () in
      Vfs.mkdir_p (K.vfs k) "/bin";
      let b = G.create () in
      let buf = G.bss b 1024 in
      let ( @. ) = List.append in
      G.emit b
        (G.sc Sysno.getrandom [ G.imm buf; G.imm n ]
        @. [ Asm.movr 1 0 ]
        @. G.sc Sysno.exit_group [ G.reg 1 ]);
      K.install_image k ~path:"/bin/t" (G.build b ~name:"t" ());
      let t = K.spawn k ~path:"/bin/t" () in
      ignore (K.run_baseline k ~cores:1 ());
      t.T.proc.T.exit_code = Some (n land 0xff))

let suites =
  [ ( "kern.fds",
      [ Alcotest.test_case "open ENOENT" `Quick test_open_enoent;
        Alcotest.test_case "creat needs parent dir" `Quick
          test_open_creat_on_missing_dir;
        Alcotest.test_case "double close EBADF" `Quick test_close_twice_ebadf;
        Alcotest.test_case "lowest fd reused" `Quick test_lowest_fd_reused;
        Alcotest.test_case "dup shares offset" `Quick test_dup_shares_offset;
        Alcotest.test_case "lseek SEEK_END" `Quick test_lseek_seek_end ] );
    ( "kern.pipes",
      [ Alcotest.test_case "SIGPIPE on closed reader" `Quick
          test_write_closed_pipe_sigpipe;
        Alcotest.test_case "EOF on closed writer" `Quick
          test_pipe_eof_on_writer_close ] );
    ( "kern.net2",
      [ Alcotest.test_case "EADDRINUSE" `Quick test_bind_eaddrinuse;
        Alcotest.test_case "ECONNREFUSED" `Quick test_sendto_econnrefused ] );
    ( "kern.waits",
      [ Alcotest.test_case "poll immediate" `Quick test_poll_immediate_ready;
        Alcotest.test_case "poll blocks on two pipes" `Quick
          test_poll_blocks_on_two_pipes;
        Alcotest.test_case "ECHILD" `Quick test_wait4_echild;
        Alcotest.test_case "futex EAGAIN" `Quick
          test_futex_eagain_on_stale_value;
        Alcotest.test_case "nanosleep advances clock" `Quick
          test_nanosleep_advances_clock ] );
    ( "kern.mm",
      [ Alcotest.test_case "mmap + touch" `Quick test_mmap_grows_pss;
        Alcotest.test_case "mprotect faults" `Quick test_mprotect_then_fault ]
    );
    ( "kern.signals2",
      [ Alcotest.test_case "sigprocmask old set" `Quick
          test_sigprocmask_writes_old_set;
        Alcotest.test_case "SIGKILL unmaskable" `Quick test_sigkill_unmaskable;
        Alcotest.test_case "sa_mask defers nested" `Quick
          test_handler_mask_defers_nested;
        Alcotest.test_case "exec resets handlers" `Quick
          test_exec_resets_handlers ] );
    ( "kern.perf2",
      [ Alcotest.test_case "vdso cheaper" `Quick test_vdso_cheaper_than_syscall;
        Alcotest.test_case "multicore speedup + causality" `Quick
          test_multicore_speedup;
        Alcotest.test_case "deadlock wall_time from cost model" `Quick
          test_deadlock_wall_time_from_cost_model;
        QCheck_alcotest.to_alcotest qcheck_getrandom_lengths ] ) ]
