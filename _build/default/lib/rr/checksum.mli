(** Memory checksums (paper §6.2): deterministic digests of a tracee's
    application-visible memory, taken periodically while recording and
    verified during replay so divergence is caught close to its root
    cause. *)

val hash_bytes : int -> bytes -> int
(** FNV-style rolling hash step. *)

val fnv_offset : int
(** The hash's initial value. *)

val included_region : Addr_space.region -> bool
(** Scratch/trace-buffer pages and the supervisor-swapped thread-locals
    page are excluded: their contents legitimately differ between
    recording and replay. *)

val space : Addr_space.t -> int
(** Digest of an address space: included regions in address order,
    bytes in address order. *)
