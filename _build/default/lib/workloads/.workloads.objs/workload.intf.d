lib/workloads/workload.mli: Kernel Recorder Replayer Trace
