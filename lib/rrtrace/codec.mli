(** Byte-level serialization for trace frames: LEB128-style varints with
    a zigzag transform for signed values, length-prefixed strings and
    lists. *)

type sink = Buffer.t

val sink : unit -> sink
val put_uvarint : sink -> int -> unit
val put_int : sink -> int -> unit

val uvarint_size : int -> int
(** Bytes {!put_uvarint} would emit for this value, without emitting. *)

val int_size : int -> int
(** Bytes {!put_int} would emit for this value, without emitting — the
    saved-bytes ledger compares hypothetical against actual cost. *)

val put_string : sink -> string -> unit
val put_bytes : sink -> bytes -> unit
val put_list : sink -> (sink -> 'a -> unit) -> 'a list -> unit
val put_array : sink -> (sink -> 'a -> unit) -> 'a array -> unit
val put_bool : sink -> bool -> unit

type source

exception Corrupt of string

val source : string -> source
val eof : source -> bool

val pos : source -> int
(** Current byte offset — the trace loader records where each scanned
    record starts so chunks can be sliced without re-parsing. *)

val take : source -> int -> string
(** The next [n] raw bytes (no length prefix).  Raises {!Corrupt} if
    fewer remain. *)

val get_uvarint : source -> int
val get_int : source -> int
val get_string : source -> string
val get_bytes : source -> bytes
val get_list : source -> (source -> 'a) -> 'a list
val get_array : source -> (source -> 'a) -> 'a array
val get_bool : source -> bool
