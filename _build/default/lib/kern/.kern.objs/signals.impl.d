lib/kern/signals.ml: Fmt Insn List Printf
