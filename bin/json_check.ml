(* json_check FILE SPEC...

   Smoke-test validator for `rr_cli stats --json` output: parses the
   file with a minimal dependency-free JSON parser and checks each SPEC.

     section:name    the object at top-level key [section] has [name]
     +section:name   ... and its value is a number > 0, or an object
                     whose "count" member is > 0
     +events         the top-level "events" array is non-empty

   Exits non-zero with a message on the first failure, so a broken
   telemetry pipeline fails `dune runtest` loudly. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char b '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
        | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
        | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
        | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "bad \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          (* Non-ASCII code points are replaced; fine for validation. *)
          Buffer.add_char b (if code < 128 then Char.chr code else '?');
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when numchar c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing bytes";
  v

let die fmt = Printf.ksprintf (fun msg -> prerr_endline ("json_check: " ^ msg); exit 1) fmt

let check_spec root spec =
  let positive, spec =
    if String.length spec > 0 && spec.[0] = '+' then
      (true, String.sub spec 1 (String.length spec - 1))
    else (false, spec)
  in
  let top =
    match root with Obj m -> m | _ -> die "top level is not a JSON object"
  in
  match String.index_opt spec ':' with
  | None -> (
    (* bare name: a top-level key; with '+', a non-empty array *)
    match List.assoc_opt spec top with
    | None -> die "missing top-level key %S" spec
    | Some (List []) when positive -> die "%S is empty" spec
    | Some (List _) -> ()
    | Some _ when not positive -> ()
    | Some _ -> die "%S is not an array" spec)
  | Some i -> (
    let section = String.sub spec 0 i in
    let name = String.sub spec (i + 1) (String.length spec - i - 1) in
    match List.assoc_opt section top with
    | None -> die "missing section %S" section
    | Some (Obj members) -> (
      match List.assoc_opt name members with
      | None -> die "missing %S in section %S" name section
      | Some v when not positive -> ignore v
      | Some (Num f) -> if f <= 0. then die "%s:%s = %g, want > 0" section name f
      | Some (Obj m) -> (
        match List.assoc_opt "count" m with
        | Some (Num f) when f > 0. -> ()
        | Some (Num f) -> die "%s:%s count = %g, want > 0" section name f
        | _ -> die "%s:%s has no numeric \"count\"" section name)
      | Some _ -> die "%s:%s is neither number nor object" section name)
    | Some _ -> die "section %S is not an object" section)

let () =
  match Array.to_list Sys.argv with
  | _ :: file :: specs ->
    let data =
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let root =
      try parse data with Parse_error msg -> die "%s: %s" file msg
    in
    List.iter (check_spec root) specs;
    Printf.printf "json_check: %s ok (%d specs)\n" file (List.length specs)
  | _ -> die "usage: json_check FILE SPEC..."
