lib/rr/syscall_model.mli: Task
