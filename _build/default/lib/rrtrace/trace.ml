(* Trace container, writer and reader.

   General frame data is serialized ({!Event}) and deflate-compressed in
   chunks — the "all other trace data" stream of paper §2.7/Table 2.
   Memory-mapped executables and block-cloned file data are *not* run
   through the compressor: they are cloned (hard-link/FICLONE style) and
   accounted separately, which is exactly what makes rr traces cheap. *)

type stats = {
  mutable n_events : int;
  mutable raw_bytes : int; (* frame bytes before compression *)
  mutable compressed_bytes : int;
  mutable cloned_blocks : int; (* 4 KiB blocks snapshotted by cloning *)
  mutable cloned_bytes : int; (* bytes snapshotted by cloning/hard links *)
  mutable copied_file_bytes : int; (* file bytes copied (cloning disabled) *)
  mutable n_chunks : int;
  mutable n_buffered_syscalls : int; (* syscalls recorded via syscallbuf *)
  mutable n_traced_syscalls : int;
}

let new_stats () =
  { n_events = 0;
    raw_bytes = 0;
    compressed_bytes = 0;
    cloned_blocks = 0;
    cloned_bytes = 0;
    copied_file_bytes = 0;
    n_chunks = 0;
    n_buffered_syscalls = 0;
    n_traced_syscalls = 0 }

type t = {
  events : Event.t array;
  images : (string, Image.t) Hashtbl.t; (* trace path -> executable image *)
  files : (string, string) Hashtbl.t; (* trace path -> snapshotted bytes *)
  chunks : string list; (* compressed frame chunks, in order *)
  stats : stats;
  initial_exe : string;
}

let chunk_limit = 1 lsl 16

module Writer = struct
  type w = {
    mutable rev_events : Event.t list;
    mutable rev_chunks : string list;
    mutable pending : Codec.sink;
    images : (string, Image.t) Hashtbl.t;
    files : (string, string) Hashtbl.t;
    stats : stats;
    mutable exe : string;
    compress : bool;
  }

  let create ?(compress = true) ~initial_exe () =
    { rev_events = [];
      rev_chunks = [];
      pending = Codec.sink ();
      images = Hashtbl.create 8;
      files = Hashtbl.create 8;
      stats = new_stats ();
      exe = initial_exe;
      compress }

  let flush_chunk w =
    if Buffer.length w.pending > 0 then begin
      let raw = Buffer.contents w.pending in
      Buffer.clear w.pending;
      let stored = if w.compress then Compress.deflate raw else raw in
      w.stats.compressed_bytes <-
        w.stats.compressed_bytes + String.length stored;
      w.stats.n_chunks <- w.stats.n_chunks + 1;
      w.rev_chunks <- stored :: w.rev_chunks
    end

  (* Append one frame; returns the serialized size (for cost charging). *)
  let event w e =
    w.rev_events <- e :: w.rev_events;
    w.stats.n_events <- w.stats.n_events + 1;
    let before = Buffer.length w.pending in
    Event.encode w.pending e;
    let sz = Buffer.length w.pending - before in
    w.stats.raw_bytes <- w.stats.raw_bytes + sz;
    (match e with
    | Event.E_buf_flush { records; _ } ->
      w.stats.n_buffered_syscalls <-
        w.stats.n_buffered_syscalls + List.length records
    | Event.E_syscall _ ->
      w.stats.n_traced_syscalls <- w.stats.n_traced_syscalls + 1
    | Event.E_clone _ | Event.E_exec _ | Event.E_mmap _ | Event.E_signal _
    | Event.E_sched _ | Event.E_insn_trap _ | Event.E_patch _
    | Event.E_exit _ | Event.E_rr_setup _ | Event.E_syscall_enter _
    | Event.E_checksum _ ->
      ());
    if Buffer.length w.pending >= chunk_limit then flush_chunk w;
    sz

  (* Snapshot an executable image into the trace (hard link / clone):
     costs no data copying, only accounting. *)
  let add_image w ~path img =
    if not (Hashtbl.mem w.images path) then begin
      Hashtbl.replace w.images path img;
      let size = Image.byte_size img in
      w.stats.cloned_bytes <- w.stats.cloned_bytes + size;
      w.stats.cloned_blocks <-
        w.stats.cloned_blocks + ((size + 4095) / 4096)
    end

  (* Snapshot file bytes.  [cloned] distinguishes free COW clones from
     real copies (the no-cloning configuration of Table 1).  Re-adding a
     path (the growing per-task cloned-data file) accounts only the
     growth. *)
  let add_file w ~path ~cloned data =
    let old_size =
      match Hashtbl.find_opt w.files path with
      | Some prev -> String.length prev
      | None -> 0
    in
    Hashtbl.replace w.files path data;
    let delta = max 0 (String.length data - old_size) in
    if cloned then begin
      w.stats.cloned_bytes <- w.stats.cloned_bytes + delta;
      w.stats.cloned_blocks <- w.stats.cloned_blocks + ((delta + 4095) / 4096)
    end
    else w.stats.copied_file_bytes <- w.stats.copied_file_bytes + delta

  let find_file w path = Hashtbl.find_opt w.files path

  let finish w =
    flush_chunk w;
    { events = Array.of_list (List.rev w.rev_events);
      images = w.images;
      files = w.files;
      chunks = List.rev w.rev_chunks;
      stats = w.stats;
      initial_exe = w.exe }
end

let events t = t.events

let stats t = t.stats

let image t path =
  match Hashtbl.find_opt t.images path with
  | Some img -> img
  | None -> Fmt.invalid_arg "trace: no image %s" path

let file t path =
  match Hashtbl.find_opt t.files path with
  | Some d -> d
  | None -> Fmt.invalid_arg "trace: no file %s" path

(* Decode the compressed chunk stream back into events — proves the trace
   on disk is self-contained (used by tests and `rr dump`). *)
let decode_events t =
  let out = ref [] in
  List.iter
    (fun chunk ->
      let raw = Compress.inflate chunk in
      let s = Codec.source raw in
      while not (Codec.eof s) do
        out := Event.decode s :: !out
      done)
    t.chunks;
  Array.of_list (List.rev !out)

(* Host-filesystem persistence.  Frames are stored in the compressed
   chunk encoding; images and snapshotted files ride along via Marshal
   (they are plain data).  The header guards against version skew. *)
let magic = "RRTRACE1"

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      Marshal.to_channel oc t [])

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if m <> magic then failwith (path ^ ": not a trace file");
      let t : t = Marshal.from_channel ic in
      (* cross-check the self-contained chunk stream *)
      let decoded = decode_events t in
      if Array.length decoded <> Array.length t.events then
        failwith (path ^ ": corrupt trace (chunk stream mismatch)");
      t)

let pp_stats ppf s =
  Fmt.pf ppf
    "events=%d raw=%dB compressed=%dB (%.2fx) cloned=%dB (%d blocks) \
     copied=%dB buffered-syscalls=%d traced-syscalls=%d"
    s.n_events s.raw_bytes s.compressed_bytes
    (Compress.ratio ~original:s.raw_bytes ~compressed:s.compressed_bytes)
    s.cloned_bytes s.cloned_blocks s.copied_file_bytes s.n_buffered_syscalls
    s.n_traced_syscalls
