lib/rrtrace/huffman.mli: Bitio
