lib/rrtrace/bitio.ml: Buffer Char String
