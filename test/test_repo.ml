(* Tests for the content-addressed trace repository: store/load round
   trips, cross-trace dedup, refcounted gc, and the fault matrix —
   bit-flipped objects, truncated manifests and a crash mid-gc must
   each surface as a typed error or leave a verified-intact repo. *)

let with_temp_repo f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rr_repo_test.%d.%d" (Unix.getpid ()) (Random.bits ()))
  in
  let rec rm_rf p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
  @@ fun () ->
  match Repo.init dir with
  | Ok r -> f dir r
  | Error e -> Alcotest.failf "repo init: %a" Repo.pp_error e

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected repo error: %a" Repo.pp_error e

let small_cp () = Wl_cp.make ~params:{ Wl_cp.files = 2; file_kb = 32 } ()

let record_small ?(files = 2) () =
  let w = Wl_cp.make ~params:{ Wl_cp.files; file_kb = 32 } () in
  let recd, _ = Workload.record w in
  recd.Workload.trace

let frames t = Trace.Reader.to_array t

let list_files dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.map (Filename.concat dir)

(* ---- round trip and dedup -------------------------------------------- *)

let test_round_trip () =
  with_temp_repo @@ fun _dir repo ->
  let t = record_small () in
  let (_ : Repo.store_result) = ok (Repo.store_trace repo ~name:"a" t) in
  Alcotest.(check (list string)) "listed" [ "a" ] (Repo.list repo);
  let loaded = ok (Repo.load_trace repo ~name:"a") in
  Alcotest.(check bool) "frames identical" true (frames loaded = frames t);
  Alcotest.(check (option string))
    "initial exe survives"
    (Some (Trace.initial_exe t))
    (Some (Trace.initial_exe loaded));
  ok (Repo.verify repo)

let test_double_store_shares () =
  with_temp_repo @@ fun _dir repo ->
  let t = record_small () in
  let first = ok (Repo.store_trace repo ~name:"a" t) in
  let second = ok (Repo.store_trace repo ~name:"b" t) in
  Alcotest.(check bool)
    "first store writes objects" true
    (first.Repo.new_objects > 0);
  Alcotest.(check int) "second store writes none" 0 second.Repo.new_objects;
  Alcotest.(check bool)
    "second store is all shared" true
    (second.Repo.shared_objects = first.Repo.new_objects);
  let s = ok (Repo.stats repo) in
  Alcotest.(check int) "two traces" 2 s.Repo.n_traces;
  Alcotest.(check bool)
    "dedup ratio ~2x" true
    (float_of_int s.Repo.logical_bytes
     /. float_of_int (max 1 s.Repo.object_bytes)
    > 1.9)

(* ---- gc --------------------------------------------------------------- *)

let test_gc_sweeps_unreferenced () =
  with_temp_repo @@ fun _dir repo ->
  let t = record_small () in
  let (_ : Repo.store_result) = ok (Repo.store_trace repo ~name:"a" t) in
  let g = ok (Repo.gc repo) in
  Alcotest.(check int) "nothing to sweep" 0 g.Repo.swept_objects;
  ok (Repo.delete_trace repo ~name:"a");
  let g = ok (Repo.gc repo) in
  Alcotest.(check bool) "orphans swept" true (g.Repo.swept_objects > 0);
  Alcotest.(check int) "none live" 0 g.Repo.live_objects;
  let s = ok (Repo.stats repo) in
  Alcotest.(check int) "objects dir empty" 0 s.Repo.n_objects

let test_gc_keeps_shared () =
  with_temp_repo @@ fun _dir repo ->
  let t = record_small () in
  let (_ : Repo.store_result) = ok (Repo.store_trace repo ~name:"a" t) in
  let (_ : Repo.store_result) = ok (Repo.store_trace repo ~name:"b" t) in
  ok (Repo.delete_trace repo ~name:"a");
  let g = ok (Repo.gc repo) in
  Alcotest.(check int) "shared objects survive" 0 g.Repo.swept_objects;
  let loaded = ok (Repo.load_trace repo ~name:"b") in
  Alcotest.(check bool) "survivor loads" true (frames loaded = frames t)

(* ---- fault matrix ----------------------------------------------------- *)

let test_bit_flip_object_detected () =
  with_temp_repo @@ fun dir repo ->
  let t = record_small () in
  let (_ : Repo.store_result) = ok (Repo.store_trace repo ~name:"a" t) in
  let objects = list_files (Filename.concat dir "objects") in
  Alcotest.(check bool) "some objects" true (objects <> []);
  (* Flip one byte in every object in turn: each flip must surface as a
     typed Object_corrupt from load or verify, never as a wrong trace. *)
  let detected = ref 0 in
  List.iteri
    (fun i path ->
      if i < 5 then begin
        let original = In_channel.with_open_bin path In_channel.input_all in
        let flipped = Bytes.of_string original in
        let pos = Bytes.length flipped / 2 in
        Bytes.set flipped pos (Char.chr (Char.code (Bytes.get flipped pos) lxor 0x40));
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_bytes oc flipped);
        (match Repo.load_trace repo ~name:"a" with
        | Error (Repo.Object_corrupt _) -> incr detected
        | Error e ->
          Alcotest.failf "flip of %s: wrong error class: %a"
            (Filename.basename path) Repo.pp_error e
        | Ok loaded ->
          if frames loaded <> frames t then
            Alcotest.failf "flip of %s: silently wrong trace"
              (Filename.basename path));
        (* Restore: the repo must be intact again. *)
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc original)
      end)
    objects;
  Alcotest.(check bool) "at least one flip detected" true (!detected >= 1);
  ok (Repo.verify repo)

let test_truncated_manifest_detected () =
  with_temp_repo @@ fun dir repo ->
  let t = record_small () in
  let (_ : Repo.store_result) = ok (Repo.store_trace repo ~name:"a" t) in
  let path = Filename.concat (Filename.concat dir "traces") "a" in
  let original = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub original 0 (String.length original / 2)));
  (match Repo.load_trace repo ~name:"a" with
  | Error (Repo.Manifest_corrupt _) -> ()
  | Error e -> Alcotest.failf "wrong error class: %a" Repo.pp_error e
  | Ok _ -> Alcotest.fail "truncated manifest loaded");
  (* gc must refuse to sweep while any manifest is unreadable — a
     damaged manifest can never cause live objects to be collected. *)
  (match Repo.gc repo with
  | Error (Repo.Manifest_corrupt _) -> ()
  | Error e -> Alcotest.failf "gc: wrong error class: %a" Repo.pp_error e
  | Ok _ -> Alcotest.fail "gc ran over a truncated manifest");
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc original);
  ok (Repo.verify repo);
  let (_ : Repo.gc_stats) = ok (Repo.gc repo) in
  ()

let test_crash_mid_gc () =
  with_temp_repo @@ fun _dir repo ->
  let t = record_small () in
  let (_ : Repo.store_result) = ok (Repo.store_trace repo ~name:"keep" t) in
  let (_ : Repo.store_result) = ok (Repo.store_trace repo ~name:"drop" t) in
  (* Make some objects unique to "drop" so the gc has work: a second,
     structurally different recording only referenced by the doomed
     manifest. *)
  let t2 = record_small ~files:3 () in
  let (_ : Repo.store_result) = ok (Repo.store_trace repo ~name:"drop" t2) in
  ok (Repo.delete_trace repo ~name:"drop");
  (* Crash after the first sweep: the exception escapes, the repo is
     left with orphans but every live trace intact. *)
  let swept = ref 0 in
  (match
     Repo.gc
       ~on_sweep:(fun _ ->
         incr swept;
         if !swept = 1 then failwith "simulated crash")
       repo
   with
  | exception Failure _ -> ()
  | Ok _ -> Alcotest.fail "crash did not propagate"
  | Error e -> Alcotest.failf "unexpected: %a" Repo.pp_error e);
  ok (Repo.verify repo);
  let loaded = ok (Repo.load_trace repo ~name:"keep") in
  Alcotest.(check bool) "live trace intact" true (frames loaded = frames t);
  (* The next gc completes the interrupted sweep. *)
  let g = ok (Repo.gc repo) in
  let s = ok (Repo.stats repo) in
  Alcotest.(check bool)
    "only live objects remain" true
    (s.Repo.n_objects = g.Repo.live_objects)

(* ---- the streaming sink ----------------------------------------------- *)

let test_sink_streams_and_commits () =
  with_temp_repo @@ fun _dir repo ->
  let w = small_cp () in
  let recd, _ =
    Workload.record
      ~opts:
        (Recorder.make_opts
           ~sink:(Recorder.Sink_repo (repo, "streamed"))
           ())
      w
  in
  Alcotest.(check (list string)) "manifest committed" [ "streamed" ]
    (Repo.list repo);
  let loaded = ok (Repo.load_trace repo ~name:"streamed") in
  Alcotest.(check bool)
    "streamed trace loads identically" true
    (frames loaded = frames recd.Workload.trace);
  ok (Repo.verify repo)

let suites =
  [ ( "repo",
      [ Alcotest.test_case "store/load round trip" `Quick test_round_trip;
        Alcotest.test_case "double store is all shared" `Quick
          test_double_store_shares;
        Alcotest.test_case "gc sweeps unreferenced objects" `Quick
          test_gc_sweeps_unreferenced;
        Alcotest.test_case "gc keeps shared objects" `Quick
          test_gc_keeps_shared;
        Alcotest.test_case "bit-flipped object is typed" `Quick
          test_bit_flip_object_detected;
        Alcotest.test_case "truncated manifest is typed; gc refuses" `Quick
          test_truncated_manifest_detected;
        Alcotest.test_case "crash mid-gc leaves a repairable repo" `Quick
          test_crash_mid_gc;
        Alcotest.test_case "recording sink streams and commits" `Quick
          test_sink_streams_and_commits ] ) ]
