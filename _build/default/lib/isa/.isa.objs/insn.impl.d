lib/isa/insn.ml: Fmt
