lib/rr/layout.mli:
