lib/rr/syscallbuf.mli: Event Kernel Task
