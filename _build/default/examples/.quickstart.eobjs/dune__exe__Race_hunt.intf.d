examples/race_hunt.mli:
