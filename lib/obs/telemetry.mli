(** Unified telemetry: a process-wide registry of named counters, gauges,
    histograms and spans, plus a fixed-size ring of the last N structured
    events with a pluggable sink.

    This is the observability substrate of the reproduction (paper §6.2:
    diagnosing failures in the field needs the machinery built in, and
    §7's evaluation needs overhead attributable to tracing, syscallbuf,
    scratch and compression).  Every layer — kernel, trace store,
    recorder, replayer — reports through here; the CLI (`rr_cli stats`),
    the bench harness and {!Diagnostics.dump} render it.

    Conventions:
    - metric names are dotted [<layer>.<noun>[_<unit>]], e.g.
      [syscallbuf.hit], [record.scratch_bytes], [trace.chunk.evict];
    - spans are phases, [<layer>.<verb>], e.g. [record.syscall],
      [replay.seek], [trace.inflate]; each span owns a latency histogram
      registered as [<name>.ns];
    - the GDB stub ([lib/gdbstub]) reports as the [gdb] layer:
      [gdb.packets] (RSP packets served), [gdb.reverse_seeks] (reverse
      continue/step resolutions and checkpoint restarts), and the
      [gdb.cmd] span timing every command dispatch;
    - the flight-recorder ring and the trace repository report as the
      [ring] and [repo] layers: [ring.dropped_chunks] and the
      [ring.resident_bytes] gauge (window memory cost),
      [repo.objects_stored] / [repo.objects_shared] /
      [repo.bytes_stored] / [repo.bytes_deduped] (the dedup economy)
      and [repo.gc_swept];
    - all durations are *virtual* nanoseconds from the cost model, read
      through the installed {!set_clock} (no wall-clock dependency, so
      telemetry never perturbs determinism);
    - {!Timeline} scopes reuse the span namespace: every {!timed} span
      doubles as a timeline scope of the same dotted [<layer>.<verb>]
      name, {!set_clock} also installs the timeline's virtual clock, and
      {!note} mirrors each event as a timeline instant on the task's
      lane.  Scope names introduced directly via [Timeline.scope] must
      follow the same dotted convention ([tools/check_format.sh] lints
      this); [<layer>.session] is reserved for whole-phase roots.

    The registry is process-global and survives {!reset}: handles stay
    valid, only values are zeroed.  All operations on the hot path are
    O(1) field updates.

    The registry is domain-safe: worker domains (the pool in [lib/exec]
    that deflates trace chunks and prefetches replay chunks) share it
    with the main thread.  Counters and gauges are lock-free atomics;
    histograms, spans, the event ring, registration, {!reset} and
    {!snapshot} serialize on an internal registry mutex.  {!set_clock}
    installs a closure that worker domains may call concurrently — time
    sources must tolerate that (the kernel's virtual-ns clock is a
    plain field read, so a racing read is merely slightly stale). *)

(** {1 Metrics} *)

type counter
type gauge
type histogram
type span

val counter : string -> counter
(** Find or register the counter [name]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

val histogram : string -> histogram
(** Log2-bucketed distribution of non-negative integers (virtual-ns
    latencies, ratios, sizes): bucket [i] counts values in
    [\[2{^i-1}, 2{^i})]. *)

val observe : histogram -> int -> unit

val span : string -> span
(** A timed scope keyed by phase.  Also registers the histogram
    [<name>.ns] which every recorded duration feeds. *)

val span_add : span -> int -> unit
(** Record one completed pass of the span lasting [ns] virtual ns. *)

val span_count : span -> int

(** {1 The virtual clock} *)

val set_clock : (unit -> int) -> unit
(** Install the time source used by {!timed} — the recorder and replayer
    install their kernel's virtual-ns clock at session start. *)

val clear_clock : unit -> unit

val timed : span -> (unit -> 'a) -> 'a
(** Run the thunk inside the span, charging the elapsed virtual ns from
    the installed clock (zero-duration counts when no clock is set).
    Exception-safe: the span is recorded even if the thunk raises. *)

(** {1 The event ring} *)

type event = {
  seq : int; (** global sequence number, from 0 *)
  tid : int; (** task id, or -1 *)
  frame : int; (** trace frame index, or -1 *)
  kind : string;
  detail : string;
}

val ring_capacity : int
(** The ring keeps the last [ring_capacity] events (currently 64). *)

val note : ?tid:int -> ?frame:int -> kind:string -> string -> unit
(** Append a structured event to the ring and hand it to the sink. *)

val recent : unit -> event list
(** The ring's contents, oldest first — at most {!ring_capacity}. *)

(** {1 Sinks}

    The ring always records; a sink additionally receives every event as
    it is noted.  Contract: the sink must not call back into this module
    and must tolerate any [kind]/[detail]; {!reset} clears sink buffers
    but leaves the sink installed. *)

type sink =
  | Null (** drop (the default; zero cost beyond the ring) *)
  | Memory (** accumulate all events for {!memory_events} *)
  | Jsonl of string
      (** append one JSON object per line to the file, flushing after
          every event so a killed process's log survives on disk *)

val set_sink : sink -> unit
(** Installing a sink closes the previous JSONL channel (if any) and
    clears the memory buffer. *)

val memory_events : unit -> event list
(** Events accumulated since the [Memory] sink was installed (or since
    the last {!reset}), oldest first. *)

(** {1 Snapshots} *)

type span_stat = { s_count : int; s_total_ns : int; s_max_ns : int }

type hist_stat = {
  h_count : int;
  h_sum : int;
  h_buckets : (int * int) list;
      (** (inclusive upper bound, count), non-empty buckets only *)
}

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * int) list;
  snap_histograms : (string * hist_stat) list;
  snap_spans : (string * span_stat) list;
  snap_events : event list; (** the ring tail at snapshot time *)
}
(** An immutable copy of the registry; every section is sorted by name. *)

val snapshot : unit -> snapshot

val hist_quantile : hist_stat -> float -> float
(** [hist_quantile h q] estimates the [q]-quantile (0 ≤ q ≤ 1) from the
    log2 buckets: walk the cumulative counts to the target rank, then
    interpolate linearly inside the bucket's value range.  Exact to
    within a factor of 2 (the bucket width); monotone in [q]; [0.] on an
    empty histogram.  Works on {!since}-diffed stats too. *)

val since : snapshot -> snapshot
(** [since base] is the current snapshot minus [base]: counters, span
    counts/totals and histogram buckets subtract; gauges and span maxima
    take their current values; events are the current ring tail.  This
    is how per-run telemetry is carved out of the process-global
    registry (e.g. the snapshots embedded in [Recorder.stats]). *)

val reset : unit -> unit
(** Zero every registered metric, empty the ring and the memory-sink
    buffer.  Registered handles remain valid. *)

(** {1 Rendering} *)

val pp_event : event Fmt.t

val pp : snapshot Fmt.t
(** Human-readable table: counters, gauges, spans (count/total/max/avg),
    histogram buckets, then the event tail. *)

val snapshot_to_json : snapshot -> string
(** A single JSON object: [{"counters":{..},"gauges":{..},
    "histograms":{..},"spans":{..},"events":[..]}].  Each histogram
    carries derived [p50]/[p90]/[p99] estimates (from {!hist_quantile})
    alongside its raw buckets.  Hand-rolled, dependency-free, with full
    string escaping. *)

val event_to_json : event -> string
