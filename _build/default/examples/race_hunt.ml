(* Chaos mode: make a rare data race reproducible.

     dune exec examples/race_hunt.exe

   Two threads race to write a shared cell; the program's exit code
   reveals which write landed last.  Under the recorder's default
   deterministic schedule one interleaving dominates; chaos mode (paper
   §8) randomizes priorities and timeslices until the rare one appears —
   and once recorded, the race replays identically every time. *)

module K = Kernel
module G = Guest

let ( @. ) = List.append

let cell = 0x120000

(* Parent and child both write the cell after some work; the parent then
   reports what survived.  Exit code 2 = the child's write landed last —
   the "lost update" the default schedule hides. *)
let build k =
  Vfs.mkdir_p (K.vfs k) "/bin";
  let b = G.create () in
  let child_stack = G.bss b 4096 + 4096 in
  G.emit b
    (G.sys_clone_thread ~child_sp:(G.imm child_stack)
    @. [ Asm.jz 0 "child" ]
    @. G.compute_loop b ~n:3000
    @. [ Asm.movi 9 cell; Asm.movi 10 1; Asm.store 10 9 0 ]
    @. G.compute_loop b ~n:3000
    @. [ Asm.movi 9 cell; Asm.load 11 9 0; Asm.movr 1 11 ]
    @. G.sc Sysno.exit_group [ G.reg 1 ]
    @. [ Asm.label "child" ]
    @. G.compute_loop b ~n:3000
    @. [ Asm.movi 9 cell; Asm.movi 10 2; Asm.store 10 9 0 ]
    @. G.sys_exit 0);
  K.install_image k ~path:"/bin/racy" (G.build b ~name:"racy" ())

let record ~chaos ~seed =
  let opts =
    { Recorder.default_opts with chaos; seed; timeslice_rcbs = 2_000 }
  in
  Recorder.record ~opts ~setup:build ~exe:"/bin/racy" ()

let hunt ~chaos ~tries =
  let hits = ref 0 in
  let first = ref None in
  for seed = 1 to tries do
    let trace, stats, _ = record ~chaos ~seed in
    if stats.Recorder.exit_status = Some 2 then begin
      incr hits;
      if !first = None then first := Some (seed, trace)
    end
  done;
  (!hits, !first)

let () =
  let tries = 30 in
  let default_hits, _ = hunt ~chaos:false ~tries in
  Fmt.pr "default scheduling: lost update captured in %d/%d recordings@."
    default_hits tries;
  let chaos_hits, first = hunt ~chaos:true ~tries in
  Fmt.pr "chaos mode:         lost update captured in %d/%d recordings@."
    chaos_hits tries;
  match first with
  | None ->
    Fmt.pr "no capture this run — increase the attempt count.@.";
    exit 1
  | Some (seed, trace) ->
    Fmt.pr "chaos seed %d caught the race; replaying it three times:@." seed;
    for i = 1 to 3 do
      let stats, _ = Replayer.replay trace in
      assert (stats.Replayer.exit_status = Some 2);
      Fmt.pr "  replay %d: exit=2 — the lost update reproduced@." i
    done;
    Fmt.pr
      "a heisenbug made deterministic: every replay shows the same \
       interleaving.@."
