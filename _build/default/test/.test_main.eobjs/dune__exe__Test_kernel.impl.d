test/test_kernel.ml: Alcotest Array Asm Bpf Bytes Char Cpu Entropy Errno Gen Guest Insn Kernel List Printf QCheck QCheck_alcotest Signals String Sysno Task Vfs
