lib/isa/addr_space.ml: Array Bytes Hashtbl Insn Int64 List Mem
