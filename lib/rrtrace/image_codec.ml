(* Codec serialization for executable images.

   Trace files must be self-describing and independent of the OCaml
   runtime's Marshal layout (the deployability concern of the paper's
   tech report), so the images cloned into a trace are written with the
   same varint codec as the frame stream: a tag per instruction
   constructor, zigzag varints for operands and addresses. *)

module C = Codec

let corrupt fmt = Fmt.kstr (fun s -> raise (C.Corrupt s)) fmt

(* ---- operands, conditions, ALU ops ---------------------------------- *)

let put_operand b = function
  | Insn.Imm v ->
    C.put_uvarint b 0;
    C.put_int b v
  | Insn.Reg r ->
    C.put_uvarint b 1;
    C.put_int b r

let get_operand s =
  match C.get_uvarint s with
  | 0 -> Insn.Imm (C.get_int s)
  | 1 -> Insn.Reg (C.get_int s)
  | n -> corrupt "operand tag %d" n

let cond_id = function
  | Insn.Eq -> 0
  | Insn.Ne -> 1
  | Insn.Lt -> 2
  | Insn.Le -> 3
  | Insn.Gt -> 4
  | Insn.Ge -> 5

let cond_of = function
  | 0 -> Insn.Eq
  | 1 -> Insn.Ne
  | 2 -> Insn.Lt
  | 3 -> Insn.Le
  | 4 -> Insn.Gt
  | 5 -> Insn.Ge
  | n -> corrupt "cond tag %d" n

let alu_id = function
  | Insn.Add -> 0
  | Insn.Sub -> 1
  | Insn.Mul -> 2
  | Insn.Div -> 3
  | Insn.Rem -> 4
  | Insn.And -> 5
  | Insn.Or -> 6
  | Insn.Xor -> 7
  | Insn.Shl -> 8
  | Insn.Shr -> 9

let alu_of = function
  | 0 -> Insn.Add
  | 1 -> Insn.Sub
  | 2 -> Insn.Mul
  | 3 -> Insn.Div
  | 4 -> Insn.Rem
  | 5 -> Insn.And
  | 6 -> Insn.Or
  | 7 -> Insn.Xor
  | 8 -> Insn.Shl
  | 9 -> Insn.Shr
  | n -> corrupt "alu tag %d" n

(* ---- instructions ---------------------------------------------------- *)

let put_insn b = function
  | Insn.Nop -> C.put_uvarint b 0
  | Insn.Mov (r, o) ->
    C.put_uvarint b 1;
    C.put_int b r;
    put_operand b o
  | Insn.Alu (op, r, o) ->
    C.put_uvarint b 2;
    C.put_uvarint b (alu_id op);
    C.put_int b r;
    put_operand b o
  | Insn.Load (d, a, off) ->
    C.put_uvarint b 3;
    C.put_int b d;
    C.put_int b a;
    C.put_int b off
  | Insn.Store (v, a, off) ->
    C.put_uvarint b 4;
    C.put_int b v;
    C.put_int b a;
    C.put_int b off
  | Insn.Load8 (d, a, off) ->
    C.put_uvarint b 5;
    C.put_int b d;
    C.put_int b a;
    C.put_int b off
  | Insn.Store8 (v, a, off) ->
    C.put_uvarint b 6;
    C.put_int b v;
    C.put_int b a;
    C.put_int b off
  | Insn.Jmp a ->
    C.put_uvarint b 7;
    C.put_int b a
  | Insn.Jcc (c, r, o, a) ->
    C.put_uvarint b 8;
    C.put_uvarint b (cond_id c);
    C.put_int b r;
    put_operand b o;
    C.put_int b a
  | Insn.Call a ->
    C.put_uvarint b 9;
    C.put_int b a
  | Insn.Callr r ->
    C.put_uvarint b 10;
    C.put_int b r
  | Insn.Ret -> C.put_uvarint b 11
  | Insn.Push o ->
    C.put_uvarint b 12;
    put_operand b o
  | Insn.Pop r ->
    C.put_uvarint b 13;
    C.put_int b r
  | Insn.Syscall -> C.put_uvarint b 14
  | Insn.Rdtsc r ->
    C.put_uvarint b 15;
    C.put_int b r
  | Insn.Rdrand r ->
    C.put_uvarint b 16;
    C.put_int b r
  | Insn.Cpuid_core r ->
    C.put_uvarint b 17;
    C.put_int b r
  | Insn.Cas (a, expect, new_, out) ->
    C.put_uvarint b 18;
    C.put_int b a;
    C.put_int b expect;
    C.put_int b new_;
    C.put_int b out
  | Insn.Pause -> C.put_uvarint b 19
  | Insn.Emit (a, v) ->
    C.put_uvarint b 20;
    C.put_int b a;
    C.put_int b v
  | Insn.Hook n ->
    C.put_uvarint b 21;
    C.put_int b n
  | Insn.Halt -> C.put_uvarint b 22

let get_insn s =
  match C.get_uvarint s with
  | 0 -> Insn.Nop
  | 1 ->
    let r = C.get_int s in
    Insn.Mov (r, get_operand s)
  | 2 ->
    let op = alu_of (C.get_uvarint s) in
    let r = C.get_int s in
    Insn.Alu (op, r, get_operand s)
  | 3 ->
    let d = C.get_int s in
    let a = C.get_int s in
    Insn.Load (d, a, C.get_int s)
  | 4 ->
    let v = C.get_int s in
    let a = C.get_int s in
    Insn.Store (v, a, C.get_int s)
  | 5 ->
    let d = C.get_int s in
    let a = C.get_int s in
    Insn.Load8 (d, a, C.get_int s)
  | 6 ->
    let v = C.get_int s in
    let a = C.get_int s in
    Insn.Store8 (v, a, C.get_int s)
  | 7 -> Insn.Jmp (C.get_int s)
  | 8 ->
    let c = cond_of (C.get_uvarint s) in
    let r = C.get_int s in
    let o = get_operand s in
    Insn.Jcc (c, r, o, C.get_int s)
  | 9 -> Insn.Call (C.get_int s)
  | 10 -> Insn.Callr (C.get_int s)
  | 11 -> Insn.Ret
  | 12 -> Insn.Push (get_operand s)
  | 13 -> Insn.Pop (C.get_int s)
  | 14 -> Insn.Syscall
  | 15 -> Insn.Rdtsc (C.get_int s)
  | 16 -> Insn.Rdrand (C.get_int s)
  | 17 -> Insn.Cpuid_core (C.get_int s)
  | 18 ->
    let a = C.get_int s in
    let expect = C.get_int s in
    let new_ = C.get_int s in
    Insn.Cas (a, expect, new_, C.get_int s)
  | 19 -> Insn.Pause
  | 20 ->
    let a = C.get_int s in
    Insn.Emit (a, C.get_int s)
  | 21 -> Insn.Hook (C.get_int s)
  | 22 -> Insn.Halt
  | n -> corrupt "insn tag %d" n

(* ---- programs and images --------------------------------------------- *)

let put_program b (p : Asm.program) =
  C.put_int b p.Asm.base;
  C.put_array b put_insn p.Asm.code;
  C.put_list b
    (fun b (name, addr) ->
      C.put_string b name;
      C.put_int b addr)
    p.Asm.symbols

let get_program s : Asm.program =
  let base = C.get_int s in
  let code = C.get_array s get_insn in
  let symbols =
    C.get_list s (fun s ->
        let name = C.get_string s in
        (name, C.get_int s))
  in
  { Asm.base; code; symbols }

let put_image b (img : Image.t) =
  C.put_string b img.Image.name;
  put_program b img.Image.prog;
  C.put_int b img.Image.entry;
  C.put_list b
    (fun b (addr, len) ->
      C.put_int b addr;
      C.put_int b len)
    img.Image.data_maps;
  C.put_list b
    (fun b (addr, data) ->
      C.put_int b addr;
      C.put_string b data)
    img.Image.data_init;
  C.put_int b img.Image.stack_size

let get_image s : Image.t =
  let name = C.get_string s in
  let prog = get_program s in
  let entry = C.get_int s in
  let data_maps =
    C.get_list s (fun s ->
        let addr = C.get_int s in
        (addr, C.get_int s))
  in
  let data_init =
    C.get_list s (fun s ->
        let addr = C.get_int s in
        (addr, C.get_string s))
  in
  let stack_size = C.get_int s in
  { Image.name; prog; entry; data_maps; data_init; stack_size }
