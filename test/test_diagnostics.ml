(* The emergency debugger (paper §6.2): Diagnostics.dump must render
   every task's registers and stop status, include the telemetry event
   ring's tail after a failure, and survive degenerate kernels. *)

module K = Kernel
module T = Task

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    if i + nl > hl then false
    else if String.sub hay i nl = needle then true
    else go (i + 1)
  in
  nl = 0 || go 0

let check_contains what hay needle =
  Alcotest.(check bool) (what ^ ": dump mentions " ^ needle) true
    (contains hay needle)

(* A fresh kernel with no tasks must still produce a well-formed dump. *)
let test_empty_kernel () =
  Telemetry.reset ();
  let k = K.create ~seed:3 () in
  let d = Diagnostics.dump k in
  check_contains "empty" d "=== emergency state dump";
  check_contains "empty" d "=== end dump ===";
  Alcotest.(check bool) "no tasks listed" false (contains d "task ");
  (* an empty ring renders no telemetry section *)
  Alcotest.(check bool) "no event section" false
    (contains d "--- telemetry:")

(* Mid-replay, the dump lists every live task: tid, registers, stop
   status, pc and address-space shape. *)
let test_tasks_rendered () =
  Telemetry.reset ();
  let recd, _ = Workload.record (Wl_cp.make ()) in
  let r = Replayer.start recd.Workload.trace in
  for _ = 1 to 12 do
    if not (Replayer.at_end r) then ignore (Replayer.step r)
  done;
  let k = Replayer.kernel r in
  let d = Diagnostics.dump ~msg:"mid-replay probe" k in
  check_contains "tasks" d "mid-replay probe";
  let tasks = K.all_tasks k in
  Alcotest.(check bool) "kernel has live tasks" true (tasks <> []);
  List.iter
    (fun (t : T.t) ->
      check_contains "tasks" d (Printf.sprintf "task %d (pid %d" t.T.tid
                                  t.T.proc.T.pid))
    tasks;
  check_contains "tasks" d "regs:";
  check_contains "tasks" d "pc=";
  check_contains "tasks" d "regions"

(* After a divergence the dump carries the event ring's tail — the
   frames leading up to the failure. *)
let test_divergence_dump_has_ring () =
  Telemetry.reset ();
  let opts = { Recorder.default_opts with Recorder.intercept = false } in
  let recd, _ = Workload.record ~opts (Wl_cp.make ()) in
  let tampered = ref false in
  let trace =
    Trace.map_frames
      (fun _ e ->
        match e with
        | Event.E_syscall ({ regs_after; _ } as sc) when not !tampered ->
          tampered := true;
          let regs_after = Array.copy regs_after in
          regs_after.(3) <- regs_after.(3) + 987654;
          Event.E_syscall { sc with regs_after }
        | e -> e)
      recd.Workload.trace
  in
  Alcotest.(check bool) "found a frame to tamper" true !tampered;
  let r = Replayer.start trace in
  let diverged = ref false in
  (try
     while not (Replayer.at_end r) do
       ignore (Replayer.step r)
     done
   with Replayer.Divergence _ -> diverged := true);
  Alcotest.(check bool) "tampered trace diverged" true !diverged;
  let d = Diagnostics.dump (Replayer.kernel r) in
  check_contains "divergence" d "--- telemetry: last";
  (* every replayed frame left a ring event; at least one must be a
     numbered entry with its frame index *)
  check_contains "divergence" d "#";
  check_contains "divergence" d "frame="

let suites =
  [ ( "diagnostics",
      [ Alcotest.test_case "empty kernel" `Quick test_empty_kernel;
        Alcotest.test_case "tasks rendered" `Quick test_tasks_rendered;
        Alcotest.test_case "divergence dump has ring tail" `Quick
          test_divergence_dump_has_ring ] ) ]
