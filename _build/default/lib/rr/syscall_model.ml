(* The system-call model (paper §2.3.6).

   For every syscall the recorder supports, this module answers:
   - which user memory does it write, given entry args and the result?
   - can it block (so outputs must detour through scratch buffers and the
     desched event must be armed on the buffered path)?
   - may the interception library handle it without a trap?
   - how must replay treat it (emulate, or re-perform for address-space
     effects)?

   Unknown syscalls make the recorder fail loudly with the syscall name —
   the paper's "unsupported system calls produce a message clearly
   identifying the problem" behavior. *)

module T = Task

exception Unsupported of string

type output = { out_addr : int; out_len : int }

(* Memory written by a completed syscall.  [args] are the entry arguments
   (post any supervisor rewriting), [result] the return value. *)
let outputs ~nr ~(args : int array) ~result : output list =
  if result < 0 then []
  else if nr = Sysno.read || nr = Sysno.recvfrom then
    let buf = { out_addr = args.(1); out_len = result } in
    if nr = Sysno.recvfrom && args.(3) <> 0 then
      [ buf; { out_addr = args.(3); out_len = 8 } ]
    else [ buf ]
  else if nr = Sysno.stat then [ { out_addr = args.(1); out_len = 32 } ]
  else if nr = Sysno.pipe then [ { out_addr = args.(0); out_len = 16 } ]
  else if nr = Sysno.getcwd then [ { out_addr = args.(0); out_len = result } ]
  else if nr = Sysno.wait4 then
    if args.(1) <> 0 then [ { out_addr = args.(1); out_len = 8 } ] else []
  else if nr = Sysno.gettimeofday || nr = Sysno.clock_gettime then
    if args.(0) <> 0 then [ { out_addr = args.(0); out_len = 8 } ] else []
  else if nr = Sysno.getrandom then [ { out_addr = args.(0); out_len = result } ]
  else if nr = Sysno.rt_sigprocmask then
    if args.(2) <> 0 then [ { out_addr = args.(2); out_len = 8 } ] else []
  else if nr = Sysno.poll then
    (* revents slots of every entry *)
    List.init args.(1) (fun i ->
        { out_addr = args.(0) + (24 * i) + 16; out_len = 8 })
  else if
    nr = Sysno.write || nr = Sysno.openat || nr = Sysno.close
    || nr = Sysno.lseek || nr = Sysno.mmap || nr = Sysno.munmap
    || nr = Sysno.mprotect || nr = Sysno.exit || nr = Sysno.exit_group
    || nr = Sysno.clone || nr = Sysno.execve || nr = Sysno.getpid
    || nr = Sysno.gettid || nr = Sysno.getppid || nr = Sysno.nanosleep
    || nr = Sysno.sched_yield || nr = Sysno.futex || nr = Sysno.kill
    || nr = Sysno.tgkill || nr = Sysno.rt_sigaction || nr = Sysno.rt_sigreturn
    || nr = Sysno.sched_setaffinity || nr = Sysno.prctl || nr = Sysno.seccomp
    || nr = Sysno.perf_event_open || nr = Sysno.ioctl || nr = Sysno.socket
    || nr = Sysno.bind || nr = Sysno.sendto || nr = Sysno.unlink
    || nr = Sysno.mkdir || nr = Sysno.rename || nr = Sysno.link
    || nr = Sysno.dup || nr = Sysno.ftruncate || nr = Sysno.chdir
    || nr = Sysno.fsync || nr = Sysno.readlink || nr = Sysno.sigaltstack
    || nr = Sysno.set_tid_address || nr = Sysno.ptrace
  then []
  else raise (Unsupported (Sysno.name nr))

(* Can this call sleep in the kernel?  [task] lets us inspect the fd —
   reads from regular files never block, reads from pipes/sockets can. *)
let may_block task ~nr ~(args : int array) =
  if nr = Sysno.read then
    match T.find_fd task args.(0) with
    | Some { T.obj = T.F_reg _; _ } | None -> false
    | Some { T.obj = T.F_pipe_r _ | T.F_pipe_w _ | T.F_sock _ | T.F_perf _; _ }
      ->
      true
  else if nr = Sysno.write then begin
    match T.find_fd task args.(0) with
    | Some { T.obj = T.F_pipe_w _; _ } -> true
    | Some _ | None -> false
  end
  else
    nr = Sysno.recvfrom || nr = Sysno.wait4 || nr = Sysno.futex
    || nr = Sysno.nanosleep || nr = Sysno.poll

(* The interception library's fast-path set (paper §3.1: "it only
   contains wrappers for the most common system calls").  *)
let bufferable ~nr =
  nr = Sysno.read || nr = Sysno.write || nr = Sysno.lseek
  || nr = Sysno.getpid || nr = Sysno.gettid || nr = Sysno.gettimeofday
  || nr = Sysno.clock_gettime || nr = Sysno.recvfrom || nr = Sysno.sendto
  || nr = Sysno.futex || nr = Sysno.sched_yield || nr = Sysno.openat
  || nr = Sysno.close || nr = Sysno.stat

(* Which buffered syscalls redirect an output pointer into the trace
   buffer: (arg index, output length given args), per §3.8. *)
let buffered_output ~nr ~(args : int array) =
  if nr = Sysno.read || nr = Sysno.recvfrom then Some (1, args.(2))
  else if nr = Sysno.stat then Some (1, 32)
  else None

(* Syscalls whose effects replay must re-perform rather than emulate:
   address-space operations (mmap is handled by its own event kind). *)
let replay_performs ~nr = nr = Sysno.munmap || nr = Sysno.mprotect

(* Events with their own trace frame kinds. *)
let is_special ~nr =
  nr = Sysno.clone || nr = Sysno.execve || nr = Sysno.mmap || nr = Sysno.exit
  || nr = Sysno.exit_group

(* Traced blocking syscalls whose output buffer must detour through
   scratch memory (§2.3.1): (arg index, length-from-args). *)
let scratch_redirect task ~nr ~(args : int array) =
  if may_block task ~nr ~args then
    if nr = Sysno.read || nr = Sysno.recvfrom then Some (1, args.(2))
    else None
  else None
