(** The `sambatest` workload (paper §4.1): a UDP echo server and test
    client, everything recorded.  Blocking recvfrom calls make this the
    desched machinery's (§3.3) natural habitat. *)

type params = {
  echoes : int;
  payload : int;
  server_work : int; (* per-request processing *)
  client_work : int;
}

val default : params
val make : ?params:params -> unit -> Workload.t
