(** The system-call model (paper §2.3.6): for every supported syscall,
    which user memory it writes, whether it can block, whether the
    interception library may fast-path it, and how replay must treat it.
    Unknown syscalls raise {!Unsupported} with the syscall name, making
    the recorder fail loudly rather than record garbage. *)

exception Unsupported of string

type output = { out_addr : int; out_len : int }

val outputs : nr:int -> args:int array -> result:int -> output list
(** Memory written by a completed syscall, given its entry arguments and
    result.  Raises {!Unsupported} for syscalls outside the model. *)

val may_block : Task.t -> nr:int -> args:int array -> bool
(** Can this call sleep in the kernel?  Inspects the fd table: regular
    file reads never block; pipe/socket reads can. *)

val bufferable : ?wide:bool -> nr:int -> unit -> bool
(** The interception library's fast-path set (paper §3.1).  [wide]
    (default) is the grown wrapper set; [~wide:false] is the original
    narrow read/stat-era library, kept for record-twice equivalence
    testing. *)

type buffered_out = { bo_arg : int; bo_len : int; bo_copy_in : bool }
(** One output pointer a buffered syscall redirects into the trace
    buffer: argument index, bytes to reserve, and whether the kernel
    also reads the pointed-to memory (poll's pollfd array), requiring a
    copy-in before the untraced call. *)

val buffered_outputs :
  ?wide:bool -> nr:int -> args:int array -> unit -> buffered_out list
(** The output pointers a buffered syscall redirects into the trace
    buffer, per §3.8.  NULL-pointer and zero-length outputs are already
    filtered out.  The narrow list is bit-compatible with the original
    single-output protocol. *)

val elidable : nr:int -> args:int array -> bool
(** Can the recorder skip the syscall-exit ptrace stop (§3.4)?  True
    when a successful completion provably writes no user memory, so the
    frame can be pre-computed and recorded at the seccomp/entry stop. *)

val replay_performs : nr:int -> bool
(** Syscalls whose effects replay must re-perform rather than emulate:
    address-space operations (paper §2.3.8). *)

val is_special : nr:int -> bool
(** Syscalls with their own trace frame kinds (clone/execve/mmap/exit). *)

val scratch_redirect : Task.t -> nr:int -> args:int array -> (int * int) option
(** For traced blocking syscalls: (argument index, length) of the output
    buffer to detour through scratch memory (paper §2.3.1). *)
