lib/kern/cost.mli:
