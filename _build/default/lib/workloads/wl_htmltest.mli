(** The `htmltest` workload (paper §4.1): a browser process driven over
    datagram IPC by a test harness that is *excluded from recording*
    (spawned untraced by [setup], as the paper runs mochitest outside
    rr).  The browser mixes layout-ish computation, JIT churn, file reads
    and IPC. *)

type params = {
  tests : int;
  layout_work : int; (* browser compute per test *)
  harness_work : int; (* harness compute per test *)
  jit_every : int; (* re-emit code every N tests *)
}

val default : params
val make : ?params:params -> unit -> Workload.t
