(* Chunk-indexed trace store: writer, cursor reader, persistence.

   General frame data is serialized ({!Event}) and deflate-compressed in
   chunks — the "all other trace data" stream of paper §2.7/Table 2.
   Memory-mapped executables and block-cloned file data are *not* run
   through the compressor: they are cloned (hard-link/FICLONE style) and
   accounted separately, which is exactly what makes rr traces cheap.

   Unlike a decoded event array, the store keeps only the compressed
   chunks plus a per-chunk index {first_frame; n_frames; byte_offset;
   kinds; crc32}.  Frames are decoded one chunk at a time on demand
   through {!Reader}, with a small LRU of decoded chunks, so memory
   stays proportional to one chunk and a seek costs O(log n_chunks) —
   the property the debugger's checkpoint/reverse-execution substrate
   (paper §6.1) leans on.

   Multicore pipeline ({!opts}): with [jobs > 1] the writer hands each
   sealed chunk to a {!Pool} of worker domains and collects the
   deflated bytes in submission order — compression runs on spare cores
   while recording continues, the way real rr hides its deflate cost
   (§2.7).  With [readahead > 0] the reader prefetches and inflates the
   next chunks in the background.  Deflate is per-chunk deterministic,
   so the parallel and serial writers produce byte-identical traces.

   Durability (paper §2.7 "deployability" read as: a trace must survive
   the process that wrote it): all persistence flows through the
   pluggable {!Io} layer; the on-disk v3 format is a CRC-guarded record
   stream with a commit footer, optionally journaled incrementally
   during recording, and {!salvage} recovers the longest verifiable
   chunk prefix of a damaged file.  See DESIGN.md §4e. *)

type stats = {
  mutable n_events : int;
  mutable raw_bytes : int; (* frame bytes before compression *)
  mutable compressed_bytes : int;
  mutable cloned_blocks : int; (* 4 KiB blocks snapshotted by cloning *)
  mutable cloned_bytes : int; (* bytes snapshotted by cloning/hard links *)
  mutable copied_file_bytes : int; (* file bytes copied (cloning disabled) *)
  mutable n_chunks : int;
  mutable n_buffered_syscalls : int; (* syscalls recorded via syscallbuf *)
  mutable n_traced_syscalls : int;
  (* Reader-side chunk-LRU traffic.  Runtime-only: not persisted (the
     stats section stays 9 uvarints) and reset on load. *)
  mutable lru_hits : int;
  mutable lru_misses : int;
  mutable lru_evictions : int;
}

let new_stats () =
  { n_events = 0;
    raw_bytes = 0;
    compressed_bytes = 0;
    cloned_blocks = 0;
    cloned_bytes = 0;
    copied_file_bytes = 0;
    n_chunks = 0;
    n_buffered_syscalls = 0;
    n_traced_syscalls = 0;
    lru_hits = 0;
    lru_misses = 0;
    lru_evictions = 0 }

let copy_stats s = { s with n_events = s.n_events }

let tm_chunk_hit = Telemetry.counter "trace.chunk.hit"
let tm_chunk_miss = Telemetry.counter "trace.chunk.miss"
let tm_chunk_evict = Telemetry.counter "trace.chunk.evict"
let tm_chunk_flush = Telemetry.counter "trace.chunk.flush"
let tm_deflate_ratio = Telemetry.histogram "trace.deflate.ratio_pct"
let tm_deflate = Telemetry.span "trace.deflate"
let tm_inflate = Telemetry.span "trace.inflate"
let tm_prefetch_hit = Telemetry.counter "reader.prefetch_hit"
let tm_prefetch_miss = Telemetry.counter "reader.prefetch_miss"
let tm_crc_fail = Telemetry.counter "trace.crc_fail"
let tm_salvage_runs = Telemetry.counter "salvage.runs"
let tm_salvage_chunks = Telemetry.counter "salvage.chunks_recovered"
let tm_salvage_frames = Telemetry.counter "salvage.frames_recovered"
let tm_salvage_lost = Telemetry.counter "salvage.bytes_lost"
let tm_ring_dropped = Telemetry.counter "ring.dropped_chunks"
let tm_ring_resident = Telemetry.gauge "ring.resident_bytes"

(* ---- typed errors ---------------------------------------------------- *)

type error =
  | Truncated of { path : string; detail : string }
  | Bad_magic of { path : string }
  | Version_skew of { path : string; found : int; expected : int }
  | Chunk_crc of int
  | Corrupt of { path : string; detail : string }
  | Io of Io.error

exception Format_error of error

let format_version = 3

(* Same container, delta-coded registers inside the chunks (event
   encoding v2).  The header's version field is the negotiation point:
   3 = event-encoding v1, 4 = v2.  Builds predating v2 reject a
   version-4 file with a clean [Version_skew] instead of misdecoding
   its chunks. *)
let format_version_delta = 4

let header_version_of_event_version ev =
  if ev >= 2 then format_version_delta else format_version

let default_event_version = 2

let pp_error ppf = function
  | Truncated { path; detail } ->
    Fmt.pf ppf "%s: truncated trace file (%s)" path detail
  | Bad_magic { path } -> Fmt.pf ppf "%s: not an rr trace file (bad magic)" path
  | Version_skew { path; found; expected } ->
    Fmt.pf ppf "%s: trace format version %d, this build reads %d" path found
      expected
  | Chunk_crc i -> Fmt.pf ppf "chunk %d failed CRC verification" i
  | Corrupt { path; detail } -> Fmt.pf ppf "%s: corrupt trace file (%s)" path detail
  | Io e -> Io.pp_error ppf e

let error_to_string e = Fmt.str "%a" pp_error e

(* ---- pipeline options ------------------------------------------------ *)

type opts = {
  jobs : int; (* worker domains for chunk deflate / readahead inflate *)
  readahead : int; (* chunks the reader prefetches past the last access *)
}

let default_opts = { jobs = 1; readahead = 0 }

let make_opts ?(jobs = default_opts.jobs)
    ?(readahead = default_opts.readahead) () =
  { jobs = max 1 jobs; readahead = max 0 readahead }

type chunk_info = {
  first_frame : int;
  n_frames : int;
  byte_offset : int; (* into the concatenated stored-chunk stream *)
  stored_len : int;
  kinds : int; (* OR of Event.kind_bit for every frame in the chunk *)
  crc32 : int; (* CRC-32 of the stored bytes; 0 = unknown (v2 trace) *)
}

type t = {
  index : chunk_info array;
  chunks : string array; (* stored (possibly deflated) chunk bytes *)
  compressed : bool;
  event_version : int; (* chunk event encoding: 1 = arrays, 2 = deltas *)
  images : (string, Image.t) Hashtbl.t; (* trace path -> executable image *)
  files : (string, string) Hashtbl.t; (* trace path -> snapshotted bytes *)
  stats : stats;
  initial_exe : string;
  trusted : bool; (* no per-chunk CRCs (pre-v3 file): unchecked reads *)
  origin : string; (* path the trace was loaded from, for error context *)
  (* LRU of decoded chunks, shared by every cursor over this trace; MRU
     first.  [chunk_decodes] counts cache misses — the number of chunks
     actually inflated+decoded, which tests use to prove laziness.
     All of the fields below are guarded by [lock]: readahead workers
     insert decoded chunks concurrently with the main thread. *)
  mutable cache : (int * Event.t array) list;
  mutable chunk_decodes : int;
  mutable sidecar : Trace_index.t option; (* derived index, if built *)
  mutable opts : opts;
  lock : Mutex.t;
  cv : Condition.t; (* signaled when a prefetch lands or fails *)
  inflight : (int, unit) Hashtbl.t; (* chunk idx -> being prefetched *)
  prefetched : (int, unit) Hashtbl.t; (* inserted by a worker, untouched *)
  mutable rpool : Pool.t option; (* lazily created readahead pool *)
}

let make_t ?(trusted = false) ?(origin = "<memory>") ?(event_version = 1)
    ~index ~chunks ~compressed ~images ~files ~stats ~initial_exe ~opts () =
  { index;
    chunks;
    compressed;
    event_version;
    images;
    files;
    stats;
    initial_exe;
    trusted;
    origin;
    cache = [];
    chunk_decodes = 0;
    sidecar = None;
    opts;
    lock = Mutex.create ();
    cv = Condition.create ();
    inflight = Hashtbl.create 8;
    prefetched = Hashtbl.create 8;
    rpool = None }

let default_chunk_limit = 1 lsl 16
let cache_slots = 8

(* ---- v3 record stream ------------------------------------------------

   The file is a stream of self-delimiting records between an 8-byte
   magic and a 16-byte commit footer:

     magic "RRTRACE3"                              8 bytes
     record*                                       see below
     trailer record ('T')
     footer: trailer offset (8 bytes LE) + "RRCOMMIT"

   Each record is

     tag                  1 byte
     payload length       uvarint
     payload              bytes
     crc32(tag, payload)  4 bytes LE

   Tags: 'H' header (version, compressed, initial exe) — always first;
   'I' snapshotted image; 'D' file delta (path, offset, suffix bytes);
   'C' chunk (first_frame, n_frames, kinds, then the stored bytes);
   'J' journal (a stats snapshot, written every few chunks by a
   journaling writer); 'T' trailer (final stats + the chunk index with
   per-chunk CRCs).

   The CRC does not cover the length varint: a corrupted length either
   lands on a mis-framed record whose CRC then fails, or runs past the
   region being scanned — both are detected.

   Ordering invariant: every 'I' and 'D' record precedes the first 'C'
   record whose frames reference it.  That is what makes a salvaged
   prefix *replayable*, not merely decodable: any prefix of the record
   stream carries the images and file snapshots its chunks need.

   [finish] writes the trailer and footer last, so the footer's
   presence is the commit point — a reader that finds "RRCOMMIT" at EOF
   knows the writer ran to completion; anything else is salvage
   territory. *)

let magic_v3 = "RRTRACE3"
let magic_v2 = "RRTRACE2"
let magic_v1 = "RRTRACE1"
let footer_magic = "RRCOMMIT"

(* How many chunks a journaling writer streams between 'J' records. *)
let journal_interval = 4

let tag_header = 'H'
let tag_image = 'I'
let tag_file = 'D'
let tag_chunk = 'C'
let tag_journal = 'J'
let tag_trailer = 'T'
let tag_index = 'P' (* sidecar index tables (Trace_index meta) *)
let tag_index_cp = 'K' (* one durable checkpoint blob *)

let crc_mask = 0xffffffff

let write_record io ~tag payload =
  let tag_s = String.make 1 tag in
  Io.write io tag_s;
  let lb = Codec.sink () in (* chunk-lifecycle *)
  Codec.put_uvarint lb (String.length payload);
  Io.write io (Buffer.contents lb);
  Io.write io payload;
  let crc = Crc32.string ~crc:(Crc32.string tag_s) payload in
  let cb = Bytes.create 4 in (* chunk-lifecycle *)
  Bytes.set_int32_le cb 0 (Int32.of_int crc);
  Io.write io (Bytes.to_string cb)

let put_stats b s =
  List.iter (Codec.put_uvarint b)
    [ s.n_events; s.raw_bytes; s.compressed_bytes; s.cloned_blocks;
      s.cloned_bytes; s.copied_file_bytes; s.n_chunks;
      s.n_buffered_syscalls; s.n_traced_syscalls ]

let get_stats s =
  let g () = Codec.get_uvarint s in
  let n_events = g () in
  let raw_bytes = g () in
  let compressed_bytes = g () in
  let cloned_blocks = g () in
  let cloned_bytes = g () in
  let copied_file_bytes = g () in
  let n_chunks = g () in
  let n_buffered_syscalls = g () in
  let n_traced_syscalls = g () in
  { n_events; raw_bytes; compressed_bytes; cloned_blocks; cloned_bytes;
    copied_file_bytes; n_chunks; n_buffered_syscalls; n_traced_syscalls;
    (* LRU traffic is runtime-only: a loaded trace starts cold. *)
    lru_hits = 0;
    lru_misses = 0;
    lru_evictions = 0 }

let put_chunk_info b ci =
  Codec.put_uvarint b ci.first_frame;
  Codec.put_uvarint b ci.n_frames;
  Codec.put_uvarint b ci.byte_offset;
  Codec.put_uvarint b ci.stored_len;
  Codec.put_uvarint b ci.kinds;
  Codec.put_uvarint b ci.crc32

let get_chunk_info s =
  let first_frame = Codec.get_uvarint s in
  let n_frames = Codec.get_uvarint s in
  let byte_offset = Codec.get_uvarint s in
  let stored_len = Codec.get_uvarint s in
  let kinds = Codec.get_uvarint s in
  let crc32 = Codec.get_uvarint s in
  { first_frame; n_frames; byte_offset; stored_len; kinds; crc32 }

let header_payload ~compressed ~initial_exe ~event_version =
  let b = Codec.sink () in (* chunk-lifecycle *)
  Codec.put_uvarint b (header_version_of_event_version event_version);
  Codec.put_bool b compressed;
  Codec.put_string b initial_exe;
  Buffer.contents b

let image_payload ~path img =
  let b = Codec.sink () in (* chunk-lifecycle *)
  Codec.put_string b path;
  Image_codec.put_image b img;
  Buffer.contents b

let file_payload ~path ~offset suffix =
  let b = Codec.sink () in (* chunk-lifecycle *)
  Codec.put_string b path;
  Codec.put_uvarint b offset;
  Codec.put_string b suffix;
  Buffer.contents b

let chunk_payload ~first_frame ~n_frames ~kinds stored =
  let b = Codec.sink () in (* chunk-lifecycle *)
  Codec.put_uvarint b first_frame;
  Codec.put_uvarint b n_frames;
  Codec.put_uvarint b kinds;
  Buffer.add_string b stored;
  Buffer.contents b

let journal_payload stats =
  let b = Codec.sink () in (* chunk-lifecycle *)
  put_stats b stats;
  Buffer.contents b

let trailer_payload stats index =
  let b = Codec.sink () in (* chunk-lifecycle *)
  put_stats b stats;
  Codec.put_list b put_chunk_info (Array.to_list index);
  Buffer.contents b

let footer_bytes ~trailer_off =
  let fb = Bytes.create 16 in (* chunk-lifecycle *)
  Bytes.set_int64_le fb 0 (Int64.of_int trailer_off);
  Bytes.blit_string footer_magic 0 fb 8 8;
  Bytes.to_string fb

(* ---- sinks -----------------------------------------------------------

   A {!Sink.t} is the one place frames, chunks, images and file
   snapshots leave a {!Writer}: the streaming file journal, the bounded
   in-memory flight-recorder ring, and the content-addressed repository
   (repo.ml) are all implementations of the same five-event interface.
   Events arrive in trace-stream order — header first, every image and
   file delta before the first chunk that references it, a stats
   journal mark every few chunks — so a sink that persists events as
   they arrive reproduces exactly the v3 record stream, and any prefix
   it manages to persist is salvageable. *)

type trace = t
(* Alias so submodules defining their own [t] can still name the trace
   type. *)

module Sink = struct
  type event =
    | Header of { compressed : bool; initial_exe : string; event_version : int }
    | Image of { path : string; img : Image.t }
    | File_delta of { path : string; offset : int; data : string }
    | Chunk of { first_frame : int; n_frames : int; kinds : int; stored : string }
    | Journal of stats

  type t = {
    sk_name : string;
    sk_put : event -> unit;
    sk_commit : stats -> chunk_info array -> unit;
    sk_close : unit -> unit; (* abort: release resources, commit nothing *)
    sk_bounded : bool; (* the writer need not retain consumed chunks *)
    sk_result : unit -> trace option; (* bounded sinks build the result *)
  }

  let make ?(bounded = false) ~name ~put ~commit ~close () =
    { sk_name = name;
      sk_put = put;
      sk_commit = commit;
      sk_close = close;
      sk_bounded = bounded;
      sk_result = (fun () -> None) }

  let name s = s.sk_name

  (* The streaming file sink — exactly the incremental v3 journal.  The
     magic and header go out on the first event, every image/file/chunk
     record as it arrives, and [commit] writes the trailer and footer
     before closing the writer: a sink killed at any byte leaves a
     salvageable prefix. *)
  let of_io io =
    let put = function
      | Header { compressed; initial_exe; event_version } ->
        Io.write io magic_v3;
        write_record io ~tag:tag_header
          (header_payload ~compressed ~initial_exe ~event_version)
      | Image { path; img } ->
        write_record io ~tag:tag_image (image_payload ~path img)
      | File_delta { path; offset; data } ->
        write_record io ~tag:tag_file (file_payload ~path ~offset data)
      | Chunk { first_frame; n_frames; kinds; stored } ->
        write_record io ~tag:tag_chunk
          (chunk_payload ~first_frame ~n_frames ~kinds stored)
      | Journal stats -> write_record io ~tag:tag_journal (journal_payload stats)
    in
    let commit stats index =
      let trailer_off = Io.written io in
      write_record io ~tag:tag_trailer (trailer_payload stats index);
      Io.write io (footer_bytes ~trailer_off);
      Io.close_writer io
    in
    let close () = try Io.close_writer io with Io.Io_error _ -> () in
    make ~name:(Io.writer_path io) ~put ~commit ~close ()
end

(* ---- flight-recorder ring --------------------------------------------

   A bounded in-memory sink: at most [budget] resident chunks, dropped
   oldest-first in whole journal-watermark groups (every chunk between
   two 'J' marks shares a group), so the retained window always starts
   right after a journal mark and the stats snapshot paired with it is
   never newer than the chunks it describes.  Header, images and file
   snapshots are always retained — they are tiny next to the chunk
   stream and every retained chunk may reference them — which is what
   makes the dumped window decodable on its own. *)

type ring_entry = {
  re_first : int;
  re_n : int;
  re_kinds : int;
  re_stored : string;
  re_group : int; (* journal-watermark group the chunk belongs to *)
}

type ring = {
  r_budget : int; (* max resident chunks *)
  r_q : ring_entry Queue.t; (* oldest first *)
  mutable r_bytes : int; (* resident stored bytes *)
  mutable r_dropped_chunks : int;
  mutable r_dropped_frames : int;
  mutable r_group : int; (* current (still-open) watermark group *)
  mutable r_header : (bool * string * int) option;
  r_images : (string, Image.t) Hashtbl.t;
  r_files : (string, string) Hashtbl.t;
  mutable r_stats : stats option; (* newest journaled stats snapshot *)
}

type ring_report = {
  rr_base_frame : int; (* trace index of the window's first frame *)
  rr_chunks : int;
  rr_frames : int;
  rr_dropped_chunks : int;
  rr_dropped_frames : int;
  rr_resident_bytes : int;
}

let pp_ring_report ppf r =
  Fmt.pf ppf
    "ring: %d chunks (%d frames) resident (%d bytes) from frame %d; dropped \
     %d chunks (%d frames)"
    r.rr_chunks r.rr_frames r.rr_resident_bytes r.rr_base_frame
    r.rr_dropped_chunks r.rr_dropped_frames

let ring ~chunks =
  { r_budget = max 1 chunks;
    r_q = Queue.create ();
    r_bytes = 0;
    r_dropped_chunks = 0;
    r_dropped_frames = 0;
    r_group = 0;
    r_header = None;
    r_images = Hashtbl.create 8;
    r_files = Hashtbl.create 8;
    r_stats = None }

let ring_drop_front r =
  let e = Queue.pop r.r_q in
  r.r_bytes <- r.r_bytes - String.length e.re_stored;
  r.r_dropped_chunks <- r.r_dropped_chunks + 1;
  r.r_dropped_frames <- r.r_dropped_frames + e.re_n;
  Telemetry.incr tm_ring_dropped

let ring_put r = function
  | Sink.Header { compressed; initial_exe; event_version } ->
    r.r_header <- Some (compressed, initial_exe, event_version)
  | Sink.Image { path; img } -> Hashtbl.replace r.r_images path img
  | Sink.File_delta { path; offset; data } ->
    let current =
      match Hashtbl.find_opt r.r_files path with Some d -> d | None -> ""
    in
    let offset = min offset (String.length current) in
    Hashtbl.replace r.r_files path (String.sub current 0 offset ^ data)
  | Sink.Chunk { first_frame; n_frames; kinds; stored } ->
    Queue.push
      { re_first = first_frame;
        re_n = n_frames;
        re_kinds = kinds;
        re_stored = stored;
        re_group = r.r_group }
      r.r_q;
    r.r_bytes <- r.r_bytes + String.length stored;
    (* Drop-oldest, whole watermark groups at a time.  Degenerate case:
       if the budget is smaller than one group, chunks of the open group
       drop singly — alignment is best-effort there. *)
    while Queue.length r.r_q > r.r_budget do
      let g = (Queue.peek r.r_q).re_group in
      if g = r.r_group then ring_drop_front r
      else
        while
          (not (Queue.is_empty r.r_q)) && (Queue.peek r.r_q).re_group = g
        do
          ring_drop_front r
        done
    done;
    Telemetry.set_gauge tm_ring_resident r.r_bytes
  | Sink.Journal stats ->
    r.r_stats <- Some (copy_stats stats);
    r.r_group <- r.r_group + 1

(* Snapshot the retained window as a standalone trace: chunk indexes
   rebased to frame 0 (the loader's contiguity invariant), per-chunk
   CRCs minted over the resident bytes, images and files copied.  The
   window replays from its own frame 0 only when nothing was dropped
   ([rr_base_frame = 0]); a truncated window is still decodable,
   saveable and salvageable — DESIGN.md §4j spells out the
   limitation. *)
let ring_trace ?(opts = default_opts) r =
  let compressed, initial_exe, event_version =
    match r.r_header with
    | Some h -> h
    | None -> (true, "", default_event_version)
  in
  let entries = Array.of_seq (Queue.to_seq r.r_q) in
  let n = Array.length entries in
  let base = if n = 0 then 0 else entries.(0).re_first in
  let off = ref 0 and frames = ref 0 in
  let index =
    Array.map
      (fun e ->
        let ci =
          { first_frame = e.re_first - base;
            n_frames = e.re_n;
            byte_offset = !off;
            stored_len = String.length e.re_stored;
            kinds = e.re_kinds;
            crc32 = Crc32.string e.re_stored }
        in
        off := !off + ci.stored_len;
        frames := !frames + e.re_n;
        ci)
      entries
  in
  let chunks = Array.map (fun e -> e.re_stored) entries in
  let stats =
    match r.r_stats with Some s -> copy_stats s | None -> new_stats ()
  in
  stats.n_events <- !frames;
  stats.n_chunks <- n;
  stats.compressed_bytes <- !off;
  let t =
    make_t ~origin:"<ring>" ~event_version ~index ~chunks ~compressed
      ~images:(Hashtbl.copy r.r_images) ~files:(Hashtbl.copy r.r_files)
      ~stats ~initial_exe ~opts ()
  in
  ( t,
    { rr_base_frame = base;
      rr_chunks = n;
      rr_frames = !frames;
      rr_dropped_chunks = r.r_dropped_chunks;
      rr_dropped_frames = r.r_dropped_frames;
      rr_resident_bytes = r.r_bytes } )

let ring_sink r =
  { (Sink.make ~bounded:true ~name:"<ring>" ~put:(ring_put r)
       ~commit:(fun stats _index -> r.r_stats <- Some (copy_stats stats))
       ~close:(fun () -> ())
       ())
    with
    Sink.sk_result = (fun () -> Some (fst (ring_trace r)))
  }

module Writer = struct
  (* A sealed chunk: its frames are fixed, its stored bytes may still be
     in flight on a worker domain.  Sealed chunks are consumed — index
     entry built, bytes journaled — strictly in submission order, so the
     parallel and serial paths emit identical files. *)
  type sealed = {
    s_first_frame : int;
    s_n_frames : int;
    s_kinds : int;
    s_raw_len : int;
    s_stored : string Pool.future;
  }

  (* Incremental-sink state: the trace streams to [s_sink] *while it is
     being recorded*, so a writer killed mid-record leaves a salvageable
     record-stream prefix (file sink), a live ring window (ring sink) or
     a set of content-addressed objects (repo sink) instead of nothing.
     [j_marks] remembers the (length, crc) of every file snapshot
     already streamed, so the growing per-task cloned-data files emit
     suffix deltas rather than full rewrites. *)
  type sstate = {
    s_sink : Sink.t;
    mutable j_since_mark : int; (* chunks streamed since the last mark *)
    j_marks : (string, int * int) Hashtbl.t; (* path -> (len, crc) *)
  }

  type w = {
    sealed_q : sealed Queue.t; (* flushed, not yet consumed *)
    mutable acc_chunks : string list; (* consumed stored bytes, reversed *)
    mutable acc_index : chunk_info list; (* reversed *)
    mutable acc_off : int; (* running byte_offset *)
    mutable pending : Codec.sink;
    ectx : Event.ectx; (* frame codec state, reset at chunk boundaries *)
    mutable pending_frames : int;
    mutable pending_kinds : int;
    mutable frames_flushed : int; (* first_frame of the pending chunk *)
    chunk_limit : int;
    images : (string, Image.t) Hashtbl.t;
    files : (string, string) Hashtbl.t;
    stats : stats;
    mutable exe : string;
    compress : bool;
    opts : opts;
    pool : Pool.t; (* inline when opts.jobs = 1: the serial path *)
    sink : sstate option;
    bounded : bool; (* bounded sink: consumed chunk bytes are not kept *)
    mutable closed : bool; (* finish or abort already ran *)
  }

  let create ?(compress = true) ?(chunk_limit = default_chunk_limit)
      ?(opts = default_opts) ?journal ?sink
      ?(event_version = default_event_version) ~initial_exe () =
    (* [?journal] remains as sugar for the streaming file sink; an
       explicit [?sink] wins when both are given. *)
    let sink =
      match (sink, journal) with
      | Some s, _ -> Some s
      | None, Some jio -> Some (Sink.of_io jio)
      | None, None -> None
    in
    let bounded =
      match sink with Some s -> s.Sink.sk_bounded | None -> false
    in
    let sink =
      match sink with
      | None -> None
      | Some s ->
        s.Sink.sk_put
          (Sink.Header
             { compressed = compress; initial_exe; event_version });
        Some { s_sink = s; j_since_mark = 0; j_marks = Hashtbl.create 8 }
    in
    { sealed_q = Queue.create ();
      acc_chunks = [];
      acc_index = [];
      acc_off = 0;
      pending = Codec.sink (); (* chunk-lifecycle *)
      ectx = Event.ectx ~version:event_version ();
      pending_frames = 0;
      pending_kinds = 0;
      frames_flushed = 0;
      chunk_limit;
      images = Hashtbl.create 8;
      files = Hashtbl.create 8;
      stats = new_stats ();
      exe = initial_exe;
      compress;
      opts;
      pool = Pool.create ~jobs:opts.jobs ();
      sink;
      bounded;
      closed = false }

  (* Stream every file snapshot that changed since its last mark.  A
     pure append (old bytes are a prefix, by length+CRC) emits only the
     suffix; anything else rewrites from offset 0.  Runs before each
     chunk event so any persisted prefix satisfies the ordering
     invariant (chunks never reference file state the stream has not
     shown). *)
  let journal_files w j =
    let paths =
      Hashtbl.fold (fun p _ acc -> p :: acc) w.files []
      |> List.sort compare
    in
    List.iter
      (fun path ->
        let data = Hashtbl.find w.files path in
        let len = String.length data in
        let crc = Crc32.string data in
        let old_len, old_crc =
          match Hashtbl.find_opt j.j_marks path with
          | Some m -> m
          | None -> (0, 0)
        in
        if len <> old_len || crc <> old_crc then begin
          let offset, data =
            if len > old_len
               && Crc32.sub data ~pos:0 ~len:old_len = old_crc
            then (old_len, String.sub data old_len (len - old_len))
            else (0, data)
          in
          j.s_sink.Sink.sk_put (Sink.File_delta { path; offset; data });
          Hashtbl.replace j.j_marks path (len, crc)
        end)
      paths

  (* Consume one sealed chunk whose stored bytes are ready: build its
     index entry (with CRC), account compression, and — with a sink —
     stream it out behind its file deltas.  A bounded sink owns the
     chunk bytes from here on; the writer keeps only the index entry. *)
  let consume w s stored =
    let stored_len = String.length stored in
    w.stats.compressed_bytes <- w.stats.compressed_bytes + stored_len;
    if s.s_raw_len > 0 then
      Telemetry.observe tm_deflate_ratio (stored_len * 100 / s.s_raw_len);
    let ci =
      { first_frame = s.s_first_frame;
        n_frames = s.s_n_frames;
        byte_offset = w.acc_off;
        stored_len;
        kinds = s.s_kinds;
        crc32 = Crc32.string stored }
    in
    w.acc_off <- w.acc_off + stored_len;
    if not w.bounded then w.acc_chunks <- stored :: w.acc_chunks;
    w.acc_index <- ci :: w.acc_index;
    match w.sink with
    | None -> ()
    | Some j ->
      journal_files w j;
      j.s_sink.Sink.sk_put
        (Sink.Chunk
           { first_frame = ci.first_frame;
             n_frames = ci.n_frames;
             kinds = ci.kinds;
             stored });
      j.j_since_mark <- j.j_since_mark + 1;
      if j.j_since_mark >= journal_interval then begin
        j.s_sink.Sink.sk_put (Sink.Journal w.stats);
        j.j_since_mark <- 0
      end

  (* Drain ready sealed chunks in submission order.  Non-blocking mode
     (journal path, called as recording continues) stops at the first
     still-deflating chunk instead of stalling the recorder behind a
     worker domain; [finish] drains blocking. *)
  let drain ~block w =
    let continue = ref true in
    while !continue && not (Queue.is_empty w.sealed_q) do
      let s = Queue.peek w.sealed_q in
      if block || Pool.is_ready s.s_stored then begin
        ignore (Queue.pop w.sealed_q);
        consume w s (Pool.await s.s_stored)
      end
      else continue := false
    done

  (* Seal the pending frames as one chunk and hand the deflate to the
     pool.  With one job the submit runs inline — byte-for-byte the old
     synchronous path; with more, the bounded pool queue provides
     backpressure so recording can never outrun the compressors by more
     than a few chunks. *)
  let flush_chunk w =
    if w.pending_frames > 0 then begin
      let raw = Buffer.contents w.pending in
      Buffer.clear w.pending;
      (* Delta state must not leak across the chunk boundary — the
         decoder starts every chunk from a fresh context. *)
      Event.reset_ectx w.ectx;
      Telemetry.incr tm_chunk_flush;
      let compress = w.compress in
      let stored =
        Pool.submit w.pool (fun () ->
            if compress then
              Telemetry.timed tm_deflate (fun () -> Compress.deflate raw)
            else Timeline.scope "trace.store" (fun () -> raw))
      in
      w.stats.n_chunks <- w.stats.n_chunks + 1;
      Queue.push
        { s_first_frame = w.frames_flushed;
          s_n_frames = w.pending_frames;
          s_kinds = w.pending_kinds;
          s_raw_len = String.length raw;
          s_stored = stored }
        w.sealed_q;
      w.frames_flushed <- w.frames_flushed + w.pending_frames;
      w.pending_frames <- 0;
      w.pending_kinds <- 0;
      if Option.is_some w.sink then drain ~block:false w
    end

  (* Append one frame; returns the serialized size (for cost charging). *)
  let event w e =
    w.stats.n_events <- w.stats.n_events + 1;
    w.pending_frames <- w.pending_frames + 1;
    w.pending_kinds <- w.pending_kinds lor Event.kind_bit e;
    let before = Buffer.length w.pending in
    Event.encode w.ectx w.pending e;
    let sz = Buffer.length w.pending - before in
    w.stats.raw_bytes <- w.stats.raw_bytes + sz;
    (match e with
    | Event.E_buf_flush { records; _ } ->
      w.stats.n_buffered_syscalls <-
        w.stats.n_buffered_syscalls + List.length records
    | Event.E_syscall _ ->
      w.stats.n_traced_syscalls <- w.stats.n_traced_syscalls + 1
    | Event.E_clone _ | Event.E_exec _ | Event.E_mmap _ | Event.E_signal _
    | Event.E_sched _ | Event.E_insn_trap _ | Event.E_patch _
    | Event.E_exit _ | Event.E_rr_setup _ | Event.E_syscall_enter _
    | Event.E_checksum _ ->
      ());
    if Buffer.length w.pending >= w.chunk_limit then flush_chunk w;
    sz

  (* Snapshot an executable image into the trace (hard link / clone):
     costs no data copying, only accounting.  A journaling writer
     streams the image immediately — before any chunk can reference
     it. *)
  let add_image w ~path img =
    if not (Hashtbl.mem w.images path) then begin
      Hashtbl.replace w.images path img;
      let size = Image.byte_size img in
      w.stats.cloned_bytes <- w.stats.cloned_bytes + size;
      w.stats.cloned_blocks <-
        w.stats.cloned_blocks + ((size + 4095) / 4096);
      match w.sink with
      | Some j -> j.s_sink.Sink.sk_put (Sink.Image { path; img })
      | None -> ()
    end

  (* Snapshot file bytes.  [cloned] distinguishes free COW clones from
     real copies (the no-cloning configuration of Table 1).  Re-adding a
     path (the growing per-task cloned-data file) accounts only the
     growth. *)
  let add_file w ~path ~cloned data =
    let old_size =
      match Hashtbl.find_opt w.files path with
      | Some prev -> String.length prev
      | None -> 0
    in
    Hashtbl.replace w.files path data;
    let delta = max 0 (String.length data - old_size) in
    if cloned then begin
      w.stats.cloned_bytes <- w.stats.cloned_bytes + delta;
      w.stats.cloned_blocks <- w.stats.cloned_blocks + ((delta + 4095) / 4096)
    end
    else w.stats.copied_file_bytes <- w.stats.copied_file_bytes + delta

  let find_file w path = Hashtbl.find_opt w.files path

  (* Await every in-flight deflate in chunk order, assemble the index,
     and — with a sink — commit: final file deltas, then the sink's own
     commit step (trailer + footer + close for the file sink, the
     manifest for the repo sink).  The pool is shut down even if the
     sink fails mid-commit, so worker domains never leak; the
     {!Io.Io_error} propagates to the caller (the recorder wraps it in
     its own typed error), and whatever prefix reached the sink is
     salvage input.  A bounded sink supplies the resulting trace — the
     retained ring window — since the writer kept no chunk bytes. *)
  let finish w =
    Timeline.scope "trace.commit" @@ fun () ->
    Fun.protect
      ~finally:(fun () -> Pool.shutdown w.pool)
      (fun () ->
        flush_chunk w;
        drain ~block:true w;
        let index = Array.of_list (List.rev w.acc_index) in
        let chunks = Array.of_list (List.rev w.acc_chunks) in
        (match w.sink with
        | None -> ()
        | Some j ->
          journal_files w j;
          j.s_sink.Sink.sk_commit w.stats index);
        w.closed <- true;
        let bounded_result =
          match w.sink with
          | Some j when w.bounded -> j.s_sink.Sink.sk_result ()
          | Some _ | None -> None
        in
        match bounded_result with
        | Some t -> t
        | None ->
          make_t ~event_version:(Event.ectx_version w.ectx) ~index ~chunks
            ~compressed:w.compress ~images:w.images ~files:w.files
            ~stats:w.stats ~initial_exe:w.exe ~opts:w.opts ())

  (* Release a writer without committing: shut the deflate pool down and
     close the sink (for the file sink, the journal fd — the leak a
     killed recording used to leave behind).  Idempotent, and safe after
     a failed [finish]; never raises on sink close errors, because abort
     runs on error paths. *)
  let abort w =
    if not w.closed then begin
      w.closed <- true;
      (match w.sink with
      | Some j -> (try j.s_sink.Sink.sk_close () with _ -> ())
      | None -> ());
      Pool.shutdown w.pool
    end
end

let n_events t = t.stats.n_events

let stats t = t.stats

let chunk_index t = t.index

let decoded_chunks t = t.chunk_decodes

let get_opts t = t.opts

let initial_exe t = t.initial_exe

let event_version t = t.event_version

let compressed t = t.compressed

let integrity t = if t.trusted then `Trusted else `Crc_checked

let index t = t.sidecar

let set_index t ix =
  if Trace_index.n_events ix <> t.stats.n_events then
    Fmt.invalid_arg "Trace.set_index: index covers %d frames, trace has %d"
      (Trace_index.n_events ix) t.stats.n_events;
  t.sidecar <- Some ix

let drop_index t = t.sidecar <- None

(* Reconfigure the pipeline of an already-built trace (e.g. enable
   readahead on a loaded trace before replaying it).  A live readahead
   pool with the wrong worker count is retired first. *)
let set_opts t opts =
  (match t.rpool with
  | Some p when Pool.jobs p <> opts.jobs ->
    Pool.shutdown p;
    t.rpool <- None
  | Some _ | None -> ());
  t.opts <- opts

let image t path =
  match Hashtbl.find_opt t.images path with
  | Some img -> img
  | None -> Fmt.invalid_arg "trace: no image %s" path

let file t path =
  match Hashtbl.find_opt t.files path with
  | Some d -> d
  | None -> Fmt.invalid_arg "trace: no file %s" path

(* ---- chunk decoding (the only path from stored bytes to frames) ----- *)

let decode_chunk_raw t ~idx ci stored =
  if ci.crc32 <> 0 && Crc32.string stored <> ci.crc32 then begin
    Telemetry.incr tm_crc_fail;
    raise (Format_error (Chunk_crc idx))
  end;
  try
    let raw =
      if t.compressed then
        Telemetry.timed tm_inflate (fun () -> Compress.inflate stored)
      else stored
    in
    let s = Codec.source raw in
    let ectx = Event.ectx ~version:t.event_version () in
    let out = Array.make ci.n_frames Event.(E_exit { tid = 0; status = 0 }) in
    for i = 0 to ci.n_frames - 1 do
      out.(i) <- Event.decode ectx s
    done;
    if not (Codec.eof s) then
      raise (Codec.Corrupt "trailing bytes after last frame");
    out
  with
  | Compress.Corrupt msg | Codec.Corrupt msg ->
    raise
      (Format_error
         (Corrupt
            { path = t.origin;
              detail =
                Fmt.str "corrupt chunk %d at frame %d: %s" idx ci.first_frame
                  msg }))

(* Effective LRU capacity: a deep readahead must not evict the chunks
   it just prefetched. *)
let lru_slots t = max cache_slots (t.opts.readahead + 2)

(* Insert a freshly decoded chunk; caller holds [t.lock].  No-op if a
   racing decode beat us to it. *)
let cache_insert t ci_idx frames =
  if not (List.mem_assoc ci_idx t.cache) then begin
    t.chunk_decodes <- t.chunk_decodes + 1;
    t.stats.lru_misses <- t.stats.lru_misses + 1;
    Telemetry.incr tm_chunk_miss;
    t.cache <- (ci_idx, frames) :: t.cache;
    let slots = lru_slots t in
    if List.length t.cache > slots then begin
      t.stats.lru_evictions <-
        t.stats.lru_evictions + (List.length t.cache - slots);
      Telemetry.incr tm_chunk_evict;
      t.cache <- List.filteri (fun i _ -> i < slots) t.cache
    end
  end

(* Background inflate of chunk [j].  A corrupt chunk is left alone: the
   on-demand path will decode it again and raise {!Format_error} with
   frame context on the thread that actually asked for it, keeping
   error behavior identical to readahead = 0. *)
let prefetch_task t j () =
  match decode_chunk_raw t ~idx:j t.index.(j) t.chunks.(j) with
  | frames ->
    Mutex.lock t.lock;
    Hashtbl.remove t.inflight j;
    cache_insert t j frames;
    Hashtbl.replace t.prefetched j ();
    Condition.broadcast t.cv;
    Mutex.unlock t.lock
  | exception Format_error _ ->
    Mutex.lock t.lock;
    Hashtbl.remove t.inflight j;
    Condition.broadcast t.cv;
    Mutex.unlock t.lock

(* Release the background decode pool (idempotent).  The trace stays
   readable — the next prefetch recreates the pool on demand.  Without
   this, a process that opens many traces with [readahead > 0] (the
   fault matrix, a salvage sweep over a crash dump directory) leaks one
   worker-domain set per trace until the runtime refuses to spawn
   more. *)
let close t =
  Mutex.lock t.lock;
  let p = t.rpool in
  t.rpool <- None;
  Hashtbl.reset t.inflight;
  Mutex.unlock t.lock;
  match p with None -> () | Some p -> Pool.shutdown p

let reader_pool_unlocked t =
  match t.rpool with
  | Some p -> p
  | None ->
    let p =
      Pool.create ~jobs:t.opts.jobs
        ~queue_limit:(max 2 (2 * t.opts.readahead)) ()
    in
    t.rpool <- Some p;
    p

(* Queue background inflates for the [readahead] chunks after
   [served_idx].  Submission happens outside [t.lock]: with an inline
   (one-job) pool the task runs immediately and takes the lock itself. *)
let maybe_prefetch t served_idx =
  if t.opts.readahead > 0 then begin
    Mutex.lock t.lock;
    let n = Array.length t.index in
    let want = ref [] in
    for j = min (n - 1) (served_idx + t.opts.readahead) downto served_idx + 1
    do
      if (not (List.mem_assoc j t.cache)) && not (Hashtbl.mem t.inflight j)
      then begin
        Hashtbl.replace t.inflight j ();
        want := j :: !want
      end
    done;
    let pool = reader_pool_unlocked t in
    Mutex.unlock t.lock;
    List.iter (fun j -> ignore (Pool.submit pool (prefetch_task t j))) !want
  end

(* Fetch chunk [ci_idx] decoded, through the LRU.  If a readahead
   worker already has the chunk in flight, wait for it instead of
   inflating the same bytes twice. *)
let chunk_frames t ci_idx =
  let ra_on = t.opts.readahead > 0 in
  Mutex.lock t.lock;
  let rec get () =
    match List.assoc_opt ci_idx t.cache with
    | Some frames ->
      (* move to front *)
      t.stats.lru_hits <- t.stats.lru_hits + 1;
      Telemetry.incr tm_chunk_hit;
      if Hashtbl.mem t.prefetched ci_idx then begin
        Hashtbl.remove t.prefetched ci_idx;
        Telemetry.incr tm_prefetch_hit
      end;
      t.cache <- (ci_idx, frames) :: List.remove_assoc ci_idx t.cache;
      Mutex.unlock t.lock;
      frames
    | None when Hashtbl.mem t.inflight ci_idx ->
      Condition.wait t.cv t.lock;
      get ()
    | None ->
      (* Inflate on the critical path (a prefetch miss when readahead
         is on).  Decode outside the lock so concurrent prefetches keep
         landing. *)
      Mutex.unlock t.lock;
      let frames = decode_chunk_raw t ~idx:ci_idx t.index.(ci_idx) t.chunks.(ci_idx) in
      Mutex.lock t.lock;
      Hashtbl.remove t.prefetched ci_idx;
      if ra_on then Telemetry.incr tm_prefetch_miss;
      cache_insert t ci_idx frames;
      let frames =
        match List.assoc_opt ci_idx t.cache with
        | Some f -> f
        | None -> frames
      in
      Mutex.unlock t.lock;
      frames
  in
  let frames = get () in
  maybe_prefetch t ci_idx;
  frames

(* Binary search: the chunk containing frame [i]. *)
let chunk_of_frame t i =
  let lo = ref 0 and hi = ref (Array.length t.index - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.index.(mid).first_frame <= i then lo := mid else hi := mid - 1
  done;
  !lo

module Reader = struct
  type cursor = { t : t; mutable pos : int }

  let open_ t = { t; pos = 0 }

  let pos c = c.pos
  let length c = n_events c.t
  let at_end c = c.pos >= n_events c.t

  let seek c i =
    if i < 0 || i > n_events c.t then
      Fmt.invalid_arg "Trace.Reader.seek: %d out of range [0,%d]" i
        (n_events c.t);
    c.pos <- i

  let frame t i =
    if i < 0 || i >= n_events t then
      Fmt.invalid_arg "Trace.Reader.frame: %d out of range [0,%d)" i
        (n_events t);
    let ci_idx = chunk_of_frame t i in
    (chunk_frames t ci_idx).(i - t.index.(ci_idx).first_frame)

  let peek c = if at_end c then None else Some (frame c.t c.pos)

  let next c =
    match peek c with
    | None -> invalid_arg "Trace.Reader.next: at end of trace"
    | Some e ->
      c.pos <- c.pos + 1;
      e

  (* Fold over every frame of the trace, one chunk at a time.  Chunks
     pass through the LRU, so a whole-trace fold costs one decode per
     chunk and holds at most [cache_slots] of them. *)
  let fold f t acc =
    let acc = ref acc in
    Array.iteri
      (fun ci_idx ci ->
        let frames = chunk_frames t ci_idx in
        Array.iteri (fun j e -> acc := f (ci.first_frame + j) e !acc) frames)
      t.index;
    !acc

  let iter f t = fold (fun i e () -> f i e) t ()

  let to_array t =
    Array.init (n_events t) (fun i -> frame t i)

  (* Frame searches.  [kind_mask], when given, lets the index skip whole
     chunks containing no frame of the wanted kinds — those chunks are
     never inflated. *)
  let chunk_may_match ci = function
    | None -> true
    | Some mask -> ci.kinds land mask <> 0

  let find_from ?kind_mask t from p =
    let n = n_events t in
    let from = max from 0 in
    if from >= n then None
    else begin
      let result = ref None in
      let ci_idx = ref (chunk_of_frame t from) in
      while !result = None && !ci_idx < Array.length t.index do
        let ci = t.index.(!ci_idx) in
        if chunk_may_match ci kind_mask then begin
          let frames = chunk_frames t !ci_idx in
          let j = ref (max 0 (from - ci.first_frame)) in
          while !result = None && !j < ci.n_frames do
            if p frames.(!j) then result := Some (ci.first_frame + !j);
            incr j
          done
        end;
        incr ci_idx
      done;
      !result
    end

  let rfind_before ?kind_mask t before p =
    let n = n_events t in
    let start = min (before - 1) (n - 1) in
    if start < 0 then None
    else begin
      let result = ref None in
      let ci_idx = ref (chunk_of_frame t start) in
      while !result = None && !ci_idx >= 0 do
        let ci = t.index.(!ci_idx) in
        if chunk_may_match ci kind_mask then begin
          let frames = chunk_frames t !ci_idx in
          let j = ref (min (ci.n_frames - 1) (start - ci.first_frame)) in
          while !result = None && !j >= 0 do
            if p frames.(!j) then result := Some (ci.first_frame + !j);
            decr j
          done
        end;
        decr ci_idx
      done;
      !result
    end
end

(* Rebuild the chunk stream with every frame rewritten by [f], keeping
   chunk boundaries.  A testing/tooling device (trace surgery, tamper
   injection); stats carry over with the frame-stream byte counts
   recomputed, and per-chunk CRCs recomputed over the new stored
   bytes. *)
let map_frames_ev ~event_version f t =
  let stats =
    { t.stats with
      raw_bytes = 0;
      compressed_bytes = 0;
      lru_hits = 0;
      lru_misses = 0;
      lru_evictions = 0 }
  in
  let remake ~index ~chunks =
    make_t ~trusted:t.trusted ~event_version ~index ~chunks
      ~compressed:t.compressed ~images:t.images ~files:t.files ~stats
      ~initial_exe:t.initial_exe ~opts:t.opts ()
  in
  let n_chunks = Array.length t.index in
  if n_chunks = 0 then remake ~index:t.index ~chunks:t.chunks
  else begin
  let chunks = Array.make n_chunks "" in
  let index = Array.make n_chunks t.index.(0) in
  let byte_offset = ref 0 in
  let ectx = Event.ectx ~version:event_version () in
  Array.iteri
    (fun ci_idx ci ->
      let frames = decode_chunk_raw t ~idx:ci_idx ci t.chunks.(ci_idx) in
      let kinds = ref 0 in
      let b = Codec.sink () in (* chunk-lifecycle *)
      Event.reset_ectx ectx;
      Array.iteri
        (fun j e ->
          let e' = f (ci.first_frame + j) e in
          kinds := !kinds lor Event.kind_bit e';
          Event.encode ectx b e')
        frames;
      let raw = Buffer.contents b in
      stats.raw_bytes <- stats.raw_bytes + String.length raw;
      let stored = if t.compressed then Compress.deflate raw else raw in
      stats.compressed_bytes <- stats.compressed_bytes + String.length stored;
      chunks.(ci_idx) <- stored;
      index.(ci_idx) <-
        { ci with
          byte_offset = !byte_offset;
          stored_len = String.length stored;
          kinds = !kinds;
          crc32 = (if t.trusted then 0 else Crc32.string stored) };
      byte_offset := !byte_offset + String.length stored)
    t.index;
  remake ~index ~chunks
  end

let map_frames f t = map_frames_ev ~event_version:t.event_version f t

(* ---- parts access (the repository layer's view) ---------------------- *)

let chunk_stored t i = t.chunks.(i)

let images t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.images []
  |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)

let files t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.files []
  |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)

(* Validating assembly from externally stored parts (the repository's
   manifest + object store): the same structural invariants the strict
   loader enforces — chunk contiguity from frame 0, no empty chunks,
   stats agreeing with the chunk stream — checked up front, with
   byte_offset/stored_len/crc32 recomputed from the actual bytes. *)
let of_parts ?(opts = default_opts) ?(event_version = default_event_version)
    ?(origin = "<parts>") ~compressed ~initial_exe ~chunks:parts
    ~images:imgs ~files:fls ~stats:st () =
  let exception Bad of string in
  try
    let n = Array.length parts in
    let index =
      Array.make n
        { first_frame = 0;
          n_frames = 0;
          byte_offset = 0;
          stored_len = 0;
          kinds = 0;
          crc32 = 0 }
    in
    let chunks = Array.make n "" in
    let off = ref 0 and frame = ref 0 in
    Array.iteri
      (fun i (first_frame, n_frames, kinds, stored) ->
        if first_frame <> !frame then
          raise (Bad (Fmt.str "chunk index gap at frame %d" !frame));
        if n_frames <= 0 then raise (Bad "empty chunk record");
        index.(i) <-
          { first_frame;
            n_frames;
            byte_offset = !off;
            stored_len = String.length stored;
            kinds;
            crc32 = Crc32.string stored };
        chunks.(i) <- stored;
        off := !off + String.length stored;
        frame := !frame + n_frames)
      parts;
    if st.n_events <> !frame then
      raise
        (Bad
           (Fmt.str "stats claim %d frames, chunks cover %d" st.n_events
              !frame));
    let stats = copy_stats st in
    stats.n_chunks <- n;
    stats.compressed_bytes <- !off;
    let images = Hashtbl.create 8 and files = Hashtbl.create 8 in
    List.iter (fun (p, img) -> Hashtbl.replace images p img) imgs;
    List.iter (fun (p, d) -> Hashtbl.replace files p d) fls;
    Ok
      (make_t ~origin ~event_version ~index ~chunks ~compressed ~images
         ~files ~stats ~initial_exe ~opts ())
  with Bad detail -> Error (Corrupt { path = origin; detail })

(* ---- saving ---------------------------------------------------------- *)

let save_io t io =
  Timeline.scope "trace.save" @@ fun () ->
  try
    Io.write io magic_v3;
    write_record io ~tag:tag_header
      (header_payload ~compressed:t.compressed ~initial_exe:t.initial_exe
         ~event_version:t.event_version);
    let assoc tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
    let by_path (a, _) (b, _) = compare (a : string) b in
    List.iter
      (fun (path, img) ->
        write_record io ~tag:tag_image (image_payload ~path img))
      (List.sort by_path (assoc t.images));
    List.iter
      (fun (path, data) ->
        write_record io ~tag:tag_file (file_payload ~path ~offset:0 data))
      (List.sort by_path (assoc t.files));
    (* CRCs are recomputed here rather than copied from the index: a
       v2-loaded trace has none, and re-saving is exactly the moment to
       mint them. *)
    let index =
      Array.mapi
        (fun i ci -> { ci with crc32 = Crc32.string t.chunks.(i) })
        t.index
    in
    Array.iteri
      (fun i ci ->
        write_record io ~tag:tag_chunk
          (chunk_payload ~first_frame:ci.first_frame ~n_frames:ci.n_frames
             ~kinds:ci.kinds t.chunks.(i)))
      index;
    (* Sidecar index records ride after the chunks, before the trailer:
       each is independently CRC'd, so a corrupt index drops on salvage
       while every chunk before it survives. *)
    (match t.sidecar with
    | None -> ()
    | Some ix ->
      let b = Codec.sink () in (* chunk-lifecycle *)
      Trace_index.put_meta b ix;
      write_record io ~tag:tag_index (Buffer.contents b);
      Array.iter
        (fun (frame, blob) ->
          let b = Codec.sink () in (* chunk-lifecycle *)
          Trace_index.put_checkpoint b ~frame ~blob;
          write_record io ~tag:tag_index_cp (Buffer.contents b))
        (Trace_index.checkpoints ix));
    let trailer_off = Io.written io in
    write_record io ~tag:tag_trailer (trailer_payload t.stats index);
    Io.write io (footer_bytes ~trailer_off);
    Io.close_writer io;
    Ok ()
  with Io.Io_error e ->
    (try Io.close_writer io with Io.Io_error _ -> ());
    Error (Io e)

let save t path =
  match Io.file_writer path with
  | io -> save_io t io
  | exception Io.Io_error e -> Error (Io e)

let save_exn t path =
  match save t path with Ok () -> () | Error e -> raise (Format_error e)

(* Legacy writer for the previous (v2) monolithic-payload layout — kept
   so compatibility tests can manufacture v2 files without archiving
   binary fixtures.  No CRCs, no footer: exactly what old builds
   wrote. *)
let save_v2 t path =
  (* v2 containers predate delta-coded chunks; transcode the chunk
     stream back to event-encoding v1 so old readers decode it. *)
  let t =
    if t.event_version = 1 then t
    else map_frames_ev ~event_version:1 (fun _ e -> e) t
  in
  let put_chunk_info_v2 b ci =
    Codec.put_uvarint b ci.first_frame;
    Codec.put_uvarint b ci.n_frames;
    Codec.put_uvarint b ci.byte_offset;
    Codec.put_uvarint b ci.stored_len;
    Codec.put_uvarint b ci.kinds
  in
  let b = Codec.sink () in (* chunk-lifecycle *)
  Codec.put_uvarint b 2;
  Codec.put_bool b t.compressed;
  Codec.put_string b t.initial_exe;
  put_stats b t.stats;
  Codec.put_list b put_chunk_info_v2 (Array.to_list t.index);
  let stream_len =
    Array.fold_left (fun acc c -> acc + String.length c) 0 t.chunks
  in
  Codec.put_uvarint b stream_len;
  Array.iter (Buffer.add_string b) t.chunks;
  let assoc tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let by_path (a, _) (b, _) = compare (a : string) b in
  Codec.put_list b
    (fun b (p, data) ->
      Codec.put_string b p;
      Codec.put_string b data)
    (List.sort by_path (assoc t.files));
  Codec.put_list b
    (fun b (p, img) ->
      Codec.put_string b p;
      Image_codec.put_image b img)
    (List.sort by_path (assoc t.images));
  let payload = Buffer.contents b in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic_v2;
      let len = Bytes.create 8 in (* chunk-lifecycle *)
      Bytes.set_int64_le len 0 (Int64.of_int (String.length payload));
      output_bytes oc len;
      output_string oc payload)

(* ---- loading --------------------------------------------------------- *)

(* One parsed record attempt.  [R_short] covers both genuine truncation
   and a corrupted length varint that points past the scan region —
   indistinguishable without the CRC, and treated the same way by both
   the strict and lax paths. *)
type rec_result =
  | R_ok of char * string * int (* tag, payload, offset past the record *)
  | R_short
  | R_bad_crc of char
  | R_bad of string

let le32_at data off =
  Int32.to_int (String.get_int32_le data off) land crc_mask

let parse_record data ~limit pos =
  if pos >= limit then R_short
  else begin
    let tag = data.[pos] in
    let rec uv p shift acc =
      if p >= limit then Error `Short
      else if shift > 62 then Error `Bad
      else begin
        let b = Char.code data.[p] in
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b land 0x80 = 0 then Ok (acc, p + 1) else uv (p + 1) (shift + 7) acc
      end
    in
    match uv (pos + 1) 0 0 with
    | Error `Short -> R_short
    | Error `Bad -> R_bad "record length varint too long"
    | Ok (len, body) ->
      if body + len + 4 > limit then R_short
      else begin
        let payload = String.sub data body len in
        let stored_crc = le32_at data (body + len) in
        let crc = Crc32.sub data ~pos ~len:1 in
        let crc = Crc32.sub ~crc data ~pos:body ~len in
        if crc <> stored_crc then begin
          Telemetry.incr tm_crc_fail;
          R_bad_crc tag
        end
        else R_ok (tag, payload, body + len + 4)
      end
  end

(* Shared record-application state for the strict loader and the lax
   salvage scanner.  Chunks get their index entry (and a freshly
   computed stored-bytes CRC) as they stream past; 'J' journals pile up
   so salvage can pick the newest one consistent with the chunks it
   kept. *)
type scan_state = {
  (* compressed, initial_exe, event encoding version *)
  mutable sc_header : (bool * string * int) option;
  mutable sc_rev_chunks : (chunk_info * string) list;
  mutable sc_frames : int;
  mutable sc_off : int;
  sc_images : (string, Image.t) Hashtbl.t;
  sc_files : (string, string) Hashtbl.t;
  mutable sc_journals : stats list; (* newest first *)
  mutable sc_trailer : (stats * chunk_info list) option;
  mutable sc_index : Trace_index.t option;
  mutable sc_rev_cps : (int * string) list; (* checkpoint records, reversed *)
}

let new_scan_state () =
  { sc_header = None;
    sc_rev_chunks = [];
    sc_frames = 0;
    sc_off = 0;
    sc_images = Hashtbl.create 8;
    sc_files = Hashtbl.create 8;
    sc_journals = [];
    sc_trailer = None;
    sc_index = None;
    sc_rev_cps = [] }

(* Apply one CRC-valid record.  Raises [Codec.Corrupt] on a malformed
   payload and {!Format_error} on version skew; the strict loader turns
   the former into a typed [Corrupt], the salvage scanner turns either
   into "damage starts here". *)
let apply_record st ~path tag payload =
  let s = Codec.source payload in
  let check_consumed () =
    if not (Codec.eof s) then raise (Codec.Corrupt "trailing record bytes")
  in
  if tag = tag_header then begin
    let version = Codec.get_uvarint s in
    if version <> format_version && version <> format_version_delta then
      raise
        (Format_error
           (Version_skew
              { path; found = version; expected = format_version_delta }));
    let event_version = if version = format_version_delta then 2 else 1 in
    let compressed = Codec.get_bool s in
    let exe = Codec.get_string s in
    check_consumed ();
    st.sc_header <- Some (compressed, exe, event_version)
  end
  else if tag = tag_image then begin
    let p = Codec.get_string s in
    let img = Image_codec.get_image s in
    check_consumed ();
    Hashtbl.replace st.sc_images p img
  end
  else if tag = tag_file then begin
    let p = Codec.get_string s in
    let offset = Codec.get_uvarint s in
    let suffix = Codec.get_string s in
    check_consumed ();
    let current =
      match Hashtbl.find_opt st.sc_files p with Some d -> d | None -> ""
    in
    if offset > String.length current then
      raise (Codec.Corrupt "file delta offset past current length");
    Hashtbl.replace st.sc_files p (String.sub current 0 offset ^ suffix)
  end
  else if tag = tag_chunk then begin
    let first_frame = Codec.get_uvarint s in
    let n_frames = Codec.get_uvarint s in
    let kinds = Codec.get_uvarint s in
    let stored = Codec.take s (String.length payload - Codec.pos s) in
    if first_frame <> st.sc_frames then
      raise (Codec.Corrupt "chunk index gap (first_frame mismatch)");
    if n_frames = 0 then raise (Codec.Corrupt "empty chunk record");
    let ci =
      { first_frame;
        n_frames;
        byte_offset = st.sc_off;
        stored_len = String.length stored;
        kinds;
        crc32 = Crc32.string stored }
    in
    st.sc_rev_chunks <- (ci, stored) :: st.sc_rev_chunks;
    st.sc_frames <- st.sc_frames + n_frames;
    st.sc_off <- st.sc_off + String.length stored
  end
  else if tag = tag_journal then begin
    let stats = get_stats s in
    check_consumed ();
    st.sc_journals <- stats :: st.sc_journals
  end
  else if tag = tag_trailer then begin
    let stats = get_stats s in
    let index = Codec.get_list s get_chunk_info in
    check_consumed ();
    st.sc_trailer <- Some (stats, index)
  end
  else if tag = tag_index then begin
    let ix = Trace_index.get_meta s in
    check_consumed ();
    st.sc_index <- Some ix
  end
  else if tag = tag_index_cp then begin
    let frame, blob = Trace_index.get_checkpoint s in
    check_consumed ();
    st.sc_rev_cps <- (frame, blob) :: st.sc_rev_cps
  end
  else raise (Codec.Corrupt (Fmt.str "unknown record tag %C" tag))

(* Attach a scanned sidecar to a built trace, if it covers exactly the
   frames the trace carries.  A mismatched index (a salvage kept fewer
   chunks than the index describes) is silently dropped: the index is
   derived data and scans still answer. *)
let attach_scanned_index st t =
  match st.sc_index with
  | Some ix when Trace_index.n_events ix = t.stats.n_events ->
    List.iter
      (fun (frame, blob) ->
        if frame <= t.stats.n_events then
          Trace_index.add_checkpoint ix ~frame ~blob)
      (List.rev st.sc_rev_cps);
    t.sidecar <- Some ix
  | Some _ | None -> ()

let corrupt ~path detail = Corrupt { path; detail }

(* Strict v3 load: the footer must commit the file, every record must
   be CRC-valid, and the trailer index must agree field-for-field with
   the chunks actually scanned.  No chunk is inflated — frame-level
   validation stays lazy — but every stored byte is CRC-covered by its
   record, so bit rot is caught here, not at first access. *)
let load_v3 ~opts ~path data =
  let file_len = String.length data in
  if file_len < 8 + 16 then
    Error (Truncated { path; detail = "no room for header and footer" })
  else if String.sub data (file_len - 8) 8 <> footer_magic then
    Error
      (Truncated
         { path; detail = "missing commit footer (writer did not finish)" })
  else begin
    let toff = Int64.to_int (String.get_int64_le data (file_len - 16)) in
    if toff < 8 || toff > file_len - 16 then
      Error (corrupt ~path "trailer offset out of bounds")
    else begin
      let st = new_scan_state () in
      let body_end = file_len - 16 in
      let exception Stop of error in
      try
        let pos = ref 8 in
        let chunk_ord = ref 0 in
        while !pos < toff do
          match parse_record data ~limit:toff !pos with
          | R_ok (tag, payload, next) ->
            if tag = tag_chunk then incr chunk_ord;
            (try apply_record st ~path tag payload with
            | Codec.Corrupt msg -> raise (Stop (corrupt ~path msg))
            | Format_error e -> raise (Stop e));
            pos := next
          | R_short -> raise (Stop (corrupt ~path "record overruns the trailer"))
          | R_bad_crc tag when tag = tag_chunk ->
            raise (Stop (Chunk_crc !chunk_ord))
          | R_bad_crc _ -> raise (Stop (corrupt ~path "record CRC mismatch"))
          | R_bad msg -> raise (Stop (corrupt ~path msg))
        done;
        (* The trailer record itself, which must fill [toff, body_end). *)
        (match parse_record data ~limit:body_end toff with
        | R_ok (tag, payload, next) when tag = tag_trailer && next = body_end
          -> (
          try apply_record st ~path tag payload with
          | Codec.Corrupt msg -> raise (Stop (corrupt ~path msg))
          | Format_error e -> raise (Stop e))
        | R_ok _ -> raise (Stop (corrupt ~path "malformed trailer record"))
        | R_short -> raise (Stop (corrupt ~path "trailer record truncated"))
        | R_bad_crc _ -> raise (Stop (corrupt ~path "trailer CRC mismatch"))
        | R_bad msg -> raise (Stop (corrupt ~path msg)));
        let compressed, initial_exe, event_version =
          match st.sc_header with
          | Some h -> h
          | None -> raise (Stop (corrupt ~path "missing header record"))
        in
        let stats, tindex =
          match st.sc_trailer with
          | Some t -> t
          | None -> raise (Stop (corrupt ~path "missing trailer record"))
        in
        let scanned = Array.of_list (List.rev st.sc_rev_chunks) in
        let tindex = Array.of_list tindex in
        if Array.length tindex <> Array.length scanned then
          raise
            (Stop
               (corrupt ~path
                  (Fmt.str "trailer indexes %d chunks, stream has %d"
                     (Array.length tindex) (Array.length scanned))));
        Array.iteri
          (fun i ti ->
            let si, _ = scanned.(i) in
            if ti.crc32 <> si.crc32 then begin
              Telemetry.incr tm_crc_fail;
              raise (Stop (Chunk_crc i))
            end;
            if ti <> si then
              raise
                (Stop
                   (corrupt ~path
                      (Fmt.str "trailer disagrees with stream on chunk %d" i))))
          tindex;
        if stats.n_events <> st.sc_frames then
          raise
            (Stop
               (corrupt ~path
                  (Fmt.str "stream covers %d frames, stats claim %d"
                     st.sc_frames stats.n_events)));
        if stats.n_chunks <> Array.length scanned then
          raise
            (Stop
               (corrupt ~path
                  (Fmt.str "stream has %d chunks, stats claim %d"
                     (Array.length scanned) stats.n_chunks)));
        (match st.sc_index with
        | Some ix when Trace_index.n_events ix <> stats.n_events ->
          raise
            (Stop
               (corrupt ~path
                  (Fmt.str "index covers %d frames, trace has %d"
                     (Trace_index.n_events ix) stats.n_events)))
        | Some _ | None -> ());
        let t =
          make_t ~origin:path ~event_version ~index:(Array.map fst scanned)
            ~chunks:(Array.map snd scanned) ~compressed ~images:st.sc_images
            ~files:st.sc_files ~stats ~initial_exe ~opts ()
        in
        attach_scanned_index st t;
        Ok t
      with Stop e -> Error e
    end
  end

(* v2 load: the previous monolithic-payload layout, still readable.  No
   CRCs exist, so the result is flagged [`Trusted] (checked only by the
   structural bounds below and lazy frame decoding). *)
let load_v2 ~opts ~path data =
  let exception Stop of error in
  let fail detail = raise (Stop (corrupt ~path detail)) in
  try
    if String.length data < 16 then
      raise (Stop (Truncated { path; detail = "no room for payload length" }));
    let declared = Int64.to_int (String.get_int64_le data 8) in
    if declared < 0 || String.length data - 16 < declared then
      raise
        (Stop
           (Truncated
              { path;
                detail =
                  Fmt.str "payload declares %d bytes, file has %d" declared
                    (String.length data - 16) }));
    let payload = String.sub data 16 declared in
    let s = Codec.source payload in
    let version = Codec.get_uvarint s in
    if version <> 2 then
      raise (Stop (Version_skew { path; found = version; expected = 2 }));
    let compressed = Codec.get_bool s in
    let initial_exe = Codec.get_string s in
    let stats = get_stats s in
    let get_chunk_info_v2 s =
      let first_frame = Codec.get_uvarint s in
      let n_frames = Codec.get_uvarint s in
      let byte_offset = Codec.get_uvarint s in
      let stored_len = Codec.get_uvarint s in
      let kinds = Codec.get_uvarint s in
      { first_frame; n_frames; byte_offset; stored_len; kinds; crc32 = 0 }
    in
    let index = Array.of_list (Codec.get_list s get_chunk_info_v2) in
    let stream = Codec.get_string s in
    (* Index sanity — bounds, contiguity, frame accounting — checked
       here at open, instead of inflating every chunk to count. *)
    if Array.length index <> stats.n_chunks then
      fail
        (Fmt.str "chunk index length %d, stats claim %d" (Array.length index)
           stats.n_chunks);
    let expected_off = ref 0 and expected_frame = ref 0 in
    Array.iter
      (fun ci ->
        if ci.byte_offset <> !expected_off then
          fail (Fmt.str "chunk stream gap at byte %d" !expected_off);
        if ci.first_frame <> !expected_frame then
          fail (Fmt.str "chunk index gap at frame %d" !expected_frame);
        if ci.byte_offset + ci.stored_len > String.length stream then
          fail "chunk overruns the stored stream";
        expected_off := !expected_off + ci.stored_len;
        expected_frame := !expected_frame + ci.n_frames)
      index;
    if !expected_off <> String.length stream then
      fail
        (Fmt.str "%d trailing bytes in the chunk stream"
           (String.length stream - !expected_off));
    if !expected_frame <> stats.n_events then
      fail
        (Fmt.str "index covers %d frames, stats claim %d" !expected_frame
           stats.n_events);
    let chunks =
      Array.map (fun ci -> String.sub stream ci.byte_offset ci.stored_len)
        index
    in
    let files = Hashtbl.create 8 in
    Codec.get_list s (fun s ->
        let p = Codec.get_string s in
        Hashtbl.replace files p (Codec.get_string s))
    |> ignore;
    let images = Hashtbl.create 8 in
    Codec.get_list s (fun s ->
        let p = Codec.get_string s in
        Hashtbl.replace images p (Image_codec.get_image s))
    |> ignore;
    Ok
      (make_t ~trusted:true ~origin:path ~index ~chunks ~compressed ~images
         ~files ~stats ~initial_exe ~opts ())
  with
  | Stop e -> Error e
  | Codec.Corrupt msg -> Error (corrupt ~path msg)

let load_bytes ~opts ~path data =
  if String.length data < 8 then
    Error (Truncated { path; detail = "shorter than the magic" })
  else begin
    match String.sub data 0 8 with
    | m when m = magic_v3 -> load_v3 ~opts ~path data
    | m when m = magic_v2 -> load_v2 ~opts ~path data
    | m when m = magic_v1 ->
      Error (Version_skew { path; found = 1; expected = format_version })
    | _ -> Error (Bad_magic { path })
  end

let open_io ?(opts = default_opts) r =
  match Io.read_all r with
  | data -> load_bytes ~opts ~path:(Io.reader_path r) data
  | exception Io.Io_error e -> Error (Io e)

let open_ ?opts path = open_io ?opts (Io.file_reader path)

let load = open_

let open_exn ?opts path =
  match open_ ?opts path with Ok t -> t | Error e -> raise (Format_error e)

let load_exn = open_exn

(* ---- salvage --------------------------------------------------------- *)

type salvage_report = {
  sr_path : string;
  sr_total_bytes : int;
  sr_valid_bytes : int; (* prefix that scanned as CRC-valid records *)
  sr_chunks_recovered : int;
  sr_frames_recovered : int;
  sr_chunks_lost : int option; (* None: total unknown (no trailer found) *)
  sr_frames_lost : int option;
  sr_files_recovered : int;
  sr_images_recovered : int;
  sr_committed : bool; (* the commit footer was present and valid *)
  sr_damage : string option; (* None: nothing wrong with the file *)
}

let pp_salvage_report ppf r =
  Fmt.pf ppf
    "%s: %d/%d bytes valid, recovered %d chunks (%d frames), %d files, %d \
     images;%s%s%s"
    r.sr_path r.sr_valid_bytes r.sr_total_bytes r.sr_chunks_recovered
    r.sr_frames_recovered r.sr_files_recovered r.sr_images_recovered
    (match r.sr_chunks_lost with
    | Some c ->
      Fmt.str " lost %d chunks (%s frames);" c
        (match r.sr_frames_lost with Some f -> string_of_int f | None -> "?")
    | None -> " loss unknown (no trailer);")
    (if r.sr_committed then " committed" else " uncommitted")
    (match r.sr_damage with
    | Some d -> Fmt.str "; damage: %s" d
    | None -> "; intact")

(* Lax scan + decode-verify: recover the longest prefix of the record
   stream that is CRC-valid, well-formed *and* whose chunks actually
   inflate and decode.  Everything past the first damage — or the first
   undecodable chunk — is reported lost, never silently included. *)
let salvage_v3 ~opts ~path data =
  let file_len = String.length data in
  let committed =
    file_len >= 24
    && String.sub data (file_len - 8) 8 = footer_magic
    &&
    let toff = Int64.to_int (String.get_int64_le data (file_len - 16)) in
    toff >= 8 && toff <= file_len - 16
  in
  (* With a valid footer the last 16 bytes are framing, not records. *)
  let limit = if committed then file_len - 16 else file_len in
  let st = new_scan_state () in
  let pos = ref 8 in
  let damage = ref None in
  while !damage = None && !pos < limit do
    match parse_record data ~limit !pos with
    | R_ok (tag, payload, next) -> (
      match apply_record st ~path tag payload with
      | () -> pos := next
      | exception Codec.Corrupt msg ->
        damage := Some (Fmt.str "byte %d: %s" !pos msg)
      | exception Format_error e ->
        damage := Some (Fmt.str "byte %d: %s" !pos (error_to_string e)))
    | R_short -> damage := Some (Fmt.str "byte %d: truncated record" !pos)
    | R_bad_crc tag ->
      damage := Some (Fmt.str "byte %d: record %C failed CRC" !pos tag)
    | R_bad msg -> damage := Some (Fmt.str "byte %d: %s" !pos msg)
  done;
  let valid_bytes = !pos in
  match st.sc_header with
  | None ->
    (* Nothing before the first chunk survived: unrecoverable. *)
    Error
      (corrupt ~path
         (Fmt.str "header record unrecoverable (%s)"
            (match !damage with Some d -> d | None -> "empty stream")))
  | Some (compressed, initial_exe, event_version) ->
    let scanned = Array.of_list (List.rev st.sc_rev_chunks) in
    (* Decode-verify: keep the longest chunk prefix that inflates and
       decodes.  A probe [t] carries the compressed flag and origin for
       error context; its cache fills harmlessly and is discarded. *)
    let probe =
      make_t ~origin:path ~event_version ~index:(Array.map fst scanned)
        ~chunks:(Array.map snd scanned) ~compressed ~images:st.sc_images
        ~files:st.sc_files ~stats:(new_stats ()) ~initial_exe
        ~opts:default_opts ()
    in
    let keep = ref (Array.length scanned) in
    (try
       Array.iteri
         (fun i (ci, stored) ->
           match decode_chunk_raw probe ~idx:i ci stored with
           | _ -> ()
           | exception Format_error e ->
             keep := i;
             if !damage = None then
               damage := Some (Fmt.str "chunk %d: %s" i (error_to_string e));
             raise Exit)
         scanned
     with Exit -> ());
    let kept = Array.sub scanned 0 !keep in
    let frames_recovered =
      Array.fold_left (fun acc (ci, _) -> acc + ci.n_frames) 0 kept
    in
    (* Final stats: structural fields recomputed from the kept prefix;
       accounting fields (raw/cloned/copied/syscall counts) from the
       best stats snapshot not newer than the salvage point — the
       trailer if everything survived, else the newest journal whose
       chunk count the kept prefix still covers. *)
    let n_kept = Array.length kept in
    let base =
      match st.sc_trailer with
      | Some (ts, _) when !damage = None && n_kept = Array.length scanned ->
        Some ts
      | _ ->
        List.find_opt (fun js -> js.n_chunks <= n_kept) st.sc_journals
    in
    let stats =
      match base with Some b -> copy_stats b | None -> new_stats ()
    in
    stats.n_events <- frames_recovered;
    stats.n_chunks <- n_kept;
    stats.compressed_bytes <-
      Array.fold_left (fun acc (ci, _) -> acc + ci.stored_len) 0 kept;
    let t =
      make_t ~origin:path ~event_version ~index:(Array.map fst kept)
        ~chunks:(Array.map snd kept) ~compressed ~images:st.sc_images
        ~files:st.sc_files ~stats ~initial_exe ~opts ()
    in
    attach_scanned_index st t;
    let chunks_lost, frames_lost =
      match st.sc_trailer with
      | Some (ts, _) ->
        (Some (ts.n_chunks - n_kept), Some (ts.n_events - frames_recovered))
      | None when !damage = None ->
        (* Clean scan to EOF but no trailer: the writer died before the
           commit — the stream itself is all there is. *)
        (Some (Array.length scanned - n_kept),
         Some (st.sc_frames - frames_recovered))
      | None -> (None, None)
    in
    let report =
      { sr_path = path;
        sr_total_bytes = file_len;
        sr_valid_bytes = valid_bytes;
        sr_chunks_recovered = n_kept;
        sr_frames_recovered = frames_recovered;
        sr_chunks_lost = chunks_lost;
        sr_frames_lost = frames_lost;
        sr_files_recovered = Hashtbl.length st.sc_files;
        sr_images_recovered = Hashtbl.length st.sc_images;
        sr_committed = committed;
        sr_damage = !damage }
    in
    Telemetry.add tm_salvage_chunks n_kept;
    Telemetry.add tm_salvage_frames frames_recovered;
    Telemetry.add tm_salvage_lost (max 0 (file_len - valid_bytes));
    Ok (t, report)

let salvage_bytes ~opts ~path data =
  Telemetry.incr tm_salvage_runs;
  if String.length data < 8 then
    Error (Truncated { path; detail = "shorter than the magic" })
  else begin
    match String.sub data 0 8 with
    | m when m = magic_v3 -> salvage_v3 ~opts ~path data
    | m when m = magic_v2 -> (
      (* v2 has one monolithic payload: all-or-nothing. *)
      match load_v2 ~opts ~path data with
      | Ok t ->
        let stats = t.stats in
        Ok
          ( t,
            { sr_path = path;
              sr_total_bytes = String.length data;
              sr_valid_bytes = String.length data;
              sr_chunks_recovered = stats.n_chunks;
              sr_frames_recovered = stats.n_events;
              sr_chunks_lost = Some 0;
              sr_frames_lost = Some 0;
              sr_files_recovered = Hashtbl.length t.files;
              sr_images_recovered = Hashtbl.length t.images;
              sr_committed = true;
              sr_damage = None } )
      | Error e -> Error e)
    | m when m = magic_v1 ->
      Error (Version_skew { path; found = 1; expected = format_version })
    | _ -> Error (Bad_magic { path })
  end

let salvage_io ?(opts = default_opts) r =
  match Io.read_all r with
  | data -> salvage_bytes ~opts ~path:(Io.reader_path r) data
  | exception Io.Io_error e -> Error (Io e)

let salvage ?opts path = salvage_io ?opts (Io.file_reader path)

let pp_stats ppf s =
  Fmt.pf ppf
    "events=%d raw=%dB compressed=%dB (%.2fx) cloned=%dB (%d blocks) \
     copied=%dB buffered-syscalls=%d traced-syscalls=%d lru=%d/%d \
     hit/miss (%d evicted)"
    s.n_events s.raw_bytes s.compressed_bytes
    (Compress.ratio ~original:s.raw_bytes ~compressed:s.compressed_bytes)
    s.cloned_bytes s.cloned_blocks s.copied_file_bytes s.n_buffered_syscalls
    s.n_traced_syscalls s.lru_hits s.lru_misses s.lru_evictions
