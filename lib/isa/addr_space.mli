(** Guest address spaces: byte-addressed COW data pages plus a
    word-addressed text table (Harvard simplification; DESIGN.md §6). *)

type access = Read | Write | Exec

exception Segv of { addr : int; access : access }

type kind =
  | Anon
  | Stack
  | File_backed of { path : string; file_off : int }
  | Scratch
  | Rr_page
  | Thread_locals

type region = {
  start : int;
  len : int;
  mutable prot : Mem.prot;
  kind : kind;
  shared : bool;
}

type t = {
  id : int;
  pages : (int, Mem.page) Hashtbl.t;
  text : (int, Insn.t) Hashtbl.t;
  written_text : (int, unit) Hashtbl.t;
  breakpoints : (int, unit) Hashtbl.t;
  mutable regions : region list;
  mutable mmap_cursor : int;
}

val mmap_base : int
val stack_top : int

val create : id:int -> t

val regions : t -> region list
val find_region : t -> int -> region option
val overlaps : t -> addr:int -> len:int -> bool

val map :
  t -> addr:int -> len:int -> prot:Mem.prot -> ?kind:kind -> ?shared:bool ->
  unit -> int
(** Map pages eagerly; returns the page-aligned start address.  Raises
    [Invalid_argument] on overlap. *)

val find_map_addr : t -> int -> int
(** A free address for an [len]-byte mapping. *)

val unmap : t -> addr:int -> len:int -> unit
val unmap_all : t -> unit
val protect : t -> addr:int -> len:int -> prot:Mem.prot -> unit

val set_write_observer : (t -> addr:int -> len:int -> unit) -> unit
val clear_write_observer : unit -> unit
(** A process-global hook invoked before every data write (all byte
    stores funnel through it, including [force] writes).  The trace
    indexer installs one during its replay pass to learn which pages
    each frame touches; leave it unset otherwise. *)

val read_u8 : ?force:bool -> t -> int -> int
val write_u8 : ?force:bool -> t -> int -> int -> unit
val read_u64 : ?force:bool -> t -> int -> int
val write_u64 : ?force:bool -> t -> int -> int -> unit
val read_bytes : ?force:bool -> t -> int -> int -> bytes
val write_bytes : ?force:bool -> t -> int -> bytes -> unit
(** Data accessors.  [force] bypasses protection checks (kernel and
    supervisor accesses).  All raise {!Segv} on unmapped addresses. *)

val loaded_insns : int ref
(** Global count of instructions loaded by [text_load] (program images),
    for instrumentation cost models. *)

val text_get : t -> int -> Insn.t option
val text_set : t -> int -> Insn.t -> unit
val text_load : t -> base:int -> Insn.t array -> unit

val text_write : t -> int -> Insn.t -> unit
(** A {e run-time} code write ([Emit]): also marks the address in
    [written_text]. *)

val text_was_written : t -> int -> bool

val bp_set : t -> int -> unit
val bp_clear : t -> int -> unit
val bp_is_set : t -> int -> bool
val bp_any : t -> bool

val fork : t -> id:int -> t
(** COW-share every frame; the basis of cheap checkpoints. *)

val release : t -> unit

val pss : t -> float
(** Proportional set size in bytes (each frame counts size/refs). *)

val mapped_bytes : t -> int
