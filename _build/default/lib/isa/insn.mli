(** The guest instruction set: a small register machine standing in for
    x86-64, with the properties rr's design depends on — deterministic
    conditional branches (the RCB event), a patchable one-word [Syscall]
    instruction, deliberately nondeterministic instructions, and run-time
    code generation. *)

type reg = int

val num_regs : int

val reg_sp : reg
(** Stack pointer (r15). *)

val reg_tp : reg
(** Thread pointer (r13). *)

type operand = Imm of int | Reg of reg

type cond = Eq | Ne | Lt | Le | Gt | Ge

type alu = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type t =
  | Nop
  | Mov of reg * operand
  | Alu of alu * reg * operand
  | Load of reg * reg * int
  | Store of reg * reg * int
  | Load8 of reg * reg * int
  | Store8 of reg * reg * int
  | Jmp of int
  | Jcc of cond * reg * operand * int
  | Call of int
  | Callr of reg
  | Ret
  | Push of operand
  | Pop of reg
  | Syscall
  | Rdtsc of reg
  | Rdrand of reg
  | Cpuid_core of reg
  | Cas of reg * reg * reg * reg
  | Pause
  | Emit of reg * reg
  | Hook of int
  | Halt

val eval_cond : cond -> int -> int -> bool

val is_conditional_branch : t -> bool
(** True exactly for the instructions counted by the deterministic
    retired-conditional-branch (RCB) performance counter. *)

val encode : t -> int option
(** Encode an instruction for run-time emission ([Emit]).  Only a small
    JIT-friendly subset is encodable. *)

val decode : int -> t option

val pp : t Fmt.t
val pp_operand : operand Fmt.t
