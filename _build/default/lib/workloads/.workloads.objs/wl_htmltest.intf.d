lib/workloads/wl_htmltest.mli: Workload
