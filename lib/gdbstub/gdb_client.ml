(* A minimal synchronous RSP client (see the mli). *)

module P = Gdb_packet
module T = Gdb_transport

exception Protocol_error of string

type t = {
  conn : P.conn;
  pump : unit -> unit;
  max_spins : int;
}

let create ?(pump = fun () -> ()) ?(max_spins = 1000) tr =
  { conn = P.conn ~rle:false tr; pump; max_spins }

let request t payload =
  P.send t.conn payload;
  let spins = ref 0 in
  let rec await () =
    match P.poll t.conn with
    | `Packet reply ->
      if payload = "QStartNoAckMode" && reply = "OK" then
        P.set_ack_mode t.conn false;
      reply
    | `Eof -> raise (Protocol_error (Printf.sprintf "EOF awaiting reply to %S" payload))
    | `Empty ->
      incr spins;
      if !spins > t.max_spins then
        raise
          (Protocol_error
             (Printf.sprintf "no reply to %S after %d polls" payload t.max_spins));
      t.pump ();
      await ()
  in
  await ()

let monitor t cmd =
  let reply = request t ("qRcmd," ^ P.to_hex cmd) in
  if reply = "" || reply = "OK" then reply
  else
    match P.of_hex reply with
    | Ok text ->
      let n = String.length text in
      if n > 0 && text.[n - 1] = '\n' then String.sub text 0 (n - 1) else text
    | Error _ -> reply (* Exx and friends pass through untouched *)

let close t = (P.transport t.conn).T.close ()
