lib/kern/perf_event.ml:
