(** Socket transports for real gdb clients.

    This is the {e only} module in the tree allowed to open listening
    sockets (a [tools/check_format.sh] rule enforces it): the simulated
    kernel must never touch host networking, and confining the
    [Unix.socket]/[Unix.bind] surface here keeps that auditable.

    Both listeners block until exactly one client connects and return a
    {!Gdb_transport.t} whose [recv] blocks — made for
    {!Gdb_server.run}. *)

val listen_tcp : ?host:string -> port:int -> unit -> Gdb_transport.t
(** Listen on [host] (default ["127.0.0.1"]) : [port], accept one
    connection. *)

val listen_unix : path:string -> Gdb_transport.t
(** Listen on a Unix-domain socket at [path] (an existing socket file
    there is replaced), accept one connection.  The file is unlinked on
    close. *)
