test/test_sched.ml: Alcotest Fun Gen List Option QCheck QCheck_alcotest Rec_sched
