(** Minimal dependency-free JSON: the parser behind [bin/json_check]
    and the timeline/telemetry test suites, plus the string escaper
    shared by the tree's hand-rolled JSON emitters. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** Parse a complete JSON document.  @raise Parse_error with an offset
    on malformed input or trailing bytes. *)

val escape : string -> string
(** Escape a string for inclusion inside JSON double quotes: quotes,
    backslashes, and control characters (as [\uXXXX]). *)
