lib/kern/cost.ml:
