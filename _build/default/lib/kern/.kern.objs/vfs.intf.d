lib/kern/vfs.mli: Bytes Hashtbl Image
