(** Scripted RSP sessions: a tiny line format for canned debug
    conversations, used by [rr_cli debug --script] and the CI smoke.

    Grammar, one step per line:
    {v
    # comment (blank lines ignored)
    <payload>                     send, ignore the reply
    <payload> => <expected>       send, require the reply to match
    monitor <cmd> [=> <expected>] qRcmd sugar: hex both ways
    v}

    An [<expected>] ending in [*] is a prefix match; anything else must
    match the reply byte for byte.  Monitor expectations compare
    against the hex-decoded reply text. *)

type expect = Exact of string | Prefix of string

type step = {
  line_no : int;
  send : string;
  expect : expect option;
  monitor : bool;
}

val parse : string -> (step list, string) result
(** Parse a whole script; [Error] names the offending line. *)

val run :
  ?log:(string -> unit) -> Gdb_client.t -> step list -> (int, string) result
(** Execute the steps in order; [log] sees one transcript line per
    step.  Returns the number of steps executed, or the first
    mismatch/protocol failure. *)
