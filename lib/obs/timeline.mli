(** Hierarchical timed-scope tracing with Chrome trace-event export.

    Where {!Telemetry} answers "how many / how long in aggregate",
    [Timeline] answers "when, under what, and on which task": begin/end
    scope events carrying both the virtual cost-model clock and an
    optional host clock, nested per domain, laid out in per-task
    {e lanes} keyed by guest tid, plus instant markers and counter
    samples.  Events land in one bounded lock-free buffer shared by all
    domains; recording is off by default and every emit point is a
    cheap atomic check when disabled.

    Naming convention: scope/instant/counter names are dotted
    [<layer>.<verb>] (["kern.run"], ["trace.deflate"], ["record.stop"])
    — the first segment maps to the owning library and becomes the
    Chrome [cat] field.  [<layer>.session] names are reserved for
    whole-phase root scopes and are excluded from stage attribution.

    Exports are offline: call them after {!stop} with worker domains
    joined (the pool's shutdown provides the needed synchronisation). *)

(** {1 Lifecycle} *)

val start : ?capacity:int -> unit -> unit
(** Reset and enable recording into a fresh buffer of [capacity] events
    (default 2^18).  Events beyond capacity are dropped and counted. *)

val stop : unit -> unit
(** Disable recording.  The buffer is kept for export. *)

val enabled : unit -> bool

val dropped : unit -> int
(** Events lost to buffer overflow since {!start}. *)

val mismatches : unit -> int
(** Unbalanced {!end_scope} calls (no open frame, or name differing
    from the innermost open frame) observed while enabled. *)

(** {1 Clocks}

    Timestamps are nanoseconds.  The virtual clock is the cost-model
    clock installed by the recorder/replayer (via
    [Telemetry.set_clock], which forwards here); the host clock is
    wall-time, installed by profiling front-ends.  Both default to a
    constant [0]. *)

val set_virtual_clock : (unit -> int) -> unit
val clear_virtual_clock : unit -> unit
val set_host_clock : (unit -> int) -> unit
val clear_host_clock : unit -> unit

(** {1 Lanes}

    A lane is a Chrome "thread" row: lane 0 is the supervisor, kernel
    tasks use their guest tid, and worker domains default to
    [10_000 + domain id] (disjoint from tids by construction).  Each
    domain has a current lane that new events inherit. *)

val set_lane : ?name:string -> int -> unit
(** Switch this domain's current lane, optionally (first caller wins)
    giving it a display name. *)

val current_lane : unit -> int

(** {1 Recording} *)

val begin_scope : ?lane:int -> string -> unit
(** Open a scope on this domain (in [lane], default the current lane).
    Must be balanced by {!end_scope} with the same name; the pair
    becomes a [B]/[E] interval nested under the domain's innermost open
    scope.  Scope frames are tracked even while disabled, so
    enable/disable races never unbalance the export. *)

val end_scope : string -> unit
(** Close the innermost open scope.  A [name] mismatch closes the frame
    anyway (emitting the frame's own name on its opening lane) and
    increments {!mismatches}. *)

val scope : ?lane:int -> string -> (unit -> 'a) -> 'a
(** [scope name f] runs [f] inside a [name] scope, closing it on normal
    return {e and} on exception. *)

val instant : ?lane:int -> string -> unit
(** A zero-duration marker (Chrome [i] event). *)

val sample : ?lane:int -> string -> int -> unit
(** A counter sample (Chrome [C] event), e.g. queue depth. *)

(** {1 Export} *)

type kind = B | E | I | C

type event = {
  ev_kind : kind;
  ev_name : string;
  ev_lane : int;
  ev_vts : int;  (** virtual ns *)
  ev_hts : int;  (** host ns; 0 without a host clock *)
  ev_value : int;  (** [C] sample value *)
}

val events : unit -> event list
(** Recorded events in buffer order. *)

val to_chrome_json : unit -> string
(** The buffer as a Chrome trace-event document: an object with
    [traceEvents] (metadata thread names per lane, then [B]/[E]/[i]/[C]
    events with [ts] in µs of virtual time and host ns in [args]) plus
    [otherData] carrying drop/mismatch counts.  Per-lane timestamps are
    clamped monotone and scopes still open at the end of the buffer are
    synthesised closed, so every [B] has a matching [E]. *)

val export : string -> unit
(** Write {!to_chrome_json} to a file. *)

(** {1 Aggregation} *)

type stage = {
  st_name : string;
  st_self_ns : int;  (** self time: total minus instrumented children *)
  st_count : int;
}

type summary = {
  at_total_ns : int;  (** virtual-time window spanned by the buffer *)
  at_covered_ns : int;  (** sum of stage self times *)
  at_stages : stage list;  (** sorted by descending self time *)
  at_untracked_ns : int;  (** window minus covered *)
}

val attribution : unit -> summary
(** The paper-style per-stage ledger: replay the buffer through
    per-lane stacks into a merged scope tree, then charge each scope
    name its {e self} time (so stages partition the instrumented time
    and percentages are additive).  [*.session] roots are treated as
    the measurement window, not a stage. *)

val attribution_to_json : summary -> string

val pp_flamegraph : Format.formatter -> unit -> unit
(** Self-contained text flamegraph: the merged scope tree with share,
    inclusive ns and count per node. *)

val pp_attribution : Format.formatter -> unit -> unit
(** The attribution ledger as a text table. *)
