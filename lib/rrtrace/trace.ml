(* Chunk-indexed trace store: writer, cursor reader, persistence.

   General frame data is serialized ({!Event}) and deflate-compressed in
   chunks — the "all other trace data" stream of paper §2.7/Table 2.
   Memory-mapped executables and block-cloned file data are *not* run
   through the compressor: they are cloned (hard-link/FICLONE style) and
   accounted separately, which is exactly what makes rr traces cheap.

   Unlike a decoded event array, the store keeps only the compressed
   chunks plus a per-chunk index {first_frame; n_frames; byte_offset;
   kinds}.  Frames are decoded one chunk at a time on demand through
   {!Reader}, with a small LRU of decoded chunks, so memory stays
   proportional to one chunk and a seek costs O(log n_chunks) — the
   property the debugger's checkpoint/reverse-execution substrate
   (paper §6.1) leans on.

   Multicore pipeline ({!opts}): with [jobs > 1] the writer hands each
   sealed chunk to a {!Pool} of worker domains and collects the
   deflated bytes in submission order at {!Writer.finish} — compression
   runs on spare cores while recording continues, the way real rr hides
   its deflate cost (§2.7).  With [readahead > 0] the reader prefetches
   and inflates the next chunks in the background, so sequential
   replay's [next]/[seek] almost never inflate on the critical path.
   Deflate is per-chunk deterministic, so the parallel and serial
   writers produce byte-identical traces. *)

type stats = {
  mutable n_events : int;
  mutable raw_bytes : int; (* frame bytes before compression *)
  mutable compressed_bytes : int;
  mutable cloned_blocks : int; (* 4 KiB blocks snapshotted by cloning *)
  mutable cloned_bytes : int; (* bytes snapshotted by cloning/hard links *)
  mutable copied_file_bytes : int; (* file bytes copied (cloning disabled) *)
  mutable n_chunks : int;
  mutable n_buffered_syscalls : int; (* syscalls recorded via syscallbuf *)
  mutable n_traced_syscalls : int;
  (* Reader-side chunk-LRU traffic.  Runtime-only: not persisted (the
     RRTRACE2 stats section stays 9 uvarints) and reset on load. *)
  mutable lru_hits : int;
  mutable lru_misses : int;
  mutable lru_evictions : int;
}

let new_stats () =
  { n_events = 0;
    raw_bytes = 0;
    compressed_bytes = 0;
    cloned_blocks = 0;
    cloned_bytes = 0;
    copied_file_bytes = 0;
    n_chunks = 0;
    n_buffered_syscalls = 0;
    n_traced_syscalls = 0;
    lru_hits = 0;
    lru_misses = 0;
    lru_evictions = 0 }

let tm_chunk_hit = Telemetry.counter "trace.chunk.hit"
let tm_chunk_miss = Telemetry.counter "trace.chunk.miss"
let tm_chunk_evict = Telemetry.counter "trace.chunk.evict"
let tm_chunk_flush = Telemetry.counter "trace.chunk.flush"
let tm_deflate_ratio = Telemetry.histogram "trace.deflate.ratio_pct"
let tm_deflate = Telemetry.span "trace.deflate"
let tm_inflate = Telemetry.span "trace.inflate"
let tm_prefetch_hit = Telemetry.counter "reader.prefetch_hit"
let tm_prefetch_miss = Telemetry.counter "reader.prefetch_miss"

(* ---- pipeline options ------------------------------------------------ *)

type opts = {
  jobs : int; (* worker domains for chunk deflate / readahead inflate *)
  readahead : int; (* chunks the reader prefetches past the last access *)
}

let default_opts = { jobs = 1; readahead = 0 }

let make_opts ?(jobs = default_opts.jobs)
    ?(readahead = default_opts.readahead) () =
  { jobs = max 1 jobs; readahead = max 0 readahead }

type chunk_info = {
  first_frame : int;
  n_frames : int;
  byte_offset : int; (* into the concatenated stored-chunk stream *)
  stored_len : int;
  kinds : int; (* OR of Event.kind_bit for every frame in the chunk *)
}

type t = {
  index : chunk_info array;
  chunks : string array; (* stored (possibly deflated) chunk bytes *)
  compressed : bool;
  images : (string, Image.t) Hashtbl.t; (* trace path -> executable image *)
  files : (string, string) Hashtbl.t; (* trace path -> snapshotted bytes *)
  stats : stats;
  initial_exe : string;
  (* LRU of decoded chunks, shared by every cursor over this trace; MRU
     first.  [chunk_decodes] counts cache misses — the number of chunks
     actually inflated+decoded, which tests use to prove laziness.
     All of the fields below are guarded by [lock]: readahead workers
     insert decoded chunks concurrently with the main thread. *)
  mutable cache : (int * Event.t array) list;
  mutable chunk_decodes : int;
  mutable opts : opts;
  lock : Mutex.t;
  cv : Condition.t; (* signaled when a prefetch lands or fails *)
  inflight : (int, unit) Hashtbl.t; (* chunk idx -> being prefetched *)
  prefetched : (int, unit) Hashtbl.t; (* inserted by a worker, untouched *)
  mutable rpool : Pool.t option; (* lazily created readahead pool *)
}

let make_t ~index ~chunks ~compressed ~images ~files ~stats ~initial_exe
    ~opts =
  { index;
    chunks;
    compressed;
    images;
    files;
    stats;
    initial_exe;
    cache = [];
    chunk_decodes = 0;
    opts;
    lock = Mutex.create ();
    cv = Condition.create ();
    inflight = Hashtbl.create 8;
    prefetched = Hashtbl.create 8;
    rpool = None }

let default_chunk_limit = 1 lsl 16
let cache_slots = 8

exception Format_error of string

let format_fail fmt = Fmt.kstr (fun s -> raise (Format_error s)) fmt

module Writer = struct
  (* A sealed chunk: its frames are fixed, its stored bytes may still be
     in flight on a worker domain.  The index entry (which needs the
     stored length and byte offset) is built at [finish], in submission
     order, so the parallel and serial paths emit identical files. *)
  type sealed = {
    s_first_frame : int;
    s_n_frames : int;
    s_kinds : int;
    s_raw_len : int;
    s_stored : string Pool.future;
  }

  type w = {
    mutable rev_sealed : sealed list;
    mutable pending : Codec.sink;
    mutable pending_frames : int;
    mutable pending_kinds : int;
    mutable frames_flushed : int; (* first_frame of the pending chunk *)
    chunk_limit : int;
    images : (string, Image.t) Hashtbl.t;
    files : (string, string) Hashtbl.t;
    stats : stats;
    mutable exe : string;
    compress : bool;
    opts : opts;
    pool : Pool.t; (* inline when opts.jobs = 1: the serial path *)
  }

  let create ?(compress = true) ?(chunk_limit = default_chunk_limit)
      ?(opts = default_opts) ~initial_exe () =
    { rev_sealed = [];
      pending = Codec.sink ();
      pending_frames = 0;
      pending_kinds = 0;
      frames_flushed = 0;
      chunk_limit;
      images = Hashtbl.create 8;
      files = Hashtbl.create 8;
      stats = new_stats ();
      exe = initial_exe;
      compress;
      opts;
      pool = Pool.create ~jobs:opts.jobs () }

  (* Seal the pending frames as one chunk and hand the deflate to the
     pool.  With one job the submit runs inline — byte-for-byte the old
     synchronous path; with more, the bounded pool queue provides
     backpressure so recording can never outrun the compressors by more
     than a few chunks. *)
  let flush_chunk w =
    if w.pending_frames > 0 then begin
      let raw = Buffer.contents w.pending in
      Buffer.clear w.pending;
      Telemetry.incr tm_chunk_flush;
      let compress = w.compress in
      let stored =
        Pool.submit w.pool (fun () ->
            if compress then
              Telemetry.timed tm_deflate (fun () -> Compress.deflate raw)
            else raw)
      in
      w.stats.n_chunks <- w.stats.n_chunks + 1;
      w.rev_sealed <-
        { s_first_frame = w.frames_flushed;
          s_n_frames = w.pending_frames;
          s_kinds = w.pending_kinds;
          s_raw_len = String.length raw;
          s_stored = stored }
        :: w.rev_sealed;
      w.frames_flushed <- w.frames_flushed + w.pending_frames;
      w.pending_frames <- 0;
      w.pending_kinds <- 0
    end

  (* Append one frame; returns the serialized size (for cost charging). *)
  let event w e =
    w.stats.n_events <- w.stats.n_events + 1;
    w.pending_frames <- w.pending_frames + 1;
    w.pending_kinds <- w.pending_kinds lor Event.kind_bit e;
    let before = Buffer.length w.pending in
    Event.encode w.pending e;
    let sz = Buffer.length w.pending - before in
    w.stats.raw_bytes <- w.stats.raw_bytes + sz;
    (match e with
    | Event.E_buf_flush { records; _ } ->
      w.stats.n_buffered_syscalls <-
        w.stats.n_buffered_syscalls + List.length records
    | Event.E_syscall _ ->
      w.stats.n_traced_syscalls <- w.stats.n_traced_syscalls + 1
    | Event.E_clone _ | Event.E_exec _ | Event.E_mmap _ | Event.E_signal _
    | Event.E_sched _ | Event.E_insn_trap _ | Event.E_patch _
    | Event.E_exit _ | Event.E_rr_setup _ | Event.E_syscall_enter _
    | Event.E_checksum _ ->
      ());
    if Buffer.length w.pending >= w.chunk_limit then flush_chunk w;
    sz

  (* Snapshot an executable image into the trace (hard link / clone):
     costs no data copying, only accounting. *)
  let add_image w ~path img =
    if not (Hashtbl.mem w.images path) then begin
      Hashtbl.replace w.images path img;
      let size = Image.byte_size img in
      w.stats.cloned_bytes <- w.stats.cloned_bytes + size;
      w.stats.cloned_blocks <-
        w.stats.cloned_blocks + ((size + 4095) / 4096)
    end

  (* Snapshot file bytes.  [cloned] distinguishes free COW clones from
     real copies (the no-cloning configuration of Table 1).  Re-adding a
     path (the growing per-task cloned-data file) accounts only the
     growth. *)
  let add_file w ~path ~cloned data =
    let old_size =
      match Hashtbl.find_opt w.files path with
      | Some prev -> String.length prev
      | None -> 0
    in
    Hashtbl.replace w.files path data;
    let delta = max 0 (String.length data - old_size) in
    if cloned then begin
      w.stats.cloned_bytes <- w.stats.cloned_bytes + delta;
      w.stats.cloned_blocks <- w.stats.cloned_blocks + ((delta + 4095) / 4096)
    end
    else w.stats.copied_file_bytes <- w.stats.copied_file_bytes + delta

  let find_file w path = Hashtbl.find_opt w.files path

  (* Await every in-flight deflate in chunk order and assemble the
     index.  The ordering guarantee is structural: [rev_sealed] is in
     submission order and futures are awaited positionally, so worker
     completion order cannot reorder the stream. *)
  let finish w =
    flush_chunk w;
    let sealed = Array.of_list (List.rev w.rev_sealed) in
    let chunks = Array.map (fun s -> Pool.await s.s_stored) sealed in
    Pool.shutdown w.pool;
    let byte_offset = ref 0 in
    let index =
      Array.mapi
        (fun i s ->
          let stored_len = String.length chunks.(i) in
          w.stats.compressed_bytes <- w.stats.compressed_bytes + stored_len;
          if s.s_raw_len > 0 then
            Telemetry.observe tm_deflate_ratio
              (stored_len * 100 / s.s_raw_len);
          let ci =
            { first_frame = s.s_first_frame;
              n_frames = s.s_n_frames;
              byte_offset = !byte_offset;
              stored_len;
              kinds = s.s_kinds }
          in
          byte_offset := !byte_offset + stored_len;
          ci)
        sealed
    in
    make_t ~index ~chunks ~compressed:w.compress ~images:w.images
      ~files:w.files ~stats:w.stats ~initial_exe:w.exe ~opts:w.opts
end

let n_events t = t.stats.n_events

let stats t = t.stats

let chunk_index t = t.index

let decoded_chunks t = t.chunk_decodes

let get_opts t = t.opts

(* Reconfigure the pipeline of an already-built trace (e.g. enable
   readahead on a loaded trace before replaying it).  A live readahead
   pool with the wrong worker count is retired first. *)
let set_opts t opts =
  (match t.rpool with
  | Some p when Pool.jobs p <> opts.jobs ->
    Pool.shutdown p;
    t.rpool <- None
  | Some _ | None -> ());
  t.opts <- opts

let image t path =
  match Hashtbl.find_opt t.images path with
  | Some img -> img
  | None -> Fmt.invalid_arg "trace: no image %s" path

let file t path =
  match Hashtbl.find_opt t.files path with
  | Some d -> d
  | None -> Fmt.invalid_arg "trace: no file %s" path

(* ---- chunk decoding (the only path from stored bytes to frames) ----- *)

let decode_chunk_raw t ci stored =
  try
    let raw =
      if t.compressed then
        Telemetry.timed tm_inflate (fun () -> Compress.inflate stored)
      else stored
    in
    let s = Codec.source raw in
    let out = Array.make ci.n_frames Event.(E_exit { tid = 0; status = 0 }) in
    for i = 0 to ci.n_frames - 1 do
      out.(i) <- Event.decode s
    done;
    if not (Codec.eof s) then
      raise (Codec.Corrupt "trailing bytes after last frame");
    out
  with
  | Compress.Corrupt msg | Codec.Corrupt msg ->
    format_fail "corrupt chunk at frame %d: %s" ci.first_frame msg

(* Effective LRU capacity: a deep readahead must not evict the chunks
   it just prefetched. *)
let lru_slots t = max cache_slots (t.opts.readahead + 2)

(* Insert a freshly decoded chunk; caller holds [t.lock].  No-op if a
   racing decode beat us to it. *)
let cache_insert t ci_idx frames =
  if not (List.mem_assoc ci_idx t.cache) then begin
    t.chunk_decodes <- t.chunk_decodes + 1;
    t.stats.lru_misses <- t.stats.lru_misses + 1;
    Telemetry.incr tm_chunk_miss;
    t.cache <- (ci_idx, frames) :: t.cache;
    let slots = lru_slots t in
    if List.length t.cache > slots then begin
      t.stats.lru_evictions <-
        t.stats.lru_evictions + (List.length t.cache - slots);
      Telemetry.incr tm_chunk_evict;
      t.cache <- List.filteri (fun i _ -> i < slots) t.cache
    end
  end

(* Background inflate of chunk [j].  A corrupt chunk is left alone: the
   on-demand path will decode it again and raise {!Format_error} with
   frame context on the thread that actually asked for it, keeping
   error behavior identical to readahead = 0. *)
let prefetch_task t j () =
  match decode_chunk_raw t t.index.(j) t.chunks.(j) with
  | frames ->
    Mutex.lock t.lock;
    Hashtbl.remove t.inflight j;
    cache_insert t j frames;
    Hashtbl.replace t.prefetched j ();
    Condition.broadcast t.cv;
    Mutex.unlock t.lock
  | exception Format_error _ ->
    Mutex.lock t.lock;
    Hashtbl.remove t.inflight j;
    Condition.broadcast t.cv;
    Mutex.unlock t.lock

let reader_pool_unlocked t =
  match t.rpool with
  | Some p -> p
  | None ->
    let p =
      Pool.create ~jobs:t.opts.jobs
        ~queue_limit:(max 2 (2 * t.opts.readahead)) ()
    in
    t.rpool <- Some p;
    p

(* Queue background inflates for the [readahead] chunks after
   [served_idx].  Submission happens outside [t.lock]: with an inline
   (one-job) pool the task runs immediately and takes the lock itself. *)
let maybe_prefetch t served_idx =
  if t.opts.readahead > 0 then begin
    Mutex.lock t.lock;
    let n = Array.length t.index in
    let want = ref [] in
    for j = min (n - 1) (served_idx + t.opts.readahead) downto served_idx + 1
    do
      if (not (List.mem_assoc j t.cache)) && not (Hashtbl.mem t.inflight j)
      then begin
        Hashtbl.replace t.inflight j ();
        want := j :: !want
      end
    done;
    let pool = reader_pool_unlocked t in
    Mutex.unlock t.lock;
    List.iter (fun j -> ignore (Pool.submit pool (prefetch_task t j))) !want
  end

(* Fetch chunk [ci_idx] decoded, through the LRU.  If a readahead
   worker already has the chunk in flight, wait for it instead of
   inflating the same bytes twice. *)
let chunk_frames t ci_idx =
  let ra_on = t.opts.readahead > 0 in
  Mutex.lock t.lock;
  let rec get () =
    match List.assoc_opt ci_idx t.cache with
    | Some frames ->
      (* move to front *)
      t.stats.lru_hits <- t.stats.lru_hits + 1;
      Telemetry.incr tm_chunk_hit;
      if Hashtbl.mem t.prefetched ci_idx then begin
        Hashtbl.remove t.prefetched ci_idx;
        Telemetry.incr tm_prefetch_hit
      end;
      t.cache <- (ci_idx, frames) :: List.remove_assoc ci_idx t.cache;
      Mutex.unlock t.lock;
      frames
    | None when Hashtbl.mem t.inflight ci_idx ->
      Condition.wait t.cv t.lock;
      get ()
    | None ->
      (* Inflate on the critical path (a prefetch miss when readahead
         is on).  Decode outside the lock so concurrent prefetches keep
         landing. *)
      Mutex.unlock t.lock;
      let frames = decode_chunk_raw t t.index.(ci_idx) t.chunks.(ci_idx) in
      Mutex.lock t.lock;
      Hashtbl.remove t.prefetched ci_idx;
      if ra_on then Telemetry.incr tm_prefetch_miss;
      cache_insert t ci_idx frames;
      let frames =
        match List.assoc_opt ci_idx t.cache with
        | Some f -> f
        | None -> frames
      in
      Mutex.unlock t.lock;
      frames
  in
  let frames = get () in
  maybe_prefetch t ci_idx;
  frames

(* Binary search: the chunk containing frame [i]. *)
let chunk_of_frame t i =
  let lo = ref 0 and hi = ref (Array.length t.index - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.index.(mid).first_frame <= i then lo := mid else hi := mid - 1
  done;
  !lo

module Reader = struct
  type cursor = { t : t; mutable pos : int }

  let open_ t = { t; pos = 0 }

  let pos c = c.pos
  let length c = n_events c.t
  let at_end c = c.pos >= n_events c.t

  let seek c i =
    if i < 0 || i > n_events c.t then
      Fmt.invalid_arg "Trace.Reader.seek: %d out of range [0,%d]" i
        (n_events c.t);
    c.pos <- i

  let frame t i =
    if i < 0 || i >= n_events t then
      Fmt.invalid_arg "Trace.Reader.frame: %d out of range [0,%d)" i
        (n_events t);
    let ci_idx = chunk_of_frame t i in
    (chunk_frames t ci_idx).(i - t.index.(ci_idx).first_frame)

  let peek c = if at_end c then None else Some (frame c.t c.pos)

  let next c =
    match peek c with
    | None -> invalid_arg "Trace.Reader.next: at end of trace"
    | Some e ->
      c.pos <- c.pos + 1;
      e

  (* Fold over every frame of the trace, one chunk at a time.  Chunks
     pass through the LRU, so a whole-trace fold costs one decode per
     chunk and holds at most [cache_slots] of them. *)
  let fold f t acc =
    let acc = ref acc in
    Array.iteri
      (fun ci_idx ci ->
        let frames = chunk_frames t ci_idx in
        Array.iteri (fun j e -> acc := f (ci.first_frame + j) e !acc) frames)
      t.index;
    !acc

  let iter f t = fold (fun i e () -> f i e) t ()

  let to_array t =
    Array.init (n_events t) (fun i -> frame t i)

  (* Frame searches.  [kind_mask], when given, lets the index skip whole
     chunks containing no frame of the wanted kinds — those chunks are
     never inflated. *)
  let chunk_may_match ci = function
    | None -> true
    | Some mask -> ci.kinds land mask <> 0

  let find_from ?kind_mask t from p =
    let n = n_events t in
    let from = max from 0 in
    if from >= n then None
    else begin
      let result = ref None in
      let ci_idx = ref (chunk_of_frame t from) in
      while !result = None && !ci_idx < Array.length t.index do
        let ci = t.index.(!ci_idx) in
        if chunk_may_match ci kind_mask then begin
          let frames = chunk_frames t !ci_idx in
          let j = ref (max 0 (from - ci.first_frame)) in
          while !result = None && !j < ci.n_frames do
            if p frames.(!j) then result := Some (ci.first_frame + !j);
            incr j
          done
        end;
        incr ci_idx
      done;
      !result
    end

  let rfind_before ?kind_mask t before p =
    let n = n_events t in
    let start = min (before - 1) (n - 1) in
    if start < 0 then None
    else begin
      let result = ref None in
      let ci_idx = ref (chunk_of_frame t start) in
      while !result = None && !ci_idx >= 0 do
        let ci = t.index.(!ci_idx) in
        if chunk_may_match ci kind_mask then begin
          let frames = chunk_frames t !ci_idx in
          let j = ref (min (ci.n_frames - 1) (start - ci.first_frame)) in
          while !result = None && !j >= 0 do
            if p frames.(!j) then result := Some (ci.first_frame + !j);
            decr j
          done
        end;
        decr ci_idx
      done;
      !result
    end
end

(* Rebuild the chunk stream with every frame rewritten by [f], keeping
   chunk boundaries.  A testing/tooling device (trace surgery, tamper
   injection); stats carry over with the frame-stream byte counts
   recomputed. *)
let map_frames f t =
  let stats =
    { t.stats with
      raw_bytes = 0;
      compressed_bytes = 0;
      lru_hits = 0;
      lru_misses = 0;
      lru_evictions = 0 }
  in
  let remake ~index ~chunks =
    make_t ~index ~chunks ~compressed:t.compressed ~images:t.images
      ~files:t.files ~stats ~initial_exe:t.initial_exe ~opts:t.opts
  in
  let n_chunks = Array.length t.index in
  if n_chunks = 0 then remake ~index:t.index ~chunks:t.chunks
  else begin
  let chunks = Array.make n_chunks "" in
  let index = Array.make n_chunks t.index.(0) in
  let byte_offset = ref 0 in
  Array.iteri
    (fun ci_idx ci ->
      let frames = decode_chunk_raw t ci t.chunks.(ci_idx) in
      let kinds = ref 0 in
      let b = Codec.sink () in
      Array.iteri
        (fun j e ->
          let e' = f (ci.first_frame + j) e in
          kinds := !kinds lor Event.kind_bit e';
          Event.encode b e')
        frames;
      let raw = Buffer.contents b in
      stats.raw_bytes <- stats.raw_bytes + String.length raw;
      let stored = if t.compressed then Compress.deflate raw else raw in
      stats.compressed_bytes <- stats.compressed_bytes + String.length stored;
      chunks.(ci_idx) <- stored;
      index.(ci_idx) <-
        { ci with
          byte_offset = !byte_offset;
          stored_len = String.length stored;
          kinds = !kinds };
      byte_offset := !byte_offset + String.length stored)
    t.index;
  remake ~index ~chunks
  end

(* ---- host-filesystem persistence -------------------------------------

   A self-describing versioned binary format, written and read entirely
   with {!Codec} — no Marshal, so the file layout does not depend on the
   OCaml runtime:

     magic "RRTRACE2"          8 bytes
     payload length            8 bytes, little-endian
     payload:
       format version          uvarint
       compressed flag         bool
       initial exe             string
       stats                   9 uvarints
       chunk index             list of {first_frame; n_frames;
                                        byte_offset; stored_len; kinds}
       chunk stream            length-prefixed concatenated chunks
       files section           list of (path, bytes)
       images section          list of (path, image)

   Truncation is caught by the declared payload length, version skew by
   the magic/version fields, and index corruption by the bounds checks —
   all at open, without inflating a single chunk. *)

let magic = "RRTRACE2"
let magic_v1 = "RRTRACE1"
let format_version = 2

let put_chunk_info b ci =
  Codec.put_uvarint b ci.first_frame;
  Codec.put_uvarint b ci.n_frames;
  Codec.put_uvarint b ci.byte_offset;
  Codec.put_uvarint b ci.stored_len;
  Codec.put_uvarint b ci.kinds

let get_chunk_info s =
  let first_frame = Codec.get_uvarint s in
  let n_frames = Codec.get_uvarint s in
  let byte_offset = Codec.get_uvarint s in
  let stored_len = Codec.get_uvarint s in
  let kinds = Codec.get_uvarint s in
  { first_frame; n_frames; byte_offset; stored_len; kinds }

let put_stats b s =
  List.iter (Codec.put_uvarint b)
    [ s.n_events; s.raw_bytes; s.compressed_bytes; s.cloned_blocks;
      s.cloned_bytes; s.copied_file_bytes; s.n_chunks;
      s.n_buffered_syscalls; s.n_traced_syscalls ]

let get_stats s =
  let g () = Codec.get_uvarint s in
  let n_events = g () in
  let raw_bytes = g () in
  let compressed_bytes = g () in
  let cloned_blocks = g () in
  let cloned_bytes = g () in
  let copied_file_bytes = g () in
  let n_chunks = g () in
  let n_buffered_syscalls = g () in
  let n_traced_syscalls = g () in
  { n_events; raw_bytes; compressed_bytes; cloned_blocks; cloned_bytes;
    copied_file_bytes; n_chunks; n_buffered_syscalls; n_traced_syscalls;
    (* LRU traffic is runtime-only: a loaded trace starts cold. *)
    lru_hits = 0;
    lru_misses = 0;
    lru_evictions = 0 }

let save t path =
  let b = Codec.sink () in
  Codec.put_uvarint b format_version;
  Codec.put_bool b t.compressed;
  Codec.put_string b t.initial_exe;
  put_stats b t.stats;
  Codec.put_list b put_chunk_info (Array.to_list t.index);
  let stream_len =
    Array.fold_left (fun acc c -> acc + String.length c) 0 t.chunks
  in
  Codec.put_uvarint b stream_len;
  Array.iter (Buffer.add_string b) t.chunks;
  let assoc tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let by_path (a, _) (b, _) = compare (a : string) b in
  Codec.put_list b
    (fun b (p, data) ->
      Codec.put_string b p;
      Codec.put_string b data)
    (List.sort by_path (assoc t.files));
  Codec.put_list b
    (fun b (p, img) ->
      Codec.put_string b p;
      Image_codec.put_image b img)
    (List.sort by_path (assoc t.images));
  let payload = Buffer.contents b in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let len = Bytes.create 8 in
      Bytes.set_int64_le len 0 (Int64.of_int (String.length payload));
      output_bytes oc len;
      output_string oc payload)

let load ?(opts = default_opts) path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let read_exactly n what =
        try really_input_string ic n
        with End_of_file ->
          format_fail "%s: truncated trace file (while reading %s)" path what
      in
      let m = read_exactly (String.length magic) "magic" in
      if m = magic_v1 then
        format_fail
          "%s: trace format version 1 (Marshal-based) is no longer \
           supported; re-record"
          path;
      if m <> magic then format_fail "%s: not an rr trace file (bad magic)" path;
      let declared =
        Int64.to_int (Bytes.get_int64_le (Bytes.of_string (read_exactly 8 "length")) 0)
      in
      let remaining = in_channel_length ic - pos_in ic in
      if declared < 0 || remaining < declared then
        format_fail
          "%s: truncated trace file (payload declares %d bytes, file has %d)"
          path declared remaining;
      let payload = read_exactly declared "payload" in
      let s = Codec.source payload in
      try
        let version = Codec.get_uvarint s in
        if version <> format_version then
          format_fail "%s: trace format version %d, this build reads %d" path
            version format_version;
        let compressed = Codec.get_bool s in
        let initial_exe = Codec.get_string s in
        let stats = get_stats s in
        let index = Array.of_list (Codec.get_list s get_chunk_info) in
        let stream = Codec.get_string s in
        (* Index sanity — bounds, contiguity, frame accounting — checked
           here at open, instead of inflating every chunk to count. *)
        if Array.length index <> stats.n_chunks then
          format_fail "%s: chunk index length %d, stats claim %d" path
            (Array.length index) stats.n_chunks;
        let expected_off = ref 0 and expected_frame = ref 0 in
        Array.iter
          (fun ci ->
            if ci.byte_offset <> !expected_off then
              format_fail "%s: chunk stream gap at byte %d" path !expected_off;
            if ci.first_frame <> !expected_frame then
              format_fail "%s: chunk index gap at frame %d" path
                !expected_frame;
            if ci.byte_offset + ci.stored_len > String.length stream then
              format_fail "%s: chunk overruns the stored stream" path;
            expected_off := !expected_off + ci.stored_len;
            expected_frame := !expected_frame + ci.n_frames)
          index;
        if !expected_off <> String.length stream then
          format_fail "%s: %d trailing bytes in the chunk stream" path
            (String.length stream - !expected_off);
        if !expected_frame <> stats.n_events then
          format_fail "%s: index covers %d frames, stats claim %d" path
            !expected_frame stats.n_events;
        let chunks =
          Array.map (fun ci -> String.sub stream ci.byte_offset ci.stored_len)
            index
        in
        let files = Hashtbl.create 8 in
        Codec.get_list s (fun s ->
            let p = Codec.get_string s in
            Hashtbl.replace files p (Codec.get_string s))
        |> ignore;
        let images = Hashtbl.create 8 in
        Codec.get_list s (fun s ->
            let p = Codec.get_string s in
            Hashtbl.replace images p (Image_codec.get_image s))
        |> ignore;
        make_t ~index ~chunks ~compressed ~images ~files ~stats ~initial_exe
          ~opts
      with Codec.Corrupt msg ->
        format_fail "%s: corrupt trace file (%s)" path msg)

let pp_stats ppf s =
  Fmt.pf ppf
    "events=%d raw=%dB compressed=%dB (%.2fx) cloned=%dB (%d blocks) \
     copied=%dB buffered-syscalls=%d traced-syscalls=%d lru=%d/%d \
     hit/miss (%d evicted)"
    s.n_events s.raw_bytes s.compressed_bytes
    (Compress.ratio ~original:s.raw_bytes ~compressed:s.compressed_bytes)
    s.cloned_bytes s.cloned_blocks s.copied_file_bytes s.n_buffered_syscalls
    s.n_traced_syscalls s.lru_hits s.lru_misses s.lru_evictions
