(** Chunk-indexed trace store.

    General frame data is serialized and deflate-compressed in chunks —
    the "all other trace data" stream of paper §2.7/Table 2.  Memory-
    mapped executables and block-cloned file data bypass the compressor:
    they are snapshotted by hard-link/FICLONE-style cloning and accounted
    separately.

    A trace holds only the stored chunk stream plus a per-chunk index;
    frames are never held decoded in bulk.  All frame access goes
    through {!Reader}, which inflates one chunk at a time behind a small
    LRU, so opening a trace is O(index) and a seek costs
    O(log n_chunks + one chunk decode).

    The multicore pipeline is selected per trace via {!opts}: [jobs]
    worker domains deflate sealed chunks in the background while the
    writer keeps recording (output is byte-identical to the serial
    path), and [readahead] chunks are prefetched+inflated ahead of the
    reader so sequential replay rarely inflates on the critical path.
    The decoded-chunk LRU is domain-safe (a per-trace mutex).  The
    defaults ([jobs = 1], [readahead = 0]) are the fully serial,
    domain-free paths. *)

type stats = {
  mutable n_events : int;
  mutable raw_bytes : int;
  mutable compressed_bytes : int;
  mutable cloned_blocks : int;
  mutable cloned_bytes : int;
  mutable copied_file_bytes : int; (* bytes copied when cloning is off *)
  mutable n_chunks : int;
  mutable n_buffered_syscalls : int;
  mutable n_traced_syscalls : int;
  mutable lru_hits : int; (* Reader chunk-LRU hits (runtime-only) *)
  mutable lru_misses : int; (* chunks inflated+decoded on demand *)
  mutable lru_evictions : int; (* decoded chunks dropped from the LRU *)
}

(** Pipeline options (see the module preamble). *)
type opts = {
  jobs : int; (** worker domains for chunk deflate / readahead (≥ 1) *)
  readahead : int; (** chunks prefetched past the last read (0 = off) *)
}

val default_opts : opts
(** [{jobs = 1; readahead = 0}]: the serial paths, no domains. *)

val make_opts : ?jobs:int -> ?readahead:int -> unit -> opts
(** [default_opts] with the given fields overridden (clamped to
    [jobs ≥ 1], [readahead ≥ 0]). *)

type chunk_info = {
  first_frame : int; (** trace index of the chunk's first frame *)
  n_frames : int;
  byte_offset : int; (** offset into the concatenated chunk stream *)
  stored_len : int; (** stored (compressed) size in bytes *)
  kinds : int; (** OR of {!Event.kind_bit} over the chunk's frames *)
}

type t

module Writer : sig
  type w

  val create :
    ?compress:bool ->
    ?chunk_limit:int ->
    ?opts:opts ->
    initial_exe:string ->
    unit ->
    w
  (** [chunk_limit] (default 64 KiB) is the pending-buffer size that
      triggers a chunk flush — with its index entry — as frames stream
      in; tests shrink it to force multi-chunk traces from small
      workloads.  With [opts.jobs > 1] each sealed chunk is deflated on
      a worker domain (bounded queue: the writer blocks rather than
      outrun the compressors); chunks are collected in submission order
      at {!finish}, so the file is byte-identical to the serial one. *)

  val event : w -> Event.t -> int
  (** Append one frame; returns its serialized size (cost charging). *)

  val add_image : w -> path:string -> Image.t -> unit
  (** Snapshot an executable by hard link/clone: accounting only. *)

  val add_file : w -> path:string -> cloned:bool -> string -> unit
  (** Snapshot file bytes; re-adding a path (the growing per-task
      cloned-data file) accounts only the growth. *)

  val find_file : w -> string -> string option
  val finish : w -> t
end

(** Cursor-based frame access — the only way to read frames. *)
module Reader : sig
  type cursor
  (** A position in a trace.  Cursors are cheap; all cursors over one
      trace share its chunk LRU. *)

  val open_ : t -> cursor
  val pos : cursor -> int
  val length : cursor -> int
  val at_end : cursor -> bool

  val peek : cursor -> Event.t option
  (** The frame at the cursor, without advancing. *)

  val next : cursor -> Event.t
  (** The frame at the cursor, advancing past it.  Raises
      [Invalid_argument] at end of trace. *)

  val seek : cursor -> int -> unit
  (** [seek c i] repositions to frame [i] (0 ≤ i ≤ length; positioning
      at [length] leaves the cursor at end).  Decoding happens at the
      next access, not here. *)

  val frame : t -> int -> Event.t
  (** Random access to one frame: binary-search the chunk index, decode
      (or LRU-hit) the covering chunk. *)

  val fold : (int -> Event.t -> 'a -> 'a) -> t -> 'a -> 'a
  (** Fold over every frame in order, decoding one chunk at a time. *)

  val iter : (int -> Event.t -> unit) -> t -> unit

  val to_array : t -> Event.t array
  (** Decode the whole trace into a fresh array — for tests and tools
      that genuinely need bulk access; replay does not. *)

  val find_from :
    ?kind_mask:int -> t -> int -> (Event.t -> bool) -> int option
  (** [find_from t i p] is the first frame index ≥ [i] satisfying [p].
      With [kind_mask] (an OR of {!Event.kind_bit}), chunks whose kind
      summary misses the mask are skipped without being inflated. *)

  val rfind_before :
    ?kind_mask:int -> t -> int -> (Event.t -> bool) -> int option
  (** [rfind_before t i p] is the last frame index < [i] satisfying
      [p]. *)
end

val n_events : t -> int
val stats : t -> stats
val chunk_index : t -> chunk_info array

val decoded_chunks : t -> int
(** Number of chunks inflated+decoded so far (LRU misses, including
    background readahead decodes) — lets tests verify that loading and
    partial reads stay lazy. *)

val get_opts : t -> opts

val set_opts : t -> opts -> unit
(** Reconfigure the pipeline of a built trace (e.g. turn on readahead
    before replaying a loaded trace).  Frame contents are unaffected:
    readahead only changes {e when} chunks are inflated, never what the
    reader returns. *)

val image : t -> string -> Image.t
(** Raises [Invalid_argument] for unknown paths. *)

val file : t -> string -> string

val map_frames : (int -> Event.t -> Event.t) -> t -> t
(** Rewrite every frame through [f], preserving chunk boundaries and
    rebuilding the index.  A trace-surgery device for tests and tools
    (e.g. tamper injection for divergence checks). *)

exception Format_error of string
(** Raised by {!load} on bad magic, version skew, truncation, or a
    corrupt index/payload — and by {!Reader} accessors when a lazily
    decoded chunk turns out corrupt (laziness defers chunk validation
    from open to first access). *)

val save : t -> string -> unit
(** Persist the self-describing versioned binary format: magic
    ["RRTRACE2"], declared payload length, then a Codec-encoded header,
    chunk index, chunk stream, files and images sections.  No Marshal
    anywhere in the layout. *)

val load : ?opts:opts -> string -> t
(** Open a saved trace: parse header and index, slice the stored
    chunks, validate structure — without inflating any chunk.  [opts]
    configures the reader pipeline of the returned trace. *)

val pp_stats : stats Fmt.t
