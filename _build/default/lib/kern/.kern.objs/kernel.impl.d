lib/kern/kernel.ml: Addr_space Array Bpf Buffer Bytes Chan Char Cost Cpu Entropy Errno Fmt Hashtbl Image Insn List Logs Mem Perf_event Pmu Signals String Sysno Task Vfs
