(** The recorder's scheduler (paper §2.2): one task at a time, strict
    priorities, round-robin among equals, preemption budgets in RCBs.
    Chaos mode (paper §8) perturbs priorities and timeslices randomly to
    surface races; its randomness comes from recording-side entropy, and
    every decision is recorded, so replay is unaffected. *)

type t = {
  mutable order : int list; (* round-robin order of tids *)
  base_timeslice_rcbs : int;
  chaos : bool;
  entropy : Entropy.t;
  chaos_prio : (int, int) Hashtbl.t;
  mutable picks_until_reshuffle : int;
}

val create : ?timeslice_rcbs:int -> ?chaos:bool -> seed:int -> unit -> t

val add_task : t -> int -> unit
(** Register a tid at the back of the round-robin order. *)

val prefer : t -> int -> unit
(** Move a tid to the front of the round-robin order so the next pick in
    its priority class chooses it (used to run a fresh clone child
    first). *)

val remove_task : t -> int -> unit

val effective_priority : t -> int -> int -> int
(** [effective_priority t tid base] is [base], possibly perturbed by a
    chaos-mode override. *)

val reshuffle : t -> unit
(** Chaos mode: draw fresh random priority overrides. *)

val pick : t -> runnable:(int -> bool) -> priority:(int -> int) -> int option
(** Choose the next task among [runnable] tids: best (lowest) effective
    priority, round-robin within the class.  Rotates the chosen task to
    the back. *)

val timeslice : t -> int
(** The RCB budget for the next slice (randomized under chaos). *)
