(* The emergency debugger (paper §6.2): when recording or replay fails,
   dump enough tracee state to diagnose the problem in the field —
   register and memory state, stop status, pending signals, counters.
   (Real rr starts a gdb server; we render a report.) *)

module A = Addr_space
module T = Task
module K = Kernel

let pp_state ppf (t : T.t) =
  match t.T.state with
  | T.Runnable -> Fmt.string ppf "runnable"
  | T.Dead -> Fmt.pf ppf "dead(status=%d)" t.T.exit_status
  | T.Stopped -> (
    match t.T.last_stop with
    | Some stop -> Fmt.pf ppf "stopped(%a)" T.pp_stop stop
    | None -> Fmt.string ppf "parked")
  | T.Blocked cond ->
    let c =
      match cond with
      | T.W_pipe_read _ -> "pipe-read"
      | T.W_pipe_write _ -> "pipe-write"
      | T.W_sock_read _ -> "sock-read"
      | T.W_futex (_, a) -> Printf.sprintf "futex@%#x" a
      | T.W_child pid -> Printf.sprintf "wait4(%d)" pid
      | T.W_sleep d -> Printf.sprintf "sleep-until(%d)" d
      | T.W_poll qs -> Printf.sprintf "poll(%d objects)" (List.length qs)
    in
    Fmt.pf ppf "blocked(%s%s)" c
      (match t.T.in_syscall with
      | Some ss -> ", in " ^ Sysno.name ss.T.nr
      | None -> "")

let pp_task ppf (t : T.t) =
  Fmt.pf ppf "task %d (pid %d, %s): %a@," t.T.tid t.T.proc.T.pid
    t.T.proc.T.cmd pp_state t;
  Fmt.pf ppf "  pc=%#x rcb=%d insns=%d core=%d mask=%#x@," t.T.cpu.Cpu.pc
    t.T.cpu.Cpu.pmu.Pmu.rcb t.T.cpu.Cpu.pmu.Pmu.insns t.T.cpu.Cpu.core
    t.T.sigmask;
  Fmt.pf ppf "  regs:";
  Array.iteri
    (fun i v -> if v <> 0 then Fmt.pf ppf " r%d=%#x" i v)
    t.T.cpu.Cpu.regs;
  Fmt.pf ppf "@,";
  (match A.text_get t.T.cpu.Cpu.space t.T.cpu.Cpu.pc with
  | Some insn -> Fmt.pf ppf "  insn at pc: %a@," Insn.pp insn
  | None -> Fmt.pf ppf "  no instruction at pc@,");
  if t.T.pending <> [] then
    Fmt.pf ppf "  pending: %a@," (Fmt.list ~sep:Fmt.sp Signals.pp_info) t.T.pending;
  let regions = List.length (A.regions t.T.cpu.Cpu.space) in
  Fmt.pf ppf "  space #%d: %d regions, %d pages, %d text slots@,"
    t.T.cpu.Cpu.space.A.id regions
    (Hashtbl.length t.T.cpu.Cpu.space.A.pages)
    (Hashtbl.length t.T.cpu.Cpu.space.A.text)

let pp ppf (k : K.t) =
  Fmt.pf ppf "@[<v>=== emergency state dump (paper §6.2) ===@,";
  Fmt.pf ppf "clock=%d syscalls=%d stops=%d execs=%d stop-queue=[%a]@,"
    (K.now k) k.K.syscall_count k.K.trace_stop_count k.K.exec_count
    Fmt.(list ~sep:comma int)
    k.K.stop_queue;
  List.iter (pp_task ppf)
    (List.sort (fun a b -> compare a.T.tid b.T.tid) (K.all_tasks k));
  (* What led up to the failure: the telemetry event ring's tail. *)
  (match Telemetry.recent () with
  | [] -> ()
  | events ->
    Fmt.pf ppf "--- telemetry: last %d events ---@," (List.length events);
    List.iter (fun e -> Fmt.pf ppf "  %a@," Telemetry.pp_event e) events);
  Fmt.pf ppf "=== end dump ===@]"

let dump ?(msg = "") k =
  Fmt.str "%s%s%a" msg (if msg = "" then "" else "\n") pp k
