(* Reverse-execution debugging: find who corrupted a value.

     dune exec examples/reverse_debug.exe

   A program computes a checksum into a memory cell, but one of its
   phases scribbles over it.  With a conventional debugger you would see
   the corruption only at the end; with record and replay you ask the
   trace "when did this cell last change?" and jump there — backwards —
   in one step (the paper's headline application, §1/§6.1). *)

module K = Kernel
module G = Guest

let ( @. ) = List.append

let cell = 0x120000 (* the checksum the program maintains *)

let build k =
  Vfs.mkdir_p (K.vfs k) "/bin";
  let b = G.create () in
  let phase v work =
    G.compute_loop b ~n:work
    @. [ Asm.movi 9 cell; Asm.movi 10 v; Asm.store 10 9 0 ]
    @. G.sc Sysno.getpid [] (* a syscall gives each phase a trace frame *)
  in
  G.emit b
    (phase 100 300
    @. phase 200 300
    @. phase 300 300
    (* the buggy phase: "accidentally" writes through a stale pointer *)
    @. G.compute_loop b ~n:300
    @. [ Asm.movi 9 (cell - 8); Asm.movi 10 0xbad; Asm.store 10 9 8 ]
    @. G.sc Sysno.gettimeofday [ G.imm (cell + 16) ]
    @. [ Asm.movi 9 cell; Asm.load 10 9 0; Asm.movr 1 10 ]
    @. G.sc Sysno.exit_group [ G.reg 1 ]);
  K.install_image k ~path:"/bin/buggy" (G.build b ~name:"buggy" ())

let () =
  (* Record once (the bug reproduces deterministically from the trace,
     however hard it was to catch live). *)
  let opts = Recorder.make_opts ~intercept:false () in
  let trace, stats, _ = Recorder.record ~opts ~setup:build ~exe:"/bin/buggy" () in
  Fmt.pr "program exited with %a (expected 300 mod 256 = 44; 0xbad mod 256 = 173 means corruption)@."
    Fmt.(option int)
    stats.Recorder.exit_status;

  let d = Debugger.create ~opts:(Debugger.make_opts ~checkpoint_every:4 ()) trace in
  Debugger.seek d (Debugger.n_events d);
  Fmt.pr "replayed %d frames; %d checkpoints along the way@." (Debugger.pos d)
    (Debugger.checkpoints_taken d);

  (* Reverse watchpoint: when did [cell] last change? *)
  let root =
    match Trace.Reader.frame trace 0 with
    | Event.E_exec { tid; _ } -> tid
    | _ -> assert false
  in
  (match Debugger.Query.last_write d ~tid:root ~addr:cell ~len:8 with
  | Error e -> Fmt.pr "query failed: %a@." Debugger.Query.pp_error e
  | Ok None -> Fmt.pr "the cell never changed?!@."
  | Ok (Some frame) ->
    Fmt.pr "the final write to %#x happened during frame %d: %a@." cell frame
      Event.pp (Trace.Reader.frame trace frame);
    (* Travel to just before and just after the culprit frame. *)
    Debugger.seek d frame;
    Fmt.pr "  value before frame %d: %#x@." frame
      (Debugger.read_word d root cell);
    Debugger.seek d (frame + 1);
    Fmt.pr "  value after  frame %d: %#x@." frame
      (Debugger.read_word d root cell);
    Fmt.pr
      "the write preceding that frame's syscall is the scribble — a \
       conventional forward debugger would have had to trap every write \
       to find it.@.");
  Fmt.pr "checkpoints restored during the hunt: %d@."
    (Debugger.checkpoints_restored d)
