lib/rr/debugger.ml: Addr_space Array Bytes Cpu Event Fmt Kernel List Replayer Task Trace
