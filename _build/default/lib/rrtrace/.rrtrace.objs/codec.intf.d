lib/rrtrace/codec.mli: Buffer
