test/test_workloads.ml: Alcotest Array Event Fmt Instrument Printf QCheck QCheck_alcotest Recorder Replayer Trace Wl_cp Wl_htmltest Wl_make Wl_octane Wl_samba Workload
