(* Trace anatomy: what actually goes into an rr-style recording.

     dune exec examples/trace_anatomy.exe

   Records the cp workload and dissects the trace: the frame kinds, the
   syscallbuf flush contents, the compression of general data, and the
   near-free cloned snapshots of file data (paper §2.7, §3). *)

let () =
  let w = Wl_cp.make ~params:{ Wl_cp.files = 3; file_kb = 64 } () in
  let recd, _ = Workload.record w in
  let trace = recd.Workload.trace in

  Fmt.pr "== frame census ==@.";
  let census = Hashtbl.create 16 in
  Trace.Reader.iter
    (fun _ e ->
      let key =
        match e with
        | Event.E_syscall { nr; _ } -> "syscall " ^ Sysno.name nr
        | e -> List.hd (String.split_on_char ':' (Event.kind_name e))
      in
      Hashtbl.replace census key
        (1 + Option.value ~default:0 (Hashtbl.find_opt census key)))
    trace;
  Hashtbl.fold (fun k v acc -> (v, k) :: acc) census []
  |> List.sort compare |> List.rev
  |> List.iter (fun (v, k) -> Fmt.pr "  %4d  %s@." v k);

  Fmt.pr "@.== a syscallbuf flush, unpacked (paper §3) ==@.";
  let flush_mask = Event.kind_bit (Event.E_buf_flush { tid = 0; records = [] }) in
  (match
     Trace.Reader.find_from ~kind_mask:flush_mask trace 0 (function
       | Event.E_buf_flush { records; _ } -> List.length records >= 3
       | _ -> false)
   with
  | Some i -> (
    match Trace.Reader.frame trace i with
    | Event.E_buf_flush { tid; records } ->
    Fmt.pr "  task %d flushed %d buffered syscalls:@." tid
      (List.length records);
    List.iteri
      (fun i r ->
        if i < 8 then
          Fmt.pr "    %-12s -> %-6d %s%s@."
            (Sysno.name r.Event.br_nr)
            r.Event.br_result
            (match r.Event.br_clone with
            | Some c ->
              Printf.sprintf "[%d bytes via cloned blocks @%s+%d]"
                c.Event.cr_len c.Event.cr_path c.Event.cr_off
            | None ->
              Printf.sprintf "[%d bytes inline]"
                (List.fold_left
                   (fun a w -> a + String.length w.Event.data)
                   0 r.Event.br_writes))
            (if r.Event.br_aborted then " (desched abort)" else ""))
      records
    | _ -> assert false)
  | None -> Fmt.pr "  (no large flush found)@.");

  Fmt.pr "@.== storage breakdown (paper §2.7 / Table 2) ==@.";
  let st = Trace.stats trace in
  Fmt.pr "  general frame data : %6d B raw -> %6d B deflated (%.2fx)@."
    st.Trace.raw_bytes st.Trace.compressed_bytes
    (Compress.ratio ~original:st.Trace.raw_bytes
       ~compressed:st.Trace.compressed_bytes);
  Fmt.pr "  cloned snapshots   : %6d B in %d blocks — no bytes copied@."
    st.Trace.cloned_bytes st.Trace.cloned_blocks;
  Fmt.pr "  buffered syscalls  : %d   traced syscalls: %d@."
    st.Trace.n_buffered_syscalls st.Trace.n_traced_syscalls;

  Fmt.pr "@.== lazy chunk store ==@.";
  Fmt.pr "  %d frames across %d chunks; the census above inflated %d of \
          them (LRU keeps a handful live)@."
    (Trace.n_events trace)
    (Array.length (Trace.chunk_index trace))
    (Trace.decoded_chunks trace);

  Fmt.pr "@.== and it replays ==@.";
  let rep, _ = Workload.replay recd in
  Fmt.pr "  replay exit %a after %d frames@."
    Fmt.(option int)
    rep.Workload.rep_stats.Replayer.exit_status
    rep.Workload.rep_stats.Replayer.events_applied
