(** Codec serialization for executable images cloned into a trace.

    Keeps trace files self-describing and independent of the OCaml
    runtime's Marshal layout: every instruction is a tagged varint
    record, so a trace written by one build loads in any other. *)

val put_insn : Codec.sink -> Insn.t -> unit
val get_insn : Codec.source -> Insn.t
(** Raises {!Codec.Corrupt} on unknown tags. *)

val put_program : Codec.sink -> Asm.program -> unit
val get_program : Codec.source -> Asm.program

val put_image : Codec.sink -> Image.t -> unit
val get_image : Codec.source -> Image.t
