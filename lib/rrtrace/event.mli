(** Trace frames: one constructor per kind of nondeterministic input
    crossing the recording boundary (paper §2.1) — syscall results and
    memory effects, asynchronous-event execution points (RCB + registers
    + a word of stack, §2.4.1), signal-handler frames (§2.3.9),
    address-space events replay must re-perform (§2.3.8), syscall-site
    patches (§3.1), syscallbuf flushes (§3) and memory checksums (§6.2).

    [regs] is the 16 general-purpose registers with the program counter
    appended (17 slots, see {!pc_slot}). *)

type regs = int array

val pc_slot : int

type exec_point = { rcb : int; point_regs : regs; stack_extra : int }
(** A unique execution point: deterministic retired-conditional-branch
    count, full registers, and one word of stack for the pathological
    same-registers case (paper §2.4.1). *)

type mem_write = { addr : int; data : string }

type syscall_kind =
  | K_emulate (** replay applies recorded effects; nothing executes *)
  | K_perform (** replay re-executes it (munmap, mprotect) *)

type sig_disposition =
  | Sr_handler of {
      frame_addr : int;
      frame_data : string;
      regs_after : regs;
      mask_after : int;
    }
  | Sr_fatal of int
  | Sr_ignored of regs
      (** no handler ran; registers after the kernel's restart rewind *)

type mmap_source =
  | Src_zero
  | Src_trace_file of string (** path in the trace's cloned-file store *)
  | Src_inline of string

type clone_ref = {
  cr_path : string; (** per-thread cloned-data file in the trace (§3.9) *)
  cr_off : int;
  cr_addr : int;
  cr_len : int;
}

type buf_record = {
  br_nr : int;
  br_result : int;
  br_writes : mem_write list;
  br_clone : clone_ref option;
  br_aborted : bool; (** desched fired; completed as a traced syscall *)
}

type t =
  | E_syscall of {
      tid : int;
      nr : int;
      site : int;
      writable_site : bool; (** replay must not breakpoint here (§2.3.7) *)
      via_abort : bool; (** reached through a desched abort (§3.3) *)
      regs_after : regs;
      writes : mem_write list;
      kind : syscall_kind;
    }
  | E_clone of {
      parent : int;
      child : int;
      flags : int;
      child_sp : int;
      parent_regs_after : regs;
      child_regs : regs;
    }
  | E_exec of { tid : int; image_ref : string; regs_after : regs }
  | E_mmap of {
      tid : int;
      addr : int;
      len : int;
      prot : int;
      shared : bool;
      source : mmap_source;
      regs_after : regs;
    }
  | E_signal of {
      tid : int;
      signo : int;
      point : exec_point;
      disposition : sig_disposition;
    }
  | E_sched of { tid : int; point : exec_point }
  | E_insn_trap of { tid : int; reg : int; value : int }
  | E_patch of { tid : int; site : int }
  | E_buf_flush of { tid : int; records : buf_record list }
  | E_syscall_enter of {
      tid : int;
      nr : int;
      site : int;
      writable_site : bool;
      via_abort : bool;
    }
      (** the task entered a syscall that then blocked; other tasks'
          frames may precede its completion frame *)
  | E_checksum of { tid : int; value : int }
  | E_exit of { tid : int; status : int }
  | E_rr_setup of {
      tid : int;
      rr_page : int;
      locals : int;
      scratch : int;
      buf : int;
      buf_len : int;
    }

val tid_of : t -> int

val frame_pc : t -> int option
(** The program counter a frame's recorded registers land on — the
    breakpoint-match key for the debugger and the per-pc trace index.
    [None] for frames with no register image (flushes, patches,
    bookkeeping). *)

(** {1 Frame codec}

    Two event encodings share the frame schema; the trace container's
    header says which one its chunks use.  v1 stores each register
    image as a length-prefixed int array; v2 delta-codes it against
    the same task's previous image within the chunk (a 17-bit change
    mask plus one zigzag delta per changed slot).  Both directions
    thread an {!ectx}, which carries the version and the per-task
    delta state; {!reset_ectx} at every chunk boundary keeps chunks
    independently decodable.  v1 contexts are stateless, so resetting
    is always safe. *)

type ectx

val ectx : ?version:int -> unit -> ectx
(** A fresh codec context.  [version] is 1 (default) or 2; anything
    else raises [Invalid_argument]. *)

val ectx_version : ectx -> int
val reset_ectx : ectx -> unit

val encode : ectx -> Codec.sink -> t -> unit
val decode : ectx -> Codec.source -> t

val put_buf_record : Codec.sink -> buf_record -> unit
val get_buf_record : Codec.source -> buf_record
(** Syscallbuf record codec, exposed for checkpoint serialization
    (pending flush batches are part of a snapshot). *)

val num_kinds : int

val kind_id : t -> int
(** Stable id (0..[num_kinds]-1) of a frame's constructor — the same tag
    the chunk encoding uses. *)

val kind_bit : t -> int
(** [1 lsl kind_id e]; chunk-index kind summaries are ORs of these. *)

val kind_name : t -> string
val pp : t Fmt.t
