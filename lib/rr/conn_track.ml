(* Connection tracking over the recorded event stream (DESIGN.md §4k).

   Pure observation: the tracker folds over frames (live, via the
   recorder's on_event hook, or offline over a loaded trace) and
   assigns each frame to the connection owning its task.  All
   connection-key derivation — reading datagram source ports out of
   recvfrom frames — lives here and nowhere else (check_format.sh). *)

module E = Event

let tm_frames_tagged = Telemetry.counter "shard.frames_tagged"
let tm_requests = Telemetry.counter "serve.requests"

type conn_state = {
  cs_conn : int;
  cs_client_port : int;
  mutable cs_client_tid : int;
  mutable cs_worker_tid : int;
  mutable cs_frames : int;
  mutable cs_requests : int;
}

type info = {
  conn : int;
  client_port : int;
  client_tid : int;
  worker_tid : int;
  frames : int;
  requests : int;
}

type t = {
  own_port : (int, int) Hashtbl.t; (* tid -> port it bound *)
  port_task : (int, int) Hashtbl.t; (* port -> binding tid *)
  conn_of : (int, int) Hashtbl.t; (* tid -> connection id *)
  port_conn : (int, int) Hashtbl.t; (* client port -> connection id *)
  pending : (int, int) Hashtbl.t; (* tid -> conn its next fork inherits *)
  conns : (int, conn_state) Hashtbl.t;
  untagged : (int, int list ref) Hashtbl.t;
      (* tid -> control-tagged frame indices, for retroactive retag *)
  mutable next_id : int;
  mutable tag_arr : int array;
  mutable n : int;
}

let create () =
  { own_port = Hashtbl.create 16;
    port_task = Hashtbl.create 16;
    conn_of = Hashtbl.create 16;
    port_conn = Hashtbl.create 16;
    pending = Hashtbl.create 4;
    conns = Hashtbl.create 16;
    untagged = Hashtbl.create 16;
    next_id = 1;
    tag_arr = Array.make 256 0;
    n = 0 }

let conn_of t tid = Option.value ~default:0 (Hashtbl.find_opt t.conn_of tid)

(* Recorded source-address writes are 8 bytes, little-endian. *)
let le64 s =
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code s.[i]
  done;
  !v

(* The peer's port out of a traced recvfrom frame: the kernel wrote it
   as a u64 at the src-address argument (r4), and the recorder logged
   that write verbatim. *)
let src_of_traced ~regs_after ~writes =
  let src_addr = regs_after.(4) in
  if regs_after.(0) < 0 || src_addr = 0 then None
  else
    List.find_map
      (fun { E.addr; data } ->
        if addr = src_addr && String.length data = 8 then Some (le64 data)
        else None)
      writes

(* Buffered recvfrom records carry no registers; the src-address write
   is the trailing 8-byte write of the record (payloads are never 8
   bytes in the serve workload, and non-datagram buffered reads have no
   trailing u64 companion write). *)
let src_of_buffered (br : E.buf_record) =
  if br.E.br_aborted || br.E.br_result < 0 then None
  else
    List.fold_left
      (fun acc { E.data; _ } ->
        if String.length data = 8 then Some (le64 data) else acc)
      None br.E.br_writes

let note_bind t ~tid ~port =
  Hashtbl.replace t.own_port tid port;
  Hashtbl.replace t.port_task port tid

(* Retroactively move one frame from control to [conn]. *)
let retag t i conn cs =
  if t.tag_arr.(i) = 0 then begin
    t.tag_arr.(i) <- conn;
    cs.cs_frames <- cs.cs_frames + 1;
    Telemetry.incr tm_frames_tagged
  end

(* A task just assigned to [conn] retroactively owns its earlier
   control-tagged frames: they ran on this task alone, and a shard that
   drops them never schedules the task at all — so no other
   connection's shard needs them.  The clone frame that created the
   task is NOT retagged: it executes on the (shared) parent, whose
   replayed frame stream must stay intact in every shard.  Likewise
   frames of still-shared tasks — the accept loop, the load generator —
   are never retagged. *)
let adopt_task t ~tid ~conn cs =
  match Hashtbl.find_opt t.untagged tid with
  | Some idxs ->
    List.iter (fun i -> retag t i conn cs) !idxs;
    Hashtbl.remove t.untagged tid
  | None -> ()

(* A recvfrom observed on task [tid] with source port [src]. *)
let note_recv t ~tid ~src =
  if src <> 0 then begin
    match Hashtbl.find_opt t.conn_of tid with
    | Some c ->
      (* Connection traffic; worker-side receives are the requests. *)
      (match Hashtbl.find_opt t.conns c with
      | Some cs when cs.cs_worker_tid = tid ->
        cs.cs_requests <- cs.cs_requests + 1;
        Telemetry.incr tm_requests
      | _ -> ())
    | None ->
      if not (Hashtbl.mem t.port_conn src) then begin
        (* Accept event: a control task heard from a never-seen peer
           port.  Open the connection, arm the accept loop's next fork
           to inherit it, and retroactively assign the peer task. *)
        let c = t.next_id in
        t.next_id <- c + 1;
        Hashtbl.replace t.port_conn src c;
        let cs =
          { cs_conn = c; cs_client_port = src; cs_client_tid = -1;
            cs_worker_tid = -1; cs_frames = 0; cs_requests = 0 }
        in
        Hashtbl.replace t.conns c cs;
        Hashtbl.replace t.pending tid c;
        match Hashtbl.find_opt t.port_task src with
        | Some client ->
          Hashtbl.replace t.conn_of client c;
          cs.cs_client_tid <- client;
          adopt_task t ~tid:client ~conn:c cs
        | None -> ()
      end
  end

let note_clone t ~parent ~child =
  match Hashtbl.find_opt t.conn_of parent with
  | Some c -> Hashtbl.replace t.conn_of child c
  | None -> (
    match Hashtbl.find_opt t.pending parent with
    | Some c ->
      Hashtbl.remove t.pending parent;
      Hashtbl.replace t.conn_of child c;
      (match Hashtbl.find_opt t.conns c with
      | Some cs -> cs.cs_worker_tid <- child
      | None -> ())
    | None -> ())

let push_tag t tag =
  if t.n = Array.length t.tag_arr then begin
    let bigger = Array.make (2 * t.n) 0 in
    Array.blit t.tag_arr 0 bigger 0 t.n;
    t.tag_arr <- bigger
  end;
  t.tag_arr.(t.n) <- tag;
  t.n <- t.n + 1;
  if tag <> 0 then begin
    Telemetry.incr tm_frames_tagged;
    match Hashtbl.find_opt t.conns tag with
    | Some cs -> cs.cs_frames <- cs.cs_frames + 1
    | None -> ()
  end

let observe t e =
  (* The tag reflects ownership on entry to the frame — except that a
     task adopted by a connection (the client at accept time, the worker
     at its clone) retroactively takes its earlier frames with it; see
     [adopt_task].  The accept recvfrom itself stays a control frame:
     it runs on the shared accept-loop task. *)
  let tid = E.tid_of e in
  push_tag t (conn_of t tid);
  (if t.tag_arr.(t.n - 1) = 0 then
     let idxs =
       match Hashtbl.find_opt t.untagged tid with
       | Some r -> r
       | None ->
         let r = ref [] in
         Hashtbl.replace t.untagged tid r;
         r
     in
     idxs := (t.n - 1) :: !idxs);
  match e with
  | E.E_syscall { tid; nr; regs_after; writes; _ } ->
    if nr = Sysno.bind && regs_after.(0) = 0 then
      note_bind t ~tid ~port:regs_after.(2)
    else if nr = Sysno.recvfrom then (
      match src_of_traced ~regs_after ~writes with
      | Some src -> note_recv t ~tid ~src
      | None -> ())
  | E.E_buf_flush { tid; records } ->
    List.iter
      (fun br ->
        if br.E.br_nr = Sysno.recvfrom then
          match src_of_buffered br with
          | Some src -> note_recv t ~tid ~src
          | None -> ())
      records
  | E.E_clone { parent; child; _ } -> note_clone t ~parent ~child
  | _ -> ()

let n_frames t = t.n
let tags t = Array.sub t.tag_arr 0 t.n

let tag t i =
  if i < 0 || i >= t.n then invalid_arg "Conn_track.tag";
  t.tag_arr.(i)

let connections t =
  Hashtbl.fold (fun _ cs acc -> cs :: acc) t.conns []
  |> List.sort (fun a b -> compare a.cs_conn b.cs_conn)
  |> List.map (fun cs ->
         { conn = cs.cs_conn; client_port = cs.cs_client_port;
           client_tid = cs.cs_client_tid; worker_tid = cs.cs_worker_tid;
           frames = cs.cs_frames; requests = cs.cs_requests })

let requests t =
  Hashtbl.fold (fun _ cs acc -> acc + cs.cs_requests) t.conns 0

let derive trace =
  let t = create () in
  Trace.Reader.iter (fun _ e -> observe t e) trace;
  t
