(** The system-call model (paper §2.3.6): for every supported syscall,
    which user memory it writes, whether it can block, whether the
    interception library may fast-path it, and how replay must treat it.
    Unknown syscalls raise {!Unsupported} with the syscall name, making
    the recorder fail loudly rather than record garbage. *)

exception Unsupported of string

type output = { out_addr : int; out_len : int }

val outputs : nr:int -> args:int array -> result:int -> output list
(** Memory written by a completed syscall, given its entry arguments and
    result.  Raises {!Unsupported} for syscalls outside the model. *)

val may_block : Task.t -> nr:int -> args:int array -> bool
(** Can this call sleep in the kernel?  Inspects the fd table: regular
    file reads never block; pipe/socket reads can. *)

val bufferable : nr:int -> bool
(** The interception library's fast-path set (paper §3.1). *)

val buffered_output : nr:int -> args:int array -> (int * int) option
(** For buffered syscalls that write an output buffer: (argument index
    of the buffer pointer, its length), per §3.8's redirect-into-the-
    trace-buffer scheme. *)

val replay_performs : nr:int -> bool
(** Syscalls whose effects replay must re-perform rather than emulate:
    address-space operations (paper §2.3.8). *)

val is_special : nr:int -> bool
(** Syscalls with their own trace frame kinds (clone/execve/mmap/exit). *)

val scratch_redirect : Task.t -> nr:int -> args:int array -> (int * int) option
(** For traced blocking syscalls: (argument index, length) of the output
    buffer to detour through scratch memory (paper §2.3.1). *)
