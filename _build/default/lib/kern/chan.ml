(* Kernel channel objects: pipes and UDP sockets.

   These are the blocking-I/O substrate: reads on empty pipes/sockets
   block, which is exactly the case rr's desched machinery (paper §3.3)
   exists for.  Wait queues hold thread ids; the kernel resolves them. *)

type waitq = { mutable waiters : int list }

let waitq () = { waiters = [] }

let enqueue q tid = if not (List.mem tid q.waiters) then q.waiters <- q.waiters @ [ tid ]

let dequeue q tid = q.waiters <- List.filter (fun t -> t <> tid) q.waiters

let take_all q =
  let w = q.waiters in
  q.waiters <- [];
  w

type pipe = {
  pipe_id : int;
  buf : Buffer.t;
  capacity : int;
  mutable readers : int; (* open read-end fds *)
  mutable writers : int;
  read_wait : waitq;
  write_wait : waitq;
}

let make_pipe ~id ?(capacity = 65536) () =
  { pipe_id = id;
    buf = Buffer.create 256;
    capacity;
    readers = 1;
    writers = 1;
    read_wait = waitq ();
    write_wait = waitq () }

let pipe_readable p = Buffer.length p.buf > 0 || p.writers = 0

let pipe_writable p = Buffer.length p.buf < p.capacity || p.readers = 0

(* Read up to [len] bytes; caller has checked readability. *)
let pipe_read p len =
  let avail = Buffer.length p.buf in
  let n = min len avail in
  let out = Buffer.sub p.buf 0 n in
  let rest = Buffer.sub p.buf n (avail - n) in
  Buffer.clear p.buf;
  Buffer.add_string p.buf rest;
  Bytes.of_string out

let pipe_write p data =
  let room = p.capacity - Buffer.length p.buf in
  let n = min (Bytes.length data) room in
  Buffer.add_subbytes p.buf data 0 n;
  n

type datagram = { payload : bytes; src_port : int }

type sock = {
  sock_id : int;
  mutable port : int option;
  rx : datagram Queue.t;
  sock_wait : waitq;
}

let make_sock ~id = { sock_id = id; port = None; rx = Queue.create (); sock_wait = waitq () }

let sock_readable s = not (Queue.is_empty s.rx)

let sock_deliver s dgram = Queue.push dgram s.rx

let sock_take s = Queue.pop s.rx
