(* A DEFLATE-style compressor: LZ77 with hash-chain matching over a 32 KiB
   window, followed by canonical Huffman coding of a literal/length
   alphabet and a distance alphabet with extra bits — the same structure
   as zlib's "deflate", which rr uses for all general trace data (paper
   §2.7).  The bitstream is our own (single block, code lengths stored
   verbatim), so it is not zlib-compatible, but the algorithmic costs and
   achieved ratios are comparable for trace-like data. *)

let window_size = 32768
let min_match = 4
let max_match = 258
let hash_bits = 15
let hash_size = 1 lsl hash_bits
let max_chain = 64

(* Symbol alphabet: 0..255 literals, 256 end-of-block, 257.. length codes. *)
let eob = 256

(* Length codes: (base, extra_bits), deflate's table. *)
let len_table =
  [| (3, 0); (4, 0); (5, 0); (6, 0); (7, 0); (8, 0); (9, 0); (10, 0);
     (11, 1); (13, 1); (15, 1); (17, 1); (19, 2); (23, 2); (27, 2); (31, 2);
     (35, 3); (43, 3); (51, 3); (59, 3); (67, 4); (83, 4); (99, 4); (115, 4);
     (131, 5); (163, 5); (195, 5); (227, 5); (258, 0) |]

let dist_table =
  [| (1, 0); (2, 0); (3, 0); (4, 0); (5, 1); (7, 1); (9, 2); (13, 2);
     (17, 3); (25, 3); (33, 4); (49, 4); (65, 5); (97, 5); (129, 6); (193, 6);
     (257, 7); (385, 7); (513, 8); (769, 8); (1025, 9); (1537, 9);
     (2049, 10); (3073, 10); (4097, 11); (6145, 11); (8193, 12); (12289, 12);
     (16385, 13); (24577, 13) |]

let num_lit_syms = 257 + Array.length len_table
let num_dist_syms = Array.length dist_table

let code_of_table table v =
  let n = Array.length table in
  let rec go i =
    if i + 1 >= n then i
    else
      let next_base, _ = table.(i + 1) in
      if v < next_base then i else go (i + 1)
  in
  go 0

type token = Lit of char | Match of int * int (* len, dist *)

let hash4 s i =
  let b k = Char.code (String.unsafe_get s (i + k)) in
  (b 0 + (b 1 lsl 5) + (b 2 lsl 10) + (b 3 lsl 15)) land (hash_size - 1)

(* Greedy LZ77 tokenization with hash chains. *)
let tokenize src =
  let n = String.length src in
  let head = Array.make hash_size (-1) in
  let prev = Array.make (max n 1) (-1) in
  let tokens = ref [] in
  let i = ref 0 in
  let insert pos =
    if pos + min_match <= n then begin
      let h = hash4 src pos in
      prev.(pos) <- head.(h);
      head.(h) <- pos
    end
  in
  while !i < n do
    let pos = !i in
    if pos + min_match > n then begin
      tokens := Lit src.[pos] :: !tokens;
      incr i
    end
    else begin
      (* Find the longest match on the chain. *)
      let best_len = ref 0 and best_dist = ref 0 in
      let cand = ref head.(hash4 src pos) in
      let chain = ref 0 in
      while !cand >= 0 && !chain < max_chain do
        let c = !cand in
        if pos - c <= window_size then begin
          let lim = min max_match (n - pos) in
          let l = ref 0 in
          while !l < lim && src.[c + !l] = src.[pos + !l] do incr l done;
          if !l > !best_len then begin
            best_len := !l;
            best_dist := pos - c
          end;
          cand := prev.(c);
          incr chain
        end
        else cand := -1
      done;
      if !best_len >= min_match then begin
        tokens := Match (!best_len, !best_dist) :: !tokens;
        for p = pos to pos + !best_len - 1 do insert p done;
        i := pos + !best_len
      end
      else begin
        tokens := Lit src.[pos] :: !tokens;
        insert pos;
        incr i
      end
    end
  done;
  List.rev !tokens

(* Entropy-coded body; [deflate] below falls back to a stored block when
   this doesn't pay (small inputs can't amortize the code-length tables,
   like deflate's stored-block case). *)
let deflate_huffman src =
  let tokens = tokenize src in
  (* Frequency pass. *)
  let lit_freq = Array.make num_lit_syms 0 in
  let dist_freq = Array.make num_dist_syms 0 in
  let bump a i = a.(i) <- a.(i) + 1 in
  List.iter
    (fun tok ->
      match tok with
      | Lit c -> bump lit_freq (Char.code c)
      | Match (len, dist) ->
        bump lit_freq (257 + code_of_table len_table len);
        bump dist_freq (code_of_table dist_table dist))
    tokens;
  bump lit_freq eob;
  let lit_enc = Huffman.encoder lit_freq in
  let dist_enc = Huffman.encoder dist_freq in
  let w = Bitio.writer () in
  (* Header: original size, then the two code-length tables (4 bits...
     lengths go to 15, so 4 bits each). *)
  Bitio.put_bits w (String.length src land 0xffffff) 24;
  Bitio.put_bits w (String.length src lsr 24) 24;
  Array.iter (fun l -> Bitio.put_bits w l 4) lit_enc.Huffman.lens;
  Array.iter (fun l -> Bitio.put_bits w l 4) dist_enc.Huffman.lens;
  List.iter
    (fun tok ->
      match tok with
      | Lit c -> Huffman.write_symbol w lit_enc (Char.code c)
      | Match (len, dist) ->
        let lc = code_of_table len_table len in
        let base, extra = len_table.(lc) in
        Huffman.write_symbol w lit_enc (257 + lc);
        if extra > 0 then Bitio.put_bits w (len - base) extra;
        let dc = code_of_table dist_table dist in
        let dbase, dextra = dist_table.(dc) in
        Huffman.write_symbol w dist_enc (code_of_table dist_table dist);
        ignore dc;
        if dextra > 0 then Bitio.put_bits w (dist - dbase) dextra)
    tokens;
  Huffman.write_symbol w lit_enc eob;
  Bitio.finish w

let tm_deflate_in = Telemetry.counter "compress.deflate_bytes_in"
let tm_deflate_out = Telemetry.counter "compress.deflate_bytes_out"
let tm_inflate_out = Telemetry.counter "compress.inflate_bytes"

let deflate src =
  let packed = deflate_huffman src in
  let stored =
    if String.length packed + 1 <= String.length src then "\001" ^ packed
    else "\000" ^ src
  in
  Telemetry.add tm_deflate_in (String.length src);
  Telemetry.add tm_deflate_out (String.length stored);
  stored

exception Corrupt of string

let inflate_huffman data =
  let r = Bitio.reader data in
  (try
     let lo = Bitio.get_bits r 24 in
     let hi = Bitio.get_bits r 24 in
     let size = lo lor (hi lsl 24) in
     let lit_lens = Array.init num_lit_syms (fun _ -> Bitio.get_bits r 4) in
     let dist_lens = Array.init num_dist_syms (fun _ -> Bitio.get_bits r 4) in
     let lit_dec = Huffman.decoder lit_lens in
     let dist_dec = Huffman.decoder dist_lens in
     let out = Buffer.create (max size 16) in
     let finished = ref false in
     while not !finished do
       let s = Huffman.read_symbol r lit_dec in
       if s < 256 then Buffer.add_char out (Char.chr s)
       else if s = eob then finished := true
       else begin
         let base, extra = len_table.(s - 257) in
         let len = base + if extra > 0 then Bitio.get_bits r extra else 0 in
         let dc = Huffman.read_symbol r dist_dec in
         let dbase, dextra = dist_table.(dc) in
         let dist = dbase + if dextra > 0 then Bitio.get_bits r dextra else 0 in
         let start = Buffer.length out - dist in
         if start < 0 then raise (Corrupt "distance before start");
         (* Overlapping copies are the LZ77 norm: byte-by-byte. *)
         for i = 0 to len - 1 do
           Buffer.add_char out (Buffer.nth out (start + i))
         done
       end
     done;
     if Buffer.length out <> size then raise (Corrupt "size mismatch");
     Buffer.contents out
   with
  | Bitio.Truncated -> raise (Corrupt "truncated")
  | Huffman.Bad_code -> raise (Corrupt "bad code"))

let inflate data =
  if String.length data = 0 then raise (Corrupt "empty stream")
  else
    let body = String.sub data 1 (String.length data - 1) in
    let out =
      match data.[0] with
      | '\000' -> body
      | '\001' -> inflate_huffman body
      | _ -> raise (Corrupt "bad mode byte")
    in
    Telemetry.add tm_inflate_out (String.length out);
    out

let ratio ~original ~compressed =
  if compressed = 0 then 0. else float_of_int original /. float_of_int compressed
