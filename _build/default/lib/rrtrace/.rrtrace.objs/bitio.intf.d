lib/rrtrace/bitio.mli:
