lib/kern/task.ml: Addr_space Array Bpf Chan Cpu Fmt Hashtbl Perf_event Signals Sysno Vfs
