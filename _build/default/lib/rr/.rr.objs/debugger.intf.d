lib/rr/debugger.mli: Event Replayer Task Trace
