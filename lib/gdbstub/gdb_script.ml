(* Scripted RSP sessions (see the mli for the line grammar). *)

type expect = Exact of string | Prefix of string

type step = {
  line_no : int;
  send : string;
  expect : expect option;
  monitor : bool;
}

let parse_expect s =
  let s = String.trim s in
  let n = String.length s in
  if n > 0 && s.[n - 1] = '*' then Prefix (String.sub s 0 (n - 1))
  else Exact s

let split_arrow line =
  (* the first " => " splits payload from expectation *)
  let rec find i =
    if i + 4 > String.length line then None
    else if String.sub line i 4 = " => " then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> (String.trim line, None)
  | Some i ->
    ( String.trim (String.sub line 0 i),
      Some (parse_expect (String.sub line (i + 4) (String.length line - i - 4)))
    )

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc line_no = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go acc (line_no + 1) rest
      else begin
        let payload, expect = split_arrow trimmed in
        if payload = "" then
          Error (Printf.sprintf "line %d: no payload before =>" line_no)
        else begin
          let monitor, send =
            match String.index_opt payload ' ' with
            | Some i when String.sub payload 0 i = "monitor" ->
              ( true,
                String.trim
                  (String.sub payload (i + 1) (String.length payload - i - 1))
              )
            | _ -> (false, payload)
          in
          if monitor && send = "" then
            Error (Printf.sprintf "line %d: empty monitor command" line_no)
          else go ({ line_no; send; expect; monitor } :: acc) (line_no + 1) rest
        end
      end
  in
  go [] 1 lines

let matches expect reply =
  match expect with
  | Exact want -> reply = want
  | Prefix p ->
    String.length reply >= String.length p
    && String.sub reply 0 (String.length p) = p

let run ?(log = fun _ -> ()) client steps =
  let rec go n = function
    | [] -> Ok n
    | step :: rest -> (
      match
        if step.monitor then Gdb_client.monitor client step.send
        else Gdb_client.request client step.send
      with
      | exception Gdb_client.Protocol_error msg ->
        Error (Printf.sprintf "line %d: %s" step.line_no msg)
      | reply ->
        log
          (Printf.sprintf "%s%s -> %s"
             (if step.monitor then "monitor " else "")
             step.send reply);
        (match step.expect with
        | Some e when not (matches e reply) ->
          Error
            (Printf.sprintf "line %d: sent %S, got %S, wanted %s" step.line_no
               step.send reply
               (match e with
               | Exact w -> Printf.sprintf "exactly %S" w
               | Prefix p -> Printf.sprintf "prefix %S" p))
        | _ -> go (n + 1) rest))
  in
  go 0 steps
