(* Fault-injection property tests for the crash-tolerant trace store.

   The contract under test (DESIGN.md §4e): for {e every} injected IO
   fault, the system ends in exactly one of three states —
   - byte-identical success (the fault landed past the data, or was
     harmless),
   - verified prefix salvage (the recovered frames are a prefix of the
     original stream), or
   - a typed {!Trace.error} naming the damage —
   and never a crash, hang, or silent divergence.

   Faults are seeded and deterministic ({!Io.inject} /
   {!Io.inject_reader}), so the whole matrix replays bit-identically.
   The matrix runs under three reader configurations: serial, parallel
   decode ([jobs = 4]), and parallel decode with readahead prefetch. *)

let synth_event i =
  match i mod 4 with
  | 0 ->
    Event.E_sched
      { tid = 100 + (i mod 3);
        point =
          { Event.rcb = i * 7;
            point_regs = Array.init 17 (fun r -> (r * i) + 13);
            stack_extra = i } }
  | 1 ->
    Event.E_syscall
      { tid = 100;
        nr = Sysno.read;
        site = 0x1000 + i;
        writable_site = false;
        via_abort = false;
        regs_after = Array.init 17 (fun r -> r + i);
        writes = [ { Event.addr = 0x4000 + i; data = String.make 40 'x' } ];
        kind = Event.K_emulate }
  | 2 -> Event.E_insn_trap { tid = 100; reg = i mod 16; value = i * i }
  | _ -> Event.E_checksum { tid = 100; value = i * 31 }

let synth_trace ?(n = 300) ?(chunk_limit = 512) () =
  let w = Trace.Writer.create ~chunk_limit ~initial_exe:"/bin/x" () in
  for i = 0 to n - 1 do
    ignore (Trace.Writer.event w (synth_event i))
  done;
  Trace.Writer.finish w

(* The canonical on-disk bytes and frame stream everything is compared
   against. *)
let golden =
  lazy
    (let t = synth_trace () in
     let buf = Buffer.create 65536 in
     (match Trace.save_io t (Io.buffer_writer buf) with
     | Ok () -> ()
     | Error e -> failwith (Trace.error_to_string e));
     (Buffer.contents buf, Trace.Reader.to_array t))

let opts_modes =
  [ ("serial", Trace.make_opts ());
    ("jobs4", Trace.make_opts ~jobs:4 ());
    ("jobs4+ra2", Trace.make_opts ~jobs:4 ~readahead:2 ()) ]

let is_prefix_of ~original frames =
  Array.length frames <= Array.length original
  && (try
        Array.iteri
          (fun i e -> if e <> original.(i) then raise Exit)
          frames;
        true
      with Exit -> false)

(* One scenario: some (possibly damaged) byte string reaches the
   reader.  [mk_reader] builds a fresh reader each pass, re-applying any
   read-side fault plan.  Returns which of the three allowed outcomes
   happened; anything else fails the test. *)
let classify ~what ~opts ~original mk_reader =
  match Trace.open_io ~opts (mk_reader ()) with
  | Ok t ->
    let frames = Trace.Reader.to_array t in
    Trace.close t;
    if frames = original then `Success
    else Alcotest.failf "%s: silent divergence on open" what
  | Error _open_err -> (
    match Trace.salvage_io ~opts (mk_reader ()) with
    | Ok (s, report) ->
      let frames = Trace.Reader.to_array s in
      Trace.close s;
      if not (is_prefix_of ~original frames) then
        Alcotest.failf "%s: salvage returned a non-prefix (%d frames)" what
          (Array.length frames);
      if report.Trace.sr_frames_recovered <> Array.length frames then
        Alcotest.failf "%s: report/frames mismatch" what;
      `Salvaged
    | Error _e -> `Typed_error)
  | exception Trace.Format_error _ ->
    Alcotest.failf "%s: open_io raised instead of returning Error" what
  | exception e ->
    Alcotest.failf "%s: untyped exception %s" what (Printexc.to_string e)

(* Derive a deterministic read-side fault from a seed. *)
let read_fault rng len =
  let off = Random.State.int rng (len + (len / 10) + 1) in
  match Random.State.int rng 3 with
  | 0 -> Io.Read_truncate_at off
  | 1 -> Io.Read_bit_flip off
  | _ -> Io.Read_fail_at off

let write_fault rng len =
  let off = Random.State.int rng (len + (len / 10) + 1) in
  match Random.State.int rng 4 with
  | 0 -> Io.Write_enospc_after off
  | 1 -> Io.Write_crash_at off
  | 2 -> Io.Write_short_at off
  | _ -> Io.Write_bit_flip off

let pp_fault = function
  | Io.Write_enospc_after n -> Printf.sprintf "enospc@%d" n
  | Io.Write_crash_at n -> Printf.sprintf "wcrash@%d" n
  | Io.Write_short_at n -> Printf.sprintf "wshort@%d" n
  | Io.Write_bit_flip n -> Printf.sprintf "wflip@%d" n
  | Io.Read_truncate_at n -> Printf.sprintf "rtrunc@%d" n
  | Io.Read_bit_flip n -> Printf.sprintf "rflip@%d" n
  | Io.Read_fail_at n -> Printf.sprintf "rfail@%d" n

let n_read_seeds = 40
let n_write_seeds = 40

(* ---- the matrix ------------------------------------------------------ *)

(* Read-side faults: the file on disk is healthy; the reader rots. *)
let test_read_fault_matrix () =
  let bytes, original = Lazy.force golden in
  let counts = Hashtbl.create 8 in
  let bump k = Hashtbl.replace counts k (1 + try Hashtbl.find counts k with Not_found -> 0) in
  List.iter
    (fun (mode, opts) ->
      for seed = 1 to n_read_seeds do
        let rng = Random.State.make [| 0xFA; seed |] in
        let fault = read_fault rng (String.length bytes) in
        let what = Printf.sprintf "read[%s seed=%d %s]" mode seed (pp_fault fault) in
        let mk_reader () = Io.inject_reader [ fault ] (Io.string_reader bytes) in
        bump (classify ~what ~opts ~original mk_reader)
      done)
    opts_modes;
  (* The seed range must actually exercise all three outcomes. *)
  List.iter
    (fun k ->
      if not (Hashtbl.mem counts k) then
        Alcotest.failf "read matrix never produced outcome %s"
          (match k with
          | `Success -> "success"
          | `Salvaged -> "salvage"
          | `Typed_error -> "typed-error"))
    [ `Success; `Salvaged; `Typed_error ]

(* Write-side faults: persistence is interrupted or silently corrupted;
   whatever prefix "reached the device" is then opened/salvaged. *)
let test_write_fault_matrix () =
  let _, original = Lazy.force golden in
  let t = synth_trace () in
  let ideal_len = String.length (fst (Lazy.force golden)) in
  List.iter
    (fun (mode, opts) ->
      for seed = 1 to n_write_seeds do
        let rng = Random.State.make [| 0xFB; seed |] in
        let fault = write_fault rng ideal_len in
        let what = Printf.sprintf "write[%s seed=%d %s]" mode seed (pp_fault fault) in
        let buf = Buffer.create 65536 in
        let w = Io.inject [ fault ] (Io.buffer_writer buf) in
        let save_outcome = Trace.save_io t w in
        (match (save_outcome, fault) with
        | Ok (), (Io.Write_enospc_after n | Io.Write_crash_at n | Io.Write_short_at n)
          when n < ideal_len ->
          Alcotest.failf "%s: save claimed success past a write fault" what
        | Error _, Io.Write_bit_flip _ ->
          Alcotest.failf "%s: a bit flip must not fail the write" what
        | (Ok () | Error _), _ -> ());
        let landed = Buffer.contents buf in
        let mk_reader () = Io.string_reader landed in
        (match classify ~what ~opts ~original mk_reader with
        | `Success when save_outcome <> Ok () ->
          (* A failed save may still have landed a loadable prefix only
             if the fault struck at/after the footer — in which case the
             bytes are the complete record stream.  [classify] already
             proved frame identity, so this is fine. *)
          ()
        | `Success | `Salvaged | `Typed_error -> ())
      done)
    opts_modes

(* A writer killed mid-record: the journal stream's prefix must salvage
   into a replayable trace (the paper's crash-tolerance story — a
   recording you were running when the machine died is still evidence). *)
let test_killed_recording_salvages () =
  let wl = Wl_cp.make ~params:{ Wl_cp.files = 4; file_kb = 64 } () in
  (* Reference run: learn the journal length and the true frame stream. *)
  let ref_buf = Buffer.create 65536 in
  let ref_trace, _, _ =
    Recorder.record ~journal:(Io.buffer_writer ref_buf) ~setup:wl.Workload.setup
      ~exe:wl.Workload.exe ()
  in
  let reference = Trace.Reader.to_array ref_trace in
  let journal_len = Buffer.length ref_buf in
  Alcotest.(check bool) "journal stream is substantial" true (journal_len > 512);
  List.iter
    (fun frac ->
      let cut = journal_len * frac / 10 in
      let buf = Buffer.create 65536 in
      let journal = Io.inject [ Io.Write_crash_at cut ] (Io.buffer_writer buf) in
      (match
         Recorder.run ~journal ~setup:wl.Workload.setup
           ~exe:wl.Workload.exe ()
       with
      | Error (Recorder.Rec_trace _) -> ()
      | Error (Recorder.Rec_failure m) ->
        Alcotest.failf "cut %d: wrong error class: %s" cut m
      | Ok _ ->
        (* The crash fired after the last journal write: recording
           finished without touching the dead journal again. *)
        ());
      let landed = Buffer.contents buf in
      Alcotest.(check bool)
        (Printf.sprintf "cut %d: prefix landed" cut)
        true
        (String.length landed <= cut);
      match Trace.salvage_io (Io.string_reader landed) with
      | Error e ->
        if cut >= 64 then
          Alcotest.failf "cut %d: journal prefix unsalvageable: %s" cut
            (Trace.error_to_string e)
      | Ok (s, report) ->
        Alcotest.(check bool)
          (Printf.sprintf "cut %d: uncommitted" cut)
          false report.Trace.sr_committed;
        let frames = Trace.Reader.to_array s in
        if not (is_prefix_of ~original:reference frames) then
          Alcotest.failf "cut %d: salvaged journal is not a prefix" cut;
        if Array.length frames > 0 then begin
          let stats, _ = Replayer.replay s in
          Alcotest.(check int)
            (Printf.sprintf "cut %d: replayed every salvaged frame" cut)
            (Array.length frames) stats.Replayer.events_applied
        end)
    [ 3; 6; 9 ]

(* Telemetry: detected corruption and salvage runs are counted. *)
let test_fault_telemetry_counters () =
  let bytes, _ = Lazy.force golden in
  (* Corrupt a byte mid-file, then open (counts trace.crc_fail on the
     damaged chunk) and salvage (counts salvage.runs etc.). *)
  let damaged = Bytes.of_string bytes in
  let mid = Bytes.length damaged / 2 in
  Bytes.set damaged mid (Char.chr (Char.code (Bytes.get damaged mid) lxor 0x10));
  let damaged = Bytes.to_string damaged in
  let before = Telemetry.snapshot () in
  (match Trace.open_io (Io.string_reader damaged) with
  | Ok _ -> Alcotest.fail "mid-file flip went undetected"
  | Error _ -> ());
  (match Trace.salvage_io (Io.string_reader damaged) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "salvage failed: %s" (Trace.error_to_string e));
  let after = Telemetry.snapshot () in
  let delta name =
    let get s =
      match List.assoc_opt name s.Telemetry.snap_counters with
      | Some v -> v
      | None -> 0
    in
    get after - get before
  in
  Alcotest.(check bool) "salvage.runs counted" true (delta "salvage.runs" >= 1);
  Alcotest.(check bool) "salvage.chunks_recovered counted" true
    (delta "salvage.chunks_recovered" >= 1);
  Alcotest.(check bool) "salvage.frames_recovered counted" true
    (delta "salvage.frames_recovered" >= 1)

let suites =
  [ ( "fault-injection",
      [ Alcotest.test_case "read-fault matrix (3 reader modes)" `Quick
          test_read_fault_matrix;
        Alcotest.test_case "write-fault matrix (3 reader modes)" `Quick
          test_write_fault_matrix;
        Alcotest.test_case "killed recording salvages to a replayable prefix"
          `Quick test_killed_recording_salvages;
        Alcotest.test_case "telemetry counters" `Quick
          test_fault_telemetry_counters ] ) ]
