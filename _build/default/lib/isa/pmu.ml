(* The per-task performance monitoring unit.

   Reproduces the counter landscape of paper §2.4.1:
   - [rcb] (retired conditional branches) is the one *deterministic*
     counter: it depends only on the user-space instruction sequence.
   - [insns] (instructions retired) and [branches] (all branches retired)
     are nondeterministic: the kernel injects noise into them on
     interrupts (the analogue of restarted instructions and SMM exits).
   - The overflow interrupt does not fire at the programmed count; it
     fires [skid] instructions later (paper §2.4.3 "in practice we often
     observe it firing after dozens more instructions have retired"), so a
     replayer must program it early and finish with breakpoints. *)

type interrupt = { target : int; mutable skid : int; mutable primed : bool }

type t = {
  mutable rcb : int;
  mutable insns : int;
  mutable branches : int;
  mutable interrupt : interrupt option;
}

let create () = { rcb = 0; insns = 0; branches = 0; interrupt = None }

let max_skid = 12

let program_interrupt t ~target ~skid =
  if target < 0 then invalid_arg "Pmu.program_interrupt";
  t.interrupt <- Some { target; skid; primed = false }

let clear_interrupt t = t.interrupt <- None

let interrupt_armed t = t.interrupt <> None

(* Called once per retired instruction; true when the overflow interrupt
   fires on this instruction boundary. *)
let tick_interrupt t =
  match t.interrupt with
  | None -> false
  | Some i ->
    if (not i.primed) && t.rcb >= i.target then i.primed <- true;
    if i.primed then begin
      if i.skid <= 0 then begin
        t.interrupt <- None;
        true
      end
      else begin
        i.skid <- i.skid - 1;
        false
      end
    end
    else false

(* Nondeterministic pollution of the non-RCB counters, applied by the
   kernel when an interrupt or fault perturbs the task. *)
let add_noise t entropy =
  t.insns <- t.insns + Entropy.range entropy 0 3;
  t.branches <- t.branches + Entropy.range entropy 0 2

let snapshot t = (t.rcb, t.insns, t.branches)

let copy t =
  { rcb = t.rcb; insns = t.insns; branches = t.branches; interrupt = None }
