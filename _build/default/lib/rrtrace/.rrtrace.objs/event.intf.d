lib/rrtrace/event.mli: Codec Fmt
