(* The guest instruction set.

   A small register machine standing in for x86-64: 16 general-purpose
   registers, byte-addressed data memory, word-addressed code.  The
   properties rr depends on are reproduced exactly:
   - conditional branches are a distinguished, deterministic event class
     (the RCB counter counts them and nothing else);
   - there is a one-word [Syscall] instruction whose site can be patched;
   - there are deliberately nondeterministic instructions ([Rdtsc],
     [Rdrand], [Cpuid_core]) and a deterministic atomic ([Cas]);
   - code can be written at run time ([Emit]), giving self-modifying code.

   Register conventions (mirroring the SysV-ish flavor of the paper):
   r0 = syscall number in / result out; r1..r6 = syscall args;
   r13 = thread pointer, r14 = frame/link scratch, r15 = stack pointer. *)

type reg = int (* 0..15 *)

let num_regs = 16
let reg_sp = 15
let reg_tp = 13

type operand = Imm of int | Reg of reg

type cond = Eq | Ne | Lt | Le | Gt | Ge

type alu = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type t =
  | Nop
  | Mov of reg * operand
  | Alu of alu * reg * operand      (* dst := dst op src *)
  | Load of reg * reg * int         (* dst := mem64[base + off] *)
  | Store of reg * reg * int        (* mem64[base + off] := src *)
  | Load8 of reg * reg * int        (* dst := mem8[base + off] *)
  | Store8 of reg * reg * int       (* mem8[base + off] := src land 0xff *)
  | Jmp of int                      (* unconditional: not an RCB event *)
  | Jcc of cond * reg * operand * int  (* conditional: one RCB when retired *)
  | Call of int                     (* push return addr; jump *)
  | Callr of reg                    (* indirect call *)
  | Ret
  | Push of operand
  | Pop of reg
  | Syscall
  | Rdtsc of reg                    (* nondeterministic unless trapped *)
  | Rdrand of reg                   (* nondeterministic *)
  | Cpuid_core of reg               (* dst := index of current core *)
  | Cas of reg * reg * reg * reg    (* (addr, expected, new, success_dst) *)
  | Pause                           (* spin-loop hint, deterministic nop *)
  | Emit of reg * reg               (* text[addr_reg] := decode value_reg *)
  | Hook of int                     (* trap to a supervisor-installed hook *)
  | Halt                            (* invalid in user code: faults *)

let eval_cond c a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let is_conditional_branch = function Jcc _ -> true | _ -> false

(* Encoding for run-time code generation ([Emit]).  Only the shapes a JIT
   plausibly emits are encodable; [decode] refuses everything else, which
   is how a guest program that emits garbage faults. *)

let encode = function
  | Nop -> Some 0
  | Syscall -> Some 1
  | Ret -> Some 2
  | Pause -> Some 3
  | Mov (r, Imm v) when v >= 0 && v < 0x10000 ->
    Some (0x10 lor (r lsl 8) lor (v lsl 16))
  | Alu (Add, r, Imm v) when v >= 0 && v < 0x10000 ->
    Some (0x11 lor (r lsl 8) lor (v lsl 16))
  | Jcc (Ne, r, Imm 0, target) when target >= 0 && target < 0x100000000 ->
    Some (0x12 lor (r lsl 8) lor (target lsl 16))
  | Jmp target when target >= 0 && target < 0x100000000 ->
    Some (0x13 lor (target lsl 16))
  | Mov _ | Alu _ | Load _ | Store _ | Load8 _ | Store8 _ | Jmp _ | Jcc _
  | Call _ | Callr _ | Push _ | Pop _ | Rdtsc _ | Rdrand _ | Cpuid_core _
  | Cas _ | Emit _ | Hook _ | Halt ->
    None

let decode w =
  if w < 0 then None
  else
    let op = w land 0xff in
    let r = (w lsr 8) land 0xf in
    let v = w lsr 16 in
    match op with
    | 0 when w = 0 -> Some Nop
    | 1 when w = 1 -> Some Syscall
    | 2 when w = 2 -> Some Ret
    | 3 when w = 3 -> Some Pause
    | 0x10 -> Some (Mov (r, Imm v))
    | 0x11 -> Some (Alu (Add, r, Imm v))
    | 0x12 -> Some (Jcc (Ne, r, Imm 0, v))
    | 0x13 -> Some (Jmp v)
    | _ -> None

let pp_operand ppf = function
  | Imm v -> Fmt.pf ppf "$%d" v
  | Reg r -> Fmt.pf ppf "r%d" r

let cond_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let alu_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"

let pp ppf = function
  | Nop -> Fmt.string ppf "nop"
  | Mov (r, o) -> Fmt.pf ppf "mov r%d, %a" r pp_operand o
  | Alu (op, r, o) -> Fmt.pf ppf "%s r%d, %a" (alu_name op) r pp_operand o
  | Load (d, b, off) -> Fmt.pf ppf "ld r%d, [r%d%+d]" d b off
  | Store (s, b, off) -> Fmt.pf ppf "st r%d, [r%d%+d]" s b off
  | Load8 (d, b, off) -> Fmt.pf ppf "ldb r%d, [r%d%+d]" d b off
  | Store8 (s, b, off) -> Fmt.pf ppf "stb r%d, [r%d%+d]" s b off
  | Jmp t -> Fmt.pf ppf "jmp %#x" t
  | Jcc (c, r, o, t) ->
    Fmt.pf ppf "j%s r%d, %a, %#x" (cond_name c) r pp_operand o t
  | Call t -> Fmt.pf ppf "call %#x" t
  | Callr r -> Fmt.pf ppf "call *r%d" r
  | Ret -> Fmt.string ppf "ret"
  | Push o -> Fmt.pf ppf "push %a" pp_operand o
  | Pop r -> Fmt.pf ppf "pop r%d" r
  | Syscall -> Fmt.string ppf "syscall"
  | Rdtsc r -> Fmt.pf ppf "rdtsc r%d" r
  | Rdrand r -> Fmt.pf ppf "rdrand r%d" r
  | Cpuid_core r -> Fmt.pf ppf "cpuid_core r%d" r
  | Cas (a, e, n, d) -> Fmt.pf ppf "cas [r%d], r%d, r%d -> r%d" a e n d
  | Pause -> Fmt.string ppf "pause"
  | Emit (a, v) -> Fmt.pf ppf "emit [r%d], r%d" a v
  | Hook n -> Fmt.pf ppf "hook %d" n
  | Halt -> Fmt.string ppf "halt"
