lib/rr/rec_sched.mli: Entropy Hashtbl
