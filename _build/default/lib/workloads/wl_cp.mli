(** The `cp` workload (paper §4.1): single-threaded duplication of a file
    tree — syscall-dense, almost no user computation, large block-aligned
    reads where the recorder's block-cloning fast path (§3.9) carries the
    whole cost. *)

type params = { files : int; file_kb : int }

val default : params

val make : ?params:params -> unit -> Workload.t
