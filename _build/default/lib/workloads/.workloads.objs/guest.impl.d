lib/workloads/guest.ml: Asm Image Insn List Printf String Sysno
