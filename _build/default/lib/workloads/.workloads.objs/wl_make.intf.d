lib/workloads/wl_make.mli: Workload
