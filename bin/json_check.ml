(* json_check FILE SPEC...

   Smoke-test validator for the JSON this repo emits (`rr_cli stats
   --json`, Chrome trace exports, bench ledgers): parses the file with
   the shared minimal parser ({!Json_min}) and checks each SPEC.

     section:name    the object at top-level key [section] has [name]
     +section:name   ... and its value is a number > 0, or an object
                     whose "count" member is > 0
     %section:name   ... and its value is an object carrying numeric
                     "p50"/"p90"/"p99" quantiles with
                     0 <= p50 <= p90 <= p99
     name            a top-level key exists
     +name           ... and its value is a non-empty array

   Exits non-zero with a message on the first failure, so a broken
   telemetry pipeline fails `dune runtest` loudly. *)

open Json_min

let die fmt = Printf.ksprintf (fun msg -> prerr_endline ("json_check: " ^ msg); exit 1) fmt

let check_quantiles ~section ~name members =
  let num key =
    match List.assoc_opt key members with
    | Some (Num f) -> f
    | Some _ -> die "%s:%s %S is not a number" section name key
    | None -> die "%s:%s has no %S quantile" section name key
  in
  let p50 = num "p50" and p90 = num "p90" and p99 = num "p99" in
  if not (0. <= p50 && p50 <= p90 && p90 <= p99) then
    die "%s:%s quantiles not ordered: p50=%g p90=%g p99=%g" section name p50
      p90 p99

let check_spec root spec =
  let mode, spec =
    if String.length spec > 0 && (spec.[0] = '+' || spec.[0] = '%') then
      (spec.[0], String.sub spec 1 (String.length spec - 1))
    else (' ', spec)
  in
  let positive = mode = '+' in
  let top =
    match root with Obj m -> m | _ -> die "top level is not a JSON object"
  in
  match String.index_opt spec ':' with
  | None -> (
    (* bare name: a top-level key; with '+', a non-empty array *)
    match List.assoc_opt spec top with
    | None -> die "missing top-level key %S" spec
    | Some (List []) when positive -> die "%S is empty" spec
    | Some (List _) -> ()
    | Some _ when not positive -> ()
    | Some _ -> die "%S is not an array" spec)
  | Some i -> (
    let section = String.sub spec 0 i in
    let name = String.sub spec (i + 1) (String.length spec - i - 1) in
    match List.assoc_opt section top with
    | None -> die "missing section %S" section
    | Some (Obj members) -> (
      match List.assoc_opt name members with
      | None -> die "missing %S in section %S" name section
      | Some (Obj m) when mode = '%' -> check_quantiles ~section ~name m
      | Some _ when mode = '%' ->
        die "%s:%s is not an object (no quantiles)" section name
      | Some v when not positive -> ignore v
      | Some (Num f) -> if f <= 0. then die "%s:%s = %g, want > 0" section name f
      | Some (Obj m) -> (
        match List.assoc_opt "count" m with
        | Some (Num f) when f > 0. -> ()
        | Some (Num f) -> die "%s:%s count = %g, want > 0" section name f
        | _ -> die "%s:%s has no numeric \"count\"" section name)
      | Some _ -> die "%s:%s is neither number nor object" section name)
    | Some _ -> die "section %S is not an object" section)

let () =
  match Array.to_list Sys.argv with
  | _ :: file :: specs ->
    let data =
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let root =
      try parse data with Parse_error msg -> die "%s: %s" file msg
    in
    List.iter (check_spec root) specs;
    Printf.printf "json_check: %s ok (%d specs)\n" file (List.length specs)
  | _ -> die "usage: json_check FILE SPEC..."
