lib/kern/task.mli: Addr_space Bpf Chan Cpu Fmt Hashtbl Perf_event Signals Vfs
