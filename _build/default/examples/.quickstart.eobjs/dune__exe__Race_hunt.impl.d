examples/race_hunt.ml: Asm Fmt Guest Kernel List Recorder Replayer Sysno Vfs
