lib/workloads/wl_htmltest.ml: Asm Guest Insn Kernel Sysno Vfs Wl_common Workload
