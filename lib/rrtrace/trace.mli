(** Chunk-indexed trace store.

    General frame data is serialized and deflate-compressed in chunks —
    the "all other trace data" stream of paper §2.7/Table 2.  Memory-
    mapped executables and block-cloned file data bypass the compressor:
    they are snapshotted by hard-link/FICLONE-style cloning and accounted
    separately.

    A trace holds only the stored chunk stream plus a per-chunk index;
    frames are never held decoded in bulk.  All frame access goes
    through {!Reader}, which inflates one chunk at a time behind a small
    LRU, so opening a trace is O(index) and a seek costs
    O(log n_chunks + one chunk decode).

    The multicore pipeline is selected per trace via {!opts}: [jobs]
    worker domains deflate sealed chunks in the background while the
    writer keeps recording (output is byte-identical to the serial
    path), and [readahead] chunks are prefetched+inflated ahead of the
    reader so sequential replay rarely inflates on the critical path.
    The decoded-chunk LRU is domain-safe (a per-trace mutex).  The
    defaults ([jobs = 1], [readahead = 0]) are the fully serial,
    domain-free paths.

    {b Durability} (DESIGN.md §4e): persistence flows through the
    pluggable {!Io} layer.  The v3 on-disk format is a stream of
    CRC32-guarded records committed by a trailing footer; a {!Writer}
    given [?journal] streams the trace incrementally while recording,
    so a writer killed mid-record leaves a salvageable prefix; and
    {!salvage} recovers the longest verifiable chunk prefix of a
    damaged file.  Loading and salvaging return typed {!error}s — a
    damaged trace is a value to inspect, never a crash. *)

type stats = {
  mutable n_events : int;
  mutable raw_bytes : int;
  mutable compressed_bytes : int;
  mutable cloned_blocks : int;
  mutable cloned_bytes : int;
  mutable copied_file_bytes : int; (* bytes copied when cloning is off *)
  mutable n_chunks : int;
  mutable n_buffered_syscalls : int;
  mutable n_traced_syscalls : int;
  mutable lru_hits : int; (* Reader chunk-LRU hits (runtime-only) *)
  mutable lru_misses : int; (* chunks inflated+decoded on demand *)
  mutable lru_evictions : int; (* decoded chunks dropped from the LRU *)
}

(** Pipeline options (see the module preamble). *)
type opts = {
  jobs : int; (** worker domains for chunk deflate / readahead (≥ 1) *)
  readahead : int; (** chunks prefetched past the last read (0 = off) *)
}

val default_opts : opts
(** [{jobs = 1; readahead = 0}]: the serial paths, no domains. *)

val make_opts : ?jobs:int -> ?readahead:int -> unit -> opts
(** [default_opts] with the given fields overridden (clamped to
    [jobs ≥ 1], [readahead ≥ 0]).  This is the only supported way to
    build an {!opts} — construct through it, not by record literal, so
    clamping is never bypassed (a lint enforces this outside [lib/]). *)

type chunk_info = {
  first_frame : int; (** trace index of the chunk's first frame *)
  n_frames : int;
  byte_offset : int; (** offset into the concatenated chunk stream *)
  stored_len : int; (** stored (compressed) size in bytes *)
  kinds : int; (** OR of {!Event.kind_bit} over the chunk's frames *)
  crc32 : int; (** CRC-32 of the stored bytes; 0 = unknown (v2 trace) *)
}

type t

(** {1 Errors}

    Everything that can be wrong with a trace file, as data.  The
    result-returning entry points ({!open_}, {!load}, {!save},
    {!salvage}) never raise on bad input; the [_exn] wrappers and the
    lazy {!Reader} decode paths raise {!Format_error} carrying the same
    value. *)

type error =
  | Truncated of { path : string; detail : string }
      (** the file ends before its structure does (including a missing
          commit footer: the writer was killed before [finish]) *)
  | Bad_magic of { path : string }  (** not an rr trace file at all *)
  | Version_skew of { path : string; found : int; expected : int }
      (** readable magic, unreadable version (v1, or a future format) *)
  | Chunk_crc of int
      (** chunk [i]'s stored bytes fail their CRC — bit rot, torn
          write, or tampering; the index pinpoints the damaged chunk *)
  | Corrupt of { path : string; detail : string }
      (** structurally invalid: mis-framed record, index inconsistency,
          undecodable frame data *)
  | Io of Io.error  (** the byte layer itself failed (open/read/write) *)

exception Format_error of error
(** Raised by the [_exn] entry points, and by {!Reader} accessors when
    a lazily decoded chunk turns out corrupt (laziness defers chunk
    payload validation from open to first access; stored-byte CRCs are
    checked at open). *)

val pp_error : error Fmt.t
val error_to_string : error -> string

(** {1 Sinks}

    A {!Sink.t} is the one place frames, chunks, images and file
    snapshots leave a {!Writer}.  Three implementations exist: the
    streaming file journal ({!Sink.of_io}), the bounded in-memory
    flight-recorder ring ({!ring_sink}), and the content-addressed
    repository ({!Repo.sink}).  Events arrive in trace-stream order —
    header first, every image and file delta before the first chunk
    referencing it, a stats journal mark every few chunks — so a sink
    persisting events as they arrive reproduces the v3 record stream,
    and any prefix it persists is salvageable. *)

module Sink : sig
  type event =
    | Header of { compressed : bool; initial_exe : string; event_version : int }
    | Image of { path : string; img : Image.t }
    | File_delta of { path : string; offset : int; data : string }
        (** bytes [data] replace the file's contents from [offset];
            a pure append when [offset] equals the previous length *)
    | Chunk of { first_frame : int; n_frames : int; kinds : int; stored : string }
        (** one sealed chunk's stored (possibly deflated) bytes *)
    | Journal of stats
        (** watermark: a stats snapshot covering every chunk above *)

  type t

  val make :
    ?bounded:bool ->
    name:string ->
    put:(event -> unit) ->
    commit:(stats -> chunk_info array -> unit) ->
    close:(unit -> unit) ->
    unit ->
    t
  (** Build a custom sink.  [put] receives every event in stream order;
      [commit] runs once from {!Writer.finish} with the final stats and
      chunk index; [close] runs from {!Writer.abort} and must release
      resources without committing (idempotent).  [bounded] declares
      that the sink owns the chunk bytes and the writer need not retain
      them (the ring); external sinks should leave it [false]. *)

  val name : t -> string

  val of_io : Io.writer -> t
  (** The streaming file sink — the incremental v3 journal.  [commit]
      writes the trailer and footer and closes the writer, so the
      footer's presence proves completion; a sink killed at any byte
      leaves a salvageable prefix. *)
end

type ring
(** A bounded in-memory flight-recorder sink: at most [chunks] resident
    chunks, dropped oldest-first in whole journal-watermark groups, so
    the retained window always starts just past a 'J' mark.  Header,
    images and file snapshots are always retained.  Telemetry:
    [ring.dropped_chunks] (counter), [ring.resident_bytes] (gauge). *)

type ring_report = {
  rr_base_frame : int; (** trace index of the window's first frame *)
  rr_chunks : int;
  rr_frames : int;
  rr_dropped_chunks : int;
  rr_dropped_frames : int;
  rr_resident_bytes : int;
}

val ring : chunks:int -> ring
(** A fresh ring with a budget of [max 1 chunks] resident chunks.  The
    handle is caller-owned: it outlives a recording killed mid-run, so
    the window can still be dumped afterwards. *)

val ring_sink : ring -> Sink.t

val ring_trace : ?opts:opts -> ring -> t * ring_report
(** Snapshot the retained window as a standalone trace: chunk indexes
    rebased to frame 0, per-chunk CRCs minted, images and files copied.
    The window replays from its own frame 0 only when nothing was
    dropped ([rr_base_frame = 0]); a truncated window is still
    decodable, saveable and salvageable (DESIGN.md §4j). *)

val pp_ring_report : ring_report Fmt.t

module Writer : sig
  type w

  val create :
    ?compress:bool ->
    ?chunk_limit:int ->
    ?opts:opts ->
    ?journal:Io.writer ->
    ?sink:Sink.t ->
    ?event_version:int ->
    initial_exe:string ->
    unit ->
    w
  (** [chunk_limit] (default 64 KiB) is the pending-buffer size that
      triggers a chunk flush — with its index entry — as frames stream
      in; tests shrink it to force multi-chunk traces from small
      workloads.  With [opts.jobs > 1] each sealed chunk is deflated on
      a worker domain (bounded queue: the writer blocks rather than
      outrun the compressors); chunks are consumed in submission order,
      so the file is byte-identical to the serial one.

      With [sink] (or [journal], sugar for [Sink.of_io]; [sink] wins
      when both are given), the trace streams to that sink {e while
      being recorded}: images and file snapshots always precede the
      chunks that reference them, and a stats journal mark lands every
      few chunks — so killing the writer at any byte leaves a prefix
      that {!salvage} can recover and replay (file sink), a live ring
      window ({!ring_sink}), or content-addressed objects a later gc
      collects ([Repo.sink]).  {!finish} commits the sink; for a
      bounded sink it returns the sink's own result (the ring window).
      Sink IO failures surface as {!Io.Io_error} from the writer
      operation that hit them.

      [event_version] selects the chunk frame encoding (see
      {!Event.ectx}): 2 (the default) delta-codes register images
      against the task's previous frame; 1 writes plain arrays, for
      compatibility tests manufacturing old-style files. *)

  val event : w -> Event.t -> int
  (** Append one frame; returns its serialized size (cost charging). *)

  val add_image : w -> path:string -> Image.t -> unit
  (** Snapshot an executable by hard link/clone: accounting only. *)

  val add_file : w -> path:string -> cloned:bool -> string -> unit
  (** Snapshot file bytes; re-adding a path (the growing per-task
      cloned-data file) accounts only the growth. *)

  val find_file : w -> string -> string option
  val finish : w -> t

  val abort : w -> unit
  (** Release the writer without committing: shut the deflate pool down
      and close the sink (for the file sink, the journal fd a killed
      recording used to leak).  Idempotent; safe after a failed
      {!finish}; never raises.  Call exactly one of {!finish} or
      [abort]. *)
end

(** Cursor-based frame access — the only way to read frames. *)
module Reader : sig
  type cursor
  (** A position in a trace.  Cursors are cheap; all cursors over one
      trace share its chunk LRU. *)

  val open_ : t -> cursor
  val pos : cursor -> int
  val length : cursor -> int
  val at_end : cursor -> bool

  val peek : cursor -> Event.t option
  (** The frame at the cursor, without advancing. *)

  val next : cursor -> Event.t
  (** The frame at the cursor, advancing past it.  Raises
      [Invalid_argument] at end of trace. *)

  val seek : cursor -> int -> unit
  (** [seek c i] repositions to frame [i] (0 ≤ i ≤ length; positioning
      at [length] leaves the cursor at end).  Decoding happens at the
      next access, not here. *)

  val frame : t -> int -> Event.t
  (** Random access to one frame: binary-search the chunk index, decode
      (or LRU-hit) the covering chunk. *)

  val fold : (int -> Event.t -> 'a -> 'a) -> t -> 'a -> 'a
  (** Fold over every frame in order, decoding one chunk at a time. *)

  val iter : (int -> Event.t -> unit) -> t -> unit

  val to_array : t -> Event.t array
  (** Decode the whole trace into a fresh array — for tests and tools
      that genuinely need bulk access; replay does not. *)

  val find_from :
    ?kind_mask:int -> t -> int -> (Event.t -> bool) -> int option
  (** [find_from t i p] is the first frame index ≥ [i] satisfying [p].
      With [kind_mask] (an OR of {!Event.kind_bit}), chunks whose kind
      summary misses the mask are skipped without being inflated. *)

  val rfind_before :
    ?kind_mask:int -> t -> int -> (Event.t -> bool) -> int option
  (** [rfind_before t i p] is the last frame index < [i] satisfying
      [p]. *)
end

val n_events : t -> int
val stats : t -> stats
val chunk_index : t -> chunk_info array

val close : t -> unit
(** Release the trace's background decode pool (idempotent; a no-op for
    serial readers).  The trace stays readable — a later read recreates
    the pool on demand.  Call this when churning through many traces
    with [readahead > 0] (a salvage sweep, the fault matrix), where
    leaked worker domains would otherwise accumulate until the runtime
    refuses to spawn more. *)

val decoded_chunks : t -> int
(** Number of chunks inflated+decoded so far (LRU misses, including
    background readahead decodes) — lets tests verify that loading and
    partial reads stay lazy. *)

val get_opts : t -> opts

val set_opts : t -> opts -> unit
(** Reconfigure the pipeline of a built trace (e.g. turn on readahead
    before replaying a loaded trace).  Frame contents are unaffected:
    readahead only changes {e when} chunks are inflated, never what the
    reader returns. *)

val initial_exe : t -> string
(** The executable the recording started under. *)

val event_version : t -> int
(** The event encoding the trace's chunks use: 1 = plain register
    arrays, 2 = per-task register deltas.  Negotiated through the
    header version field (3 → v1, 4 → v2); readers of either kind of
    file decode transparently. *)

val compressed : t -> bool
(** Whether the trace's chunks are stored deflated — preserved verbatim
    by the repository manifest so a loaded trace decodes identically. *)

val integrity : t -> [ `Crc_checked | `Trusted ]
(** [`Crc_checked]: every stored chunk carries a CRC that is verified
    before decoding.  [`Trusted]: the trace predates per-chunk CRCs (a
    v2 file) — reads are structurally validated but not
    integrity-checked. *)

val image : t -> string -> Image.t
(** Raises [Invalid_argument] for unknown paths. *)

val file : t -> string -> string

val images : t -> (string * Image.t) list
(** Every snapshotted executable image, sorted by trace path. *)

val files : t -> (string * string) list
(** Every snapshotted file, sorted by trace path. *)

val chunk_stored : t -> int -> string
(** Chunk [i]'s stored (possibly deflated) bytes — the unit of
    content-addressed storage in the trace repository. *)

val of_parts :
  ?opts:opts ->
  ?event_version:int ->
  ?origin:string ->
  compressed:bool ->
  initial_exe:string ->
  chunks:(int * int * int * string) array ->
  images:(string * Image.t) list ->
  files:(string * string) list ->
  stats:stats ->
  unit ->
  (t, error) result
(** Validating assembly from externally stored parts (the repository's
    manifest plus object store).  Each chunk is
    [(first_frame, n_frames, kinds, stored_bytes)]; the same structural
    invariants the strict loader enforces are checked (contiguity from
    frame 0, no empty chunks, stats agreeing with the stream), and
    byte offsets and per-chunk CRCs are recomputed from the bytes. *)

val index : t -> Trace_index.t option
(** The trace's sidecar index, if one was built (or loaded from 'P'/'K'
    records).  Derived data: queries must work without it. *)

val set_index : t -> Trace_index.t -> unit
(** Attach a sidecar index; persisted by {!save}.  Raises
    [Invalid_argument] if the index does not cover exactly the trace's
    frames. *)

val drop_index : t -> unit

val map_frames : (int -> Event.t -> Event.t) -> t -> t
(** Rewrite every frame through [f], preserving chunk boundaries and
    rebuilding the index (per-chunk CRCs included).  A trace-surgery
    device for tests and tools (e.g. tamper injection for divergence
    checks). *)

(** {1 Persistence}

    The v3 on-disk format is a stream of self-delimiting records —
    each [tag, length, payload, crc32(tag, payload)] — between an
    8-byte magic ["RRTRACE3"] and a 16-byte commit footer (trailer
    offset + ["RRCOMMIT"]).  Images and file snapshots precede the
    chunks that reference them; the trailer repeats the full chunk
    index with per-chunk CRCs; the footer is written last, so its
    presence proves the writer finished.  v2 files remain loadable
    (flagged [`Trusted]); v1 reports {!Version_skew}. *)

val save : t -> string -> (unit, error) result
val save_exn : t -> string -> unit

val save_io : t -> Io.writer -> (unit, error) result
(** Persist through an arbitrary {!Io.writer} (fault injection, in-
    memory buffers).  The writer is closed in all cases. *)

val save_v2 : t -> string -> unit
(** Write the legacy v2 (monolithic payload, no CRC, no footer) layout
    — for compatibility tests only. *)

val open_ : ?opts:opts -> string -> (t, error) result
(** Open a saved trace: verify the commit footer, scan and CRC-check
    every record, cross-check the trailer index — without inflating any
    chunk.  [opts] configures the reader pipeline of the returned
    trace. *)

val load : ?opts:opts -> string -> (t, error) result
(** Alias of {!open_}. *)

val open_io : ?opts:opts -> Io.reader -> (t, error) result

val open_exn : ?opts:opts -> string -> t
(** {!open_}, raising {!Format_error} instead of returning [Error]. *)

val load_exn : ?opts:opts -> string -> t

(** {1 Salvage} *)

type salvage_report = {
  sr_path : string;
  sr_total_bytes : int;
  sr_valid_bytes : int; (** prefix that scanned as CRC-valid records *)
  sr_chunks_recovered : int;
  sr_frames_recovered : int;
  sr_chunks_lost : int option; (** [None]: total unknown (no trailer) *)
  sr_frames_lost : int option;
  sr_files_recovered : int;
  sr_images_recovered : int;
  sr_committed : bool; (** the commit footer was present and valid *)
  sr_damage : string option; (** [None]: the file was fully intact *)
}

val pp_salvage_report : salvage_report Fmt.t

val salvage : ?opts:opts -> string -> (t * salvage_report, error) result
(** Recover the longest verifiable prefix of a damaged (or healthy)
    trace: scan records until the first CRC failure or framing error,
    then decode-verify the recovered chunks and drop everything from
    the first undecodable one.  The returned trace is replayable — the
    record ordering invariant guarantees any prefix carries the images
    and file snapshots its chunks reference — and the report says
    exactly what was lost.  Errors only when nothing is recoverable
    (unreadable file, foreign magic, no surviving header). *)

val salvage_io : ?opts:opts -> Io.reader -> (t * salvage_report, error) result

val pp_stats : stats Fmt.t
