lib/workloads/instrument.mli: Workload
