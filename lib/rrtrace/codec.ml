(* Byte-level serialization for trace frames: LEB128-style varints with a
   zigzag transform for possibly-negative values, length-prefixed strings
   and lists. *)

type sink = Buffer.t

let sink () = Buffer.create 4096

let zigzag v = (v lsl 1) lxor (v asr 62)
let unzigzag v = (v lsr 1) lxor (-(v land 1))

let put_uvarint b v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char b (Char.chr byte);
      continue := false
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let put_int b v = put_uvarint b (zigzag v)

(* Encoded width, without encoding: the writer's saved-bytes ledger
   compares what a field would have cost against what it actually
   cost. *)
let uvarint_size v =
  let rec go n v = if v = 0 then n else go (n + 1) (v lsr 7) in
  if v = 0 then 1 else go 0 v

let int_size v = uvarint_size (zigzag v)

let put_string b s =
  put_uvarint b (String.length s);
  Buffer.add_string b s

let put_bytes b s = put_string b (Bytes.to_string s)

let put_list b f xs =
  put_uvarint b (List.length xs);
  List.iter (f b) xs

let put_array b f xs =
  put_uvarint b (Array.length xs);
  Array.iter (f b) xs

let put_bool b v = put_uvarint b (if v then 1 else 0)

type source = { data : string; mutable pos : int }

exception Corrupt of string

let source data = { data; pos = 0 }

let eof s = s.pos >= String.length s.data

let pos s = s.pos

let take s n =
  if n < 0 || s.pos + n > String.length s.data then raise (Corrupt "take");
  let out = String.sub s.data s.pos n in
  s.pos <- s.pos + n;
  out

let byte s =
  if s.pos >= String.length s.data then raise (Corrupt "eof");
  let c = Char.code s.data.[s.pos] in
  s.pos <- s.pos + 1;
  c

let get_uvarint s =
  let rec go shift acc =
    if shift > 62 then raise (Corrupt "varint too long");
    let b = byte s in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_int s = unzigzag (get_uvarint s)

let get_string s =
  let n = get_uvarint s in
  if s.pos + n > String.length s.data then raise (Corrupt "string length");
  let out = String.sub s.data s.pos n in
  s.pos <- s.pos + n;
  out

let get_bytes s = Bytes.of_string (get_string s)

(* NB: explicit loops — List.init/Array.init evaluation order is
   unspecified, and [f] reads from a stateful source. *)
let get_list s f =
  let n = get_uvarint s in
  let rec go i acc = if i = n then List.rev acc else go (i + 1) (f s :: acc) in
  go 0 []

let get_array s f = Array.of_list (get_list s f)

let get_bool s = get_uvarint s <> 0
