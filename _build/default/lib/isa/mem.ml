(* Physical page frames.

   A page frame can be mapped by several address spaces (after fork, or
   for inherited shared mappings).  [refs] counts mappers; private pages
   with [refs > 1] are copied on write (fork and checkpoints are cheap,
   exactly the property Section 6.1 of the paper relies on for
   checkpoints), while [shared] pages are written in place. *)

let page_size = 4096
let page_shift = 12

type prot = int

let prot_r = 1
let prot_w = 2
let prot_x = 4
let prot_rw = prot_r lor prot_w
let prot_rwx = prot_r lor prot_w lor prot_x
let prot_none = 0

type page = {
  mutable bytes : Bytes.t;
  mutable refs : int;
  mutable prot : prot;
  mutable shared : bool;
}

let fresh_page ?(prot = prot_rw) ?(shared = false) () =
  { bytes = Bytes.make page_size '\000'; refs = 1; prot; shared }

let page_index addr = addr lsr page_shift
let page_offset addr = addr land (page_size - 1)

let incref p = p.refs <- p.refs + 1

let decref p = p.refs <- p.refs - 1

(* Unshare a COW page: the caller keeps the copy, other mappers keep the
   original. *)
let unshare p =
  decref p;
  { bytes = Bytes.copy p.bytes; refs = 1; prot = p.prot; shared = p.shared }

let get_u8 p off = Char.code (Bytes.get p.bytes off)
let set_u8 p off v = Bytes.set p.bytes off (Char.chr (v land 0xff))
