(* The `cp` workload (paper §4.1): duplicate a tree of files with
   stat/open/read/write/close — single-threaded, syscall-dense, almost no
   user computation.  Reads are large and block-aligned, so the recorder's
   block-cloning fast path (§3.9) carries the whole recording cost. *)

module K = Kernel
module G = Guest
open Wl_common

type params = { files : int; file_kb : int }

let default = { files = 16; file_kb = 256 }

let chunk = 65536

let program b p =
  let src_paths = List.init p.files (Printf.sprintf "/src/f%d") in
  let dst_paths = List.init p.files (Printf.sprintf "/dst/f%d") in
  let src_tbl = path_table b src_paths in
  let dst_tbl = path_table b dst_paths in
  let buf = G.bss b chunk in
  let statbuf = G.bss b 32 in
  G.emit b
    ([ Asm.movi 12 0 ] (* i *)
    @. [ Asm.label "file_loop" ]
    (* r7 = src path, r9 = dst path *)
    @. [ Asm.movr 9 12;
         Asm.muli 9 8;
         Asm.addi 9 src_tbl;
         Asm.load 7 9 0;
         Asm.movr 9 12;
         Asm.muli 9 8;
         Asm.addi 9 dst_tbl;
         Asm.load 9 9 0 ]
    (* stat(src) *)
    @. G.sc Sysno.stat [ G.reg 7; G.imm statbuf ]
    @. die_if_error b 1
    (* open src/dst *)
    @. G.sc Sysno.openat [ G.imm 0; G.reg 7; G.imm Sysno.o_rdonly ]
    @. die_if_error b 2
    @. [ Asm.movr 10 0 ]
    @. G.sc Sysno.openat
         [ G.imm 0;
           G.reg 9;
           G.imm (Sysno.o_creat lor Sysno.o_wronly lor Sysno.o_trunc) ]
    @. die_if_error b 3
    @. [ Asm.movr 11 0 ]
    (* copy loop *)
    @. [ Asm.label "copy_loop" ]
    @. G.sys_read ~fd:(G.reg 10) ~buf:(G.imm buf) ~len:(G.imm chunk)
    @. [ Asm.jcc Insn.Le 0 (G.imm 0) "file_done"; Asm.movr 8 0 ]
    @. G.sys_write ~fd:(G.reg 11) ~buf:(G.imm buf) ~len:(G.reg 8)
    (* result check keeps the syscall site patchable (§3.1) *)
    @. [ Asm.jcc Insn.Le 0 (G.imm 0) "file_done" ]
    @. [ Asm.jmp "copy_loop" ]
    @. [ Asm.label "file_done" ]
    @. G.sys_close (G.reg 10)
    @. G.sys_close (G.reg 11)
    @. [ Asm.addi 12 1; Asm.jcc Insn.Lt 12 (G.imm p.files) "file_loop" ]
    @. G.sys_exit_group 0)

let make ?(params = default) () =
  let setup k =
    Vfs.mkdir_p (K.vfs k) "/bin";
    Vfs.mkdir_p (K.vfs k) "/src";
    Vfs.mkdir_p (K.vfs k) "/dst";
    for i = 0 to params.files - 1 do
      install_file k
        ~path:(Printf.sprintf "/src/f%d" i)
        ~seed:(1000 + i)
        ~len:(params.file_kb * 1024)
    done;
    let b = G.create () in
    program b params;
    K.install_image k ~path:"/bin/cp" (G.build b ~name:"cp" ())
  in
  { Workload.name = "cp"; exe = "/bin/cp"; setup; cores = 1; score_based = false }
