(* Tests for the chunk-indexed trace store: the versioned on-disk
   format, the lazy Reader cursor, and checkpoint re-seeking. *)

module W = Workload

let small_cp () = Wl_cp.make ~params:{ Wl_cp.files = 4; file_kb = 64 } ()

let small_make () =
  Wl_make.make
    ~params:{ Wl_make.jobs = 2; compiles = 4; src_kb = 8; compile_work = 2_000 }
    ()

let with_temp_file f =
  let path = Filename.temp_file "rrtrace" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* A synthetic frame stream bulky enough to span many chunks under a
   small [chunk_limit]. *)
let synth_event i =
  match i mod 4 with
  | 0 ->
    Event.E_sched
      { tid = 100 + (i mod 3);
        point =
          { Event.rcb = i * 7;
            point_regs = Array.init 17 (fun r -> (r * i) + 13);
            stack_extra = i } }
  | 1 ->
    Event.E_syscall
      { tid = 100;
        nr = Sysno.read;
        site = 0x1000 + i;
        writable_site = false;
        via_abort = false;
        regs_after = Array.init 17 (fun r -> r + i);
        writes = [ { Event.addr = 0x4000 + i; data = String.make 40 'x' } ];
        kind = Event.K_emulate }
  | 2 -> Event.E_insn_trap { tid = 100; reg = i mod 16; value = i * i }
  | _ -> Event.E_checksum { tid = 100; value = i * 31 }

let synth_trace ?(n = 400) ?(chunk_limit = 512) () =
  let w = Trace.Writer.create ~chunk_limit ~initial_exe:"/bin/x" () in
  for i = 0 to n - 1 do
    ignore (Trace.Writer.event w (synth_event i))
  done;
  Trace.Writer.finish w

(* ---- the chunk index and cursor ------------------------------------- *)

let test_multi_chunk_index () =
  let t = synth_trace () in
  let index = Trace.chunk_index t in
  Alcotest.(check bool)
    (Printf.sprintf "many chunks (%d)" (Array.length index))
    true
    (Array.length index >= 8);
  (* Index entries tile the frame range contiguously. *)
  let next = ref 0 in
  Array.iter
    (fun ci ->
      Alcotest.(check int) "contiguous first_frame" !next ci.Trace.first_frame;
      next := !next + ci.Trace.n_frames)
    index;
  Alcotest.(check int) "index covers all frames" (Trace.n_events t) !next

let test_seek_agrees_with_sequential () =
  let t = synth_trace () in
  let all = Trace.Reader.to_array t in
  let c = Trace.Reader.open_ t in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 200 do
    let i = Random.State.int rng (Array.length all) in
    Trace.Reader.seek c i;
    Alcotest.(check int) "pos after seek" i (Trace.Reader.pos c);
    if Trace.Reader.next c <> all.(i) then
      Alcotest.failf "frame %d differs between seek and sequential decode" i
  done;
  (* Cursor walk from a seek point continues in order. *)
  Trace.Reader.seek c (Array.length all - 5);
  for i = Array.length all - 5 to Array.length all - 1 do
    if Trace.Reader.next c <> all.(i) then Alcotest.failf "tail frame %d" i
  done;
  Alcotest.(check bool) "at_end" true (Trace.Reader.at_end c);
  Alcotest.(check (option reject)) "peek at end" None (Trace.Reader.peek c)

let test_reader_decodes_lazily () =
  let t = synth_trace () in
  let n_chunks = Array.length (Trace.chunk_index t) in
  with_temp_file (fun path ->
      Trace.save_exn t path;
      let loaded = Trace.load_exn path in
      Alcotest.(check int) "load inflates no chunk" 0
        (Trace.decoded_chunks loaded);
      ignore (Trace.Reader.frame loaded 0);
      Alcotest.(check int) "first access decodes one chunk" 1
        (Trace.decoded_chunks loaded);
      ignore (Trace.Reader.frame loaded (Trace.n_events loaded - 1));
      Alcotest.(check int) "far seek decodes one more chunk" 2
        (Trace.decoded_chunks loaded);
      (* LRU: re-reading the same frames decodes nothing new. *)
      ignore (Trace.Reader.frame loaded 0);
      ignore (Trace.Reader.frame loaded (Trace.n_events loaded - 1));
      Alcotest.(check int) "cache hits decode nothing" 2
        (Trace.decoded_chunks loaded);
      Alcotest.(check bool) "trace really is multi-chunk" true (n_chunks > 2))

let test_kind_mask_skips_chunks () =
  (* One lone E_patch frame near the end: a masked search must not
     inflate the all-sched chunks before it. *)
  let w = Trace.Writer.create ~chunk_limit:512 ~initial_exe:"/bin/x" () in
  for i = 0 to 299 do
    ignore (Trace.Writer.event w (synth_event (4 * i)))
  done;
  ignore (Trace.Writer.event w (Event.E_patch { tid = 100; site = 0xbeef }));
  let t = Trace.Writer.finish w in
  let mask = Event.kind_bit (Event.E_patch { tid = 0; site = 0 }) in
  let found =
    Trace.Reader.find_from ~kind_mask:mask t 0 (function
      | Event.E_patch _ -> true
      | _ -> false)
  in
  Alcotest.(check (option int)) "patch found" (Some 300) found;
  Alcotest.(check int) "only the patch chunk was inflated" 1
    (Trace.decoded_chunks t)

(* ---- on-disk format -------------------------------------------------- *)

let test_save_load_roundtrip_synthetic () =
  let t = synth_trace () in
  with_temp_file (fun path ->
      Trace.save_exn t path;
      let loaded = Trace.load_exn path in
      Alcotest.(check int) "frame count" (Trace.n_events t)
        (Trace.n_events loaded);
      Alcotest.(check int) "chunk count"
        (Array.length (Trace.chunk_index t))
        (Array.length (Trace.chunk_index loaded));
      Alcotest.(check bool) "frames identical" true
        (Trace.Reader.to_array t = Trace.Reader.to_array loaded))

let replay_workload_roundtrip mk =
  let recd, _ = W.record (mk ()) in
  with_temp_file (fun path ->
      Trace.save_exn recd.W.trace path;
      let loaded = Trace.load_exn path in
      let pstats, _ = Replayer.replay loaded in
      Alcotest.(check (option int)) "loaded trace replays to the same exit"
        recd.W.rec_stats.Recorder.exit_status pstats.Replayer.exit_status)

let test_save_load_replay_cp () = replay_workload_roundtrip small_cp
let test_save_load_replay_make () = replay_workload_roundtrip small_make

let check_format_error what f =
  match f () with
  | exception Trace.Format_error e ->
    let msg = Trace.error_to_string e in
    Alcotest.(check bool)
      (what ^ " error is descriptive: " ^ msg)
      true
      (String.length msg > 0)
  | _ -> Alcotest.failf "%s was accepted" what

let test_load_rejects_bad_magic () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc "NOTATRACE-at-all-really";
      close_out oc;
      check_format_error "bad magic" (fun () -> Trace.load_exn path))

let test_load_rejects_old_version () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc "RRTRACE1";
      output_string oc (String.make 64 '\x00');
      close_out oc;
      check_format_error "format version 1" (fun () -> Trace.load_exn path))

let test_load_rejects_future_version () =
  with_temp_file (fun path ->
      let b = Codec.sink () in
      Codec.put_uvarint b 99;
      let payload = Buffer.contents b in
      let oc = open_out_bin path in
      output_string oc "RRTRACE2";
      let len = Bytes.create 8 in
      Bytes.set_int64_le len 0 (Int64.of_int (String.length payload));
      output_bytes oc len;
      output_string oc payload;
      close_out oc;
      check_format_error "future version" (fun () -> Trace.load_exn path))

let test_load_rejects_truncation () =
  let t = synth_trace () in
  with_temp_file (fun path ->
      Trace.save_exn t path;
      let full = In_channel.with_open_bin path In_channel.input_all in
      (* Cut the file at several depths: mid-magic, mid-length,
         mid-payload.  Every cut must fail cleanly, never crash. *)
      List.iter
        (fun keep ->
          let oc = open_out_bin path in
          output_string oc (String.sub full 0 keep);
          close_out oc;
          check_format_error
            (Printf.sprintf "truncation at %d" keep)
            (fun () -> Trace.load_exn path))
        [ 4; 12; 40; String.length full / 2; String.length full - 1 ])

let test_corrupt_chunk_detected_lazily () =
  let t = synth_trace () in
  let original = Trace.Reader.to_array t in
  with_temp_file (fun path ->
      Trace.save_exn t path;
      let full =
        In_channel.with_open_bin path In_channel.input_all
      in
      (* Flip single bytes at several depths in the chunk stream.  The
         index stays valid, so open succeeds; the damage must surface as
         a Format_error when the covering chunk is decoded (a flip can
         also land in deflate padding bits and change nothing — that is
         why several offsets are probed and one detection suffices). *)
      let detected = ref 0 in
      List.iter
        (fun frac ->
          let b = Bytes.of_string full in
          let off = Bytes.length b * frac / 10 in
          Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xff));
          let oc = open_out_bin path in
          output_bytes oc b;
          close_out oc;
          match Trace.load_exn path with
          | exception Trace.Format_error _ -> incr detected
          | loaded -> (
            match Trace.Reader.to_array loaded with
            | exception Trace.Format_error _ -> incr detected
            | frames -> if frames <> original then incr detected))
        [ 3; 4; 5; 6; 7; 8; 9 ];
      Alcotest.(check bool)
        (Printf.sprintf "corruption detected (%d/7 flips)" !detected)
        true (!detected >= 5))

(* ---- durability: versions, integrity, salvage ------------------------ *)

let test_v2_compat () =
  let t = synth_trace () in
  with_temp_file (fun path ->
      Trace.save_v2 t path;
      let loaded = Trace.load_exn path in
      Alcotest.(check bool) "v2 loads flagged trusted" true
        (Trace.integrity loaded = `Trusted);
      Alcotest.(check bool) "frames identical" true
        (Trace.Reader.to_array t = Trace.Reader.to_array loaded))

let test_v3_integrity_flag () =
  let t = synth_trace () in
  with_temp_file (fun path ->
      Trace.save_exn t path;
      let loaded = Trace.load_exn path in
      Alcotest.(check bool) "v3 loads crc-checked" true
        (Trace.integrity loaded = `Crc_checked);
      Array.iter
        (fun ci ->
          if ci.Trace.crc32 = 0 then Alcotest.fail "chunk without a CRC")
        (Trace.chunk_index loaded))

let test_salvage_intact () =
  let t = synth_trace () in
  with_temp_file (fun path ->
      Trace.save_exn t path;
      match Trace.salvage path with
      | Error e ->
        Alcotest.failf "salvage of an intact trace failed: %s"
          (Trace.error_to_string e)
      | Ok (s, report) ->
        Alcotest.(check bool) "committed" true report.Trace.sr_committed;
        Alcotest.(check (option string)) "no damage" None
          report.Trace.sr_damage;
        Alcotest.(check int) "all chunks recovered"
          (Array.length (Trace.chunk_index t))
          report.Trace.sr_chunks_recovered;
        Alcotest.(check bool) "frames identical" true
          (Trace.Reader.to_array t = Trace.Reader.to_array s))

let test_salvage_truncated_prefix () =
  let t = synth_trace () in
  let original = Trace.Reader.to_array t in
  with_temp_file (fun path ->
      Trace.save_exn t path;
      let full = In_channel.with_open_bin path In_channel.input_all in
      List.iter
        (fun frac ->
          let cut = String.length full * frac / 10 in
          let oc = open_out_bin path in
          output_string oc (String.sub full 0 cut);
          close_out oc;
          match Trace.salvage path with
          | Error e ->
            Alcotest.failf "cut at %d unsalvageable: %s" cut
              (Trace.error_to_string e)
          | Ok (s, report) ->
            Alcotest.(check bool) "footer gone: uncommitted" false
              report.Trace.sr_committed;
            let frames = Trace.Reader.to_array s in
            Alcotest.(check bool) "no more frames than the original" true
              (Array.length frames <= Array.length original);
            Array.iteri
              (fun i e ->
                if e <> original.(i) then
                  Alcotest.failf "cut at %d: frame %d differs" cut i)
              frames)
        [ 3; 5; 8 ])

let test_restore_rejects_mismatched_trace () =
  let recd, _ = W.record (small_cp ()) in
  let trace = recd.W.trace in
  let r = Replayer.start trace in
  let third = Trace.n_events trace / 3 in
  while Replayer.cursor_index r < third do
    ignore (Replayer.step r)
  done;
  let snap = Replayer.snapshot r in
  let other = synth_trace () in
  match Replayer.restore other snap with
  | Error e ->
    Alcotest.(check bool) "mismatch is descriptive" true
      (String.length (Replayer.restore_error_to_string e) > 0)
  | Ok _ -> Alcotest.fail "restore accepted a mismatched trace"

(* ---- checkpoints over the cursor ------------------------------------- *)

let test_checkpoint_restore_after_seek () =
  let recd, _ = W.record (small_cp ()) in
  let trace = recd.W.trace in
  let r = Replayer.start trace in
  let third = Trace.n_events trace / 3 in
  while Replayer.cursor_index r < third do
    ignore (Replayer.step r)
  done;
  let snap = Replayer.snapshot r in
  while not (Replayer.at_end r) do
    ignore (Replayer.step r)
  done;
  let full = Replayer.stats_of r in
  (* Restore re-seeks the trace cursor through the chunk index and the
     replay must land on the identical exit. *)
  let r2 = Replayer.restore_exn trace snap in
  Alcotest.(check int) "restored cursor position" third
    (Replayer.cursor_index r2);
  while not (Replayer.at_end r2) do
    ignore (Replayer.step r2)
  done;
  Alcotest.(check (option int)) "restored replay reaches the same exit"
    full.Replayer.exit_status (Replayer.stats_of r2).Replayer.exit_status

(* ---- the multicore pipeline ------------------------------------------

   Two properties anchor the pipeline: (1) a Writer with background
   compression domains produces a byte-identical file to the serial
   Writer, and (2) readahead changes only *when* chunks are inflated,
   never what the reader returns — including across seeks. *)

(* A randomized frame stream: kinds, register contents and write
   payload sizes all drawn from [rng], so each seed exercises different
   chunk boundaries and deflate input. *)
let rand_event rng i =
  let r n = Random.State.int rng n in
  match r 4 with
  | 0 ->
    Event.E_sched
      { tid = 100 + r 3;
        point =
          { Event.rcb = r 1_000_000;
            point_regs = Array.init 17 (fun _ -> r 0xffff);
            stack_extra = r 64 } }
  | 1 ->
    Event.E_syscall
      { tid = 100;
        nr = Sysno.read;
        site = 0x1000 + i;
        writable_site = r 2 = 0;
        via_abort = false;
        regs_after = Array.init 17 (fun _ -> r 0xffff);
        writes =
          [ { Event.addr = 0x4000 + r 0x1000;
              data = String.init (1 + r 200) (fun _ -> Char.chr (r 256)) } ];
        kind = Event.K_emulate }
  | 2 -> Event.E_insn_trap { tid = 100; reg = r 16; value = r 1_000_000 }
  | _ -> Event.E_checksum { tid = 100; value = r 1_000_000 }

let write_with ~jobs events =
  let w =
    Trace.Writer.create ~chunk_limit:512
      ~opts:(Trace.make_opts ~jobs ())
      ~initial_exe:"/bin/x" ()
  in
  List.iter (fun e -> ignore (Trace.Writer.event w e)) events;
  Trace.Writer.finish w

let file_bytes path = In_channel.with_open_bin path In_channel.input_all

let test_parallel_save_identical () =
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 200 + Random.State.int rng 300 in
      let events = List.init n (rand_event rng) in
      let serial = write_with ~jobs:1 events in
      let parallel = write_with ~jobs:4 events in
      with_temp_file @@ fun p1 ->
      with_temp_file @@ fun p2 ->
      Trace.save_exn serial p1;
      Trace.save_exn parallel p2;
      if not (String.equal (file_bytes p1) (file_bytes p2)) then
        Alcotest.failf "seed %d: parallel save differs from serial" seed;
      (* The parallel writer must also account identically. *)
      let s1 = Trace.stats serial and s2 = Trace.stats parallel in
      Alcotest.(check int) "raw bytes equal" s1.Trace.raw_bytes
        s2.Trace.raw_bytes;
      Alcotest.(check int) "compressed bytes equal" s1.Trace.compressed_bytes
        s2.Trace.compressed_bytes;
      Alcotest.(check int) "chunk count equal" s1.Trace.n_chunks
        s2.Trace.n_chunks)
    [ 1; 2; 3; 4; 5 ]

let test_readahead_identical () =
  let t = synth_trace ~n:600 () in
  with_temp_file @@ fun path ->
  Trace.save_exn t path;
  let plain = Trace.load_exn path in
  let ahead = Trace.load_exn ~opts:(Trace.make_opts ~jobs:2 ~readahead:8 ()) path in
  let baseline = Trace.Reader.to_array plain in
  (* Sequential walk under readahead: same frames in the same order. *)
  let c = Trace.Reader.open_ ahead in
  Array.iteri
    (fun i e ->
      if Trace.Reader.next c <> e then
        Alcotest.failf "frame %d differs under readahead" i)
    baseline;
  Alcotest.(check bool) "cursor at end" true (Trace.Reader.at_end c);
  (* Random seeks: prefetch state must never leak a wrong chunk. *)
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 150 do
    let i = Random.State.int rng (Array.length baseline) in
    Trace.Reader.seek c i;
    if Trace.Reader.next c <> baseline.(i) then
      Alcotest.failf "frame %d differs under readahead after seek" i
  done;
  (* Background prefetch decodes count as decodes, never as corruption:
     the stats stay coherent. *)
  let st = Trace.stats ahead in
  Alcotest.(check bool) "reader stats coherent" true
    (st.Trace.lru_misses > 0 && st.Trace.lru_hits > 0)

(* Corruption under readahead: a prefetch worker that hits a corrupt
   chunk drops it; the error must still surface as a clean Format_error
   on the demand path (same observable behavior as readahead = 0),
   never a hang or an uncaught decode exception. *)
let test_corrupt_chunk_under_readahead () =
  let t = synth_trace () in
  let original = Trace.Reader.to_array t in
  with_temp_file @@ fun path ->
  Trace.save_exn t path;
  let full = In_channel.with_open_bin path In_channel.input_all in
  let detected = ref 0 in
  List.iter
    (fun frac ->
      let b = Bytes.of_string full in
      let off = Bytes.length b * frac / 10 in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xff));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      match Trace.load_exn ~opts:(Trace.make_opts ~jobs:2 ~readahead:8 ()) path with
      | exception Trace.Format_error _ -> incr detected
      | loaded -> (
        match Trace.Reader.to_array loaded with
        | exception Trace.Format_error _ -> incr detected
        | frames -> if frames <> original then incr detected))
    [ 3; 4; 5; 6; 7; 8; 9 ];
  Alcotest.(check bool)
    (Printf.sprintf "corruption detected under readahead (%d/7 flips)"
       !detected)
    true (!detected >= 1)

let suites =
  [ ( "trace.store",
      [ Alcotest.test_case "multi-chunk index" `Quick test_multi_chunk_index;
        Alcotest.test_case "seek agrees with sequential decode" `Quick
          test_seek_agrees_with_sequential;
        Alcotest.test_case "lazy chunk decoding + LRU" `Quick
          test_reader_decodes_lazily;
        Alcotest.test_case "kind mask skips chunks" `Quick
          test_kind_mask_skips_chunks ] );
    ( "trace.format",
      [ Alcotest.test_case "save/load roundtrip" `Quick
          test_save_load_roundtrip_synthetic;
        Alcotest.test_case "cp trace replays after save/load" `Quick
          test_save_load_replay_cp;
        Alcotest.test_case "make trace replays after save/load" `Quick
          test_save_load_replay_make;
        Alcotest.test_case "bad magic rejected" `Quick
          test_load_rejects_bad_magic;
        Alcotest.test_case "v1 traces rejected" `Quick
          test_load_rejects_old_version;
        Alcotest.test_case "future version rejected" `Quick
          test_load_rejects_future_version;
        Alcotest.test_case "truncation rejected" `Quick
          test_load_rejects_truncation;
        Alcotest.test_case "corrupt chunk detected lazily" `Quick
          test_corrupt_chunk_detected_lazily ] );
    ( "trace.durability",
      [ Alcotest.test_case "v2 traces load as trusted" `Quick test_v2_compat;
        Alcotest.test_case "v3 traces load crc-checked" `Quick
          test_v3_integrity_flag;
        Alcotest.test_case "salvage of an intact trace is lossless" `Quick
          test_salvage_intact;
        Alcotest.test_case "salvage of a truncated trace is a prefix" `Quick
          test_salvage_truncated_prefix;
        Alcotest.test_case "restore rejects a mismatched trace" `Quick
          test_restore_rejects_mismatched_trace ] );
    ( "trace.checkpoint",
      [ Alcotest.test_case "restore re-seeks the cursor" `Quick
          test_checkpoint_restore_after_seek ] );
    ( "trace.pipeline",
      [ Alcotest.test_case "parallel save is byte-identical" `Quick
          test_parallel_save_identical;
        Alcotest.test_case "readahead returns identical frames" `Quick
          test_readahead_identical;
        Alcotest.test_case "corrupt chunk under readahead" `Quick
          test_corrupt_chunk_under_readahead ] ) ]
