(* rr_cli — drive the record/replay system from the command line.

   The simulated machine has no persistent disk, so traces live for the
   duration of one invocation; the CLI chains phases the way the real rr
   binary chains `rr record` / `rr replay` / `rr dump`:

     rr_cli record cp            record a workload, print stats
     rr_cli replay cp            record then replay, verify equivalence
     rr_cli dump cp -n 30        print the first 30 trace frames
     rr_cli debug cp --watch 0x120000
                                 record, then reverse-debug: find the last
                                 write to an address
     rr_cli list                 available workloads *)

open Cmdliner

let workload_of_name = function
  | "cp" -> Wl_cp.make ()
  | "make" -> Wl_make.make ()
  | "octane" -> Wl_octane.make ()
  | "htmltest" -> Wl_htmltest.make ()
  | "sambatest" -> Wl_samba.make ()
  | "serve" -> Wl_serve.make ()
  | n -> Fmt.failwith "unknown workload %s (try: rr_cli list)" n

(* ---- shared flag table ------------------------------------------------

   Every flag that more than one subcommand accepts is declared here
   exactly once: names, docv and help text live in this table and
   nowhere else, so subcommands cannot drift apart in spelling or
   semantics (record/replay/index/seek/profile used to hand-roll
   --jobs/--readahead/-o separately).  --help output is generated from
   these declarations and smoke-rendered for every subcommand by the
   CLI lint in bin/dune. *)
module Flags = struct
  let workload_doc =
    "Workload to run (cp, make, octane, htmltest, sambatest, serve)."

  let workload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:workload_doc)

  (* For subcommands where --smoke replaces the positional argument. *)
  let opt_workload =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc:workload_doc)

  let trace_file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"A saved trace file.")

  let opt_trace_file ~doc =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc)

  let no_intercept =
    let doc = "Disable in-process syscall interception (paper §3)." in
    Arg.(value & flag & info [ "no-intercept" ] ~doc)

  let no_cloning =
    let doc = "Disable block cloning for large reads (paper §3.9)." in
    Arg.(value & flag & info [ "no-cloning" ] ~doc)

  let chaos =
    let doc =
      "Chaos mode: randomized scheduling to surface races (paper §8)."
    in
    Arg.(value & flag & info [ "chaos" ] ~doc)

  let seed =
    let doc = "Recording seed (scheduling and entropy)." in
    Arg.(value & opt int 1 & info [ "seed" ] ~doc)

  let jobs =
    let doc =
      "Worker domains that deflate trace chunks in the background while \
       recording continues (1 = serial; output is byte-identical either \
       way)."
    in
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

  let readahead =
    let doc =
      "Chunks the replay reader prefetches and inflates in the background \
       (0 = inflate on demand)."
    in
    Arg.(value & opt int 0 & info [ "readahead" ] ~docv:"N" ~doc)

  let out ~doc =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

  let smoke ~doc = Arg.(value & flag & info [ "smoke" ] ~doc)

  let repo_dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"A trace repository directory.")

  (* The recording options every recording subcommand accepts, combined
     into one term: parsed once, clamped once (Recorder.make_opts). *)
  let record_opts =
    let combine no_intercept no_cloning chaos seed jobs =
      Recorder.make_opts ~intercept:(not no_intercept)
        ~clone_blocks:(not no_cloning) ~chaos ~seed ~jobs ()
    in
    Term.(const combine $ no_intercept $ no_cloning $ chaos $ seed $ jobs)
end

let do_record w opts =
  let recd, _k = Workload.record ~opts w in
  let st = recd.Workload.rec_stats in
  Fmt.pr "recorded %s: exit=%a@." w.Workload.name
    Fmt.(option ~none:(any "?") int)
    st.Recorder.exit_status;
  Fmt.pr "  wall time      : %d (virtual ns)@." st.Recorder.wall_time;
  Fmt.pr "  ptrace stops   : %d@." st.Recorder.n_ptrace_stops;
  Fmt.pr "  syscalls       : %d@." st.Recorder.n_syscalls;
  Fmt.pr "  sched events   : %d@." st.Recorder.n_sched_events;
  Fmt.pr "  patched sites  : %d@." st.Recorder.n_patched_sites;
  Fmt.pr "  trace          : %a@." Trace.pp_stats (Trace.stats recd.Workload.trace);
  recd

(* Saved-trace commands get CLI-grade errors: a bad file is user error,
   not a crash.  Format_error can also surface after open, when a lazily
   decoded chunk turns out corrupt. *)
let with_trace_errors f =
  try f () with
  | Trace.Format_error e ->
    Fmt.epr "rr_cli: %a@." Trace.pp_error e;
    exit 1
  | Repo.Repo_error e ->
    Fmt.epr "rr_cli: %a@." Repo.pp_error e;
    exit 1
  | Io.Io_error e ->
    Fmt.epr "rr_cli: %a@." Io.pp_error e;
    exit 1
  | Sys_error msg | Failure msg ->
    Fmt.epr "rr_cli: %s@." msg;
    exit 1

let open_repo dir =
  match Repo.open_ dir with
  | Ok r -> r
  | Error e ->
    Fmt.epr "rr_cli: %a@." Repo.pp_error e;
    exit 1

(* Self-contained flight-recorder check (`record --smoke`): record a
   reference trace, then (a) kill a roomy-ring recording mid-run via the
   event-limit guard and require the retained window to be a replayable
   prefix of the reference whose last frame matches the live run, and
   (b) run a 2-chunk ring to completion and require the dropped-oldest
   window to equal the reference's tail, watermark-aligned. *)
let record_ring_smoke () =
  let wl () = Wl_cp.make ~params:{ Wl_cp.files = 16; file_kb = 64 } () in
  let fail fmt =
    Fmt.kstr
      (fun m ->
        Fmt.epr "record --smoke: %s@." m;
        exit 1)
      fmt
  in
  (* Small chunks and no syscall interception, so the trace is many
     small frames and the ring turns over on a small workload. *)
  let mk ?max_events ?sink () =
    Recorder.make_opts ~intercept:false ~chunk_limit:256 ?max_events ?sink ()
  in
  let w = wl () in
  let ref_trace, _, _ =
    Recorder.record ~opts:(mk ()) ~setup:w.Workload.setup ~exe:w.Workload.exe
      ()
  in
  let reference = Trace.Reader.to_array ref_trace in
  let total = Array.length reference in
  if Array.length (Trace.chunk_index ref_trace) < 4 then
    fail "reference trace too small to exercise the ring (%d chunks, %d frames, %a)"
      (Array.length (Trace.chunk_index ref_trace))
      total Trace.pp_stats (Trace.stats ref_trace);
  (* (a) killed mid-run, no drops: the window is a pure prefix. *)
  let ring = Trace.ring ~chunks:4096 in
  let w = wl () in
  let opts =
    mk ~max_events:(total / 2) ~sink:(Recorder.Sink_ring ring) ()
  in
  (match Recorder.run ~opts ~setup:w.Workload.setup ~exe:w.Workload.exe () with
  | Error (Recorder.Rec_failure _) -> ()
  | Error (Recorder.Rec_trace e) ->
    fail "kill run: wrong error class: %s" (Trace.error_to_string e)
  | Ok _ -> fail "kill run: the event-limit guard never fired");
  let window, report = Trace.ring_trace ring in
  if report.Trace.rr_dropped_chunks <> 0 || report.Trace.rr_base_frame <> 0 then
    fail "kill run: roomy ring dropped chunks (%a)" Trace.pp_ring_report report;
  let frames = Trace.Reader.to_array window in
  let n = Array.length frames in
  if n = 0 then fail "kill run: empty window";
  Array.iteri
    (fun i e ->
      if e <> reference.(i) then fail "kill run: window frame %d diverges" i)
    frames;
  (match Replayer.replay window with
  | (_ : Replayer.stats * Kernel.t) -> ()
  | exception e ->
    fail "kill run: salvaged window does not replay: %s" (Printexc.to_string e));
  Fmt.pr
    "record --smoke: killed at event %d/%d; window of %d frames is a \
     replayable prefix (last frame matches the live run)@."
    (total / 2) total n;
  (* (b) bounded ring on a full run: drop-oldest, watermark-aligned. *)
  let ring = Trace.ring ~chunks:2 in
  let w = wl () in
  let opts = mk ~sink:(Recorder.Sink_ring ring) () in
  (match Recorder.run ~opts ~setup:w.Workload.setup ~exe:w.Workload.exe () with
  | Ok _ -> ()
  | Error e -> fail "bounded run failed: %s" (Recorder.error_to_string e));
  let window, report = Trace.ring_trace ring in
  if report.Trace.rr_dropped_chunks = 0 || report.Trace.rr_base_frame = 0 then
    fail "bounded run: 2-chunk ring never dropped (%a)" Trace.pp_ring_report
      report;
  let frames = Trace.Reader.to_array window in
  let base_frame = report.Trace.rr_base_frame in
  if base_frame + Array.length frames <> total then
    fail "bounded run: window [%d, %d) does not end at the live run's end (%d)"
      base_frame
      (base_frame + Array.length frames)
      total;
  Array.iteri
    (fun i e ->
      if e <> reference.(base_frame + i) then
        fail "bounded run: window frame %d diverges from live frame %d" i
          (base_frame + i))
    frames;
  Fmt.pr "record --smoke: 2-chunk ring retained the tail [%d, %d) of %d \
          frames; %a@."
    base_frame total total Trace.pp_ring_report report

let record_cmd =
  let ring_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "ring" ] ~docv:"N"
          ~doc:
            "Flight-recorder mode: stream the trace into a bounded \
             in-memory ring of $(docv) chunks (drop-oldest, \
             journal-watermark aligned) instead of keeping it all; \
             persist the window only when a --dump-on trigger fires.")
  in
  let dump_on_arg =
    Arg.(
      value & opt_all string []
      & info [ "dump-on" ] ~docv:"TRIGGER"
          ~doc:
            "Persist the ring window when $(docv) fires: signal (the \
             recording died), exit!=0, divergence (a verification replay \
             of the window diverged), or always.  Repeatable; default \
             always.")
  in
  let repo_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "repo" ] ~docv:"DIR"
          ~doc:
            "Store the trace (or the dumped ring window) \
             content-addressed in the repository at $(docv), created if \
             missing; shared chunks dedup against what is already there.")
  in
  let smoke_arg =
    Flags.smoke
      ~doc:
        "Run the built-in flight-recorder check instead: a recording \
         killed mid-run must salvage its ring window into a replayable \
         prefix, and a 2-chunk ring must retain exactly the live run's \
         tail."
  in
  let record_plain w opts out repo =
    let recd =
      match repo with
      | None -> do_record w opts
      | Some dir -> (
        let repo =
          match Repo.init dir with
          | Ok r -> r
          | Error e ->
            Fmt.epr "rr_cli: %a@." Repo.pp_error e;
            exit 1
        in
        let opts =
          Recorder.with_sink opts (Recorder.Sink_repo (repo, w.Workload.name))
        in
        let recd = do_record w opts in
        match Repo.stats repo with
        | Ok s ->
          Fmt.pr "stored '%s' in %s:@.%a@." w.Workload.name (Repo.path repo)
            Repo.pp_stats s;
          recd
        | Error e ->
          Fmt.epr "rr_cli: %a@." Repo.pp_error e;
          exit 1)
    in
    match out with
    | Some path -> (
      match Trace.save recd.Workload.trace path with
      | Ok () -> Fmt.pr "trace saved to %s@." path
      | Error e ->
        Fmt.epr "rr_cli: %a@." Trace.pp_error e;
        exit 1)
    | None -> ()
  in
  let record_flight w opts out repo chunks dump_on =
    let triggers =
      match dump_on with
      | [] -> [ Recorder.On_always ]
      | l ->
        List.map
          (fun s ->
            match Flight.parse_trigger s with
            | Some t -> t
            | None ->
              Fmt.epr
                "rr_cli: unknown --dump-on trigger %S (signal, exit!=0, \
                 divergence, always)@."
                s;
              exit 2)
          l
    in
    let opts = Recorder.with_dump_on opts triggers in
    let ring = Trace.ring ~chunks in
    let dump =
      match (repo, out) with
      | Some dir, _ ->
        let repo =
          match Repo.init dir with
          | Ok r -> r
          | Error e ->
            Fmt.epr "rr_cli: %a@." Repo.pp_error e;
            exit 1
        in
        Some (Flight.To_repo (repo, w.Workload.name))
      | None, Some path -> Some (Flight.To_file path)
      | None, None -> None
    in
    match
      Flight.record ~opts ?dump ~ring ~setup:w.Workload.setup
        ~exe:w.Workload.exe ()
    with
    | Error e ->
      Fmt.epr "rr_cli: dump failed: %a@." Recorder.pp_error e;
      exit 1
    | Ok o ->
      (match o.Flight.result with
      | Ok (st, _) ->
        Fmt.pr "recorded %s (flight): exit=%a@." w.Workload.name
          Fmt.(option ~none:(any "?") int)
          st.Recorder.exit_status
      | Error e ->
        Fmt.pr "recording died: %a@." Recorder.pp_error e);
      Fmt.pr "  ring           : %a@." Trace.pp_ring_report o.Flight.report;
      (match o.Flight.cause with
      | Some c -> Fmt.pr "  trigger fired  : %a@." Flight.pp_cause c
      | None -> Fmt.pr "  trigger fired  : none@.");
      (match o.Flight.dumped_to with
      | Some where -> Fmt.pr "  window dumped  : %s@." where
      | None -> ())
  in
  let run name opts out ring dump_on repo smoke =
    with_trace_errors @@ fun () ->
    if smoke then record_ring_smoke ()
    else begin
      let w =
        match name with
        | Some n -> workload_of_name n
        | None ->
          Fmt.epr "rr_cli: record needs a WORKLOAD argument (or --smoke)@.";
          exit 2
      in
      match ring with
      | Some chunks -> record_flight w opts out repo chunks dump_on
      | None -> record_plain w opts out repo
    end
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Record a workload and print trace statistics.  With --ring, \
          flight-recorder mode: a bounded in-memory window persisted only \
          when a --dump-on trigger fires.  With --repo, the trace is \
          stored content-addressed.")
    Term.(
      const run $ Flags.opt_workload $ Flags.record_opts
      $ Flags.out ~doc:"Save the trace (or the dumped ring window) to FILE."
      $ ring_arg $ dump_on_arg $ repo_arg $ smoke_arg)

(* replay_cmd is defined after the shard helpers below: its --conn mode
   extracts and replays a single connection's sub-trace. *)

let dump_cmd =
  let n_arg =
    Arg.(value & opt int 40 & info [ "n" ] ~doc:"Number of frames to print.")
  in
  let run name n =
    let w = workload_of_name name in
    let recd, _ = Workload.record w in
    let trace = recd.Workload.trace in
    let total = Trace.n_events trace in
    Fmt.pr "trace of %s: %d frames@." w.Workload.name total;
    let c = Trace.Reader.open_ trace in
    while Trace.Reader.pos c < min n total do
      let i = Trace.Reader.pos c in
      Fmt.pr "%5d  %a@." i Event.pp (Trace.Reader.next c)
    done;
    if total > n then Fmt.pr "... (%d more)@." (total - n);
    let st = Trace.stats trace in
    Fmt.pr "(decoded %d of %d chunks; lru %d hits / %d misses / %d evictions)@."
      (Trace.decoded_chunks trace)
      (Array.length (Trace.chunk_index trace))
      st.Trace.lru_hits st.Trace.lru_misses st.Trace.lru_evictions
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Record a workload and print its trace frames.")
    Term.(const run $ Flags.workload $ n_arg)

(* debug TARGET: TARGET is a saved trace file, or a workload name that
   is recorded on the spot (interception off so every syscall is its own
   frame — the debugger's time axis).  Four modes:
     --script FILE   run a canned RSP session over the in-memory
                     transport (the CI smoke's mode; exit 1 on mismatch)
     --port P        serve the GDB remote protocol on 127.0.0.1:P
     --socket PATH   ... on a Unix-domain socket
     (none)          the built-in exploration demo (--watch ADDR) *)
let debug_cmd =
  let watch_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "watch" ] ~docv:"ADDR"
          ~doc:"Find the last frame that changed 8 bytes at ADDR (hex ok).")
  in
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"P"
          ~doc:"Serve the GDB remote protocol on 127.0.0.1:$(docv).")
  in
  let sockpath_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Serve the GDB remote protocol on a Unix-domain socket.")
  in
  let script_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:
            "Run the scripted RSP session in $(docv) against the trace over \
             the in-memory transport and check its expectations.")
  in
  let cp_every_arg =
    Arg.(
      value & opt int 16
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Checkpoint cadence in frames (clamped to >= 1).")
  in
  let trace_of_target target =
    if Sys.file_exists target then Trace.load_exn target
    else begin
      let w = workload_of_name target in
      let recd, _ =
        Workload.record ~opts:(Recorder.make_opts ~intercept:false ()) w
      in
      recd.Workload.trace
    end
  in
  let serve_transport trace checkpoint_every tr =
    let d =
      Debugger.create ~opts:(Debugger.make_opts ~checkpoint_every ()) trace
    in
    Gdb_server.run (Gdb_server.create d tr);
    tr.Gdb_transport.close ();
    Fmt.pr "debugger detached at frame %d (%d checkpoints, %d restores)@."
      (Debugger.pos d)
      (Debugger.checkpoints_taken d)
      (Debugger.checkpoints_restored d)
  in
  let run_script trace checkpoint_every file =
    let text = In_channel.with_open_bin file In_channel.input_all in
    match Gdb_script.parse text with
    | Error msg ->
      Fmt.epr "rr_cli: %s: %s@." file msg;
      exit 2
    | Ok steps -> (
      let d =
        Debugger.create ~opts:(Debugger.make_opts ~checkpoint_every ()) trace
      in
      let client_tr, server_tr = Gdb_transport.pair () in
      let server = Gdb_server.create d server_tr in
      let client =
        Gdb_client.create ~pump:(fun () -> Gdb_server.pump server) client_tr
      in
      match Gdb_script.run ~log:(fun l -> Fmt.pr "  %s@." l) client steps with
      | Ok n -> Fmt.pr "script ok: %d steps@." n
      | Error msg ->
        Fmt.epr "rr_cli: debug --script: %s@." msg;
        exit 1)
  in
  let explore trace watch =
    let d =
      Debugger.create ~opts:(Debugger.make_opts ~checkpoint_every:16 ()) trace
    in
    Debugger.seek d (Debugger.n_events d);
    Fmt.pr "replayed to the end: %d frames, %d checkpoints@." (Debugger.pos d)
      (Debugger.checkpoints_taken d);
    match watch with
    | None ->
      (* Demonstrate reverse execution: step back through syscalls. *)
      let is_sc = function Event.E_syscall _ -> true | _ -> false in
      let rec back n =
        if n > 0 then
          match Debugger.reverse_continue_to d is_sc with
          | Some i ->
            Fmt.pr "reverse-continue: stopped after frame %d (%a)@." i
              Event.pp (Debugger.frame d i);
            back (n - 1)
          | None -> Fmt.pr "reached the beginning@."
      in
      back 3
    | Some addr_s ->
      let addr = int_of_string addr_s in
      let tid =
        match Debugger.live_tids d with
        | tid :: _ -> tid
        | [] -> (
          (* everyone exited; use the root tid from the first exec frame *)
          match Debugger.frame d 0 with
          | Event.E_exec { tid; _ } -> tid
          | _ -> Fmt.failwith "no task to watch")
      in
      (match Debugger.Query.last_write d ~tid ~addr ~len:8 with
      | Error e ->
        Fmt.epr "rr_cli: %a@." Debugger.Query.pp_error e;
        exit 1
      | Ok (Some i) ->
        Fmt.pr "last write to %#x happened during frame %d: %a@." addr i
          Event.pp (Debugger.frame d i);
        Debugger.seek d i;
        Fmt.pr "value before: %d@." (Debugger.read_word d tid addr);
        Debugger.seek d (i + 1);
        Fmt.pr "value after : %d@." (Debugger.read_word d tid addr)
      | Ok None -> Fmt.pr "%#x never changed@." addr)
  in
  let run target watch port sockpath script checkpoint_every =
    with_trace_errors @@ fun () ->
    let trace = trace_of_target target in
    match (script, port, sockpath) with
    | Some file, None, None -> run_script trace checkpoint_every file
    | None, Some port, None ->
      Fmt.pr "gdb stub listening on 127.0.0.1:%d (target remote :%d)@." port
        port;
      serve_transport trace checkpoint_every (Gdb_sock.listen_tcp ~port ())
    | None, None, Some path ->
      Fmt.pr "gdb stub listening on %s@." path;
      serve_transport trace checkpoint_every (Gdb_sock.listen_unix ~path)
    | None, None, None -> explore trace watch
    | _ ->
      Fmt.epr "rr_cli: choose at most one of --port, --socket, --script@.";
      exit 2
  in
  let target_arg =
    let doc = "A saved trace file, or a workload name to record first." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc)
  in
  Cmd.v
    (Cmd.info "debug"
       ~doc:
         "Drive a trace with the reverse-execution debugger: serve it to \
          gdb over the remote serial protocol (--port/--socket), run a \
          scripted RSP session (--script), or run the built-in exploration \
          demo.")
    Term.(
      const run $ target_arg $ watch_arg $ port_arg $ sockpath_arg
      $ script_arg $ cp_every_arg)

let replay_file_cmd =
  let run path =
    with_trace_errors @@ fun () ->
    let trace = Trace.load_exn path in
    let stats, _ = Replayer.replay trace in
    Fmt.pr "replayed %s: exit=%a, %d frames@." path
      Fmt.(option ~none:(any "?") int)
      stats.Replayer.exit_status stats.Replayer.events_applied
  in
  Cmd.v
    (Cmd.info "replay-file" ~doc:"Replay a trace saved with record -o.")
    Term.(const run $ Flags.trace_file)

let dump_file_cmd =
  let n_arg =
    Arg.(value & opt int 40 & info [ "n" ] ~doc:"Number of frames to print.")
  in
  let run path n =
    with_trace_errors @@ fun () ->
    let trace = Trace.load_exn path in
    let total = Trace.n_events trace in
    Fmt.pr "%s: %d frames, %a@." path total Trace.pp_stats
      (Trace.stats trace);
    Fmt.pr "integrity: %s@."
      (match Trace.integrity trace with
      | `Crc_checked -> "crc-checked"
      | `Trusted -> "trusted (pre-CRC v2 format)");
    (* Only the chunks covering the first [n] frames are inflated. *)
    let c = Trace.Reader.open_ trace in
    while Trace.Reader.pos c < min n total do
      let i = Trace.Reader.pos c in
      Fmt.pr "%5d  %a@." i Event.pp (Trace.Reader.next c)
    done;
    let st = Trace.stats trace in
    Fmt.pr "(decoded %d of %d chunks; lru %d hits / %d misses / %d evictions)@."
      (Trace.decoded_chunks trace)
      (Array.length (Trace.chunk_index trace))
      st.Trace.lru_hits st.Trace.lru_misses st.Trace.lru_evictions
  in
  Cmd.v
    (Cmd.info "dump-file" ~doc:"Print the frames of a saved trace.")
    Term.(const run $ Flags.trace_file $ n_arg)

(* Self-contained durability check: record sambatest, save it, guillotine
   the file at several offsets inside the record stream, and require
   every cut to salvage into a replayable prefix of the original.  Used
   by `dune runtest` as an end-to-end crash-recovery gate. *)
let repair_smoke () =
  let w = workload_of_name "sambatest" in
  let recd, _ = Workload.record w in
  let trace = recd.Workload.trace in
  let path = Filename.temp_file "rr_smoke" ".trace" in
  Trace.save_exn trace path;
  let data = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  let len = String.length data in
  (* Cut inside the body (before the footer), so every cut exercises
     the record scanner rather than just the footer check. *)
  let body = Int64.to_int (String.get_int64_le data (len - 16)) in
  let orig = Trace.Reader.to_array trace in
  let total = Array.length orig in
  let failures = ref 0 in
  (* Three cuts: early in the record stream (most data lost), one byte
     into the last record's CRC (the final chunk is dropped), and at
     the trailer offset (every record intact, commit footer gone — the
     exact state a writer killed between flush and finish leaves). *)
  List.iter
    (fun cut ->
      let tpath = Filename.temp_file "rr_smoke" ".cut" in
      Out_channel.with_open_bin tpath (fun oc ->
          Out_channel.output_string oc (String.sub data 0 cut));
      (match Trace.salvage tpath with
      | Ok (t, report) ->
        let frames = Trace.Reader.to_array t in
        let n = Array.length frames in
        let prefix_ok =
          n <= total
          &&
          let ok = ref true in
          Array.iteri (fun i e -> if e <> orig.(i) then ok := false) frames;
          !ok
        in
        let replay_ok =
          n = 0
          ||
          match Replayer.replay t with
          | _ -> true
          | exception e ->
            Fmt.epr "cut@%d: replay of salvaged prefix raised %s@." cut
              (Printexc.to_string e);
            false
        in
        Fmt.pr "cut@%d: recovered %d/%d frames, prefix %s, replay %s@." cut n
          total
          (if prefix_ok then "ok" else "MISMATCH")
          (if replay_ok then "ok" else "FAILED");
        Fmt.pr "  %a@." Trace.pp_salvage_report report;
        if not (prefix_ok && replay_ok) then incr failures
      | Error e ->
        Fmt.pr "cut@%d: unsalvageable: %a@." cut Trace.pp_error e;
        incr failures);
      Sys.remove tpath)
    [ max 9 (35 * body / 100); body - 1; body ];
  if !failures > 0 then begin
    Fmt.epr "repair --smoke: %d of 3 cuts failed@." !failures;
    exit 1
  end
  else Fmt.pr "repair --smoke: all cuts salvaged into replayable prefixes@."

let repair_cmd =
  let smoke_arg =
    Flags.smoke
      ~doc:
        "Run the built-in crash-recovery check instead of repairing a file: \
         record the sambatest workload, truncate its saved trace at three \
         offsets, and verify each cut salvages into a replayable prefix."
  in
  let opt_file_arg =
    Flags.opt_trace_file ~doc:"A (possibly damaged) saved trace file."
  in
  let run path smoke out =
    with_trace_errors @@ fun () ->
    if smoke then repair_smoke ()
    else begin
      match path with
      | None ->
        Fmt.epr "rr_cli: repair needs a TRACE argument (or --smoke)@.";
        exit 2
      | Some path -> (
        match Trace.salvage path with
        | Ok (t, report) ->
          Fmt.pr "%a@." Trace.pp_salvage_report report;
          (match out with
          | Some out_path ->
            Trace.save_exn t out_path;
            Fmt.pr "repaired trace (%d frames) saved to %s@."
              (Trace.n_events t) out_path
          | None -> ());
          if report.Trace.sr_damage <> None then exit 3
        | Error e ->
          Fmt.epr "rr_cli: nothing recoverable: %a@." Trace.pp_error e;
          exit 1)
    end
  in
  let out_arg =
    Flags.out
      ~doc:"Save the salvaged trace to FILE (re-written, fully committed)."
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Salvage the longest verifiable prefix of a damaged trace and \
          report what was lost.  Exits 0 if the file was intact, 3 if \
          something was recovered but data was lost, 1 if nothing was \
          recoverable.")
    Term.(const run $ opt_file_arg $ smoke_arg $ out_arg)

(* Self-contained index check: record sambatest, index it, save, reopen
   cold, and require (a) the index to come back from disk, (b) a deep
   seek to restore a durable checkpoint instead of replaying from frame
   0 (the index.hit / replay.checkpoint_restore counters say so), and
   (c) indexed query answers to equal scan answers on the same trace. *)
let index_smoke () =
  let w = workload_of_name "sambatest" in
  let recd, _ = Workload.record w in
  let trace = recd.Workload.trace in
  ignore (Trace_indexer.build_and_attach ~checkpoint_every:8 trace);
  let path = Filename.temp_file "rr_index" ".trace" in
  Trace.save_exn trace path;
  let t2 = Trace.load_exn path in
  Sys.remove path;
  if Trace.index t2 = None then begin
    Fmt.epr "index --smoke: reopened trace carries no index@.";
    exit 1
  end;
  let n = Trace.n_events t2 in
  let hit = Telemetry.counter "index.hit" in
  let restores = Telemetry.counter "replay.checkpoint_restore" in
  let hit0 = Telemetry.counter_value hit in
  let restores0 = Telemetry.counter_value restores in
  let d = Debugger.create t2 in
  Debugger.seek d (n - 1);
  let hits = Telemetry.counter_value hit - hit0 in
  let restored = Telemetry.counter_value restores - restores0 in
  if hits < 1 || restored < 1 then begin
    Fmt.epr
      "index --smoke: cold seek to frame %d replayed from scratch \
       (index.hit +%d, checkpoint_restore +%d)@."
      (n - 1) hits restored;
    exit 1
  end;
  Fmt.pr "index --smoke: cold seek to frame %d used a durable checkpoint \
          (index.hit +%d, restores +%d)@."
    (n - 1) hits restored;
  (* Answer equality, indexed vs. scan, on the same reopened trace. *)
  let d0 =
    Debugger.create ~opts:(Debugger.make_opts ~use_index:false ()) t2
  in
  Debugger.seek d0 (n - 1);
  let root =
    match Trace.Reader.frame t2 0 with
    | Event.E_exec { tid; _ } -> tid
    | e -> Event.tid_of e
  in
  let failures = ref 0 in
  let check what a b =
    if a <> b then begin
      Fmt.epr "index --smoke: %s: indexed %a <> scan %a@." what
        Fmt.(Dump.option int) a
        Fmt.(Dump.option int) b;
      incr failures
    end
  in
  let pcs =
    Array.to_seq (Trace.Reader.to_array t2)
    |> Seq.filter_map Event.frame_pc
    |> List.of_seq |> List.sort_uniq compare
  in
  List.iteri
    (fun i pc ->
      if i < 8 then
        check
          (Printf.sprintf "prev_exec %#x" pc)
          (Result.get_ok (Debugger.Query.prev_exec d ~pc))
          (Result.get_ok (Debugger.Query.prev_exec d0 ~pc)))
    pcs;
  List.iter
    (fun addr ->
      check
        (Printf.sprintf "last_write %#x" addr)
        (Result.get_ok (Debugger.Query.last_write d ~tid:root ~addr ~len:8))
        (Result.get_ok (Debugger.Query.last_write d0 ~tid:root ~addr ~len:8)))
    [ 0x120000; 0x121000; 0x10000 ];
  Debugger.seek d (n / 2);
  let mid_clock = Debugger.clock d in
  check "seek_to_time"
    (Result.to_option (Debugger.Query.seek_to_time d mid_clock))
    (Result.to_option (Debugger.Query.seek_to_time d0 mid_clock));
  if !failures > 0 then begin
    Fmt.epr "index --smoke: %d indexed answers diverged from scans@." !failures;
    exit 1
  end;
  Fmt.pr "index --smoke: indexed answers match scans (%d pcs, 3 probes, \
          seek_to_time)@."
    (min 8 (List.length pcs))

let index_cmd =
  let smoke_arg =
    Flags.smoke
      ~doc:
        "Run the built-in index round-trip check instead of indexing a file: \
         record sambatest, index and save it, reopen cold, and verify deep \
         seeks restore durable checkpoints and indexed answers match scans."
  in
  let opt_file_arg = Flags.opt_trace_file ~doc:"A saved trace file to index." in
  let every_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "every" ] ~docv:"N"
          ~doc:
            "Durable-checkpoint cadence in frames (clamped to >= 1; default \
             about n/16).")
  in
  let out_arg =
    Flags.out ~doc:"Write the indexed trace to FILE (default: rewrite TRACE)."
  in
  let run path smoke every out =
    with_trace_errors @@ fun () ->
    if smoke then index_smoke ()
    else begin
      match path with
      | None ->
        Fmt.epr "rr_cli: index needs a TRACE argument (or --smoke)@.";
        exit 2
      | Some path ->
        let trace = Trace.load_exn path in
        let ix = Trace_indexer.build_and_attach ?checkpoint_every:every trace in
        let out = Option.value out ~default:path in
        Trace.save_exn trace out;
        Fmt.pr
          "indexed %d frames (%d durable checkpoints); saved to %s@."
          (Trace.n_events trace)
          (Array.length (Trace_index.checkpoints ix))
          out
    end
  in
  Cmd.v
    (Cmd.info "index"
       ~doc:
         "Build the persistent seek index of a saved trace (one replay \
          pass) and store it in the trace: per-pc and per-address tables \
          plus durable checkpoints, so later sessions seek in O(delta) \
          from a cold open.")
    Term.(const run $ opt_file_arg $ smoke_arg $ every_arg $ out_arg)

let seek_cmd =
  let frame_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "frame" ] ~docv:"N" ~doc:"Seek to frame $(docv).")
  in
  let time_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "time" ] ~docv:"T"
          ~doc:
            "Seek to the latest position whose virtual-clock reading is at \
             most $(docv).")
  in
  let no_index_arg =
    Arg.(
      value & flag
      & info [ "no-index" ]
          ~doc:"Ignore any persistent index (scan-based seeks only).")
  in
  let run path frame time no_index =
    with_trace_errors @@ fun () ->
    let trace = Trace.load_exn path in
    let d =
      Debugger.create
        ~opts:(Debugger.make_opts ~use_index:(not no_index) ()) trace
    in
    let report () =
      Fmt.pr
        "at frame %d of %d (clock %d); indexed=%b, checkpoints restored=%d@."
        (Debugger.pos d) (Debugger.n_events d) (Debugger.clock d)
        (Debugger.indexed d)
        (Debugger.checkpoints_restored d)
    in
    match (frame, time) with
    | Some f, None -> (
      match Debugger.Query.seek_to_frame d f with
      | Ok () -> report ()
      | Error e ->
        Fmt.epr "rr_cli: %a@." Debugger.Query.pp_error e;
        exit 1)
    | None, Some t -> (
      match Debugger.Query.seek_to_time d t with
      | Ok _ -> report ()
      | Error e ->
        Fmt.epr "rr_cli: %a@." Debugger.Query.pp_error e;
        exit 1)
    | _ ->
      Fmt.epr "rr_cli: seek needs exactly one of --frame or --time@.";
      exit 2
  in
  Cmd.v
    (Cmd.info "seek"
       ~doc:
         "Open a saved trace and seek to a frame (--frame) or virtual-clock \
          time (--time), reporting whether the persistent index made the \
          jump O(delta).")
    Term.(const run $ Flags.trace_file $ frame_arg $ time_arg $ no_index_arg)

let stats_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the telemetry snapshot as a single JSON object.")
  in
  let attribution_arg =
    Arg.(
      value & flag
      & info [ "attribution" ]
          ~doc:
            "Trace the session on the timeline and print the per-stage \
             overhead ledger (self-time percentages from the scope tree, \
             not flat spans).  With --json, emits the ledger as JSON \
             instead of the telemetry snapshot.")
  in
  (* Exercise the flight-recorder, repository and shard instruments
     inside the session so the snapshot always carries ring.*, repo.*,
     shard.* and serve.* metrics: a tiny 2-chunk ring recording
     (guaranteed drops), the same trace stored twice into a throwaway
     repo (the second store is all shared objects), then a small served
     recording split into per-connection shards. *)
  let exercise_ring_and_repo () =
    let w = Wl_cp.make ~params:{ Wl_cp.files = 2; file_kb = 16 } () in
    let ring = Trace.ring ~chunks:2 in
    (* Unbuffered + tiny chunks: enough chunk turnover to overflow a
       2-chunk ring even on this small workload. *)
    let opts =
      Recorder.make_opts ~intercept:false ~chunk_limit:256
        ~sink:(Recorder.Sink_ring ring) ()
    in
    (match
       Recorder.run ~opts ~setup:w.Workload.setup ~exe:w.Workload.exe ()
     with
    | Ok _ -> ()
    | Error e -> Fmt.failwith "ring session failed: %a" Recorder.pp_error e);
    let window, _report = Trace.ring_trace ring in
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "rr_stats_repo.%d" (Unix.getpid ()))
    in
    let rec rm_rf p =
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
    in
    Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    @@ fun () ->
    let repo =
      match Repo.init dir with
      | Ok r -> r
      | Error e -> Fmt.failwith "repo session failed: %a" Repo.pp_error e
    in
    List.iter
      (fun name ->
        match Repo.store_trace repo ~name window with
        | Ok (_ : Repo.store_result) -> ()
        | Error e -> Fmt.failwith "repo store failed: %a" Repo.pp_error e)
      [ "stats-a"; "stats-b" ];
    (* And the shard instruments: a tiny served recording tagged live by
       the connection tracker, then split per connection into the same
       throwaway repo (shard.* and serve.* counters). *)
    let sw =
      Wl_serve.make
        ~params:{ Wl_serve.default with Wl_serve.conns = 2; requests = 2 }
        ()
    in
    let ct = Conn_track.create () in
    let strace, (_ : Recorder.stats), (_ : Kernel.t) =
      Recorder.record ~on_event:(Conn_track.observe ct)
        ~setup:sw.Workload.setup ~exe:sw.Workload.exe ()
    in
    (match Repo.store_trace repo ~name:"stats-serve" strace with
    | Ok (_ : Repo.store_result) -> ()
    | Error e -> Fmt.failwith "repo store failed: %a" Repo.pp_error e);
    match
      Shard.split ~repo ~base:"stats-serve" ~tags:(Conn_track.tags ct) strace
    with
    | Ok (_ : Shard.result_) -> ()
    | Error e -> Fmt.failwith "shard split failed: %a" Repo.pp_error e
  in
  let run name opts readahead json attribution =
    let w = workload_of_name name in
    (* One clean record+replay session; the snapshot covers both phases. *)
    Telemetry.reset ();
    if attribution then Timeline.start ();
    let recd, _ = Workload.record ~opts w in
    Trace.set_opts recd.Workload.trace
      (Trace.make_opts ~jobs:opts.Recorder.jobs ~readahead ());
    let _rep, _ = Workload.replay recd in
    exercise_ring_and_repo ();
    if attribution then Timeline.stop ();
    let snap = Telemetry.snapshot () in
    match (json, attribution) with
    | true, false -> print_string (Telemetry.snapshot_to_json snap)
    | true, true ->
      print_string (Timeline.attribution_to_json (Timeline.attribution ()))
    | false, _ ->
      Fmt.pr "telemetry for record+replay of %s:@." w.Workload.name;
      Fmt.pr "%a@." Telemetry.pp snap;
      if attribution then begin
        Fmt.pr "per-stage attribution (record+replay):@.";
        Fmt.pr "%a@." Timeline.pp_attribution ()
      end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Record and replay a workload, then print the unified telemetry \
          snapshot (counters, spans, histograms, event ring), including \
          the flight-recorder ring and trace-repository instruments.")
    Term.(
      const run $ Flags.workload $ Flags.record_opts $ Flags.readahead
      $ json_arg $ attribution_arg)

(* ---- profile: timeline tracing with Chrome trace-event export -------- *)

(* Host clock for profiling runs: wall ns since the clock was installed.
   Virtual timestamps stay primary (the cost model is the paper's
   yardstick); host ns ride along in the exported args. *)
let install_host_clock () =
  let t0 = Unix.gettimeofday () in
  Timeline.set_host_clock (fun () ->
      int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))

let profile_phase_of = function
  | "record" -> `Record
  | "replay" -> `Replay
  | "index" -> `Index
  | p -> Fmt.failwith "unknown profile phase %s (record, replay or index)" p

(* Run one phase with the timeline armed.  For replay/index profiles the
   recording that produces the trace runs before [Timeline.start], so
   the buffer holds only the profiled phase. *)
let profile_run ~phase ~w ~opts =
  install_host_clock ();
  Fun.protect
    ~finally:(fun () ->
      Timeline.stop ();
      Timeline.clear_host_clock ())
  @@ fun () ->
  match phase with
  | `Record ->
    Timeline.start ();
    ignore (Workload.record ~opts w)
  | `Replay ->
    let recd, _ = Workload.record ~opts w in
    Timeline.start ();
    ignore (Workload.replay recd)
  | `Index ->
    let recd, _ = Workload.record ~opts w in
    Timeline.start ();
    ignore (Trace_indexer.build_and_attach recd.Workload.trace)

(* Self-contained profile check: record sambatest under the timeline and
   verify the Chrome export in-process — the JSON parses, every B has a
   matching E per lane, scopes nest, and the acceptance floor holds
   (>= 4 layers including kern/rrtrace/rr/exec, >= 2 lanes). *)
let profile_smoke () =
  let w = workload_of_name "sambatest" in
  profile_run ~phase:`Record ~w ~opts:(Recorder.make_opts ());
  let doc = Timeline.to_chrome_json () in
  let fail fmt = Fmt.kstr (fun m -> Fmt.epr "profile --smoke: %s@." m; exit 1) fmt in
  let root =
    match Json_min.parse doc with
    | v -> v
    | exception Json_min.Parse_error msg -> fail "invalid chrome JSON: %s" msg
  in
  let evs =
    match root with
    | Json_min.Obj m -> (
      match List.assoc_opt "traceEvents" m with
      | Some (Json_min.List (_ :: _ as l)) -> l
      | Some _ -> fail "traceEvents is empty or not an array"
      | None -> fail "no traceEvents key")
    | _ -> fail "top level is not an object"
  in
  let str m k =
    match List.assoc_opt k m with Some (Json_min.Str s) -> s | _ -> ""
  in
  let num m k =
    match List.assoc_opt k m with
    | Some (Json_min.Num f) -> int_of_float f
    | _ -> min_int
  in
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let lanes : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let cats : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let max_depth = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Json_min.Obj m -> (
        let ph = str m "ph" and name = str m "name" and tid = num m "tid" in
        if ph <> "M" then Hashtbl.replace lanes tid ();
        match ph with
        | "B" ->
          Hashtbl.replace cats (str m "cat") ();
          let st = Option.value ~default:[] (Hashtbl.find_opt stacks tid) in
          let st = name :: st in
          max_depth := max !max_depth (List.length st);
          Hashtbl.replace stacks tid st
        | "E" -> (
          match Hashtbl.find_opt stacks tid with
          | Some (top :: rest) ->
            if top <> name then
              fail "lane %d: E %S closes B %S" tid name top;
            Hashtbl.replace stacks tid rest
          | Some [] | None -> fail "lane %d: E %S without a B" tid name)
        | _ -> ())
      | _ -> fail "traceEvents element is not an object")
    evs;
  Hashtbl.iter
    (fun tid st ->
      if st <> [] then fail "lane %d: %d unclosed scopes" tid (List.length st))
    stacks;
  List.iter
    (fun layer ->
      if not (Hashtbl.mem cats layer) then fail "no scopes from layer %S" layer)
    [ "kern"; "rrtrace"; "rr"; "exec" ];
  if Hashtbl.length lanes < 2 then
    fail "only %d lane(s), want >= 2" (Hashtbl.length lanes);
  if !max_depth < 2 then fail "no nested scopes (max depth %d)" !max_depth;
  let a = Timeline.attribution () in
  Fmt.pr
    "profile --smoke: chrome export ok (%d events, %d lanes, %d layers, \
     depth %d, %.1f%% attributed)@."
    (List.length evs) (Hashtbl.length lanes) (Hashtbl.length cats) !max_depth
    (if a.Timeline.at_total_ns = 0 then 0.
     else
       100.
       *. float_of_int a.Timeline.at_covered_ns
       /. float_of_int a.Timeline.at_total_ns)

let profile_cmd =
  let phase_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"PHASE"
          ~doc:"Pipeline phase to profile: record, replay or index.")
  in
  let wl_arg =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"WORKLOAD"
          ~doc:"Workload to run (cp, make, octane, htmltest, sambatest).")
  in
  let smoke_arg =
    Flags.smoke
      ~doc:
        "Run the built-in profiling check instead: record sambatest under \
         the timeline and verify the Chrome export is valid, balanced, \
         nested, and spans >= 4 layers on >= 2 lanes."
  in
  let out_arg =
    Flags.out
      ~doc:
        "Write the Chrome trace-event JSON to FILE (load it in \
         chrome://tracing or https://ui.perfetto.dev)."
  in
  let run phase wl opts smoke out =
    with_trace_errors @@ fun () ->
    if smoke then profile_smoke ()
    else begin
      match (phase, wl) with
      | Some phase_s, Some wl_s ->
        let phase = profile_phase_of phase_s in
        let w = workload_of_name wl_s in
        profile_run ~phase ~w ~opts;
        (match out with
        | Some path ->
          Timeline.export path;
          Fmt.pr "chrome trace written to %s (%d events%s)@." path
            (List.length (Timeline.events ()))
            (let d = Timeline.dropped () in
             if d > 0 then Printf.sprintf ", %d dropped" d else "")
        | None -> ());
        Fmt.pr "flamegraph of %s %s:@." phase_s wl_s;
        Fmt.pr "%a@." Timeline.pp_flamegraph ();
        Fmt.pr "per-stage attribution:@.";
        Fmt.pr "%a@." Timeline.pp_attribution ()
      | _ ->
        Fmt.epr "rr_cli: profile needs PHASE and WORKLOAD (or --smoke)@.";
        exit 2
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run one pipeline phase (record, replay or index) with timeline \
          tracing armed; export a Chrome trace-event file (-o) and print \
          the text flamegraph plus the per-stage overhead ledger.")
    Term.(
      const run $ phase_arg $ wl_arg $ Flags.record_opts $ smoke_arg
      $ out_arg)

(* ---- repo: the content-addressed trace repository -------------------- *)

(* ---- serve / shard: served traffic and per-connection shards (§4k) --- *)

let pp_conn_table conns =
  Fmt.pr "  conn  client_port  client_tid  worker_tid  frames  requests@.";
  List.iter
    (fun (i : Conn_track.info) ->
      Fmt.pr "  %4d  %11d  %10d  %10d  %6d  %8d@." i.Conn_track.conn
        i.Conn_track.client_port i.Conn_track.client_tid
        i.Conn_track.worker_tid i.Conn_track.frames i.Conn_track.requests)
    conns

let pp_shard_table shards =
  Fmt.pr "  %-20s  %6s  %6s  %9s  %9s@." "SHARD" "FRAMES" "OWN" "NEW_B"
    "SHARED_B";
  List.iter
    (fun (s : Shard.info) ->
      Fmt.pr "  %-20s  %6d  %6d  %9d  %9d@." s.Shard.si_name s.Shard.si_frames
        s.Shard.si_own_frames s.Shard.si_new_bytes s.Shard.si_shared_bytes)
    shards

(* Record the serve workload with the connection tracker attached: the
   only record path that tags frames live. *)
let record_serve ~params opts =
  let w = Wl_serve.make ~params () in
  let ct = Conn_track.create () in
  let trace, stats, _k =
    Recorder.record ~opts ~on_event:(Conn_track.observe ct)
      ~setup:w.Workload.setup ~exe:w.Workload.exe ()
  in
  (trace, stats, ct)

let shard_repo_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "repo" ] ~docv:"DIR"
        ~doc:
          "Store the full trace and its per-connection shards in this \
           repository (created if missing).")

let serve_cmd =
  let conns_arg =
    Arg.(
      value
      & opt int Wl_serve.default.Wl_serve.conns
      & info [ "conns" ] ~docv:"N"
          ~doc:"Connections (one forked worker and one client each).")
  in
  let requests_arg =
    Arg.(
      value
      & opt int Wl_serve.default.Wl_serve.requests
      & info [ "requests" ] ~docv:"N" ~doc:"Data requests per connection.")
  in
  let run conns requests opts out repo_dir =
    with_trace_errors @@ fun () ->
    let params = { Wl_serve.default with Wl_serve.conns; requests } in
    let trace, stats, ct = record_serve ~params opts in
    let tags = Conn_track.tags ct in
    let tagged =
      Array.fold_left (fun a t -> if t <> 0 then a + 1 else a) 0 tags
    in
    Fmt.pr "served %d connections, %d requests (exit=%a)@."
      (List.length (Conn_track.connections ct))
      (Conn_track.requests ct)
      Fmt.(option ~none:(any "?") int)
      stats.Recorder.exit_status;
    Fmt.pr "  frames: %d (%d connection-tagged, %d control)@."
      (Trace.n_events trace) tagged
      (Trace.n_events trace - tagged);
    pp_conn_table (Conn_track.connections ct);
    (match out with
    | Some path -> (
      match Trace.save trace path with
      | Ok () -> Fmt.pr "saved to %s@." path
      | Error e -> Fmt.failwith "save failed: %a" Trace.pp_error e)
    | None -> ());
    match repo_dir with
    | None -> ()
    | Some dir -> (
      let repo =
        match Repo.init dir with
        | Ok r -> r
        | Error e -> Fmt.failwith "repo: %a" Repo.pp_error e
      in
      (match Repo.store_trace repo ~name:"serve" trace with
      | Ok (_ : Repo.store_result) -> ()
      | Error e -> Fmt.failwith "store: %a" Repo.pp_error e);
      match Shard.split ~repo ~base:"serve" ~tags trace with
      | Ok r ->
        Fmt.pr "sharded into %d sub-traces (%d new bytes, %d shared)@."
          (List.length r.Shard.shards)
          r.Shard.total_new_bytes r.Shard.total_shared_bytes;
        pp_shard_table r.Shard.shards
      | Error e -> Fmt.failwith "shard: %a" Repo.pp_error e)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Record the multi-process server workload under load, tagging \
          every frame with its owning connection; optionally save the \
          trace and shard it into a repository.")
    Term.(
      const run $ conns_arg $ requests_arg $ Flags.record_opts
      $ Flags.out ~doc:"Save the recorded trace to FILE."
      $ shard_repo_arg)

(* The replayed state a targeted shard must reproduce exactly: one
   task's registers plus its address-space digest (scratch and
   rr-private pages excluded by Checksum.space). *)
let task_digest k tid =
  match Kernel.find_task k tid with
  | None -> None
  | Some t ->
    Some (Checksum.space t.Task.cpu.Cpu.space, Array.copy t.Task.cpu.Cpu.regs)

let replay_to trace upto =
  let r = Replayer.start trace in
  while Replayer.cursor_index r <= upto && not (Replayer.at_end r) do
    ignore (Replayer.step r)
  done;
  r

(* Self-contained shard check (`shard --smoke`): record serve, require
   the live tags to match an offline derivation, split into a throwaway
   repo, and for every connection (a) the shard reloads and replays to
   its end without divergence, and (b) at a mid-stream frame of that
   connection the shard replay's worker and client state is
   byte-identical (registers + address-space digest) to the full-trace
   replay at the corresponding frame. *)
let shard_smoke () =
  let fail fmt =
    Fmt.kstr
      (fun m ->
        Fmt.epr "shard --smoke: %s@." m;
        exit 1)
      fmt
  in
  let params = { Wl_serve.default with Wl_serve.conns = 4; requests = 6 } in
  let trace, _stats, ct = record_serve ~params Recorder.default_opts in
  let tags = Conn_track.tags ct in
  if tags <> Conn_track.tags (Conn_track.derive trace) then
    fail "offline tag derivation disagrees with the live observer";
  let conns = Conn_track.connections ct in
  if List.length conns <> 4 then
    fail "expected 4 connections, got %d" (List.length conns);
  if Conn_track.requests ct <> 24 then
    fail "expected 24 requests, got %d" (Conn_track.requests ct);
  List.iter
    (fun (i : Conn_track.info) ->
      if i.Conn_track.client_tid < 0 || i.Conn_track.worker_tid < 0 then
        fail "connection %d missing client or worker task" i.Conn_track.conn)
    conns;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rr_shard_smoke.%d" (Unix.getpid ()))
  in
  let rec rm_rf p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
  @@ fun () ->
  let repo =
    match Repo.init dir with
    | Ok r -> r
    | Error e -> fail "repo init: %s" (Repo.error_to_string e)
  in
  (match Repo.store_trace repo ~name:"serve" trace with
  | Ok (_ : Repo.store_result) -> ()
  | Error e -> fail "store: %s" (Repo.error_to_string e));
  let res =
    match Shard.split ~repo ~base:"serve" ~tags trace with
    | Ok r -> r
    | Error e -> fail "split: %s" (Repo.error_to_string e)
  in
  (match Shard.list repo ~base:"serve" with
  | Ok listed when listed = res.Shard.shards -> ()
  | Ok _ -> fail "shard catalog round-trip mismatch"
  | Error e -> fail "list: %s" (Repo.error_to_string e));
  (* Each connection's mid-stream target frame, and the digest of its
     tasks there in one full-trace replay pass (ascending targets). *)
  let targets =
    List.map
      (fun (i : Conn_track.info) ->
        let c = i.Conn_track.conn in
        let own = ref [] in
        Array.iteri (fun k t -> if t = c then own := k :: !own) tags;
        let own = Array.of_list (List.rev !own) in
        if Array.length own = 0 then fail "connection %d owns no frames" c;
        (own.(Array.length own / 2), i))
      conns
    |> List.sort compare
  in
  let full = Replayer.start trace in
  let full_digests =
    List.map
      (fun (i_star, (i : Conn_track.info)) ->
        while Replayer.cursor_index full <= i_star do
          ignore (Replayer.step full)
        done;
        let k = Replayer.kernel full in
        ( i.Conn_track.conn,
          (i_star, i, task_digest k i.Conn_track.worker_tid,
           task_digest k i.Conn_track.client_tid) ))
      targets
  in
  List.iter
    (fun (c, (i_star, (i : Conn_track.info), dw, dc)) ->
      let shard =
        match Shard.load repo ~base:"serve" ~conn:c with
        | Ok s -> s
        | Error e -> fail "load conn %d: %s" c (Repo.error_to_string e)
      in
      if Trace.n_events shard >= Trace.n_events trace then
        fail "conn %d shard did not shrink (%d >= %d frames)" c
          (Trace.n_events shard) (Trace.n_events trace);
      (* corresponding frame: position of i_star among the kept frames *)
      let j_star = ref (-1) in
      for k = 0 to i_star do
        if tags.(k) = 0 || tags.(k) = c then incr j_star
      done;
      let r = replay_to shard !j_star in
      let k = Replayer.kernel r in
      if task_digest k i.Conn_track.worker_tid <> dw then
        fail "conn %d worker state differs from the full replay" c;
      if task_digest k i.Conn_track.client_tid <> dc then
        fail "conn %d client state differs from the full replay" c;
      (* and the shard replays to its end without divergence *)
      match Replayer.replay shard with
      | (_ : Replayer.stats * Kernel.t) -> ()
      | exception Replayer.Divergence m -> fail "conn %d diverged: %s" c m)
    full_digests;
  Fmt.pr
    "shard --smoke ok: 4 connections, 24 requests, %d-frame trace sharded \
     (%d shared bytes); per-connection state byte-identical to the full \
     replay@."
    (Trace.n_events trace) res.Shard.total_shared_bytes

let shard_cmd =
  let conn_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "conn" ] ~docv:"ID"
          ~doc:"Split only connection ID (default: every connection).")
  in
  let trace_arg =
    Flags.opt_trace_file
      ~doc:"A saved serve trace to shard (omit with --smoke)."
  in
  let run tracefile conn repo_dir smoke =
    if smoke then shard_smoke ()
    else
      match tracefile with
      | None ->
        Fmt.epr "rr_cli: shard needs a TRACE file (or --smoke)@.";
        exit 124
      | Some path ->
        with_trace_errors @@ fun () ->
        let trace = Trace.load_exn path in
        let ct = Conn_track.derive trace in
        let conns = Conn_track.connections ct in
        Fmt.pr "%s: %d frames, %d connections, %d requests@." path
          (Trace.n_events trace) (List.length conns)
          (Conn_track.requests ct);
        pp_conn_table conns;
        (match conn with
        | Some c
          when not
                 (List.exists (fun i -> i.Conn_track.conn = c) conns) ->
          Fmt.failwith "no such connection %d (trace has %d)" c
            (List.length conns)
        | _ -> ());
        (match repo_dir with
        | None -> ()
        | Some dir -> (
          let repo =
            match Repo.init dir with
            | Ok r -> r
            | Error e -> Fmt.failwith "repo: %a" Repo.pp_error e
          in
          let base = Filename.basename path in
          (match Repo.store_trace repo ~name:base trace with
          | Ok (_ : Repo.store_result) -> ()
          | Error e -> Fmt.failwith "store: %a" Repo.pp_error e);
          match
            Shard.split ?only:conn ~repo ~base ~tags:(Conn_track.tags ct)
              trace
          with
          | Ok r ->
            Fmt.pr "sharded into %d sub-traces (%d new bytes, %d shared)@."
              (List.length r.Shard.shards)
              r.Shard.total_new_bytes r.Shard.total_shared_bytes;
            pp_shard_table r.Shard.shards
          | Error e -> Fmt.failwith "shard: %a" Repo.pp_error e))
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Derive connection tags for a saved serve trace, list its \
          connections, and optionally split it into per-connection \
          sub-traces stored in a repository.  With --smoke, run the \
          self-contained shard correctness check.")
    Term.(
      const run $ trace_arg $ conn_arg $ shard_repo_arg
      $ Flags.smoke
          ~doc:
            "Run the self-contained shard check (records serve, splits, \
             verifies per-connection replay state against the full trace).")

let replay_cmd =
  let conn_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "conn" ] ~docv:"ID"
          ~doc:
            "Targeted replay (serve workload only): extract connection \
             ID's shard from the recording and replay just that \
             sub-trace to the connection's last frame, reporting \
             time-to-first-replay against the full trace.")
  in
  (* Targeted replay: how much cheaper is reaching one connection's
     final state through its shard than through the whole trace? *)
  let replay_conn opts readahead conn =
    let trace, _stats, ct = record_serve ~params:Wl_serve.default opts in
    let topts = Trace.make_opts ~jobs:opts.Recorder.jobs ~readahead () in
    Trace.set_opts trace topts;
    let tags = Conn_track.tags ct in
    let info =
      match
        List.find_opt
          (fun (i : Conn_track.info) -> i.Conn_track.conn = conn)
          (Conn_track.connections ct)
      with
      | Some i -> i
      | None ->
        Fmt.failwith "no connection %d (the recording has %d)" conn
          (List.length (Conn_track.connections ct))
    in
    let shard, (_ : int array) = Shard.extract ~tags ~conn trace in
    Trace.set_opts shard topts;
    (* the connection's last owned frame, and its position among the
       frames the shard kept *)
    let i_last = ref (-1) in
    Array.iteri (fun k t -> if t = conn then i_last := k) tags;
    let j_last = ref (-1) in
    for k = 0 to !i_last do
      if tags.(k) = 0 || tags.(k) = conn then incr j_last
    done;
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let r_shard, t_shard = time (fun () -> replay_to shard !j_last) in
    let r_full, t_full = time (fun () -> replay_to trace !i_last) in
    Fmt.pr "conn %d: client port %d, %d owned frames, %d requests@." conn
      info.Conn_track.client_port info.Conn_track.frames
      info.Conn_track.requests;
    Fmt.pr "  full trace  : %6d frames to target, %.3f ms@." (!i_last + 1)
      (t_full *. 1e3);
    Fmt.pr "  shard       : %6d frames to target, %.3f ms (%.1fx fewer \
            frames, %.1fx faster)@."
      (!j_last + 1) (t_shard *. 1e3)
      (float_of_int (!i_last + 1) /. float_of_int (!j_last + 1))
      (t_full /. Float.max t_shard 1e-9);
    let digest r = task_digest (Replayer.kernel r) info.Conn_track.worker_tid in
    if digest r_shard = digest r_full then
      Fmt.pr "  worker state at the target frame is byte-identical.@."
    else Fmt.failwith "shard replay state DIVERGED from the full trace"
  in
  let run name opts readahead conn =
    with_trace_errors @@ fun () ->
    match conn with
    | Some c ->
      if name <> "serve" then
        Fmt.failwith "--conn targets a connection: it requires the serve \
                      workload";
      replay_conn opts readahead c
    | None ->
      let w = workload_of_name name in
      let recd = do_record w opts in
      Trace.set_opts recd.Workload.trace
        (Trace.make_opts ~jobs:opts.Recorder.jobs ~readahead ());
      let rep, _ = Workload.replay recd in
      let st = rep.Workload.rep_stats in
      Fmt.pr "replayed %s: exit=%a (events applied: %d, wall %d)@."
        w.Workload.name
        Fmt.(option ~none:(any "?") int)
        st.Replayer.exit_status st.Replayer.events_applied
        st.Replayer.wall_time;
      if
        st.Replayer.exit_status
        = recd.Workload.rec_stats.Recorder.exit_status
      then Fmt.pr "replay matches the recording.@."
      else Fmt.failwith "replay DIVERGED from the recording"
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Record a workload, replay the trace, verify equivalence.  With \
          --conn, replay a single connection's shard and report \
          time-to-first-replay.")
    Term.(
      const run $ Flags.workload $ Flags.record_opts $ Flags.readahead
      $ conn_arg)

let repo_cmd =
  let init_cmd =
    let run dir =
      match Repo.init dir with
      | Ok r -> Fmt.pr "initialized trace repository at %s@." (Repo.path r)
      | Error e ->
        Fmt.epr "rr_cli: %a@." Repo.pp_error e;
        exit 1
    in
    Cmd.v
      (Cmd.info "init"
         ~doc:
           "Create a trace repository at DIR (objects/, traces/, format \
            marker); succeeds on an existing repository.")
      Term.(const run $ Flags.repo_dir)
  in
  let ls_cmd =
    let run dir =
      let repo = open_repo dir in
      match Repo.list_info repo with
      | Error e ->
        Fmt.epr "rr_cli: %a@." Repo.pp_error e;
        exit 1
      | Ok [] -> Fmt.pr "(no traces)@."
      | Ok infos ->
        let width =
          List.fold_left (fun w (n, _) -> max w (String.length n)) 5 infos
        in
        Fmt.pr "%-*s  %10s  %7s  %12s@." width "TRACE" "FRAMES" "CHUNKS"
          "BYTES";
        List.iter
          (fun (n, i) ->
            Fmt.pr "%-*s  %10d  %7d  %12d@." width n i.Repo.ti_frames
              i.Repo.ti_chunks i.Repo.ti_bytes)
          infos
    in
    Cmd.v
      (Cmd.info "ls"
         ~doc:
           "List the traces stored in a repository, sorted by name, with \
            per-trace frame and logical-byte totals.")
      Term.(const run $ Flags.repo_dir)
  in
  let gc_cmd =
    let run dir =
      let repo = open_repo dir in
      match Repo.gc repo with
      | Ok g ->
        Fmt.pr "gc: %d live objects, swept %d (%d bytes)@." g.Repo.live_objects
          g.Repo.swept_objects g.Repo.swept_bytes
      | Error e ->
        Fmt.epr "rr_cli: %a@." Repo.pp_error e;
        exit 1
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:
           "Refcount objects from the manifests, rewrite the refs ledger, \
            and sweep unreferenced objects.  Refuses to sweep if any \
            manifest is damaged.")
      Term.(const run $ Flags.repo_dir)
  in
  let stats_cmd =
    let run dir =
      let repo = open_repo dir in
      match Repo.stats repo with
      | Ok s -> Fmt.pr "%a@." Repo.pp_stats s
      | Error e ->
        Fmt.epr "rr_cli: %a@." Repo.pp_error e;
        exit 1
    in
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Print repository statistics: traces, objects, physical vs. \
            logical bytes, and the dedup ratio.")
      Term.(const run $ Flags.repo_dir)
  in
  Cmd.group
    (Cmd.info "repo"
       ~doc:
         "Manage a content-addressed trace repository: traces stored as \
          shared chunk/image/file-block objects keyed by crc32-length, \
          with refcounted gc.")
    [ init_cmd; ls_cmd; gc_cmd; stats_cmd ]

let list_cmd =
  let run () =
    List.iter
      (fun (n, d) -> Fmt.pr "%-10s %s@." n d)
      [ ("cp", "file-tree duplication: syscall-dense, block-cloning shines");
        ("make", "parallel fork/exec of short-lived compilers");
        ("octane", "multi-threaded JIT compute (score-based)");
        ("htmltest", "browser driven by an unrecorded harness over IPC");
        ("sambatest", "UDP echo client/server: blocking syscalls, desched");
        ("serve", "multi-process server under load: fork-per-connection, \
                   shardable") ]
  in
  Cmd.v (Cmd.info "list" ~doc:"List available workloads.") Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "rr_cli" ~version:"1.0"
       ~doc:
         "Record and replay simulated Linux processes (reproduction of \
          'Engineering Record and Replay for Deployability', USENIX ATC \
          2017).")
    [ record_cmd; replay_cmd; serve_cmd; shard_cmd; dump_cmd; debug_cmd;
      stats_cmd; profile_cmd; list_cmd; replay_file_cmd; dump_file_cmd;
      repair_cmd; index_cmd; seek_cmd; repo_cmd ]

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  exit (Cmd.eval main)
