examples/reverse_debug.mli:
