(* A reverse-execution debugger over replay (paper §1, §6.1).

   Time is measured in trace-event indices.  Forward execution replays
   frames; *reverse* execution restores the nearest earlier checkpoint
   and replays forward — exactly rr's scheme, made cheap by COW address-
   space checkpoints ("most checkpoints are never resumed", so creating
   one must cost almost nothing).

   Primitives:
   - [seek]: jump to any event index, backwards or forwards;
   - [find_event] / [rfind_event]: next/previous frame matching a
     predicate (static scan — frames are data);
   - [last_change]: when was this memory last written?  (the reverse-
     watchpoint workhorse);
   - [read_mem]/[regs]: inspect tracee state at the current position. *)

module E = Event
module T = Task

exception Debug_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Debug_error s)) fmt

type t = {
  trace : Trace.t;
  opts : Replayer.opts;
  checkpoint_every : int;
  mutable session : Replayer.t;
  mutable checkpoints : (int * Replayer.snapshot) list; (* ascending idx *)
  mutable checkpoints_taken : int;
  mutable checkpoints_restored : int;
}

let pos d = Replayer.cursor_index d.session

let n_events d = Trace.n_events d.trace

let take_checkpoint d =
  let idx = pos d in
  if not (List.mem_assoc idx d.checkpoints) then begin
    let snap = Replayer.snapshot d.session in
    d.checkpoints <- d.checkpoints @ [ (idx, snap) ];
    d.checkpoints_taken <- d.checkpoints_taken + 1
  end

let create ?(opts = Replayer.default_opts) ?(checkpoint_every = 32) trace =
  let d =
    { trace;
      opts;
      checkpoint_every;
      session = Replayer.start ~opts trace;
      checkpoints = [];
      checkpoints_taken = 0;
      checkpoints_restored = 0 }
  in
  take_checkpoint d;
  d

let step d =
  if Replayer.at_end d.session then fail "at end of trace";
  let e = Replayer.step d.session in
  if pos d mod d.checkpoint_every = 0 then take_checkpoint d;
  e

(* The nearest checkpoint at or before [idx]. *)
let nearest_checkpoint d idx =
  let rec best acc = function
    | [] -> acc
    | (i, snap) :: rest -> if i <= idx then best (Some (i, snap)) rest else acc
  in
  match best None d.checkpoints with
  | Some c -> c
  | None -> fail "no checkpoint at or before %d" idx

let tm_span_seek = Telemetry.span "replay.seek"

let seek d target =
  if target < 0 || target > n_events d then fail "seek out of range";
  Telemetry.timed tm_span_seek @@ fun () ->
  if target < pos d then begin
    (* Reverse execution: restore and re-execute (§6.1). *)
    let _, snap = nearest_checkpoint d target in
    d.session <- Replayer.restore ~opts:d.opts d.trace snap;
    d.checkpoints_restored <- d.checkpoints_restored + 1
  end;
  while pos d < target do
    ignore (step d)
  done

let reverse_step d = if pos d > 0 then seek d (pos d - 1)

(* Static frame searches (frames are data; no execution needed).  Both
   delegate to the chunk-indexed reader, which decodes lazily and can
   skip whole chunks when given a kind mask. *)
let find_event ?kind_mask d ~from p = Trace.Reader.find_from ?kind_mask d.trace from p

let rfind_event ?kind_mask d ~before p =
  Trace.Reader.rfind_before ?kind_mask d.trace before p

(* Run forward to the next frame satisfying [p]; position lands just
   after it.  Returns the frame index. *)
let continue_to d p =
  match find_event d ~from:(pos d) p with
  | None -> None
  | Some i ->
    seek d (i + 1);
    Some i

(* Reverse-continue: land just after the previous matching frame,
   skipping a hit at the current position (gdb semantics). *)
let reverse_continue_to d p =
  match rfind_event d ~before:(pos d - 1) p with
  | None -> None
  | Some i ->
    seek d (i + 1);
    Some i

(* ---- state inspection ------------------------------------------------ *)

let task d tid =
  match Kernel.find_task (Replayer.kernel d.session) tid with
  | Some t -> t
  | None -> fail "no task %d at event %d" tid (pos d)

let live_tids d =
  List.filter_map
    (fun t -> if T.is_alive t then Some t.T.tid else None)
    (Kernel.all_tasks (Replayer.kernel d.session))

let regs d tid =
  let t = task d tid in
  (Cpu.copy_regs t.T.cpu, t.T.cpu.Cpu.pc)

let read_mem d tid addr len =
  let t = task d tid in
  try Addr_space.read_bytes ~force:true t.T.cpu.Cpu.space addr len
  with Addr_space.Segv _ -> fail "address %#x not mapped in task %d" addr tid

let read_word d tid addr =
  let t = task d tid in
  try Addr_space.read_u64 ~force:true t.T.cpu.Cpu.space addr
  with Addr_space.Segv _ -> fail "address %#x not mapped in task %d" addr tid

(* ---- reverse watchpoint ----------------------------------------------

   "When did [addr..addr+len) in task [tid] last change before the
   current position?"  Replays forward from the start (checkpoint-
   accelerated by seek) sampling the region after every frame. *)

let sample d tid addr len =
  match Kernel.find_task (Replayer.kernel d.session) tid with
  | None -> None
  | Some t when not (T.is_alive t) -> None
  | Some t -> (
    try Some (Addr_space.read_bytes ~force:true t.T.cpu.Cpu.space addr len)
    with Addr_space.Segv _ -> None)

let last_change d ~tid ~addr ~len =
  let upto = pos d in
  let here = sample d tid addr len in
  seek d 0;
  let prev = ref (sample d tid addr len) in
  let last = ref None in
  while pos d < upto do
    ignore (step d);
    let now = sample d tid addr len in
    (match (!prev, now) with
    | Some a, Some b when not (Bytes.equal a b) -> last := Some (pos d - 1)
    | (Some _ | None), (Some _ | None) -> () (* death/birth is not a write *));
    prev := now
  done;
  ignore here;
  !last
