lib/rr/rec_sched.ml: Entropy Hashtbl List
