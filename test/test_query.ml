(* Property tests for the seek-first query API: on an indexed trace —
   in-memory or reopened cold from disk — every [Debugger.Query] answer
   must be byte-identical to the scan-based answer computed with the
   index disabled.  Plus fault injection: a trace whose sidecar index
   records are corrupted salvages with the index dropped and every scan
   query still answering. *)

module K = Kernel
module G = Guest
module E = Event

let ( @. ) = List.append

let cell = 0x120000

(* Same shape as test_debugger's counter program: stores to a known
   cell interleaved with syscalls, so both the per-pc and per-address
   indexes have something to find. *)
let counter_prog _k b =
  let emit_phase v =
    [ Asm.movi 9 cell; Asm.movi 10 v; Asm.store 10 9 0 ]
    @. G.sc Sysno.getpid []
  in
  G.emit b
    (emit_phase 1
    @. G.compute_loop b ~n:150
    @. emit_phase 2
    @. G.compute_loop b ~n:150
    @. emit_phase 3
    @. G.sc Sysno.gettimeofday [ G.imm (cell + 8) ]
    @. emit_phase 4
    @. G.sys_exit_group 0)

let record_counter () =
  let setup k =
    Vfs.mkdir_p (K.vfs k) "/bin";
    let b = G.create () in
    counter_prog k b;
    K.install_image k ~path:"/bin/t" (G.build b ~name:"t" ())
  in
  let opts = { Recorder.default_opts with intercept = false } in
  let trace, _, _ = Recorder.record ~opts ~setup ~exe:"/bin/t" () in
  trace

(* Shared fixture: one recorded trace, indexed, plus a cold reopen of
   its saved bytes.  Queries never mutate the trace, so every test can
   build its own debugger sessions over these. *)
let fixture =
  lazy
    (let trace = record_counter () in
     ignore (Trace_indexer.build_and_attach ~checkpoint_every:4 trace);
     let tmp = Filename.temp_file "rr_query" ".rrtrace" in
     Trace.save_exn trace tmp;
     let reopened = Trace.load_exn tmp in
     Sys.remove tmp;
     (trace, reopened))

let dbg ?(use_index = true) trace =
  Debugger.create
    ~opts:(Debugger.make_opts ~checkpoint_every:4 ~use_index ())
    trace

let distinct_pcs trace =
  Trace.Reader.to_array trace |> Array.to_seq
  |> Seq.filter_map E.frame_pc
  |> List.of_seq |> List.sort_uniq compare |> Array.of_list

let show_res pp = function
  | Ok v -> Fmt.str "Ok %a" pp v
  | Error e -> Fmt.str "Error (%s)" (Debugger.Query.error_to_string e)

let opt_int = Fmt.option ~none:(Fmt.any "None") Fmt.int

(* The heart of the PR's contract: for seeds' worth of probe points,
   [prev_exec], [last_write] and [seek_to_time] agree across
   {in-memory indexed, reopened-from-disk indexed, index disabled}. *)
let qcheck_indexed_equals_scan =
  QCheck.Test.make ~name:"indexed answers are byte-identical to scans"
    ~count:8
    QCheck.(list_of_size Gen.(2 -- 6) (int_bound 10_000))
    (fun probes ->
      let mem_trace, disk_trace = Lazy.force fixture in
      let d_mem = dbg mem_trace in
      let d_disk = dbg disk_trace in
      let d_scan = dbg ~use_index:false disk_trace in
      if not (Debugger.indexed d_mem && Debugger.indexed d_disk) then
        QCheck.Test.fail_report "fixture traces should carry an index";
      if Debugger.indexed d_scan then
        QCheck.Test.fail_report "use_index:false should disable the index";
      let n = Debugger.n_events d_mem in
      let pcs = distinct_pcs mem_trace in
      let addrs = [| cell; cell + 8; 0x10000; 0x0 |] in
      let agree what a b c =
        if a <> b || b <> c then
          QCheck.Test.fail_reportf "%s: mem=%s disk=%s scan=%s" what a b c
      in
      List.iteri
        (fun i probe ->
          let before = probe mod (n + 1) in
          let pc = pcs.(probe mod Array.length pcs) in
          let show = show_res opt_int in
          agree
            (Fmt.str "prev_exec ~pc:%#x ~before:%d" pc before)
            (show (Debugger.Query.prev_exec ~before d_mem ~pc))
            (show (Debugger.Query.prev_exec ~before d_disk ~pc))
            (show (Debugger.Query.prev_exec ~before d_scan ~pc));
          let addr = addrs.(i mod Array.length addrs) in
          let q d = Debugger.Query.last_write ~before d ~tid:100 ~addr ~len:8 in
          agree
            (Fmt.str "last_write ~addr:%#x ~before:%d" addr before)
            (show (q d_mem))
            (show (q d_disk))
            (show (q d_scan));
          (* A time in range: the clock at some frame, plus a small
             offset so we also probe between recorded readings. *)
          (match Trace.index mem_trace with
          | None -> ()
          | Some ix ->
            let t = Trace_index.clock_at ix before + (i mod 3) in
            let show = show_res Fmt.int in
            agree
              (Fmt.str "seek_to_time %d" t)
              (show (Debugger.Query.seek_to_time d_mem t))
              (show (Debugger.Query.seek_to_time d_disk t))
              (show (Debugger.Query.seek_to_time d_scan t))))
        probes;
      true)

(* Out-of-range inputs come back as typed errors, identically in both
   modes, and never move the session. *)
let test_out_of_range () =
  let _, disk_trace = Lazy.force fixture in
  List.iter
    (fun use_index ->
      let d = dbg ~use_index disk_trace in
      let n = Debugger.n_events d in
      Debugger.seek d 2;
      (match Debugger.Query.seek_to_frame d (n + 1) with
      | Error (Debugger.Query.Out_of_range { min = 0; max; _ }) ->
        Alcotest.(check int) "max is n_events" n max
      | Ok () | Error _ -> Alcotest.fail "seek past the end must be typed");
      Alcotest.(check int) "position unchanged on error" 2 (Debugger.pos d);
      (match Debugger.Query.seek_to_time d (-1) with
      | Error (Debugger.Query.Out_of_range _) -> ()
      | Ok _ -> Alcotest.fail "time before frame 0 must be Out_of_range");
      Alcotest.(check int) "position unchanged on time error" 2
        (Debugger.pos d);
      match Debugger.Query.prev_exec ~before:(n + 2) d ~pc:0x1000 with
      | Error (Debugger.Query.Out_of_range _) -> ()
      | Ok _ -> Alcotest.fail "before past the end must be Out_of_range")
    [ true; false ]

(* The acceptance case: reopen the saved trace cold and seek near the
   end.  The durable checkpoint must be restored (index.hit and
   replay.checkpoint_restore both move) — no full replay from frame 0. *)
let test_cold_reopen_seeks_without_full_replay () =
  let trace = record_counter () in
  ignore (Trace_indexer.build_and_attach ~checkpoint_every:4 trace);
  let tmp = Filename.temp_file "rr_query_cold" ".rrtrace" in
  Trace.save_exn trace tmp;
  let cold = Trace.load_exn tmp in
  Sys.remove tmp;
  let ix =
    match Trace.index cold with
    | Some ix -> ix
    | None -> Alcotest.fail "reopened trace lost its index"
  in
  let d = dbg cold in
  let n = Debugger.n_events d in
  let target = n - 1 in
  (match Trace_index.nearest_checkpoint ix target with
  | Some (frame, _) ->
    Alcotest.(check bool) "a durable checkpoint sits past frame 0" true
      (frame > 0)
  | None -> Alcotest.fail "index carries no durable checkpoint");
  let hits = Telemetry.counter "index.hit" in
  let restores = Telemetry.counter "replay.checkpoint_restore" in
  let h0 = Telemetry.counter_value hits in
  let r0 = Telemetry.counter_value restores in
  Debugger.seek d target;
  Alcotest.(check int) "landed on target" target (Debugger.pos d);
  Alcotest.(check bool) "durable checkpoint used (index.hit moved)" true
    (Telemetry.counter_value hits > h0);
  Alcotest.(check bool) "snapshot restored, not replayed from 0" true
    (Telemetry.counter_value restores > r0);
  (* And the state there is the scan session's state, byte for byte. *)
  let d0 = dbg ~use_index:false cold in
  Debugger.seek d0 target;
  Alcotest.(check int) "same memory as the scan session"
    (Debugger.read_word d0 100 cell)
    (Debugger.read_word d 100 cell)

(* ----- fault injection over the sidecar records -------------------- *)

(* Walk the v3 record stream (tag, uvarint len, payload, crc32) from
   just past the magic and return the payload span of the first record
   carrying [tag]. *)
let find_record data tag =
  let n = String.length data in
  let rec walk pos =
    if pos + 1 >= n then None
    else begin
      let t = data.[pos] in
      let p = ref (pos + 1) in
      let len = ref 0 in
      let shift = ref 0 in
      let fin = ref false in
      while not !fin do
        let b = Char.code data.[!p] in
        len := !len lor ((b land 0x7f) lsl !shift);
        shift := !shift + 7;
        incr p;
        if b < 0x80 then fin := true
      done;
      if t = tag then Some (!p, !len) else walk (!p + !len + 4)
    end
  in
  walk 8

let corrupt_record path tag =
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match find_record data tag with
  | None -> Alcotest.failf "no %C record found in the saved trace" tag
  | Some (off, len) ->
    Alcotest.(check bool) "record has a payload to damage" true (len > 0);
    let b = Bytes.of_string data in
    let i = off + (len / 2) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    let oc = open_out_bin path in
    output_bytes oc b;
    close_out oc

let test_corrupt_index_record_salvages tag () =
  let trace = record_counter () in
  ignore (Trace_indexer.build_and_attach ~checkpoint_every:4 trace);
  let original_frames = Trace.Reader.to_array trace in
  let reference =
    let d = dbg ~use_index:false trace in
    match Debugger.Query.last_write d ~before:(Debugger.n_events d) ~tid:100
            ~addr:cell ~len:8 with
    | Ok r -> r
    | Error e -> Alcotest.failf "reference query: %s"
                   (Debugger.Query.error_to_string e)
  in
  let tmp = Filename.temp_file "rr_query_corrupt" ".rrtrace" in
  Trace.save_exn trace tmp;
  corrupt_record tmp tag;
  (* Strict load refuses the damaged file outright... *)
  (match Trace.load tmp with
  | Ok _ -> Alcotest.failf "strict load accepted a corrupt %C record" tag
  | Error _ -> ());
  (* ...salvage keeps every frame and drops only the sidecar. *)
  (match Trace.salvage tmp with
  | Error e ->
    Alcotest.failf "salvage failed: %s" (Trace.error_to_string e)
  | Ok (s, _report) ->
    Alcotest.(check int) "every frame survives"
      (Array.length original_frames)
      (Array.length (Trace.Reader.to_array s));
    (* A damaged meta record must drop the whole index; a damaged
       checkpoint record may at most leave a smaller-but-valid one. *)
    if tag = 'P' then
      Alcotest.(check bool) "index dropped on salvage" true
        (Trace.index s = None);
    let d = dbg s in
    let answer =
      match Debugger.Query.last_write d ~before:(Debugger.n_events d)
              ~tid:100 ~addr:cell ~len:8 with
      | Ok r -> r
      | Error e -> Alcotest.failf "query on salvaged trace: %s"
                     (Debugger.Query.error_to_string e)
    in
    Alcotest.(check (option int)) "scan answer unchanged after salvage"
      reference answer);
  Sys.remove tmp

let suites =
  [ ( "rr.query",
      [ QCheck_alcotest.to_alcotest qcheck_indexed_equals_scan;
        Alcotest.test_case "typed out-of-range errors" `Quick
          test_out_of_range;
        Alcotest.test_case "cold reopen seeks without full replay" `Quick
          test_cold_reopen_seeks_without_full_replay;
        Alcotest.test_case "corrupt index meta record salvages" `Quick
          (test_corrupt_index_record_salvages 'P');
        Alcotest.test_case "corrupt checkpoint record salvages" `Quick
          (test_corrupt_index_record_salvages 'K') ] ) ]
