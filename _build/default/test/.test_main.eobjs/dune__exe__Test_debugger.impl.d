test/test_debugger.ml: Alcotest Array Asm Debugger Event Gen Guest Kernel List Printf QCheck QCheck_alcotest Recorder Sysno Vfs Wl_cp Wl_samba Workload
