(* The `make -j8` workload (paper §4.1): many short-lived compiler
   processes fork+exec'd in parallel waves.  Forcing everything onto one
   core costs the most here, and the syscallbuf never pays off for
   processes this short (paper §4.3). *)

module K = Kernel
module G = Guest
open Wl_common

type params = {
  jobs : int; (* parallelism: -j *)
  compiles : int; (* total cc invocations *)
  src_kb : int;
  compile_work : int; (* compute iterations per compile *)
}

let default = { jobs = 8; compiles = 96; src_kb = 8; compile_work = 6_500 }

(* Serial work make itself does between waves (dependency scanning,
   linking): this is what caps make's parallel speedup (paper: single
   core costs 3.36x, not 8x). *)
let serial_work = 20_000

let nsrc = 8 (* distinct source files, reused round-robin *)

(* The "cc" image: pick a source by pid, read it, crunch, write the
   object file. *)
let cc_program b p =
  let srcs = List.init nsrc (Printf.sprintf "/proj/s%d.c") in
  let objs = List.init nsrc (Printf.sprintf "/proj/obj/s%d.o") in
  let src_tbl = path_table b srcs in
  let obj_tbl = path_table b objs in
  let buf = G.bss b 65536 in
  G.emit b
    (G.sc Sysno.getpid []
    @. [ Asm.movr 12 0;
         Asm.I (Insn.Alu (Insn.Rem, 12, Insn.Imm nsrc)) ] (* idx *)
    @. [ Asm.movr 9 12; Asm.muli 9 8; Asm.addi 9 src_tbl; Asm.load 7 9 0 ]
    @. G.sc Sysno.openat [ G.imm 0; G.reg 7; G.imm Sysno.o_rdonly ]
    @. die_if_error b 1
    @. [ Asm.movr 10 0 ]
    (* read the whole file *)
    @. [ Asm.label "rd" ]
    @. G.sys_read ~fd:(G.reg 10) ~buf:(G.imm buf) ~len:(G.imm 65536)
    @. [ Asm.jcc Insn.Gt 0 (G.imm 0) "rd" ]
    @. G.sys_close (G.reg 10)
    (* compile: crunch *)
    @. G.compute_loop b ~n:p.compile_work
    (* write the object *)
    @. [ Asm.movr 9 12; Asm.muli 9 8; Asm.addi 9 obj_tbl; Asm.load 7 9 0 ]
    @. G.sc Sysno.openat
         [ G.imm 0;
           G.reg 7;
           G.imm (Sysno.o_creat lor Sysno.o_wronly lor Sysno.o_trunc) ]
    @. die_if_error b 2
    @. [ Asm.movr 11 0 ]
    @. G.sys_write ~fd:(G.reg 11) ~buf:(G.imm buf) ~len:(G.imm (p.src_kb * 256))
    @. G.sys_close (G.reg 11)
    @. G.sys_exit_group 0)

(* The "make" image: waves of [jobs] fork+exec children, reaped with
   wait4 before the next wave. *)
let make_program b p =
  let status_addr = G.bss b 8 in
  let cc_path = G.str b "/bin/cc" in
  let waves = (p.compiles + p.jobs - 1) / p.jobs in
  G.emit b
    ([ Asm.movi 11 0 ] (* wave counter *)
    @. [ Asm.label "wave" ]
    @. [ Asm.movi 12 0 ] (* jobs spawned this wave *)
    @. [ Asm.label "spawn" ]
    @. G.sys_fork
    @. [ Asm.jz 0 "child" ]
    @. [ Asm.addi 12 1; Asm.jcc Insn.Lt 12 (G.imm p.jobs) "spawn" ]
    (* reap the wave *)
    @. [ Asm.movi 12 0 ]
    @. [ Asm.label "reap" ]
    @. G.sys_wait4 ~pid:(G.imm (-1)) ~status_addr:(G.imm status_addr)
    @. [ Asm.addi 12 1; Asm.jcc Insn.Lt 12 (G.imm p.jobs) "reap" ]
    (* serial dependency/link work before the next wave *)
    @. G.compute_loop b ~n:serial_work
    @. [ Asm.addi 11 1; Asm.jcc Insn.Lt 11 (G.imm waves) "wave" ]
    @. G.sys_exit_group 0
    @. [ Asm.label "child" ]
    @. G.sc Sysno.execve [ G.imm cc_path ]
    @. G.sys_exit_group 70)

let make ?(params = default) () =
  let setup k =
    Vfs.mkdir_p (K.vfs k) "/bin";
    Vfs.mkdir_p (K.vfs k) "/proj/obj";
    for i = 0 to nsrc - 1 do
      install_file k
        ~path:(Printf.sprintf "/proj/s%d.c" i)
        ~seed:(2000 + i)
        ~len:(params.src_kb * 1024)
    done;
    let bc = G.create () in
    cc_program bc params;
    K.install_image k ~path:"/bin/cc" (G.build bc ~name:"cc" ());
    let bm = G.create () in
    make_program bm params;
    K.install_image k ~path:"/bin/make" (G.build bm ~name:"make" ())
  in
  { Workload.name = "make";
    exe = "/bin/make";
    setup;
    cores = 8;
    score_based = false }
