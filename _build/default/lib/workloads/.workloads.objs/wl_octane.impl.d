lib/workloads/wl_octane.ml: Asm Guest Insn Kernel Mem Sysno Vfs Wl_common Workload
