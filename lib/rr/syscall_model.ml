(* The system-call model (paper §2.3.6).

   For every syscall the recorder supports, this module answers:
   - which user memory does it write, given entry args and the result?
   - can it block (so outputs must detour through scratch buffers and the
     desched event must be armed on the buffered path)?
   - may the interception library handle it without a trap?
   - how must replay treat it (emulate, or re-perform for address-space
     effects)?

   Unknown syscalls make the recorder fail loudly with the syscall name —
   the paper's "unsupported system calls produce a message clearly
   identifying the problem" behavior. *)

module T = Task

exception Unsupported of string

type output = { out_addr : int; out_len : int }

(* Memory written by a completed syscall.  [args] are the entry arguments
   (post any supervisor rewriting), [result] the return value. *)
let outputs ~nr ~(args : int array) ~result : output list =
  if result < 0 then []
  else if nr = Sysno.read || nr = Sysno.recvfrom then
    let buf = { out_addr = args.(1); out_len = result } in
    if nr = Sysno.recvfrom && args.(3) <> 0 then
      [ buf; { out_addr = args.(3); out_len = 8 } ]
    else [ buf ]
  else if nr = Sysno.stat then [ { out_addr = args.(1); out_len = 32 } ]
  else if nr = Sysno.pipe then [ { out_addr = args.(0); out_len = 16 } ]
  else if nr = Sysno.getcwd then [ { out_addr = args.(0); out_len = result } ]
  else if nr = Sysno.wait4 then
    (* The kernel stores a status only when it actually reaped a child
       (result > 0); a WNOHANG miss (result = 0) leaves *status alone. *)
    if args.(1) <> 0 && result > 0 then
      [ { out_addr = args.(1); out_len = 8 } ]
    else []
  else if nr = Sysno.gettimeofday || nr = Sysno.clock_gettime then
    if args.(0) <> 0 then [ { out_addr = args.(0); out_len = 8 } ] else []
  else if nr = Sysno.getrandom then [ { out_addr = args.(0); out_len = result } ]
  else if nr = Sysno.rt_sigprocmask then
    if args.(2) <> 0 then [ { out_addr = args.(2); out_len = 8 } ] else []
  else if nr = Sysno.poll then
    (* revents slots of every entry — but only when the kernel wrote
       them: a poll that timed out (result = 0) writes no user memory,
       so recording all-nfds slots unconditionally would capture (and
       replay) bytes the kernel never touched. *)
    if result > 0 then
      List.init args.(1) (fun i ->
          { out_addr = args.(0) + (24 * i) + 16; out_len = 8 })
    else []
  else if
    nr = Sysno.write || nr = Sysno.openat || nr = Sysno.close
    || nr = Sysno.lseek || nr = Sysno.mmap || nr = Sysno.munmap
    || nr = Sysno.mprotect || nr = Sysno.exit || nr = Sysno.exit_group
    || nr = Sysno.clone || nr = Sysno.execve || nr = Sysno.getpid
    || nr = Sysno.gettid || nr = Sysno.getppid || nr = Sysno.nanosleep
    || nr = Sysno.sched_yield || nr = Sysno.futex || nr = Sysno.kill
    || nr = Sysno.tgkill || nr = Sysno.rt_sigaction || nr = Sysno.rt_sigreturn
    || nr = Sysno.sched_setaffinity || nr = Sysno.prctl || nr = Sysno.seccomp
    || nr = Sysno.perf_event_open || nr = Sysno.ioctl || nr = Sysno.socket
    || nr = Sysno.bind || nr = Sysno.sendto || nr = Sysno.unlink
    || nr = Sysno.mkdir || nr = Sysno.rename || nr = Sysno.link
    || nr = Sysno.dup || nr = Sysno.ftruncate || nr = Sysno.chdir
    || nr = Sysno.fsync || nr = Sysno.readlink || nr = Sysno.sigaltstack
    || nr = Sysno.set_tid_address || nr = Sysno.ptrace
  then []
  else raise (Unsupported (Sysno.name nr))

(* Can this call sleep in the kernel?  [task] lets us inspect the fd —
   reads from regular files never block, reads from pipes/sockets can. *)
let may_block task ~nr ~(args : int array) =
  if nr = Sysno.read then
    match T.find_fd task args.(0) with
    | Some { T.obj = T.F_reg _; _ } | None -> false
    | Some { T.obj = T.F_pipe_r _ | T.F_pipe_w _ | T.F_sock _ | T.F_perf _; _ }
      ->
      true
  else if nr = Sysno.write then begin
    match T.find_fd task args.(0) with
    | Some { T.obj = T.F_pipe_w _; _ } -> true
    | Some _ | None -> false
  end
  else
    nr = Sysno.recvfrom || nr = Sysno.wait4 || nr = Sysno.futex
    || nr = Sysno.nanosleep || nr = Sysno.poll

(* The interception library's fast-path set (paper §3.1: "it only
   contains wrappers for the most common system calls").  The narrow
   set is the original wrapper library; [wide] is the grown set the
   paper reached over time — every hot call the workloads make that
   the buffer-redirect protocol can express. *)
let bufferable ?(wide = true) ~nr () =
  nr = Sysno.read || nr = Sysno.write || nr = Sysno.lseek
  || nr = Sysno.getpid || nr = Sysno.gettid || nr = Sysno.gettimeofday
  || nr = Sysno.clock_gettime || nr = Sysno.recvfrom || nr = Sysno.sendto
  || nr = Sysno.futex || nr = Sysno.sched_yield || nr = Sysno.openat
  || nr = Sysno.close || nr = Sysno.stat
  || (wide
     && (nr = Sysno.getcwd || nr = Sysno.getrandom || nr = Sysno.pipe
        || nr = Sysno.poll || nr = Sysno.wait4 || nr = Sysno.dup
        || nr = Sysno.unlink || nr = Sysno.mkdir || nr = Sysno.fsync
        || nr = Sysno.readlink || nr = Sysno.getppid || nr = Sysno.chdir
        || nr = Sysno.ftruncate))

(* One output pointer a buffered syscall redirects into the trace
   buffer (§3.8).  [bo_copy_in] marks arguments the kernel also reads
   (poll's pollfd array carries fds/events in), which must be staged
   into the buffer before the untraced call runs. *)
type buffered_out = { bo_arg : int; bo_len : int; bo_copy_in : bool }

(* Which buffered syscalls redirect output pointers into the trace
   buffer, and how many bytes each needs reserved.  The narrow list is
   bit-compatible with the original single-output protocol; [wide]
   adds the outputs of the widened wrapper set (and the recvfrom
   source-address slot the narrow library never captured). *)
let buffered_outputs ?(wide = true) ~nr ~(args : int array) () :
    buffered_out list =
  let out bo_arg bo_len = { bo_arg; bo_len; bo_copy_in = false } in
  let outs =
    if nr = Sysno.read then [ out 1 args.(2) ]
    else if nr = Sysno.recvfrom then
      out 1 args.(2) :: (if wide then [ out 3 8 ] else [])
    else if nr = Sysno.stat then [ out 1 32 ]
    else if not wide then []
    else if nr = Sysno.getcwd then [ out 0 args.(1) ]
    else if nr = Sysno.getrandom then [ out 0 args.(1) ]
    else if nr = Sysno.pipe then [ out 0 16 ]
    else if nr = Sysno.gettimeofday || nr = Sysno.clock_gettime then
      [ out 0 8 ]
    else if nr = Sysno.wait4 then [ out 1 8 ]
    else if nr = Sysno.poll then
      [ { bo_arg = 0; bo_len = 24 * args.(1); bo_copy_in = true } ]
    else []
  in
  (* NULL pointers (wait4 (…, NULL, …), clock_gettime (…, NULL)) are
     never redirected: the kernel writes nothing through them. *)
  List.filter (fun o -> args.(o.bo_arg) <> 0 && o.bo_len > 0) outs

(* Syscalls whose effects replay must re-perform rather than emulate:
   address-space operations (mmap is handled by its own event kind). *)
let replay_performs ~nr = nr = Sysno.munmap || nr = Sysno.mprotect

(* Events with their own trace frame kinds. *)
let is_special ~nr =
  nr = Sysno.clone || nr = Sysno.execve || nr = Sysno.mmap || nr = Sysno.exit
  || nr = Sysno.exit_group

(* Can the recorder skip the syscall-exit ptrace stop (§3.4)?  True
   when a successful completion provably writes no user memory, so the
   whole frame can be computed and recorded at the seccomp/entry stop.
   Specials have their own frame kinds; sigreturn rewrites the whole
   register file at the exit stop; ptrace is emulated by the
   supervisor.  The probe uses [result = 1]: every modeled syscall
   that writes memory on success reports at least one output for a
   positive result (stat/pipe-style calls report them for any
   [result >= 0]). *)
let elidable ~nr ~(args : int array) =
  (not (is_special ~nr))
  && nr <> Sysno.rt_sigreturn
  && nr <> Sysno.ptrace
  &&
  match outputs ~nr ~args ~result:1 with
  | [] -> true
  | _ :: _ -> false
  | exception Unsupported _ -> false

(* Traced blocking syscalls whose output buffer must detour through
   scratch memory (§2.3.1): (arg index, length-from-args). *)
let scratch_redirect task ~nr ~(args : int array) =
  if may_block task ~nr ~args then
    if nr = Sysno.read || nr = Sysno.recvfrom then Some (1, args.(2))
    else None
  else None
