lib/workloads/workload.ml: Fmt Hashtbl Kernel Recorder Replayer Task Trace
