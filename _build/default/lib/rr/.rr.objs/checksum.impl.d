lib/rr/checksum.ml: Addr_space Bytes Char List Mem
