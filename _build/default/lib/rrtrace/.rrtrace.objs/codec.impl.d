lib/rrtrace/codec.ml: Array Buffer Bytes Char List String
