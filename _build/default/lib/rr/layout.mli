(** Fixed addresses of the structures rr injects into every tracee: the
    RR page with the untraced/traced syscall instructions (paper §2.3.5),
    the thread-locals page (§3.6), the preload-globals page, and per-task
    scratch (§2.3.1) and trace-buffer (§3) areas. *)

val rr_page_text : int

val untraced_syscall_insn : int
(** The "privileged" instruction: the recorder's seccomp filter allows
    syscalls whose PC is exactly here. *)

val traced_fallback_insn : int
(** Where the interception library goes for a deliberate traced syscall. *)

val thread_locals_page : int
val thread_locals_size : int
val tl_locked : int
val tl_scratch_ptr : int
val tl_buf_ptr : int
val tl_buf_size : int
val tl_desched_fd : int
val tl_tid : int

val globals_page : int
val globals_size : int

val gl_fd_bitmap : int
(** One bit per fd < 64: cloneable regular file, maintained through
    recorded writes so record and replay agree (§3.9). *)

val slot_base : int
val slot_stride : int
val scratch_base : int
val scratch_size : int
val scratch_stride : int
val syscallbuf_base : int
val syscallbuf_size : int
val syscallbuf_stride : int

val sb_fill : int
val sb_read_cursor : int
val sb_is_replay : int
val sb_abort_commit : int
val sb_hdr_size : int

val scratch_for : slot:int -> int
val syscallbuf_for : slot:int -> int

(** Deterministic PMU charges for the interception library, identical in
    record and replay (§3.8's conditional-move discipline). *)

val hook_rcb_cost : int
val hook_insn_cost : int
val hook_desched_arm_rcb : int
val hook_desched_arm_insns : int
