(* The `serve` workload (DESIGN.md §4k): a multi-process server under
   load.  Four roles in one image, split by forks:

     root ── fork ──> server (accept loop on the well-known port:
     │                recvfrom a hello, fork a worker per connection)
     └───── fork ──> loadgen (fork one client per connection)

   Workers bind their own port (client port + 1000) and ack from it, so
   the client learns its peer from the datagram's source address —
   exactly the provenance Conn_track reads back out of the trace.
   Clients stream [requests] datagrams of varying sizes (never 8 bytes,
   the source-address write width), periodically hitting a dead port
   first (the error path), the first [slow_clients] of them sleeping
   before every send. *)

module K = Kernel
module G = Guest
open Wl_common

type params = {
  conns : int;
  requests : int;
  server_work : int;
  client_work : int;
  slow_clients : int;
  err_every : int;
}

let default =
  { conns = 8; requests = 25; server_work = 3_000; client_work = 1_500;
    slow_clients = 2; err_every = 5 }

let accept_port = 5000
let dead_port = 4999
let client_port i = 5100 + i
let worker_port i = client_port i + 1000

(* Request lengths walk [12, 107] in steps of 7 starting at 12 + i:
   distinct per client, mixed per request, never 8. *)
let max_payload = 256

let program b p =
  let abuf = G.bss b 2048 (* accept loop's hello buffer *)
  and asrc = G.bss b 8
  and wbuf = G.bss b 2048 (* worker's request buffer *)
  and wsrc = G.bss b 8
  and cbuf = G.bss b 2048 (* client's reply buffer *)
  and csrc = G.bss b 8
  and status_addr = G.bss b 8 in
  let hello = G.blob b (String.make 16 'H') in
  let ack = G.blob b (String.make 16 'A') in
  let payload = G.blob b (String.make max_payload 'Q') in
  G.emit b
    ((* ---- root: fork server, fork loadgen, reap both ---- *)
    G.sys_fork
    @. [ Asm.jz 0 "server" ]
    @. G.sys_fork
    @. [ Asm.jz 0 "loadgen" ]
    @. G.sys_wait4 ~pid:(G.imm (-1)) ~status_addr:(G.imm status_addr)
    @. G.sys_wait4 ~pid:(G.imm (-1)) ~status_addr:(G.imm status_addr)
    @. G.sys_exit_group 0
    (* ---- server: the accept loop ---- *)
    @. [ Asm.label "server" ]
    @. G.sys_socket
    @. [ Asm.movr 7 0 ]
    @. G.sys_bind ~fd:(G.reg 7) ~port:(G.imm accept_port)
    @. [ Asm.movi 11 0 ] (* connections accepted *)
    @. [ Asm.label "acc_loop" ]
    @. [ Asm.jcc Insn.Ge 11 (G.imm p.conns) "acc_reap" ]
    @. G.sys_recvfrom ~fd:(G.reg 7) ~buf:(G.imm abuf) ~len:(G.imm 2048)
         ~src_addr:(G.imm asrc)
    @. [ Asm.movi 9 asrc; Asm.load 10 9 0 ] (* r10 = client's port *)
    @. G.sys_fork
    @. [ Asm.jz 0 "worker" ]
    @. [ Asm.addi 11 1; Asm.jmp "acc_loop" ]
    @. [ Asm.label "acc_reap"; Asm.movi 11 0 ]
    @. [ Asm.label "acc_reap_loop" ]
    @. [ Asm.jcc Insn.Ge 11 (G.imm p.conns) "acc_done" ]
    @. G.sys_wait4 ~pid:(G.imm (-1)) ~status_addr:(G.imm status_addr)
    @. [ Asm.addi 11 1; Asm.jmp "acc_reap_loop" ]
    @. [ Asm.label "acc_done" ]
    @. G.sys_exit_group 0
    (* ---- worker: r10 = client port, inherited from the accept loop ---- *)
    @. [ Asm.label "worker" ]
    @. G.sys_socket
    @. [ Asm.movr 7 0 ]
    @. [ Asm.movr 9 10; Asm.addi 9 1000 ] (* own port: client's + 1000 *)
    @. G.sys_bind ~fd:(G.reg 7) ~port:(G.reg 9)
    @. G.sys_sendto ~fd:(G.reg 7) ~buf:(G.imm ack) ~len:(G.imm 16)
         ~port:(G.reg 10)
    @. [ Asm.movi 11 0 ] (* requests served *)
    @. [ Asm.label "wrk_loop" ]
    @. [ Asm.jcc Insn.Ge 11 (G.imm p.requests) "wrk_done" ]
    @. G.sys_recvfrom ~fd:(G.reg 7) ~buf:(G.imm wbuf) ~len:(G.imm 2048)
         ~src_addr:(G.imm wsrc)
    @. [ Asm.movr 8 0 ] (* request length *)
    @. G.compute_loop b ~n:p.server_work
    @. G.sys_sendto ~fd:(G.reg 7) ~buf:(G.imm wbuf) ~len:(G.reg 8)
         ~port:(G.reg 10)
    (* result check keeps the syscall site patchable (§3.1) *)
    @. [ Asm.jcc Insn.Lt 0 (G.imm 0) "wrk_done" ]
    @. [ Asm.addi 11 1; Asm.jmp "wrk_loop" ]
    @. [ Asm.label "wrk_done" ]
    @. G.sys_exit_group 0
    (* ---- loadgen: fork one client per connection, reap ---- *)
    @. [ Asm.label "loadgen"; Asm.movi 12 0 ]
    @. [ Asm.label "lg_loop" ]
    @. [ Asm.jcc Insn.Ge 12 (G.imm p.conns) "lg_reap" ]
    @. G.sys_fork
    @. [ Asm.jz 0 "client" ]
    @. [ Asm.addi 12 1; Asm.jmp "lg_loop" ]
    @. [ Asm.label "lg_reap"; Asm.movi 11 0 ]
    @. [ Asm.label "lg_reap_loop" ]
    @. [ Asm.jcc Insn.Ge 11 (G.imm p.conns) "lg_done" ]
    @. G.sys_wait4 ~pid:(G.imm (-1)) ~status_addr:(G.imm status_addr)
    @. [ Asm.addi 11 1; Asm.jmp "lg_reap_loop" ]
    @. [ Asm.label "lg_done" ]
    @. G.sys_exit_group 0
    (* ---- client: r12 = index, inherited from the loadgen ---- *)
    @. [ Asm.label "client" ]
    @. G.sys_socket
    @. [ Asm.movr 7 0 ]
    @. [ Asm.movr 8 12; Asm.addi 8 (client_port 0) ]
    @. G.sys_bind ~fd:(G.reg 7) ~port:(G.reg 8)
    (* hello, retried until the accept loop has bound its port *)
    @. [ Asm.label "cli_hello" ]
    @. G.sys_sendto ~fd:(G.reg 7) ~buf:(G.imm hello) ~len:(G.imm 16)
         ~port:(G.imm accept_port)
    @. [ Asm.jcc Insn.Ge 0 (G.imm 0) "cli_helloed" ]
    @. G.sys_nanosleep ~ns:(G.imm 20_000)
    @. [ Asm.jmp "cli_hello" ]
    @. [ Asm.label "cli_helloed" ]
    (* the worker's ack names our peer via the source address *)
    @. G.sys_recvfrom ~fd:(G.reg 7) ~buf:(G.imm cbuf) ~len:(G.imm 2048)
         ~src_addr:(G.imm csrc)
    @. [ Asm.movi 9 csrc; Asm.load 9 9 0 ] (* r9 = worker port *)
    @. [ Asm.movr 10 12; Asm.addi 10 12 ] (* r10 = request length *)
    @. [ Asm.movi 11 p.err_every ] (* dead-port countdown *)
    @. [ Asm.movi 8 0 ] (* requests sent *)
    @. [ Asm.label "cli_loop" ]
    @. [ Asm.jcc Insn.Ge 8 (G.imm p.requests) "cli_done" ]
    @. [ Asm.jcc Insn.Ge 12 (G.imm p.slow_clients) "cli_noslow" ]
    @. G.sys_nanosleep ~ns:(G.imm 50_000)
    @. [ Asm.label "cli_noslow" ]
    @. [ Asm.subi 11 1; Asm.jnz 11 "cli_noerr" ]
    (* the error path: nothing listens on the dead port *)
    @. G.sys_sendto ~fd:(G.reg 7) ~buf:(G.imm payload) ~len:(G.reg 10)
         ~port:(G.imm dead_port)
    @. [ Asm.movi 11 p.err_every ]
    @. [ Asm.label "cli_noerr" ]
    @. G.sys_sendto ~fd:(G.reg 7) ~buf:(G.imm payload) ~len:(G.reg 10)
         ~port:(G.reg 9)
    @. [ Asm.jcc Insn.Lt 0 (G.imm 0) "cli_done" ]
    @. G.sys_recvfrom ~fd:(G.reg 7) ~buf:(G.imm cbuf) ~len:(G.imm 2048)
         ~src_addr:(G.imm csrc)
    @. G.compute_loop b ~n:p.client_work
    @. [ Asm.addi 10 7; Asm.jcc Insn.Lt 10 (G.imm 101) "cli_lenok" ]
    @. [ Asm.subi 10 89 ]
    @. [ Asm.label "cli_lenok" ]
    @. [ Asm.addi 8 1; Asm.jmp "cli_loop" ]
    @. [ Asm.label "cli_done" ]
    @. G.sys_exit_group 0)

let make ?(params = default) () =
  let setup k =
    Vfs.mkdir_p (K.vfs k) "/bin";
    let b = G.create () in
    program b params;
    K.install_image k ~path:"/bin/serve" (G.build b ~name:"serve" ())
  in
  { Workload.name = "serve";
    exe = "/bin/serve";
    setup;
    cores = 2;
    score_based = false }
