lib/rrtrace/trace.mli: Event Fmt Image
